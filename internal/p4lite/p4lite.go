// Package p4lite is the restricted P4 path the paper's §2.2 discusses:
// "in restricted capabilities (with only filtering and forwarding),
// there are P4 to eBPF compilers available". It models a P4-style
// match-action table — exact-match keys over packet header fields,
// actions that pass, drop, or steer — and compiles it to eBPF, making
// eBPF the unifying accelerator-independent IR exactly as the paper
// argues: the same program then runs in the VM or as an eHDL pipeline.
package p4lite

import (
	"errors"
	"fmt"
	"strings"

	"hyperion/internal/ebpf"
)

// Field selects a packet header slice used as a match key.
type Field struct {
	Name   string
	Offset int // byte offset in the packet context
	Width  int // 1, 2, 4, or 8 bytes
}

// ActionKind enumerates what a matching entry does.
type ActionKind uint8

const (
	// ActionPass accepts the packet (verdict 0).
	ActionPass ActionKind = iota
	// ActionDrop rejects the packet (verdict 1).
	ActionDrop
	// ActionForward steers to a port (verdict 0x100 | port).
	ActionForward
)

// Action is one entry's consequence.
type Action struct {
	Kind ActionKind
	Port uint8 // for ActionForward
}

// Verdict encodes an action as the program's r0 value.
func (a Action) Verdict() uint64 {
	switch a.Kind {
	case ActionDrop:
		return 1
	case ActionForward:
		return 0x100 | uint64(a.Port)
	default:
		return 0
	}
}

// Entry is one exact-match row: one value per table key field.
type Entry struct {
	Match  []uint64
	Action Action
}

// Table is a P4-style match-action table.
type Table struct {
	Name    string
	Keys    []Field
	Entries []Entry
	Default Action
}

// Errors.
var (
	ErrBadField = errors.New("p4lite: bad field")
	ErrBadEntry = errors.New("p4lite: entry arity does not match keys")
	ErrTooBig   = errors.New("p4lite: table too large to unroll")
)

// maxEntries bounds unrolled tables (beyond this a real compiler would
// emit a map lookup; the unrolled form is what synthesizes to TCAM-like
// parallel matchers on the fabric).
const maxEntries = 256

// Validate checks structural invariants.
func (t *Table) Validate(ctxBytes int) error {
	if len(t.Keys) == 0 {
		return fmt.Errorf("%w: table needs at least one key", ErrBadField)
	}
	for _, f := range t.Keys {
		switch f.Width {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("%w: %s width %d", ErrBadField, f.Name, f.Width)
		}
		if f.Offset < 0 || f.Offset+f.Width > ctxBytes {
			return fmt.Errorf("%w: %s at [%d,%d) outside packet of %d", ErrBadField, f.Name, f.Offset, f.Offset+f.Width, ctxBytes)
		}
	}
	if len(t.Entries) > maxEntries {
		return fmt.Errorf("%w: %d entries", ErrTooBig, len(t.Entries))
	}
	for i, e := range t.Entries {
		if len(e.Match) != len(t.Keys) {
			return fmt.Errorf("%w: entry %d has %d values for %d keys", ErrBadEntry, i, len(e.Match), len(t.Keys))
		}
		for k, f := range t.Keys {
			if f.Width < 8 && e.Match[k] >= 1<<(8*f.Width) {
				return fmt.Errorf("%w: entry %d key %s value %#x exceeds width", ErrBadEntry, i, f.Name, e.Match[k])
			}
		}
	}
	return nil
}

// loadMnemonic maps a field width to its load instruction.
func loadMnemonic(width int) string {
	switch width {
	case 1:
		return "ldxb"
	case 2:
		return "ldxh"
	case 4:
		return "ldxw"
	default:
		return "ldxdw"
	}
}

// CompileToSource emits eBPF assembler implementing the table: load all
// key fields once, then an unrolled exact-match chain; first match wins;
// fall through to the default action.
//
// Register plan: r2..r5 hold up to four key fields (r1 is the packet).
func (t *Table) CompileToSource(ctxBytes int) (string, error) {
	if err := t.Validate(ctxBytes); err != nil {
		return "", err
	}
	if len(t.Keys) > 4 {
		return "", fmt.Errorf("%w: more than 4 key fields", ErrBadField)
	}
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("; p4lite table %q: %d keys, %d entries", t.Name, len(t.Keys), len(t.Entries))
	for i, f := range t.Keys {
		w("	%s r%d, [r1+%d]   ; %s", loadMnemonic(f.Width), 2+i, f.Offset, f.Name)
	}
	for ei, e := range t.Entries {
		// Any key mismatch skips to the next entry.
		for ki := range t.Keys {
			if e.Match[ki] < 1<<31 {
				w("	jne r%d, %d, miss_%d", 2+ki, e.Match[ki], ei)
			} else {
				// Wide constants need a register compare.
				w("	lddw r0, %#x", e.Match[ki])
				w("	jne r%d, r0, miss_%d", 2+ki, ei)
			}
		}
		w("	mov r0, %d", e.Action.Verdict())
		w("	exit")
		w("miss_%d:", ei)
	}
	w("	mov r0, %d   ; default action", t.Default.Verdict())
	w("	exit")
	return b.String(), nil
}

// Compile assembles and verifies the table program, returning the
// instructions ready for the VM or the eHDL pipeline compiler.
func (t *Table) Compile(ctxBytes int) ([]ebpf.Instruction, error) {
	src, err := t.CompileToSource(ctxBytes)
	if err != nil {
		return nil, err
	}
	prog, err := ebpf.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("p4lite: generated bad assembly: %w", err)
	}
	cfg := ebpf.DefaultVerifierConfig(nil)
	cfg.CtxSize = ctxBytes
	if err := ebpf.Verify(prog, cfg); err != nil {
		return nil, fmt.Errorf("p4lite: generated unverifiable program: %w", err)
	}
	return prog, nil
}

// Eval is the reference interpretation of the table (the model the
// compiled program is tested against).
func (t *Table) Eval(pkt []byte) uint64 {
	keys := make([]uint64, len(t.Keys))
	for i, f := range t.Keys {
		var v uint64
		for b := f.Width - 1; b >= 0; b-- {
			v = v<<8 | uint64(pkt[f.Offset+b])
		}
		keys[i] = v
	}
	for _, e := range t.Entries {
		match := true
		for k := range keys {
			if keys[k] != e.Match[k] {
				match = false
				break
			}
		}
		if match {
			return e.Action.Verdict()
		}
	}
	return t.Default.Verdict()
}
