package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LatencyRecorder accumulates latency samples and reports percentiles.
// It keeps raw samples; experiment scales here are small enough (≤ a few
// million samples) that exactness beats sketching.
type LatencyRecorder struct {
	samples []Duration
	sorted  bool
	sum     Duration
}

// Record adds one sample.
func (l *LatencyRecorder) Record(d Duration) {
	l.samples = append(l.samples, d)
	l.sum += d
	l.sorted = false
}

// Count returns the number of samples.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the mean sample, or 0 with no samples.
func (l *LatencyRecorder) Mean() Duration {
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / Duration(len(l.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (l *LatencyRecorder) Min() Duration {
	l.ensureSorted()
	if len(l.samples) == 0 {
		return 0
	}
	return l.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (l *LatencyRecorder) Max() Duration {
	l.ensureSorted()
	if len(l.samples) == 0 {
		return 0
	}
	return l.samples[len(l.samples)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples.
func (l *LatencyRecorder) Percentile(p float64) Duration {
	l.ensureSorted()
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return l.samples[rank-1]
}

// Merge absorbs o's samples into l. Because percentiles are computed
// over the sorted union, the result is independent of merge order —
// per-shard recorders merged in any order report identical tables.
func (l *LatencyRecorder) Merge(o *LatencyRecorder) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	l.samples = append(l.samples, o.samples...)
	l.sum += o.sum
	l.sorted = false
}

// Stddev returns the sample standard deviation.
func (l *LatencyRecorder) Stddev() Duration {
	n := len(l.samples)
	if n < 2 {
		return 0
	}
	mean := float64(l.Mean())
	var ss float64
	for _, s := range l.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return Duration(math.Sqrt(ss / float64(n-1)))
}

func (l *LatencyRecorder) ensureSorted() {
	if l.sorted {
		return
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	l.sorted = true
}

// Summary formats count/mean/p50/p99/p999/max on one line.
func (l *LatencyRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		l.Count(), l.Mean(), l.Percentile(50), l.Percentile(99), l.Percentile(99.9), l.Max())
}

// Counter is a named monotonic counter used by device models for
// observability (events processed, bytes moved, cache hits...).
type Counter struct {
	Name  string
	Value int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.Value += n }

// CounterSet is an ordered collection of counters.
type CounterSet struct {
	order []string
	m     map[string]*Counter
}

// Get returns (creating if needed) the named counter.
func (s *CounterSet) Get(name string) *Counter {
	if s.m == nil {
		s.m = make(map[string]*Counter)
	}
	if c, ok := s.m[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.m[name] = c
	s.order = append(s.order, name)
	return c
}

// Value returns the current value of the named counter (0 if absent).
func (s *CounterSet) Value(name string) int64 {
	if s.m == nil {
		return 0
	}
	if c, ok := s.m[name]; ok {
		return c.Value
	}
	return 0
}

// String renders all counters in creation order.
func (s *CounterSet) String() string {
	var b strings.Builder
	for i, name := range s.order {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, s.m[name].Value)
	}
	return b.String()
}

// Table is a minimal fixed-width text table used by the benchmark
// harness to print paper-style rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
