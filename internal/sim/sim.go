// Package sim provides the discrete-event simulation kernel that underpins
// every hardware model in Hyperion: the virtual clock, the event queue, and
// deterministic pseudo-randomness.
//
// All device models (fabric, PCIe, NVMe, network) are state machines that
// schedule work on a shared *Engine. Virtual time is measured in
// picoseconds so that a 250 MHz fabric clock (4 ns) and a 100 Gbps link
// (80 ps per byte) can both be expressed exactly as integers.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a time later than any event the engine will ever reach.
const Forever Time = math.MaxInt64

func (t Time) String() string     { return fmtDur(int64(t)) }
func (d Duration) String() string { return fmtDur(int64(d)) }

func fmtDur(ps int64) string {
	switch {
	case ps >= int64(Second):
		return fmt.Sprintf("%.3fs", float64(ps)/float64(Second))
	case ps >= int64(Millisecond):
		return fmt.Sprintf("%.3fms", float64(ps)/float64(Millisecond))
	case ps >= int64(Microsecond):
		return fmt.Sprintf("%.3fus", float64(ps)/float64(Microsecond))
	case ps >= int64(Nanosecond):
		return fmt.Sprintf("%.3fns", float64(ps)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", ps)
	}
}

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromStd converts a time.Duration to a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// EventRef is a generation-stamped handle to a scheduled event. The
// zero EventRef refers to nothing; Cancel on it (or on a ref whose
// event has already fired, been cancelled, or had its slot recycled) is
// a safe no-op. Refs are values — copy and store them freely.
type EventRef struct {
	slot int32 // pool index + 1; 0 means "no event"
	gen  uint32
}

// NoEvent is the zero EventRef, handy for resetting stored timers.
var NoEvent EventRef

// Valid reports whether the ref was produced by At/After. It does not
// know whether the event is still pending — Cancel checks that.
func (r EventRef) Valid() bool { return r.slot != 0 }

// Engine is the discrete-event simulator. It is not safe for concurrent
// use: device models run single-threaded inside the event loop, which is
// what makes simulations deterministic. (Separate Engines are fully
// independent and may run on separate goroutines — the parallel
// experiment harness relies on exactly that.)
type Engine struct {
	now    Time
	q      heap4
	pool   eventPool
	live   int // scheduled events neither fired nor cancelled
	seq    uint64
	nsteps uint64
	rng    *Rand
	trace  func(Time, string)
}

// NewEngine returns an engine at time zero with the given random seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// SetTrace installs a tracing hook called for every named event executed.
func (e *Engine) SetTrace(fn func(Time, string)) { e.trace = fn }

// At schedules fn to run at absolute time t. Scheduling in the past
// (before Now) panics: it would break causality.
func (e *Engine) At(t Time, name string, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", name, t, e.now))
	}
	id := e.pool.alloc()
	s := &e.pool.slots[id]
	s.do = fn
	s.name = name
	s.live = true
	e.q.push(heapEntry{at: t, seq: e.seq, slot: id})
	e.seq++
	e.live++
	return EventRef{slot: id + 1, gen: s.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, name string, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, name))
	}
	return e.At(e.now.Add(d), name, fn)
}

// Cancel removes a pending event. Cancelling the zero ref, an
// already-fired, already-cancelled, or recycled event is a no-op: the
// generation stamp stops stale refs from touching a reused slot.
// Cancellation is lazy — the heap entry is tombstoned here and drained
// when it surfaces, never removed from the middle of the heap.
func (e *Engine) Cancel(ref EventRef) {
	if ref.slot == 0 {
		return
	}
	id := ref.slot - 1
	if int(id) >= len(e.pool.slots) {
		return
	}
	s := &e.pool.slots[id]
	if s.gen != ref.gen || !s.live {
		return
	}
	e.live--
	// Fast path: if the event's entry is still the heap's tail (the
	// common schedule-then-cancel timer pattern), truncating it keeps
	// the heap property and leaves no tombstone behind.
	if n := e.q.len(); n > 0 && e.q.entries[n-1].slot == id {
		e.q.entries = e.q.entries[:n-1]
		e.pool.release(id)
		return
	}
	s.live = false
	s.do = nil // free the closure now; the slot itself drains on pop
	s.name = ""
}

// Step executes the single next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for e.q.len() > 0 {
		ent := e.q.pop()
		s := &e.pool.slots[ent.slot]
		if !s.live {
			e.pool.release(ent.slot) // drained tombstone
			continue
		}
		do, name := s.do, s.name
		s.live = false
		e.pool.release(ent.slot)
		e.live--
		e.now = ent.at
		e.nsteps++
		if e.trace != nil && name != "" {
			e.trace(e.now, name)
		}
		do()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then advances the clock to
// the deadline (if the queue emptied earlier or the next event is later).
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events within the next d of virtual time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// RunWhile executes events until cond returns false or the queue empties.
// cond is checked before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// peek reports the time of the next live event, draining any tombstones
// that have reached the top of the heap.
func (e *Engine) peek() (Time, bool) {
	for e.q.len() > 0 {
		ent := e.q.entries[0]
		if !e.pool.slots[ent.slot].live {
			e.q.pop()
			e.pool.release(ent.slot)
			continue
		}
		return ent.at, true
	}
	return 0, false
}

// Pending reports the number of live queued events. It is a maintained
// counter, O(1) — not a scan of the queue.
func (e *Engine) Pending() int { return e.live }

// NextAt reports the time of the next live event without executing it,
// or false with an empty queue. The conservative cluster scheduler uses
// it to compute the lower bound on cross-shard timestamps (LBTS); it is
// also handy for tests and tools that want to observe the frontier.
func (e *Engine) NextAt() (Time, bool) { return e.peek() }
