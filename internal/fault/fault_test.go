package fault

import (
	"testing"

	"hyperion/internal/sim"
)

func TestNilPlanIsNoOp(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan reports Enabled")
	}
	if p.Roll(Drop) {
		t.Fatal("nil plan rolled a fault")
	}
	if p.Count(Drop) != 0 || p.Total() != 0 {
		t.Fatal("nil plan has counts")
	}
	if ws := p.Windows(Crash, 1e12, 1e9, 1e6); ws != nil {
		t.Fatalf("nil plan produced windows: %v", ws)
	}
	if p.Layer() != "" {
		t.Fatal("nil plan has a layer")
	}
}

// Zero-probability rolls must not consume generator state: a plan that
// rolls disabled kinds a thousand times must produce the same armed
// stream as a fresh plan. This is the property that keeps zero-rate
// chaos runs byte-identical to runs without any plan installed.
func TestZeroProbConsumesNoState(t *testing.T) {
	a := NewPlan(42, "netsim").Set(Drop, 0.5)
	b := NewPlan(42, "netsim").Set(Drop, 0.5)
	for i := 0; i < 1000; i++ {
		b.Roll(Corrupt) // disabled: must be free
		b.Roll(Reorder) // disabled: must be free
	}
	for i := 0; i < 200; i++ {
		if a.Roll(Drop) != b.Roll(Drop) {
			t.Fatalf("streams diverged at roll %d: zero-prob rolls consumed state", i)
		}
	}
	if got := b.Count(Corrupt) + b.Count(Reorder); got != 0 {
		t.Fatalf("disabled kinds counted %d injections", got)
	}
}

func TestRollDeterministicAndCounted(t *testing.T) {
	a := NewPlan(7, "nvme").Set(MediaErr, 0.25)
	b := NewPlan(7, "nvme").Set(MediaErr, 0.25)
	hits := uint64(0)
	for i := 0; i < 4000; i++ {
		ra, rb := a.Roll(MediaErr), b.Roll(MediaErr)
		if ra != rb {
			t.Fatalf("same seed diverged at roll %d", i)
		}
		if ra {
			hits++
		}
	}
	if a.Count(MediaErr) != hits || a.Total() != hits {
		t.Fatalf("count=%d total=%d want %d", a.Count(MediaErr), a.Total(), hits)
	}
	// 0.25 ± generous slack over 4000 trials.
	if hits < 800 || hits > 1200 {
		t.Fatalf("hit rate %d/4000 far from 0.25", hits)
	}
}

func TestLayersDrawIndependentStreams(t *testing.T) {
	a := NewPlan(1, "netsim").Set(Drop, 0.5)
	b := NewPlan(1, "fabric").Set(Drop, 0.5)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Roll(Drop) == b.Roll(Drop) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("different layers produced identical roll streams")
	}
}

func TestSetClamps(t *testing.T) {
	p := NewPlan(1, "x").Set(Drop, -0.5).Set(Corrupt, 2.0)
	if p.Roll(Drop) {
		t.Fatal("negative prob armed the kind")
	}
	if !p.Roll(Corrupt) {
		t.Fatal("prob > 1 did not clamp to always-fire")
	}
}

func TestWindowsBoundedAndOrdered(t *testing.T) {
	horizon := sim.Time(1_000_000_000_000) // 1 s
	meanUp := sim.Duration(50_000_000_000) // 50 ms
	downFor := sim.Duration(5_000_000_000) // 5 ms
	p := NewPlan(3, "cluster").Set(Crash, 1)
	ws := p.Windows(Crash, horizon, meanUp, downFor)
	if len(ws) == 0 {
		t.Fatal("no windows generated over 20 mean-up periods")
	}
	prev := sim.Time(0)
	for i, w := range ws {
		if w.Start >= horizon {
			t.Fatalf("window %d starts at %d past horizon %d", i, w.Start, horizon)
		}
		if w.End != w.Start+sim.Time(downFor) {
			t.Fatalf("window %d has length %d want %d", i, w.End-w.Start, downFor)
		}
		if w.Start < prev {
			t.Fatalf("window %d overlaps previous (start %d < prev end %d)", i, w.Start, prev)
		}
		prev = w.End
	}
	if p.Count(Crash) != uint64(len(ws)) {
		t.Fatalf("count %d != windows %d", p.Count(Crash), len(ws))
	}
	// Same seed, same schedule.
	q := NewPlan(3, "cluster").Set(Crash, 1)
	ws2 := q.Windows(Crash, horizon, meanUp, downFor)
	if len(ws) != len(ws2) {
		t.Fatalf("window count differs across identical seeds: %d vs %d", len(ws), len(ws2))
	}
	for i := range ws {
		if ws[i] != ws2[i] {
			t.Fatalf("window %d differs: %v vs %v", i, ws[i], ws2[i])
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Drop: "drop", Corrupt: "corrupt", Reorder: "reorder",
		MediaErr: "media_err", Timeout: "timeout", LinkDown: "link_down", Crash: "crash",
		Kind(250): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q want %q", k, k.String(), s)
		}
	}
}
