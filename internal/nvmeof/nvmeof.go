// Package nvmeof implements NVMe-over-Fabrics on Hyperion: a target that
// exports a local NVMe device over any of the application-selected
// transports (TCP, UDP, RDMA, Homa — §2's application-defined network
// transport), and an initiator offering the familiar block verbs. E14
// sweeps this path across transports.
package nvmeof

import (
	"errors"
	"fmt"
	"strings"

	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/rpc"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// Method names on the wire.
const (
	MethodRead  = "nvmeof.read"
	MethodWrite = "nvmeof.write"
	MethodFlush = "nvmeof.flush"
)

// Capsule wire layouts. Command arguments travel as pooled wire.Buf
// capsules (big-endian fixed-offset fields, like the fabrics SQE they
// model) rather than boxed Go structs: a read capsule is LBA at 0 and
// block count at 8; a write capsule is LBA at 0 with the payload
// in-capsule from 8. The rpc layer refcounts capsules per attempt, so
// retried and straggling deliveries each own their bytes.
const (
	capLBAOff    = 0
	capBlocksOff = 8
	readCapLen   = 12
	writeHdrLen  = 8
)

// EncodeReadArgs fills a pooled capsule for a read of blocks at lba.
// The caller owns the returned reference.
//
//wire:owns
func EncodeReadArgs(p *wire.Pool, lba int64, blocks int) *wire.Buf {
	b := p.Get(readCapLen)
	bs := b.Bytes()
	wire.PutBE64At(bs, capLBAOff, uint64(lba))
	wire.PutBE32At(bs, capBlocksOff, uint32(blocks))
	return b
}

// DecodeReadArgs reads a read capsule.
func DecodeReadArgs(bs []byte) (lba int64, blocks int) {
	return int64(wire.BE64At(bs, capLBAOff)), int(wire.BE32At(bs, capBlocksOff))
}

// EncodeWriteArgs fills a pooled capsule for a write of data at lba.
// The caller owns the returned reference.
//
//wire:owns
func EncodeWriteArgs(p *wire.Pool, lba int64, data []byte) *wire.Buf {
	b := p.Get(writeHdrLen + len(data))
	bs := b.Bytes()
	wire.PutBE64At(bs, capLBAOff, uint64(lba))
	copy(bs[writeHdrLen:], data)
	return b
}

// DecodeWriteArgs reads a write capsule; data aliases the capsule and
// is valid only while the capsule reference is held.
func DecodeWriteArgs(bs []byte) (lba int64, data []byte) {
	return int64(wire.BE64At(bs, capLBAOff)), bs[writeHdrLen:]
}

// ErrStatus reports a non-OK NVMe completion status.
var ErrStatus = errors.New("nvmeof: device status")

// errBadCapsule reports a request whose argument is not a capsule.
var errBadCapsule = errors.New("nvmeof: bad capsule")

// Target exports one NVMe host over an RPC server.
type Target struct {
	host   *nvme.Host
	srv    *rpc.Server
	opFree []*tgtOp

	Reads, Writes, Flushes int64
}

// tgtOp bridges one in-flight command's NVMe completion back to its rpc
// respond function with prebound callbacks; instances cycle through the
// target's free list.
type tgtOp struct {
	t       *Target
	respond func(any, int, error)
	readFn  func(data []byte, st uint16)
	stFn    func(st uint16)
}

func (t *Target) getOp(respond func(any, int, error)) *tgtOp {
	var op *tgtOp
	if n := len(t.opFree); n > 0 {
		op = t.opFree[n-1]
		t.opFree = t.opFree[:n-1]
	} else {
		op = &tgtOp{t: t}
		op.readFn = op.onRead
		op.stFn = op.onStatus
	}
	op.respond = respond
	return op
}

func (t *Target) putOp(op *tgtOp) {
	op.respond = nil
	t.opFree = append(t.opFree, op)
}

func (op *tgtOp) onRead(data []byte, st uint16) {
	respond := op.respond
	op.t.putOp(op)
	if st != nvme.StatusOK {
		respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
		return
	}
	respond(data, len(data)+64, nil)
}

func (op *tgtOp) onStatus(st uint16) {
	respond := op.respond
	op.t.putOp(op)
	if st != nvme.StatusOK {
		respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
		return
	}
	respond(true, 64, nil)
}

// NewTarget registers the NVMe-oF methods on srv, serving from host.
// Commands run on the device's queue pair qid.
func NewTarget(srv *rpc.Server, host *nvme.Host, qid int) *Target {
	t := &Target{host: host, srv: srv}
	srv.Handle(MethodRead, func(arg any, respond func(any, int, error)) {
		b, ok := arg.(*wire.Buf)
		if !ok || b.Len() < readCapLen {
			respond(nil, 0, errBadCapsule)
			return
		}
		lba, blocks := DecodeReadArgs(b.Bytes())
		t.Reads++
		// The server's active span joins the RPC leg to the NVMe leg of
		// the same request (0 when the caller did not tag one).
		op := t.getOp(respond)
		if err := host.ReadSpan(qid, lba, blocks, srv.ActiveSpan(), op.readFn); err != nil {
			t.putOp(op)
			respond(nil, 0, err)
		}
	})
	srv.Handle(MethodWrite, func(arg any, respond func(any, int, error)) {
		b, ok := arg.(*wire.Buf)
		if !ok || b.Len() < writeHdrLen {
			respond(nil, 0, errBadCapsule)
			return
		}
		lba, data := DecodeWriteArgs(b.Bytes())
		t.Writes++
		// The capsule outlives this handler only until it returns; the
		// device copies the payload synchronously on submission (doorbell
		// rings are posted writes executed in-line), so the alias is safe.
		op := t.getOp(respond)
		if err := host.WriteSpan(qid, lba, data, srv.ActiveSpan(), op.stFn); err != nil {
			t.putOp(op)
			respond(nil, 0, err)
		}
	})
	srv.Handle(MethodFlush, func(arg any, respond func(any, int, error)) {
		t.Flushes++
		op := t.getOp(respond)
		if err := host.FlushSpan(qid, srv.ActiveSpan(), op.stFn); err != nil {
			t.putOp(op)
			respond(nil, 0, err)
		}
	})
	return t
}

// Initiator is the client side.
type Initiator struct {
	c      *rpc.Client
	target netsim.Addr
	bs     int
	caps   *wire.Pool

	// Retry policy. Zero values (the default) keep every verb a single
	// attempt, byte-identical to the unarmed initiator. With
	// MaxRetries > 0, transient failures — request timeouts and remote
	// device-status errors (media errors are transient in this model) —
	// are retried up to that many extra times with RetryBackoff<<attempt
	// between attempts.
	MaxRetries   int
	RetryBackoff sim.Duration

	// Span is the trace context stamped on subsequent verbs (0 =
	// untagged). Harnesses set it per operation when tracing is armed.
	Span telemetry.RequestID

	opFree []*opCtx

	Retries int64 // retry attempts actually issued
}

// NewInitiator builds an initiator talking to target. blockSize must
// match the remote device.
func NewInitiator(c *rpc.Client, target netsim.Addr, blockSize int) *Initiator {
	return &Initiator{c: c, target: target, bs: blockSize, caps: wire.NewPool(readCapLen)}
}

// retryable reports whether an error is worth another attempt: a
// timed-out request or a remote NVMe status error. Remote errors cross
// the wire as strings, so ErrStatus is matched by its message.
func (i *Initiator) retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrTimeout) {
		return true
	}
	return errors.Is(err, rpc.ErrRemote) && strings.Contains(err.Error(), ErrStatus.Error())
}

// opCtx carries one logical verb through its attempts with prebound
// callbacks; instances cycle through the initiator's free list.
type opCtx struct {
	i        *Initiator
	method   string
	capsule  *wire.Buf // base reference, held until the verb resolves
	argBytes int
	span     telemetry.RequestID
	tries    int
	readCb   func(data []byte, err error) // read resolution
	doneCb   func(err error)              // write/flush resolution
	rpcFn    func(val any, err error)
	retryFn  func()
	timer    sim.EventRef // pending retry backoff, zeroed by the recycle reset
}

func (i *Initiator) getOp() *opCtx {
	if n := len(i.opFree); n > 0 {
		op := i.opFree[n-1]
		i.opFree = i.opFree[:n-1]
		return op
	}
	op := &opCtx{i: i}
	op.rpcFn = op.onResult
	op.retryFn = op.attempt
	return op
}

func (op *opCtx) attempt() {
	op.i.c.CallSpan(op.i.target, op.method, argOf(op.capsule), op.argBytes, op.span, op.rpcFn)
}

// argOf boxes a capsule for the rpc layer; a nil *wire.Buf (flush)
// becomes a nil interface so rpc skips capsule refcounting entirely.
func argOf(b *wire.Buf) any {
	if b == nil {
		return nil
	}
	return b
}

// onResult resolves or retries one attempt's outcome.
func (op *opCtx) onResult(val any, err error) {
	i := op.i
	if i.retryable(err) && op.tries < i.MaxRetries {
		i.Retries++
		backoff := i.RetryBackoff << uint(op.tries)
		op.tries++
		if backoff > 0 {
			op.timer = i.c.Engine().After(backoff, "nvmeof.retry", op.retryFn)
		} else {
			op.attempt()
		}
		return
	}
	if op.capsule != nil {
		op.capsule.Release()
	}
	readCb, doneCb := op.readCb, op.doneCb
	*op = opCtx{i: i, rpcFn: op.rpcFn, retryFn: op.retryFn}
	i.opFree = append(i.opFree, op)
	if readCb != nil {
		if err != nil {
			readCb(nil, err)
			return
		}
		d, ok := val.([]byte)
		if !ok {
			readCb(nil, fmt.Errorf("nvmeof: bad response %T", val))
			return
		}
		readCb(d, nil)
		return
	}
	doneCb(err)
}

// Read fetches blocks; cb receives the data.
func (i *Initiator) Read(lba int64, blocks int, cb func(data []byte, err error)) {
	op := i.getOp()
	op.method = MethodRead
	op.capsule = EncodeReadArgs(i.caps, lba, blocks)
	op.argBytes = 64
	op.span = i.Span
	op.readCb = cb
	op.attempt()
}

// Write stores data (len must be a multiple of the block size).
func (i *Initiator) Write(lba int64, data []byte, cb func(err error)) {
	if len(data)%i.bs != 0 {
		cb(fmt.Errorf("nvmeof: unaligned write of %d bytes", len(data)))
		return
	}
	op := i.getOp()
	op.method = MethodWrite
	op.capsule = EncodeWriteArgs(i.caps, lba, data)
	op.argBytes = len(data) + 64
	op.span = i.Span
	op.doneCb = cb
	op.attempt()
}

// Flush hardens all writes.
func (i *Initiator) Flush(cb func(err error)) {
	op := i.getOp()
	op.method = MethodFlush
	op.argBytes = 64
	op.span = i.Span
	op.doneCb = cb
	op.attempt()
}
