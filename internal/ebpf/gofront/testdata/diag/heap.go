// Heap allocation in every guise the subset rejects.
package prog

type Ctx struct {
	A uint64
}

type Point struct {
	X uint64
	Y uint64
}

func Entry(ctx *Ctx) uint64 {
	buf := make([]uint64, 4) // want 9 "make allocates; the restricted subset has no heap" no-heap
	ptr := new(uint64)       // want 9 "new allocates; the restricted subset has no heap" no-heap
	pt := Point{}            // want 8 "composite literals build aggregates in memory; assign fields individually" no-heap
	return 0
}
