// Package maprange_harness is hyperlint golden-test input: maprange
// only polices model packages, so this harness-layer iteration is
// not diagnosed.
package maprange_harness

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
