package bench

import (
	"fmt"

	"hyperion/internal/cluster"
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
)

// ClusterScaleOut goes beyond the paper's single-DPU evaluation to its
// §4 discussion question: distributed CPU-free applications over
// multiple DPUs. A client-routed, replicated KV runs over 1/2/4 DPUs;
// the harness reports shard balance and the replication/failover cost.
func ClusterScaleOut(seed uint64) Result { return clusterScaleOut(seed, false) }

// ClusterScaleOutWindowed is X1 with each row's engine adopted as the
// single shard of a sim.Cluster and driven by conservative windows
// (Cluster.Run) instead of Engine.Run. A 1-shard cluster's engine is
// seeded exactly like a stand-alone engine and windows only partition
// execution in wall time, so the table must be byte-identical to
// ClusterScaleOut at the same seed — the metamorphic suite pins this.
func ClusterScaleOutWindowed(seed uint64) Result { return clusterScaleOut(seed, true) }

func clusterScaleOut(seed uint64, windowed bool) Result {
	r := Result{ID: "X1", Title: "§4 — beyond one DPU: client-routed KV over a DPU rack"}
	r.Table.Header = []string{"dpus", "replicas", "ops", "mean put", "mean get", "max shard load", "failover works"}
	for _, tc := range []struct{ nodes, replicas int }{{1, 1}, {2, 1}, {4, 1}, {4, 3}} {
		var eng *sim.Engine
		var cl *sim.Cluster
		if windowed {
			cl = sim.NewCluster(1, seed, netsim.DefaultConfig().Lookahead())
			eng = cl.Shard(0).Engine()
		} else {
			eng = sim.NewEngine(seed)
		}
		net := netsim.New(eng, netsim.DefaultConfig())
		c, err := cluster.New(eng, net, tc.nodes, tc.replicas)
		if err != nil {
			panic(err)
		}
		rt, err := cluster.NewRouter(c, "client")
		if err != nil {
			panic(err)
		}
		const ops = 300
		var putTotal, getTotal sim.Duration
		// The workload is one closed-loop callback chain (each op issues
		// the next on completion), so a single drive call at the end runs
		// it whether that call is Engine.Run or windowed Cluster.Run.
		failover := "n/a"
		var put, get func(i int)
		finale := func() {
			if tc.replicas <= 1 {
				return
			}
			k := []byte("key-0000")
			c.MarkDown(c.ReplicaSet(k)[0])
			rt.Get(k, func(val []byte, err error) {
				if err == nil && string(val) == "value" {
					failover = "yes"
				} else {
					failover = "NO"
				}
			})
		}
		put = func(i int) {
			if i >= ops {
				get(0)
				return
			}
			k := []byte(fmt.Sprintf("key-%04d", i))
			t0 := eng.Now()
			rt.Put(k, []byte("value"), func(err error) {
				if err != nil {
					panic(err)
				}
				putTotal += eng.Now().Sub(t0)
				put(i + 1)
			})
		}
		get = func(i int) {
			if i >= ops {
				finale()
				return
			}
			k := []byte(fmt.Sprintf("key-%04d", i))
			t0 := eng.Now()
			rt.Get(k, func(_ []byte, err error) {
				if err != nil {
					panic(err)
				}
				getTotal += eng.Now().Sub(t0)
				get(i + 1)
			})
		}
		put(0)
		if windowed {
			cl.Run()
		} else {
			eng.Run()
		}
		var maxLoad int64
		for _, n := range c.Nodes {
			if n.Puts > maxLoad {
				maxLoad = n.Puts
			}
		}
		r.Table.AddRow(itoa(int64(tc.nodes)), itoa(int64(tc.replicas)), itoa(ops),
			(putTotal / ops).String(), (getTotal / ops).String(),
			fmt.Sprintf("%d/%d", maxLoad, ops), failover)
		r.observe(eng)
	}
	r.Notes = append(r.Notes,
		"client-driven routing keeps the path coordinator-free; replication trades put latency for surviving a DPU loss")
	return r
}
