// Package sharedstate_harness proves the sharedstate layer gate:
// harness code (the _harness suffix) may keep package-level counters —
// it is not sharded across engines.
package sharedstate_harness

import (
	"hyperion/internal/sim"
	"hyperion/internal/wire"
)

var hits int64

var lastEngine *sim.Engine

var benchPool *wire.Pool

func bump() {
	hits++ // harness layer: no finding
}

func park(e *sim.Engine) {
	lastEngine = e
}

func retain(b *wire.Buf) *wire.Buf {
	return b.Retain() // harness layer: no finding
}
