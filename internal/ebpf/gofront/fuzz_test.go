package gofront

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"hyperion/internal/ebpf"
)

// FuzzGofront holds the whole frontend to a generative contract: the
// fuzz input is a decision tape driving a generator that only produces
// programs inside the restricted-Go subset, so every generated source
// MUST compile, pass the verifier, and behave identically on the
// compiled backend and the reference interpreter (return value and
// every context byte). A diagnostic, a verifier rejection, or a
// backend divergence is a frontend bug by construction.
//
// Committed corpus seeds live in testdata/fuzz/FuzzGofront and run as
// regression inputs on every plain `go test`.

// tape dishes out generator decisions from the fuzz input; exhausted
// tapes return zeros so every prefix is a complete program.
type tape struct {
	data []byte
	pos  int
}

func (t *tape) next() byte {
	if t.pos >= len(t.data) {
		return 0
	}
	b := t.data[t.pos]
	t.pos++
	return b
}

func (t *tape) pick(n int) int { return int(t.next()) % n }

// genCtxSize is the size of the generated programs' context struct.
const genCtxSize = 104

const genHeader = `package prog

type Ctx struct {
	A    uint64
	B    uint64    ` + "`" + `hyperion:"offset=8"` + "`" + `
	C    uint32    ` + "`" + `hyperion:"offset=16"` + "`" + `
	D    uint16    ` + "`" + `hyperion:"offset=20"` + "`" + `
	E    uint8     ` + "`" + `hyperion:"offset=22"` + "`" + `
	Arr  [8]uint64 ` + "`" + `hyperion:"offset=24"` + "`" + `
	Out0 uint64    ` + "`" + `hyperion:"offset=88"` + "`" + `
	Out1 uint64    ` + "`" + `hyperion:"offset=96"` + "`" + `
}

func Run(ctx *Ctx) uint64 {
	v0 := ctx.A
	v1 := ctx.B
	v2 := uint64(ctx.C)
	v3 := uint64(ctx.D)
`

// genProgram turns a decision tape into a valid restricted-Go source.
func genProgram(t *tape) string {
	var b strings.Builder
	b.WriteString(genHeader)
	n := 3 + t.pick(12)
	for i := 0; i < n; i++ {
		genStmt(&b, t, 1, true)
	}
	b.WriteString("\tctx.Out0 = v2\n")
	b.WriteString("\tctx.Out1 = v3\n")
	b.WriteString("\treturn v0 + v1\n}\n")
	return b.String()
}

var genOps = []string{"+", "-", "*", "/", "%", "&", "|", "^"}

func genVar(t *tape) string { return fmt.Sprintf("v%d", t.pick(4)) }

// genStmt emits one statement. Loops and branches only appear at the
// top level (depth 1) so nesting stays bounded; inLoop gates continue.
func genStmt(b *strings.Builder, t *tape, depth int, topLevel bool) {
	ind := strings.Repeat("\t", depth)
	choice := t.pick(10)
	if !topLevel && choice >= 7 {
		choice = t.pick(7) // no nested loops or branches
	}
	switch choice {
	case 0, 1: // arithmetic on locals
		op := genOps[t.pick(len(genOps))]
		rhs := genVar(t)
		if op == "/" || op == "%" {
			rhs = fmt.Sprintf("%d", 1+t.pick(13))
		}
		fmt.Fprintf(b, "%s%s = %s %s %s\n", ind, genVar(t), genVar(t), op, rhs)
	case 2: // constant shift
		dir := "<<"
		if t.pick(2) == 1 {
			dir = ">>"
		}
		fmt.Fprintf(b, "%s%s = %s %s %d\n", ind, genVar(t), genVar(t), dir, t.pick(32))
	case 3: // masked array read — provably in bounds
		fmt.Fprintf(b, "%s%s = ctx.Arr[%s&7]\n", ind, genVar(t), genVar(t))
	case 4: // context write-back
		out := "Out0"
		if t.pick(2) == 1 {
			out = "Out1"
		}
		fmt.Fprintf(b, "%sctx.%s = %s\n", ind, out, genVar(t))
	case 5: // narrowing conversion chain (stays uint64-typed)
		width := []string{"uint8", "uint16", "uint32"}[t.pick(3)]
		fmt.Fprintf(b, "%s%s = uint64(%s(%s))\n", ind, genVar(t), width, genVar(t))
	case 6: // byte-ish context reads
		src := []string{"uint64(ctx.E)", "uint64(ctx.D)", "uint64(ctx.C)", "ctx.B"}[t.pick(4)]
		fmt.Fprintf(b, "%s%s = %s\n", ind, genVar(t), src)
	case 7: // guarded block, optionally with else
		cmp := []string{"==", "!=", "<", "<=", ">", ">="}[t.pick(6)]
		rhs := genVar(t)
		if t.pick(2) == 1 {
			rhs = fmt.Sprintf("%d", t.pick(64))
		}
		fmt.Fprintf(b, "%sif %s %s %s {\n", ind, genVar(t), cmp, rhs)
		for i, m := 0, 1+t.pick(2); i < m; i++ {
			genStmt(b, t, depth+1, false)
		}
		if t.pick(2) == 1 {
			fmt.Fprintf(b, "%s} else {\n", ind)
			genStmt(b, t, depth+1, false)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case 8: // bounded loop, loop var is a per-copy constant
		trips := 1 + t.pick(6)
		fmt.Fprintf(b, "%sfor i := 0; i < %d; i++ {\n", ind, trips)
		for i, m := 0, 1+t.pick(2); i < m; i++ {
			if t.pick(4) == 0 {
				fmt.Fprintf(b, "%s\tif %s > i {\n%s\t\tcontinue\n%s\t}\n", ind, genVar(t), ind, ind)
			} else {
				genStmt(b, t, depth+1, false)
			}
		}
		fmt.Fprintf(b, "%s\t%s = %s + i\n%s}\n", ind, genVar(t), genVar(t), ind)
	default: // constant assignment
		fmt.Fprintf(b, "%s%s = %d\n", ind, genVar(t), int64(t.next())<<uint(t.pick(56)))
	}
}

// genCtx fills a context buffer from the tail of the tape.
func genCtx(t *tape) []byte {
	ctx := make([]byte, genCtxSize)
	for off := 0; off < genCtxSize; off += 8 {
		binary.LittleEndian.PutUint64(ctx[off:],
			uint64(t.next())|uint64(t.next())<<8|uint64(t.next())<<24|uint64(t.next())<<56)
	}
	return ctx
}

func runGofrontTape(t *testing.T, data []byte) {
	t.Helper()
	tp := &tape{data: data}
	src := genProgram(tp)
	prog, err := Compile("fuzz.go", []byte(src), Options{})
	if err != nil {
		t.Fatalf("generated program rejected:\n%s\n%v", src, err)
	}
	if prog.CtxSize != genCtxSize {
		t.Fatalf("ctx size %d, want %d", prog.CtxSize, genCtxSize)
	}
	vcfg := ebpf.DefaultVerifierConfig(nil)
	vcfg.CtxSize = genCtxSize
	if err := ebpf.Verify(prog.Insns, vcfg); err != nil {
		t.Fatalf("generated program failed the verifier:\n%s\n%s\n%v",
			src, ebpf.Disassemble(prog.Insns), err)
	}
	ctx := genCtx(tp)
	vmC := ebpf.NewVM(nil)
	if err := vmC.Load(prog.Insns); err != nil {
		t.Fatalf("load: %v", err)
	}
	ctxC := append([]byte(nil), ctx...)
	retC, errC := vmC.Run(ctxC)

	vmI := ebpf.NewVM(nil)
	if err := vmI.Load(prog.Insns); err != nil {
		t.Fatalf("load: %v", err)
	}
	ctxI := append([]byte(nil), ctx...)
	retI, errI := vmI.RunInterpreted(ctxI)

	if (errC == nil) != (errI == nil) {
		t.Fatalf("backend error divergence: compiled=%v interpreted=%v\n%s", errC, errI, src)
	}
	if errC != nil {
		t.Fatalf("generated program trapped: %v\n%s", errC, src)
	}
	if retC != retI {
		t.Fatalf("return divergence: compiled=%#x interpreted=%#x\n%s", retC, retI, src)
	}
	if !bytes.Equal(ctxC, ctxI) {
		t.Fatalf("context divergence\n%s", src)
	}
}

func FuzzGofront(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 3, 1, 0, 8, 2, 9, 4, 11, 200, 3, 7, 8, 1, 2})
	f.Add([]byte{9, 8, 5, 3, 3, 0, 7, 1, 4, 4, 8, 0, 0, 3, 250, 13, 17})
	f.Fuzz(runGofrontTape)
}

// TestGeneratedProgramsCompile pushes a spread of deterministic tapes
// through the same contract on every plain test run, fuzz or not.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := 0; seed < 64; seed++ {
		data := make([]byte, 40)
		s := uint64(seed)*0x9e3779b97f4a7c15 + 1
		for i := range data {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			data[i] = byte(s)
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runGofrontTape(t, data)
		})
	}
}
