package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Map is the eBPF map interface: fixed-size keys and values, byte-slice
// semantics like the kernel's.
type Map interface {
	KeySize() int
	ValueSize() int
	Lookup(key []byte) ([]byte, bool)
	Update(key, value []byte) error
	Delete(key []byte) bool
	Len() int
}

// Map errors.
var (
	ErrKeySize   = errors.New("ebpf: wrong key size")
	ErrValueSize = errors.New("ebpf: wrong value size")
	ErrMapFull   = errors.New("ebpf: map full")
	ErrBadIndex  = errors.New("ebpf: array index out of range")
)

// HashMap is a bounded hash map.
type HashMap struct {
	keySize, valueSize, maxEntries int
	m                              map[string][]byte
}

// NewHashMap creates a hash map.
func NewHashMap(keySize, valueSize, maxEntries int) *HashMap {
	if keySize <= 0 || valueSize <= 0 || maxEntries <= 0 {
		panic("ebpf: invalid hash map geometry")
	}
	return &HashMap{keySize: keySize, valueSize: valueSize, maxEntries: maxEntries, m: make(map[string][]byte)}
}

// KeySize returns the key size in bytes.
func (h *HashMap) KeySize() int { return h.keySize }

// ValueSize returns the value size in bytes.
func (h *HashMap) ValueSize() int { return h.valueSize }

// Len returns the number of entries.
func (h *HashMap) Len() int { return len(h.m) }

// Lookup returns a copy-free reference to the stored value.
func (h *HashMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != h.keySize {
		return nil, false
	}
	v, ok := h.m[string(key)]
	return v, ok
}

// Update inserts or replaces an entry.
func (h *HashMap) Update(key, value []byte) error {
	if len(key) != h.keySize {
		return ErrKeySize
	}
	if len(value) != h.valueSize {
		return ErrValueSize
	}
	k := string(key)
	if _, exists := h.m[k]; !exists && len(h.m) >= h.maxEntries {
		return ErrMapFull
	}
	h.m[k] = append([]byte(nil), value...)
	return nil
}

// Delete removes an entry, reporting whether it existed.
func (h *HashMap) Delete(key []byte) bool {
	if len(key) != h.keySize {
		return false
	}
	k := string(key)
	_, ok := h.m[k]
	delete(h.m, k)
	return ok
}

// Iterate visits all entries in ascending key order. Used by
// control-plane code, not by programs; the sort keeps dumps and any
// state derived from them replay-deterministic.
func (h *HashMap) Iterate(fn func(key, value []byte) bool) {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), h.m[k]) {
			return
		}
	}
}

// ArrayMap is a fixed-size array of values with uint32 keys.
type ArrayMap struct {
	valueSize int
	vals      [][]byte
}

// NewArrayMap creates an array map with n slots, all zero-initialized.
func NewArrayMap(valueSize, n int) *ArrayMap {
	if valueSize <= 0 || n <= 0 {
		panic("ebpf: invalid array map geometry")
	}
	a := &ArrayMap{valueSize: valueSize, vals: make([][]byte, n)}
	for i := range a.vals {
		a.vals[i] = make([]byte, valueSize)
	}
	return a
}

// KeySize is always 4 (uint32 index).
func (a *ArrayMap) KeySize() int { return 4 }

// ValueSize returns the value size in bytes.
func (a *ArrayMap) ValueSize() int { return a.valueSize }

// Len returns the number of slots.
func (a *ArrayMap) Len() int { return len(a.vals) }

func (a *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	i := int(binary.LittleEndian.Uint32(key))
	return i, i >= 0 && i < len(a.vals)
}

// Lookup returns the slot contents.
func (a *ArrayMap) Lookup(key []byte) ([]byte, bool) {
	i, ok := a.index(key)
	if !ok {
		return nil, false
	}
	return a.vals[i], true
}

// Update overwrites a slot.
func (a *ArrayMap) Update(key, value []byte) error {
	if len(value) != a.valueSize {
		return ErrValueSize
	}
	i, ok := a.index(key)
	if !ok {
		return ErrBadIndex
	}
	copy(a.vals[i], value)
	return nil
}

// Delete zeroes a slot (array maps cannot remove entries).
func (a *ArrayMap) Delete(key []byte) bool {
	i, ok := a.index(key)
	if !ok {
		return false
	}
	for j := range a.vals[i] {
		a.vals[i][j] = 0
	}
	return true
}

// MapSet names the maps available to a program; map file descriptors in
// real eBPF become small integer ids here, referenced by LoadImm64 of the
// id into a register before a helper call.
type MapSet struct {
	maps []Map
}

// Add registers a map and returns its id.
func (s *MapSet) Add(m Map) int {
	s.maps = append(s.maps, m)
	return len(s.maps) - 1
}

// Get returns the map with id i.
func (s *MapSet) Get(i int) (Map, error) {
	if i < 0 || i >= len(s.maps) {
		return nil, fmt.Errorf("ebpf: no map with id %d", i)
	}
	return s.maps[i], nil
}

// Len returns the number of registered maps.
func (s *MapSet) Len() int { return len(s.maps) }
