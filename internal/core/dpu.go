// Package core assembles the Hyperion DPU out of its substrates, wiring
// the Figure 2 schematic: two QSFP ports feed a DEMUX and AXIS arbiters
// into reconfigurable accelerator slots; a runtime config engine loads
// authorized bitstreams; an FPGA-hosted PCIe root complex with an NVMe
// host IP core reaches four SSDs over bifurcated x4 links; and the
// single-level segment store unifies DRAM and flash behind 128-bit
// object ids. There is no host CPU anywhere in the path.
package core

import (
	"errors"
	"fmt"

	"hyperion/internal/fabric"
	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/pcie"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/tenant"
	"hyperion/internal/transport"
)

// Config shapes one DPU.
type Config struct {
	Name    string
	Fabric  fabric.Config
	NVMe    nvme.Config // per-SSD template; four instances are created
	SSDs    int
	Seg     seg.Config
	AuthTag string // accepted bitstream authorization tag
	// Transport used by the OS-shell control plane and data services.
	Transport transport.Kind
}

// DefaultConfig returns the paper's prototype: U280 fabric, 4 NVMe SSDs,
// RDMA-style transport for control.
func DefaultConfig(name string) Config {
	ncfg := nvme.DefaultConfig(name + "-ssd")
	ncfg.Blocks = 4 << 20 // 16 GiB per SSD keeps simulations light
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 256 << 20
	return Config{
		Name:      name,
		Fabric:    fabric.DefaultConfig(),
		NVMe:      ncfg,
		SSDs:      4,
		Seg:       scfg,
		AuthTag:   "hyperion-dev-key",
		Transport: transport.RDMA,
	}
}

// Errors.
var (
	ErrSelfTest  = errors.New("core: JTAG self-test failed")
	ErrNotBooted = errors.New("core: DPU not booted")
)

// DPU is one Hyperion device.
type DPU struct {
	Cfg    Config
	Eng    *sim.Engine
	Fabric *fabric.Fabric
	Root   *pcie.RootComplex
	SSDs   []*nvme.Device
	Hosts  []*nvme.Host
	Store  *seg.Store
	View   *seg.SyncView

	// QSFP0 carries the data plane; QSFP1 carries the control plane
	// (the OS-shell) — the split drawn in Figure 2.
	Data    *netsim.NIC
	Control *netsim.NIC
	DataEP  transport.Endpoint
	CtrlEP  transport.Endpoint
	CtrlSrv *rpc.Server

	booted   bool
	enumOut  []string
	demux    *fabric.Demux
	arbiter  *fabric.Arbiter
	handlers map[uint16]func(netsim.Frame)
	rec      *telemetry.Recorder
	tenants  *tenant.Controller
	fig2Free []*fig2Ctx

	Counters sim.CounterSet
}

// SetRecorder arms the telemetry plane on every substrate of this DPU:
// the fabric slots, the AXIS ingress arbiter, the PCIe root complex,
// each SSD and its NVMe host driver, the segment store, and the
// control-plane RPC server. Disarmed (nil) every hook is a pure nil
// check — the datapath is bit-identical to the unhooked DPU.
func (d *DPU) SetRecorder(rec *telemetry.Recorder) {
	d.rec = rec
	d.Fabric.SetRecorder(rec)
	d.Root.SetRecorder(rec)
	for _, dev := range d.SSDs {
		dev.SetRecorder(rec)
	}
	for _, h := range d.Hosts {
		h.SetRecorder(rec)
	}
	d.Store.SetRecorder(rec)
	d.arbiter.SetRecorder(rec)
	if d.tenants != nil {
		d.tenants.SetRecorder(rec)
	}
	if d.CtrlSrv != nil {
		d.CtrlSrv.SetRecorder(rec)
	}
}

// Boot powers the DPU: fabric self-test, PCIe enumeration by the
// on-card root complex, NVMe binding, segment store construction, and
// network attachment — all without any host CPU (the paper's
// stand-alone boot). It returns the enumeration log.
func Boot(eng *sim.Engine, net *netsim.Network, cfg Config) (*DPU, []string, error) {
	return boot(eng, net, cfg, nil)
}

// Reboot boots a DPU against the surviving flash of a previous instance
// (the devices keep their contents; DRAM and fabric state are lost).
// Callers then run Store.Recover to rebuild the segment table from the
// persisted checkpoint — the crash-recovery path of §2.1.
func Reboot(eng *sim.Engine, net *netsim.Network, old *DPU) (*DPU, []string, error) {
	if net != nil {
		net.Detach(old.DataAddr())
		net.Detach(old.ControlAddr())
	}
	return boot(eng, net, old.Cfg, old.SSDs)
}

func boot(eng *sim.Engine, net *netsim.Network, cfg Config, existing []*nvme.Device) (*DPU, []string, error) {
	d := &DPU{Cfg: cfg, Eng: eng, handlers: make(map[uint16]func(netsim.Frame))}

	// JTAG self-test: the fabric must expose sane geometry.
	if cfg.Fabric.Slots <= 0 || cfg.Fabric.ClockHz <= 0 {
		return nil, nil, ErrSelfTest
	}
	d.Fabric = fabric.New(eng, cfg.Fabric, cfg.AuthTag)

	// Root complex with the crossover board's x16 → 4×x4 bifurcation.
	lanes := make([]int, cfg.SSDs)
	for i := range lanes {
		lanes[i] = 4
	}
	d.Root = pcie.NewRootComplex(eng, lanes)
	for i := 0; i < cfg.SSDs; i++ {
		var dev *nvme.Device
		if existing != nil {
			dev = existing[i]
		} else {
			ncfg := cfg.NVMe
			ncfg.Name = fmt.Sprintf("%s-ssd%d", cfg.Name, i)
			dev = nvme.New(eng, ncfg)
		}
		if err := d.Root.Attach(i, dev); err != nil {
			return nil, nil, err
		}
		d.SSDs = append(d.SSDs, dev)
	}
	enum, err := d.Root.Enumerate()
	if err != nil {
		return nil, nil, err
	}
	d.enumOut = enum

	// Bind each SSD's DMA to its own PCIe link and build host drivers
	// (the "NVMe host IP core" block).
	for i, dev := range d.SSDs {
		base, _ := d.Root.Ports()[i].BAR()
		dev.Bind(func(size int64, done func()) {
			// Device-initiated DMA on its own bifurcated link.
			if err := d.Root.DMA(base, size, done); err != nil {
				done()
			}
		}, nil)
		d.Hosts = append(d.Hosts, nvme.NewHost(dev, func(q int) {
			_, _ = d.Root.MMIOWrite(base+int64(q)*nvme.DoorbellStride, 1)
		}))
	}

	// Single-level store over DRAM + the four SSDs.
	d.Store = seg.New(eng, cfg.Seg, d.Hosts)
	d.View = seg.NewSyncView(d.Store)

	// QSFP ports.
	if net != nil {
		d.Data, err = net.Attach(netsim.Addr(cfg.Name + "-q0"))
		if err != nil {
			return nil, nil, err
		}
		d.Control, err = net.Attach(netsim.Addr(cfg.Name + "-q1"))
		if err != nil {
			return nil, nil, err
		}
		d.DataEP = transport.New(eng, cfg.Transport, d.Data)
		d.CtrlEP = transport.New(eng, cfg.Transport, d.Control)
		d.CtrlSrv = rpc.NewServer(eng, d.CtrlEP, rpc.RunToCompletion)
		d.registerShell()
	}

	// The Figure 2 ingress: DEMUX by destination port into the AXIS
	// arbiter feeding the slots. Raw-frame handlers are registered per
	// UDP-style port by the applications.
	d.arbiter = fabric.NewArbiter(eng, cfg.Name+".arb", cfg.Fabric.ClockHz, 64, 256,
		cfg.Fabric.Slots, func(it fabric.Item) { d.dispatch(it) })

	d.booted = true
	return d, enum, nil
}

// DataAddr returns the data-plane network address.
func (d *DPU) DataAddr() netsim.Addr { return netsim.Addr(d.Cfg.Name + "-q0") }

// ControlAddr returns the control-plane network address.
func (d *DPU) ControlAddr() netsim.Addr { return netsim.Addr(d.Cfg.Name + "-q1") }

// dispatch runs an item that has traversed the arbiter: it carries the
// pre-bound handler.
func (d *DPU) dispatch(it fabric.Item) {
	b, ok := it.Payload.(boundFrame)
	if !ok {
		d.Counters.Get("bad_items").Add(1)
		return
	}
	b.handler(b.frame)
}

type boundFrame struct {
	frame   netsim.Frame
	handler func(netsim.Frame)
}

// HandleRawPort registers a raw-frame handler for a destination port
// (the packet's classifier key). Frames arriving on the data NIC with a
// matching port flow through DEMUX and arbiter before the handler runs.
func (d *DPU) HandleRawPort(port uint16, fn func(netsim.Frame)) {
	if len(d.handlers) == 0 {
		d.Data.OnReceive(d.onDataFrame)
	}
	d.handlers[port] = fn
}

// rawFrame is the payload shape raw-port senders use.
type RawFrame struct {
	Port    uint16
	Payload []byte
}

func (d *DPU) onDataFrame(f netsim.Frame) {
	rf, ok := f.Payload.(RawFrame)
	if !ok {
		d.Counters.Get("unclassified").Add(1)
		return
	}
	h, ok := d.handlers[rf.Port]
	if !ok {
		d.Counters.Get("no_handler").Add(1)
		return
	}
	// Route through the arbiter input matching the port's slot affinity.
	in := d.arbiter.In(int(rf.Port) % d.arbiter.Inputs())
	err := in.Push(fabric.Item{Payload: boundFrame{frame: f, handler: h}, Bytes: f.Bytes})
	if err != nil {
		d.Counters.Get("ingress_drops").Add(1)
	}
}

// LoadAccelerator asks the config engine to load a bitstream into the
// given slot (local call; the OS-shell exposes the same over the
// network). done fires when partial reconfiguration completes.
func (d *DPU) LoadAccelerator(slot int, bs *fabric.Bitstream, done func()) error {
	if !d.booted {
		return ErrNotBooted
	}
	return d.Fabric.LoadBitstream(slot, bs, done)
}

// Submit pushes an item into an accelerator slot.
func (d *DPU) Submit(slot int, item any, result func(out any)) error {
	return d.Fabric.Submit(slot, item, result)
}

// Enumeration returns the boot-time PCIe walk output.
func (d *DPU) Enumeration() []string { return d.enumOut }
