// Package sharedstate enforces the static precondition for sharding
// sim.Engine across cores (ROADMAP's rack-scale PDES item): model-layer
// packages must not carry package-level mutable state, and must not
// park engine or event handles in package scope.
//
// Two rules, model layer only (the sim package itself is exempt — it
// owns the engine):
//
//   - a package-level variable must not be written outside its
//     declaration or an init function. Read-only lookup tables and
//     error sentinels pass; counters, caches, registries and
//     last-winner scratch variables fail, because two engines sharded
//     onto different cores would race or — worse for this repo —
//     deterministically corrupt each other.
//   - a package-level variable whose type contains sim.EventRef or
//     *sim.Engine is flagged at its declaration: cross-engine
//     references must live per-instance so each shard's reachability
//     is closed over its own engine.
//
// Two more rules guard the zero-copy buffer plane under sim.Cluster
// sharding (the wire package itself is exempt — it owns the types):
//
//   - a package-level variable whose type contains wire.Pool or
//     *wire.Buf is flagged at its declaration: a pool's free list is
//     single-threaded state, so pools (and the buffers they recycle)
//     must be shard-local — one pool per cluster shard, reachable only
//     from that shard's handlers.
//   - every Buf.Retain call must carry a `//wire:sends <destination>`
//     annotation on its own line or the line above, naming where the
//     new reference goes. Retain is the only way a buffer's reference
//     count fans out, so annotated retains are an auditable inventory
//     of every point where a reference could migrate — the reviewer's
//     (and hyperflow's) checklist that none of them crosses a shard
//     boundary. On function declarations `//wire:` directives remain
//     flow contracts (see internal/analysis/flow); the line form here
//     is deliberately the same vocabulary, naming the envelope or
//     callee custody moves to.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperion/internal/analysis"
)

// Analyzer is the sharedstate pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc:  "model packages must not hold package-level mutable state or cross-engine references",
	Run:  run,
}

const (
	simPath  = analysis.ModulePath + "/internal/sim"
	wirePath = analysis.ModulePath + "/internal/wire"
)

func run(pass *analysis.Pass) error {
	if pass.Layer != analysis.LayerModel || pass.Path == simPath {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		// Rules 2 and 3: engine- or buffer-typed package state, at the
		// declaration.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || v.Parent() != pass.Pkg.Scope() {
						continue
					}
					if bad := engineRef(v.Type()); bad != "" {
						pass.Reportf(name.Pos(), "package-level var %s holds %s: engine-scoped handles must live per-instance so sim.Engine can shard", name.Name, bad)
					}
					if pass.Path == wirePath {
						continue
					}
					if bad := wireRef(v.Type()); bad != "" {
						pass.Reportf(name.Pos(), "package-level var %s holds %s: buffer pools and buffers must be shard-local so free lists never cross sim.Cluster shards", name.Name, bad)
					}
				}
			}
		}
		sends := collectWireSends(pass.Fset, f)
		// Rules 1 and 4: package-level writes and unannotated retains.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // build-time table construction is fine
			}
			checkWrites(pass, fd.Body)
			if pass.Path != wirePath {
				checkRetains(pass, fd.Body, sends)
			}
		}
	}
	return nil
}

// collectWireSends indexes the lines of f covered by a line-form
// `//wire:sends <destination>` annotation: the annotation's own line
// (trailing comment) and the next (standalone comment above the call).
// An annotation with no destination text covers nothing — a bare verb
// documents nothing worth auditing.
func collectWireSends(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//wire:sends")
			if !ok || strings.TrimSpace(rest) == "" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// checkRetains reports wire.Buf Retain calls lacking a //wire:sends
// destination annotation.
func checkRetains(pass *analysis.Pass, body *ast.BlockStmt, sends map[int]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Retain" {
			return true
		}
		recv := pass.TypesInfo.TypeOf(sel.X)
		if recv == nil {
			return true
		}
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv = p.Elem()
		}
		if !analysis.IsNamed(recv, wirePath, "Buf") {
			return true
		}
		if sends[pass.Fset.Position(call.Pos()).Line] {
			return true
		}
		pass.Reportf(call.Pos(), "wire.Buf Retain without a //wire:sends destination: every new reference must name where it goes so cross-shard hand-offs stay auditable")
		return true
	})
}

// checkWrites reports assignments, op-assignments, increments and
// element/field stores whose base resolves to a package-level var.
func checkWrites(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportPkgWrite(pass, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			reportPkgWrite(pass, n.X, n.Pos())
		}
		return true
	})
}

func reportPkgWrite(pass *analysis.Pass, lhs ast.Expr, pos token.Pos) {
	id := baseIdent(lhs)
	if id == nil {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() != pass.Pkg.Scope() {
		return
	}
	pass.Reportf(pos, "package-level var %s is mutated in model code: state must live per-instance so sim.Engine can shard", id.Name)
}

// baseIdent peels selectors, indexes, stars and parens down to the
// root identifier of an lvalue.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// wireRef reports whether t transitively contains wire.Pool (by value
// or pointer) or a wire.Buf reference, returning a human name for the
// offending component.
func wireRef(t types.Type) string {
	return wireRefSeen(t, make(map[types.Type]bool))
}

func wireRefSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if analysis.IsNamed(t, wirePath, "Pool") {
		return "wire.Pool"
	}
	switch t := t.(type) {
	case *types.Pointer:
		if analysis.IsNamed(t.Elem(), wirePath, "Pool") {
			return "*wire.Pool"
		}
		if analysis.IsNamed(t.Elem(), wirePath, "Buf") {
			return "*wire.Buf"
		}
		return wireRefSeen(t.Elem(), seen)
	case *types.Named:
		return wireRefSeen(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if bad := wireRefSeen(t.Field(i).Type(), seen); bad != "" {
				return bad
			}
		}
	case *types.Slice:
		return wireRefSeen(t.Elem(), seen)
	case *types.Array:
		return wireRefSeen(t.Elem(), seen)
	case *types.Map:
		if bad := wireRefSeen(t.Key(), seen); bad != "" {
			return bad
		}
		return wireRefSeen(t.Elem(), seen)
	case *types.Chan:
		return wireRefSeen(t.Elem(), seen)
	}
	return ""
}

// engineRef reports whether t transitively contains sim.EventRef or
// *sim.Engine, returning a human name for the offending component.
func engineRef(t types.Type) string {
	return engineRefSeen(t, make(map[types.Type]bool))
}

func engineRefSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if analysis.IsNamed(t, simPath, "EventRef") {
		return "sim.EventRef"
	}
	switch t := t.(type) {
	case *types.Pointer:
		if analysis.IsNamed(t.Elem(), simPath, "Engine") {
			return "*sim.Engine"
		}
		return engineRefSeen(t.Elem(), seen)
	case *types.Named:
		return engineRefSeen(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if bad := engineRefSeen(t.Field(i).Type(), seen); bad != "" {
				return bad
			}
		}
	case *types.Slice:
		return engineRefSeen(t.Elem(), seen)
	case *types.Array:
		return engineRefSeen(t.Elem(), seen)
	case *types.Map:
		if bad := engineRefSeen(t.Key(), seen); bad != "" {
			return bad
		}
		return engineRefSeen(t.Elem(), seen)
	case *types.Chan:
		return engineRefSeen(t.Elem(), seen)
	}
	return ""
}
