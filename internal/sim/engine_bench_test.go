package sim

import "testing"

// Kernel microbenchmarks at two queue depths: 1k (rack-scale experiment
// working set) and 100k (cluster-scale incast). Churn is the headline:
// a balanced schedule/fire/cancel mix that holds queue depth steady, so
// after warmup the free-list pool makes it a zero-allocation loop.
// Before/after numbers vs the seed container/heap kernel are recorded
// in EXPERIMENTS.md.

// benchSchedule measures the pure push path at a steady queue depth:
// each timed chunk schedules `depth` events on top of a `depth`-deep
// queue, then drains the surplus off-timer so slab growth is a one-time
// warmup cost, not the measurement.
func benchSchedule(b *testing.B, depth int) {
	e := NewEngine(1)
	fn := func() {}
	next := int64(0)
	fill := func(n int) {
		for j := 0; j < n; j++ {
			e.At(Time(next)*Time(Nanosecond), "", fn)
			next++
		}
	}
	drain := func(n int) {
		for j := 0; j < n; j++ {
			e.Step()
		}
	}
	fill(2 * depth) // warm slab and pool to steady-state capacity
	drain(depth)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		chunk := depth
		if n+chunk > b.N {
			chunk = b.N - n
		}
		fill(chunk)
		n += chunk
		b.StopTimer()
		drain(chunk)
		b.StartTimer()
	}
}

func benchCancel(b *testing.B, depth int) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.After(Duration(i)*Nanosecond, "", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(Duration(i+depth)*Nanosecond, "", fn)
		e.Cancel(ev)
	}
}

func benchChurn(b *testing.B, depth int) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.After(Duration(i)*Nanosecond, "", fn)
	}
	horizon := Duration(depth) * Nanosecond
	churn := func(i int) {
		ev := e.After(horizon, "x", fn)
		if i%2 == 0 {
			e.Cancel(ev)
		} else {
			e.Step()
		}
	}
	// Warm the heap and pool to steady-state capacity so the timed loop
	// measures the recycling path, not slab growth.
	for i := 0; i < 2*depth; i++ {
		churn(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn(i)
	}
}

func BenchmarkEngine_Schedule(b *testing.B) {
	b.Run("depth1k", func(b *testing.B) { benchSchedule(b, 1000) })
	b.Run("depth100k", func(b *testing.B) { benchSchedule(b, 100000) })
}

func BenchmarkEngine_Cancel(b *testing.B) {
	b.Run("depth1k", func(b *testing.B) { benchCancel(b, 1000) })
	b.Run("depth100k", func(b *testing.B) { benchCancel(b, 100000) })
}

func BenchmarkEngine_Churn(b *testing.B) {
	b.Run("depth1k", func(b *testing.B) { benchChurn(b, 1000) })
	b.Run("depth100k", func(b *testing.B) { benchChurn(b, 100000) })
}
