// Quickstart: boot a CPU-free Hyperion DPU, store an object in the
// single-level segment store, load a verified eBPF accelerator into a
// fabric slot, and push a packet through it — the whole §2 stack in
// fifty lines of API.
package main

import (
	"fmt"
	"log"

	"hyperion/internal/core"
	"hyperion/internal/ebpf"
	"hyperion/internal/ehdl"
	"hyperion/internal/netsim"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func main() {
	// A simulation engine is the substrate for everything: virtual time
	// in picoseconds, fully deterministic for a given seed.
	eng := sim.NewEngine(42)
	net := netsim.New(eng, netsim.DefaultConfig())

	// Boot the DPU: fabric self-test, on-card PCIe enumeration of the
	// four NVMe SSDs, segment store, QSFP attach. No host CPU anywhere.
	dpu, enum, err := core.Boot(eng, net, core.DefaultConfig("demo"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted:")
	for _, line := range enum {
		fmt.Println(" ", line)
	}

	// 1. Single-level store: a durable 128-bit-addressed object that
	// lands on NVMe, written and read back through the same API as DRAM.
	id := seg.OID(0xCAFE, 1)
	if _, err := dpu.Store.Alloc(id, 4096, true, seg.HintAuto); err != nil {
		log.Fatal(err)
	}
	dpu.Store.Write(id, 0, []byte("hello, CPU-free world"), func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("object %v durable at t=%v\n", id, eng.Now())
	})
	eng.Run()

	// 2. Programming: an eBPF program (the paper's accelerator-neutral
	// IR), verified and compiled into a hardware pipeline estimate.
	prog := ebpf.MustAssemble(`
		ldxw r2, [r1+0]     ; first word of the packet
		mov r0, 0
		jgt r2, 1000, big
		mov r0, 1           ; small packets accepted
	big:	exit`)
	pipe, err := ehdl.Compile(prog, ehdl.Options{
		Name:     "tiny-filter",
		AuthTag:  dpu.Cfg.AuthTag,
		Optimize: true,
		CtxBytes: 64,
		Verifier: ebpf.DefaultVerifierConfig(nil),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d insns → depth %d, II %d, %.1f MiB bitstream\n",
		pipe.Stats.Instructions, pipe.Stats.Depth, pipe.Stats.II,
		float64(pipe.Stats.SizeBytes)/(1<<20))

	// 3. Partial reconfiguration: load it into slot 0 (10–100 ms ICAP
	// window), then push an item through the pipeline.
	if err := dpu.LoadAccelerator(0, pipe.Bitstream(), func() {
		fmt.Printf("slot 0 active at t=%v\n", eng.Now())
	}); err != nil {
		log.Fatal(err)
	}
	eng.Run()
	pkt := make([]byte, 64)
	pkt[0] = 99 // first word = 99 ≤ 1000 → accept
	if err := dpu.Submit(0, pkt, func(out any) {
		res := out.(*ehdl.Result)
		fmt.Printf("pipeline verdict=%d at t=%v (deterministic latency)\n", res.Ret, eng.Now())
	}); err != nil {
		log.Fatal(err)
	}
	eng.Run()
	fmt.Println("done")
}
