// Package analysistest runs hyperlint analyzers over golden testdata
// packages, in the style of x/tools/go/analysis/analysistest.
//
// A testdata package lives at <testdata>/src/<name>/ and encodes its
// expected diagnostics as comments:
//
//	eng.RunUntil(5000) // want `raw literal 5000`
//
// Each `want` comment carries one or more quoted regular expressions;
// every diagnostic reported on that line must match one of them, and
// every expectation must be matched by exactly one diagnostic. A line
// with findings but no want comment — or the reverse — fails the test.
//
// The package name doubles as its import path, so the layer-
// classification suffixes work: a package named foo_harness loads as a
// harness-layer package, foo_exempt as exempt (see analysis.Classify).
// Testdata may import real module packages such as hyperion/internal/sim.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hyperion/internal/analysis"
)

// Run loads each named testdata package and checks the analyzer's
// diagnostics against the package's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := analysis.ModuleRoot(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader(root)
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Errorf("loading %s: %v", name, err)
			continue
		}
		findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, name, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

// expectation is one quoted regexp from a want comment.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func checkExpectations(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				collectWants(t, pkg, c, wants)
			}
		}
	}
	for _, f := range findings {
		key := lineKey{f.Position.Filename, f.Position.Line}
		if !matchOne(wants[key], f.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Position, f.Check, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, e.re)
			}
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package, c *ast.Comment, wants map[lineKey][]*expectation) {
	t.Helper()
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return
	}
	posn := pkg.Fset.Position(c.Pos())
	key := lineKey{posn.Filename, posn.Line}
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		pat, remainder, err := nextQuoted(rest)
		if err != nil {
			t.Errorf("%s: malformed want comment %q: %v", posn, c.Text, err)
			return
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
			return
		}
		wants[key] = append(wants[key], &expectation{re: re})
		rest = strings.TrimSpace(remainder)
	}
}

// nextQuoted splits the leading Go string literal (double- or
// back-quoted) off a want comment payload.
func nextQuoted(s string) (pat, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated back-quoted string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				pat, err := strconv.Unquote(s[:i+1])
				return pat, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quoted string")
	default:
		return "", "", fmt.Errorf("expected quoted regexp, found %q", s)
	}
}

func matchOne(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}
