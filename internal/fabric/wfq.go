package fabric

import (
	"fmt"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// wfqPort is one weighted input of a WFQArbiter: a head-indexed FIFO
// plus the deficit-round-robin bookkeeping for its share of the bus.
type wfqPort struct {
	name    string
	weight  int
	deficit int64 // accumulated bus beats of credit
	visited bool  // quantum already granted on the current scheduler visit
	// queue is a head-indexed FIFO like Stream's: pops advance head and
	// the backing array recycles once drained.
	queue  []Item
	head   int
	pushAt []sim.Time // armed only: enqueue time per queued item

	Pushed    int64
	Delivered int64
	Dropped   int64 // backpressure drops (FIFO full)
	Flushed   int64 // items removed by Flush (preemption/eviction)
}

func (p *wfqPort) len() int { return len(p.queue) - p.head }

func (p *wfqPort) pop() (Item, sim.Time) {
	it := p.queue[p.head]
	p.queue[p.head] = Item{}
	p.head++
	var t0 sim.Time
	if len(p.pushAt) > 0 {
		t0 = p.pushAt[0]
		p.pushAt = p.pushAt[1:]
	}
	if p.len() == 0 {
		p.queue = p.queue[:0]
		p.head = 0
	}
	return it, t0
}

// WFQArbiter merges N weighted input FIFOs onto one bus using deficit
// round robin: on each visit a non-empty port earns `weight` beats of
// credit, and its head departs once the credit covers the item's beat
// cost. The long-run bus share of backlogged ports is therefore
// proportional to their weights, yet any port with a positive weight is
// served within a bounded number of rounds — the weighted-fair
// front end of the tenant plane, replacing the plain round-robin
// Arbiter where tenants are not equals.
//
// Unlike Arbiter (independent per-input Streams racing to one sink),
// WFQArbiter models a single shared bus: exactly one item occupies it
// at a time, for ceil(Bytes/WidthBytes) beats.
type WFQArbiter struct {
	Name       string
	WidthBytes int // bus width per beat
	DepthItems int // FIFO capacity per port, in items

	eng     *sim.Engine
	period  sim.Duration // one beat
	sink    func(Item)
	onDrop  func(Item) // optional: observes fault-injected drops
	onFlush func(Item) // optional: observes items removed by Flush
	ports   []*wfqPort
	rr      int // port the scheduler is currently visiting
	busy    bool
	cur     Item     // item occupying the bus
	curPort int      // its port
	curT0   sim.Time // armed only: its enqueue time

	beatName string
	beatFn   func()
	plan     *fault.Plan
	rec      *telemetry.Recorder
	dropName string // armed only: precomputed drop-counter name

	Pushed     int64
	Delivered  int64
	FaultDrops int64 // injected drops (bus beats consumed, then discarded)
}

// NewWFQArbiter creates a weighted-fair arbiter with n input ports (all
// weight 1 until SetWeight) feeding sink out, clocked at clockHz.
func NewWFQArbiter(eng *sim.Engine, name string, clockHz int64, widthBytes, depthItems, n int, out func(Item)) *WFQArbiter {
	if widthBytes <= 0 || depthItems <= 0 || clockHz <= 0 || n <= 0 {
		panic("fabric: invalid wfq parameters")
	}
	w := &WFQArbiter{
		Name:       name,
		WidthBytes: widthBytes,
		DepthItems: depthItems,
		eng:        eng,
		period:     sim.Duration(int64(sim.Second) / clockHz),
		sink:       out,
		beatName:   "wfq:" + name,
	}
	w.beatFn = w.deliver
	for i := 0; i < n; i++ {
		w.ports = append(w.ports, &wfqPort{name: fmt.Sprintf("%s.in%d", name, i), weight: 1})
	}
	return w
}

// SetWeight sets port i's DRR quantum, in bus beats per scheduler
// visit. Weights must be positive: the starvation bound (any backlogged
// port is served within one full round once its credit covers its head)
// holds only for weight >= 1.
func (w *WFQArbiter) SetWeight(i, weight int) {
	if weight < 1 {
		panic("fabric: wfq weight must be positive")
	}
	w.ports[i].weight = weight
}

// Weight returns port i's quantum.
func (w *WFQArbiter) Weight(i int) int { return w.ports[i].weight }

// Ports returns the number of input ports.
func (w *WFQArbiter) Ports() int { return len(w.ports) }

// Len returns port i's FIFO occupancy (excluding an item on the bus).
func (w *WFQArbiter) Len(i int) int { return w.ports[i].len() }

// PortStats reports per-port counters (pushed, delivered, backpressure
// drops, flushed) for telemetry tables.
func (w *WFQArbiter) PortStats(i int) (pushed, delivered, dropped, flushed int64) {
	p := w.ports[i]
	return p.Pushed, p.Delivered, p.Dropped, p.Flushed
}

// SetFaultPlan installs a fault plan consulted once per delivered item
// (kind Drop, as on Stream: the item occupies its bus beats, then is
// squashed before the sink). A nil or zero-rate plan leaves delivery
// bit-identical to an unhooked arbiter.
func (w *WFQArbiter) SetFaultPlan(p *fault.Plan) { w.plan = p }

// SetOnDrop installs an observer for fault-injected drops, so upstream
// request bookkeeping (the tenant plane's completion callbacks) can
// resolve squashed items instead of hanging.
func (w *WFQArbiter) SetOnDrop(fn func(Item)) { w.onDrop = fn }

// SetOnFlush installs an observer invoked for every item Flush removes,
// in FIFO order, before Flush returns.
func (w *WFQArbiter) SetOnFlush(fn func(Item)) { w.onFlush = fn }

// SetRecorder arms the telemetry plane: one span per delivered item
// covering enqueue to sink handoff (FIFO wait + bus beats), named after
// the port. Disarmed (nil, the default) the hooks are pure nil checks
// and delivery stays bit-identical.
func (w *WFQArbiter) SetRecorder(rec *telemetry.Recorder) {
	w.rec = rec
	if rec != nil {
		w.dropName = "drop:" + w.Name
	}
}

// Push enqueues an item on port i, or returns ErrStreamFull under
// backpressure.
func (w *WFQArbiter) Push(i int, it Item) error {
	if w.sink == nil {
		panic(fmt.Sprintf("fabric: wfq %q has no sink", w.Name))
	}
	p := w.ports[i]
	if it.Bytes <= 0 {
		it.Bytes = 1
	}
	if p.len() >= w.DepthItems {
		p.Dropped++
		return ErrStreamFull
	}
	p.queue = append(p.queue, it)
	if w.rec != nil {
		p.pushAt = append(p.pushAt, w.eng.Now())
	}
	p.Pushed++
	w.Pushed++
	if !w.busy {
		w.busy = true
		w.next()
	}
	return nil
}

// Flush removes every queued item from port i (an evicted or departing
// tenant's backlog) and returns them in FIFO order, resetting the
// port's scheduler credit. An item already occupying the bus is not
// recalled — it was committed to the wire — and still reaches the sink.
func (w *WFQArbiter) Flush(i int) []Item {
	p := w.ports[i]
	n := p.len()
	if n == 0 {
		p.deficit = 0
		p.visited = false
		return nil
	}
	out := make([]Item, 0, n)
	for p.len() > 0 {
		it, _ := p.pop()
		p.Flushed++
		out = append(out, it)
		if w.onFlush != nil {
			w.onFlush(it)
		}
	}
	p.deficit = 0
	p.visited = false
	return out
}

func (w *WFQArbiter) beats(it Item) int64 {
	b := int64((it.Bytes + w.WidthBytes - 1) / w.WidthBytes)
	if b < 1 {
		b = 1
	}
	return b
}

// next runs the DRR scheduler: pick the item to put on the bus and
// schedule its beats. Progress is guaranteed with positive weights —
// every full round adds at least one beat of credit to each backlogged
// port, and an item's cost is finite.
func (w *WFQArbiter) next() {
	n := len(w.ports)
	backlog := false
	for _, p := range w.ports {
		if p.len() > 0 {
			backlog = true
			break
		}
	}
	if !backlog {
		w.busy = false
		return
	}
	for {
		p := w.ports[w.rr]
		if p.len() == 0 {
			p.deficit = 0
			p.visited = false
			w.rr = (w.rr + 1) % n
			continue
		}
		if !p.visited {
			p.deficit += int64(p.weight)
			p.visited = true
		}
		cost := w.beats(p.queue[p.head])
		if p.deficit < cost {
			p.visited = false
			w.rr = (w.rr + 1) % n
			continue
		}
		p.deficit -= cost
		w.cur, w.curT0 = p.pop()
		w.curPort = w.rr
		w.eng.After(sim.Duration(cost)*w.period, w.beatName, w.beatFn)
		return
	}
}

// deliver fires when the bus finishes the in-service item's beats.
func (w *WFQArbiter) deliver() {
	it := w.cur
	p := w.ports[w.curPort]
	w.cur = Item{}
	t0 := w.curT0
	if w.plan.Roll(fault.Drop) {
		w.FaultDrops++
		if w.rec != nil {
			w.rec.Count("wfq", w.dropName, 1)
		}
		if w.onDrop != nil {
			w.onDrop(it)
		}
	} else {
		if w.rec != nil {
			sp := w.rec.Begin("wfq", p.name, it.Span, t0)
			sp.End(w.eng.Now())
		}
		p.Delivered++
		w.Delivered++
		w.sink(it)
	}
	w.next()
}
