package lb

import (
	"testing"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/trace"
)

func newBalancer(t testing.TB, hotCap int) (*seg.SyncView, *Balancer) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	v := seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
	b, err := New(v, seg.OID(0x1b, 0), []Backend{{Addr: 1}, {Addr: 2}, {Addr: 3}}, hotCap)
	if err != nil {
		t.Fatal(err)
	}
	return v, b
}

func syn(src uint32, port uint16) trace.Packet {
	return trace.Packet{SrcIP: src, DstIP: 9, SrcPort: port, DstPort: 443, Proto: 6, Flags: 0x02, Bytes: 60}
}

func data(src uint32, port uint16) trace.Packet {
	p := syn(src, port)
	p.Flags = 0x10
	return p
}

func fin(src uint32, port uint16) trace.Packet {
	p := syn(src, port)
	p.Flags = 0x01
	return p
}

func TestConnectionAffinity(t *testing.T) {
	_, b := newBalancer(t, 1024)
	first, err := b.Steer(syn(100, 5000))
	if err != nil || first == 0 {
		t.Fatalf("syn steer = %d,%v", first, err)
	}
	for i := 0; i < 20; i++ {
		got, err := b.Steer(data(100, 5000))
		if err != nil || got != first {
			t.Fatalf("packet %d steered to %d, want %d (%v)", i, got, first, err)
		}
	}
	if b.Hits != 20 {
		t.Fatalf("hits = %d", b.Hits)
	}
}

func TestUnknownFlowMisses(t *testing.T) {
	_, b := newBalancer(t, 16)
	got, err := b.Steer(data(1, 1))
	if err != nil || got != 0 {
		t.Fatalf("orphan data steered to %d (%v)", got, err)
	}
	if b.Misses != 1 {
		t.Fatalf("misses = %d", b.Misses)
	}
}

func TestFinRemovesFlow(t *testing.T) {
	_, b := newBalancer(t, 16)
	_, _ = b.Steer(syn(7, 7))
	if _, err := b.Steer(fin(7, 7)); err != nil {
		t.Fatal(err)
	}
	if b.Closed != 1 {
		t.Fatalf("closed = %d", b.Closed)
	}
	if got, _ := b.Steer(data(7, 7)); got != 0 {
		t.Fatal("closed flow still steered")
	}
}

func TestSpillBeyondDRAMAndRecall(t *testing.T) {
	_, b := newBalancer(t, 8)
	// Open 50 connections: only 8 fit in DRAM, the rest spill to NVMe.
	steered := map[int]uint32{}
	for i := 0; i < 50; i++ {
		dst, err := b.Steer(syn(uint32(i), uint16(i)))
		if err != nil {
			t.Fatal(err)
		}
		steered[i] = dst
	}
	if b.Spills == 0 {
		t.Fatal("no spills at 50 conns with 8-entry table")
	}
	if b.HotLen() > 8 {
		t.Fatalf("hot table overflowed: %d", b.HotLen())
	}
	// Every connection must still steer to its original backend,
	// whether its state is hot or spilled.
	for i := 0; i < 50; i++ {
		dst, err := b.Steer(data(uint32(i), uint16(i)))
		if err != nil {
			t.Fatal(err)
		}
		if dst != steered[i] {
			t.Fatalf("conn %d re-steered %d → %d", i, steered[i], dst)
		}
	}
	if b.SpillHits == 0 {
		t.Fatal("no spill-store hits")
	}
}

func TestSpillCostsMoreThanHot(t *testing.T) {
	v, b := newBalancer(t, 4)
	for i := 0; i < 20; i++ {
		_, _ = b.Steer(syn(uint32(i), 1))
	}
	v.TakeCost()
	// Conn 19 was just inserted: hot.
	if _, err := b.Steer(data(19, 1)); err != nil {
		t.Fatal(err)
	}
	hotCost := v.TakeCost()
	// Conn 0 spilled long ago: cold.
	if _, err := b.Steer(data(0, 1)); err != nil {
		t.Fatal(err)
	}
	coldCost := v.TakeCost()
	if coldCost <= hotCost {
		t.Fatalf("cold %v not above hot %v", coldCost, hotCost)
	}
	if coldCost < 50*sim.Microsecond {
		t.Fatalf("cold lookup %v implausibly cheap for NVMe", coldCost)
	}
}

func TestRealisticTrace(t *testing.T) {
	_, b := newBalancer(t, 256)
	g := trace.NewConnGen(3)
	for i := 0; i < 20000; i++ {
		if _, err := b.Steer(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if b.NewConns == 0 || b.Hits == 0 {
		t.Fatalf("conns=%d hits=%d", b.NewConns, b.Hits)
	}
	// Steering decisions never error even as the table churns.
	if b.Misses > b.Hits {
		t.Fatalf("misses %d exceed hits %d: state loss", b.Misses, b.Hits)
	}
}

func BenchmarkSteer(b *testing.B) {
	_, bal := newBalancer(b, 1024)
	g := trace.NewConnGen(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bal.Steer(g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}
