package core

import (
	"bytes"
	"testing"

	"hyperion/internal/netsim"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/bptree"
	"hyperion/internal/storage/kvssd"
)

// TestCrashRecoveryEndToEnd exercises the §2.1 durability story across
// the whole stack: durable structures are built on a DPU, the segment
// table checkpoints to the control area, the DPU "loses power" (DRAM
// and fabric state gone, flash intact), reboots, recovers the table,
// and the structures reopen with their data.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := DefaultConfig("phoenix")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	cfg.Seg.CheckpointEvery = 0 // explicit checkpointing below
	d1, _, err := Boot(eng, net, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Durable B+ tree and KV store.
	tree, err := bptree.Create(d1.View, seg.OID(0xD0D0, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		if err := tree.Insert(i, i*7); err != nil {
			t.Fatal(err)
		}
	}
	kv, err := kvssd.Create(d1.View, seg.OID(0xD0D1, 0), kvssd.BackendBTree, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put([]byte("survive"), []byte("the crash")); err != nil {
		t.Fatal(err)
	}
	// An ephemeral DRAM object that must NOT survive.
	if _, err := d1.Store.Alloc(seg.OID(0xDEAD, 1), 4096, false, seg.HintHot); err != nil {
		t.Fatal(err)
	}

	// Checkpoint the segment table, then crash.
	var cerr error
	d1.Store.Checkpoint(func(err error) { cerr = err })
	eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}

	d2, enum, err := Reboot(eng, net, d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(enum) != 4 {
		t.Fatalf("re-enumeration lines = %d", len(enum))
	}
	var n int
	var rerr error
	d2.Store.Recover(func(cnt int, err error) { n, rerr = cnt, err })
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if n == 0 {
		t.Fatal("recovered zero segments")
	}
	if _, err := d2.Store.Stat(seg.OID(0xDEAD, 1)); err == nil {
		t.Fatal("ephemeral DRAM object survived the crash")
	}

	// Reopen the structures on the rebooted DPU.
	tree2, err := bptree.Open(d2.View, seg.OID(0xD0D0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 1499, 2999} {
		got, ok, err := tree2.Get(k)
		if err != nil || !ok || got != k*7 {
			t.Fatalf("recovered Get(%d) = %d,%v,%v", k, got, ok, err)
		}
	}
	kv2, err := kvssd.Open(d2.View, seg.OID(0xD0D1, 0))
	if err != nil {
		t.Fatal(err)
	}
	val, ok, err := kv2.Get([]byte("survive"))
	if err != nil || !ok || !bytes.Equal(val, []byte("the crash")) {
		t.Fatalf("recovered kv = %q,%v,%v", val, ok, err)
	}

	// The rebooted DPU is fully operational: new writes work.
	if err := tree2.Insert(999999, 1); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := tree2.Get(999999); !ok || got != 1 {
		t.Fatal("post-recovery insert lost")
	}
	// And its network identity is back.
	if d2.DataAddr() != d1.DataAddr() {
		t.Fatal("addresses changed across reboot")
	}
}

// TestRebootWithoutCheckpointLosesUncheckpointedTable shows the
// contract: segments allocated after the last checkpoint are not in the
// recovered table (their blocks are unreferenced).
func TestRebootWithoutCheckpointLosesUncheckpointedTable(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("amnesia")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	cfg.Seg.CheckpointEvery = 0
	d1, _, err := Boot(eng, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Store.Alloc(seg.OID(1, 1), 4096, true, seg.HintAuto); err != nil {
		t.Fatal(err)
	}
	var cerr error
	d1.Store.Checkpoint(func(err error) { cerr = err })
	eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}
	// Allocated after the checkpoint: gone after reboot.
	if _, err := d1.Store.Alloc(seg.OID(1, 2), 4096, true, seg.HintAuto); err != nil {
		t.Fatal(err)
	}
	d2, _, err := Reboot(eng, nil, d1)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	d2.Store.Recover(func(cnt int, err error) { n = cnt })
	eng.Run()
	if n != 1 {
		t.Fatalf("recovered %d segments, want 1", n)
	}
	if _, err := d2.Store.Stat(seg.OID(1, 2)); err == nil {
		t.Fatal("uncheckpointed segment resurrected")
	}
}
