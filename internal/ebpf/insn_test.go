package ebpf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := []Instruction{
		Mov64Imm(R0, 7),
		Mov64Reg(R1, R0),
		ALU64Imm(ALUAdd, R0, -3),
		ALU64Reg(ALUMul, R0, R1),
		LoadImm64(R2, 0x1122334455667788),
		LoadMem(SizeDW, R3, R2, 16),
		StoreMem(SizeW, R10, R3, -8),
		StoreImm(SizeB, R10, -1, 0x7f),
		JumpImm(JmpEq, R0, 0, 2),
		JumpReg(JmpGt, R0, R1, 1),
		Ja(-3),
		Call(1),
		Exit(),
	}
	raw := Encode(prog)
	// LDDW takes two slots.
	if len(raw) != (len(prog)+1)*8 {
		t.Fatalf("encoded %d bytes, want %d", len(raw), (len(prog)+1)*8)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("decoded %d insns, want %d", len(back), len(prog))
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Errorf("insn %d: %+v != %+v", i, prog[i], back[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// A lone LDDW first slot with no second slot.
	raw := Encode([]Instruction{LoadImm64(R1, 1)})[:8]
	if _, err := Decode(raw); err != ErrBadLDDW {
		t.Fatalf("err = %v, want ErrBadLDDW", err)
	}
}

func TestLDDWEncodesNegativeAndLarge(t *testing.T) {
	f := func(v int64) bool {
		raw := Encode([]Instruction{LoadImm64(R1, v)})
		back, err := Decode(raw)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].Imm64 == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	prog := []Instruction{Mov64Imm(R0, 1), Exit()}
	if !bytes.Equal(Encode(prog), Encode(prog)) {
		t.Fatal("encode not deterministic")
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	prog, err := Assemble(`
		; compute (5+3)*2
		mov r0, 5
		add r0, 3
		mul r0, 2
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("got %d insns", len(prog))
	}
	vm := NewVM(nil)
	if err := vm.Load(prog); err != nil {
		t.Fatal(err)
	}
	got, err := vm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Fatalf("result = %d, want 16", got)
	}
}

func TestAssembleLabelsAndJumps(t *testing.T) {
	prog, err := Assemble(`
		mov r1, 10
		mov r0, 0
		jeq r1, 10, yes
		mov r0, 111
		ja done
	yes:
		mov r0, 222
	done:
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(nil)
	_ = vm.Load(prog)
	got, err := vm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 222 {
		t.Fatalf("result = %d, want 222", got)
	}
}

func TestAssembleLabelAcrossLDDW(t *testing.T) {
	// Jump offsets are in slots; an LDDW between jump and target must be
	// counted twice.
	prog, err := Assemble(`
		mov r0, 0
		jeq r0, 0, target
		lddw r2, 0x100000000
		mov r0, 1
	target:
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[1].Off != 3 { // lddw counts as 2 slots + mov as 1
		t.Fatalf("jump offset = %d, want 3", prog[1].Off)
	}
	vm := NewVM(nil)
	_ = vm.Load(prog)
	got, err := vm.Run(nil)
	if err != nil || got != 0 {
		t.Fatalf("run = %d,%v", got, err)
	}
}

func TestAssembleMemoryOps(t *testing.T) {
	prog, err := Assemble(`
		stdw [r10-8], 99
		ldxdw r0, [r10-8]
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(nil)
	_ = vm.Load(prog)
	got, err := vm.Run(nil)
	if err != nil || got != 99 {
		t.Fatalf("run = %d,%v", got, err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r0, 1",
		"mov r11, 1",
		"mov r0",
		"jeq r0, 1, missing_label",
		"ldxq r0, [r1+0]",
		"mov r0, zz",
		"ldxw r0, r1",
		"dup: mov r0, 0\ndup: exit",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleRoundTripStraightLine(t *testing.T) {
	// Jump-free programs must reassemble from their own disassembly.
	src := `
		mov r0, 0
		mov32 r1, 7
		add r0, r1
		lddw r2, 0xdeadbeef
		ldxw r3, [r2+4]
		stxdw [r10-16], r3
		stb [r10-1], 255
		neg r0
		exit
	`
	prog := MustAssemble(src)
	text := Disassemble(prog)
	var clean []byte
	for _, line := range bytes.Split([]byte(text), []byte("\n")) {
		if i := bytes.IndexByte(line, ':'); i >= 0 {
			line = line[i+1:]
		}
		clean = append(clean, line...)
		clean = append(clean, '\n')
	}
	prog2, err := Assemble(string(clean))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(prog) != len(prog2) {
		t.Fatalf("lengths differ: %d vs %d", len(prog), len(prog2))
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Errorf("insn %d: %+v vs %+v", i, prog[i], prog2[i])
		}
	}
}

func TestDisassembleJumps(t *testing.T) {
	text := Disassemble([]Instruction{JumpImm(JmpEq, R1, 4, 2), Ja(1), JumpReg(JmpLt, R2, R3, -2), Exit()})
	for _, want := range []string{"jeq r1, 4, +2", "ja +1", "jlt r2, r3, -2", "exit"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := map[string]Instruction{
		"mov r0, 5":        Mov64Imm(R0, 5),
		"add r1, r2":       ALU64Reg(ALUAdd, R1, R2),
		"exit":             Exit(),
		"call 7":           Call(7),
		"ldxdw r3, [r1+8]": LoadMem(SizeDW, R3, R1, 8),
		"stxw [r10-4], r2": StoreMem(SizeW, R10, R2, -4),
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
