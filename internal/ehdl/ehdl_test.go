package ehdl

import (
	"encoding/binary"
	"errors"
	"testing"

	"hyperion/internal/ebpf"
	"hyperion/internal/fabric"
	"hyperion/internal/sim"
)

func compile(t *testing.T, src string, optimize bool) *Pipeline {
	t.Helper()
	prog := ebpf.MustAssemble(src)
	p, err := Compile(prog, Options{Name: "t", Optimize: optimize, Verifier: ebpf.DefaultVerifierConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileRejectsUnverifiable(t *testing.T) {
	prog := ebpf.MustAssemble("mov r0, r5\nexit") // uninit read
	if _, err := Compile(prog, Options{Verifier: ebpf.DefaultVerifierConfig(nil)}); !errors.Is(err, ErrCompile) {
		t.Fatalf("err = %v, want ErrCompile", err)
	}
}

func TestExecMatchesVM(t *testing.T) {
	src := `
		ldxw r2, [r1+0]
		mov r0, 0
		jgt r2, 100, big
		mov r0, 1
		ja out
	big:
		mov r0, 2
	out:
		exit`
	p := compile(t, src, false)
	ctx := make([]byte, 8)
	binary.LittleEndian.PutUint32(ctx, 50)
	if r := p.Exec(ctx); r.Err != nil || r.Ret != 1 {
		t.Fatalf("small: %+v", r)
	}
	binary.LittleEndian.PutUint32(ctx, 500)
	if r := p.Exec(ctx); r.Err != nil || r.Ret != 2 {
		t.Fatalf("big: %+v", r)
	}
}

func TestExecRejectsWrongPayload(t *testing.T) {
	p := compile(t, "mov r0, 0\nexit", false)
	if r := p.Exec(42); r.Err == nil {
		t.Fatal("accepted int payload")
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	srcs := []string{
		// Constant chain folds to one mov.
		"mov r0, 5\nadd r0, 3\nmul r0, 2\nexit",
		// Branch on constant folds away.
		"mov r1, 7\nmov r0, 0\njeq r1, 7, yes\nmov r0, 100\nja out\nyes: mov r0, 200\nout: exit",
		// Dead stores removed, result unchanged.
		"mov r3, 123\nmov r4, 99\nmov r0, 42\nexit",
		// Stack traffic must be preserved.
		"stdw [r10-8], 11\nldxdw r0, [r10-8]\nexit",
		// ctx-dependent branch survives.
		"ldxw r2, [r1+0]\nmov r0, 0\njeq r2, 0, z\nmov r0, 1\nz: exit",
	}
	ctx := make([]byte, 8)
	binary.LittleEndian.PutUint32(ctx, 3)
	for _, src := range srcs {
		plain := compile(t, src, false)
		opt := compile(t, src, true)
		r1, r2 := plain.Exec(append([]byte(nil), ctx...)), opt.Exec(append([]byte(nil), ctx...))
		if r1.Err != nil || r2.Err != nil {
			t.Fatalf("%q: errs %v %v", src, r1.Err, r2.Err)
		}
		if r1.Ret != r2.Ret {
			t.Fatalf("%q: plain=%d optimized=%d", src, r1.Ret, r2.Ret)
		}
		if opt.Stats.Instructions > plain.Stats.Instructions {
			t.Fatalf("%q: optimizer grew program %d → %d", src, plain.Stats.Instructions, opt.Stats.Instructions)
		}
	}
}

func TestOptimizeShrinksConstantPrograms(t *testing.T) {
	src := `
		mov r1, 10
		mov r2, 20
		add r1, r2
		mov r0, 0
		jne r1, 30, bad
		mov r0, 1
		ja out
	bad:
		mov r0, 2
	out:
		exit`
	plain := compile(t, src, false)
	opt := compile(t, src, true)
	if opt.Stats.Instructions >= plain.Stats.Instructions {
		t.Fatalf("no shrink: %d → %d", plain.Stats.Instructions, opt.Stats.Instructions)
	}
	if r := opt.Exec(nil); r.Ret != 1 {
		t.Fatalf("optimized result = %d, want 1", r.Ret)
	}
	if opt.Stats.Depth > plain.Stats.Depth {
		t.Fatal("optimizer did not reduce pipeline depth")
	}
}

func TestOptimizePropertyRandomContexts(t *testing.T) {
	// Semantics preservation across many contexts for a branchy program.
	src := `
		ldxw r2, [r1+0]
		ldxw r3, [r1+4]
		mov r0, 0
		jgt r2, r3, a
		add r0, 1
		jeq r2, 0, b
		add r0, 2
		ja b
	a:
		add r0, 4
	b:
		mov r6, 7
		and r0, 255
		exit`
	plain := compile(t, src, false)
	opt := compile(t, src, true)
	r := sim.NewRand(3)
	for i := 0; i < 500; i++ {
		ctx := make([]byte, 8)
		binary.LittleEndian.PutUint32(ctx, uint32(r.Intn(5)))
		binary.LittleEndian.PutUint32(ctx[4:], uint32(r.Intn(5)))
		a := plain.Exec(append([]byte(nil), ctx...))
		b := opt.Exec(append([]byte(nil), ctx...))
		if a.Err != nil || b.Err != nil || a.Ret != b.Ret {
			t.Fatalf("ctx %v: plain=%v/%v opt=%v/%v", ctx, a.Ret, a.Err, b.Ret, b.Err)
		}
	}
}

func TestStatsShape(t *testing.T) {
	small := compile(t, "mov r0, 0\nexit", false)
	big := compile(t, `
		ldxdw r2, [r1+0]
		ldxdw r3, [r1+8]
		mul r2, r3
		mul r2, r2
		stxdw [r10-8], r2
		ldxdw r0, [r10-8]
		mul r0, 3
		exit`, false)
	if small.Stats.Depth >= big.Stats.Depth {
		t.Fatalf("depth not monotone: %d vs %d", small.Stats.Depth, big.Stats.Depth)
	}
	if small.Stats.SizeBytes >= big.Stats.SizeBytes {
		t.Fatal("bitstream size not monotone")
	}
	if big.Stats.MemOps != 4 {
		t.Fatalf("MemOps = %d, want 4", big.Stats.MemOps)
	}
	if big.Stats.Resources.DSP == 0 {
		t.Fatal("multiplies should use DSPs")
	}
	if small.Stats.II != 1 {
		t.Fatalf("II = %d, want 1", small.Stats.II)
	}
}

func TestReconfigWindowForTypicalPrograms(t *testing.T) {
	// A 20-instruction filter and a 400-instruction monster must land
	// within the paper's 10–100 ms reconfig window on the default fabric.
	eng := sim.NewEngine(1)
	f := fabric.New(eng, fabric.DefaultConfig(), "")
	mk := func(n int) *Pipeline {
		src := ""
		for i := 0; i < n; i++ {
			src += "add r0, 1\n"
		}
		return compile(t, "mov r0, 0\n"+src+"exit", false)
	}
	lo := f.ReconfigTime(mk(20).Stats.SizeBytes)
	hi := f.ReconfigTime(mk(400).Stats.SizeBytes)
	if lo < 10*sim.Millisecond || lo > 40*sim.Millisecond {
		t.Fatalf("small program reconfig %v outside expectation", lo)
	}
	if hi < 50*sim.Millisecond || hi > 150*sim.Millisecond {
		t.Fatalf("large program reconfig %v outside expectation", hi)
	}
}

func TestBitstreamRunsOnFabric(t *testing.T) {
	eng := sim.NewEngine(1)
	f := fabric.New(eng, fabric.DefaultConfig(), "secret")
	p := compile(t, `
		ldxw r2, [r1+0]
		mov r0, r2
		add r0, 1
		exit`, true)
	bs := p.Bitstream()
	bs.AuthTag = "secret"
	if err := f.LoadBitstream(0, bs, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	ctx := make([]byte, 4)
	binary.LittleEndian.PutUint32(ctx, 41)
	var got uint64
	err := f.Submit(0, ctx, func(out any) {
		got = out.(*Result).Ret
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 42 {
		t.Fatalf("fabric result = %d, want 42", got)
	}
}

func TestCompileWithMapsAndHelpers(t *testing.T) {
	maps := &ebpf.MapSet{}
	id := maps.Add(ebpf.NewHashMap(4, 8, 8))
	cfg := ebpf.DefaultVerifierConfig(maps)
	src := `
		stw [r10-4], 1
		mov r1, ` + string(rune('0'+id)) + `
		mov r2, r10
		sub r2, 4
		call 1
		jeq r0, 0, miss
		ldxdw r0, [r0+0]
		exit
	miss:
		mov r0, 0
		exit`
	prog := ebpf.MustAssemble(src)
	p, err := Compile(prog, Options{Verifier: cfg, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := maps.Get(id)
	_ = m.Update([]byte{1, 0, 0, 0}, []byte{9, 0, 0, 0, 0, 0, 0, 0})
	if r := p.Exec(nil); r.Err != nil || r.Ret != 9 {
		t.Fatalf("map exec = %+v", r)
	}
	if p.Stats.HelperCalls != 1 {
		t.Fatalf("HelperCalls = %d", p.Stats.HelperCalls)
	}
}

func TestOptimizerIdempotent(t *testing.T) {
	src := `
		mov r1, 4
		add r1, 4
		mov r0, r1
		exit`
	prog := ebpf.MustAssemble(src)
	once, err := Optimize(prog)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Optimize(once)
	if err != nil {
		t.Fatal(err)
	}
	if len(once) != len(twice) {
		t.Fatalf("not idempotent: %d vs %d", len(once), len(twice))
	}
}

func BenchmarkCompile(b *testing.B) {
	prog := ebpf.MustAssemble(`
		ldxw r2, [r1+0]
		mov r0, 0
		jgt r2, 100, big
		mov r0, 1
		ja out
	big:
		mov r0, 2
	out:
		exit`)
	opts := Options{Optimize: true, Verifier: ebpf.DefaultVerifierConfig(nil)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineExec(b *testing.B) {
	prog := ebpf.MustAssemble(`
		ldxw r2, [r1+0]
		mov r0, r2
		and r0, 1023
		exit`)
	p, err := Compile(prog, Options{Verifier: ebpf.DefaultVerifierConfig(nil)})
	if err != nil {
		b.Fatal(err)
	}
	ctx := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Exec(ctx); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
