package fabric

import (
	"errors"
	"testing"

	"hyperion/internal/sim"
)

func testBitstream(name string, size int64) *Bitstream {
	return &Bitstream{
		Name:      name,
		SizeBytes: size,
		Uses:      Resources{LUTs: 10000, FFs: 20000, BRAM: 16, DSP: 8},
		Depth:     12,
		II:        1,
		AuthTag:   "tag",
		Process:   func(in any) any { return in },
	}
}

func newTestFabric(t *testing.T) (*sim.Engine, *Fabric) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, DefaultConfig(), "tag")
}

func TestReconfigTimeMatchesPaperWindow(t *testing.T) {
	_, f := newTestFabric(t)
	// 4 MB and 40 MB images should land at ~10 ms and ~100 ms.
	lo := f.ReconfigTime(4 << 20)
	hi := f.ReconfigTime(40 << 20)
	if lo < 9*sim.Millisecond || lo > 11*sim.Millisecond {
		t.Fatalf("4MB reconfig = %v, want ≈10ms", lo)
	}
	if hi < 90*sim.Millisecond || hi > 110*sim.Millisecond {
		t.Fatalf("40MB reconfig = %v, want ≈100ms", hi)
	}
}

func TestLoadBitstreamLifecycle(t *testing.T) {
	eng, f := newTestFabric(t)
	b := testBitstream("filt", 4<<20)
	done := false
	if err := f.LoadBitstream(0, b, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	s, _ := f.Slot(0)
	if s.State != SlotReconfiguring {
		t.Fatalf("state = %v, want reconfiguring", s.State)
	}
	if err := f.LoadBitstream(0, b, nil); !errors.Is(err, ErrSlotBusy) {
		t.Fatalf("load during reconfig = %v, want ErrSlotBusy", err)
	}
	eng.Run()
	if !done || s.State != SlotActive {
		t.Fatalf("done=%v state=%v after run", done, s.State)
	}
}

func TestLoadBitstreamAuthorization(t *testing.T) {
	_, f := newTestFabric(t)
	b := testBitstream("evil", 4<<20)
	b.AuthTag = "forged"
	if err := f.LoadBitstream(0, b, nil); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
}

func TestLoadBitstreamValidation(t *testing.T) {
	_, f := newTestFabric(t)
	cases := []func(*Bitstream){
		func(b *Bitstream) { b.Name = "" },
		func(b *Bitstream) { b.SizeBytes = 0 },
		func(b *Bitstream) { b.Depth = 0 },
		func(b *Bitstream) { b.II = -1 },
		func(b *Bitstream) { b.Process = nil },
	}
	for i, mutate := range cases {
		b := testBitstream("x", 1<<20)
		mutate(b)
		if err := f.LoadBitstream(0, b, nil); !errors.Is(err, ErrBadBitstream) {
			t.Errorf("case %d: err = %v, want ErrBadBitstream", i, err)
		}
	}
}

func TestResourceAccounting(t *testing.T) {
	eng, f := newTestFabric(t)
	big := testBitstream("big", 1<<20)
	big.Uses = Resources{LUTs: 1_000_000}
	if err := f.LoadBitstream(0, big, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	big2 := testBitstream("big2", 1<<20)
	big2.Uses = Resources{LUTs: 1_000_000}
	if err := f.LoadBitstream(1, big2, nil); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("err = %v, want ErrOverCapacity", err)
	}
	// Replacing the image in slot 0 releases its resources first.
	if err := f.LoadBitstream(0, big2, nil); err != nil {
		t.Fatalf("replace: %v", err)
	}
	eng.Run()
	if err := f.Unload(0); err != nil {
		t.Fatal(err)
	}
	if f.FreeResources().LUTs != U280Resources().LUTs {
		t.Fatalf("resources leaked: free=%d", f.FreeResources().LUTs)
	}
}

func TestSubmitPipelineLatencyAndThroughput(t *testing.T) {
	eng, f := newTestFabric(t)
	b := testBitstream("pipe", 1<<20)
	b.Depth = 10
	b.II = 1
	if err := f.LoadBitstream(0, b, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start := eng.Now()
	var completions []sim.Time
	const n = 100
	for i := 0; i < n; i++ {
		if err := f.Submit(0, i, func(out any) {
			completions = append(completions, eng.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(completions) != n {
		t.Fatalf("completions = %d, want %d", len(completions), n)
	}
	period := f.CyclePeriod()
	// First item completes after Depth cycles.
	if got := completions[0].Sub(start); got != 10*sim.Duration(period) {
		t.Fatalf("first completion after %v, want %v", got, 10*period)
	}
	// Fully pipelined: one completion per cycle thereafter.
	for i := 1; i < n; i++ {
		if completions[i].Sub(completions[i-1]) != period {
			t.Fatalf("inter-completion gap %v at %d, want %v", completions[i].Sub(completions[i-1]), i, period)
		}
	}
}

func TestSubmitRespectsInitiationInterval(t *testing.T) {
	eng, f := newTestFabric(t)
	b := testBitstream("ii4", 1<<20)
	b.Depth = 8
	b.II = 4
	if err := f.LoadBitstream(0, b, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var completions []sim.Time
	for i := 0; i < 10; i++ {
		_ = f.Submit(0, i, func(out any) { completions = append(completions, eng.Now()) })
	}
	eng.Run()
	gap := completions[1].Sub(completions[0])
	if gap != 4*f.CyclePeriod() {
		t.Fatalf("II gap = %v, want %v", gap, 4*f.CyclePeriod())
	}
}

func TestSubmitEmptySlot(t *testing.T) {
	_, f := newTestFabric(t)
	if err := f.Submit(0, 1, nil); !errors.Is(err, ErrSlotEmpty) {
		t.Fatalf("err = %v, want ErrSlotEmpty", err)
	}
	if err := f.Submit(99, 1, nil); !errors.Is(err, ErrSlotOutOfRange) {
		t.Fatalf("err = %v, want ErrSlotOutOfRange", err)
	}
}

func TestSpatialIsolation(t *testing.T) {
	// A saturated slot must not delay an idle one: the paper's core
	// predictability argument.
	eng, f := newTestFabric(t)
	busy := testBitstream("busy", 1<<20)
	busy.Depth = 10
	busy.II = 100 // slow: queue builds
	quiet := testBitstream("quiet", 1<<20)
	quiet.Depth = 10
	quiet.II = 1
	if err := f.LoadBitstream(0, busy, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.LoadBitstream(1, quiet, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 1000; i++ {
		_ = f.Submit(0, i, nil)
	}
	start := eng.Now()
	var done sim.Time
	_ = f.Submit(1, "x", func(out any) { done = eng.Now() })
	eng.Run()
	if got := done.Sub(start); got != f.Cycles(10) {
		t.Fatalf("quiet slot latency %v under load, want %v", got, f.Cycles(10))
	}
}

func TestFindFreeSlot(t *testing.T) {
	eng, f := newTestFabric(t)
	for i := 0; i < f.Config().Slots; i++ {
		idx, err := f.FindFreeSlot()
		if err != nil || idx != i {
			t.Fatalf("FindFreeSlot = %d,%v want %d", idx, err, i)
		}
		if err := f.LoadBitstream(idx, testBitstream("b", 1<<20), nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	if _, err := f.FindFreeSlot(); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v, want ErrNoSlot", err)
	}
}

func TestStreamDeliveryOrderAndTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewStream(eng, "s", 250_000_000, 64, 8)
	var got []int
	var times []sim.Time
	s.Connect(func(it Item) {
		got = append(got, it.Payload.(int))
		times = append(times, eng.Now())
	})
	// 128-byte items: 2 beats each at 4ns/beat = 8ns per item.
	for i := 0; i < 4; i++ {
		if err := s.Push(Item{Payload: i, Bytes: 128}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("order = %v", got)
		}
	}
	if times[0] != sim.Time(8*sim.Nanosecond) {
		t.Fatalf("first delivery at %v, want 8ns", times[0])
	}
	if times[3] != sim.Time(32*sim.Nanosecond) {
		t.Fatalf("last delivery at %v, want 32ns", times[3])
	}
}

func TestStreamBackpressure(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewStream(eng, "s", 250_000_000, 64, 2)
	s.Connect(func(Item) {})
	if err := s.Push(Item{Bytes: 64}); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(Item{Bytes: 64}); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(Item{Bytes: 64}); !errors.Is(err, ErrStreamFull) {
		t.Fatalf("err = %v, want ErrStreamFull", err)
	}
	if s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
	eng.Run()
	if err := s.Push(Item{Bytes: 64}); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

func TestDemuxRoutingAndMiss(t *testing.T) {
	var a, b []int
	d := NewDemux("d", func(it Item) int { return it.Payload.(int) % 3 },
		func(it Item) { a = append(a, it.Payload.(int)) },
		func(it Item) { b = append(b, it.Payload.(int)) },
	)
	for i := 0; i < 9; i++ {
		d.Push(Item{Payload: i})
	}
	if len(a) != 3 || len(b) != 3 || d.Missed != 3 {
		t.Fatalf("a=%d b=%d missed=%d, want 3/3/3", len(a), len(b), d.Missed)
	}
}

func TestArbiterMergesInputs(t *testing.T) {
	eng := sim.NewEngine(1)
	var got []int
	arb := NewArbiter(eng, "arb", 250_000_000, 64, 8, 2, func(it Item) {
		got = append(got, it.Payload.(int))
	})
	_ = arb.In(0).Push(Item{Payload: 1, Bytes: 64})
	_ = arb.In(1).Push(Item{Payload: 2, Bytes: 64})
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if arb.Inputs() != 2 {
		t.Fatalf("Inputs = %d", arb.Inputs())
	}
}

func TestUtilization(t *testing.T) {
	eng, f := newTestFabric(t)
	b := testBitstream("u", 1<<20)
	b.II = 1
	b.Depth = 1
	if err := f.LoadBitstream(0, b, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 1000; i++ {
		_ = f.Submit(0, i, nil)
	}
	eng.Run()
	u := f.Utilization(0)
	if u <= 0.9 || u > 1.0 {
		t.Fatalf("utilization = %v, want ≈1.0", u)
	}
}

func BenchmarkSubmit(b *testing.B) {
	eng := sim.NewEngine(1)
	f := New(eng, DefaultConfig(), "tag")
	bs := testBitstream("bench", 1<<20)
	if err := f.LoadBitstream(0, bs, nil); err != nil {
		b.Fatal(err)
	}
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Submit(0, i, nil)
		if i%4096 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
