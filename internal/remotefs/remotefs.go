// Package remotefs is the §2.4 "remote file system access acceleration
// with DPUs using virtio-fs" scenario (DPFS-style): the filesystem runs
// entirely on the DPU next to its flash, and clients mount it over the
// network with simple file verbs — no client-side filesystem code, no
// host CPU on the server side.
package remotefs

import (
	"errors"

	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/storage/hfs"
)

// Method names.
const (
	MethodRead    = "fs.read"
	MethodWrite   = "fs.write"
	MethodMkdir   = "fs.mkdir"
	MethodReadDir = "fs.readdir"
	MethodStat    = "fs.stat"
	MethodUnlink  = "fs.unlink"
)

// WriteArgs carries a whole-file write.
type WriteArgs struct {
	Path string
	Data []byte
}

// StatReply mirrors the interesting inode fields.
type StatReply struct {
	Ino  uint64
	Type uint8
	Size int64
}

// ErrBadArgs reports a malformed request.
var ErrBadArgs = errors.New("remotefs: bad arguments")

// Server exports an hfs instance from a DPU.
type Server struct {
	dpu *core.DPU
	fs  *hfs.FS

	Reads, Writes int64
}

// NewServer registers the file methods on the DPU's control server.
func NewServer(d *core.DPU, srv *rpc.Server, fs *hfs.FS) *Server {
	s := &Server{dpu: d, fs: fs}
	finish := func(respond func(any, int, error), val any, bytes int, err error) {
		// Storage cost accrued on the DPU's view becomes response delay.
		cost := d.View.TakeCost()
		d.Eng.After(cost, "remotefs", func() { respond(val, bytes, err) })
	}
	srv.Handle(MethodRead, func(arg any, respond func(any, int, error)) {
		path, ok := arg.(string)
		if !ok {
			respond(nil, 0, ErrBadArgs)
			return
		}
		s.Reads++
		data, err := fs.ReadFile(path)
		finish(respond, data, len(data)+64, err)
	})
	srv.Handle(MethodWrite, func(arg any, respond func(any, int, error)) {
		wa, ok := arg.(WriteArgs)
		if !ok {
			respond(nil, 0, ErrBadArgs)
			return
		}
		s.Writes++
		err := fs.WriteFile(wa.Path, wa.Data)
		finish(respond, true, 64, err)
	})
	srv.Handle(MethodMkdir, func(arg any, respond func(any, int, error)) {
		path, ok := arg.(string)
		if !ok {
			respond(nil, 0, ErrBadArgs)
			return
		}
		finish(respond, true, 64, fs.Mkdir(path))
	})
	srv.Handle(MethodReadDir, func(arg any, respond func(any, int, error)) {
		path, ok := arg.(string)
		if !ok {
			respond(nil, 0, ErrBadArgs)
			return
		}
		ents, err := fs.ReadDir(path)
		finish(respond, ents, len(ents)*32+64, err)
	})
	srv.Handle(MethodStat, func(arg any, respond func(any, int, error)) {
		path, ok := arg.(string)
		if !ok {
			respond(nil, 0, ErrBadArgs)
			return
		}
		ino, err := fs.Stat(path)
		if err != nil {
			finish(respond, nil, 64, err)
			return
		}
		finish(respond, StatReply{Ino: ino.Ino, Type: ino.Type, Size: ino.Size}, 64, nil)
	})
	srv.Handle(MethodUnlink, func(arg any, respond func(any, int, error)) {
		path, ok := arg.(string)
		if !ok {
			respond(nil, 0, ErrBadArgs)
			return
		}
		finish(respond, true, 64, fs.Unlink(path))
	})
	return s
}

// Mount is the client-side handle.
type Mount struct {
	c    *rpc.Client
	addr netsim.Addr
}

// NewMount attaches to a served filesystem.
func NewMount(c *rpc.Client, addr netsim.Addr) *Mount { return &Mount{c: c, addr: addr} }

// ReadFile fetches a whole file.
func (m *Mount) ReadFile(path string, cb func([]byte, error)) {
	m.c.Call(m.addr, MethodRead, path, len(path)+64, func(val any, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		data, _ := val.([]byte)
		cb(data, nil)
	})
}

// WriteFile replaces a whole file.
func (m *Mount) WriteFile(path string, data []byte, cb func(error)) {
	m.c.Call(m.addr, MethodWrite, WriteArgs{Path: path, Data: data}, len(path)+len(data)+64, func(_ any, err error) {
		cb(err)
	})
}

// Mkdir creates a directory.
func (m *Mount) Mkdir(path string, cb func(error)) {
	m.c.Call(m.addr, MethodMkdir, path, len(path)+64, func(_ any, err error) { cb(err) })
}

// ReadDir lists a directory.
func (m *Mount) ReadDir(path string, cb func([]hfs.DirEntry, error)) {
	m.c.Call(m.addr, MethodReadDir, path, len(path)+64, func(val any, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		ents, _ := val.([]hfs.DirEntry)
		cb(ents, nil)
	})
}

// Stat queries a path.
func (m *Mount) Stat(path string, cb func(StatReply, error)) {
	m.c.Call(m.addr, MethodStat, path, len(path)+64, func(val any, err error) {
		if err != nil {
			cb(StatReply{}, err)
			return
		}
		cb(val.(StatReply), nil)
	})
}

// Unlink removes a file or empty directory.
func (m *Mount) Unlink(path string, cb func(error)) {
	m.c.Call(m.addr, MethodUnlink, path, len(path)+64, func(_ any, err error) { cb(err) })
}
