package flow

import (
	"go/ast"
	"go/types"
)

// Path returns the tracking key of an lvalue-ish expression: a dotted
// selector path of depth at most two ("hdr", "op.capsule") rooted at a
// function-local variable (parameters included). Anything else —
// package-level variables, map/index expressions, deeper chains, calls
// — returns "" and is not tracked; flow-sensitive obligations on such
// locations would need alias analysis to be sound.
func Path(info *types.Info, pkg *types.Package, e ast.Expr) string {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if isLocalVar(info, pkg, e) {
			return e.Name
		}
	case *ast.SelectorExpr:
		base, ok := unparen(e.X).(*ast.Ident)
		if !ok || !isLocalVar(info, pkg, base) {
			return ""
		}
		// The selector must be a field access, not a package qualifier
		// or a method value.
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return base.Name + "." + e.Sel.Name
		}
	}
	return ""
}

// isLocalVar reports whether id names a function-local variable or
// parameter (not a package-level var, constant, field shorthand, or
// package name).
func isLocalVar(info *types.Info, pkg *types.Package, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if pkg != nil && v.Parent() == pkg.Scope() {
		return false
	}
	return true
}

// NilComparand matches one side of a binary comparison being the
// predeclared nil and the other a plain identifier, returning the
// identifier's name. Used by checks refining state on `err != nil`
// branches.
func NilComparand(x, y ast.Expr) (string, bool) {
	if name, ok := identVsNil(x, y); ok {
		return name, true
	}
	return identVsNil(y, x)
}

func identVsNil(id, nilSide ast.Expr) (string, bool) {
	i, ok := unparen(id).(*ast.Ident)
	if !ok {
		return "", false
	}
	n, ok := unparen(nilSide).(*ast.Ident)
	if !ok || n.Name != "nil" {
		return "", false
	}
	return i.Name, true
}
