package baseline

import (
	"testing"

	"hyperion/internal/sim"
)

func TestTable1PathsShape(t *testing.T) {
	paths := Table1Paths()
	if len(paths) != 6 {
		t.Fatalf("rows = %d, want 6 (one per Table 1 row)", len(paths))
	}
	hy := HyperionPath().Totals()
	if hy.CPUTouches != 0 {
		t.Fatalf("hyperion path touches the CPU %d times", hy.CPUTouches)
	}
	if hy.Copies != 0 {
		t.Fatalf("hyperion path copies %d times", hy.Copies)
	}
	for _, p := range paths {
		tot := p.Totals()
		if tot.CPUTouches == 0 {
			t.Errorf("%s: CPU-centric path with zero CPU touches", p.Model)
		}
		if tot.Latency <= hy.Latency {
			t.Errorf("%s: latency %v not above hyperion %v", p.Model, tot.Latency, hy.Latency)
		}
		if p.Lacks == "" {
			t.Errorf("%s: missing Table-1 gap description", p.Model)
		}
	}
}

func TestTimeSharedCPUJitter(t *testing.T) {
	eng := sim.NewEngine(42)
	cpu := NewTimeSharedCPU(eng, 4)
	var lat sim.LatencyRecorder
	const n = 2000
	done := 0
	// Paced open-loop arrivals at moderate utilization, so the recorded
	// tail reflects scheduling noise rather than pure queueing backlog.
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Time(20*sim.Microsecond)
		eng.At(at, "arrive", func() {
			start := eng.Now()
			cpu.Serve(10*sim.Microsecond, func() {
				lat.Record(eng.Now().Sub(start))
				done++
			})
		})
	}
	eng.Run()
	if done != n {
		t.Fatalf("served %d/%d", done, n)
	}
	// Time sharing must produce a heavy tail: p99 well above p50.
	if lat.Percentile(99) < lat.Percentile(50)*2 {
		t.Fatalf("p99 %v vs p50 %v: expected heavy tail", lat.Percentile(99), lat.Percentile(50))
	}
}

func TestTimeSharedCPUDeterministicPerSeed(t *testing.T) {
	run := func() sim.Duration {
		eng := sim.NewEngine(7)
		cpu := NewTimeSharedCPU(eng, 2)
		var last sim.Time
		for i := 0; i < 100; i++ {
			cpu.Serve(5*sim.Microsecond, func() { last = eng.Now() })
		}
		eng.Run()
		return last.Sub(0)
	}
	if run() != run() {
		t.Fatal("same seed produced different schedules")
	}
}

func TestPageWalkerCosts(t *testing.T) {
	w := NewPageWalker(64)
	// Cold miss: up to 4 DRAM accesses.
	cold := w.Translate(12345)
	if cold < 2*w.DRAMTime || cold > 4*w.DRAMTime {
		t.Fatalf("cold walk = %v, want 2-4 DRAM accesses", cold)
	}
	// Hot hit: free.
	if hot := w.Translate(12345); hot != 0 {
		t.Fatalf("TLB hit cost %v, want 0", hot)
	}
	if w.TLBHits != 1 {
		t.Fatalf("TLB hits = %d", w.TLBHits)
	}
	// Neighbouring page in the same region: PWC absorbs upper levels.
	warm := w.Translate(12346)
	if warm != w.DRAMTime {
		t.Fatalf("PWC-warm walk = %v, want 1 DRAM access", warm)
	}
}

func TestPageWalkerEviction(t *testing.T) {
	w := NewPageWalker(4)
	for p := uint64(0); p < 100; p++ {
		w.Translate(p << 9) // distinct PD entries, defeat PWC reuse
	}
	if w.Translate(0) == 0 {
		t.Fatal("expected TLB eviction to force a walk")
	}
}
