package gofront

import (
	"go/token"

	"hyperion/internal/ebpf"
)

// The typed IR sits between the AST and the instruction stream. It is
// deliberately shaped like eBPF — two-address ALU ops, load/store with
// displacement, conditional forward jumps — but over an unbounded set
// of virtual registers, so lowering never has to think about register
// pressure and the allocator never has to think about Go. Each IR
// instruction maps to exactly one eBPF instruction at emission, except
// vFrameAddr (two: mov+sub) — that 1:1 discipline is what makes the
// frontend's output predictable enough to differential-test against
// hand-written assembly instruction for instruction.

// vreg is a virtual register id. vNone marks an unused operand slot;
// vFP addresses the read-only frame pointer r10 directly.
type vreg int

const (
	vNone vreg = -1
	vFP   vreg = -2
)

type irOp uint8

const (
	opMovImm    irOp = iota // dst = imm
	opMovReg                // dst = src
	opALUImm                // dst = dst <alu> imm
	opALUReg                // dst = dst <alu> src
	opLoad                  // dst = *(size*)(base + off)
	opStore                 // *(size*)(base + off) = src
	opStoreImm              // *(size*)(base + off) = imm
	opFrameAddr             // dst = r10 - off (two instructions)
	opCall                  // call imm; args precolored r1.., result clobbers r0
	opJmp                   // if dst <cond> (src|imm) goto label; JmpA unconditional
	opLabel                 // jump target
	opRet                   // exit (return value precolored into r0 beforehand)
)

// irIns is one IR instruction. Operand use depends on op; pos points
// at the source construct for diagnostics.
type irIns struct {
	op   irOp
	alu  uint8 // ebpf.ALU* selector for opALU*
	jop  uint8 // ebpf.Jmp* selector for opJmp
	is32 bool  // 32-bit ALU class (wraps at 32 bits)
	size uint8 // ebpf.Size* for load/store
	dst  vreg
	src  vreg
	imm  int64
	off  int32 // load/store displacement, frame offset
	lbl  int   // opJmp target / opLabel id

	// coalesce marks a register move that exists only to name a call
	// result; it vanishes at emission when the allocator gives both
	// sides the same physical register.
	coalesce bool

	// Array-bounds obligation: when boundLen > 0, the interval analysis
	// must prove value(boundReg) < boundLen at this point.
	boundReg  vreg
	boundLen  int64
	boundType string // array type, for the diagnostic

	// args lists a call's marshaled argument vregs (precolored r1..),
	// keeping them live up to the call for the allocator.
	args []vreg

	pos token.Pos
}

// negJmp maps a comparison to its negation (for jump-over-body
// lowering of if statements).
func negJmp(op uint8) uint8 {
	switch op {
	case ebpf.JmpEq:
		return ebpf.JmpNe
	case ebpf.JmpNe:
		return ebpf.JmpEq
	case ebpf.JmpGt:
		return ebpf.JmpLe
	case ebpf.JmpGe:
		return ebpf.JmpLt
	case ebpf.JmpLt:
		return ebpf.JmpGe
	case ebpf.JmpLe:
		return ebpf.JmpGt
	case ebpf.JmpSGt:
		return ebpf.JmpSLe
	case ebpf.JmpSGe:
		return ebpf.JmpSLt
	case ebpf.JmpSLt:
		return ebpf.JmpSGe
	case ebpf.JmpSLe:
		return ebpf.JmpSGt
	}
	return op
}

// sizeFor maps a byte width to the eBPF access size selector.
func sizeFor(bytes int) uint8 {
	switch bytes {
	case 1:
		return ebpf.SizeB
	case 2:
		return ebpf.SizeH
	case 4:
		return ebpf.SizeW
	default:
		return ebpf.SizeDW
	}
}
