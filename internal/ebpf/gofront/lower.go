package gofront

import (
	"go/ast"
	"go/token"

	"hyperion/internal/ebpf"
)

// maxUnroll bounds a single loop's trip count; maxIR bounds the whole
// unrolled function (the ISA's MaxInsns backstops it again after
// emission).
const (
	maxUnroll = 1024
	maxIR     = 16384
)

// local is one named binding in the entry function: a register local,
// a stack slot (address-taken), or a compile-time constant (unrolled
// loop variables).
type local struct {
	name    string
	typ     Type
	reg     vreg
	slot    int32 // frame offset magnitude; address is r10-slot
	stack   bool
	isConst bool
	cval    int64
	version int // bumped on every assignment, keys the address CSE
}

// labelFrame is one goto-label namespace: the function body, or one
// unrolled copy of a loop body (body labels are renamed per copy).
type labelFrame struct {
	ids     map[string]int
	emitted map[string]bool
}

// loopCtx gives continue/break their targets inside an unrolled copy.
type loopCtx struct {
	contLbl int // end of the current iteration's copy
	brkLbl  int // after the last copy
}

type cseKey struct {
	local   *local
	version int
	scale   int
}

// lowerer walks the entry function's AST and produces IR.
type lowerer struct {
	c  *compiler
	ir []irIns
	nv vreg // next virtual register

	scopes    []map[string]*local
	frames    []*labelFrame
	loops     []loopCtx
	nextLabel int
	frameSize int32
	addrTaken map[string]bool
	cse       map[cseKey]vreg

	precolor map[vreg]uint8 // ABI-pinned vregs: ctx arg, call args, results

	vCtx       vreg
	reachable  bool
	terminated bool // last statement ended control flow
}

func newLowerer(c *compiler) *lowerer {
	return &lowerer{
		c: c, addrTaken: map[string]bool{}, cse: map[cseKey]vreg{},
		precolor: map[vreg]uint8{}, reachable: true,
	}
}

func (l *lowerer) fresh() vreg { v := l.nv; l.nv++; return v }

func (l *lowerer) newLabel() int { n := l.nextLabel; l.nextLabel++; return n }

func (l *lowerer) put(ins irIns) {
	if len(l.ir) >= maxIR {
		// Reported once by the caller via the size check in lowerFunc.
		return
	}
	l.ir = append(l.ir, ins)
}

// label emits a jump target and invalidates the address CSE (register
// state at a merge point is path-dependent).
func (l *lowerer) label(id int) {
	l.put(irIns{op: opLabel, lbl: id})
	l.cse = map[cseKey]vreg{}
	l.reachable = true
	l.terminated = false
}

// --- scopes and locals ---

func (l *lowerer) pushScope() { l.scopes = append(l.scopes, map[string]*local{}) }
func (l *lowerer) popScope()  { l.scopes = l.scopes[:len(l.scopes)-1] }

func (l *lowerer) lookup(name string) *local {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		if lc, ok := l.scopes[i][name]; ok {
			return lc
		}
	}
	return nil
}

func (l *lowerer) bind(name string, lc *local) {
	l.scopes[len(l.scopes)-1][name] = lc
}

// declare creates a local of type t, deciding register vs stack from
// the address-taken prescan.
func (l *lowerer) declare(pos token.Pos, name string, t Type) *local {
	lc := &local{name: name, typ: t, reg: vNone}
	if l.addrTaken[name] {
		it, ok := t.(IntType)
		if !ok {
			l.c.errs.add(pos, RuleTypes, "address-taken local %s must be an integer, got %s", name, t)
			return lc
		}
		size := int32(it.Size())
		// Each slot is size-aligned; the frame grows downward from r10.
		l.frameSize = (l.frameSize + size + size - 1) / size * size
		lc.slot = l.frameSize
		lc.stack = true
		if l.frameSize > ebpf.StackSize {
			l.c.errs.add(pos, RuleRegs, "stack locals exceed the %d-byte frame", ebpf.StackSize)
		}
	} else {
		lc.reg = l.fresh()
	}
	l.bind(name, lc)
	return lc
}

// --- labels ---

// collectLabels gathers the labels declared in stmts, without
// descending into nested for loops (their bodies get per-copy frames).
func collectLabels(stmts []ast.Stmt, frame *labelFrame, l *lowerer) {
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.LabeledStmt:
			if _, dup := frame.ids[st.Label.Name]; dup {
				l.c.errs.add(st.Label.Pos(), RuleGoto, "label %s redeclared", st.Label.Name)
			} else {
				frame.ids[st.Label.Name] = l.newLabel()
			}
			walk(st.Stmt)
		case *ast.BlockStmt:
			for _, s2 := range st.List {
				walk(s2)
			}
		case *ast.IfStmt:
			walk(st.Body)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.ForStmt:
			// per-copy frame; skip
		}
	}
	for _, s := range stmts {
		walk(s)
	}
}

func (l *lowerer) pushLabelFrame(stmts []ast.Stmt) {
	f := &labelFrame{ids: map[string]int{}, emitted: map[string]bool{}}
	collectLabels(stmts, f, l)
	l.frames = append(l.frames, f)
}

func (l *lowerer) popLabelFrame() { l.frames = l.frames[:len(l.frames)-1] }

func (l *lowerer) findLabel(name string) (*labelFrame, int, bool) {
	for i := len(l.frames) - 1; i >= 0; i-- {
		if id, ok := l.frames[i].ids[name]; ok {
			return l.frames[i], id, true
		}
	}
	return nil, 0, false
}

// --- function ---

// lowerFunc drives lowering of the entry function.
func (l *lowerer) lowerFunc(fn *ast.FuncDecl) {
	if l.c.ctxType == nil {
		return // entry signature already rejected
	}
	// Prescan: which locals have their address taken (those live on the
	// stack so &x is a materializable r10-relative pointer).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, ok := u.X.(*ast.Ident); ok {
				l.addrTaken[id.Name] = true
			}
		}
		return true
	})

	l.pushScope()
	// The context pointer arrives in r1 and is pinned to r9 for the
	// program's lifetime, clear of the helper-clobbered argument range.
	argV := l.fresh()
	l.precolor[argV] = 1 // the VM passes ctx in r1
	l.vCtx = l.fresh()
	l.precolor[l.vCtx] = 9 // ctx pins to r9, preserved across helper calls
	l.put(irIns{op: opMovReg, dst: l.vCtx, src: argV, pos: fn.Pos()})
	l.bind(l.c.ctxName, &local{name: l.c.ctxName, typ: PtrType{Elem: l.c.ctxType}, reg: l.vCtx})

	l.pushLabelFrame(fn.Body.List)
	for _, s := range fn.Body.List {
		l.stmt(s)
	}
	l.popLabelFrame()
	l.popScope()
	if !l.terminated {
		l.c.errs.add(fn.Body.Rbrace, RuleEntry, "control may reach the end of %s without a return", fn.Name.Name)
	}
	if len(l.ir) >= maxIR {
		l.c.errs.add(fn.Pos(), RuleSize, "program exceeds %d IR instructions after unrolling", maxIR)
	}
}

// --- statements ---

func (l *lowerer) stmt(s ast.Stmt) {
	if len(l.c.errs.list) > 32 {
		return // avoid diagnostic storms on hopeless input
	}
	l.terminated = false
	switch st := s.(type) {
	case *ast.DeclStmt:
		l.declStmt(st)
	case *ast.AssignStmt:
		l.assignStmt(st)
	case *ast.IncDecStmt:
		l.incDecStmt(st)
	case *ast.IfStmt:
		l.ifStmt(st)
	case *ast.ForStmt:
		l.forStmt(st)
	case *ast.BranchStmt:
		l.branchStmt(st)
	case *ast.LabeledStmt:
		f, id, ok := l.findLabel(st.Label.Name)
		if !ok {
			l.c.errs.add(st.Label.Pos(), RuleGoto, "label %s is not declared in a reachable scope", st.Label.Name)
			return
		}
		f.emitted[st.Label.Name] = true
		l.label(id)
		l.stmt(st.Stmt)
	case *ast.ReturnStmt:
		l.returnStmt(st)
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			l.c.errs.add(st.X.Pos(), RuleStmt, "expression statements must be helper calls")
			return
		}
		l.callExpr(call, false)
	case *ast.BlockStmt:
		l.pushScope()
		for _, s2 := range st.List {
			l.stmt(s2)
		}
		l.popScope()
	case *ast.EmptyStmt:
	case *ast.RangeStmt:
		l.c.errs.add(st.Pos(), RuleLoop, "range loops are outside the restricted subset; use a bounded for loop")
	case *ast.GoStmt:
		l.c.errs.add(st.Pos(), RuleConc, "goroutines are outside the restricted subset")
	case *ast.DeferStmt:
		l.c.errs.add(st.Pos(), RuleConc, "defer is outside the restricted subset")
	case *ast.SelectStmt, *ast.SendStmt:
		l.c.errs.add(st.Pos(), RuleConc, "channel operations are outside the restricted subset")
	case *ast.SwitchStmt:
		l.c.errs.add(st.Pos(), RuleStmt, "switch is outside the restricted subset; use if/else chains")
	case *ast.TypeSwitchStmt:
		l.c.errs.add(st.Pos(), RuleIface, "type switches need interfaces, which are outside the restricted subset")
	default:
		l.c.errs.add(s.Pos(), RuleStmt, "unsupported statement")
	}
}

func (l *lowerer) declStmt(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		l.c.errs.add(st.Pos(), RuleStmt, "only var declarations are allowed inside the entry function")
		return
	}
	for _, spec := range gd.Specs {
		vs := spec.(*ast.ValueSpec)
		if vs.Type == nil {
			l.c.errs.add(vs.Pos(), RuleStmt, "var declarations need an explicit type (use := for inference)")
			continue
		}
		t, ok := l.c.resolveType(vs.Type)
		if !ok {
			continue
		}
		if len(vs.Values) != 0 && len(vs.Values) != len(vs.Names) {
			l.c.errs.add(vs.Pos(), RuleStmt, "mismatched var initializers")
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			lc := l.declare(name.Pos(), name.Name, t)
			if len(vs.Values) > 0 {
				l.assignTo(lc, vs.Values[i], name.Pos())
			}
		}
	}
}

func (l *lowerer) assignStmt(st *ast.AssignStmt) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		l.c.errs.add(st.Pos(), RuleStmt, "multiple assignment is outside the restricted subset")
		return
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	switch st.Tok {
	case token.DEFINE:
		id, ok := lhs.(*ast.Ident)
		if !ok {
			l.c.errs.add(lhs.Pos(), RuleStmt, "short declaration needs an identifier on the left")
			return
		}
		if id.Name == "_" {
			l.c.errs.add(id.Pos(), RuleStmt, "cannot declare _; drop the statement or name the result")
			return
		}
		t := l.typeOf(rhs)
		if t == nil {
			t = IntType{Bits: 64} // untyped constant defaults to uint64
		}
		if !validLocalType(t) {
			l.c.errs.add(rhs.Pos(), RuleTypes, "cannot declare a local of type %s", t)
			return
		}
		lc := l.declare(id.Pos(), id.Name, t)
		l.assignTo(lc, rhs, st.Pos())
	case token.ASSIGN:
		l.assign(lhs, rhs)
	default: // op-assign: x += e and friends
		id, ok := lhs.(*ast.Ident)
		if !ok {
			l.c.errs.add(lhs.Pos(), RuleStmt, "compound assignment needs a register local on the left")
			return
		}
		lc := l.lookup(id.Name)
		if lc == nil {
			l.c.errs.add(id.Pos(), RuleExpr, "undeclared variable %s", id.Name)
			return
		}
		if lc.isConst {
			l.c.errs.add(id.Pos(), RuleLoop, "cannot assign to loop variable %s (loops unroll at compile time)", id.Name)
			return
		}
		if lc.stack || lc.reg == vNone {
			l.c.errs.add(lhs.Pos(), RuleStmt, "compound assignment needs a register local on the left")
			return
		}
		aluOp, ok := aluForToken(assignOpToken(st.Tok))
		if !ok {
			l.c.errs.add(st.Pos(), RuleStmt, "unsupported compound assignment %s", st.Tok)
			return
		}
		it, _ := lc.typ.(IntType)
		l.checkArithType(st.Pos(), lc.typ, assignOpToken(st.Tok))
		l.alu(aluOp, lc, rhs, it, st.Pos())
		lc.version++
	}
}

// assignOpToken maps ADD_ASSIGN → ADD etc.
func assignOpToken(t token.Token) token.Token {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	}
	return token.ILLEGAL
}

func (l *lowerer) incDecStmt(st *ast.IncDecStmt) {
	id, ok := st.X.(*ast.Ident)
	if !ok {
		l.c.errs.add(st.Pos(), RuleStmt, "++/-- needs a register local")
		return
	}
	lc := l.lookup(id.Name)
	if lc == nil || lc.stack || lc.isConst || lc.reg == vNone {
		l.c.errs.add(st.Pos(), RuleStmt, "++/-- needs a register local")
		return
	}
	op := ebpf.ALUAdd
	if st.Tok == token.DEC {
		op = ebpf.ALUSub
	}
	it, _ := lc.typ.(IntType)
	l.put(irIns{op: opALUImm, alu: op, is32: is32(it), dst: lc.reg, imm: 1, pos: st.Pos()})
	lc.version++
}

// assign lowers `lhs = rhs` for every lvalue form.
func (l *lowerer) assign(lhs, rhs ast.Expr) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		lc := l.lookup(x.Name)
		if lc == nil {
			l.c.errs.add(x.Pos(), RuleExpr, "undeclared variable %s", x.Name)
			return
		}
		if lc.isConst {
			l.c.errs.add(x.Pos(), RuleLoop, "cannot assign to loop variable %s (loops unroll at compile time)", x.Name)
			return
		}
		l.assignTo(lc, rhs, x.Pos())
	case *ast.SelectorExpr, *ast.IndexExpr:
		ref, ok := l.resolveRef(lhs)
		if !ok {
			return
		}
		it, ok := ref.typ.(IntType)
		if !ok {
			l.c.errs.add(lhs.Pos(), RuleExpr, "cannot store a whole %s; assign a field or element", ref.typ)
			return
		}
		l.checkAssignable(rhs, it)
		l.storeRef(ref, rhs, it)
	case *ast.StarExpr:
		pv, pt := l.derefTarget(x)
		if pv == vNone {
			return
		}
		it := pt.Elem.(IntType)
		l.checkAssignable(rhs, it)
		l.storeMem(pv, 0, rhs, it, x.Pos())
	default:
		l.c.errs.add(lhs.Pos(), RuleStmt, "unsupported assignment target")
	}
}

// assignTo lowers `lc = rhs` for a named local.
func (l *lowerer) assignTo(lc *local, rhs ast.Expr, pos token.Pos) {
	it, isInt := lc.typ.(IntType)
	if isInt {
		l.checkAssignable(rhs, it)
	}
	if lc.stack {
		l.storeMem(vFP, -int32(lc.slot), rhs, it, pos)
		lc.version++
		return
	}
	if lc.reg == vNone {
		return // declaration already rejected
	}
	l.exprInto(lc.reg, rhs, lc.typ)
	lc.version++
}

// checkAssignable rejects typed mismatches that Go would refuse
// without a conversion.
func (l *lowerer) checkAssignable(rhs ast.Expr, want IntType) {
	t := l.typeOf(rhs)
	if t == nil {
		return // untyped constant adapts
	}
	if it, ok := t.(IntType); ok {
		if it != want {
			l.c.errs.add(rhs.Pos(), RuleTypes, "cannot assign %s to %s without a conversion", it, want)
		}
		return
	}
	l.c.errs.add(rhs.Pos(), RuleTypes, "cannot assign %s to %s", t, want)
}

func validLocalType(t Type) bool {
	switch tt := t.(type) {
	case IntType:
		return true
	case PtrType:
		_, ok := tt.Elem.(IntType)
		return ok
	}
	return false
}

func (l *lowerer) returnStmt(st *ast.ReturnStmt) {
	if len(st.Results) != 1 {
		l.c.errs.add(st.Pos(), RuleEntry, "entry function returns exactly one value")
		return
	}
	l.checkAssignable(st.Results[0], l.c.retType)
	rv := l.fresh()
	l.precolor[rv] = 0 // return value leaves in r0
	l.exprInto(rv, st.Results[0], l.c.retType)
	l.put(irIns{op: opRet, src: rv, pos: st.Pos()})
	l.terminated = true
	l.reachable = false
}

func (l *lowerer) branchStmt(st *ast.BranchStmt) {
	switch st.Tok {
	case token.GOTO:
		f, id, ok := l.findLabel(st.Label.Name)
		if !ok {
			l.c.errs.add(st.Label.Pos(), RuleGoto, "label %s is not declared in a reachable scope", st.Label.Name)
			return
		}
		if f.emitted[st.Label.Name] {
			l.c.errs.add(st.Pos(), RuleGoto, "goto %s jumps backward; programs must be loop-free (bounded for loops unroll)", st.Label.Name)
			return
		}
		l.put(irIns{op: opJmp, jop: ebpf.JmpA, dst: vNone, src: vNone, lbl: id, pos: st.Pos()})
		l.terminated = true
		l.reachable = false
	case token.CONTINUE, token.BREAK:
		if st.Label != nil {
			l.c.errs.add(st.Pos(), RuleStmt, "labeled %s is outside the restricted subset", st.Tok)
			return
		}
		if len(l.loops) == 0 {
			l.c.errs.add(st.Pos(), RuleStmt, "%s outside a loop", st.Tok)
			return
		}
		lp := l.loops[len(l.loops)-1]
		target := lp.contLbl
		if st.Tok == token.BREAK {
			target = lp.brkLbl
		}
		l.put(irIns{op: opJmp, jop: ebpf.JmpA, dst: vNone, src: vNone, lbl: target, pos: st.Pos()})
		l.terminated = true
		l.reachable = false
	default:
		l.c.errs.add(st.Pos(), RuleStmt, "unsupported branch %s", st.Tok)
	}
}
