// Shard-aware topology support for the conservative PDES cluster
// (sim.Cluster): partitioning a rack of boxes across shards, and the
// boundary links whose physical latency is the cluster's lookahead.
//
// Conservative synchronization is only as good as its lookahead, and
// the fabric gives one for free: no frame can cross between two
// partitions faster than one propagation delay plus the serialization
// of a minimum-size frame. Scenario code that partitions a topology
// routes all partition-crossing traffic through BoundaryLinks and
// hands Config.Lookahead() to sim.NewCluster.
package netsim

import (
	"hyperion/internal/sim"
)

// SerTime returns the serialization time of b bytes on one link under
// this configuration.
func (c Config) SerTime(b int) sim.Duration {
	return sim.Duration(float64(b) / float64(c.LinkBytesPerSec) * float64(sim.Second))
}

// Lookahead returns the minimum delay of any partition-crossing
// message on this fabric: one propagation delay plus the serialization
// time of a minimum-size frame. It is the tightest bound a
// sim.Cluster built over this topology may use.
func (c Config) Lookahead() sim.Duration {
	return c.PropDelay + c.SerTime(MinFrameBytes)
}

// Partition maps n topology nodes onto nshards contiguous blocks as
// evenly as possible (the first n%nshards shards get one extra node).
// Contiguity keeps replication neighbours (b, b+1, b+2) mostly
// co-sharded, which minimizes boundary traffic without changing
// results — a sim.Cluster's output is layout-independent.
func Partition(n, nshards int) []int {
	if nshards <= 0 {
		panic("netsim: Partition with no shards")
	}
	out := make([]int, n)
	base, extra := n/nshards, n%nshards
	node := 0
	for s := 0; s < nshards && node < n; s++ {
		size := base
		if s < extra {
			size++
		}
		for i := 0; i < size; i++ {
			out[node] = s
			node++
		}
	}
	return out
}

// BoundaryLink models one direction of a partition-crossing uplink:
// sends serialize behind the link's busy horizon, then propagate.
// Each sending endpoint owns its own BoundaryLink (it is shard-local
// state), so contention on the sender's uplink is modeled while the
// receiving side stays a pure timestamped envelope.
type BoundaryLink struct {
	cfg  Config
	busy sim.Time
}

// NewBoundaryLink returns an idle link with the given fabric shape.
func NewBoundaryLink(cfg Config) *BoundaryLink {
	if cfg.LinkBytesPerSec <= 0 {
		panic("netsim: invalid boundary link config")
	}
	return &BoundaryLink{cfg: cfg}
}

// Delay returns the delivery delay for a b-byte message sent at now
// and advances the link's serialization horizon. The result is always
// at least cfg.Lookahead(), which is what makes boundary links safe
// carriers for cross-shard envelopes.
func (l *BoundaryLink) Delay(now sim.Time, b int) sim.Duration {
	if b < MinFrameBytes {
		b = MinFrameBytes
	}
	start := l.busy
	if start < now {
		start = now
	}
	l.busy = start.Add(l.cfg.SerTime(b))
	return l.busy.Add(l.cfg.PropDelay).Sub(now)
}

// Busy returns the link's current serialization horizon.
func (l *BoundaryLink) Busy() sim.Time { return l.busy }
