package hyperion

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"hyperion/internal/bench"
	"hyperion/internal/telemetry"
)

// TestMetamorphicDeterminism is the seed-sweep form of the determinism
// contract: for EVERY experiment and a spread of seeds (not just the
// golden DefaultSeed), two runs at the same seed must render
// byte-identical tables. hyperlint proves the absence of banned
// nondeterminism sources syntactically; this catches what analysis
// can't see — map-order leaks, engine-sharing bugs, stale package
// state — because such bugs almost never reproduce identically twice
// across five different seeds. Subtests run in parallel; every
// experiment owns private engines.
func TestMetamorphicDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment 10 times")
	}
	seeds := []uint64{1, 2, 3, 5, 8}
	for _, e := range bench.All() {
		for _, seed := range seeds {
			e, seed := e, seed
			t.Run(fmt.Sprintf("%s/seed%d", e.ID, seed), func(t *testing.T) {
				t.Parallel()
				r1 := e.RunSeeded(seed)
				r2 := e.RunSeeded(seed)
				a, b := r1.Table.String(), r2.Table.String()
				if a != b {
					t.Fatalf("%s diverged across two runs at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, a, b)
				}
				if r1.Steps != r2.Steps {
					t.Fatalf("%s: event counts diverged at seed %d: %d vs %d (tables matched — nondeterminism is off-table)",
						e.ID, seed, r1.Steps, r2.Steps)
				}
				if r1.SimTime != r2.SimTime {
					t.Fatalf("%s: final virtual clocks diverged at seed %d: %v vs %v",
						e.ID, seed, r1.SimTime, r2.SimTime)
				}
				if len(r1.Table.Rows) == 0 {
					t.Fatalf("%s produced no rows at seed %d", e.ID, seed)
				}
			})
		}
	}
}

// tracedDump bundles every armed-run artifact whose bytes the traced
// determinism sweep compares.
type tracedDump struct {
	table string
	trace []byte
	hist  string
	crit  string
}

func runTraced(t *testing.T, e bench.Experiment, seed uint64) tracedDump {
	t.Helper()
	res, rec, ok := bench.RunTracedExperiment(e, seed)
	if !ok {
		t.Fatalf("%s lost its traced form", e.ID)
	}
	if rec.Events() == 0 {
		t.Fatalf("%s recorded no spans while armed at seed %d", e.ID, seed)
	}
	return tracedDump{
		table: res.Table.String(),
		trace: rec.ChromeTrace(),
		hist:  rec.HistogramDump(),
		crit:  rec.CriticalPath(),
	}
}

// TestTracedMetamorphicDeterminism extends the seed sweep to the armed
// telemetry plane: for every traced experiment and seed, two armed runs
// must produce byte-identical trace JSON, histogram dumps, and
// critical-path summaries; the armed table must equal the disarmed
// table at the same seed (tracing is observation, never perturbation);
// and at the golden DefaultSeed the armed table must still hash to the
// cross-revision golden value.
func TestTracedMetamorphicDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every traced experiment repeatedly")
	}
	seeds := []uint64{1, 2, 3}
	for _, e := range bench.All() {
		if e.RunTraced == nil {
			continue
		}
		for _, seed := range seeds {
			e, seed := e, seed
			t.Run(fmt.Sprintf("%s/seed%d", e.ID, seed), func(t *testing.T) {
				t.Parallel()
				d1 := runTraced(t, e, seed)
				d2 := runTraced(t, e, seed)
				if string(d1.trace) != string(d2.trace) {
					t.Errorf("%s: trace JSON diverged across two armed runs at seed %d", e.ID, seed)
				}
				if d1.hist != d2.hist {
					t.Errorf("%s: histogram dump diverged at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, d1.hist, d2.hist)
				}
				if d1.crit != d2.crit {
					t.Errorf("%s: critical-path summary diverged at seed %d:\n--- first ---\n%s\n--- second ---\n%s",
						e.ID, seed, d1.crit, d2.crit)
				}
				if err := telemetry.ValidateChromeTrace(d1.trace); err != nil {
					t.Errorf("%s: armed trace fails schema validation at seed %d: %v", e.ID, seed, err)
				}
				dres := e.RunSeeded(seed)
				disarmed := dres.Table.String()
				if d1.table != disarmed {
					t.Errorf("%s: arming telemetry changed the table at seed %d:\n--- armed ---\n%s\n--- disarmed ---\n%s",
						e.ID, seed, d1.table, disarmed)
				}
				if seed == bench.DefaultSeed {
					want := goldenTableHashes[e.ID]
					if got := fmt.Sprintf("%x", sha256.Sum256([]byte(d1.table))); got != want {
						t.Errorf("%s: armed table drifted from the golden hash:\n got %s\nwant %s", e.ID, got, want)
					}
				}
			})
		}
	}
}
