package seg

import (
	"fmt"

	"hyperion/internal/nvme"
	"hyperion/internal/sim"
)

// SyncView is the synchronous, functional access path used by the
// storage structures built on the segment store (B+ tree, LSM tree,
// filesystem, logs). Operations move bytes immediately and accumulate
// the latency the same access would cost on the modeled hardware;
// callers drain the accumulated cost with TakeCost and charge it to the
// simulation (typically by delaying their completion callback).
//
// This functional/timing split keeps pointer-walking code ordinary Go
// while preserving the dependent-access latency that the experiments
// measure. Queueing effects between concurrent operations are not
// modeled on this path; the async Store API remains for that.
type SyncView struct {
	s    *Store
	cost sim.Duration
	rmw  []byte // scratch for read-modify-write edges in WriteAt

	// Op counters for experiment reporting.
	Reads, Writes           int64
	DevReads, DevWrites     int64
	BytesRead, BytesWritten int64
}

// grow returns buf resized to n bytes, reallocating only when its
// capacity is insufficient. Contents are unspecified.
func grow(buf []byte, n int64) []byte {
	if int64(cap(buf)) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// NewSyncView creates a view over s.
func NewSyncView(s *Store) *SyncView { return &SyncView{s: s} }

// Store returns the underlying store.
func (v *SyncView) Store() *Store { return v.s }

// TakeCost returns the accumulated modeled latency and resets it.
func (v *SyncView) TakeCost() sim.Duration {
	c := v.cost
	v.cost = 0
	return c
}

// PeekCost returns the accumulated cost without resetting.
func (v *SyncView) PeekCost() sim.Duration { return v.cost }

// Charge adds extra modeled latency (compute time, network hops).
func (v *SyncView) Charge(d sim.Duration) { v.cost += d }

// Alloc mirrors Store.Alloc (allocation is a table operation and charges
// one DRAM access).
func (v *SyncView) Alloc(id ObjectID, size int64, durable bool, hint Hint) (*Segment, error) {
	v.cost += v.s.cfg.DRAMLatency
	return v.s.Alloc(id, size, durable, hint)
}

// Free mirrors Store.Free.
func (v *SyncView) Free(id ObjectID) error {
	v.cost += v.s.cfg.DRAMLatency
	return v.s.Free(id)
}

// Stat looks up a segment entry, charging translation cost.
func (v *SyncView) Stat(id ObjectID) (*Segment, error) {
	sg, tc, err := v.s.Lookup(id)
	v.cost += tc
	return sg, err
}

// ReadAt copies length bytes at off from the object.
func (v *SyncView) ReadAt(id ObjectID, off, length int64) ([]byte, error) {
	return v.ReadAtBuf(id, off, length, nil)
}

// ReadAtBuf is ReadAt into a caller-provided scratch buffer, charging the
// identical modeled cost. The result starts at buf's base and aliases it
// whenever capacity suffices; callers reuse the buffer across calls by
// passing the previous result back in.
func (v *SyncView) ReadAtBuf(id ObjectID, off, length int64, buf []byte) ([]byte, error) {
	sg, tc, err := v.s.Lookup(id)
	v.cost += tc
	if err != nil {
		return nil, err
	}
	if off < 0 || length < 0 || off+length > sg.Size {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+length, sg.Size)
	}
	v.Reads++
	v.BytesRead += length
	if sg.Loc == LocDRAM {
		v.cost += v.s.dramTime(length)
		out := grow(buf, length)
		v.s.dram.read(out, sg.Addr+off)
		return out, nil
	}
	dev, lba := v.s.split(sg.Addr)
	bs := int64(v.s.cfg.BlockSize)
	first := lba + off/bs
	nblocks := int((off+length+bs-1)/bs - off/bs)
	if nblocks < 1 {
		nblocks = 1
	}
	skip := off % bs
	d := v.s.devs[dev].Device()
	v.cost += d.AccessCost(nvme.OpRead, nblocks)
	v.DevReads++
	data := grow(buf, int64(nblocks)*bs)
	d.ReadSyncInto(data, first, nblocks)
	// Slide the payload to the buffer base so the result can be handed
	// back as the next call's scratch without losing capacity.
	copy(data, data[skip:skip+length])
	return data[:length], nil
}

// WriteAt stores data at off in the object (read-modify-write for
// unaligned NVMe edges, with the extra read charged).
func (v *SyncView) WriteAt(id ObjectID, off int64, data []byte) error {
	sg, tc, err := v.s.Lookup(id)
	v.cost += tc
	if err != nil {
		return err
	}
	length := int64(len(data))
	if off < 0 || off+length > sg.Size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+length, sg.Size)
	}
	v.Writes++
	v.BytesWritten += length
	if sg.Loc == LocDRAM {
		v.cost += v.s.dramTime(length)
		v.s.dram.write(sg.Addr+off, data)
		return nil
	}
	dev, lba := v.s.split(sg.Addr)
	bs := int64(v.s.cfg.BlockSize)
	first := lba + off/bs
	nblocks := int((off+length+bs-1)/bs - off/bs)
	if nblocks < 1 {
		nblocks = 1
	}
	skip := off % bs
	d := v.s.devs[dev].Device()
	if skip == 0 && length%bs == 0 {
		v.cost += d.AccessCost(nvme.OpWrite, nblocks)
		v.DevWrites++
		d.WriteSync(first, data)
		return nil
	}
	// RMW: read covering blocks, merge, write back.
	v.cost += d.AccessCost(nvme.OpRead, nblocks) + d.AccessCost(nvme.OpWrite, nblocks)
	v.DevReads++
	v.DevWrites++
	old := grow(v.rmw, int64(nblocks)*bs)
	v.rmw = old
	d.ReadSyncInto(old, first, nblocks)
	copy(old[skip:], data)
	d.WriteSync(first, old)
	return nil
}

// Complete schedules cb after the accumulated cost, resetting it. This
// is the bridge back into simulated time for request handlers.
func (v *SyncView) Complete(eng *sim.Engine, name string, cb func()) {
	d := v.TakeCost()
	eng.After(d, name, cb)
}
