// Package hyperion's repository-root benchmarks: one testing.B benchmark
// per paper table/figure (wrapping internal/bench, the same harness
// cmd/benchctl runs), so `go test -bench=.` regenerates every
// experiment. Each bench reports the experiment's headline metric via
// b.ReportMetric in addition to wall-clock time of the simulation.
package hyperion

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"hyperion/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByName(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := e.Run()
		if len(r.Table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1_IntegrationModels(b *testing.B)    { runExperiment(b, "E1") }
func BenchmarkFigure2_EndToEndPath(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkEnergy_VolumeAndTDP(b *testing.B)         { runExperiment(b, "E3") }
func BenchmarkReconfig_ICAPWindow(b *testing.B)         { runExperiment(b, "E4") }
func BenchmarkPredictability_SpatialSlots(b *testing.B) { runExperiment(b, "E5") }
func BenchmarkSegmentVsPage_Translation(b *testing.B)   { runExperiment(b, "E6") }
func BenchmarkPointerChase_RTTs(b *testing.B)           { runExperiment(b, "E7") }
func BenchmarkFail2ban_Middleware(b *testing.B)         { runExperiment(b, "E8") }
func BenchmarkLoadBalancer_SSDSpill(b *testing.B)       { runExperiment(b, "E9") }
func BenchmarkEBPF_VerifyWarpPipeline(b *testing.B)     { runExperiment(b, "E10") }
func BenchmarkCorfu_SharedLog(b *testing.B)             { runExperiment(b, "E11") }
func BenchmarkColumnarScan_Pushdown(b *testing.B)       { runExperiment(b, "E12") }
func BenchmarkKV_YCSBBackends(b *testing.B)             { runExperiment(b, "E13") }
func BenchmarkNVMeoF_Transports(b *testing.B)           { runExperiment(b, "E14") }
func BenchmarkChaos_FaultInjection(b *testing.B)        { runExperiment(b, "E16") }
func BenchmarkRack_ScaleOut(b *testing.B)               { runExperiment(b, "E17") }
func BenchmarkTenants_MultiTenantSLO(b *testing.B)      { runExperiment(b, "E18") }

// TestAllExperimentsProduceOutput is the integration smoke test: every
// experiment runs to completion and emits a plausible table. Subtests
// run in parallel — each experiment owns a private engine, so this both
// shortens the suite and doubles as a data-race check under -race.
func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	for _, e := range bench.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r := e.Run()
			if len(r.Table.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if len(r.Table.Header) == 0 {
				t.Fatalf("%s: no header", e.ID)
			}
			for i, row := range r.Table.Rows {
				if len(row) != len(r.Table.Header) {
					t.Fatalf("%s: row %d has %d cells, header has %d", e.ID, i, len(row), len(r.Table.Header))
				}
			}
		})
	}
}

// goldenTableHashes pins SHA-256(Table.String()) for every experiment.
// These are cross-revision golden values: they were captured from the
// seed revision's output and must survive kernel rewrites untouched —
// any change here means a perf change leaked into the model's results.
var goldenTableHashes = map[string]string{
	"E1":  "a5a32f9a04dd1e98bee17a331c7b79bea4e87e41260076df4d21a7a62c0fa21e",
	"E2":  "ca8704c98b7426b827e8743d4270807bfe715c853aff159282dd83dd7e9b761c",
	"E3":  "4630296a513ae1dcede4ef1c97d3ebd0434adaadeeefc0243f9ea0ccc9639a8c",
	"E4":  "7ae64cd3b6b9572f9c35886547b3f8477a1de6fb266f3cc9172ad2c9e9cc9dc0",
	"E5":  "1c3c56e278373d1f58571aa67bf58a90af5a9cbd62c264db8caade35ef806b25",
	"E6":  "db5d56e142fe20b312a4da0096097331e98e570c1531e347ff182c2ce04326ee",
	"E7":  "fac3e492a680e2f8f760c67e3afe78fdf6729200da9f1ad69320fb71b0b02dbb",
	"E8":  "fc2ecff827c895550937650b9c7e3ae6ae36598f392e8bf16fc37736b4c129f2",
	"E9":  "67e0896da9987fcca9f7c0fec8cd1dfd4e9f014a107067a4dee188b7a2708a26",
	"E10": "8ca03836a02b29c99f73e490a7cbc317097a0c00ff5e121100a4167ded994433",
	"E11": "5f3b74f206bad59de8671a1500651948b7f60a95e63122e034b69b1d8ce86cc5",
	"E12": "dafc9d29c239002df9cacffbb71aed651b3e70a2be1c54864e57846487953c12",
	"E13": "348658f176fc917f7a9fe395f97c4a613f5a01dda755a3e1dc7436f57153fc1a",
	"E14": "fa7d0cceee370065bfce0ac7d884ce9a69945f96fb753b80071739dec1c15c99",
	"X1":  "238916f719bb49803307dd2218cc38be11010ef940accc4a0354a75c81e22aef",
	"E16": "41cd53e508a79a61d8b3e46ad2c7bb5db51792ca0e7470fcae7146e6c7e491b0",
	"E17": "28cb2d0ef9557fac80f4f883a43308132701b420c653953f682704fe20e82d79",
	"E18": "7c046dd15937b673411d3f9c9ae5281f23c18763368b87b913863352ec049421",
}

// TestExperimentsDeterministic asserts the simulation's core promise:
// same seed, same virtual-time results. Every experiment must (a) give
// byte-identical tables across two in-process runs and (b) match the
// golden cross-revision hash captured from the seed revision.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	for _, e := range bench.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r1, r2 := e.Run(), e.Run()
			a, b := r1.Table.String(), r2.Table.String()
			if a != b {
				t.Fatalf("%s not deterministic:\n--- first ---\n%s\n--- second ---\n%s", e.ID, a, b)
			}
			want, ok := goldenTableHashes[e.ID]
			if !ok {
				t.Fatalf("%s has no golden hash; add it to goldenTableHashes", e.ID)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256([]byte(a))); got != want {
				t.Errorf("%s table drifted from the golden seed output:\n got %s\nwant %s\n%s", e.ID, got, want, a)
			}
		})
	}
}

// TestRunAllParallelMatchesSequential pins the -parallel contract: the
// fan-out changes wall time only, never results.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	seq := bench.RunAll(1)
	par := bench.RunAll(4)
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i].Result.String(), par[i].Result.String()
		if a != b {
			t.Errorf("%s: parallel run diverged from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
				seq[i].Exp.ID, a, b)
		}
	}
}
