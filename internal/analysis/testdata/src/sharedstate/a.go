// Package sharedstate is hyperlint golden-test input: package-level
// mutable state and cross-engine references in model code.
package sharedstate

import (
	"errors"

	"hyperion/internal/sim"
	"hyperion/internal/wire"
)

// Read-only tables and error sentinels are fine.
var errBad = errors.New("bad")

var opNames = map[int]string{1: "read"}

var hits int64

func bump() {
	hits++ // want `package-level var hits is mutated in model code`
}

var last string

func record(s string) {
	last = s // want `package-level var last is mutated in model code`
}

var cache = map[string]int{}

func memo(k string) {
	cache[k] = 1 // want `package-level var cache is mutated in model code`
}

func init() {
	opNames[2] = "write" // build-time table construction is allowed
}

func localShadowIsFine() int {
	hits := 0
	hits++
	return hits
}

func fieldOfLocalIsFine() {
	type box struct{ n int }
	var b box
	b.n = 1
	_ = b
}

var lastEngine *sim.Engine // want `holds \*sim\.Engine`

var watchdog sim.EventRef // want `holds sim\.EventRef`

type regEntry struct {
	ref sim.EventRef
}

var registry []regEntry // want `holds sim\.EventRef`

func useAll() (any, any, any, any) {
	return errBad, lastEngine, watchdog, registry
}

var sharedPool *wire.Pool // want `holds \*wire\.Pool`

var inlinePool wire.Pool // want `holds wire\.Pool`

var parked *wire.Buf // want `holds \*wire\.Buf`

type shardless struct {
	pool *wire.Pool
}

var fleet []shardless // want `holds \*wire\.Pool`

func shardLocalPoolIsFine() *wire.Buf {
	pool := wire.NewPool(64)
	return pool.Get(16)
}

func retainBare(b *wire.Buf) *wire.Buf {
	return b.Retain() // want `Retain without a //wire:sends destination`
}

func retainAnnotated(b *wire.Buf) *wire.Buf {
	return b.Retain() //wire:sends the same-shard NIC queue
}

func retainAnnotatedAbove(b *wire.Buf) *wire.Buf {
	//wire:sends the retry queue, same engine
	return b.Retain()
}

func retainBareVerb(b *wire.Buf) *wire.Buf {
	//wire:sends
	return b.Retain() // want `Retain without a //wire:sends destination`
}

func otherRetainIsFine() {
	var c counter
	c.Retain()
}

type counter int

func (c *counter) Retain() {}

func usePools() (any, any, any, any) {
	return sharedPool, inlinePool, parked, fleet
}
