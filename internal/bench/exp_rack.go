package bench

import (
	"fmt"
	"time"

	"hyperion/internal/rack"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// DefaultRackShards is the shard count behind Rack() — the golden
// universe runs the sharded kernel, not a degenerate single engine.
// The table is shard-count invariant, so the golden hash pins the
// model, not the layout; benchctl -shards and RackSharded exist to
// vary the layout for the speedup measurement.
const DefaultRackShards = 4

// rackBoxSweep sizes the three rows: 8 → 32 simulated DPU boxes,
// 32k → 128k open-loop clients.
var rackBoxSweep = []int{8, 16, 32}

// rackConfig shapes one row's scenario. Relative to the unit-test
// default this is a rack-scale spine (multi-hop propagation, which is
// also the conservative lookahead) under a heavier client population.
func rackConfig(boxes int) rack.Config {
	cfg := rack.DefaultConfig()
	cfg.Boxes = boxes
	cfg.ClientsPerBox = 4000
	cfg.RatePerClient = 300
	cfg.Horizon = 2 * sim.Millisecond
	// Boxes sit several switch hops apart on the spine; the longer
	// propagation delay is honest for a rack and directly sets the
	// conservative window width (lookahead), keeping barriers rare.
	cfg.Net.PropDelay = 2 * sim.Microsecond
	return cfg
}

// Rack (E17) drives one scenario across a rack of simulated DPU boxes
// on the sharded conservative-PDES kernel: every box is an NVMe-oF
// block target plus a replicated KV-SSD, hammered by an open-loop
// client population, with all cross-box traffic carried as
// timestamped spine envelopes. Rows sweep the rack size; the table is
// a pure function of the seed for any shard count.
func Rack(seed uint64) Result { return rackRun(seed, DefaultRackShards, nil) }

// RackSharded is Rack with an explicit shard count — the layout knob
// behind `benchctl -shards` and the shard-count-invariance sweep. The
// Result must be byte-identical to Rack at the same seed.
func RackSharded(seed uint64, shards int) Result { return rackRun(seed, shards, nil) }

// RackTraced is Rack with the telemetry plane armed. Traced runs use
// one shard (a recorder sink is single-threaded state); by shard-count
// invariance the Result still matches Rack at the same seed.
func RackTraced(seed uint64, rec *telemetry.Recorder) Result { return rackRun(seed, 1, rec) }

func rackRun(seed uint64, shards int, rec *telemetry.Recorder) Result {
	r := Result{ID: "E17", Title: "rack-scale scale-out — NVMe-oF + replicated KV across sharded DPU boxes"}
	r.Table.Header = []string{"boxes", "clients", "ops", "reads", "gets", "puts", "ok", "err",
		"p50", "p99", "p99.9", "goodput MB/s"}
	for _, boxes := range rackBoxSweep {
		cfg := rackConfig(boxes)
		cfg.Shards = shards
		var crec *telemetry.Recorder
		if rec != nil {
			crec = rec.Child(fmt.Sprintf("e17.rack-%d", boxes))
		}
		ra := rack.New(cfg, seed, crec)
		ra.Run()
		tot := ra.Totals()
		cl := ra.Cluster()
		elapsed := cl.Now().Sub(sim.Time(0))
		goodput := float64(tot.BytesMoved) / elapsed.Seconds() / 1e6
		r.Table.AddRow(itoa(int64(boxes)), itoa(int64(tot.Clients)), itoa(tot.Issued),
			itoa(tot.Reads), itoa(tot.Gets), itoa(tot.Puts), itoa(tot.OK), itoa(tot.Errs),
			tot.LatAll.Percentile(50).String(), tot.LatAll.Percentile(99).String(),
			tot.LatAll.Percentile(99.9).String(), f2(goodput))
		// Shard engines are owned by the cluster; fold its aggregate in
		// place of the usual r.observe(eng...).
		r.Steps += cl.Steps()
		if now := cl.Now(); now > r.SimTime {
			r.SimTime = now
		}
	}
	r.Notes = append(r.Notes,
		"one scenario partitioned across conservative-PDES shards; the table is byte-identical for every shard count, so scale-out buys wall time, not different physics")
	return r
}

// RackSweepPoint is one shard count's measured cost for the full E17
// sweep. Two throughput figures are reported because they answer
// different questions:
//
//   - EventsPerSec is raw events over wall time — what this host
//     actually delivered. On a host with fewer cores than shards the
//     shards time-share, so this stays flat no matter how well the
//     kernel partitions.
//   - BusyEventsPerSec divides events by the busiest shard's execution
//     time (summed over the rack sizes): the kernel's critical path.
//     It is what wall time converges to once each shard has its own
//     core, and is the honest scaling figure on core-starved hosts.
//
// StallMS (summed across shards) makes barrier cost observable for
// lookahead tuning.
type RackSweepPoint struct {
	Shards           int     `json:"shards"`
	Events           uint64  `json:"events"`
	Windows          uint64  `json:"windows"`
	WallMS           float64 `json:"wall_ms"`
	EventsPerSec     float64 `json:"events_per_sec"`
	MaxShardBusyMS   float64 `json:"max_shard_busy_ms"`
	BusyEventsPerSec float64 `json:"busy_events_per_sec"`
	StallMS          float64 `json:"stall_ms"`
}

// RackSweep reruns the E17 scenario once per shard count and measures
// the kernel's scaling. Every point retires the identical event
// history (shard-count invariance), so the comparison is pure layout.
func RackSweep(seed uint64, shardCounts []int) []RackSweepPoint {
	pts := make([]RackSweepPoint, 0, len(shardCounts))
	for _, shards := range shardCounts {
		p := RackSweepPoint{Shards: shards}
		start := time.Now() //hyperlint:allow(nodeterm) harness-side wall measurement; never feeds model time
		var critNs, stallNs int64
		for _, boxes := range rackBoxSweep {
			cfg := rackConfig(boxes)
			cfg.Shards = shards
			ra := rack.New(cfg, seed, nil)
			ra.Run()
			cl := ra.Cluster()
			p.Events += cl.Steps()
			p.Windows += cl.Windows()
			var maxBusy int64
			for _, st := range cl.Stats() {
				if st.BusyNs > maxBusy {
					maxBusy = st.BusyNs
				}
				stallNs += st.StallNs
			}
			critNs += maxBusy
		}
		wall := time.Since(start) //hyperlint:allow(nodeterm) harness-side wall measurement; never feeds model time
		p.WallMS = float64(wall.Microseconds()) / 1000
		p.EventsPerSec = float64(p.Events) / wall.Seconds()
		p.MaxShardBusyMS = float64(critNs) / 1e6
		p.BusyEventsPerSec = float64(p.Events) / (float64(critNs) / 1e9)
		p.StallMS = float64(stallNs) / 1e6
		pts = append(pts, p)
	}
	return pts
}
