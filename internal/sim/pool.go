package sim

// The event pool recycles event slots through a free list so the
// steady-state schedule/fire/cancel cycle allocates nothing: once the
// pool has grown to the simulation's high-water mark of in-flight
// events, every At/After reuses a slot some earlier event vacated.
// Generation stamps make recycled slots safe to reference: a slot's gen
// is bumped when it is released, so an EventRef held across the event's
// firing (or across a recycle) simply stops matching and Cancel becomes
// a no-op instead of killing an unrelated event.

// eventSlot holds the callback payload of one scheduled event. The sort
// key lives in the heap entry, not here.
type eventSlot struct {
	do   func()
	name string
	gen  uint32
	live bool // scheduled and neither fired nor cancelled
}

// eventPool is a slab of slots plus a LIFO free list. LIFO reuse keeps
// the hot slots hot in cache.
type eventPool struct {
	slots []eventSlot
	free  []int32
}

// alloc returns the index of a vacant slot, growing the slab if the
// free list is empty.
func (p *eventPool) alloc() int32 {
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id
	}
	p.slots = append(p.slots, eventSlot{})
	return int32(len(p.slots) - 1)
}

// release returns a slot to the free list, invalidating outstanding
// EventRefs by bumping the generation. The callback is dropped so the
// pool never pins dead closures for the GC.
func (p *eventPool) release(id int32) {
	s := &p.slots[id]
	s.do = nil
	s.name = ""
	s.live = false
	s.gen++
	p.free = append(p.free, id)
}
