package nvme

import (
	"bytes"
	"errors"
	"testing"

	"hyperion/internal/sim"
)

func newZNS(t testing.TB, zoneBlocks int64) (*sim.Engine, *ZNS) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("zns0")
	cfg.Blocks = zoneBlocks * 8 // eight zones
	host := NewHost(New(eng, cfg), nil)
	z, err := NewZNS(host, zoneBlocks)
	if err != nil {
		t.Fatal(err)
	}
	return eng, z
}

func TestZoneAppendReturnsLBAs(t *testing.T) {
	eng, z := newZNS(t, 256)
	var lbas []int64
	for i := 0; i < 4; i++ {
		if err := z.Append(0, make([]byte, 4096*2), func(lba int64, err error) {
			if err != nil {
				t.Error(err)
			}
			lbas = append(lbas, lba)
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i, lba := range lbas {
		if lba != int64(i*2) {
			t.Fatalf("append %d at lba %d, want %d", i, lba, i*2)
		}
	}
	rep := z.Report()
	if rep[0].State != ZoneOpen || rep[0].WritePointer != 8 {
		t.Fatalf("zone 0 = %+v", rep[0])
	}
}

func TestAppendRoundTripAcrossZones(t *testing.T) {
	eng, z := newZNS(t, 64)
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	var at int64 = -1
	_ = z.Append(3, payload, func(lba int64, err error) { at = lba })
	eng.Run()
	if at != 3*64 {
		t.Fatalf("zone 3 append at %d", at)
	}
	var got []byte
	if err := z.Read(at, 1, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("zns read mismatch")
	}
}

func TestSequentialWriteRequired(t *testing.T) {
	eng, z := newZNS(t, 64)
	if err := z.WriteAt(0, make([]byte, 4096), nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Writing anywhere but the WP fails.
	if err := z.WriteAt(5, make([]byte, 4096), nil); !errors.Is(err, ErrNotAtWritePointer) {
		t.Fatalf("err = %v, want ErrNotAtWritePointer", err)
	}
	// Rewriting LBA 0 fails too (no in-place updates).
	if err := z.WriteAt(0, make([]byte, 4096), nil); !errors.Is(err, ErrNotAtWritePointer) {
		t.Fatalf("rewrite err = %v", err)
	}
	if z.WriteErrors != 2 {
		t.Fatalf("write errors = %d", z.WriteErrors)
	}
}

func TestZoneFullAndReset(t *testing.T) {
	eng, z := newZNS(t, 4)
	if err := z.Append(0, make([]byte, 4*4096), nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if z.Report()[0].State != ZoneFull {
		t.Fatal("zone not full")
	}
	if err := z.Append(0, make([]byte, 4096), nil); !errors.Is(err, ErrZoneFull) {
		t.Fatalf("err = %v, want ErrZoneFull", err)
	}
	var rerr error
	if err := z.Reset(0, func(err error) { rerr = err }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	rep := z.Report()[0]
	if rep.State != ZoneEmpty || rep.WritePointer != 0 {
		t.Fatalf("after reset: %+v", rep)
	}
	if err := z.Append(0, make([]byte, 4096), nil); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
}

func TestReadRules(t *testing.T) {
	eng, z := newZNS(t, 64)
	_ = z.Append(0, make([]byte, 2*4096), nil)
	eng.Run()
	if err := z.Read(1, 2, func([]byte, error) {}); !errors.Is(err, ErrUnwrittenRead) {
		t.Fatalf("beyond-wp err = %v", err)
	}
	if err := z.Read(62, 4, func([]byte, error) {}); !errors.Is(err, ErrCrossZone) {
		t.Fatalf("cross-zone err = %v", err)
	}
	if err := z.Read(999, 1, func([]byte, error) {}); !errors.Is(err, ErrBadZone) {
		t.Fatalf("bad zone err = %v", err)
	}
}

func TestZNSBadGeometry(t *testing.T) {
	eng := sim.NewEngine(1)
	host := NewHost(New(eng, DefaultConfig("x")), nil)
	if _, err := NewZNS(host, 0); err == nil {
		t.Fatal("zero zone size accepted")
	}
	z, _ := NewZNS(host, 64)
	if err := z.Append(0, make([]byte, 100), nil); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("unaligned append err = %v", err)
	}
	if err := z.Append(-1, make([]byte, 4096), nil); !errors.Is(err, ErrBadZone) {
		t.Fatalf("bad zone err = %v", err)
	}
}
