// Package trace generates the synthetic workloads the experiments run:
// YCSB-style key-value mixes over Zipfian keys, network attack traces
// for the fail2ban middleware, and connection traces for the L4 load
// balancer. The paper's substrate used production traffic; these
// generators exercise the same code paths with controlled, seeded
// distributions (documented substitution in DESIGN.md).
package trace

import (
	"encoding/binary"
	"fmt"

	"hyperion/internal/sim"
)

// KVOp is one key-value operation.
type KVOp struct {
	Kind  byte // 'r' read, 'u' update, 'i' insert, 's' scan
	Key   []byte
	Value []byte
}

// YCSBMix selects a standard mix.
type YCSBMix int

const (
	// YCSBA is 50% reads / 50% updates.
	YCSBA YCSBMix = iota
	// YCSBB is 95% reads / 5% updates.
	YCSBB
	// YCSBC is 100% reads.
	YCSBC
)

func (m YCSBMix) String() string {
	switch m {
	case YCSBA:
		return "ycsb-a"
	case YCSBB:
		return "ycsb-b"
	case YCSBC:
		return "ycsb-c"
	}
	return "?"
}

// KVGen generates YCSB-style operations.
type KVGen struct {
	r        *sim.Rand
	zipf     *sim.Zipf
	mix      YCSBMix
	keys     uint64
	valBytes int
}

// NewKVGen creates a generator over n keys with the given mix and value
// size; theta=0.99 Zipfian like the YCSB default.
func NewKVGen(seed uint64, n uint64, mix YCSBMix, valBytes int) *KVGen {
	r := sim.NewRand(seed)
	return &KVGen{r: r, zipf: sim.NewZipf(r, n, 0.99), mix: mix, keys: n, valBytes: valBytes}
}

// Key materializes key i in a fixed format.
func Key(i uint64) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// LoadKeys returns every key once (for the load phase).
func (g *KVGen) LoadKeys() []uint64 {
	out := make([]uint64, g.keys)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// Value generates a deterministic value for a key.
func (g *KVGen) Value(key uint64) []byte {
	v := make([]byte, g.valBytes)
	binary.LittleEndian.PutUint64(v, key)
	for i := 8; i < len(v); i++ {
		v[i] = byte(key + uint64(i))
	}
	return v
}

// Next returns the next operation.
func (g *KVGen) Next() KVOp {
	k := g.zipf.Next()
	var readPct int
	switch g.mix {
	case YCSBA:
		readPct = 50
	case YCSBB:
		readPct = 95
	case YCSBC:
		readPct = 100
	}
	if g.r.Intn(100) < readPct {
		return KVOp{Kind: 'r', Key: Key(k)}
	}
	return KVOp{Kind: 'u', Key: Key(k), Value: g.Value(k)}
}

// Packet is one network packet for the middleware workloads.
type Packet struct {
	SrcIP    uint32
	DstIP    uint32
	SrcPort  uint16
	DstPort  uint16
	Proto    byte
	Flags    byte // TCP flags; SYN=0x02, ACK=0x10, FIN=0x01, RST=0x04
	Bytes    int
	AuthFail bool // ssh-style authentication failure indicator
}

// Marshal encodes a packet header into a 20-byte context buffer (the
// eBPF programs parse this layout).
func (p Packet) Marshal() []byte {
	b := make([]byte, 20)
	binary.LittleEndian.PutUint32(b[0:], p.SrcIP)
	binary.LittleEndian.PutUint32(b[4:], p.DstIP)
	binary.LittleEndian.PutUint16(b[8:], p.SrcPort)
	binary.LittleEndian.PutUint16(b[10:], p.DstPort)
	b[12] = p.Proto
	b[13] = p.Flags
	binary.LittleEndian.PutUint32(b[14:], uint32(p.Bytes))
	if p.AuthFail {
		b[18] = 1
	}
	return b
}

// UnmarshalPacket decodes a 20-byte context buffer.
func UnmarshalPacket(b []byte) Packet {
	var p Packet
	p.SrcIP = binary.LittleEndian.Uint32(b[0:])
	p.DstIP = binary.LittleEndian.Uint32(b[4:])
	p.SrcPort = binary.LittleEndian.Uint16(b[8:])
	p.DstPort = binary.LittleEndian.Uint16(b[10:])
	p.Proto = b[12]
	p.Flags = b[13]
	p.Bytes = int(binary.LittleEndian.Uint32(b[14:]))
	p.AuthFail = b[18] == 1
	return p
}

// AttackGen produces a mixed trace of benign traffic and brute-force
// attackers (repeated auth failures from a small set of sources) — the
// fail2ban workload.
type AttackGen struct {
	r          *sim.Rand
	attackers  []uint32
	AttackFrac float64
	FailProb   float64 // auth-failure probability per attacker packet
}

// NewAttackGen creates a generator with the given number of attacker
// sources.
func NewAttackGen(seed uint64, attackers int) *AttackGen {
	g := &AttackGen{r: sim.NewRand(seed), AttackFrac: 0.3, FailProb: 0.9}
	for i := 0; i < attackers; i++ {
		g.attackers = append(g.attackers, 0x0a000000|uint32(g.r.Intn(1<<16)))
	}
	return g
}

// Attackers returns the attacker source list.
func (g *AttackGen) Attackers() []uint32 { return g.attackers }

// Next generates one packet.
func (g *AttackGen) Next() Packet {
	p := Packet{
		DstIP:   0xC0A80001, // the protected service
		DstPort: 22,
		Proto:   6,
		Flags:   0x10,
		Bytes:   g.r.Intn(1400) + 60,
	}
	if g.r.Float64() < g.AttackFrac && len(g.attackers) > 0 {
		p.SrcIP = g.attackers[g.r.Intn(len(g.attackers))]
		p.SrcPort = uint16(1024 + g.r.Intn(60000))
		p.AuthFail = g.r.Float64() < g.FailProb
		return p
	}
	p.SrcIP = 0xC0000000 | uint32(g.r.Intn(1<<20))
	p.SrcPort = uint16(1024 + g.r.Intn(60000))
	p.AuthFail = g.r.Float64() < 0.01
	return p
}

// ConnGen produces load-balancer traffic: SYNs opening connections,
// data packets on open connections, FINs closing them.
type ConnGen struct {
	r           *sim.Rand
	open        []Packet // one representative packet per open connection
	NewConnProb float64
	CloseProb   float64
}

// NewConnGen creates a connection-trace generator.
func NewConnGen(seed uint64) *ConnGen {
	return &ConnGen{r: sim.NewRand(seed), NewConnProb: 0.2, CloseProb: 0.05}
}

// Open returns the number of currently open connections.
func (g *ConnGen) Open() int { return len(g.open) }

// Next generates the next packet in the trace.
func (g *ConnGen) Next() Packet {
	if len(g.open) == 0 || g.r.Float64() < g.NewConnProb {
		p := Packet{
			SrcIP:   0x0b000000 | uint32(g.r.Intn(1<<22)),
			DstIP:   0xC0A80002,
			SrcPort: uint16(1024 + g.r.Intn(60000)),
			DstPort: 443,
			Proto:   6,
			Flags:   0x02, // SYN
			Bytes:   60,
		}
		g.open = append(g.open, p)
		return p
	}
	i := g.r.Intn(len(g.open))
	p := g.open[i]
	if g.r.Float64() < g.CloseProb {
		p.Flags = 0x01 // FIN
		g.open = append(g.open[:i], g.open[i+1:]...)
	} else {
		p.Flags = 0x10 // ACK data
		p.Bytes = g.r.Intn(1400) + 60
	}
	return p
}
