package netsim

import (
	"testing"

	"hyperion/internal/sim"
)

func TestConfigLookahead(t *testing.T) {
	cfg := DefaultConfig()
	la := cfg.Lookahead()
	if la <= 0 {
		t.Fatal("lookahead must be positive")
	}
	if want := cfg.PropDelay + cfg.SerTime(MinFrameBytes); la != want {
		t.Errorf("Lookahead() = %v, want %v", la, want)
	}
	// The network's serTime must agree with the exported method.
	eng := sim.NewEngine(1)
	n := New(eng, cfg)
	if n.serTime(4096) != cfg.SerTime(4096) {
		t.Error("Network.serTime disagrees with Config.SerTime")
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []int
	}{
		{4, 1, []int{0, 0, 0, 0}},
		{4, 2, []int{0, 0, 1, 1}},
		{5, 2, []int{0, 0, 0, 1, 1}},
		{4, 4, []int{0, 1, 2, 3}},
		{2, 4, []int{0, 1}},
		{0, 3, []int{}},
	}
	for _, c := range cases {
		got := Partition(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Errorf("Partition(%d,%d) len=%d want %d", c.n, c.shards, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Partition(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
				break
			}
		}
	}
}

func TestBoundaryLinkDelay(t *testing.T) {
	cfg := DefaultConfig()
	l := NewBoundaryLink(cfg)
	la := cfg.Lookahead()
	// Idle link: minimum-size send takes exactly the lookahead.
	if d := l.Delay(0, 0); d != la {
		t.Errorf("idle min-frame delay %v, want lookahead %v", d, la)
	}
	// Back-to-back sends queue behind the serialization horizon, so
	// delays are non-decreasing and never under the lookahead.
	prev := sim.Duration(0)
	for i := 0; i < 10; i++ {
		d := l.Delay(0, 4096)
		if d < la {
			t.Fatalf("send %d: delay %v below lookahead %v", i, d, la)
		}
		if d <= prev {
			t.Fatalf("send %d: delay %v not increasing past %v under a busy link", i, d, prev)
		}
		prev = d
	}
	// After the link drains, delay falls back to ser+prop.
	now := l.Busy().Add(sim.Millisecond)
	if d := l.Delay(now, 4096); d != cfg.SerTime(4096)+cfg.PropDelay {
		t.Errorf("drained delay %v, want %v", d, cfg.SerTime(4096)+cfg.PropDelay)
	}
}
