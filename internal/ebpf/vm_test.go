package ebpf

import (
	"encoding/binary"
	"errors"
	"testing"
)

func run(t *testing.T, src string, ctx []byte) uint64 {
	t.Helper()
	vm := NewVM(nil)
	if err := vm.Load(MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	got, err := vm.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint64
	}{
		{"add", "mov r0, 2\nadd r0, 3\nexit", 5},
		{"sub_negative", "mov r0, 2\nsub r0, 5\nexit", ^uint64(2)}, // -3
		{"mul", "mov r0, 7\nmul r0, 6\nexit", 42},
		{"div", "mov r0, 42\nmov r1, 5\ndiv r0, r1\nexit", 8},
		{"div_by_zero_yields_zero", "mov r0, 42\nmov r1, 0\ndiv r0, r1\nexit", 0},
		{"mod", "mov r0, 42\nmod r0, 5\nexit", 2},
		{"mod_by_zero_keeps_dst", "mov r0, 42\nmov r1, 0\nmod r0, r1\nexit", 42},
		{"and", "mov r0, 0xff\nand r0, 0x0f\nexit", 0x0f},
		{"or", "mov r0, 0xf0\nor r0, 0x0f\nexit", 0xff},
		{"xor_self", "mov r0, 123\nxor r0, r0\nexit", 0},
		{"lsh", "mov r0, 1\nlsh r0, 40\nexit", 1 << 40},
		{"lsh_masked", "mov r0, 1\nlsh r0, 64\nexit", 1}, // shift & 63
		{"rsh", "mov r0, 256\nrsh r0, 4\nexit", 16},
		{"arsh_sign", "mov r0, -8\narsh r0, 1\nexit", ^uint64(3)}, // -4
		{"neg", "mov r0, 5\nneg r0\nexit", ^uint64(4)},            // -5
		{"mov32_truncates", "lddw r1, 0x1ffffffff\nmov32 r0, r1\nexit", 0xffffffff},
		{"add32_wraps", "mov32 r0, -1\nadd32 r0, 1\nexit", 0},
		{"arsh32", "mov32 r0, -16\narsh32 r0, 2\nexit", 0xfffffffc},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(t, c.src, nil); got != c.want {
				t.Fatalf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestJumpSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint64
	}{
		{"jsgt_signed", "mov r1, -1\nmov r0, 0\njsgt r1, 0, bad\nmov r0, 1\nja out\nbad: mov r0, 2\nout: exit", 1},
		{"jgt_unsigned", "mov r1, -1\nmov r0, 0\njgt r1, 0, big\nja out\nbig: mov r0, 1\nout: exit", 1},
		{"jset", "mov r1, 0b1010\nmov r0, 0\njset r1, 0b0010, hit\nja out\nhit: mov r0, 1\nout: exit", 1},
		{"jeq32_ignores_high_bits", "lddw r1, 0x100000005\nmov r0, 0\njeq32 r1, 5, hit\nja out\nhit: mov r0, 1\nout: exit", 1},
		{"jle_chain", "mov r1, 3\nmov r0, 0\njle r1, 3, a\nja out\na: jge r1, 3, b\nja out\nb: mov r0, 9\nout: exit", 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(t, c.src, nil); got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestMemoryAndContext(t *testing.T) {
	ctx := make([]byte, 16)
	binary.LittleEndian.PutUint32(ctx[4:], 0xcafebabe)
	got := run(t, `
		ldxw r0, [r1+4]
		exit
	`, ctx)
	if got != 0xcafebabe {
		t.Fatalf("ctx read = %#x", got)
	}
	// Context writes are visible to the embedder (packet rewriting).
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble(`
		stw [r1+0], 7
		mov r0, 0
		exit
	`))
	buf := make([]byte, 8)
	if _, err := vm.Run(buf); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(buf) != 7 {
		t.Fatalf("ctx write not visible: %v", buf)
	}
}

func TestStackByteSizes(t *testing.T) {
	got := run(t, `
		stdw [r10-8], 0x1122334455667788
		ldxb r0, [r10-8]
		ldxh r1, [r10-8]
		ldxw r2, [r10-8]
		add r0, r1
		add r0, r2
		exit
	`, nil)
	want := uint64(0x88) + 0x7788 + 0x55667788
	if got != want {
		t.Fatalf("got %#x, want %#x", got, want)
	}
}

func TestOutOfBoundsAccessFails(t *testing.T) {
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble("ldxdw r0, [r10+0]\nexit")) // above stack top
	if _, err := vm.Run(nil); !errors.Is(err, ErrBadMemAccess) {
		t.Fatalf("err = %v, want ErrBadMemAccess", err)
	}
	_ = vm.Load(MustAssemble("mov r2, 0\nldxdw r0, [r2+0]\nexit"))
	if _, err := vm.Run(nil); !errors.Is(err, ErrBadMemAccess) {
		t.Fatalf("null deref err = %v, want ErrBadMemAccess", err)
	}
}

func TestRunWithoutLoad(t *testing.T) {
	vm := NewVM(nil)
	if _, err := vm.Run(nil); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("err = %v, want ErrNoProgram", err)
	}
}

func TestUnknownHelper(t *testing.T) {
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble("call 999\nexit"))
	if _, err := vm.Run(nil); !errors.Is(err, ErrUnknownHelper) {
		t.Fatalf("err = %v, want ErrUnknownHelper", err)
	}
}

func TestCallClobbersR1toR5(t *testing.T) {
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble(`
		mov r6, 11
		call 5
		mov r0, r6
		exit
	`))
	got, err := vm.Run(nil)
	if err != nil || got != 11 {
		t.Fatalf("callee-saved r6 = %d,%v", got, err)
	}
}

func TestHashMapHelpers(t *testing.T) {
	maps := &MapSet{}
	id := maps.Add(NewHashMap(4, 8, 16))
	vm := NewVM(maps)
	// Insert key=5 value=77 via helpers, then look it up and load it.
	src := `
		stw  [r10-4], 5        ; key
		stdw [r10-16], 77      ; value
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		mov r3, r10
		sub r3, 16
		call 2                 ; update
		jeq r0, 0, ok
		mov r0, 100
		exit
	ok:
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		call 1                 ; lookup
		jeq r0, 0, miss
		ldxdw r0, [r0+0]
		exit
	miss:
		mov r0, 200
		exit
	`
	src = replaceAll(src, "MAPID", itoa(id))
	_ = vm.Load(MustAssemble(src))
	got, err := vm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("lookup = %d, want 77", got)
	}

	// Delete and re-lookup: should miss.
	src2 := `
		stw [r10-4], 5
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		call 3                 ; delete
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		call 1
		jeq r0, 0, miss
		mov r0, 1
		exit
	miss:
		mov r0, 0
		exit
	`
	src2 = replaceAll(src2, "MAPID", itoa(id))
	_ = vm.Load(MustAssemble(src2))
	got, err = vm.Run(nil)
	if err != nil || got != 0 {
		t.Fatalf("after delete lookup = %d,%v want miss", got, err)
	}
}

func TestMapValueWriteThrough(t *testing.T) {
	// Writes through a looked-up map value pointer must persist in the
	// map (kernel semantics).
	maps := &MapSet{}
	m := NewHashMap(4, 8, 4)
	_ = m.Update([]byte{1, 0, 0, 0}, make([]byte, 8))
	id := maps.Add(m)
	vm := NewVM(maps)
	src := replaceAll(`
		stw [r10-4], 1
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		call 1
		jeq r0, 0, miss
		stdw [r0+0], 424242
		mov r0, 0
		exit
	miss:
		mov r0, 1
		exit
	`, "MAPID", itoa(id))
	_ = vm.Load(MustAssemble(src))
	got, err := vm.Run(nil)
	if err != nil || got != 0 {
		t.Fatalf("run = %d,%v", got, err)
	}
	v, ok := m.Lookup([]byte{1, 0, 0, 0})
	if !ok || binary.LittleEndian.Uint64(v) != 424242 {
		t.Fatalf("map not updated through pointer: %v", v)
	}
}

func TestKtimeHelperUsesClock(t *testing.T) {
	vm := NewVM(nil)
	vm.Now = func() uint64 { return 12345 }
	_ = vm.Load(MustAssemble("call 5\nexit"))
	got, err := vm.Run(nil)
	if err != nil || got != 12345 {
		t.Fatalf("ktime = %d,%v", got, err)
	}
}

func TestTraceHelper(t *testing.T) {
	vm := NewVM(nil)
	var traced []uint64
	vm.Trace = func(v uint64) { traced = append(traced, v) }
	_ = vm.Load(MustAssemble("mov r1, 7\ncall 6\nmov r0, 0\nexit"))
	if _, err := vm.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0] != 7 {
		t.Fatalf("traced = %v", traced)
	}
}

func TestCustomHelperAndWindows(t *testing.T) {
	vm := NewVM(nil)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	vm.RegisterHelper(HelperUserBase, Helper{Name: "get_block", Fn: func(vm *VM, a [5]uint64) (uint64, error) {
		return vm.AddWindow(data, false), nil
	}})
	_ = vm.Load(MustAssemble("call 64\nldxdw r0, [r0+0]\nexit"))
	got, err := vm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != binary.LittleEndian.Uint64(data) {
		t.Fatalf("window read = %#x", got)
	}
	// Writing to a read-only window must fail.
	_ = vm.Load(MustAssemble("call 64\nstdw [r0+0], 1\nmov r0, 0\nexit"))
	vm.ResetWindows()
	if _, err := vm.Run(nil); !errors.Is(err, ErrBadMemAccess) {
		t.Fatalf("read-only write err = %v", err)
	}
}

func TestStepCounting(t *testing.T) {
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble("mov r0, 1\nadd r0, 1\nexit"))
	if _, err := vm.Run(nil); err != nil {
		t.Fatal(err)
	}
	if vm.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", vm.Steps)
	}
}

func TestStackIsolationBetweenRuns(t *testing.T) {
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble("stdw [r10-8], 55\nmov r0, 0\nexit"))
	if _, err := vm.Run(nil); err != nil {
		t.Fatal(err)
	}
	_ = vm.Load(MustAssemble("ldxdw r0, [r10-8]\nexit"))
	got, err := vm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("stack leaked between runs: %d", got)
	}
}

func replaceAll(s, old, new string) string {
	out := ""
	for {
		i := indexOf(s, old)
		if i < 0 {
			return out + s
		}
		out += s[:i] + new
		s = s[i+len(old):]
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func BenchmarkVMArithmetic(b *testing.B) {
	vm := NewVM(nil)
	_ = vm.Load(MustAssemble(`
		mov r0, 0
		mov r1, 1
		add r0, r1
		mul r0, 3
		rsh r0, 1
		xor r0, 0x55
		exit
	`))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMMapLookup(b *testing.B) {
	maps := &MapSet{}
	m := NewHashMap(4, 8, 1024)
	_ = m.Update([]byte{9, 0, 0, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	id := maps.Add(m)
	vm := NewVM(maps)
	_ = vm.Load(MustAssemble(replaceAll(`
		stw [r10-4], 9
		mov r1, MAPID
		mov r2, r10
		sub r2, 4
		call 1
		mov r0, 0
		exit
	`, "MAPID", itoa(id))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.ResetWindows()
		if _, err := vm.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}
