package fail2ban

import (
	"testing"

	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/trace"
)

func deploy(t testing.TB, threshold int) (*sim.Engine, *core.DPU, *Filter) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := core.DefaultConfig("f2b")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	d, _, err := core.Boot(eng, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Deploy(d, 0, threshold, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run() // finish reconfiguration
	return eng, d, f
}

func pkt(src uint32, fail bool) trace.Packet {
	return trace.Packet{SrcIP: src, DstIP: 1, DstPort: 22, Proto: 6, Bytes: 100, AuthFail: fail}
}

func TestCleanTrafficPasses(t *testing.T) {
	eng, _, f := deploy(t, 3)
	for i := 0; i < 50; i++ {
		if err := f.Process(pkt(uint32(1000+i), false), func(v int) {
			if v != VerdictPass {
				t.Errorf("clean packet verdict %d", v)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if f.Passed != 50 || f.Dropped != 0 {
		t.Fatalf("passed=%d dropped=%d", f.Passed, f.Dropped)
	}
}

func TestBanAfterThreshold(t *testing.T) {
	eng, _, f := deploy(t, 3)
	const attacker = 0x0a0a0a0a
	var verdicts []int
	for i := 0; i < 5; i++ {
		_ = f.Process(pkt(attacker, true), func(v int) { verdicts = append(verdicts, v) })
		eng.Run()
	}
	// Failures 1,2 pass; failure 3 triggers the ban; 4,5 drop.
	want := []int{VerdictPass, VerdictPass, VerdictBanned, VerdictDrop, VerdictDrop}
	for i, w := range want {
		if verdicts[i] != w {
			t.Fatalf("verdicts = %v, want %v", verdicts, want)
		}
	}
	if !f.IsBanned(attacker) {
		t.Fatal("attacker not in ban map")
	}
	// Clean packets from the banned source also drop.
	var v int
	_ = f.Process(pkt(attacker, false), func(got int) { v = got })
	eng.Run()
	if v != VerdictDrop {
		t.Fatalf("clean packet from banned source verdict %d", v)
	}
}

func TestBanLogPersisted(t *testing.T) {
	eng, _, f := deploy(t, 2)
	attackers := []uint32{0x01010101, 0x02020202, 0x03030303}
	for _, a := range attackers {
		for i := 0; i < 2; i++ {
			_ = f.Process(pkt(a, true), func(int) {})
			eng.Run()
		}
	}
	var logged []uint32
	f.BannedSources(func(srcs []uint32, err error) {
		if err != nil {
			t.Error(err)
		}
		logged = srcs
	})
	eng.Run()
	if len(logged) != 3 {
		t.Fatalf("logged bans = %v", logged)
	}
	seen := map[uint32]bool{}
	for _, s := range logged {
		seen[s] = true
	}
	for _, a := range attackers {
		if !seen[a] {
			t.Fatalf("attacker %#x missing from persistent log", a)
		}
	}
}

func TestMixedTraceOnlyBansAttackers(t *testing.T) {
	eng, _, f := deploy(t, 5)
	g := trace.NewAttackGen(7, 4)
	attackerSet := map[uint32]bool{}
	for _, a := range g.Attackers() {
		attackerSet[a] = true
	}
	for i := 0; i < 3000; i++ {
		_ = f.Process(g.Next(), func(int) {})
		if i%100 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if f.Banned == 0 {
		t.Fatal("no attackers banned")
	}
	var logged []uint32
	f.BannedSources(func(srcs []uint32, err error) { logged = srcs })
	eng.Run()
	for _, s := range logged {
		if !attackerSet[s] {
			t.Fatalf("benign source %#x banned", s)
		}
	}
	if f.Passed == 0 {
		t.Fatal("all traffic dropped")
	}
}

func TestPipelineStats(t *testing.T) {
	_, _, f := deploy(t, 3)
	st := f.Pipeline().Stats
	if st.Instructions == 0 || st.Depth == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HelperCalls < 2 {
		t.Fatalf("helper calls = %d, want ≥2 (map ops)", st.HelperCalls)
	}
}

func BenchmarkProcess(b *testing.B) {
	eng, _, f := deploy(b, 3)
	g := trace.NewAttackGen(1, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Process(g.Next(), func(int) {})
		if i%256 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
