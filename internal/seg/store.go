package seg

import (
	"errors"
	"fmt"

	"hyperion/internal/nvme"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Location says where a segment's bytes live.
type Location uint8

const (
	// LocDRAM is on-card DRAM: fast, ephemeral.
	LocDRAM Location = iota
	// LocNVMe is flash: slower, durable, large.
	LocNVMe
)

func (l Location) String() string {
	if l == LocDRAM {
		return "dram"
	}
	return "nvme"
}

// Hint guides placement at allocation time (§2.1: "hints-based
// allocation should also be possible").
type Hint uint8

const (
	// HintAuto places by durability: durable → NVMe, ephemeral → DRAM
	// with NVMe spill.
	HintAuto Hint = iota
	// HintHot forces DRAM (performance-critical objects).
	HintHot
	// HintCold forces NVMe (capacity objects).
	HintCold
)

// Errors.
var (
	ErrExists    = errors.New("seg: object already exists")
	ErrNotFound  = errors.New("seg: object not found")
	ErrBounds    = errors.New("seg: access outside segment")
	ErrNoSpace   = errors.New("seg: out of space")
	ErrEphemeral = errors.New("seg: durable operation on DRAM segment")
	ErrBadTable  = errors.New("seg: corrupt segment table")
)

// Segment is one table entry.
type Segment struct {
	ID      ObjectID
	Size    int64
	Loc     Location
	Durable bool
	// Addr is the bus address: DRAM byte offset or NVMe byte offset
	// (device*devStride + lba*blockSize) depending on Loc.
	Addr int64
}

// Config shapes the store.
type Config struct {
	DRAMBytes       int64
	DRAMLatency     sim.Duration // fixed per-access latency
	DRAMBytesPerSec int64        // streaming bandwidth
	BlockSize       int          // NVMe block size
	// TableBlocks reserves this many blocks at LBA 0 of device 0 for
	// segment-table checkpoints.
	TableBlocks int64
	// CacheEntries sizes the segment-descriptor cache (the hardware
	// translation structure); 0 disables caching so every translation
	// pays a DRAM access.
	CacheEntries int
	// CheckpointEvery persists the table after this many mutations.
	CheckpointEvery int
	// ChecksumReads arms end-to-end integrity on the queued NVMe path:
	// the store records a per-block CRC on every device write and
	// verifies it on every device read, rereading up to crcMaxRereads
	// times on mismatch (transient corruption) before failing the read
	// with StatusChecksum. Off by default: the unarmed datapath is
	// byte-identical to a store built before this field existed.
	ChecksumReads bool
}

// DefaultConfig matches the Hyperion card: 32 GiB DRAM at ~100 ns /
// 38 GB/s, 4 KiB blocks, 1024 table blocks, 1024-entry descriptor cache.
func DefaultConfig() Config {
	return Config{
		DRAMBytes:       32 << 30,
		DRAMLatency:     100 * sim.Nanosecond,
		DRAMBytesPerSec: 38_000_000_000,
		BlockSize:       4096,
		TableBlocks:     1024,
		CacheEntries:    1024,
		CheckpointEvery: 256,
	}
}

// Store is the single-level object store.
type Store struct {
	eng  *sim.Engine
	cfg  Config
	devs []*nvme.Host

	table  map[ObjectID]*Segment
	dram   *dramBacking
	dramAl *allocator
	nvmeAl []*allocator // per device, in blocks
	cache  *lruCache
	dirty  int
	rrNext int
	crcs   map[int64]uint32 // per-block CRCs; nil unless ChecksumReads

	rec *telemetry.Recorder

	Counters sim.CounterSet
	// Lookups / CacheHits drive the E6 translation experiment.
	Lookups, CacheHits int64
}

// SetRecorder arms the telemetry plane: a latency sample per Lookup
// (0 on cache hits, one DRAM access on misses) plus hit/read/write
// counters. Disarmed (nil) the hooks are pure nil checks.
func (s *Store) SetRecorder(rec *telemetry.Recorder) { s.rec = rec }

// devStride separates per-device NVMe address spaces inside Segment.Addr.
const devStride = int64(1) << 44

// New creates a store over the given NVMe hosts. Device 0's first
// TableBlocks blocks are reserved for table checkpoints.
func New(eng *sim.Engine, cfg Config, devs []*nvme.Host) *Store {
	if len(devs) == 0 {
		panic("seg: need at least one NVMe device")
	}
	s := &Store{
		eng:    eng,
		cfg:    cfg,
		devs:   devs,
		table:  make(map[ObjectID]*Segment),
		dram:   newDRAMBacking(cfg.DRAMBytes),
		dramAl: newAllocator(cfg.DRAMBytes),
	}
	for i, d := range devs {
		blocks := d.DeviceBlocks()
		reserve := int64(0)
		if i == 0 {
			reserve = cfg.TableBlocks
		}
		al := newAllocator(blocks - reserve)
		al.base = reserve
		s.nvmeAl = append(s.nvmeAl, al)
	}
	if cfg.CacheEntries > 0 {
		s.cache = newLRU(cfg.CacheEntries)
	}
	if cfg.ChecksumReads {
		s.crcs = make(map[int64]uint32)
	}
	return s
}

// Alloc creates a new segment.
func (s *Store) Alloc(id ObjectID, size int64, durable bool, hint Hint) (*Segment, error) {
	if id.IsZero() {
		return nil, fmt.Errorf("seg: zero object id")
	}
	if size <= 0 {
		return nil, fmt.Errorf("seg: non-positive size %d", size)
	}
	if _, ok := s.table[id]; ok {
		return nil, fmt.Errorf("%w: %v", ErrExists, id)
	}
	loc := LocNVMe
	switch hint {
	case HintHot:
		loc = LocDRAM
	case HintCold:
		loc = LocNVMe
	case HintAuto:
		if durable {
			loc = LocNVMe
		} else {
			loc = LocDRAM
		}
	}
	if durable && loc == LocDRAM {
		return nil, fmt.Errorf("%w: durable segments must be on NVMe", ErrEphemeral)
	}
	sg := &Segment{ID: id, Size: size, Loc: loc, Durable: durable}
	var err error
	if loc == LocDRAM {
		sg.Addr, err = s.dramAl.alloc(size)
		if err != nil && hint == HintAuto {
			// Spill ephemeral segments to NVMe when DRAM is full.
			loc = LocNVMe
		} else if err != nil {
			return nil, err
		}
	}
	if loc == LocNVMe {
		sg.Loc = LocNVMe
		dev, lba, aerr := s.allocNVMe(size)
		if aerr != nil {
			return nil, aerr
		}
		sg.Addr = int64(dev)*devStride + lba*int64(s.cfg.BlockSize)
	}
	s.table[id] = sg
	s.mutated()
	s.Counters.Get("allocs").Add(1)
	return sg, nil
}

func (s *Store) allocNVMe(size int64) (int, int64, error) {
	blocks := (size + int64(s.cfg.BlockSize) - 1) / int64(s.cfg.BlockSize)
	// Round-robin across devices, skipping ones without room, so load
	// and capacity spread evenly over the four SSDs.
	for try := 0; try < len(s.nvmeAl); try++ {
		dev := (s.rrNext + try) % len(s.nvmeAl)
		if lba, err := s.nvmeAl[dev].alloc(blocks); err == nil {
			s.rrNext = (dev + 1) % len(s.nvmeAl)
			return dev, lba, nil
		}
	}
	return 0, 0, ErrNoSpace
}

// Free releases a segment.
func (s *Store) Free(id ObjectID) error {
	sg, ok := s.table[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if sg.Loc == LocDRAM {
		s.dramAl.release(sg.Addr, sg.Size)
	} else {
		dev, lba := s.split(sg.Addr)
		blocks := (sg.Size + int64(s.cfg.BlockSize) - 1) / int64(s.cfg.BlockSize)
		s.nvmeAl[dev].release(lba, blocks)
	}
	delete(s.table, id)
	if s.cache != nil {
		s.cache.remove(id)
	}
	s.mutated()
	return nil
}

func (s *Store) split(addr int64) (dev int, lba int64) {
	dev = int(addr / devStride)
	lba = (addr % devStride) / int64(s.cfg.BlockSize)
	return
}

// Lookup translates an object id to its segment entry, charging the
// translation cost: a cache hit is free (combinational), a miss costs
// one DRAM access to the in-memory table.
func (s *Store) Lookup(id ObjectID) (*Segment, sim.Duration, error) {
	s.Lookups++
	// The cache stores the descriptor pointer itself, so a hit resolves
	// in one map access; Free removes entries, and table pointers are
	// stable for an object's lifetime, so a cached pointer never dangles.
	if s.cache != nil {
		if sg, ok := s.cache.get(id); ok {
			s.CacheHits++
			if s.rec != nil {
				s.rec.Observe("seg", "lookup", 0)
				s.rec.Count("seg", "cache_hits", 1)
			}
			return sg, 0, nil
		}
	}
	// Every remaining path pays one DRAM access to walk the table.
	if s.rec != nil {
		s.rec.Observe("seg", "lookup", s.cfg.DRAMLatency)
	}
	sg, ok := s.table[id]
	if !ok {
		return nil, s.cfg.DRAMLatency, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if s.cache != nil {
		s.cache.put(id, sg)
	}
	return sg, s.cfg.DRAMLatency, nil
}

// Stat returns the segment entry without charging translation cost
// (control-plane use).
func (s *Store) Stat(id ObjectID) (*Segment, error) {
	sg, ok := s.table[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	return sg, nil
}

// Len returns the number of live segments.
func (s *Store) Len() int { return len(s.table) }

// Read copies length bytes at offset from the object, invoking cb with
// the data once the access completes (immediately + modeled latency for
// DRAM, after device I/O for NVMe).
func (s *Store) Read(id ObjectID, off, length int64, cb func(data []byte, err error)) {
	sg, tcost, err := s.Lookup(id)
	if err != nil {
		s.fail(cb, tcost, err)
		return
	}
	if off < 0 || length < 0 || off+length > sg.Size {
		s.fail(cb, tcost, fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+length, sg.Size))
		return
	}
	s.Counters.Get("reads").Add(1)
	if s.rec != nil {
		s.rec.Count("seg", "reads", 1)
	}
	if sg.Loc == LocDRAM {
		d := tcost + s.dramTime(length)
		addr := sg.Addr + off
		s.eng.After(d, "seg.read.dram", func() {
			out := make([]byte, length)
			s.dram.read(out, addr)
			cb(out, nil)
		})
		return
	}
	dev, lba := s.split(sg.Addr)
	bs := int64(s.cfg.BlockSize)
	first := lba + off/bs
	last := lba + (off+length+bs-1)/bs // exclusive
	if length == 0 {
		last = first + 1
	}
	skip := off % bs
	s.eng.After(tcost, "seg.read.xlate", func() {
		s.devRead(dev, first, int(last-first), func(data []byte, st uint16) {
			if st != nvme.StatusOK {
				cb(nil, fmt.Errorf("seg: nvme read status %#x", st))
				return
			}
			cb(data[skip:skip+length], nil)
		})
	})
}

// Write stores data at offset in the object. For NVMe segments,
// unaligned edges use read-modify-write. cb may be nil.
func (s *Store) Write(id ObjectID, off int64, data []byte, cb func(err error)) {
	sg, tcost, err := s.Lookup(id)
	if err != nil {
		s.failW(cb, tcost, err)
		return
	}
	length := int64(len(data))
	if off < 0 || off+length > sg.Size {
		s.failW(cb, tcost, fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+length, sg.Size))
		return
	}
	s.Counters.Get("writes").Add(1)
	if s.rec != nil {
		s.rec.Count("seg", "writes", 1)
	}
	if sg.Loc == LocDRAM {
		d := tcost + s.dramTime(length)
		addr := sg.Addr + off
		buf := append([]byte(nil), data...)
		s.eng.After(d, "seg.write.dram", func() {
			s.dram.write(addr, buf)
			if cb != nil {
				cb(nil)
			}
		})
		return
	}
	dev, lba := s.split(sg.Addr)
	bs := int64(s.cfg.BlockSize)
	first := lba + off/bs
	last := lba + (off+length+bs-1)/bs
	skip := off % bs
	nblocks := int(last - first)
	buf := append([]byte(nil), data...)
	s.eng.After(tcost, "seg.write.xlate", func() {
		if skip == 0 && length%bs == 0 {
			// Aligned: write directly.
			s.devWrite(dev, first, padToBlocks(buf, int(bs)), cb)
			return
		}
		// RMW: read covering blocks, merge, write back.
		s.devRead(dev, first, nblocks, func(old []byte, st uint16) {
			if st != nvme.StatusOK {
				if cb != nil {
					cb(fmt.Errorf("seg: rmw read status %#x", st))
				}
				return
			}
			merged := append([]byte(nil), old...)
			copy(merged[skip:], buf)
			s.devWrite(dev, first, merged, cb)
		})
	})
}

func padToBlocks(b []byte, bs int) []byte {
	if len(b)%bs == 0 {
		return b
	}
	out := make([]byte, (len(b)/bs+1)*bs)
	copy(out, b)
	return out
}

func (s *Store) devRead(dev int, lba int64, blocks int, cb func([]byte, uint16)) {
	if s.crcs != nil {
		s.devReadVerified(dev, lba, blocks, 0, cb)
		return
	}
	if err := s.devs[dev].Read(0, lba, blocks, cb); err != nil {
		cb(nil, 0xFFFF)
	}
}

func (s *Store) devWrite(dev int, lba int64, data []byte, cb func(error)) {
	if s.crcs != nil {
		s.recordCRCs(dev, lba, data)
	}
	err := s.devs[dev].Write(0, lba, data, func(st uint16) {
		if cb == nil {
			return
		}
		if st != nvme.StatusOK {
			cb(fmt.Errorf("seg: nvme write status %#x", st))
			return
		}
		cb(nil)
	})
	if err != nil && cb != nil {
		cb(err)
	}
}

func (s *Store) dramTime(length int64) sim.Duration {
	return s.cfg.DRAMLatency + sim.Duration(float64(length)/float64(s.cfg.DRAMBytesPerSec)*float64(sim.Second))
}

func (s *Store) fail(cb func([]byte, error), d sim.Duration, err error) {
	s.eng.After(d, "seg.err", func() { cb(nil, err) })
}

func (s *Store) failW(cb func(error), d sim.Duration, err error) {
	if cb == nil {
		return
	}
	s.eng.After(d, "seg.err", func() { cb(err) })
}

// Promote moves a segment to DRAM (hint escalation); Demote moves it to
// NVMe. Both copy the payload and update the table entry. Durable
// segments cannot be promoted away from NVMe.
func (s *Store) Promote(id ObjectID, cb func(error)) {
	sg, ok := s.table[id]
	if !ok {
		s.failW(cb, 0, ErrNotFound)
		return
	}
	if sg.Durable {
		s.failW(cb, 0, ErrEphemeral)
		return
	}
	if sg.Loc == LocDRAM {
		s.failW(cb, 0, nil)
		return
	}
	addr, err := s.dramAl.alloc(sg.Size)
	if err != nil {
		s.failW(cb, 0, err)
		return
	}
	s.Read(id, 0, sg.Size, func(data []byte, rerr error) {
		if rerr != nil {
			s.dramAl.release(addr, sg.Size)
			s.failW(cb, 0, rerr)
			return
		}
		dev, lba := s.split(sg.Addr)
		blocks := (sg.Size + int64(s.cfg.BlockSize) - 1) / int64(s.cfg.BlockSize)
		s.nvmeAl[dev].release(lba, blocks)
		s.dram.write(addr, data)
		sg.Loc = LocDRAM
		sg.Addr = addr
		s.mutated()
		s.Counters.Get("promotes").Add(1)
		if cb != nil {
			cb(nil)
		}
	})
}

// Demote moves an ephemeral DRAM segment to NVMe.
func (s *Store) Demote(id ObjectID, cb func(error)) {
	sg, ok := s.table[id]
	if !ok {
		s.failW(cb, 0, ErrNotFound)
		return
	}
	if sg.Loc == LocNVMe {
		s.failW(cb, 0, nil)
		return
	}
	dev, lba, err := s.allocNVMe(sg.Size)
	if err != nil {
		s.failW(cb, 0, err)
		return
	}
	data := make([]byte, sg.Size)
	s.dram.read(data, sg.Addr)
	oldAddr, oldSize := sg.Addr, sg.Size
	s.devWrite(dev, lba, padToBlocks(data, s.cfg.BlockSize), func(werr error) {
		if werr != nil {
			s.nvmeAl[dev].release(lba, (sg.Size+int64(s.cfg.BlockSize)-1)/int64(s.cfg.BlockSize))
			if cb != nil {
				cb(werr)
			}
			return
		}
		s.dramAl.release(oldAddr, oldSize)
		sg.Loc = LocNVMe
		sg.Addr = int64(dev)*devStride + lba*int64(s.cfg.BlockSize)
		s.mutated()
		s.Counters.Get("demotes").Add(1)
		if cb != nil {
			cb(nil)
		}
	})
}

func (s *Store) mutated() {
	s.dirty++
	if s.cfg.CheckpointEvery > 0 && s.dirty >= s.cfg.CheckpointEvery {
		s.Checkpoint(nil)
	}
}
