package ebpf

// µops: the compiled backend's internal encoding for error-free
// register-only instructions (ALU, endian, LDDW). A run of µops executes
// inside a single switch loop with no per-instruction closure dispatch;
// the same executor doubles as the compile-time constant evaluator, so
// folded results cannot diverge from runtime results.
//
// Encoding notes (all resolved at lowering time):
//   - immediates are sign-extended (64-bit forms) or truncated (32-bit
//     forms) into iv;
//   - shift-by-immediate amounts are pre-masked (&63 / &31);
//   - div/mod by a constant zero folds to the ISA-defined result
//     (div→0, mod→dst) before emission;
//   - le16 lowers to kAndI 0xffff, le32 to kTrunc32, le64 to nothing.

type uop struct {
	k    uint8
	d, s uint8
	iv   uint64
}

// µop kinds. Grouped so operand-read predicates are range checks:
// everything except kMovI reads d, everything from kMovR on reads s
// (kMovR/kMov32R read only s).
const (
	kMovI uint8 = iota // r[d] = iv

	// 64-bit, immediate operand; read and write d.
	kAddI
	kSubI
	kMulI
	kDivI // iv != 0 (zero folded at lowering)
	kModI // iv != 0
	kOrI
	kAndI
	kXorI
	kLshI // iv pre-masked &63
	kRshI
	kArshI
	kNeg64

	// 32-bit, immediate operand; read and write d.
	kAdd32I
	kSub32I
	kMul32I
	kDiv32I // iv != 0
	kMod32I // iv != 0
	kOr32I
	kAnd32I
	kXor32I
	kLsh32I // iv pre-masked &31
	kRsh32I
	kArsh32I
	kNeg32
	kTrunc32 // r[d] = uint64(uint32(r[d]))

	// Endianness conversions; read and write d.
	kBe16
	kBe32
	kBe64

	// Register-operand forms; read s (kMovR/kMov32R do not read d).
	kMovR
	kMov32R

	// 64-bit, register operand; read d and s.
	kAddR
	kSubR
	kMulR
	kDivR
	kModR
	kOrR
	kAndR
	kXorR
	kLshR
	kRshR
	kArshR

	// 32-bit, register operand; read d and s.
	kAdd32R
	kSub32R
	kMul32R
	kDiv32R
	kMod32R
	kOr32R
	kAnd32R
	kXor32R
	kLsh32R
	kRsh32R
	kArsh32R
)

func uopReadsD(k uint8) bool { return k != kMovI && k != kMovR && k != kMov32R }
func uopReadsS(k uint8) bool { return k >= kMovR }

// runUops executes a µop run against the register file. It is both the
// runtime executor and the compile-time constant evaluator.
func runUops(r *regFile, ops []uop) {
	for i := range ops {
		op := &ops[i]
		switch op.k {
		case kMovI:
			r[op.d&15] = op.iv
		case kAddI:
			r[op.d&15] += op.iv
		case kSubI:
			r[op.d&15] -= op.iv
		case kMulI:
			r[op.d&15] *= op.iv
		case kDivI:
			r[op.d&15] /= op.iv
		case kModI:
			r[op.d&15] %= op.iv
		case kOrI:
			r[op.d&15] |= op.iv
		case kAndI:
			r[op.d&15] &= op.iv
		case kXorI:
			r[op.d&15] ^= op.iv
		case kLshI:
			r[op.d&15] <<= op.iv
		case kRshI:
			r[op.d&15] >>= op.iv
		case kArshI:
			r[op.d&15] = uint64(int64(r[op.d&15]) >> op.iv)
		case kNeg64:
			r[op.d&15] = -r[op.d&15]

		case kAdd32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) + uint32(op.iv))
		case kSub32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) - uint32(op.iv))
		case kMul32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) * uint32(op.iv))
		case kDiv32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) / uint32(op.iv))
		case kMod32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) % uint32(op.iv))
		case kOr32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) | uint32(op.iv))
		case kAnd32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) & uint32(op.iv))
		case kXor32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) ^ uint32(op.iv))
		case kLsh32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) << uint32(op.iv))
		case kRsh32I:
			r[op.d&15] = uint64(uint32(r[op.d&15]) >> uint32(op.iv))
		case kArsh32I:
			r[op.d&15] = uint64(uint32(int32(uint32(r[op.d&15])) >> uint32(op.iv)))
		case kNeg32:
			r[op.d&15] = uint64(-uint32(r[op.d&15]))
		case kTrunc32:
			r[op.d&15] = uint64(uint32(r[op.d&15]))

		case kBe16:
			v := r[op.d&15] & 0xffff
			r[op.d&15] = v>>8 | (v&0xff)<<8
		case kBe32:
			r[op.d&15] = uint64(byteSwap32(uint32(r[op.d&15])))
		case kBe64:
			r[op.d&15] = byteSwap64(r[op.d&15])

		case kMovR:
			r[op.d&15] = r[op.s&15]
		case kMov32R:
			r[op.d&15] = uint64(uint32(r[op.s&15]))

		case kAddR:
			r[op.d&15] += r[op.s&15]
		case kSubR:
			r[op.d&15] -= r[op.s&15]
		case kMulR:
			r[op.d&15] *= r[op.s&15]
		case kDivR:
			if sv := r[op.s&15]; sv == 0 {
				r[op.d&15] = 0
			} else {
				r[op.d&15] /= sv
			}
		case kModR:
			if sv := r[op.s&15]; sv != 0 {
				r[op.d&15] %= sv
			}
		case kOrR:
			r[op.d&15] |= r[op.s&15]
		case kAndR:
			r[op.d&15] &= r[op.s&15]
		case kXorR:
			r[op.d&15] ^= r[op.s&15]
		case kLshR:
			r[op.d&15] <<= r[op.s&15] & 63
		case kRshR:
			r[op.d&15] >>= r[op.s&15] & 63
		case kArshR:
			r[op.d&15] = uint64(int64(r[op.d&15]) >> (r[op.s&15] & 63))

		case kAdd32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) + uint32(r[op.s&15]))
		case kSub32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) - uint32(r[op.s&15]))
		case kMul32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) * uint32(r[op.s&15]))
		case kDiv32R:
			if sv := uint32(r[op.s&15]); sv == 0 {
				r[op.d&15] = 0
			} else {
				r[op.d&15] = uint64(uint32(r[op.d&15]) / sv)
			}
		case kMod32R:
			if sv := uint32(r[op.s&15]); sv == 0 {
				r[op.d&15] = uint64(uint32(r[op.d&15]))
			} else {
				r[op.d&15] = uint64(uint32(r[op.d&15]) % sv)
			}
		case kOr32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) | uint32(r[op.s&15]))
		case kAnd32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) & uint32(r[op.s&15]))
		case kXor32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) ^ uint32(r[op.s&15]))
		case kLsh32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) << (uint32(r[op.s&15]) & 31))
		case kRsh32R:
			r[op.d&15] = uint64(uint32(r[op.d&15]) >> (uint32(r[op.s&15]) & 31))
		case kArsh32R:
			r[op.d&15] = uint64(uint32(int32(uint32(r[op.d&15])) >> (uint32(r[op.s&15]) & 31)))
		}
	}
}

// lowerRegIns lowers one error-free register-only instruction into a
// µop. emit=false means the instruction is an architectural no-op (le64,
// 64-bit mod by constant zero); ok=false means the instruction is not a
// register op — it touches memory, calls, jumps, or faults when reached.
func lowerRegIns(ins Instruction) (op uop, emit, ok bool) {
	if ins.IsLDDW() {
		return uop{k: kMovI, d: ins.Dst, iv: uint64(ins.Imm64)}, true, true
	}
	cls := ins.Class()
	if cls != ClassALU && cls != ClassALU64 {
		return uop{}, false, false
	}
	d := ins.Dst
	if ins.IsEndian() {
		big := ins.Op&SrcReg != 0
		switch ins.Imm {
		case 16:
			if big {
				return uop{k: kBe16, d: d}, true, true
			}
			return uop{k: kAndI, d: d, iv: 0xffff}, true, true
		case 32:
			if big {
				return uop{k: kBe32, d: d}, true, true
			}
			return uop{k: kTrunc32, d: d}, true, true
		case 64:
			if big {
				return uop{k: kBe64, d: d}, true, true
			}
			return uop{}, false, true // le64 is a no-op
		default:
			return uop{}, false, false // faults at runtime
		}
	}
	is32 := cls == ClassALU
	aop := ins.Op & 0xf0
	if ins.Op&SrcReg != 0 {
		s := ins.Src
		var k uint8
		if is32 {
			switch aop {
			case ALUAdd:
				k = kAdd32R
			case ALUSub:
				k = kSub32R
			case ALUMul:
				k = kMul32R
			case ALUDiv:
				k = kDiv32R
			case ALUMod:
				k = kMod32R
			case ALUOr:
				k = kOr32R
			case ALUAnd:
				k = kAnd32R
			case ALUXor:
				k = kXor32R
			case ALULsh:
				k = kLsh32R
			case ALURsh:
				k = kRsh32R
			case ALUArsh:
				k = kArsh32R
			case ALUNeg:
				return uop{k: kNeg32, d: d}, true, true
			case ALUMov:
				k = kMov32R
			default:
				return uop{}, false, false
			}
		} else {
			switch aop {
			case ALUAdd:
				k = kAddR
			case ALUSub:
				k = kSubR
			case ALUMul:
				k = kMulR
			case ALUDiv:
				k = kDivR
			case ALUMod:
				k = kModR
			case ALUOr:
				k = kOrR
			case ALUAnd:
				k = kAndR
			case ALUXor:
				k = kXorR
			case ALULsh:
				k = kLshR
			case ALURsh:
				k = kRshR
			case ALUArsh:
				k = kArshR
			case ALUNeg:
				return uop{k: kNeg64, d: d}, true, true
			case ALUMov:
				k = kMovR
			default:
				return uop{}, false, false
			}
		}
		return uop{k: k, d: d, s: s}, true, true
	}
	if is32 {
		iv := uint64(uint32(ins.Imm))
		switch aop {
		case ALUAdd:
			return uop{k: kAdd32I, d: d, iv: iv}, true, true
		case ALUSub:
			return uop{k: kSub32I, d: d, iv: iv}, true, true
		case ALUMul:
			return uop{k: kMul32I, d: d, iv: iv}, true, true
		case ALUDiv:
			if iv == 0 {
				return uop{k: kMovI, d: d}, true, true
			}
			return uop{k: kDiv32I, d: d, iv: iv}, true, true
		case ALUMod:
			if iv == 0 {
				return uop{k: kTrunc32, d: d}, true, true
			}
			return uop{k: kMod32I, d: d, iv: iv}, true, true
		case ALUOr:
			return uop{k: kOr32I, d: d, iv: iv}, true, true
		case ALUAnd:
			return uop{k: kAnd32I, d: d, iv: iv}, true, true
		case ALUXor:
			return uop{k: kXor32I, d: d, iv: iv}, true, true
		case ALULsh:
			return uop{k: kLsh32I, d: d, iv: iv & 31}, true, true
		case ALURsh:
			return uop{k: kRsh32I, d: d, iv: iv & 31}, true, true
		case ALUArsh:
			return uop{k: kArsh32I, d: d, iv: iv & 31}, true, true
		case ALUNeg:
			return uop{k: kNeg32, d: d}, true, true
		case ALUMov:
			return uop{k: kMovI, d: d, iv: iv}, true, true
		}
		return uop{}, false, false
	}
	iv := uint64(int64(ins.Imm))
	switch aop {
	case ALUAdd:
		return uop{k: kAddI, d: d, iv: iv}, true, true
	case ALUSub:
		return uop{k: kSubI, d: d, iv: iv}, true, true
	case ALUMul:
		return uop{k: kMulI, d: d, iv: iv}, true, true
	case ALUDiv:
		if iv == 0 {
			return uop{k: kMovI, d: d}, true, true
		}
		return uop{k: kDivI, d: d, iv: iv}, true, true
	case ALUMod:
		if iv == 0 {
			return uop{}, false, true // mod by zero keeps dst
		}
		return uop{k: kModI, d: d, iv: iv}, true, true
	case ALUOr:
		return uop{k: kOrI, d: d, iv: iv}, true, true
	case ALUAnd:
		return uop{k: kAndI, d: d, iv: iv}, true, true
	case ALUXor:
		return uop{k: kXorI, d: d, iv: iv}, true, true
	case ALULsh:
		return uop{k: kLshI, d: d, iv: iv & 63}, true, true
	case ALURsh:
		return uop{k: kRshI, d: d, iv: iv & 63}, true, true
	case ALUArsh:
		return uop{k: kArshI, d: d, iv: iv & 63}, true, true
	case ALUNeg:
		return uop{k: kNeg64, d: d}, true, true
	case ALUMov:
		return uop{k: kMovI, d: d, iv: iv}, true, true
	}
	return uop{}, false, false
}
