module hyperion

go 1.22
