package transport

import (
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// reliableParams differentiate the TCP-like software transport from the
// RDMA-like hardware transport: window size, retransmission timeout, and
// per-message/per-frame processing overheads.
type reliableParams struct {
	Window       int
	RTO          sim.Duration
	SendOverhead sim.Duration // per message, sender side
	RecvOverhead sim.Duration // per message, receiver side
	PerFrameCPU  sim.Duration // serialized per-frame software cost
}

// reliableEndpoint implements go-back-N reliable delivery with per-peer
// connections and cumulative acks.
type reliableEndpoint struct {
	eng   *sim.Engine
	nic   *netsim.NIC
	kind  Kind
	p     reliableParams
	stats Stats

	handler func(src netsim.Addr, msg Message)
	conns   map[netsim.Addr]*sendConn
	peers   map[netsim.Addr]*recvConn
	cpuBusy sim.Time
	nextID  uint64

	hdrs      *wire.Pool
	reasmFree []*reasm

	sendQ     fifo[relSend]
	txQ       fifo[relTx]
	deliverQ  fifo[delivery]
	sendFn    func()
	txFn      func()
	deliverFn func()
}

type relSend struct {
	c     *sendConn
	id    uint64
	total int
	msg   Message
}

type relTx struct {
	dst     netsim.Addr
	buf     *wire.Buf // retained for this transmission
	wire    int
	payload any
	span    telemetry.RequestID
}

// outFrag is one unacked fragment buffered for retransmission: the
// connection holds its own reference on the wire header until the
// cumulative ack passes it.
type outFrag struct {
	buf     *wire.Buf
	payload any
	span    telemetry.RequestID
	wire    int
}

type sendConn struct {
	r        *reliableEndpoint
	dst      netsim.Addr
	base     uint64 // lowest unacked seq
	nextSeq  uint64 // next seq to assign
	sent     uint64 // next seq to transmit (may trail nextSeq under window limit)
	buf      map[uint64]outFrag
	rtoTimer sim.EventRef
	backoff  int
	rtoFn    func() // prebound fireRTO, one per connection
}

type recvConn struct {
	expected uint64
	partial  map[uint64]*reasm
}

func newReliable(eng *sim.Engine, nic *netsim.NIC, kind Kind, p reliableParams) *reliableEndpoint {
	r := &reliableEndpoint{
		eng:   eng,
		nic:   nic,
		kind:  kind,
		p:     p,
		conns: make(map[netsim.Addr]*sendConn),
		peers: make(map[netsim.Addr]*recvConn),
		hdrs:  wire.NewPool(dataHdrLen),
	}
	r.sendFn = r.fireSend
	r.txFn = r.fireTx
	r.deliverFn = r.fireDeliver
	nic.OnReceive(r.onFrame)
	return r
}

func (r *reliableEndpoint) Addr() netsim.Addr { return r.nic.Addr }
func (r *reliableEndpoint) Kind() Kind        { return r.kind }
func (r *reliableEndpoint) Stats() *Stats     { return &r.stats }

func (r *reliableEndpoint) OnMessage(fn func(src netsim.Addr, msg Message)) { r.handler = fn }

func (r *reliableEndpoint) conn(dst netsim.Addr) *sendConn {
	c, ok := r.conns[dst]
	if !ok {
		c = &sendConn{r: r, dst: dst, buf: make(map[uint64]outFrag)}
		c.rtoFn = c.fireRTO
		r.conns[dst] = c
	}
	return c
}

func (r *reliableEndpoint) getReasm(total, bytes int, span telemetry.RequestID) *reasm {
	if n := len(r.reasmFree); n > 0 {
		rm := r.reasmFree[n-1]
		r.reasmFree = r.reasmFree[:n-1]
		*rm = reasm{total: total, bytes: bytes, span: span}
		return rm
	}
	return &reasm{total: total, bytes: bytes, span: span}
}

func (r *reliableEndpoint) putReasm(rm *reasm) {
	rm.payload = nil
	r.reasmFree = append(r.reasmFree, rm)
}

func (r *reliableEndpoint) Send(dst netsim.Addr, msg Message) error {
	if msg.Bytes > MaxMessageBytes {
		return ErrTooLarge
	}
	r.nextID++
	c := r.conn(dst)
	r.stats.Sent++
	r.sendQ.push(relSend{c: c, id: r.nextID, total: fragsFor(msg.Bytes), msg: msg})
	r.eng.After(r.p.SendOverhead, "rel.send", r.sendFn)
	return nil
}

func (r *reliableEndpoint) fireSend() {
	s := r.sendQ.pop()
	c := s.c
	for i := 0; i < s.total; i++ {
		frag := dataFrag{MsgID: s.id, Index: i, Total: s.total, Bytes: s.msg.Bytes, Seq: c.nextSeq}
		of := outFrag{buf: encodeData(r.hdrs, frag), span: s.msg.Span, wire: fragWire(s.msg.Bytes, i)}
		if i == s.total-1 {
			of.payload = s.msg.Payload
		}
		c.buf[c.nextSeq] = of
		c.nextSeq++
	}
	r.pump(c)
}

// cpuDelay serializes per-frame software cost on the endpoint's one
// logical core; it returns the extra delay before the frame may be
// handed to the NIC.
func (r *reliableEndpoint) cpuDelay() sim.Duration {
	if r.p.PerFrameCPU == 0 {
		return 0
	}
	now := r.eng.Now()
	start := r.cpuBusy
	if start < now {
		start = now
	}
	r.cpuBusy = start.Add(r.p.PerFrameCPU)
	return r.cpuBusy.Sub(now)
}

// pump transmits frames permitted by the window.
func (r *reliableEndpoint) pump(c *sendConn) {
	for c.sent < c.nextSeq && c.sent < c.base+uint64(r.p.Window) {
		of, ok := c.buf[c.sent]
		if !ok {
			c.sent++
			continue
		}
		r.transmit(c, of)
		c.sent++
	}
	if !c.rtoTimer.Valid() && c.base < c.nextSeq {
		r.armRTO(c)
	}
}

func (r *reliableEndpoint) transmit(c *sendConn, of outFrag) {
	d := r.cpuDelay()
	// The connection keeps its buffered reference for retransmission;
	// each transmission hands the network its own.
	tx := relTx{dst: c.dst, buf: of.buf.Retain(), wire: of.wire, payload: of.payload, span: of.span} //wire:sends the NIC via sendTx — same engine, netsim releases on delivery or drop
	if d > 0 {
		// cpuBusy only moves forward, so queued transmissions fire in
		// push order.
		r.txQ.push(tx)
		r.eng.After(d, "rel.tx", r.txFn)
	} else {
		r.sendTx(tx)
	}
}

func (r *reliableEndpoint) fireTx() { r.sendTx(r.txQ.pop()) }

func (r *reliableEndpoint) sendTx(tx relTx) {
	err := r.nic.Send(netsim.Frame{Dst: tx.dst, Payload: tx.payload, Buf: tx.buf, Bytes: tx.wire, Span: tx.span})
	if err != nil {
		tx.buf.Release() // the frame never left; take the reference back
	}
	r.stats.DataFrames++
}

func (r *reliableEndpoint) armRTO(c *sendConn) {
	rto := r.p.RTO << uint(c.backoff)
	c.rtoTimer = r.eng.After(rto, "rel.rto", c.rtoFn)
}

func (c *sendConn) fireRTO() {
	r := c.r
	c.rtoTimer = sim.NoEvent
	if c.base >= c.nextSeq {
		return
	}
	// Go-back-N: retransmit the whole window from base.
	if c.backoff < 6 {
		c.backoff++
	}
	end := c.base + uint64(r.p.Window)
	if end > c.nextSeq {
		end = c.nextSeq
	}
	for s := c.base; s < end; s++ {
		if of, ok := c.buf[s]; ok {
			r.transmit(c, of)
			r.stats.Retransmits++
		}
	}
	c.sent = end
	r.armRTO(c)
}

func (r *reliableEndpoint) onFrame(f netsim.Frame) {
	switch frameKind(f) {
	case frameCtrl:
		m := decodeCtrl(f.Buf.Bytes(), nil)
		if m.Op == ackOp {
			r.onAck(f.Src, m.Seq)
		}
	case frameData:
		r.onData(f.Src, decodeData(f))
	}
}

func (r *reliableEndpoint) onAck(src netsim.Addr, cum uint64) {
	c, ok := r.conns[src]
	if !ok {
		return
	}
	if cum <= c.base {
		return
	}
	for s := c.base; s < cum; s++ {
		if of, ok := c.buf[s]; ok {
			of.buf.Release()
			delete(c.buf, s)
		}
	}
	c.base = cum
	c.backoff = 0
	r.eng.Cancel(c.rtoTimer) // no-op on the zero ref or a fired timer
	c.rtoTimer = sim.NoEvent
	r.pump(c)
}

func (r *reliableEndpoint) peer(src netsim.Addr) *recvConn {
	p, ok := r.peers[src]
	if !ok {
		p = &recvConn{partial: make(map[uint64]*reasm)}
		r.peers[src] = p
	}
	return p
}

func (r *reliableEndpoint) onData(src netsim.Addr, frag dataFrag) {
	p := r.peer(src)
	if frag.Seq == p.expected {
		p.expected++
		r.accept(src, p, frag)
	}
	// Ack cumulatively whether in order or not (duplicate acks trigger
	// nothing special in go-back-N; the sender relies on RTO).
	r.sendCtrl(src, ctrlMsg{Op: ackOp, Seq: p.expected})
}

func (r *reliableEndpoint) accept(src netsim.Addr, p *recvConn, frag dataFrag) {
	rm, ok := p.partial[frag.MsgID]
	if !ok {
		rm = r.getReasm(frag.Total, frag.Bytes, frag.Span)
		p.partial[frag.MsgID] = rm
	}
	rm.have++
	if frag.Payload != nil {
		rm.payload = frag.Payload
	}
	if rm.have == rm.total {
		delete(p.partial, frag.MsgID)
		r.stats.Delivered++
		r.deliverQ.push(delivery{src: src, msg: Message{Payload: rm.payload, Bytes: rm.bytes, Span: rm.span}})
		r.putReasm(rm)
		r.eng.After(r.p.RecvOverhead, "rel.deliver", r.deliverFn)
	}
}

func (r *reliableEndpoint) fireDeliver() {
	d := r.deliverQ.pop()
	if r.handler != nil {
		r.handler(d.src, d.msg)
	}
}

func (r *reliableEndpoint) sendCtrl(dst netsim.Addr, m ctrlMsg) {
	hdr := encodeCtrl(r.hdrs, m)
	if err := r.nic.Send(netsim.Frame{Dst: dst, Buf: hdr, Bytes: headerBytes}); err != nil {
		hdr.Release()
	}
	r.stats.CtrlFrames++
}
