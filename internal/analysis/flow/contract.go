package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Contract is one function's ownership summary, declared in its doc
// comment. The grammar, one directive per line:
//
//	//wire:owns
//	//wire:takes <param>
//	//wire:borrows <param>
//	//wire:sends <param>[.<Field>]
//
// owns: the function's *wire.Buf result is a reference the caller owns
// (and, checked on the declaring side, every return must hand back a
// live reference). takes: the function assumes ownership of the named
// parameter — the caller's obligation is discharged unconditionally.
// borrows: the function uses the parameter for the duration of the call
// only; callers keep their obligation and the body must not Release it.
// sends: conditional transfer — ownership of the parameter (or the
// named field of a struct parameter) moves to the callee unless the
// call returns a non-nil error, in which case the caller still owns it.
// This is the NIC.Send custody rule from the zero-copy plane.
type Contract struct {
	Owns    bool
	Takes   []string
	Borrows []string
	Sends   []SendRef
}

// SendRef names a conditionally-transferred parameter; Field is empty
// when the parameter itself is the buffer.
type SendRef struct {
	Param string
	Field string
}

func (c Contract) empty() bool {
	return !c.Owns && len(c.Takes) == 0 && len(c.Borrows) == 0 && len(c.Sends) == 0
}

// ParseError is a malformed //wire: directive; checks surface these as
// findings so contract typos don't silently disable enforcement.
type ParseError struct {
	Pos token.Pos
	Msg string
}

// parseDoc extracts directives from one doc comment.
func parseDoc(doc *ast.CommentGroup) (Contract, []ParseError) {
	var c Contract
	var errs []ParseError
	if doc == nil {
		return c, nil
	}
	for _, line := range doc.List {
		text, ok := strings.CutPrefix(line.Text, "//wire:")
		if !ok {
			continue
		}
		verb, arg, _ := strings.Cut(text, " ")
		arg = strings.TrimSpace(arg)
		switch verb {
		case "owns":
			if arg != "" {
				errs = append(errs, ParseError{line.Pos(), "wire:owns takes no argument"})
				continue
			}
			c.Owns = true
		case "takes", "borrows":
			if arg == "" || strings.ContainsAny(arg, ". ") {
				errs = append(errs, ParseError{line.Pos(), "wire:" + verb + " wants a parameter name"})
				continue
			}
			if verb == "takes" {
				c.Takes = append(c.Takes, arg)
			} else {
				c.Borrows = append(c.Borrows, arg)
			}
		case "sends":
			param, field, _ := strings.Cut(arg, ".")
			if param == "" || strings.Contains(field, ".") {
				errs = append(errs, ParseError{line.Pos(), "wire:sends wants <param> or <param>.<Field>"})
				continue
			}
			c.Sends = append(c.Sends, SendRef{Param: param, Field: field})
		default:
			errs = append(errs, ParseError{line.Pos(), fmt.Sprintf("unknown wire: directive %q", verb)})
		}
	}
	return c, errs
}

// FuncKey names a function for the builtin contract table:
// pkgpath.Name for package functions, pkgpath.Recv.Name for methods
// (pointer receivers stripped).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// builtins summarizes the cross-package custody surface of the
// zero-copy plane. A vet unit analyzes one package with only export
// data for its dependencies — no doc comments — so the contracts that
// cross package boundaries are pinned here. TestBuiltinContractsInSync
// asserts that every entry matches a //wire: directive on the actual
// declaration, so the table cannot drift from the source.
var builtins = map[string]Contract{
	"hyperion/internal/wire.Pool.Get":          {Owns: true},
	"hyperion/internal/wire.Buf.Retain":        {Owns: true},
	"hyperion/internal/netsim.NIC.Send":        {Sends: []SendRef{{Param: "f", Field: "Buf"}}},
	"hyperion/internal/nvmeof.EncodeReadArgs":  {Owns: true},
	"hyperion/internal/nvmeof.EncodeWriteArgs": {Owns: true},
}

// Builtins exposes a copy of the cross-package table for the sync test.
func Builtins() map[string]Contract {
	out := make(map[string]Contract, len(builtins))
	for k, v := range builtins {
		out[k] = v
	}
	return out
}

// Contracts resolves ownership summaries for callees: declarations in
// the analyzed package carry their parsed doc directives; everything
// else falls back to the builtin cross-package table.
type Contracts struct {
	local map[*types.Func]Contract
	// Errs are malformed directives found while collecting; the caller
	// reports them once per package.
	Errs []ParseError
}

// Collect parses //wire: directives from every function declaration in
// files.
func Collect(files []*ast.File, info *types.Info) *Contracts {
	cs := &Contracts{local: make(map[*types.Func]Contract)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			c, errs := parseDoc(fd.Doc)
			cs.Errs = append(cs.Errs, errs...)
			if c.empty() {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				cs.local[fn] = c
			}
		}
	}
	return cs
}

// For returns fn's contract: local declaration first, builtin table
// second.
func (cs *Contracts) For(fn *types.Func) (Contract, bool) {
	if fn == nil {
		return Contract{}, false
	}
	if c, ok := cs.local[fn]; ok {
		return c, true
	}
	c, ok := builtins[FuncKey(fn)]
	return c, ok
}

// Local returns the parsed contract on a declaration in the analyzed
// package, for declaration-side checking.
func (cs *Contracts) Local(fn *types.Func) (Contract, bool) {
	c, ok := cs.local[fn]
	return c, ok
}
