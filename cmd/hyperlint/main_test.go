package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// hyperlintBin is the binary under test, built once in TestMain. The
// standalone mode's exit codes (0 clean, 1 findings, 2 usage/load
// errors) are CI's interface to the tool, so they are tested through
// the executable.
var hyperlintBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hyperlint-test")
	if err != nil {
		panic(err)
	}
	hyperlintBin = filepath.Join(dir, "hyperlint")
	out, err := exec.Command("go", "build", "-o", hyperlintBin, ".").CombinedOutput()
	if err != nil {
		panic("building hyperlint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(hyperlintBin, args...)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = filepath.Dir(filepath.Dir(wd)) // cmd/hyperlint -> repo root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running hyperlint %v: %v", args, err)
	return "", -1
}

func TestStandaloneExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("standalone mode type-checks packages")
	}
	for _, tc := range []struct {
		name     string
		args     []string
		wantExit int
		wantOut  string
	}{
		// The fault plane is a model-layer package and must stay clean —
		// this is the same gate CI's vet run applies.
		{"clean model package", []string{"./internal/fault"}, 0, ""},
		// The committed fixture holds a known violation (testdata is
		// outside ./... so only this test ever loads it); standalone
		// mode must find it and exit 1.
		{"findings fail", []string{"./cmd/hyperlint/testdata/bad"}, 1, "[nodeterm]"},
		{"checks filter passes clean", []string{"-checks", "maprange", "./cmd/hyperlint/testdata/bad"}, 0, ""},
		{"list analyzers", []string{"-list"}, 0, "nodeterm"},
		{"list includes flow checks", []string{"-list"}, 0, "bufown"},
		{"unknown analyzer", []string{"-checks", "nosuchcheck", "./internal/fault"}, 2, "nosuchcheck"},
		{"json clean is empty array", []string{"-json", "./internal/fault"}, 0, "[]"},
		{"json findings still exit 1", []string{"-json", "./cmd/hyperlint/testdata/bad"}, 1, `"check": "nodeterm"`},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, exit := run(t, tc.args...)
			if exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d; output:\n%s", exit, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantOut) {
				t.Fatalf("output missing %q:\n%s", tc.wantOut, out)
			}
		})
	}
}

// TestJSONOutputDecodes locks the -json record shape: CI annotation
// tooling depends on the file/line/col/check/message field names.
func TestJSONOutputDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("standalone mode type-checks packages")
	}
	out, exit := run(t, "-json", "./cmd/hyperlint/testdata/bad")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", exit, out)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded from known-bad fixture")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Check == "" || f.Message == "" {
			t.Fatalf("incomplete finding record: %+v", f)
		}
	}
}
