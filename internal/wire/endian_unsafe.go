//go:build !wiresafe

package wire

import "unsafe"

// Fixed-array endian field types, after the m-lab/etl bigendian idiom:
// decode is a single aligned-enough load plus (for BE) a register byte
// swap, with no bounds checks beyond the array conversion at the call
// site. The unsafe reinterpretation is only correct on little-endian
// hosts; init below makes a big-endian host fail loudly at startup
// instead of silently decoding swapped values. Build with
// -tags wiresafe for the portable path.

// BE16 is a big-endian uint16 field.
type BE16 [2]byte

// Uint16 decodes the field.
func (b BE16) Uint16() uint16 {
	swap := [2]byte{b[1], b[0]}
	return *(*uint16)(unsafe.Pointer(&swap))
}

// PutBE16 encodes v.
func PutBE16(v uint16) BE16 {
	b := *(*[2]byte)(unsafe.Pointer(&v))
	return BE16{b[1], b[0]}
}

// BE32 is a big-endian uint32 field.
type BE32 [4]byte

// Uint32 decodes the field.
func (b BE32) Uint32() uint32 {
	swap := [4]byte{b[3], b[2], b[1], b[0]}
	return *(*uint32)(unsafe.Pointer(&swap))
}

// PutBE32 encodes v.
func PutBE32(v uint32) BE32 {
	b := *(*[4]byte)(unsafe.Pointer(&v))
	return BE32{b[3], b[2], b[1], b[0]}
}

// BE64 is a big-endian uint64 field.
type BE64 [8]byte

// Uint64 decodes the field.
func (b BE64) Uint64() uint64 {
	swap := [8]byte{b[7], b[6], b[5], b[4], b[3], b[2], b[1], b[0]}
	return *(*uint64)(unsafe.Pointer(&swap))
}

// PutBE64 encodes v.
func PutBE64(v uint64) BE64 {
	b := *(*[8]byte)(unsafe.Pointer(&v))
	return BE64{b[7], b[6], b[5], b[4], b[3], b[2], b[1], b[0]}
}

// LE16 is a little-endian uint16 field.
type LE16 [2]byte

// Uint16 decodes the field.
func (b LE16) Uint16() uint16 { return *(*uint16)(unsafe.Pointer(&b)) }

// PutLE16 encodes v.
func PutLE16(v uint16) LE16 { return *(*LE16)(unsafe.Pointer(&v)) }

// LE32 is a little-endian uint32 field.
type LE32 [4]byte

// Uint32 decodes the field.
func (b LE32) Uint32() uint32 { return *(*uint32)(unsafe.Pointer(&b)) }

// PutLE32 encodes v.
func PutLE32(v uint32) LE32 { return *(*LE32)(unsafe.Pointer(&v)) }

// LE64 is a little-endian uint64 field.
type LE64 [8]byte

// Uint64 decodes the field.
func (b LE64) Uint64() uint64 { return *(*uint64)(unsafe.Pointer(&b)) }

// PutLE64 encodes v.
func PutLE64(v uint64) LE64 { return *(*LE64)(unsafe.Pointer(&v)) }

// hostLittleEndian reports the byte order of the running host.
func hostLittleEndian() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}

// mustLittleEndian panics unless le: the unsafe decode path above
// reinterprets memory assuming a little-endian host, and running it
// anywhere else must fail at startup, not corrupt wire decodes.
func mustLittleEndian(le bool) {
	if !le {
		panic("wire: big-endian host detected; rebuild with -tags wiresafe for the portable encoding/binary path")
	}
}

func init() { mustLittleEndian(hostLittleEndian()) }
