package transport

import (
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// udpEndpoint is fire-and-forget: fragments go straight to the NIC; a
// message whose fragments all arrive is delivered, anything else is
// garbage-collected after a timeout and counted lost.
type udpEndpoint struct {
	eng   *sim.Engine
	nic   *netsim.NIC
	stats Stats

	sendOverhead sim.Duration
	recvOverhead sim.Duration
	reasmTimeout sim.Duration

	nextID  uint64
	handler func(src netsim.Addr, msg Message)
	partial map[udpKey]*reasm

	hdrs      *wire.Pool
	reasmFree []*reasm

	// Pending-event queues with prebound fire functions: each queue's
	// events share one fixed delay, so pop order matches push order.
	sendQ     fifo[udpSend]
	gcQ       fifo[udpKey]
	deliverQ  fifo[delivery]
	sendFn    func()
	gcFn      func()
	deliverFn func()
}

type udpKey struct {
	src netsim.Addr
	id  uint64
}

type udpSend struct {
	dst   netsim.Addr
	id    uint64
	total int
	msg   Message
}

// delivery is one reassembled message awaiting its receive-overhead
// event (shared with the reliable transports).
type delivery struct {
	src netsim.Addr
	msg Message
}

func newUDP(eng *sim.Engine, nic *netsim.NIC) *udpEndpoint {
	u := &udpEndpoint{
		eng:          eng,
		nic:          nic,
		sendOverhead: sim.Microsecond,
		recvOverhead: sim.Microsecond,
		reasmTimeout: 10 * sim.Millisecond,
		partial:      make(map[udpKey]*reasm),
		hdrs:         wire.NewPool(dataHdrLen),
	}
	u.sendFn = u.fireSend
	u.gcFn = u.fireGC
	u.deliverFn = u.fireDeliver
	nic.OnReceive(u.onFrame)
	return u
}

func (u *udpEndpoint) Addr() netsim.Addr { return u.nic.Addr }
func (u *udpEndpoint) Kind() Kind        { return UDP }
func (u *udpEndpoint) Stats() *Stats     { return &u.stats }

func (u *udpEndpoint) OnMessage(fn func(src netsim.Addr, msg Message)) { u.handler = fn }

func (u *udpEndpoint) getReasm(total, bytes int, span telemetry.RequestID) *reasm {
	if n := len(u.reasmFree); n > 0 {
		r := u.reasmFree[n-1]
		u.reasmFree = u.reasmFree[:n-1]
		*r = reasm{total: total, bytes: bytes, span: span}
		return r
	}
	return &reasm{total: total, bytes: bytes, span: span}
}

func (u *udpEndpoint) putReasm(r *reasm) {
	r.payload = nil
	u.reasmFree = append(u.reasmFree, r)
}

func (u *udpEndpoint) Send(dst netsim.Addr, msg Message) error {
	if msg.Bytes > MaxMessageBytes {
		return ErrTooLarge
	}
	u.nextID++
	u.stats.Sent++
	u.sendQ.push(udpSend{dst: dst, id: u.nextID, total: fragsFor(msg.Bytes), msg: msg})
	u.eng.After(u.sendOverhead, "udp.send", u.sendFn)
	return nil
}

func (u *udpEndpoint) fireSend() {
	s := u.sendQ.pop()
	for i := 0; i < s.total; i++ {
		frag := dataFrag{MsgID: s.id, Index: i, Total: s.total, Bytes: s.msg.Bytes}
		var payload any
		if i == s.total-1 {
			payload = s.msg.Payload
		}
		// Send errors mean the frame never left; UDP doesn't care — but
		// the wire buffer stays ours on error and must go back.
		hdr := encodeData(u.hdrs, frag)
		err := u.nic.Send(netsim.Frame{
			Dst: s.dst, Payload: payload, Buf: hdr,
			Bytes: fragWire(s.msg.Bytes, i), Span: s.msg.Span,
		})
		if err != nil {
			hdr.Release()
		}
		u.stats.DataFrames++
	}
}

func (u *udpEndpoint) onFrame(f netsim.Frame) {
	if frameKind(f) != frameData {
		return
	}
	frag := decodeData(f)
	key := udpKey{f.Src, frag.MsgID}
	r, ok := u.partial[key]
	if !ok {
		r = u.getReasm(frag.Total, frag.Bytes, frag.Span)
		u.partial[key] = r
		// Garbage-collect incomplete messages: that is UDP loss.
		u.gcQ.push(key)
		u.eng.After(u.reasmTimeout, "udp.gc", u.gcFn)
	}
	r.have++
	if frag.Payload != nil {
		r.payload = frag.Payload
	}
	if r.have == r.total {
		delete(u.partial, key)
		u.stats.Delivered++
		u.deliverQ.push(delivery{src: f.Src, msg: Message{Payload: r.payload, Bytes: r.bytes, Span: r.span}})
		u.putReasm(r)
		u.eng.After(u.recvOverhead, "udp.deliver", u.deliverFn)
	}
}

func (u *udpEndpoint) fireGC() {
	key := u.gcQ.pop()
	if r, still := u.partial[key]; still && r.have < r.total {
		delete(u.partial, key)
		u.putReasm(r)
		u.stats.LostMessages++
	}
}

func (u *udpEndpoint) fireDeliver() {
	d := u.deliverQ.pop()
	if u.handler != nil {
		u.handler(d.src, d.msg)
	}
}
