package gofront

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// parse loads the file and processes every top-level declaration:
// constants, struct layouts, helper intrinsics, map directives, and
// the single exported entry function. Declarations are processed in
// source order, so types must be declared before use.
func (c *compiler) parse(filename string, src []byte) error {
	file, err := parser.ParseFile(c.fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		// Surface the parser's own errors as subset-stmt diagnostics so
		// callers see a DiagList either way.
		c.errs.add(token.Pos(1), RuleStmt, "parse error: %v", err)
		return c.errs.err()
	}
	if len(file.Imports) > 0 {
		c.errs.add(file.Imports[0].Pos(), RuleImport,
			"imports are outside the restricted subset; programs are self-contained")
	}
	c.scanMapDirectives(file)
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			c.parseGenDecl(d)
		case *ast.FuncDecl:
			c.parseFuncDecl(d)
		}
	}
	if c.entry == nil && len(c.errs.list) == 0 {
		c.errs.add(file.Name.Pos(), RuleEntry,
			"no entry point: declare exactly one exported func Name(ctx *T) uintN with a body")
	}
	c.applyConstOverrides()
	return c.errs.err()
}

func (c *compiler) parseGenDecl(d *ast.GenDecl) {
	switch d.Tok {
	case token.IMPORT:
		// already reported via file.Imports
	case token.CONST:
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if len(vs.Values) != len(vs.Names) {
				c.errs.add(vs.Pos(), RuleConst,
					"constants need explicit values (implicit repetition and iota are not supported)")
				continue
			}
			// Typed constants are allowed only with integer types; the
			// value itself stays untyped in the model.
			if vs.Type != nil {
				id, ok := vs.Type.(*ast.Ident)
				if !ok {
					c.errs.add(vs.Type.Pos(), RuleConst, "constants must be untyped or fixed-width integers")
					continue
				}
				if _, ok := intTypes[id.Name]; !ok {
					c.errs.add(vs.Type.Pos(), RuleConst, "constants must be untyped or fixed-width integers")
					continue
				}
			}
			for i, name := range vs.Names {
				v, ok := c.constExpr(vs.Values[i])
				if !ok {
					continue
				}
				if _, dup := c.consts[name.Name]; dup {
					c.errs.add(name.Pos(), RuleConst, "constant %s redeclared", name.Name)
					continue
				}
				c.consts[name.Name] = v
			}
		}
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if ts.Assign.IsValid() {
				c.errs.add(ts.Pos(), RuleTypes, "type aliases are not supported")
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				c.errs.add(ts.Type.Pos(), RuleTypes,
					"only struct type declarations are supported (integers are built in)")
				continue
			}
			if _, dup := c.structs[ts.Name.Name]; dup {
				c.errs.add(ts.Name.Pos(), RuleTypes, "type %s redeclared", ts.Name.Name)
				continue
			}
			c.structs[ts.Name.Name] = c.layoutStruct(ts.Name.Name, st)
		}
	case token.VAR:
		c.errs.add(d.Pos(), RuleStmt,
			"global variables are outside the restricted subset (programs have no data segment)")
	}
}

func (c *compiler) parseFuncDecl(d *ast.FuncDecl) {
	if d.Recv != nil {
		c.errs.add(d.Pos(), RuleStmt, "methods are outside the restricted subset")
		return
	}
	if d.Body == nil {
		c.parseHelperDecl(d)
		return
	}
	if !ast.IsExported(d.Name.Name) {
		c.errs.add(d.Pos(), RuleEntry,
			"unexported function %s has a body; only the single exported entry point may (helpers are bodyless intrinsics)", d.Name.Name)
		return
	}
	if c.entry != nil {
		c.errs.add(d.Pos(), RuleEntry, "second exported function %s; the entry point must be unique", d.Name.Name)
		return
	}
	c.entry = d
	c.checkEntrySig(d)
}

// checkEntrySig enforces the entry shape: func Name(ctx *Struct) uintN.
func (c *compiler) checkEntrySig(d *ast.FuncDecl) {
	ft := d.Type
	bad := func(format string, args ...any) {
		c.errs.add(d.Pos(), RuleEntry, format, args...)
	}
	if ft.TypeParams != nil {
		bad("type parameters are outside the restricted subset")
		return
	}
	if ft.Params == nil || len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) != 1 {
		bad("entry point must take exactly one parameter: the context pointer")
		return
	}
	p := ft.Params.List[0]
	pt, ok := c.resolveType(p.Type)
	if !ok {
		return
	}
	ptr, ok := pt.(PtrType)
	if !ok {
		bad("entry parameter must be a pointer to the context struct, got %s", pt)
		return
	}
	st, ok := ptr.Elem.(*StructType)
	if !ok {
		bad("entry parameter must point at a struct, got %s", ptr.Elem)
		return
	}
	c.ctxType = st
	c.ctxName = p.Names[0].Name
	if ft.Results == nil || len(ft.Results.List) != 1 || len(ft.Results.List[0].Names) != 0 {
		bad("entry point must return exactly one unnamed integer (the program's r0 verdict)")
		return
	}
	rt, ok := c.resolveType(ft.Results.List[0].Type)
	if !ok {
		return
	}
	it, ok := rt.(IntType)
	if !ok {
		bad("entry point must return an integer, got %s", rt)
		return
	}
	c.retType = it
}

// parseHelperDecl registers a bodyless function as an intrinsic. The
// //hyperion:helper directive in its doc comment supplies the helper
// id passed to the ISA's call instruction.
func (c *compiler) parseHelperDecl(d *ast.FuncDecl) {
	id, ok := helperDirective(d.Doc)
	if !ok {
		c.errs.add(d.Pos(), RuleHelperSig,
			"bodyless function %s needs a //hyperion:helper <id> directive in its doc comment", d.Name.Name)
		return
	}
	h := &helperDecl{name: d.Name.Name, id: id, pos: d.Pos()}
	if d.Type.Params != nil {
		for _, p := range d.Type.Params.List {
			t, tok := c.resolveType(p.Type)
			if !tok {
				return
			}
			switch tt := t.(type) {
			case IntType:
			case PtrType:
				if _, isInt := tt.Elem.(IntType); !isInt {
					c.errs.add(p.Type.Pos(), RuleHelperSig,
						"helper pointer parameters must point at integers, got %s", tt)
					return
				}
			default:
				c.errs.add(p.Type.Pos(), RuleHelperSig,
					"helper parameters must be integers or pointers to integers, got %s", t)
				return
			}
			n := len(p.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				h.params = append(h.params, t)
			}
		}
	}
	if len(h.params) > 5 {
		c.errs.add(d.Pos(), RuleHelperSig, "helper %s takes %d parameters; the ABI passes at most 5 (r1–r5)", d.Name.Name, len(h.params))
		return
	}
	if d.Type.Results != nil {
		if len(d.Type.Results.List) != 1 {
			c.errs.add(d.Pos(), RuleHelperSig, "helpers return at most one value (r0)")
			return
		}
		t, tok := c.resolveType(d.Type.Results.List[0].Type)
		if !tok {
			return
		}
		switch tt := t.(type) {
		case IntType:
		case PtrType:
			if _, isInt := tt.Elem.(IntType); !isInt {
				c.errs.add(d.Pos(), RuleHelperSig, "helper pointer results must point at integers, got %s", tt)
				return
			}
		default:
			c.errs.add(d.Pos(), RuleHelperSig, "helper results must be integers or pointers to integers, got %s", t)
			return
		}
		h.result = t
	}
	if _, dup := c.helpers[h.name]; dup {
		c.errs.add(d.Pos(), RuleHelperSig, "helper %s redeclared", h.name)
		return
	}
	c.helpers[h.name] = h
}

// helperDirective extracts the id from "//hyperion:helper <id>".
func helperDirective(doc *ast.CommentGroup) (int64, bool) {
	if doc == nil {
		return 0, false
	}
	for _, cm := range doc.List {
		rest, found := strings.CutPrefix(cm.Text, "//hyperion:helper")
		if !found {
			continue
		}
		id, err := strconv.ParseInt(strings.TrimSpace(rest), 0, 32)
		if err != nil {
			return 0, false
		}
		return id, true
	}
	return 0, false
}

// scanMapDirectives collects //hyperion:map lines anywhere in the
// file's comments: "//hyperion:map name id=0 key=4 value=8 entries=65536".
func (c *compiler) scanMapDirectives(file *ast.File) {
	for _, cg := range file.Comments {
		for _, cm := range cg.List {
			rest, found := strings.CutPrefix(cm.Text, "//hyperion:map")
			if !found {
				continue
			}
			md, ok := parseMapDirective(strings.TrimSpace(rest))
			if !ok {
				c.errs.add(cm.Pos(), RuleDirect,
					"malformed map directive; expected //hyperion:map <name> id=N key=N value=N [entries=N]")
				continue
			}
			c.maps = append(c.maps, md)
		}
	}
	sort.SliceStable(c.maps, func(i, j int) bool { return c.maps[i].ID < c.maps[j].ID })
}

func parseMapDirective(s string) (MapDecl, bool) {
	fields := strings.Fields(s)
	if len(fields) < 4 {
		return MapDecl{}, false
	}
	md := MapDecl{Name: fields[0], ID: -1, Entries: 1 << 16}
	for _, f := range fields[1:] {
		k, v, found := strings.Cut(f, "=")
		if !found {
			return MapDecl{}, false
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return MapDecl{}, false
		}
		switch k {
		case "id":
			md.ID = n
		case "key":
			md.KeySize = n
		case "value":
			md.ValueSize = n
		case "entries":
			md.Entries = n
		default:
			return MapDecl{}, false
		}
	}
	if md.ID < 0 || md.KeySize <= 0 || md.ValueSize <= 0 || md.Entries <= 0 {
		return MapDecl{}, false
	}
	return md, true
}

// applyConstOverrides rebinds named constants from Options.Consts.
func (c *compiler) applyConstOverrides() {
	names := make([]string, 0, len(c.opts.Consts))
	for name := range c.opts.Consts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := c.consts[name]; !ok {
			c.errs.add(token.Pos(1), RuleConst,
				"const override %s does not name a declared constant", name)
			continue
		}
		c.consts[name] = c.opts.Consts[name]
	}
}

// constExpr evaluates a compile-time constant expression: integer
// literals, declared constants, parentheses, unary +/-/^, and the
// integer binary operators.
func (c *compiler) constExpr(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.BasicLit:
		switch x.Kind {
		case token.INT:
			v, err := strconv.ParseInt(x.Value, 0, 64)
			if err != nil {
				// try unsigned (e.g. 0xffffffffffffffff)
				u, uerr := strconv.ParseUint(x.Value, 0, 64)
				if uerr != nil {
					c.errs.add(x.Pos(), RuleConst, "bad integer literal %s", x.Value)
					return 0, false
				}
				return int64(u), true
			}
			return v, true
		case token.STRING, token.CHAR:
			c.errs.add(x.Pos(), RuleString, "string values are outside the restricted subset (no dynamic memory)")
			return 0, false
		case token.FLOAT, token.IMAG:
			c.errs.add(x.Pos(), RuleTypes, "floating-point values are outside the restricted subset")
			return 0, false
		}
	case *ast.Ident:
		if v, ok := c.consts[x.Name]; ok {
			return v, true
		}
		if x.Name == "iota" {
			c.errs.add(x.Pos(), RuleConst, "iota is not supported; write explicit values")
			return 0, false
		}
		c.errs.add(x.Pos(), RuleConst, "%s is not a declared constant", x.Name)
		return 0, false
	case *ast.ParenExpr:
		return c.constExpr(x.X)
	case *ast.UnaryExpr:
		v, ok := c.constExpr(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		case token.XOR:
			return ^v, true
		}
		c.errs.add(x.Pos(), RuleConst, "unsupported constant operator %s", x.Op)
		return 0, false
	case *ast.BinaryExpr:
		a, ok := c.constExpr(x.X)
		if !ok {
			return 0, false
		}
		b, ok := c.constExpr(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				c.errs.add(x.Pos(), RuleConst, "constant division by zero")
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				c.errs.add(x.Pos(), RuleConst, "constant division by zero")
				return 0, false
			}
			return a % b, true
		case token.SHL:
			return a << uint64(b), true
		case token.SHR:
			return a >> uint64(b), true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
		c.errs.add(x.Pos(), RuleConst, "unsupported constant operator %s", x.Op)
		return 0, false
	}
	c.errs.add(e.Pos(), RuleConst, "expression is not a compile-time constant")
	return 0, false
}
