package core

import (
	"hyperion/internal/tenant"
)

// InstallTenantPlane attaches the multi-tenant control plane to this
// DPU's fabric: an admission controller plus slot scheduler whose
// weighted-fair arbiter feeds the reconfigurable slots. The plane is
// passive until tenants are admitted — an installed-but-idle plane
// leaves every existing datapath bit-identical (no events scheduled,
// no generator state consumed), which TestIdleTenantPlaneIsNeutral
// pins. If the telemetry plane is armed it extends to the tenant
// plane; arming later via SetRecorder extends it as well.
func (d *DPU) InstallTenantPlane(cfg tenant.Config) *tenant.Controller {
	ctl := tenant.New(d.Eng, d.Fabric, cfg)
	if d.rec != nil {
		ctl.SetRecorder(d.rec)
	}
	d.tenants = ctl
	return ctl
}

// TenantPlane returns the installed tenant controller, or nil.
func (d *DPU) TenantPlane() *tenant.Controller { return d.tenants }
