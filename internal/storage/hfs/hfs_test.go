package hfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newFS(t testing.TB) (*seg.SyncView, *FS) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	v := seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
	fs, err := Mkfs(v, seg.OID(500, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	return v, fs
}

func TestMkdirCreateReadWrite(t *testing.T) {
	_, fs := newFS(t)
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/data/logs"); err != nil {
		t.Fatal(err)
	}
	content := []byte("hello hyperion")
	if err := fs.WriteFile("/data/logs/a.txt", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/data/logs/a.txt")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("read = %q,%v", got, err)
	}
}

func TestWriteFileReplaceAndGrowShrink(t *testing.T) {
	_, fs := newFS(t)
	big := bytes.Repeat([]byte{7}, 3*ExtentBytes+100)
	if err := fs.WriteFile("/f", big); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("multi-extent read failed: %d bytes, %v", len(got), err)
	}
	ino, _ := fs.Stat("/f")
	if len(ino.Extents) != 4 {
		t.Fatalf("extents = %d, want 4", len(ino.Extents))
	}
	// Shrink releases extents.
	small := []byte("tiny")
	if err := fs.WriteFile("/f", small); err != nil {
		t.Fatal(err)
	}
	ino, _ = fs.Stat("/f")
	if len(ino.Extents) != 1 {
		t.Fatalf("extents after shrink = %d", len(ino.Extents))
	}
	got, _ = fs.ReadFile("/f")
	if !bytes.Equal(got, small) {
		t.Fatal("shrunk contents wrong")
	}
}

func TestFileTooBig(t *testing.T) {
	_, fs := newFS(t)
	huge := make([]byte, (maxExtents+1)*ExtentBytes)
	if err := fs.WriteFile("/huge", huge); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("err = %v, want ErrFileTooBig", err)
	}
}

func TestErrors(t *testing.T) {
	_, fs := newFS(t)
	_ = fs.Mkdir("/d")
	_ = fs.WriteFile("/d/f", []byte("x"))
	cases := []struct {
		op   func() error
		want error
	}{
		{func() error { _, err := fs.ReadFile("/missing"); return err }, ErrNotFound},
		{func() error { _, err := fs.ReadFile("/d"); return err }, ErrIsDir},
		{func() error { _, err := fs.ReadDir("/d/f"); return err }, ErrNotDir},
		{func() error { return fs.Mkdir("/d") }, ErrExist},
		{func() error { return fs.Create("/d/f") }, ErrExist},
		{func() error { return fs.Unlink("/d") }, ErrNotEmpty},
		{func() error { return fs.Unlink("/nope") }, ErrNotFound},
		{func() error { return fs.Mkdir("/missing/sub") }, ErrNotFound},
	}
	for i, c := range cases {
		if err := c.op(); !errors.Is(err, c.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, c.want)
		}
	}
}

func TestReadDirSorted(t *testing.T) {
	_, fs := newFS(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		_ = fs.Create("/" + n)
	}
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "alpha" || ents[2].Name != "zeta" {
		t.Fatalf("entries = %v", ents)
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	v, fs := newFS(t)
	// Prime the root directory's own data extent so it doesn't count as
	// a delta below.
	_ = fs.Create("/warmup")
	_ = fs.Unlink("/warmup")
	before := v.Store().Len()
	_ = fs.WriteFile("/f", bytes.Repeat([]byte{1}, 2*ExtentBytes))
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if after := v.Store().Len(); after != before {
		t.Fatalf("segments leaked: %d → %d", before, after)
	}
}

func TestMountPersists(t *testing.T) {
	v, fs := newFS(t)
	_ = fs.Mkdir("/persist")
	_ = fs.WriteFile("/persist/file", []byte("durable"))
	fs2, err := Mount(v, seg.OID(500, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/persist/file")
	if err != nil || string(got) != "durable" {
		t.Fatalf("mounted read = %q,%v", got, err)
	}
	// New files after mount must not collide with old inodes.
	if err := fs2.WriteFile("/persist/new", []byte("n")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.ReadFile("/persist/new"); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotationPlanMatchesFS(t *testing.T) {
	v, fs := newFS(t)
	_ = fs.Mkdir("/a")
	_ = fs.Mkdir("/a/b")
	want := bytes.Repeat([]byte("payload"), 10000) // > 1 extent
	if err := fs.WriteFile("/a/b/data.bin", want); err != nil {
		t.Fatal(err)
	}
	ann := fs.Annotate()
	plan, err := CompilePlan("/a/b/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 4 { // 3 lookups + read
		t.Fatalf("plan steps = %d", len(plan.Steps))
	}
	got, err := ExecPlan(v, ann, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("plan execution mismatch with FS read")
	}
}

func TestAnnotationPlanErrors(t *testing.T) {
	v, fs := newFS(t)
	_ = fs.Mkdir("/d")
	ann := fs.Annotate()
	plan, _ := CompilePlan("/d/missing")
	if _, err := ExecPlan(v, ann, plan); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
	planDir, _ := CompilePlan("/d")
	if _, err := ExecPlan(v, ann, planDir); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir err = %v", err)
	}
}

func TestAnnotatedAccessCostLowerThanStack(t *testing.T) {
	// The plan executor touches exactly the objects on the path; the
	// full FS stack re-reads parents for create-time checks etc. Here we
	// only assert both charge comparable costs and the plan's device
	// reads equal path length + data extents.
	v, fs := newFS(t)
	_ = fs.Mkdir("/x")
	_ = fs.WriteFile("/x/f", []byte("abc"))
	ann := fs.Annotate()
	plan, _ := CompilePlan("/x/f")
	v.TakeCost()
	rBefore := v.DevReads
	if _, err := ExecPlan(v, ann, plan); err != nil {
		t.Fatal(err)
	}
	reads := v.DevReads - rBefore
	// root inode + root data + x inode + x data + f inode + f extent = 6
	if reads != 6 {
		t.Fatalf("plan device reads = %d, want 6", reads)
	}
	if v.TakeCost() <= 0 {
		t.Fatal("no cost charged")
	}
}

func TestManyFilesDeepPaths(t *testing.T) {
	_, fs := newFS(t)
	path := ""
	for i := 0; i < 8; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		if err := fs.Mkdir(path); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		f := fmt.Sprintf("%s/f%02d", path, i)
		if err := fs.WriteFile(f, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir(path)
	if err != nil || len(ents) != 50 {
		t.Fatalf("deep dir entries = %d,%v", len(ents), err)
	}
	got, err := fs.ReadFile(path + "/f25")
	if err != nil || got[0] != 25 {
		t.Fatalf("deep read = %v,%v", got, err)
	}
}

func BenchmarkPathLookup(b *testing.B) {
	_, fs := newFS(b)
	_ = fs.Mkdir("/a")
	_ = fs.Mkdir("/a/b")
	_ = fs.Mkdir("/a/b/c")
	_ = fs.WriteFile("/a/b/c/f", []byte("x"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("/a/b/c/f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnnotatedPlanExec(b *testing.B) {
	v, fs := newFS(b)
	_ = fs.Mkdir("/a")
	_ = fs.Mkdir("/a/b")
	_ = fs.Mkdir("/a/b/c")
	_ = fs.WriteFile("/a/b/c/f", []byte("x"))
	ann := fs.Annotate()
	plan, _ := CompilePlan("/a/b/c/f")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecPlan(v, ann, plan); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	// Random create/write/unlink/mkdir sequences against a path→content
	// model; directory listings and file reads must always agree.
	f := func(seed uint64) bool {
		_, fs := newFS(t)
		r := sim.NewRand(seed)
		model := map[string][]byte{} // files only
		dirs := map[string]bool{"": true}
		dirList := []string{""}
		randDir := func() string { return dirList[r.Intn(len(dirList))] }
		for i := 0; i < 150; i++ {
			switch r.Intn(5) {
			case 0: // mkdir
				parent := randDir()
				name := fmt.Sprintf("d%d", r.Intn(20))
				p := parent + "/" + name
				err := fs.Mkdir(p)
				if dirs[p] || model[p] != nil {
					if err == nil {
						return false // duplicate accepted
					}
				} else if err == nil {
					dirs[p] = true
					dirList = append(dirList, p)
				}
			case 1, 2: // write file
				parent := randDir()
				p := parent + "/" + fmt.Sprintf("f%d", r.Intn(20))
				if dirs[p] {
					continue // name already a directory
				}
				content := make([]byte, r.Intn(5000))
				for j := range content {
					content[j] = byte(r.Intn(256))
				}
				if err := fs.WriteFile(p, content); err != nil {
					return false
				}
				model[p] = content
			case 3: // read file
				for p, want := range model {
					got, err := fs.ReadFile(p)
					if err != nil || !bytes.Equal(got, want) {
						return false
					}
					break
				}
			case 4: // unlink a file
				for p := range model {
					if err := fs.Unlink(p); err != nil {
						return false
					}
					delete(model, p)
					break
				}
			}
		}
		// Full sweep: every modeled file reads back exactly.
		for p, want := range model {
			got, err := fs.ReadFile(p)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
