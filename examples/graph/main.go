// Graph example: one of §4's candidate "killer workloads" (LDBC
// Graphalytics-style graph analytics). A synthetic power-law graph is
// stored in CSR form as two segment objects on the DPU's SSDs; BFS runs
// two ways: near-data on the DPU (edge ranges read straight from the
// single-level store) and client-side (every frontier vertex's adjacency
// fetched over the network) — the same RTT-vs-offload trade as pointer
// chasing, at graph scale.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

const (
	vertices   = 20000
	avgDegree  = 8
	offsetsOID = 0x6701
	edgesOID   = 0x6702
)

func main() {
	eng := sim.NewEngine(5)
	net := netsim.New(eng, netsim.DefaultConfig())
	dpu, _, err := core.Boot(eng, net, core.DefaultConfig("graph"))
	if err != nil {
		log.Fatal(err)
	}
	v := dpu.View

	// Build a power-law-ish multigraph with a preferential-attachment
	// flavour: early vertices collect more edges.
	rng := sim.NewRand(13)
	adj := make([][]uint32, vertices)
	for src := 1; src < vertices; src++ {
		deg := 1 + rng.Intn(2*avgDegree)
		for e := 0; e < deg; e++ {
			// Bias toward low vertex ids (hubs).
			dst := uint32(rng.Intn(src))
			if rng.Intn(3) == 0 {
				dst = uint32(rng.Intn(1 + src/16))
			}
			adj[src] = append(adj[src], dst)
			adj[dst] = append(adj[dst], uint32(src))
		}
	}

	// CSR encoding: offsets[v]..offsets[v+1] index into edges.
	offsets := make([]byte, (vertices+1)*8)
	var edges []byte
	total := 0
	for vtx := 0; vtx < vertices; vtx++ {
		binary.LittleEndian.PutUint64(offsets[vtx*8:], uint64(total))
		for _, d := range adj[vtx] {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], d)
			edges = append(edges, b[:]...)
			total++
		}
	}
	binary.LittleEndian.PutUint64(offsets[vertices*8:], uint64(total))

	if _, err := v.Alloc(seg.OID(offsetsOID, 1), int64(len(offsets)), false, seg.HintHot); err != nil {
		log.Fatal(err)
	}
	if _, err := v.Alloc(seg.OID(edgesOID, 1), int64(len(edges)), false, seg.HintHot); err != nil {
		log.Fatal(err)
	}
	if err := v.WriteAt(seg.OID(offsetsOID, 1), 0, offsets); err != nil {
		log.Fatal(err)
	}
	if err := v.WriteAt(seg.OID(edgesOID, 1), 0, edges); err != nil {
		log.Fatal(err)
	}
	v.TakeCost()
	fmt.Printf("graph: %d vertices, %d directed edges, CSR hot in DPU DRAM (promoted from SSD)\n", vertices, total)

	// neighbours reads one vertex's edge range through the store.
	neighbours := func(vtx uint32) []uint32 {
		ob, err := v.ReadAt(seg.OID(offsetsOID, 1), int64(vtx)*8, 16)
		if err != nil {
			log.Fatal(err)
		}
		lo := binary.LittleEndian.Uint64(ob)
		hi := binary.LittleEndian.Uint64(ob[8:])
		if hi == lo {
			return nil
		}
		eb, err := v.ReadAt(seg.OID(edgesOID, 1), int64(lo)*4, int64(hi-lo)*4)
		if err != nil {
			log.Fatal(err)
		}
		out := make([]uint32, hi-lo)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(eb[i*4:])
		}
		return out
	}

	// BFS from vertex 0.
	bfs := func() (levels int, reached int) {
		visited := make([]bool, vertices)
		frontier := []uint32{0}
		visited[0] = true
		reached = 1
		for len(frontier) > 0 {
			var next []uint32
			for _, u := range frontier {
				for _, w := range neighbours(u) {
					if !visited[w] {
						visited[w] = true
						reached++
						next = append(next, w)
					}
				}
			}
			frontier = next
			levels++
		}
		return levels, reached
	}

	// (a) Near-data: storage cost only.
	levels, reached := bfs()
	nearCost := v.TakeCost()
	fmt.Printf("near-data BFS: %d levels, %d/%d reached, modeled %v\n",
		levels, reached, vertices, nearCost)

	// (b) Client-side: every frontier vertex costs a network round trip
	// on top of the same storage reads.
	rtt := net.BaseRTT()
	_, _ = bfs()
	clientCost := v.TakeCost() + sim.Duration(reached)*rtt
	fmt.Printf("client-side BFS: same traversal + one RTT per vertex ≈ %v (%.1fx slower)\n",
		clientCost, float64(clientCost)/float64(nearCost))
	fmt.Println("→ §4: data-intensive graph workloads benefit from running next to storage")
}
