package chase

import (
	"fmt"
	"strings"
)

// Per-hop eBPF program, XRP-style (Zhong et al., OSDI'22, cited by the
// paper): the DPU runtime fetches a B+ tree node and hands it to this
// verified program, which binary-searches the node and writes back
// either the found value or the object id of the next node to fetch.
// The fetch loop lives in the runtime; the program itself is loop-free
// (binary search unrolls to ⌈log2(fanout)⌉ straight-line rounds), which
// is exactly what the verifier and the eHDL pipeline compiler require.
//
// Context layout (written by the runtime, partially rewritten by the
// program):
//
//	[0:8)    search key
//	[8]      action out: 0 descend, 1 found, 2 not found, 3 corrupt
//	[16:24)  result value out
//	[24:32)  next node id Hi out
//	[32:40)  next node id Lo out
//	[64:...) raw node page (bptree layout)
//
// Node page layout (see internal/storage/bptree):
//
//	[0]      kind (1 leaf, 2 internal)
//	[2:4)    key count
//	leaf:    next id at 8, keys at 24, values at 24+200*8
//	internal: keys at 8, children (16 B each) at 8+150*8

// Context offsets.
const (
	CtxKey    = 0
	CtxAction = 8
	CtxValue  = 16
	CtxNextHi = 24
	CtxNextLo = 32
	CtxNode   = 64
	CtxBytes  = 64 + 4096
)

// Actions.
const (
	ActDescend  = 0
	ActFound    = 1
	ActNotFound = 2
	ActCorrupt  = 3
)

// Node layout constants (must match bptree).
const (
	nodeKindOff  = CtxNode + 0
	nodeCountOff = CtxNode + 2
	leafKeysOff  = CtxNode + 24
	leafValsOff  = CtxNode + 24 + 200*8
	intKeysOff   = CtxNode + 8
	intKidsOff   = CtxNode + 8 + 150*8
)

// StepProgram generates the per-hop program's assembler source.
//
// Register plan: r9 = ctx, r8 = key, r6 = lo, r7 = hi, r5 scratch
// (clobber-safe: no helper calls anywhere).
func StepProgram() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("	mov r9, r1")
	w("	ldxdw r8, [r9+%d]", CtxKey)
	w("	ldxb r2, [r9+%d]", nodeKindOff)
	w("	ldxh r7, [r9+%d]", nodeCountOff) // hi = count
	w("	jeq r2, 1, leaf")
	w("	jeq r2, 2, internal")
	w("	stb [r9+%d], %d", CtxAction, ActCorrupt)
	w("	mov r0, %d", ActCorrupt)
	w("	exit")

	// Unrolled binary search: lo/hi in r6/r7, first index with
	// keys[idx] >= key. keysOff is the byte base of the key array.
	search := func(label string, maxCount, keysOff int) {
		w("%s:", label)
		w("	jgt r7, %d, corrupt_%s", maxCount, label)
		w("	mov r6, 0") // lo
		for i := 0; i < 8; i++ {
			w("	jge r6, r7, %s_done_%d", label, i)
			w("	mov r3, r6")
			w("	add r3, r7")
			w("	div r3, 2") // mid
			w("	mov r4, r3")
			w("	mul r4, 8")
			w("	mov r5, r9")
			w("	add r5, r4")
			w("	ldxdw r4, [r5+%d]", keysOff) // keys[mid]
			w("	jge r4, r8, %s_hi_%d", label, i)
			w("	mov r6, r3")
			w("	add r6, 1") // lo = mid+1
			w("	ja %s_done_%d", label, i)
			w("%s_hi_%d:", label, i)
			w("	mov r7, r3") // hi = mid
			w("%s_done_%d:", label, i)
		}
	}

	// Leaf: exact match check.
	search("leaf", 200, leafKeysOff)
	w("	ldxh r7, [r9+%d]", nodeCountOff) // reload count
	w("	jge r6, r7, miss")
	w("	mov r4, r6")
	w("	mul r4, 8")
	w("	mov r5, r9")
	w("	add r5, r4")
	w("	ldxdw r3, [r5+%d]", leafKeysOff)
	w("	jne r3, r8, miss")
	w("	ldxdw r3, [r5+%d]", leafValsOff)
	w("	stxdw [r9+%d], r3", CtxValue)
	w("	stb [r9+%d], %d", CtxAction, ActFound)
	w("	mov r0, %d", ActFound)
	w("	exit")
	w("miss:")
	w("	stb [r9+%d], %d", CtxAction, ActNotFound)
	w("	mov r0, %d", ActNotFound)
	w("	exit")

	// Internal: child index = lo (+1 on exact key match).
	search("internal", 150, intKeysOff)
	w("	ldxh r7, [r9+%d]", nodeCountOff)
	w("	jge r6, r7, kid") // lo == count → rightmost child
	w("	mov r4, r6")
	w("	mul r4, 8")
	w("	mov r5, r9")
	w("	add r5, r4")
	w("	ldxdw r3, [r5+%d]", intKeysOff)
	w("	jne r3, r8, kid")
	w("	add r6, 1") // equal key descends right of it
	w("kid:")
	w("	mov r4, r6")
	w("	mul r4, 16")
	w("	mov r5, r9")
	w("	add r5, r4")
	w("	ldxdw r3, [r5+%d]", intKidsOff) // child Hi
	w("	stxdw [r9+%d], r3", CtxNextHi)
	w("	ldxdw r3, [r5+%d]", intKidsOff+8) // child Lo
	w("	stxdw [r9+%d], r3", CtxNextLo)
	w("	stb [r9+%d], %d", CtxAction, ActDescend)
	w("	mov r0, %d", ActDescend)
	w("	exit")

	w("corrupt_leaf:")
	w("corrupt_internal:")
	w("	stb [r9+%d], %d", CtxAction, ActCorrupt)
	w("	mov r0, %d", ActCorrupt)
	w("	exit")
	return b.String()
}
