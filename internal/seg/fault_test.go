package seg

import (
	"errors"
	"testing"

	"hyperion/internal/nvme"
	"hyperion/internal/sim"
)

// Fault-injection coverage: device-level media errors must surface as
// errors through the async store API, never as silent corruption, and
// the store must keep serving once the device recovers.
func TestDeviceFaultsPropagateThroughStore(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("flaky")
	cfg.Blocks = 1 << 20
	dev := nvme.New(eng, cfg)
	host := nvme.NewHost(dev, nil)
	scfg := DefaultConfig()
	scfg.DRAMBytes = 16 << 20
	scfg.CheckpointEvery = 0
	s := New(eng, scfg, []*nvme.Host{host})

	id := OID(5, 5)
	if _, err := s.Alloc(id, 8192, true, HintAuto); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8192)
	var werr error
	s.Write(id, 0, payload, func(err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}

	// 100% failure: every async read errors out.
	dev.InjectFaults(1.0, 42)
	var rerr error
	s.Read(id, 0, 8192, func(data []byte, err error) { rerr = err })
	eng.Run()
	if rerr == nil {
		t.Fatal("read through failing device succeeded")
	}
	var werr2 error
	s.Write(id, 0, payload, func(err error) { werr2 = err })
	eng.Run()
	if werr2 == nil {
		t.Fatal("write through failing device succeeded")
	}

	// Recovery: faults off, service resumes with intact data.
	dev.InjectFaults(0, 0)
	var got []byte
	var gerr error
	s.Read(id, 0, 8192, func(data []byte, err error) { got, gerr = data, err })
	eng.Run()
	if gerr != nil || len(got) != 8192 {
		t.Fatalf("post-recovery read = %d bytes, %v", len(got), gerr)
	}
	if dev.Counters.Value("injected_faults") < 2 {
		t.Fatalf("injected_faults = %d", dev.Counters.Value("injected_faults"))
	}
}

func TestPartialFaultRateStillCompletesEventually(t *testing.T) {
	// At a 30% fault rate, a retry loop (the caller's job) converges.
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("flaky")
	cfg.Blocks = 1 << 18
	dev := nvme.New(eng, cfg)
	host := nvme.NewHost(dev, nil)
	dev.InjectFaults(0.3, 7)
	ok := 0
	attempts := 0
	var try func()
	try = func() {
		attempts++
		if attempts > 50 {
			return
		}
		_ = host.Read(0, 0, 1, func(_ []byte, st uint16) {
			if st == nvme.StatusOK {
				ok++
				return
			}
			try()
		})
	}
	for i := 0; i < 10; i++ {
		attempts = 0
		try()
		eng.Run()
	}
	if ok != 10 {
		t.Fatalf("completed %d/10 reads with retries", ok)
	}
	if f := dev.Counters.Value("injected_faults"); f == 0 {
		t.Fatal("no faults were injected at 30% rate")
	}
}

func TestCheckpointFailsCleanlyOnFaults(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("flaky")
	cfg.Blocks = 1 << 18
	dev := nvme.New(eng, cfg)
	host := nvme.NewHost(dev, nil)
	scfg := DefaultConfig()
	scfg.DRAMBytes = 16 << 20
	scfg.CheckpointEvery = 0
	s := New(eng, scfg, []*nvme.Host{host})
	if _, err := s.Alloc(OID(1, 1), 4096, true, HintAuto); err != nil {
		t.Fatal(err)
	}
	dev.InjectFaults(1.0, 9)
	var cerr error
	s.Checkpoint(func(err error) { cerr = err })
	eng.Run()
	if cerr == nil {
		t.Fatal("checkpoint on failing device reported success")
	}
	if !errors.Is(cerr, cerr) { // sanity: a real error object came back
		t.Fatal("nil-ish error")
	}
}
