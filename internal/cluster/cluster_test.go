package cluster

import (
	"errors"
	"fmt"
	"testing"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
)

func rig(t testing.TB, nodes, replicas int) (*sim.Engine, *Cluster, *Router) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	c, err := New(eng, net, nodes, replicas)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(c, "client")
	if err != nil {
		t.Fatal(err)
	}
	return eng, c, r
}

func TestPutGetAcrossShards(t *testing.T) {
	eng, c, r := rig(t, 4, 1)
	const keys = 200
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		var perr error
		r.Put(k, []byte(fmt.Sprintf("val-%03d", i)), func(err error) { perr = err })
		eng.Run()
		if perr != nil {
			t.Fatal(perr)
		}
	}
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		var got []byte
		r.Get(k, func(val []byte, err error) {
			if err != nil {
				t.Errorf("Get(%s): %v", k, err)
			}
			got = val
		})
		eng.Run()
		if string(got) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("Get(%s) = %q", k, got)
		}
	}
	// Keys must actually spread: every node serves some.
	for i, n := range c.Nodes {
		if n.Puts == 0 {
			t.Fatalf("node %d received no writes", i)
		}
	}
}

func TestMissingKey(t *testing.T) {
	eng, _, r := rig(t, 2, 1)
	var got error
	r.Get([]byte("ghost"), func(_ []byte, err error) { got = err })
	eng.Run()
	if got == nil {
		t.Fatal("missing key returned no error")
	}
}

func TestReplicationWritesToAllReplicas(t *testing.T) {
	eng, c, r := rig(t, 4, 3)
	k := []byte("replicated")
	r.Put(k, []byte("v"), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	set := c.ReplicaSet(k)
	if len(set) != 3 {
		t.Fatalf("replica set %v", set)
	}
	for _, idx := range set {
		if _, ok, _ := c.Nodes[idx].KV.Get(k); !ok {
			t.Fatalf("replica %d missing the key", idx)
		}
	}
}

func TestFailoverToReplica(t *testing.T) {
	eng, c, r := rig(t, 3, 2)
	k := []byte("survivor")
	r.Put(k, []byte("alive"), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	primary := c.ReplicaSet(k)[0]
	c.MarkDown(primary)
	var got []byte
	var gerr error
	r.Get(k, func(val []byte, err error) { got, gerr = val, err })
	eng.Run()
	if gerr != nil || string(got) != "alive" {
		t.Fatalf("failover get = %q,%v", got, gerr)
	}
	if r.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", r.Failovers)
	}
	// With every replica down the read fails cleanly.
	c.MarkDown(c.ReplicaSet(k)[1])
	var derr error
	r.Get(k, func(_ []byte, err error) { derr = err })
	eng.Run()
	if !errors.Is(derr, ErrNoReplicas) {
		t.Fatalf("all-down err = %v", derr)
	}
	// Revival restores service.
	c.MarkUp(primary)
	r.Get(k, func(val []byte, err error) { got, gerr = val, err })
	eng.Run()
	if gerr != nil || string(got) != "alive" {
		t.Fatalf("post-revival get = %q,%v", got, gerr)
	}
}

func TestUnreplicatedClusterLosesDataOnFailure(t *testing.T) {
	// The contrast case: replicas=1 means a down node takes its shard
	// with it — motivating the replication the paper's §4 asks about.
	eng, c, r := rig(t, 2, 1)
	k := []byte("fragile")
	r.Put(k, []byte("v"), func(error) {})
	eng.Run()
	c.MarkDown(c.ReplicaSet(k)[0])
	var gerr error
	r.Get(k, func(_ []byte, err error) { gerr = err })
	eng.RunUntil(eng.Now().Add(sim.Duration(sim.Second)))
	if !errors.Is(gerr, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", gerr)
	}
}

func TestScaleOutSpreadsLoad(t *testing.T) {
	for _, nodes := range []int{1, 4} {
		eng, c, r := rig(t, nodes, 1)
		const ops = 200
		for i := 0; i < ops; i++ {
			r.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"), func(error) {})
			eng.Run()
		}
		max := int64(0)
		for _, n := range c.Nodes {
			if n.Puts > max {
				max = n.Puts
			}
		}
		// With 4 nodes no single node should hold everything.
		if nodes == 4 && max > ops*2/3 {
			t.Fatalf("load skewed: max shard %d of %d", max, ops)
		}
		if nodes == 1 && max != ops {
			t.Fatalf("single node got %d of %d", max, ops)
		}
	}
}

func TestBadConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	if _, err := New(eng, net, 2, 3); err == nil {
		t.Fatal("replicas > nodes accepted")
	}
	if _, err := New(eng, net, 2, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}
