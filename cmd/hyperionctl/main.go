// Command hyperionctl exercises the OS-shell control path: it boots a
// simulated DPU, then drives the same network control-plane RPCs an
// operator would use against hardware — ping, status, bitstream load
// with authorization, and unload — entirely over the simulated fabric
// (no host CPU on the DPU side).
//
// Usage:
//
//	hyperionctl status
//	hyperionctl load -slot 2 -mib 16
//	hyperionctl load -slot 2 -mib 16 -forge   # demonstrate auth rejection
//	hyperionctl session                        # full scripted session
//	hyperionctl trace -probes 8 -dir out/      # traced Figure 2 probes
//	hyperionctl rack -shards 4                 # per-shard PDES kernel report
//	hyperionctl tenants -tenants 10 -fault 0.01  # multi-tenant SLO report
//	hyperionctl build filter.go                # compile restricted Go to the ISA
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperion/internal/bench"
	"hyperion/internal/core"
	"hyperion/internal/fabric"
	"hyperion/internal/netsim"
	"hyperion/internal/rack"
	"hyperion/internal/rpc"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/transport"
)

type ctl struct {
	eng *sim.Engine
	dpu *core.DPU
	cli *rpc.Client
}

func dial() *ctl {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := core.DefaultConfig("dpu0")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 128 << 20
	d, _, err := core.Boot(eng, net, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot:", err)
		os.Exit(1)
	}
	cn, err := net.Attach("hyperionctl")
	if err != nil {
		fmt.Fprintln(os.Stderr, "attach:", err)
		os.Exit(1)
	}
	cli := rpc.NewClient(eng, transport.New(eng, cfg.Transport, cn))
	cli.Timeout = sim.Duration(sim.Second)
	return &ctl{eng: eng, dpu: d, cli: cli}
}

// call performs one synchronous control RPC (driving the simulator to
// completion).
func (c *ctl) call(method string, arg any, argBytes int) (any, error) {
	var out any
	var cerr error
	c.cli.Call(c.dpu.ControlAddr(), method, arg, argBytes, func(val any, err error) {
		out, cerr = val, err
	})
	c.eng.Run()
	return out, cerr
}

func (c *ctl) status() {
	val, err := c.call(core.ShellStatus, nil, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "status:", err)
		os.Exit(1)
	}
	st := val.(core.Status)
	fmt.Printf("%s @ t=%v\n", st.Name, c.eng.Now())
	for _, line := range st.Enum {
		fmt.Println("  pcie:", line)
	}
	for _, s := range st.Slots {
		fmt.Println("  ", s)
	}
	fmt.Printf("  free: %d LUTs, %d BRAM, %d DSP; %d segments live\n",
		st.Free.LUTs, st.Free.BRAM, st.Free.DSP, st.Segments)
}

func bitstream(mib int64, tag string) *fabric.Bitstream {
	return &fabric.Bitstream{
		Name:      fmt.Sprintf("op-%dM", mib),
		SizeBytes: mib << 20,
		Uses:      fabric.Resources{LUTs: 30000, FFs: 50000, BRAM: 32},
		Depth:     16,
		II:        1,
		AuthTag:   tag,
		Process:   func(in any) any { return in },
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: hyperionctl status | load | unload | session | trace | rack | tenants | build")
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if cmd == "rack" {
		cmdRack(args) // rack-scale: no single-DPU control session to dial
		return
	}
	if cmd == "tenants" {
		cmdTenants(args) // self-contained scenario: no control session to dial
		return
	}
	if cmd == "build" {
		os.Exit(cmdBuild(args, os.Stdout, os.Stderr)) // pure compile: no DPU to dial
	}
	c := dial()
	switch cmd {
	case "status":
		c.status()
	case "load":
		fs := flag.NewFlagSet("load", flag.ExitOnError)
		slot := fs.Int("slot", 0, "target slot")
		mib := fs.Int64("mib", 8, "bitstream size in MiB")
		forge := fs.Bool("forge", false, "use a forged auth tag")
		_ = fs.Parse(args)
		tag := c.dpu.Cfg.AuthTag
		if *forge {
			tag = "forged-key"
		}
		t0 := c.eng.Now()
		_, err := c.call(core.ShellLoad, core.LoadArgs{Slot: *slot, Bitstream: bitstream(*mib, tag)}, int(*mib)<<20)
		if err != nil {
			fmt.Println("load rejected:", err)
			return
		}
		fmt.Printf("slot %d active after %v partial reconfiguration\n", *slot, c.eng.Now().Sub(t0))
	case "unload":
		fs := flag.NewFlagSet("unload", flag.ExitOnError)
		slot := fs.Int("slot", 0, "target slot")
		_ = fs.Parse(args)
		if _, err := c.call(core.ShellUnload, *slot, 64); err != nil {
			fmt.Fprintln(os.Stderr, "unload:", err)
			os.Exit(1)
		}
		fmt.Printf("slot %d unloaded\n", *slot)
	case "session":
		fmt.Println("== ping ==")
		pong, err := c.call(core.ShellPing, nil, 64)
		fmt.Println("  ", pong, err)
		fmt.Println("== initial status ==")
		c.status()
		fmt.Println("== load 16 MiB bitstream into slot 1 ==")
		t0 := c.eng.Now()
		if _, err := c.call(core.ShellLoad, core.LoadArgs{Slot: 1, Bitstream: bitstream(16, c.dpu.Cfg.AuthTag)}, 16<<20); err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		fmt.Printf("   active after %v\n", c.eng.Now().Sub(t0))
		fmt.Println("== forged bitstream is rejected ==")
		if _, err := c.call(core.ShellLoad, core.LoadArgs{Slot: 2, Bitstream: bitstream(8, "forged")}, 8<<20); err != nil {
			fmt.Println("   rejected:", err)
		} else {
			fmt.Println("   UNEXPECTEDLY ACCEPTED")
		}
		fmt.Println("== status after load ==")
		c.status()
		fmt.Println("== unload slot 1 ==")
		if _, err := c.call(core.ShellUnload, 1, 64); err != nil {
			fmt.Fprintln(os.Stderr, "unload:", err)
			os.Exit(1)
		}
		c.status()
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		probes := fs.Int("probes", 8, "number of Figure 2 probes to drive")
		dir := fs.String("dir", "", "write trace artifacts (Perfetto JSON, histograms, critical path) to this existing directory")
		_ = fs.Parse(args)
		c.trace(*probes, *dir)
	default:
		fmt.Fprintln(os.Stderr, "unknown command", cmd)
		os.Exit(2)
	}
}

// cmdRack is the operator's view of the sharded PDES kernel: it runs
// the rack scenario at the requested shard count and prints per-shard
// event/envelope counts and the busy-versus-barrier-stall wall split,
// the numbers that drive lookahead tuning. The table itself is
// shard-count invariant; only the per-shard breakdown moves.
func cmdRack(args []string) {
	fs := flag.NewFlagSet("rack", flag.ExitOnError)
	shards := fs.Int("shards", 4, "conservative-PDES shards")
	boxes := fs.Int("boxes", 8, "DPU boxes in the rack")
	seed := fs.Uint64("seed", 1, "scenario seed")
	_ = fs.Parse(args)

	cfg := rack.DefaultConfig()
	cfg.Boxes = *boxes
	cfg.Shards = *shards
	ra := rack.New(cfg, *seed, nil)
	ra.Run()

	cl := ra.Cluster()
	tot := ra.Totals()
	fmt.Printf("rack: %d boxes on %d shards — ops=%d ok=%d err=%d, sim-time %v\n",
		cfg.Boxes, cl.Shards(), tot.Issued, tot.OK, tot.Errs, cl.Now().Sub(sim.Time(0)))
	fmt.Printf("rack: %d events, %d barrier windows, lookahead %v\n",
		cl.Steps(), cl.Windows(), cl.Lookahead())
	var tbl sim.Table
	tbl.Header = []string{"shard", "events", "sends", "recvs", "busy ms", "stall ms"}
	var busy, stall int64
	for _, st := range cl.Stats() {
		busy += st.BusyNs
		stall += st.StallNs
		tbl.AddRow(fmt.Sprintf("%d", st.Shard), fmt.Sprintf("%d", st.Events),
			fmt.Sprintf("%d", st.Sends), fmt.Sprintf("%d", st.Recvs),
			fmt.Sprintf("%.2f", float64(st.BusyNs)/1e6), fmt.Sprintf("%.2f", float64(st.StallNs)/1e6))
	}
	fmt.Print(tbl.String())
	if busy+stall > 0 {
		fmt.Printf("barrier stall: %.1f%% of shard wall time\n", 100*float64(stall)/float64(busy+stall))
	}
}

// cmdTenants is the operator's view of the multi-tenant control plane:
// one E18 sweep cell — admission, weighted-fair slot scheduling, slot
// leases, fault-plane evictions — followed by the per-tenant SLO
// report. Output is a pure function of the flags, so two invocations
// with the same flags print identical bytes.
func cmdTenants(args []string) {
	fs := flag.NewFlagSet("tenants", flag.ExitOnError)
	n := fs.Int("tenants", 10, "tenant arrivals (a late tenant arrives on top)")
	leaseUS := fs.Int64("lease-us", 2000, "slot lease in microseconds (0 = static placement)")
	rate := fs.Float64("fault", 0, "fault-plane slot-eviction rate in [0,1]")
	seed := fs.Uint64("seed", 1, "scenario seed")
	_ = fs.Parse(args)
	if *n < 1 || *leaseUS < 0 || *rate < 0 || *rate > 1 {
		fmt.Fprintln(os.Stderr, "tenants: -tenants must be >= 1, -lease-us >= 0, -fault in [0,1]")
		os.Exit(2)
	}

	res, rows := bench.TenantScenario(*seed, *n, sim.Duration(*leaseUS)*sim.Microsecond, *rate)
	fmt.Print(res.String())
	var tbl sim.Table
	tbl.Header = []string{"tenant", "wgt", "state", "plc", "pre", "evt", "sub", "ok", "retry", "err",
		"p50", "p99", "goodput/s", "slo"}
	for _, r := range rows {
		slo := "ok"
		switch {
		case r.ViolLat && r.ViolGood:
			slo = "lat+good!"
		case r.ViolLat:
			slo = "lat!"
		case r.ViolGood:
			slo = "good!"
		}
		tbl.AddRow(r.Name, fmt.Sprintf("%d", r.Weight), r.State,
			fmt.Sprintf("%d", r.Placements), fmt.Sprintf("%d", r.Preemptions), fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.Submitted), fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Retryable), fmt.Sprintf("%d", r.Failed),
			r.P50.String(), r.P99.String(), fmt.Sprintf("%.0f", r.GoodputOPS), slo)
	}
	fmt.Print(tbl.String())
}

// trace arms the telemetry plane on the booted DPU, drives n Figure 2
// probes through the full hardware path, and prints the per-stage
// latency table plus the per-request critical-path summary. With dir
// set, the Chrome trace JSON and text summaries are written there.
func (c *ctl) trace(n int, dir string) {
	if n <= 0 {
		fmt.Fprintln(os.Stderr, "trace: -probes must be positive")
		os.Exit(1)
	}
	if dir != "" {
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			fmt.Fprintf(os.Stderr, "trace: -dir %s: not a directory\n", dir)
			os.Exit(1)
		}
	}
	rec := telemetry.NewRecorder("hyperionctl.trace")
	c.dpu.SetRecorder(rec)
	if err := c.dpu.LoadAccelerator(0, core.ProbeBitstream(c.dpu.Cfg.AuthTag), nil); err != nil {
		fmt.Fprintln(os.Stderr, "trace: load:", err)
		os.Exit(1)
	}
	c.eng.Run()
	var tbl sim.Table
	tbl.Header = []string{"probe", "blocks", "arbiter", "pipeline", "storage", "egress", "total"}
	for i := 0; i < n; i++ {
		blocks := 1 + i%8
		var tr core.Fig2Trace
		err := c.dpu.Fig2Probe(0, i%4, int64(i)*7, blocks, func(got core.Fig2Trace, _ []byte, perr error) {
			if perr != nil {
				fmt.Fprintln(os.Stderr, "trace: probe:", perr)
				os.Exit(1)
			}
			tr = got
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace: probe:", err)
			os.Exit(1)
		}
		c.eng.Run()
		tbl.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", blocks),
			tr.Arbiter.String(), tr.Pipeline.String(), tr.Storage.String(),
			tr.Egress.String(), tr.Total.String())
	}
	fmt.Print(tbl.String())
	fmt.Println()
	fmt.Print(rec.CriticalPath())
	if dir != "" {
		a, err := bench.WriteTraceArtifacts(dir, "hyperionctl", rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace artifacts: %s %s %s\n", a.TraceJSON, a.HistTXT, a.CritTXT)
	}
}
