package transport

import (
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// Homa-like transport: message-oriented, receiver-driven. The first
// unschedFrags fragments of a message are sent blindly (covering one
// bandwidth-delay product); the rest are released by GRANTs that the
// receiver issues to the inbound message with the fewest remaining
// fragments (SRPT). This keeps switch queues short under incast and
// favours short messages — the properties the paper cites Homa for.

const (
	unschedFrags = 16 // ≈64 KiB: one 100 GbE BDP at rack RTTs
	grantWindow  = 16 // granted frags kept in flight beyond received
	homaRTO      = 500 * sim.Microsecond
)

type homaEndpoint struct {
	eng   *sim.Engine
	nic   *netsim.NIC
	stats Stats

	handler  func(src netsim.Addr, msg Message)
	nextID   uint64
	outbound map[uint64]*homaSend
	inbound  map[homaKey]*homaRecv
	overhead sim.Duration

	hdrs        *wire.Pool
	ctrlScratch []int // reused by decodeCtrl for resend missing lists

	deliverQ  fifo[delivery]
	deliverFn func()
}

type homaKey struct {
	src netsim.Addr
	id  uint64
}

type homaSend struct {
	dst      netsim.Addr
	id       uint64
	bytes    int
	payload  any
	total    int
	sent     int  // frags transmitted (first pass)
	granted  int  // frags the receiver has released
	progress bool // grant/done seen since last sender RTO
	span     telemetry.RequestID
}

type homaRecv struct {
	src      netsim.Addr
	id       uint64
	total    int
	bytes    int
	payload  any
	received map[int]bool
	granted  int
	lastAct  sim.Time
	timer    sim.EventRef
	done     bool
	span     telemetry.RequestID
}

func newHoma(eng *sim.Engine, nic *netsim.NIC) *homaEndpoint {
	h := &homaEndpoint{
		eng:      eng,
		nic:      nic,
		outbound: make(map[uint64]*homaSend),
		inbound:  make(map[homaKey]*homaRecv),
		overhead: 500 * sim.Nanosecond,
		hdrs:     wire.NewPool(dataHdrLen),
	}
	h.deliverFn = h.fireDeliver
	nic.OnReceive(h.onFrame)
	return h
}

func (h *homaEndpoint) Addr() netsim.Addr { return h.nic.Addr }
func (h *homaEndpoint) Kind() Kind        { return Homa }
func (h *homaEndpoint) Stats() *Stats     { return &h.stats }

func (h *homaEndpoint) OnMessage(fn func(src netsim.Addr, msg Message)) { h.handler = fn }

func (h *homaEndpoint) Send(dst netsim.Addr, msg Message) error {
	if msg.Bytes > MaxMessageBytes {
		return ErrTooLarge
	}
	h.nextID++
	s := &homaSend{
		dst:     dst,
		id:      h.nextID,
		bytes:   msg.Bytes,
		payload: msg.Payload,
		total:   fragsFor(msg.Bytes),
		granted: unschedFrags,
		span:    msg.Span,
	}
	h.outbound[s.id] = s
	h.stats.Sent++
	h.eng.After(h.overhead, "homa.send", func() { h.pump(s) })
	h.armSendTimer(s)
	return nil
}

// armSendTimer covers the case where every unscheduled fragment of a
// message is dropped: the receiver then has no state and cannot request
// a resend, so the sender must re-offer fragment 0 until it hears a
// grant or completion.
func (h *homaEndpoint) armSendTimer(s *homaSend) {
	h.eng.After(homaRTO, "homa.sendrto", func() {
		if _, live := h.outbound[s.id]; !live {
			return
		}
		if !s.progress && s.sent > 0 {
			h.sendFrag(s, 0)
			h.stats.Retransmits++
		}
		s.progress = false
		h.armSendTimer(s)
	})
}

// pump transmits fragments up to the granted horizon.
func (h *homaEndpoint) pump(s *homaSend) {
	limit := s.granted
	if limit > s.total {
		limit = s.total
	}
	for ; s.sent < limit; s.sent++ {
		h.sendFrag(s, s.sent)
	}
}

func (h *homaEndpoint) sendFrag(s *homaSend, i int) {
	frag := dataFrag{MsgID: s.id, Index: i, Total: s.total, Bytes: s.bytes}
	var payload any
	if i == s.total-1 {
		payload = s.payload
	}
	hdr := encodeData(h.hdrs, frag)
	err := h.nic.Send(netsim.Frame{Dst: s.dst, Payload: payload, Buf: hdr, Bytes: fragWire(s.bytes, i), Span: s.span})
	if err != nil {
		hdr.Release()
	}
	h.stats.DataFrames++
}

func (h *homaEndpoint) onFrame(f netsim.Frame) {
	switch frameKind(f) {
	case frameData:
		h.onData(f.Src, decodeData(f))
	case frameCtrl:
		pl := decodeCtrl(f.Buf.Bytes(), h.ctrlScratch[:0])
		if pl.Missing != nil {
			h.ctrlScratch = pl.Missing[:0]
		}
		switch pl.Op {
		case grantOp:
			if s, ok := h.outbound[pl.MsgID]; ok {
				s.progress = true
				if int(pl.Seq) > s.granted {
					s.granted = int(pl.Seq)
					h.pump(s)
				}
			}
		case doneOp:
			delete(h.outbound, pl.MsgID)
		case resendOp:
			if s, ok := h.outbound[pl.MsgID]; ok {
				s.progress = true
				for _, i := range pl.Missing {
					if i >= 0 && i < s.total {
						h.sendFrag(s, i)
						h.stats.Retransmits++
					}
				}
			}
		}
	}
}

func (h *homaEndpoint) onData(src netsim.Addr, frag dataFrag) {
	key := homaKey{src, frag.MsgID}
	r, ok := h.inbound[key]
	if !ok {
		r = &homaRecv{
			src:      src,
			id:       frag.MsgID,
			total:    frag.Total,
			bytes:    frag.Bytes,
			received: make(map[int]bool),
			granted:  unschedFrags,
			span:     frag.Span,
		}
		h.inbound[key] = r
		h.armTimer(key, r)
	}
	if r.done || r.received[frag.Index] {
		return
	}
	r.received[frag.Index] = true
	r.lastAct = h.eng.Now()
	if frag.Payload != nil {
		r.payload = frag.Payload
	}
	if len(r.received) == r.total {
		r.done = true
		h.eng.Cancel(r.timer)
		r.timer = sim.NoEvent
		h.sendCtrl(src, ctrlMsg{Op: doneOp, MsgID: r.id})
		delete(h.inbound, key)
		h.stats.Delivered++
		h.deliverQ.push(delivery{src: src, msg: Message{Payload: r.payload, Bytes: r.bytes, Span: r.span}})
		h.eng.After(h.overhead, "homa.deliver", h.deliverFn)
		return
	}
	h.grantSRPT()
}

// grantSRPT releases more fragments for the inbound message with the
// fewest remaining fragments (shortest remaining processing time).
func (h *homaEndpoint) grantSRPT() {
	var best *homaRecv
	bestRem := int(^uint(0) >> 1)
	//hyperlint:allow(maprange) selection is totally ordered by (remaining, id): the id tie-break makes the winner independent of visit order
	for _, r := range h.inbound {
		if r.done || r.granted >= r.total {
			continue
		}
		rem := r.total - len(r.received)
		if rem < bestRem || (rem == bestRem && best != nil && r.id < best.id) {
			bestRem = rem
			best = r
		}
	}
	if best == nil {
		return
	}
	want := len(best.received) + grantWindow
	if want > best.total {
		want = best.total
	}
	if want > best.granted {
		best.granted = want
		h.sendCtrl(best.src, ctrlMsg{Op: grantOp, MsgID: best.id, Seq: uint64(want)})
	}
}

// armTimer installs the loss-recovery timer: if a message stalls, name
// the exact fragments still missing (capped per round) so the sender
// retransmits only those, and refresh the grant in case it was dropped.
// The period is jittered so concurrent inbound messages do not
// synchronize their recovery bursts.
func (h *homaEndpoint) armTimer(key homaKey, r *homaRecv) {
	period := homaRTO + h.eng.Rand().Duration(0, homaRTO/4)
	r.timer = h.eng.After(period, "homa.rto", func() {
		if r.done {
			return
		}
		if h.eng.Now().Sub(r.lastAct) >= homaRTO {
			horizon := r.granted
			if horizon > r.total {
				horizon = r.total
			}
			var missing []int
			for i := 0; i < horizon && len(missing) < grantWindow; i++ {
				if !r.received[i] {
					missing = append(missing, i)
				}
			}
			if len(missing) > 0 {
				h.sendCtrl(r.src, ctrlMsg{Op: resendOp, MsgID: r.id, Missing: missing})
			} else if r.granted < r.total {
				// Everything granted has arrived but the grant itself may
				// have been lost; re-issue it.
				h.sendCtrl(r.src, ctrlMsg{Op: grantOp, MsgID: r.id, Seq: uint64(minInt(r.total, len(r.received)+grantWindow))})
			}
		}
		h.armTimer(key, r)
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (h *homaEndpoint) fireDeliver() {
	d := h.deliverQ.pop()
	if h.handler != nil {
		h.handler(d.src, d.msg)
	}
}

func (h *homaEndpoint) sendCtrl(dst netsim.Addr, m ctrlMsg) {
	hdr := encodeCtrl(h.hdrs, m)
	if err := h.nic.Send(netsim.Frame{Dst: dst, Buf: hdr, Bytes: headerBytes}); err != nil {
		hdr.Release()
	}
	h.stats.CtrlFrames++
}
