package ebpf

// Closure-compiled backend. After a program is loaded (and normally
// verified), the VM lowers it into basic blocks, fuses common sequences
// into superinstructions, and emits closure-threaded code. Run
// dispatches to the compiled artifact by default; the interpreter
// remains the reference implementation (RunInterpreted) and the
// fallback for programs the compiler declines (back-edges, overlong
// programs).
//
// Lowering pipeline per block:
//   - error-free register ops (ALU, endian, LDDW) are pre-decoded into
//     µop runs (uops.go) executed by one switch loop — no per-insn
//     closure dispatch;
//   - a block-local constant folder evaluates µops whose operands are
//     all known (using the runtime µop executor itself, so folded and
//     executed results cannot diverge), materializing constants lazily
//     at their first runtime consumer; constants dead at block exit
//     (per a whole-program liveness pass) are never written at all;
//   - conditional branches over known constants resolve statically;
//   - runs of loads off one base fuse into a single bounds check, and
//     a load adjacent to a conditional branch fuses into the
//     terminator; loads/stores carry inline ctx/stack fast paths;
//   - helper calls are devirtualized at compile time, with direct fast
//     paths for the built-in map helpers.
//
// Equivalence contract with the interpreter, relied on by the
// differential tests in compile_test.go:
//   - identical r0 result and identical final map/window state;
//   - identical Steps, TotalSteps, and HelperCalls accounting at run
//     boundaries, including on error paths (the interpreter charges a
//     step before executing the faulting instruction);
//   - identical error classes and messages (ErrBadMemAccess,
//     ErrUnknownHelper, ErrBadInstruction, ErrFellOffEnd, helper
//     wrapping);
//   - identical r1-r5 clobbering on helper calls.
//
// Step accounting is batched: entering a block charges every
// instruction on the block's success path at once; a faulting operation
// refunds the instructions that never executed (its static "overshoot")
// before returning the error. TotalSteps is folded in once per run.

import "fmt"

// regFile is the preallocated register file a compiled program runs on.
// It is sized to 16 (not NumRegs) so that hot-path register indexes can
// be masked with &15, which lets the compiler prove away every bounds
// check; slots 11-15 are never addressed by lowered code (register
// fields are 0-10 everywhere a program can construct them).
type regFile = [16]uint64

// fallOp is a fallible operation: memory access, helper call, atomic,
// or an unsupported instruction that faults when reached.
type fallOp func(vm *VM, r *regFile) error

// step is one compiled body operation: a µop run or a fallible op.
type step struct {
	ops  []uop
	fall fallOp
}

// Terminator sentinels returned in place of a block index.
const (
	termExit   = -1 // return r[R0]
	termOffEnd = -2 // ErrFellOffEnd
)

// cblock is one basic block: straight-line body plus a terminator.
type cblock struct {
	insns int64 // instructions retired on the success path (body + counted terminator)
	body  []step
	// term decides the next block (or a sentinel). nil means a static
	// transfer to next (fallthrough, ja, or a folded branch).
	term func(vm *VM, r *regFile) (int, error)
	next int
	// retKnown marks a termExit block whose return value is a
	// compile-time constant (ret); the r0 materialization is elided
	// because registers are unobservable after exit.
	ret      uint64
	retKnown bool
}

type compiledProg struct {
	blocks []cblock
	// zero lists the registers to clear on entry: registers the program
	// can read before writing (entry-liveness), minus r1/r2/r10 which
	// are always initialized. Everything else keeps stale bits that no
	// execution path can observe.
	zero []uint8
}

// runCompiled executes the compiled artifact with the same entry
// conventions as the interpreter.
func (vm *VM) runCompiled(ctx []byte) (uint64, error) {
	vm.ctx = ctx
	cp := vm.compiled
	r := &vm.regs
	for _, d := range cp.zero {
		r[d&15] = 0
	}
	r[R1] = ctxBase
	r[R2] = uint64(len(ctx))
	r[R10] = stackBase + StackSize
	// The interpreter zeroes the stack every run. Stack contents are
	// observable only after something wrote to it (program stores or
	// helper WriteBytes, both of which clear stackClean), so a
	// still-clean stack can skip the memclr with identical semantics.
	if !vm.stackClean {
		vm.stack = [StackSize]byte{}
		vm.stackClean = true
	}
	vm.Steps = 0

	bi := 0
	for {
		b := &cp.blocks[bi]
		vm.Steps += b.insns
		for i := range b.body {
			st := &b.body[i]
			if st.fall == nil {
				runUops(r, st.ops)
				continue
			}
			if err := st.fall(vm, r); err != nil {
				vm.TotalSteps += vm.Steps
				return 0, err
			}
		}
		next := b.next
		if b.term != nil {
			var err error
			next, err = b.term(vm, r)
			if err != nil {
				vm.TotalSteps += vm.Steps
				return 0, err
			}
		}
		if next < 0 {
			vm.TotalSteps += vm.Steps
			if next == termExit {
				// term closures only ever return real block indexes, so a
				// termExit here came from b.next and b's ret fields apply.
				if b.retKnown {
					return b.ret, nil
				}
				return r[R0], nil
			}
			return 0, ErrFellOffEnd
		}
		bi = next
	}
}

// compile lowers vm.prog into a compiledProg, or returns nil when the
// program is outside the compiler's domain (back-edges, which only the
// interpreter's step limit can bound, or programs long enough to trip
// StepLimit on a straight path).
func compile(vm *VM) *compiledProg {
	prog, targets := vm.prog, vm.targets
	n := len(prog)
	if n == 0 || n > StepLimit {
		return nil
	}
	for i, t := range targets {
		if t >= 0 && t <= i {
			return nil // back-edge: interpreter enforces the step limit
		}
	}

	// Block leaders: entry, every jump target, and every instruction
	// after a control transfer.
	leader := make([]bool, n)
	leader[0] = true
	for i, ins := range prog {
		if !isTerminator(ins) {
			continue
		}
		if t := targets[i]; t >= 0 {
			leader[t] = true
		}
		if i+1 < n {
			leader[i+1] = true
		}
	}
	blockOf := make([]int, n+1)
	nblocks := 0
	for i := 0; i < n; i++ {
		if leader[i] {
			nblocks++
		}
		blockOf[i] = nblocks - 1
	}
	blockOf[n] = termOffEnd

	starts := make([]int, nblocks+1)
	bi := 0
	for i := 0; i < n; i++ {
		if leader[i] {
			starts[bi] = i
			bi++
		}
	}
	starts[nblocks] = n

	liveIn, liveOut := liveness(prog, targets, blockOf, starts)

	cp := &compiledProg{blocks: make([]cblock, nblocks)}
	for bi := 0; bi < nblocks; bi++ {
		cp.blocks[bi] = compileBlock(vm, prog, targets, blockOf, starts[bi], starts[bi+1], liveOut[bi])
	}

	// Chain-merge: a block with a static successor (fallthrough, ja, or
	// a constant-folded branch) absorbs it when its own body cannot
	// fault — µop runs never return early, so the batched step charge
	// stays exact: on a fault inside the absorbed tail, the refund is
	// relative to the tail's own instruction count, which composes.
	// Processing bottom-up (successors have higher indexes) resolves
	// whole chains in one pass; absorbed blocks stay in the slice for
	// their other predecessors.
	for bi := nblocks - 1; bi >= 0; bi-- {
		b := &cp.blocks[bi]
		for b.term == nil && b.next >= 0 && !hasFall(b.body) {
			y := &cp.blocks[b.next]
			b.insns += y.insns
			b.body = mergeBodies(b.body, y.body)
			b.term = y.term
			b.next = y.next
		}
	}

	// Exit-value peephole: a block reaching exit whose final µop is
	// "mov r0, C" returns C without touching the register file — after
	// exit, registers are unobservable, so the store is dead. (Merged
	// bodies copy step headers, so trimming here never aliases a block
	// still reachable by another path.)
	for bi := range cp.blocks {
		b := &cp.blocks[bi]
		if b.term != nil || b.next != termExit || len(b.body) == 0 {
			continue
		}
		st := &b.body[len(b.body)-1]
		if st.fall != nil || len(st.ops) == 0 {
			continue
		}
		lo := st.ops[len(st.ops)-1]
		if lo.k != kMovI || lo.d != R0 {
			continue
		}
		b.ret, b.retKnown = lo.iv, true
		st.ops = st.ops[:len(st.ops)-1]
		// With the return value pinned, any trailing run of µops whose
		// destination is r0 is dead: µops write only their destination,
		// and nothing after them reads r0.
		for len(st.ops) > 0 && st.ops[len(st.ops)-1].d == R0 {
			st.ops = st.ops[:len(st.ops)-1]
		}
		if len(st.ops) == 0 {
			b.body = b.body[:len(b.body)-1]
		}
	}

	for d := uint8(0); d < NumRegs; d++ {
		if liveIn[0]&rbit(d) != 0 && d != R1 && d != R2 && d != R10 {
			cp.zero = append(cp.zero, d)
		}
	}
	return cp
}

func hasFall(body []step) bool {
	for i := range body {
		if body[i].fall != nil {
			return true
		}
	}
	return false
}

// mergeBodies concatenates two block bodies, joining µop runs at the
// seam so the merged block keeps a single dispatch per run.
func mergeBodies(a, b []step) []step {
	out := append([]step(nil), a...)
	if len(out) > 0 && len(b) > 0 && out[len(out)-1].fall == nil && b[0].fall == nil {
		joined := append(append([]uop(nil), out[len(out)-1].ops...), b[0].ops...)
		out[len(out)-1] = step{ops: joined}
		b = b[1:]
	}
	return append(out, b...)
}

// isTerminator reports whether ins ends a basic block (jump or exit; a
// helper call does not).
func isTerminator(ins Instruction) bool {
	cls := ins.Class()
	if cls != ClassJMP && cls != ClassJMP32 {
		return false
	}
	return ins.Op&0xf0 != JmpCall
}

func rbit(d uint8) uint16 { return 1 << d }

// insReads returns the registers ins reads on its success path.
func insReads(ins Instruction) uint16 {
	if ins.IsLDDW() {
		return 0
	}
	switch ins.Class() {
	case ClassALU, ClassALU64:
		if ins.IsEndian() {
			return rbit(ins.Dst)
		}
		m := uint16(0)
		if ins.Op&0xf0 != ALUMov {
			m |= rbit(ins.Dst)
		}
		if ins.Op&SrcReg != 0 {
			m |= rbit(ins.Src)
		}
		return m
	case ClassJMP, ClassJMP32:
		switch ins.Op & 0xf0 {
		case JmpExit:
			return rbit(R0)
		case JmpCall:
			return rbit(R1) | rbit(R2) | rbit(R3) | rbit(R4) | rbit(R5)
		case JmpA:
			return 0
		default:
			m := rbit(ins.Dst)
			if ins.Op&SrcReg != 0 {
				m |= rbit(ins.Src)
			}
			return m
		}
	case ClassLDX:
		return rbit(ins.Src)
	case ClassSTX:
		m := rbit(ins.Dst) | rbit(ins.Src)
		if ins.IsAtomic() && ins.Imm == AtomicCmpXchg {
			m |= rbit(R0)
		}
		return m
	case ClassST:
		return rbit(ins.Dst)
	}
	return 0
}

// insWrites returns the registers ins writes on its success path.
func insWrites(ins Instruction) uint16 {
	if ins.IsLDDW() {
		return rbit(ins.Dst)
	}
	switch ins.Class() {
	case ClassALU, ClassALU64:
		return rbit(ins.Dst)
	case ClassJMP, ClassJMP32:
		if ins.Op&0xf0 == JmpCall {
			return rbit(R0) | rbit(R1) | rbit(R2) | rbit(R3) | rbit(R4) | rbit(R5)
		}
		return 0
	case ClassLDX:
		return rbit(ins.Dst)
	case ClassSTX:
		if ins.IsAtomic() {
			m := uint16(0)
			if ins.Imm == AtomicCmpXchg {
				m |= rbit(R0)
			} else if ins.Imm&AtomicFetch != 0 {
				m |= rbit(ins.Src)
			}
			return m
		}
	}
	return 0
}

// liveness computes per-block live-in/live-out register sets. The CFG
// is forward-only (compile rejects back-edges), so one reverse pass in
// block order is exact.
func liveness(prog []Instruction, targets []int, blockOf []int, starts []int) (liveIn, liveOut []uint16) {
	nblocks := len(starts) - 1
	n := len(prog)
	use := make([]uint16, nblocks)
	def := make([]uint16, nblocks)
	for b := 0; b < nblocks; b++ {
		for i := starts[b]; i < starts[b+1]; i++ {
			use[b] |= insReads(prog[i]) &^ def[b]
			def[b] |= insWrites(prog[i])
		}
	}
	liveIn = make([]uint16, nblocks)
	liveOut = make([]uint16, nblocks)
	for b := nblocks - 1; b >= 0; b-- {
		last := starts[b+1] - 1
		ins := prog[last]
		out := uint16(0)
		if isTerminator(ins) {
			op := ins.Op & 0xf0
			if op != JmpExit {
				if t := blockOf[targets[last]]; t >= 0 {
					out |= liveIn[t]
				}
				if op != JmpA && last+1 < n {
					out |= liveIn[blockOf[last+1]]
				}
			}
		} else if starts[b+1] < n {
			out |= liveIn[blockOf[starts[b+1]]]
		}
		liveOut[b] = out
		liveIn[b] = use[b] | (out &^ def[b])
	}
	return liveIn, liveOut
}

// bcomp builds one block's body with block-local constant folding.
// known marks registers holding a compile-time constant; mat marks
// known registers whose constant has already been written to the
// runtime register file. Known-but-unmaterialized constants are flushed
// lazily at their first runtime consumer, or dropped entirely if
// nothing live ever reads them.
type bcomp struct {
	known uint16
	mat   uint16
	konst regFile
	ops   []uop
	body  []step
}

func (bc *bcomp) isKnown(d uint8) bool { return bc.known&rbit(d) != 0 }

func (bc *bcomp) setConst(d uint8, v uint64) {
	bc.konst[d] = v
	bc.known |= rbit(d)
	bc.mat &^= rbit(d)
}

// setConstMat records a constant that the runtime already materializes
// itself (e.g. the call closures zero r1-r5).
func (bc *bcomp) setConstMat(d uint8, v uint64) {
	bc.konst[d] = v
	bc.known |= rbit(d)
	bc.mat |= rbit(d)
}

func (bc *bcomp) clobber(d uint8) {
	bc.known &^= rbit(d)
	bc.mat &^= rbit(d)
}

// flush materializes d's pending constant into the register file.
func (bc *bcomp) flush(d uint8) {
	if bc.known&rbit(d) != 0 && bc.mat&rbit(d) == 0 {
		bc.ops = append(bc.ops, uop{k: kMovI, d: d, iv: bc.konst[d]})
		bc.mat |= rbit(d)
	}
}

func (bc *bcomp) flushMask(m uint16) {
	for d := uint8(0); d < NumRegs; d++ {
		if m&rbit(d) != 0 {
			bc.flush(d)
		}
	}
}

// cut ends the pending µop run, emitting it as one body step.
func (bc *bcomp) cut() {
	if len(bc.ops) > 0 {
		bc.body = append(bc.body, step{ops: bc.ops})
		bc.ops = nil
	}
}

// push adds one register-only µop, folding it when every operand is a
// known constant. Folding runs the op through the runtime executor on a
// scratch register file, so folded results are the executed results.
func (bc *bcomp) push(op uop) {
	rd, rs := uopReadsD(op.k), uopReadsS(op.k)
	if (!rd || bc.isKnown(op.d)) && (!rs || bc.isKnown(op.s)) {
		var tmp regFile
		if rd {
			tmp[op.d] = bc.konst[op.d]
		}
		if rs {
			tmp[op.s] = bc.konst[op.s]
		}
		one := [1]uop{op}
		runUops(&tmp, one[:])
		bc.setConst(op.d, tmp[op.d])
		return
	}
	if rd {
		bc.flush(op.d)
	}
	if rs {
		bc.flush(op.s)
	}
	bc.clobber(op.d)
	bc.ops = append(bc.ops, op)
}

// pushFall appends a fallible op after materializing the registers it
// reads and cutting the pending µop run.
func (bc *bcomp) pushFall(reads uint16, f fallOp) {
	bc.flushMask(reads)
	bc.cut()
	bc.body = append(bc.body, step{fall: f})
}

// compileBlock lowers instructions [start, end) into one basic block.
func compileBlock(vm *VM, prog []Instruction, targets []int, blockOf []int, start, end int, liveOut uint16) cblock {
	b := cblock{insns: int64(end - start), next: blockOf[end]}
	last := end - 1
	hasTerm := isTerminator(prog[last])
	bodyEnd := end
	if hasTerm {
		bodyEnd = last
	}

	bc := &bcomp{}

	// Fused load→compare→branch: the last load before the block's
	// conditional branch becomes part of the terminator, sinking past
	// any intervening pure register ops that neither touch the load's
	// base/destination nor read its result. Reordering is sound because
	// registers are unobservable outside the VM: the sunk ops' inputs
	// and the load's address are unaffected, and on a load fault the
	// extra register writes are dead. The fault refund stays keyed to
	// the load's original program position.
	var fusedTerm func(vm *VM, r *regFile) (int, error)
	sinkIdx := -1
	if hasTerm {
		L := bodyEnd - 1
		for L >= start {
			if _, _, ok := lowerRegIns(prog[L]); !ok {
				break
			}
			L--
		}
		if L >= start && prog[L].Class() == ClassLDX && prog[L].SizeBytes() != 0 {
			ld := prog[L]
			ok := true
			for j := L + 1; j < bodyEnd; j++ {
				if insWrites(prog[j])&(rbit(ld.Dst)|rbit(ld.Src)) != 0 ||
					insReads(prog[j])&rbit(ld.Dst) != 0 {
					ok = false
					break
				}
			}
			if ok {
				refund := b.insns - int64(L-start+1)
				if t := fuseLoadBranch(prog, targets, blockOf, L, last, refund); t != nil {
					fusedTerm = t
					sinkIdx = L
				}
			}
		}
	}

	for i := start; i < bodyEnd; {
		if i == sinkIdx {
			i++
			continue
		}
		ins := prog[i]
		if op, emit, ok := lowerRegIns(ins); ok {
			// emit=false is an architectural no-op (le64, mod64 by a
			// constant zero): register state is unchanged.
			if emit {
				bc.push(op)
			}
			i++
			continue
		}
		// overshoot: instructions charged on block entry that this op's
		// fault means never executed (everything after it, terminator
		// included).
		overshoot := b.insns - int64(i-start+1)
		gEnd := bodyEnd
		if sinkIdx >= 0 && sinkIdx < gEnd {
			gEnd = sinkIdx // the sunk load executes in the terminator
		}
		if g := compileLoadGroup(prog, start, i, gEnd, b.insns); g.op != nil {
			bc.pushFall(rbit(ins.Src), g.op)
			for k := 0; k < g.count; k++ {
				bc.clobber(prog[i+k].Dst)
			}
			i += g.count
			continue
		}
		bc.pushFall(insReads(ins), compileFallOp(vm, ins, overshoot))
		// Post-state: registers the op writes at runtime.
		switch ins.Class() {
		case ClassLDX:
			bc.clobber(ins.Dst)
		case ClassSTX:
			if ins.IsAtomic() {
				if ins.Imm == AtomicCmpXchg {
					bc.clobber(R0)
				} else if ins.Imm&AtomicFetch != 0 {
					bc.clobber(ins.Src)
				}
			}
		case ClassJMP, ClassJMP32: // helper call
			bc.clobber(R0)
			for _, d := range [...]uint8{R1, R2, R3, R4, R5} {
				bc.setConstMat(d, 0) // call closures zero r1-r5 themselves
			}
		}
		i++
	}

	switch {
	case fusedTerm != nil:
		jmp := prog[last]
		reads := insReads(prog[sinkIdx]) | rbit(jmp.Dst)
		if jmp.Op&SrcReg != 0 {
			reads |= rbit(jmp.Src)
		}
		bc.flushMask(reads | liveOut)
		bc.cut()
		b.term = fusedTerm
	case !hasTerm:
		bc.flushMask(liveOut)
		bc.cut()
		b.next = blockOf[end] // falls through; blockOf[n] is termOffEnd
	default:
		ins := prog[last]
		op := ins.Op & 0xf0
		switch op {
		case JmpExit:
			bc.flush(R0)
			bc.cut()
			b.next = termExit
		case JmpA:
			bc.flushMask(liveOut)
			bc.cut()
			b.next = blockOf[targets[last]]
		default:
			pred := jumpPred(ins)
			if pred == nil {
				// Unsupported jump op: counted, then faults. Pending
				// constants are dead on the error path.
				bc.cut()
				err := fmt.Errorf("%w: jmp op %#x", ErrBadInstruction, ins.Op)
				b.term = func(vm *VM, r *regFile) (int, error) { return 0, err }
				break
			}
			taken := blockOf[targets[last]]
			fall := termOffEnd
			if last+1 < len(prog) {
				fall = blockOf[last+1]
			}
			readsS := ins.Op&SrcReg != 0
			if bc.isKnown(ins.Dst) && (!readsS || bc.isKnown(ins.Src)) {
				// Both operands constant: resolve the branch statically
				// (evaluated with the runtime predicate itself).
				var tmp regFile
				tmp[ins.Dst] = bc.konst[ins.Dst]
				if readsS {
					tmp[ins.Src] = bc.konst[ins.Src]
				}
				if pred(&tmp) {
					b.next = taken
				} else {
					b.next = fall
				}
				bc.flushMask(liveOut)
				bc.cut()
				break
			}
			bc.flush(ins.Dst)
			if readsS {
				bc.flush(ins.Src)
			}
			bc.flushMask(liveOut)
			bc.cut()
			b.term = func(vm *VM, r *regFile) (int, error) {
				if pred(r) {
					return taken, nil
				}
				return fall, nil
			}
		}
	}
	b.body = bc.body
	return b
}

// errOp builds a fallible op that always faults with err, refunding the
// uncharged tail of the block.
func errOp(err error, overshoot int64) fallOp {
	return func(vm *VM, r *regFile) error {
		vm.Steps -= overshoot
		return err
	}
}

// compileFallOp lowers a fallible (memory/helper/atomic/unsupported)
// instruction.
func compileFallOp(vm *VM, ins Instruction, overshoot int64) fallOp {
	switch ins.Class() {
	case ClassALU, ClassALU64:
		if ins.IsEndian() {
			return errOp(fmt.Errorf("%w: endian width %d", ErrBadInstruction, ins.Imm), overshoot)
		}
		return errOp(fmt.Errorf("%w: alu op %#x", ErrBadInstruction, ins.Op), overshoot)
	case ClassJMP, ClassJMP32:
		if ins.Op&0xf0 == JmpCall {
			return compileCall(vm, ins, overshoot)
		}
		// Unsupported jump op reached mid-block (never emitted as a
		// terminator because compileBlock rejects it first).
		return errOp(fmt.Errorf("%w: jmp op %#x", ErrBadInstruction, ins.Op), overshoot)
	case ClassLD:
		return errOp(fmt.Errorf("%w: ld op %#x", ErrBadInstruction, ins.Op), overshoot)
	case ClassLDX:
		return compileLoad(ins, overshoot)
	case ClassSTX:
		if ins.IsAtomic() {
			return compileAtomic(ins, overshoot)
		}
		return compileStoreReg(ins, overshoot)
	case ClassST:
		return compileStoreImm(ins, overshoot)
	}
	return errOp(fmt.Errorf("%w: class %#x", ErrBadInstruction, ins.Op), overshoot)
}

// fuseLoadBranch builds a load→compare→branch superinstruction when the
// instruction before a conditional branch is a plain LDX. The load's
// destination is still written (later blocks may read it).
func fuseLoadBranch(prog []Instruction, targets []int, blockOf []int, loadIdx, jmpIdx int, refund int64) func(vm *VM, r *regFile) (int, error) {
	ld := prog[loadIdx]
	if ld.Class() != ClassLDX || ld.SizeBytes() == 0 {
		return nil
	}
	jmp := prog[jmpIdx]
	op := jmp.Op & 0xf0
	if op == JmpExit || op == JmpCall || op == JmpA {
		return nil
	}
	pred := jumpPred(jmp)
	if pred == nil {
		return nil
	}
	taken := blockOf[targets[jmpIdx]]
	fall := termOffEnd
	if jmpIdx+1 < len(prog) {
		fall = blockOf[jmpIdx+1]
	}
	d, s, off := ld.Dst, ld.Src, uint64(int64(ld.Off))
	size := uint64(ld.SizeBytes())
	// Specialized form for the dominant filter pattern — a 64-bit
	// eq/ne-immediate test on the register just loaded — comparing the
	// loaded value directly instead of through the predicate closure.
	if jmp.Class() == ClassJMP && jmp.Op&SrcReg == 0 && jmp.Dst == d &&
		(op == JmpEq || op == JmpNe) {
		iv := uint64(int64(jmp.Imm))
		eq := op == JmpEq
		return func(vm *VM, r *regFile) (int, error) {
			a := r[s&15] + off
			var v uint64
			if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+size <= uint64(len(vm.ctx)) {
				v = loadLE(vm.ctx[o:], int(size))
			} else if o := a - stackBase; o < StackSize && o+size <= StackSize {
				v = loadLE(vm.stack[o:], int(size))
			} else {
				var err error
				v, err = vm.memLoad(a, int(size))
				if err != nil {
					vm.Steps -= refund
					return 0, err
				}
			}
			r[d&15] = v
			if (v == iv) == eq {
				return taken, nil
			}
			return fall, nil
		}
	}
	return func(vm *VM, r *regFile) (int, error) {
		a := r[s&15] + off
		var v uint64
		if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+size <= uint64(len(vm.ctx)) {
			v = loadLE(vm.ctx[o:], int(size))
		} else if o := a - stackBase; o < StackSize && o+size <= StackSize {
			v = loadLE(vm.stack[o:], int(size))
		} else {
			var err error
			v, err = vm.memLoad(a, int(size))
			if err != nil {
				// Everything past the load's original position was
				// pre-charged but never executed.
				vm.Steps -= refund
				return 0, err
			}
		}
		r[d&15] = v
		if pred(r) {
			return taken, nil
		}
		return fall, nil
	}
}

func loadLE(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(b[1])<<8 | uint64(b[0])
	case 4:
		return uint64(uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]))
	default:
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	}
}

// jumpPred specializes a conditional jump's predicate, replicating the
// interpreter's operand handling (JMP32 compares zero-extended 32-bit
// values). Returns nil for unknown jump ops.
func jumpPred(ins Instruction) func(r *regFile) bool {
	d := ins.Dst
	is32 := ins.Class() == ClassJMP32
	op := ins.Op & 0xf0
	if ins.Op&SrcReg != 0 {
		s := ins.Src
		if is32 {
			switch op {
			case JmpEq:
				return func(r *regFile) bool { return uint32(r[d&15]) == uint32(r[s&15]) }
			case JmpNe:
				return func(r *regFile) bool { return uint32(r[d&15]) != uint32(r[s&15]) }
			case JmpGt:
				return func(r *regFile) bool { return uint32(r[d&15]) > uint32(r[s&15]) }
			case JmpGe:
				return func(r *regFile) bool { return uint32(r[d&15]) >= uint32(r[s&15]) }
			case JmpLt:
				return func(r *regFile) bool { return uint32(r[d&15]) < uint32(r[s&15]) }
			case JmpLe:
				return func(r *regFile) bool { return uint32(r[d&15]) <= uint32(r[s&15]) }
			case JmpSet:
				return func(r *regFile) bool { return uint32(r[d&15])&uint32(r[s&15]) != 0 }
			case JmpSGt:
				return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) > int64(uint64(uint32(r[s&15]))) }
			case JmpSGe:
				return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) >= int64(uint64(uint32(r[s&15]))) }
			case JmpSLt:
				return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) < int64(uint64(uint32(r[s&15]))) }
			case JmpSLe:
				return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) <= int64(uint64(uint32(r[s&15]))) }
			}
			return nil
		}
		switch op {
		case JmpEq:
			return func(r *regFile) bool { return r[d&15] == r[s&15] }
		case JmpNe:
			return func(r *regFile) bool { return r[d&15] != r[s&15] }
		case JmpGt:
			return func(r *regFile) bool { return r[d&15] > r[s&15] }
		case JmpGe:
			return func(r *regFile) bool { return r[d&15] >= r[s&15] }
		case JmpLt:
			return func(r *regFile) bool { return r[d&15] < r[s&15] }
		case JmpLe:
			return func(r *regFile) bool { return r[d&15] <= r[s&15] }
		case JmpSet:
			return func(r *regFile) bool { return r[d&15]&r[s&15] != 0 }
		case JmpSGt:
			return func(r *regFile) bool { return int64(r[d&15]) > int64(r[s&15]) }
		case JmpSGe:
			return func(r *regFile) bool { return int64(r[d&15]) >= int64(r[s&15]) }
		case JmpSLt:
			return func(r *regFile) bool { return int64(r[d&15]) < int64(r[s&15]) }
		case JmpSLe:
			return func(r *regFile) bool { return int64(r[d&15]) <= int64(r[s&15]) }
		}
		return nil
	}
	if is32 {
		iv := uint32(uint64(int64(ins.Imm)))
		switch op {
		case JmpEq:
			return func(r *regFile) bool { return uint32(r[d&15]) == iv }
		case JmpNe:
			return func(r *regFile) bool { return uint32(r[d&15]) != iv }
		case JmpGt:
			return func(r *regFile) bool { return uint32(r[d&15]) > iv }
		case JmpGe:
			return func(r *regFile) bool { return uint32(r[d&15]) >= iv }
		case JmpLt:
			return func(r *regFile) bool { return uint32(r[d&15]) < iv }
		case JmpLe:
			return func(r *regFile) bool { return uint32(r[d&15]) <= iv }
		case JmpSet:
			return func(r *regFile) bool { return uint32(r[d&15])&iv != 0 }
		case JmpSGt:
			return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) > int64(uint64(iv)) }
		case JmpSGe:
			return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) >= int64(uint64(iv)) }
		case JmpSLt:
			return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) < int64(uint64(iv)) }
		case JmpSLe:
			return func(r *regFile) bool { return int64(uint64(uint32(r[d&15]))) <= int64(uint64(iv)) }
		}
		return nil
	}
	iv := uint64(int64(ins.Imm))
	switch op {
	case JmpEq:
		return func(r *regFile) bool { return r[d&15] == iv }
	case JmpNe:
		return func(r *regFile) bool { return r[d&15] != iv }
	case JmpGt:
		return func(r *regFile) bool { return r[d&15] > iv }
	case JmpGe:
		return func(r *regFile) bool { return r[d&15] >= iv }
	case JmpLt:
		return func(r *regFile) bool { return r[d&15] < iv }
	case JmpLe:
		return func(r *regFile) bool { return r[d&15] <= iv }
	case JmpSet:
		return func(r *regFile) bool { return r[d&15]&iv != 0 }
	case JmpSGt:
		return func(r *regFile) bool { return int64(r[d&15]) > int64(iv) }
	case JmpSGe:
		return func(r *regFile) bool { return int64(r[d&15]) >= int64(iv) }
	case JmpSLt:
		return func(r *regFile) bool { return int64(r[d&15]) < int64(iv) }
	case JmpSLe:
		return func(r *regFile) bool { return int64(r[d&15]) <= int64(iv) }
	}
	return nil
}
