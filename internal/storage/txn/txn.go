// Package txn provides atomic multi-segment writes with a redo log —
// the "transactions" box in Figure 2 (after Beyond Block I/O's atomic
// writes): a transaction buffers writes, commits by hardening a
// checksummed redo record, applies in place, and marks the record
// applied. Recovery replays committed-but-unapplied records, so a crash
// between commit and apply never tears a multi-object update.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hyperion/internal/seg"
)

// Errors.
var (
	ErrTxnClosed = errors.New("txn: transaction already committed or aborted")
	ErrTooLarge  = errors.New("txn: transaction exceeds log record size")
	ErrCorrupt   = errors.New("txn: corrupt log")
)

const (
	recMagic      = 0x54584e31 // "TXN1"
	appliedMagic  = 0x54584e41 // "TXNA"
	logChunkBytes = 1 << 20
	maxRecBytes   = 256 << 10
)

// Manager owns the redo log.
type Manager struct {
	v        *seg.SyncView
	meta     seg.ObjectID
	chunks   []seg.ObjectID
	tailOff  int64
	nextLo   uint64
	nextTxid uint64

	Commits, Aborts, Replays int64
}

const metaMagic = 0x54584d31 // "TXM1"

// NewManager creates a transaction manager with its log rooted at
// metaID (always durable: a volatile redo log is pointless).
func NewManager(v *seg.SyncView, metaID seg.ObjectID) (*Manager, error) {
	m := &Manager{v: v, meta: metaID, nextLo: metaID.Lo + 1, nextTxid: 1}
	if _, err := v.Alloc(metaID, 4096, true, seg.HintAuto); err != nil {
		return nil, err
	}
	if err := m.addChunk(); err != nil {
		return nil, err
	}
	return m, m.writeMeta()
}

// Open reattaches to an existing log (call Recover afterwards).
func Open(v *seg.SyncView, metaID seg.ObjectID) (*Manager, error) {
	m := &Manager{v: v, meta: metaID}
	buf, err := v.ReadAt(metaID, 0, 4096)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf) != metaMagic {
		return nil, fmt.Errorf("%w: bad manager magic", ErrCorrupt)
	}
	m.nextLo = binary.LittleEndian.Uint64(buf[8:])
	m.tailOff = int64(binary.LittleEndian.Uint64(buf[16:]))
	m.nextTxid = binary.LittleEndian.Uint64(buf[24:])
	n := int(binary.LittleEndian.Uint32(buf[32:]))
	off := 40
	for i := 0; i < n; i++ {
		m.chunks = append(m.chunks, seg.ObjectID{
			Hi: binary.LittleEndian.Uint64(buf[off:]),
			Lo: binary.LittleEndian.Uint64(buf[off+8:]),
		})
		off += 16
	}
	return m, nil
}

func (m *Manager) writeMeta() error {
	buf := make([]byte, 4096)
	binary.LittleEndian.PutUint32(buf, metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], m.nextLo)
	binary.LittleEndian.PutUint64(buf[16:], uint64(m.tailOff))
	binary.LittleEndian.PutUint64(buf[24:], m.nextTxid)
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(m.chunks)))
	off := 40
	for _, c := range m.chunks {
		binary.LittleEndian.PutUint64(buf[off:], c.Hi)
		binary.LittleEndian.PutUint64(buf[off+8:], c.Lo)
		off += 16
	}
	return m.v.WriteAt(m.meta, 0, buf)
}

func (m *Manager) addChunk() error {
	id := seg.ObjectID{Hi: m.meta.Hi, Lo: m.nextLo}
	m.nextLo++
	if _, err := m.v.Alloc(id, logChunkBytes, true, seg.HintAuto); err != nil {
		return err
	}
	m.chunks = append(m.chunks, id)
	m.tailOff = 0
	return nil
}

func (m *Manager) appendLog(rec []byte) error {
	if m.tailOff+int64(len(rec)) > logChunkBytes {
		if err := m.addChunk(); err != nil {
			return err
		}
	}
	chunk := m.chunks[len(m.chunks)-1]
	if err := m.v.WriteAt(chunk, m.tailOff, rec); err != nil {
		return err
	}
	m.tailOff += int64(len(rec))
	return m.writeMeta()
}

// write is one buffered mutation.
type write struct {
	id   seg.ObjectID
	off  int64
	data []byte
}

// Txn is one transaction. Not safe for concurrent use.
type Txn struct {
	m      *Manager
	id     uint64
	writes []write
	closed bool
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	t := &Txn{m: m, id: m.nextTxid}
	m.nextTxid++
	return t
}

// Write buffers a mutation.
func (t *Txn) Write(id seg.ObjectID, off int64, data []byte) error {
	if t.closed {
		return ErrTxnClosed
	}
	t.writes = append(t.writes, write{id: id, off: off, data: append([]byte(nil), data...)})
	return nil
}

// Read observes current state overlaid with this transaction's buffered
// writes (read-your-writes).
func (t *Txn) Read(id seg.ObjectID, off, length int64) ([]byte, error) {
	if t.closed {
		return nil, ErrTxnClosed
	}
	base, err := t.m.v.ReadAt(id, off, length)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), base...)
	for _, w := range t.writes {
		if w.id != id {
			continue
		}
		// Overlap of [w.off, w.off+len) with [off, off+length).
		lo, hi := w.off, w.off+int64(len(w.data))
		if lo < off {
			lo = off
		}
		if hi > off+length {
			hi = off + length
		}
		if lo < hi {
			copy(out[lo-off:hi-off], w.data[lo-w.off:hi-w.off])
		}
	}
	return out, nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.closed = true
	t.m.Aborts++
}

// Commit hardens the redo record, applies all writes, and marks the
// record applied. After Commit returns, all writes are durable and
// atomic with respect to crash recovery.
func (t *Txn) Commit() error {
	if t.closed {
		return ErrTxnClosed
	}
	t.closed = true
	rec := encodeRecord(t.id, t.writes)
	if len(rec) > maxRecBytes {
		return ErrTooLarge
	}
	if err := t.m.appendLog(rec); err != nil {
		return err
	}
	// Apply in place.
	for _, w := range t.writes {
		if err := t.m.v.WriteAt(w.id, w.off, w.data); err != nil {
			return err
		}
	}
	// Applied marker.
	mark := make([]byte, 16)
	binary.LittleEndian.PutUint32(mark, appliedMagic)
	binary.LittleEndian.PutUint64(mark[4:], t.id)
	if err := t.m.appendLog(mark); err != nil {
		return err
	}
	t.m.Commits++
	return nil
}

// CommitWithoutApply hardens the record but "crashes" before applying —
// test hook for recovery.
func (t *Txn) CommitWithoutApply() error {
	if t.closed {
		return ErrTxnClosed
	}
	t.closed = true
	rec := encodeRecord(t.id, t.writes)
	if len(rec) > maxRecBytes {
		return ErrTooLarge
	}
	return t.m.appendLog(rec)
}

func encodeRecord(txid uint64, writes []write) []byte {
	size := 20
	for _, w := range writes {
		size += 28 + len(w.data)
	}
	size += 4 // crc
	rec := make([]byte, size)
	binary.LittleEndian.PutUint32(rec, recMagic)
	binary.LittleEndian.PutUint64(rec[4:], txid)
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(writes)))
	binary.LittleEndian.PutUint32(rec[16:], uint32(size))
	off := 20
	for _, w := range writes {
		w.id.EncodeTo(rec[off:])
		binary.LittleEndian.PutUint64(rec[off+16:], uint64(w.off))
		binary.LittleEndian.PutUint32(rec[off+24:], uint32(len(w.data)))
		copy(rec[off+28:], w.data)
		off += 28 + len(w.data)
	}
	binary.LittleEndian.PutUint32(rec[off:], crc32.ChecksumIEEE(rec[:off]))
	return rec
}

// Recover replays committed-but-unapplied transactions. It returns the
// number of transactions replayed.
func (m *Manager) Recover() (int, error) {
	type pending struct {
		writes []write
	}
	committed := make(map[uint64]pending)
	applied := make(map[uint64]bool)
	var order []uint64

	for ci, chunk := range m.chunks {
		limit := int64(logChunkBytes)
		if ci == len(m.chunks)-1 {
			limit = m.tailOff
		}
		off := int64(0)
		for off+4 <= limit {
			hdr, err := m.v.ReadAt(chunk, off, 4)
			if err != nil {
				return 0, err
			}
			magic := binary.LittleEndian.Uint32(hdr)
			switch magic {
			case appliedMagic:
				buf, err := m.v.ReadAt(chunk, off, 16)
				if err != nil {
					return 0, err
				}
				applied[binary.LittleEndian.Uint64(buf[4:])] = true
				off += 16
			case recMagic:
				head, err := m.v.ReadAt(chunk, off, 20)
				if err != nil {
					return 0, err
				}
				txid := binary.LittleEndian.Uint64(head[4:])
				size := int64(binary.LittleEndian.Uint32(head[16:]))
				if size < 24 || off+size > limit {
					return 0, fmt.Errorf("%w: record size %d", ErrCorrupt, size)
				}
				rec, err := m.v.ReadAt(chunk, off, size)
				if err != nil {
					return 0, err
				}
				want := binary.LittleEndian.Uint32(rec[size-4:])
				if crc32.ChecksumIEEE(rec[:size-4]) != want {
					return 0, fmt.Errorf("%w: bad crc for txn %d", ErrCorrupt, txid)
				}
				nw := int(binary.LittleEndian.Uint32(rec[12:]))
				p := pending{}
				o := 20
				for i := 0; i < nw; i++ {
					var w write
					w.id = seg.DecodeID(rec[o:])
					w.off = int64(binary.LittleEndian.Uint64(rec[o+16:]))
					n := int(binary.LittleEndian.Uint32(rec[o+24:]))
					w.data = append([]byte(nil), rec[o+28:o+28+n]...)
					p.writes = append(p.writes, w)
					o += 28 + n
				}
				committed[txid] = p
				order = append(order, txid)
				off += size
			default:
				// End of valid records in this chunk.
				off = limit
			}
		}
	}
	replayed := 0
	for _, txid := range order {
		if applied[txid] {
			continue
		}
		for _, w := range committed[txid].writes {
			if err := m.v.WriteAt(w.id, w.off, w.data); err != nil {
				return replayed, err
			}
		}
		mark := make([]byte, 16)
		binary.LittleEndian.PutUint32(mark, appliedMagic)
		binary.LittleEndian.PutUint64(mark[4:], txid)
		if err := m.appendLog(mark); err != nil {
			return replayed, err
		}
		replayed++
		m.Replays++
	}
	return replayed, nil
}
