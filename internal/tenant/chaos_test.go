package tenant

import (
	"fmt"
	"reflect"
	"testing"

	"hyperion/internal/fabric"
	"hyperion/internal/fault"
	"hyperion/internal/sim"
)

// chaosRun drives 8 tenants over 5 slots with a 2 ms lease for 20 ms
// while the fault plane evicts slots at the given rate. It returns the
// per-tenant report plus the request ledger.
type chaosStats struct {
	rows                []Row
	accepted, resolved  int
	failures, evictions int64
}

func chaosRun(t *testing.T, seed uint64, rate float64, arm bool) chaosStats {
	t.Helper()
	eng := sim.NewEngine(seed)
	fab := fabric.New(eng, fabric.DefaultConfig(), "tag")
	cfg := DefaultConfig()
	cfg.Lease = 2 * sim.Millisecond
	c := New(eng, fab, cfg)
	horizon := sim.Time(20 * sim.Millisecond)
	c.SetHorizon(horizon)
	if arm {
		plan := fault.NewPlan(seed, "tenant").Set(fault.Evict, rate)
		// rate scales outage frequency: 1% ≈ one eviction per 2 ms of
		// up-time across the box, 5% ≈ one per 400 µs.
		meanUp := sim.Duration(0)
		if rate > 0 {
			meanUp = sim.Duration(float64(20*sim.Microsecond) / rate)
		} else {
			meanUp = sim.Millisecond
		}
		c.ArmEvictions(plan, horizon, meanUp, 300*sim.Microsecond)
	}
	st := chaosStats{}
	var ids []int
	for i := 0; i < 8; i++ {
		tn, err := c.Admit(Spec{
			Name:   fmt.Sprintf("t%02d", i),
			Weight: 1 + i%4,
			Image:  testImage(fmt.Sprintf("i%02d", i), 1+int64(i%3)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, tn.ID)
	}
	// Open-loop traffic: every tenant offers a request each 20 µs;
	// submit-time refusals (not active) are the client's retry signal.
	for ti := sim.Time(0); ti < horizon; ti = ti.Add(20 * sim.Microsecond) {
		eng.At(ti, "chaos.submit", func() {
			for _, id := range ids {
				err := c.Submit(id, nil, 128, func(err error) {
					st.resolved++
					if err != nil && !Retryable(err) {
						st.failures++
					}
				})
				if err == nil {
					st.accepted++
				} else if !Retryable(err) {
					t.Errorf("submit refused non-retryably: %v", err)
				}
			}
		})
	}
	eng.RunUntil(horizon)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("rate %v mid-run: %v", rate, err)
	}
	eng.Run()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("rate %v after drain: %v", rate, err)
	}
	st.rows = c.Report(horizon.Sub(sim.Time(0)))
	st.evictions = c.Evictions
	return st
}

func TestChaosEvictionSweep(t *testing.T) {
	for _, rate := range []float64{0, 0.01, 0.05} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			st := chaosRun(t, 1, rate, true)
			// Every accepted request resolves: retry-or-error, no hangs.
			if st.accepted != st.resolved {
				t.Fatalf("accepted %d but resolved %d — requests hung", st.accepted, st.resolved)
			}
			// Victims resolve retryably; nothing terminal in this run
			// (no departures).
			if st.failures != 0 {
				t.Fatalf("%d terminal failures under eviction chaos", st.failures)
			}
			if rate >= 0.05 && st.evictions == 0 {
				t.Fatal("5% eviction rate displaced nobody over 20 ms")
			}
		})
	}
}

func TestChaosZeroRateIsNoOp(t *testing.T) {
	// The PR-4 contract on the new plane: a zero-rate armed plan is
	// bit-identical to no plan at all.
	armed := chaosRun(t, 1, 0, true)
	bare := chaosRun(t, 1, 0, false)
	if armed.accepted != bare.accepted || armed.resolved != bare.resolved {
		t.Fatalf("zero-rate plan perturbed the ledger: %+v vs %+v", armed, bare)
	}
	if !reflect.DeepEqual(armed.rows, bare.rows) {
		t.Fatalf("zero-rate plan perturbed the report:\n%+v\n%+v", armed.rows, bare.rows)
	}
}

func TestChaosDeterministic(t *testing.T) {
	a := chaosRun(t, 7, 0.05, true)
	b := chaosRun(t, 7, 0.05, true)
	if a.accepted != b.accepted || a.resolved != b.resolved || a.evictions != b.evictions {
		t.Fatalf("chaos run not reproducible: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.rows, b.rows) {
		t.Fatal("chaos report not reproducible")
	}
}
