// Package rpc is the flexible RPC interface of §2.4 (after Willow):
// clients drive requests directly to the DPU that owns the data
// (client-driven routing), and the server executes handlers either
// run-to-completion — the shared-nothing fast path the paper advocates —
// or through a queued worker, the ablation's baseline.
package rpc

import (
	"errors"
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/transport"
	"hyperion/internal/wire"
)

// Mode selects the server execution discipline.
type Mode int

const (
	// RunToCompletion executes the handler inline at message delivery.
	RunToCompletion Mode = iota
	// Queued enqueues requests for a single dispatcher goroutine-model
	// with per-dispatch overhead (a CPU-style request queue).
	Queued
)

// Errors.
var (
	ErrTimeout  = errors.New("rpc: request timed out")
	ErrNoMethod = errors.New("rpc: no such method")
	ErrRemote   = errors.New("rpc: remote error")
)

// request is the wire envelope. Envelopes are pooled by the issuing
// client and travel by reference (a pointer boxes into an interface
// without allocating); the server returns them to their pool once the
// handler has been entered.
type request struct {
	ID     uint64
	Method string
	Arg    any
	Span   telemetry.RequestID
	c      *Client // origin pool
}

// response is the reply envelope, pooled by the server and released by
// the receiving client after the value is extracted.
type response struct {
	ID  uint64
	Val any
	Err string
	s   *Server // origin pool
}

// Handler serves one method. respond must be called exactly once; it
// may be called asynchronously after storage completes. respBytes is
// the response's wire size.
type Handler func(arg any, respond func(val any, respBytes int, err error))

// Server dispatches incoming requests to handlers.
type Server struct {
	eng      *sim.Engine
	ep       transport.Endpoint
	mode     Mode
	handlers map[string]Handler

	// Queued-mode state.
	queue            []queuedReq
	draining         bool
	DispatchOverhead sim.Duration
	dispatchFn       func()

	respFree []*response
	ctxFree  []*serveCtx

	rec    *telemetry.Recorder
	active telemetry.RequestID // span of the request being served

	Requests, Errors int64
}

type queuedReq struct {
	src netsim.Addr
	req *request
}

// SetRecorder arms the telemetry plane: one span per served request,
// from handler entry to response send, named after the method.
// Disarmed (nil) the serve path is bit-identical to the unhooked
// server.
func (s *Server) SetRecorder(rec *telemetry.Recorder) { s.rec = rec }

// ActiveSpan returns the trace context of the request currently being
// served (0 outside a handler's synchronous extent). Handlers that
// fan out to storage or other services read it here to keep the
// request's spans joined across layers.
func (s *Server) ActiveSpan() telemetry.RequestID { return s.active }

// NewServer wraps a transport endpoint.
func NewServer(eng *sim.Engine, ep transport.Endpoint, mode Mode) *Server {
	s := &Server{
		eng:              eng,
		ep:               ep,
		mode:             mode,
		handlers:         make(map[string]Handler),
		DispatchOverhead: 2 * sim.Microsecond,
	}
	s.dispatchFn = s.dispatch
	ep.OnMessage(s.onMessage)
	return s
}

// Handle registers a method.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

func (s *Server) onMessage(src netsim.Addr, msg transport.Message) {
	req, ok := msg.Payload.(*request)
	if !ok {
		return
	}
	s.Requests++
	if s.mode == RunToCompletion {
		s.serve(src, req)
		return
	}
	s.queue = append(s.queue, queuedReq{src: src, req: req})
	s.drain()
}

// drain processes the queue one item at a time with dispatch overhead,
// modeling a single CPU worker.
func (s *Server) drain() {
	if s.draining || len(s.queue) == 0 {
		return
	}
	s.draining = true
	s.eng.After(s.DispatchOverhead, "rpc.dispatch", s.dispatchFn)
}

func (s *Server) dispatch() {
	next := s.queue[0]
	s.queue[0] = queuedReq{}
	s.queue = s.queue[1:]
	if len(s.queue) == 0 {
		s.queue = s.queue[:0]
	}
	s.serve(next.src, next.req)
	s.draining = false
	s.drain()
}

// serveCtx carries one in-flight request through its handler with a
// prebound respond function; instances cycle through the server's free
// list (respond may run long after serve returns).
type serveCtx struct {
	s         *Server
	src       netsim.Addr
	id        uint64
	method    string
	span      telemetry.RequestID
	start     sim.Time
	done      bool
	respondFn func(val any, respBytes int, err error)
}

func (s *Server) getCtx() *serveCtx {
	if n := len(s.ctxFree); n > 0 {
		sc := s.ctxFree[n-1]
		s.ctxFree = s.ctxFree[:n-1]
		return sc
	}
	sc := &serveCtx{s: s}
	sc.respondFn = sc.respond
	return sc
}

func (sc *serveCtx) respond(val any, respBytes int, err error) {
	if sc.done {
		panic("rpc: respond called twice for " + sc.method)
	}
	sc.done = true
	s := sc.s
	resp := s.getResp()
	resp.ID = sc.id
	resp.Val = val
	if err != nil {
		s.Errors++
		resp.Err = err.Error()
		resp.Val = nil
	}
	if respBytes < 64 {
		respBytes = 64
	}
	if s.rec != nil {
		s.rec.Span("rpc.server", sc.method, sc.span, sc.start, s.eng.Now())
	}
	s.reply(sc.src, resp, respBytes, sc.span)
	s.ctxFree = append(s.ctxFree, sc)
}

func (s *Server) getResp() *response {
	if n := len(s.respFree); n > 0 {
		r := s.respFree[n-1]
		s.respFree = s.respFree[:n-1]
		*r = response{s: s}
		return r
	}
	return &response{s: s}
}

func (s *Server) serve(src netsim.Addr, req *request) {
	h, ok := s.handlers[req.Method]
	if !ok {
		s.Errors++
		resp := s.getResp()
		resp.ID = req.ID
		resp.Err = ErrNoMethod.Error() + ": " + req.Method
		s.reply(src, resp, 64, req.Span)
		if b, okb := req.Arg.(*wire.Buf); okb {
			b.Release()
		}
		req.release()
		return
	}
	sc := s.getCtx()
	sc.src = src
	sc.id = req.ID
	sc.method = req.Method
	sc.span = req.Span
	sc.start = s.eng.Now()
	sc.done = false
	arg := req.Arg
	req.release() // envelope fields are copied; the arg lives on its own
	prev := s.active
	s.active = sc.span
	h(arg, sc.respondFn)
	s.active = prev
	// A wire-capsule argument carries one reference per delivered
	// attempt (see Client.attempt); its bytes are valid only during the
	// handler's synchronous extent.
	if b, ok := arg.(*wire.Buf); ok {
		b.Release()
	}
}

func (s *Server) reply(dst netsim.Addr, resp *response, bytes int, span telemetry.RequestID) {
	err := s.ep.Send(dst, transport.Message{Payload: resp, Bytes: bytes, Span: span})
	if err != nil {
		s.putResp(resp)
	}
}

func (s *Server) putResp(r *response) {
	r.Val = nil
	r.Err = ""
	s.respFree = append(s.respFree, r)
}

// Client issues requests.
type Client struct {
	eng     *sim.Engine
	ep      transport.Endpoint
	nextID  uint64
	pending map[uint64]*call
	Timeout sim.Duration

	// Retry policy. All three fields default to zero, which preserves
	// single-attempt semantics exactly (same events, same counters). With
	// MaxRetries > 0, a timed-out call is retried up to that many extra
	// times, waiting RetryBackoff<<attempt between attempts; if
	// DeadlineBudget > 0 the whole call (attempts + backoffs) must fit
	// within that budget measured from the first Send, otherwise the
	// caller sees ErrTimeout without further retries.
	MaxRetries     int
	RetryBackoff   sim.Duration
	DeadlineBudget sim.Duration

	reqFree  []*request
	callFree []*call

	rec *telemetry.Recorder

	Calls, Timeouts int64
	Retries         int64 // retry attempts actually issued
}

// SetRecorder arms the telemetry plane: one span per Call covering
// the whole exchange (all attempts and backoffs), named after the
// method. Disarmed (nil) the call path is bit-identical to the
// unhooked client.
func (c *Client) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

// call is one logical Call: the current attempt's timer and the retry
// state, pooled on the client with prebound timer functions.
type call struct {
	c         *Client
	dst       netsim.Addr
	method    string
	arg       any
	argBytes  int
	span      telemetry.RequestID
	cb        func(val any, err error)
	tries     int // attempts already timed out
	deadline  sim.Time
	start     sim.Time // first-attempt time, for the client-side span
	id        uint64   // current attempt's request id
	timer     sim.EventRef
	timeoutFn func()
	retryFn   func()
}

// NewClient wraps a transport endpoint.
func NewClient(eng *sim.Engine, ep transport.Endpoint) *Client {
	c := &Client{eng: eng, ep: ep, pending: make(map[uint64]*call), Timeout: 100 * sim.Millisecond}
	ep.OnMessage(c.onMessage)
	return c
}

// Engine exposes the client's engine so layers above (e.g. nvmeof) can
// schedule their own retry backoffs on the same clock.
func (c *Client) Engine() *sim.Engine { return c.eng }

func (c *Client) onMessage(src netsim.Addr, msg transport.Message) {
	resp, ok := msg.Payload.(*response)
	if !ok {
		return
	}
	cl, ok := c.pending[resp.ID]
	if !ok {
		return
	}
	delete(c.pending, resp.ID)
	c.eng.Cancel(cl.timer)
	cl.timer = sim.NoEvent
	val, errStr := resp.Val, resp.Err
	resp.s.putResp(resp)
	if errStr != "" {
		cl.finish(nil, fmt.Errorf("%w: %s", ErrRemote, errStr))
		return
	}
	cl.finish(val, nil)
}

// Call sends a request of argBytes wire size and invokes cb with the
// response or error. cb runs exactly once. When the client's retry
// policy is armed (MaxRetries > 0), timed-out attempts are retried
// with exponential backoff inside the deadline budget before cb sees
// ErrTimeout.
func (c *Client) Call(dst netsim.Addr, method string, arg any, argBytes int, cb func(val any, err error)) {
	c.CallSpan(dst, method, arg, argBytes, 0, cb)
}

// CallSpan is Call carrying a request-scoped trace context: the span
// id travels inside the request envelope to the server (where
// ActiveSpan exposes it to handlers) and tags the client-side span.
func (c *Client) CallSpan(dst netsim.Addr, method string, arg any, argBytes int, span telemetry.RequestID, cb func(val any, err error)) {
	if argBytes < 64 {
		argBytes = 64
	}
	cl := c.getCall()
	cl.dst = dst
	cl.method = method
	cl.arg = arg
	cl.argBytes = argBytes
	cl.span = span
	cl.cb = cb
	cl.start = c.eng.Now()
	if c.MaxRetries > 0 && c.DeadlineBudget > 0 {
		cl.deadline = c.eng.Now().Add(c.DeadlineBudget)
	}
	cl.attempt()
}

func (c *Client) getCall() *call {
	if n := len(c.callFree); n > 0 {
		cl := c.callFree[n-1]
		c.callFree = c.callFree[:n-1]
		return cl
	}
	cl := &call{c: c}
	cl.timeoutFn = cl.timeout
	cl.retryFn = cl.retry
	return cl
}

// finish resolves the call exactly once, recording the client-side
// span when armed, and recycles the call before invoking cb so the
// callback can immediately issue a follow-up request.
func (cl *call) finish(val any, err error) {
	c := cl.c
	if c.rec != nil {
		c.rec.Span("rpc.client", cl.method, cl.span, cl.start, c.eng.Now())
	}
	cb := cl.cb
	*cl = call{c: c, timeoutFn: cl.timeoutFn, retryFn: cl.retryFn}
	c.callFree = append(c.callFree, cl)
	cb(val, err)
}

// attempt issues one wire attempt with its own timeout timer.
func (cl *call) attempt() {
	c := cl.c
	c.Calls++
	c.nextID++
	cl.id = c.nextID
	c.pending[cl.id] = cl
	cl.timer = c.eng.After(c.Timeout, "rpc.timeout", cl.timeoutFn)
	req := c.getReq()
	req.ID = cl.id
	req.Method = cl.method
	req.Arg = cl.arg
	req.Span = cl.span
	// A wire-capsule argument gets one reference per attempt on the
	// wire (released server-side after the handler runs), on top of the
	// base reference the caller holds for the whole logical call —
	// retries and stragglers each own their bytes.
	capsule, isCapsule := cl.arg.(*wire.Buf)
	if isCapsule {
		//hyperlint:allow(bufown) custody crosses the wire: the server releases this reference after the handler runs, or the Send error branch below reclaims it
		capsule.Retain() //wire:sends the transport endpoint, inside req — same engine, released server-side after the handler
	}
	err := c.ep.Send(cl.dst, transport.Message{Payload: req, Bytes: cl.argBytes, Span: cl.span})
	if err != nil {
		delete(c.pending, cl.id)
		c.eng.Cancel(cl.timer)
		cl.timer = sim.NoEvent
		if isCapsule {
			capsule.Release()
		}
		req.release()
		cl.finish(nil, err)
	}
}

// timeout fires when the current attempt's timer expires: retry inside
// the policy and budget, otherwise surface ErrTimeout.
func (cl *call) timeout() {
	c := cl.c
	if c.pending[cl.id] != cl {
		return
	}
	delete(c.pending, cl.id)
	c.Timeouts++
	if cl.tries < c.MaxRetries {
		backoff := c.RetryBackoff << uint(cl.tries)
		// Retry only if another full attempt can still fit in the
		// budget; otherwise surface the timeout now rather than
		// burning the caller's remaining time on a doomed attempt.
		if cl.deadline == 0 || c.eng.Now().Add(backoff+c.Timeout) <= cl.deadline {
			cl.tries++
			c.Retries++
			if backoff > 0 {
				// The call left c.pending above, so nothing else cancels
				// this handle before the retry fires and attempt()
				// overwrites it with the next timeout timer.
				cl.timer = c.eng.After(backoff, "rpc.retry", cl.retryFn)
			} else {
				cl.attempt()
			}
			return
		}
	}
	cl.finish(nil, ErrTimeout)
}

func (cl *call) retry() { cl.attempt() }

func (c *Client) getReq() *request {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		return r
	}
	return &request{c: c}
}

func (r *request) release() {
	r.Arg = nil
	r.Method = ""
	r.c.reqFree = append(r.c.reqFree, r)
}
