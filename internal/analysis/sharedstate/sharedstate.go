// Package sharedstate enforces the static precondition for sharding
// sim.Engine across cores (ROADMAP's rack-scale PDES item): model-layer
// packages must not carry package-level mutable state, and must not
// park engine or event handles in package scope.
//
// Two rules, model layer only (the sim package itself is exempt — it
// owns the engine):
//
//   - a package-level variable must not be written outside its
//     declaration or an init function. Read-only lookup tables and
//     error sentinels pass; counters, caches, registries and
//     last-winner scratch variables fail, because two engines sharded
//     onto different cores would race or — worse for this repo —
//     deterministically corrupt each other.
//   - a package-level variable whose type contains sim.EventRef or
//     *sim.Engine is flagged at its declaration: cross-engine
//     references must live per-instance so each shard's reachability
//     is closed over its own engine.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyperion/internal/analysis"
)

// Analyzer is the sharedstate pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc:  "model packages must not hold package-level mutable state or cross-engine references",
	Run:  run,
}

const simPath = analysis.ModulePath + "/internal/sim"

func run(pass *analysis.Pass) error {
	if pass.Layer != analysis.LayerModel || pass.Path == simPath {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		// Rule 2: engine-typed package state, at the declaration.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || v.Parent() != pass.Pkg.Scope() {
						continue
					}
					if bad := engineRef(v.Type()); bad != "" {
						pass.Reportf(name.Pos(), "package-level var %s holds %s: engine-scoped handles must live per-instance so sim.Engine can shard", name.Name, bad)
					}
				}
			}
		}
		// Rule 1: writes outside declarations and init.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // build-time table construction is fine
			}
			checkWrites(pass, fd.Body)
		}
	}
	return nil
}

// checkWrites reports assignments, op-assignments, increments and
// element/field stores whose base resolves to a package-level var.
func checkWrites(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportPkgWrite(pass, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			reportPkgWrite(pass, n.X, n.Pos())
		}
		return true
	})
}

func reportPkgWrite(pass *analysis.Pass, lhs ast.Expr, pos token.Pos) {
	id := baseIdent(lhs)
	if id == nil {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() != pass.Pkg.Scope() {
		return
	}
	pass.Reportf(pos, "package-level var %s is mutated in model code: state must live per-instance so sim.Engine can shard", id.Name)
}

// baseIdent peels selectors, indexes, stars and parens down to the
// root identifier of an lvalue.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// engineRef reports whether t transitively contains sim.EventRef or
// *sim.Engine, returning a human name for the offending component.
func engineRef(t types.Type) string {
	return engineRefSeen(t, make(map[types.Type]bool))
}

func engineRefSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if analysis.IsNamed(t, simPath, "EventRef") {
		return "sim.EventRef"
	}
	switch t := t.(type) {
	case *types.Pointer:
		if analysis.IsNamed(t.Elem(), simPath, "Engine") {
			return "*sim.Engine"
		}
		return engineRefSeen(t.Elem(), seen)
	case *types.Named:
		return engineRefSeen(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if bad := engineRefSeen(t.Field(i).Type(), seen); bad != "" {
				return bad
			}
		}
	case *types.Slice:
		return engineRefSeen(t.Elem(), seen)
	case *types.Array:
		return engineRefSeen(t.Elem(), seen)
	case *types.Map:
		if bad := engineRefSeen(t.Key(), seen); bad != "" {
			return bad
		}
		return engineRefSeen(t.Elem(), seen)
	case *types.Chan:
		return engineRefSeen(t.Elem(), seen)
	}
	return ""
}
