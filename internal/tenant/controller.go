package tenant

import (
	"fmt"
	"sort"

	"hyperion/internal/fabric"
	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Config sizes the control plane.
type Config struct {
	MaxTenants int          // admission cap = WFQ port count
	MaxWeight  int          // largest admissible DRR weight
	Lease      sim.Duration // slot tenure before preemption; 0 = static placement
	WidthBytes int          // WFQ bus width per beat
	DepthItems int          // per-tenant FIFO depth, in items
}

// DefaultConfig matches the Figure 2 box: up to 16 tenants over 5
// slots, 512-bit bus, static placement unless a lease is set.
func DefaultConfig() Config {
	return Config{MaxTenants: 16, MaxWeight: 16, WidthBytes: 64, DepthItems: 64}
}

// Controller is the admission controller and slot scheduler. It owns
// the placement state machine; the fabric executes its decisions.
// Layer discipline: everything is driven by engine events, all state
// lives in slices indexed by tenant id / slot / port (no map order
// anywhere near a decision).
type Controller struct {
	eng *sim.Engine
	fab *fabric.Fabric
	cfg Config
	arb *fabric.WFQArbiter

	tenants    []*Tenant
	queue      []int  // tenant ids waiting for a slot, FIFO
	slotTenant []int  // slot -> occupant tenant id, or -1
	slotDown   []bool // fault-plane outage in progress
	portUsed   []bool
	budget     fabric.Resources // per-slot admission budget
	horizon    sim.Time         // scheduling stops here; 0 = never
	rec        *telemetry.Recorder
	reqFree    []*request

	Admitted  int64
	Rejected  int64
	Live      int64 // admitted and not departed
	Reconfigs int64 // completed activations
	Preempts  int64
	Evictions int64
}

// New creates a controller over fab. The WFQ arbiter is clocked at the
// fabric frequency; its sink dispatches into the occupant slot's
// pipeline.
func New(eng *sim.Engine, fab *fabric.Fabric, cfg Config) *Controller {
	if cfg.MaxTenants <= 0 || cfg.MaxWeight <= 0 {
		panic("tenant: invalid config")
	}
	fc := fab.Config()
	c := &Controller{eng: eng, fab: fab, cfg: cfg}
	c.arb = fabric.NewWFQArbiter(eng, "tenant", fc.ClockHz, cfg.WidthBytes, cfg.DepthItems, cfg.MaxTenants, c.dispatch)
	c.arb.SetOnDrop(c.faultDrop)
	c.slotTenant = make([]int, fc.Slots)
	for i := range c.slotTenant {
		c.slotTenant[i] = -1
	}
	c.slotDown = make([]bool, fc.Slots)
	c.portUsed = make([]bool, cfg.MaxTenants)
	c.budget = fabric.Resources{
		LUTs: fc.Total.LUTs / fc.Slots,
		FFs:  fc.Total.FFs / fc.Slots,
		BRAM: fc.Total.BRAM / fc.Slots,
		DSP:  fc.Total.DSP / fc.Slots,
		URAM: fc.Total.URAM / fc.Slots,
	}
	return c
}

// Arbiter exposes the weighted-fair front end (counters, port stats).
func (c *Controller) Arbiter() *fabric.WFQArbiter { return c.arb }

// Budget returns the per-slot admission budget.
func (c *Controller) Budget() fabric.Resources { return c.budget }

// SetRecorder arms the telemetry plane on the controller and its
// arbiter. Tenants admitted afterwards get per-tenant child processes;
// arm before admitting for complete coverage.
func (c *Controller) SetRecorder(rec *telemetry.Recorder) {
	c.rec = rec
	c.arb.SetRecorder(rec)
}

// SetHorizon stops scheduling activity (lease renewals, preemptions)
// at h, so a run with a positive lease drains instead of time-slicing
// forever. Placement of already-queued tenants still completes.
func (c *Controller) SetHorizon(h sim.Time) { c.horizon = h }

// Admit runs admission control on spec. On success the tenant is
// queued for a slot (placement happens immediately if one is free) and
// its book-of-record entry is returned; on failure the error reports
// why the box turned the tenant away.
func (c *Controller) Admit(spec Spec) (*Tenant, error) {
	if spec.Weight < 1 || spec.Weight > c.cfg.MaxWeight {
		return nil, fmt.Errorf("%w: weight %d outside [1,%d]", ErrBadSpec, spec.Weight, c.cfg.MaxWeight)
	}
	if err := spec.Image.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if _, ok := c.budget.Sub(spec.Image.Uses); !ok {
		c.Rejected++
		return nil, fmt.Errorf("%w: image %q exceeds the per-slot resource budget", ErrRejected, spec.Image.Name)
	}
	if int(c.Live) >= c.cfg.MaxTenants {
		c.Rejected++
		return nil, fmt.Errorf("%w: %d tenants live (cap %d)", ErrRejected, c.Live, c.cfg.MaxTenants)
	}
	port := -1
	for i, used := range c.portUsed {
		if !used {
			port = i
			break
		}
	}
	if port < 0 {
		// Unreachable while Live < MaxTenants, but keep the error path.
		c.Rejected++
		return nil, fmt.Errorf("%w: no free arbiter port", ErrRejected)
	}
	t := &Tenant{
		ID:        len(c.tenants),
		Spec:      spec,
		State:     StateQueued,
		Slot:      -1,
		Port:      port,
		QueuedAt:  c.eng.Now(),
		leaseName: "tenant.lease:" + spec.Name,
	}
	if c.rec != nil {
		t.crec = c.rec.Child("tenant:" + spec.Name)
	}
	c.portUsed[port] = true
	c.arb.SetWeight(port, spec.Weight)
	c.tenants = append(c.tenants, t)
	c.queue = append(c.queue, t.ID)
	c.Admitted++
	c.Live++
	c.kick()
	return t, nil
}

// Depart removes a tenant: queued entries leave the queue, a held slot
// is torn down (a pending reconfiguration is cancelled), and any
// requests still in the FIFO resolve with ErrDeparted.
func (c *Controller) Depart(id int) error {
	t, err := c.lookup(id)
	if err != nil {
		return err
	}
	switch t.State {
	case StateDeparted:
		return nil
	case StateQueued:
		c.unqueue(id)
	case StateReconfiguring:
		// Evict rather than Unload: it cancels the pending activation.
		if err := c.fab.Evict(t.Slot); err != nil {
			panic("tenant: depart evict: " + err.Error())
		}
		c.slotTenant[t.Slot] = -1
		t.Slot = -1
	case StateActive:
		c.resolveFlush(t, ErrDeparted)
		if err := c.fab.Unload(t.Slot); err != nil {
			panic("tenant: depart unload: " + err.Error())
		}
		c.slotTenant[t.Slot] = -1
		t.Slot = -1
	}
	t.State = StateDeparted
	c.portUsed[t.Port] = false
	c.Live--
	c.kick()
	return nil
}

// Submit offers one request on behalf of tenant id. A tenant without
// an active slot is refused synchronously with ErrNotActive (done is
// not called); a full FIFO refuses with fabric.ErrStreamFull. Accepted
// requests always resolve done exactly once — with nil and a result
// latency recorded, or with a Retryable/terminal error if scheduling
// sheds them.
func (c *Controller) Submit(id int, payload any, bytes int, done func(error)) error {
	t, err := c.lookup(id)
	if err != nil {
		return err
	}
	if t.State != StateActive {
		t.NotActive++
		return ErrNotActive
	}
	rq := c.getReq()
	rq.id = id
	rq.t0 = c.eng.Now()
	rq.payload = payload
	rq.done = done
	rq.span = t.crec.NewRequest()
	if err := c.arb.Push(t.Port, fabric.Item{Payload: rq, Bytes: bytes, Span: rq.span}); err != nil {
		rq.payload, rq.done = nil, nil
		c.reqFree = append(c.reqFree, rq)
		t.Shed++
		return err
	}
	t.Submitted++
	return nil
}

// ArmEvictions installs the fault plane's slot-outage schedule: one
// precomputed window sequence (kind Evict) with a uniformly drawn
// victim slot per window, all derived from the plan at arm time so the
// chaos schedule is a pure function of (seed, layer) regardless of how
// the run's events interleave. Returns the number of windows armed.
func (c *Controller) ArmEvictions(plan *fault.Plan, horizon sim.Time, meanUp, downFor sim.Duration) int {
	ws := plan.Windows(fault.Evict, horizon, meanUp, downFor)
	for _, w := range ws {
		end := w.End
		slot := plan.Pick(len(c.slotTenant))
		c.eng.At(w.Start, "tenant.evict.down", func() { c.slotFault(slot, end) })
	}
	return len(ws)
}

// Report renders the per-tenant SLO table over a measurement window,
// sorted by tenant name. Names are pure labels: permuting them
// permutes rows, never values.
func (c *Controller) Report(window sim.Duration) []Row {
	rows := make([]Row, 0, len(c.tenants))
	secs := float64(window) / float64(sim.Second)
	for _, t := range c.tenants {
		r := Row{
			Name:        t.Spec.Name,
			Weight:      t.Spec.Weight,
			State:       t.State.String(),
			Placements:  t.Placements,
			Preemptions: t.Preemptions,
			Evictions:   t.Evictions,
			Submitted:   t.Submitted,
			Completed:   t.Completed,
			Retryable:   t.Retried + t.NotActive + t.Shed,
			Failed:      t.Failed,
		}
		if t.Lat.Count() > 0 {
			r.P50 = t.Lat.Percentile(50)
			r.P99 = t.Lat.Percentile(99)
		}
		if secs > 0 {
			r.GoodputOPS = float64(t.Completed) / secs
		}
		r.ViolLat = t.Spec.SLO.P99 > 0 && r.P99 > t.Spec.SLO.P99
		r.ViolGood = t.Spec.SLO.Goodput > 0 && r.GoodputOPS < t.Spec.SLO.Goodput
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// Tenant returns the book-of-record entry for id.
func (c *Controller) Tenant(id int) (*Tenant, error) { return c.lookup(id) }

// Tenants returns the number of tenants ever admitted.
func (c *Controller) Tenants() int { return len(c.tenants) }

// QueueLen returns the number of tenants waiting for a slot.
func (c *Controller) QueueLen() int { return len(c.queue) }

// SlotTenant returns the tenant id occupying slot s, or -1.
func (c *Controller) SlotTenant(s int) int { return c.slotTenant[s] }

// CheckInvariants validates the scheduling invariants the property
// tests pin: conservation, slot exclusivity, port exclusivity, and
// controller/fabric state agreement. It returns the first violation.
func (c *Controller) CheckInvariants() error {
	inQueue := make([]int, len(c.tenants))
	for _, id := range c.queue {
		if id < 0 || id >= len(c.tenants) {
			return fmt.Errorf("queue holds unknown tenant id %d", id)
		}
		inQueue[id]++
	}
	slotOf := make([]int, len(c.tenants))
	for i := range slotOf {
		slotOf[i] = -1
	}
	for s, id := range c.slotTenant {
		if id < 0 {
			continue
		}
		if id >= len(c.tenants) {
			return fmt.Errorf("slot %d holds unknown tenant id %d", s, id)
		}
		if slotOf[id] >= 0 {
			return fmt.Errorf("tenant %d occupies slots %d and %d", id, slotOf[id], s)
		}
		slotOf[id] = s
	}
	ports := make([]int, c.cfg.MaxTenants)
	for i := range ports {
		ports[i] = -1
	}
	for _, t := range c.tenants {
		switch t.State {
		case StateQueued:
			if inQueue[t.ID] != 1 || t.Slot != -1 || slotOf[t.ID] != -1 {
				return fmt.Errorf("tenant %d queued: queue entries=%d slot=%d", t.ID, inQueue[t.ID], t.Slot)
			}
		case StateReconfiguring, StateActive:
			if inQueue[t.ID] != 0 || t.Slot < 0 || slotOf[t.ID] != t.Slot {
				return fmt.Errorf("tenant %d placed: queue entries=%d slot=%d slotTenant=%d", t.ID, inQueue[t.ID], t.Slot, slotOf[t.ID])
			}
			slot, err := c.fab.Slot(t.Slot)
			if err != nil {
				return err
			}
			want := fabric.SlotActive
			if t.State == StateReconfiguring {
				want = fabric.SlotReconfiguring
			}
			if slot.State != want {
				return fmt.Errorf("tenant %d in state %v but fabric slot %d is %v", t.ID, t.State, t.Slot, slot.State)
			}
		case StateDeparted:
			if inQueue[t.ID] != 0 || slotOf[t.ID] != -1 {
				return fmt.Errorf("departed tenant %d still scheduled", t.ID)
			}
			continue
		}
		if ports[t.Port] >= 0 {
			return fmt.Errorf("tenants %d and %d share port %d", ports[t.Port], t.ID, t.Port)
		}
		ports[t.Port] = t.ID
	}
	return nil
}

// --- internals ---

func (c *Controller) lookup(id int) (*Tenant, error) {
	if id < 0 || id >= len(c.tenants) {
		return nil, ErrUnknown
	}
	return c.tenants[id], nil
}

func (c *Controller) unqueue(id int) {
	for i, q := range c.queue {
		if q == id {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
	panic("tenant: unqueue: id not in queue")
}

// freeSlot returns the lowest empty, up slot, or -1.
func (c *Controller) freeSlot() int {
	for s, id := range c.slotTenant {
		if id < 0 && !c.slotDown[s] {
			return s
		}
	}
	return -1
}

// expiredVictim returns the lowest-slot active tenant whose lease has
// already expired, or nil.
func (c *Controller) expiredVictim() *Tenant {
	for _, id := range c.slotTenant {
		if id < 0 {
			continue
		}
		if t := c.tenants[id]; t.State == StateActive && t.leaseOver {
			return t
		}
	}
	return nil
}

// kick drains the wait queue into free slots, preempting expired-lease
// occupants when the queue is backed up. It is the only place tenants
// move from queued to placed.
func (c *Controller) kick() {
	for len(c.queue) > 0 {
		s := c.freeSlot()
		if s < 0 {
			v := c.expiredVictim()
			if v == nil {
				return
			}
			c.preempt(v)
			continue
		}
		id := c.queue[0]
		c.queue = c.queue[1:]
		c.place(c.tenants[id], s)
	}
}

// place starts partial reconfiguration of slot s for tenant t. The
// activation callback is guarded by the placement generation, so a
// cancelled reconfiguration (eviction, departure) can never activate a
// stale placement.
func (c *Controller) place(t *Tenant, s int) {
	wait := c.eng.Now().Sub(t.QueuedAt)
	if wait > t.MaxWait {
		t.MaxWait = wait
	}
	c.slotTenant[s] = t.ID
	t.Slot = s
	t.State = StateReconfiguring
	t.leaseOver = false
	t.Placements++
	gen := t.Placements
	if err := c.fab.LoadBitstream(s, t.Spec.Image, func() { c.activated(t, gen) }); err != nil {
		panic("tenant: place: " + err.Error())
	}
}

func (c *Controller) activated(t *Tenant, gen int64) {
	if t.State != StateReconfiguring || t.Placements != gen {
		panic("tenant: stale activation callback")
	}
	t.State = StateActive
	t.ActivatedAt = c.eng.Now()
	c.Reconfigs++
	if c.cfg.Lease > 0 {
		c.eng.After(c.cfg.Lease, t.leaseName, func() { c.leaseExpired(t, gen) })
	}
}

// leaseExpired fires once per placement. With waiters backed up the
// occupant is preempted on the spot; otherwise the lease is only
// marked expired, and the next arrival triggers the preemption — no
// standing timer chain, so idle boxes drain.
func (c *Controller) leaseExpired(t *Tenant, gen int64) {
	if t.State != StateActive || t.Placements != gen {
		return // displaced before the lease ran out
	}
	if c.horizon > 0 && c.eng.Now() >= c.horizon {
		return
	}
	if len(c.queue) == 0 {
		t.leaseOver = true
		return
	}
	c.preempt(t)
	c.kick()
}

// preempt displaces an active tenant at lease expiry: its FIFO backlog
// resolves retryable, the slot unloads instantly, and the tenant
// requeues at the tail.
func (c *Controller) preempt(t *Tenant) {
	c.resolveFlush(t, ErrPreempted)
	if err := c.fab.Unload(t.Slot); err != nil {
		panic("tenant: preempt unload: " + err.Error())
	}
	c.slotTenant[t.Slot] = -1
	t.Slot = -1
	t.State = StateQueued
	t.QueuedAt = c.eng.Now()
	t.leaseOver = false
	t.Preemptions++
	c.Preempts++
	c.queue = append(c.queue, t.ID)
}

// slotFault is the fault plane's eviction: slot s is down until end;
// the occupant (even one mid-reconfiguration) is displaced and
// requeued, its backlog resolving with ErrEvicted.
func (c *Controller) slotFault(s int, end sim.Time) {
	c.slotDown[s] = true
	if id := c.slotTenant[s]; id >= 0 {
		t := c.tenants[id]
		c.resolveFlush(t, ErrEvicted)
		if err := c.fab.Evict(s); err != nil {
			panic("tenant: slot fault evict: " + err.Error())
		}
		c.slotTenant[s] = -1
		t.Slot = -1
		t.State = StateQueued
		t.QueuedAt = c.eng.Now()
		t.leaseOver = false
		t.Evictions++
		c.Evictions++
		c.queue = append(c.queue, id)
	}
	c.eng.At(end, "tenant.evict.up", func() {
		c.slotDown[s] = false
		c.kick()
	})
}

// resolveFlush drains t's FIFO backlog, resolving every flushed
// request with err.
func (c *Controller) resolveFlush(t *Tenant, err error) {
	for _, it := range c.arb.Flush(t.Port) {
		c.resolve(it.Payload.(*request), err)
	}
}

// dispatch is the WFQ sink: the item won arbitration and enters the
// occupant slot's pipeline. A tenant displaced while the item held the
// bus resolves retryable instead.
func (c *Controller) dispatch(it fabric.Item) {
	rq := it.Payload.(*request)
	t := c.tenants[rq.id]
	if t.State != StateActive || t.Slot < 0 || c.slotDown[t.Slot] {
		c.resolve(rq, ErrEvicted)
		return
	}
	if err := c.fab.SubmitSpan(t.Slot, rq.payload, rq.span, rq.fireFn); err != nil {
		c.resolve(rq, ErrEvicted)
	}
}

// faultDrop resolves requests the arbiter's fault plan squashed on the
// bus, so an armed Drop rate can never hang a caller.
func (c *Controller) faultDrop(it fabric.Item) {
	c.resolve(it.Payload.(*request), ErrDropped)
}

// request carries one in-flight tenant request through the WFQ and the
// slot pipeline; instances cycle through the controller's free list
// (they hold no event refs, only payload bookkeeping).
type request struct {
	c       *Controller
	id      int
	t0      sim.Time
	span    telemetry.RequestID
	payload any
	done    func(error)
	fireFn  func(out any)
}

func (c *Controller) getReq() *request {
	if n := len(c.reqFree); n > 0 {
		rq := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		return rq
	}
	rq := &request{c: c}
	rq.fireFn = rq.complete
	return rq
}

func (rq *request) complete(out any) {
	_ = out
	c := rq.c
	t := c.tenants[rq.id]
	now := c.eng.Now()
	t.Lat.Record(now.Sub(rq.t0))
	t.Completed++
	if t.crec != nil {
		t.crec.Span("tenant", "request", rq.span, rq.t0, now)
	}
	done := rq.done
	rq.payload, rq.done = nil, nil
	c.reqFree = append(c.reqFree, rq)
	if done != nil {
		done(nil)
	}
}

func (c *Controller) resolve(rq *request, err error) {
	t := c.tenants[rq.id]
	if Retryable(err) {
		t.Retried++
	} else {
		t.Failed++
	}
	if t.crec != nil {
		t.crec.Count("tenant", "shed", 1)
	}
	done := rq.done
	rq.payload, rq.done = nil, nil
	c.reqFree = append(c.reqFree, rq)
	if done != nil {
		done(err)
	}
}
