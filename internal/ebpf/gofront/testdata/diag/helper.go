// Calls resolve against declared //hyperion:helper intrinsics only.
package prog

type Ctx struct {
	A uint32
}

//hyperion:helper 1
func mapLookup(m uint32, k *uint32) *uint64

func Entry(ctx *Ctx) uint64 {
	logPacket(1) // want 2 "unknown helper logPacket; declare it with a //hyperion:helper directive" unknown-helper
	mapLookup(0) // want 2 "helper mapLookup takes 2 arguments, got 1" helper-sig
	return 0
}
