// Package bufown is hyperlint golden-test input: wire.Buf custody
// against the real hyperion/internal/wire API.
package bufown

import (
	"errors"

	"hyperion/internal/wire"
)

var errBad = errors.New("bad")

var pool = wire.NewPool(64)

func balanced() {
	b := pool.Get(8)
	b.Release()
}

func leakEarlyReturn(bad bool) error {
	b := pool.Get(8) // want `b is not released on every path`
	if bad {
		return errBad
	}
	b.Release()
	return nil
}

func releasedOnBothArms(bad bool) error {
	b := pool.Get(8)
	if bad {
		b.Release()
		return errBad
	}
	b.Release()
	return nil
}

func doubleRelease() {
	b := pool.Get(8)
	b.Release()
	b.Release() // want `double release`
}

func useAfterRelease() bool {
	b := pool.Get(8)
	b.Release()
	if b.Len() > 0 { // want `use of b after Release`
		return true
	}
	return false
}

func useAfterReleaseAsArg(sink func(*wire.Buf)) {
	b := pool.Get(8)
	b.Release()
	sink(b) // want `use of b after Release`
}

func deferred(bad bool) error {
	b := pool.Get(8)
	defer b.Release()
	if bad {
		return errBad
	}
	return nil
}

func deferredClosure(bad bool) error {
	b := pool.Get(8)
	defer func() {
		b.Release()
	}()
	if bad {
		return errBad
	}
	return nil
}

func panicPathIsNotALeak(hard bool) {
	b := pool.Get(8)
	if hard {
		panic("boom")
	}
	b.Release()
}

func discardedGet() {
	pool.Get(8) // want `owned result of Get is discarded`
}

func extraRetainLeaks(b *wire.Buf) {
	b.Retain() // want `b is not released on every path`
}

func retainAssigned(b *wire.Buf) {
	c := b.Retain()
	c.Release()
}

func move() {
	b := pool.Get(8)
	c := b
	c.Release()
}

func overwrite() {
	b := pool.Get(8)
	b = pool.Get(16) // want `b is overwritten while still owning a reference`
	b.Release()
}

// peek only reads: the caller keeps custody.
//
//wire:borrows b
func peek(b *wire.Buf) int {
	return b.Len()
}

//wire:borrows b
func releasesBorrowed(b *wire.Buf) {
	b.Release() // want `declared //wire:borrows`
}

// consume takes custody and discharges it.
//
//wire:takes b
func consume(b *wire.Buf) {
	b.Release()
}

//wire:takes b
func consumeLeaks(b *wire.Buf, flaky bool) error { // want `b is not released on every path`
	if flaky {
		return errBad
	}
	b.Release()
	return nil
}

// send models NIC.Send custody: on success the buffer belongs to the
// callee; on error the caller keeps it.
//
//wire:sends b
func send(b *wire.Buf) error {
	if b.Len() == 0 {
		return errBad
	}
	b.Release()
	return nil
}

func condSendHandled() error {
	b := pool.Get(8)
	if err := send(b); err != nil {
		b.Release()
		return err
	}
	return nil
}

// condSendLeak is the seeded rpc-shaped mutation: the error path
// returns without taking the reference back.
func condSendLeak() error {
	b := pool.Get(8) // want `b is not released on every path`
	if err := send(b); err != nil {
		return err
	}
	return nil
}

func condSendIgnored() {
	b := pool.Get(8)
	send(b) // want `error result of send gates custody of b`
}

type frame struct {
	Buf *wire.Buf
}

//wire:sends f.Buf
func sendFrame(f frame) error {
	if f.Buf == nil {
		return errBad
	}
	f.Buf.Release()
	return nil
}

func frameSendHandled() error {
	hdr := pool.Get(16)
	if err := sendFrame(frame{Buf: hdr}); err != nil {
		hdr.Release()
		return err
	}
	return nil
}

func frameSendLeak() error {
	hdr := pool.Get(16) // want `hdr is not released on every path`
	if err := sendFrame(frame{Buf: hdr}); err != nil {
		return err
	}
	return nil
}

type tx struct {
	buf *wire.Buf
}

func retainIntoFieldBalanced() {
	b := pool.Get(8)
	t := tx{buf: b.Retain()}
	t.buf.Release()
	b.Release()
}

func retainIntoFieldLeak() {
	b := pool.Get(8)
	t := tx{buf: b.Retain()} // want `t\.buf is not released on every path`
	b.Release()
	_ = t
}

// alloc hands its reference to the caller.
//
//wire:owns
func alloc() *wire.Buf {
	return pool.Get(8)
}

//wire:owns
func allocBalanced() *wire.Buf {
	b := pool.Get(8)
	return b
}

//wire:owns
func allocReleased() *wire.Buf {
	b := pool.Get(8)
	b.Release()
	return b // want `returning b after Release`
}

func callerOfAlloc() {
	b := alloc()
	b.Release()
}

func callerOfAllocLeaks(bad bool) error {
	b := alloc() // want `b is not released on every path`
	if bad {
		return errBad
	}
	b.Release()
	return nil
}

// Escapes end tracking: custody visibly moved elsewhere.

func escapesToSink(sink func(*wire.Buf)) {
	b := pool.Get(8)
	sink(b)
}

func escapesToClosure() func() {
	b := pool.Get(8)
	return func() { b.Release() }
}

func escapesToStore(frames map[int]*wire.Buf) {
	b := pool.Get(8)
	frames[0] = b
}

func escapesViaContainerStore(window map[int]tx) {
	b := pool.Get(8)
	of := tx{buf: b.Retain()}
	window[0] = of
	b.Release()
}

func escapesToFieldStore(t *tx) {
	b := pool.Get(8)
	t.buf = b
}

func suppressedLeak(bad bool) {
	//hyperlint:allow(bufown) golden test: the pool is torn down wholesale after this
	b := pool.Get(8)
	if bad {
		return
	}
	b.Release()
}

//wire:bogus directive // want `unknown wire: directive "bogus"`
func badDirective() {}
