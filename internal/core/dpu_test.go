package core

import (
	"errors"
	"strings"
	"testing"

	"hyperion/internal/fabric"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/transport"
)

func bootTest(t testing.TB) (*sim.Engine, *netsim.Network, *DPU) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := DefaultConfig("dpu0")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	d, _, err := Boot(eng, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, d
}

func TestBootEnumeratesFourSSDs(t *testing.T) {
	_, _, d := bootTest(t)
	enum := d.Enumeration()
	if len(enum) != 4 {
		t.Fatalf("enumeration lines = %d, want 4", len(enum))
	}
	for i, line := range enum {
		if !strings.Contains(line, "ssd") || !strings.Contains(line, "x4") {
			t.Errorf("port %d: %q", i, line)
		}
	}
}

func TestBootSelfTestFails(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("bad")
	cfg.Fabric.Slots = 0
	if _, _, err := Boot(eng, nil, cfg); !errors.Is(err, ErrSelfTest) {
		t.Fatalf("err = %v, want ErrSelfTest", err)
	}
}

func TestSegmentStoreWorksThroughDPU(t *testing.T) {
	eng, _, d := bootTest(t)
	id := seg.OID(1, 1)
	if _, err := d.Store.Alloc(id, 8192, true, seg.HintAuto); err != nil {
		t.Fatal(err)
	}
	payload := []byte("through the whole stack")
	var werr error
	d.Store.Write(id, 0, payload, func(err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	d.Store.Read(id, 0, int64(len(payload)), func(data []byte, err error) { got = data })
	eng.Run()
	if string(got) != string(payload) {
		t.Fatalf("got %q", got)
	}
}

func TestShellPingStatusOverNetwork(t *testing.T) {
	eng, net, d := bootTest(t)
	cn, _ := net.Attach("operator")
	cli := rpc.NewClient(eng, transport.New(eng, transport.RDMA, cn))
	var pong any
	cli.Call(d.ControlAddr(), ShellPing, nil, 64, func(val any, err error) {
		if err != nil {
			t.Error(err)
		}
		pong = val
	})
	eng.Run()
	if pong != "pong:dpu0" {
		t.Fatalf("pong = %v", pong)
	}
	var st Status
	cli.Call(d.ControlAddr(), ShellStatus, nil, 64, func(val any, err error) {
		if err != nil {
			t.Error(err)
		}
		st = val.(Status)
	})
	eng.Run()
	if len(st.Slots) != 5 || st.Name != "dpu0" {
		t.Fatalf("status = %+v", st)
	}
}

func TestShellLoadUnloadOverNetwork(t *testing.T) {
	eng, net, d := bootTest(t)
	cn, _ := net.Attach("operator")
	cli := rpc.NewClient(eng, transport.New(eng, transport.RDMA, cn))
	cli.Timeout = sim.Duration(sim.Second)
	bs := ProbeBitstream(d.Cfg.AuthTag)
	var loadedAt sim.Time
	cli.Call(d.ControlAddr(), ShellLoad, LoadArgs{Slot: 0, Bitstream: bs}, 4<<20, func(val any, err error) {
		if err != nil {
			t.Error(err)
		}
		loadedAt = eng.Now()
	})
	eng.Run()
	// Reply arrives only after the ≥10ms partial reconfiguration.
	if loadedAt.Sub(0) < 10*sim.Millisecond {
		t.Fatalf("load acknowledged at %v, before reconfig window", loadedAt)
	}
	s, _ := d.Fabric.Slot(0)
	if s.State != fabric.SlotActive {
		t.Fatalf("slot state = %v", s.State)
	}
	var unloaded bool
	cli.Call(d.ControlAddr(), ShellUnload, 0, 64, func(val any, err error) {
		if err != nil {
			t.Error(err)
		}
		unloaded = true
	})
	eng.Run()
	if !unloaded || s.State != fabric.SlotEmpty {
		t.Fatalf("unload failed: %v %v", unloaded, s.State)
	}
}

func TestShellRejectsForgedBitstream(t *testing.T) {
	eng, net, d := bootTest(t)
	cn, _ := net.Attach("attacker")
	cli := rpc.NewClient(eng, transport.New(eng, transport.RDMA, cn))
	bs := ProbeBitstream("forged-key")
	var got error
	cli.Call(d.ControlAddr(), ShellLoad, LoadArgs{Slot: 0, Bitstream: bs}, 4<<20, func(val any, err error) { got = err })
	eng.Run()
	if got == nil || !strings.Contains(got.Error(), "authorized") {
		t.Fatalf("forged load err = %v", got)
	}
}

func TestRawPortHandlersViaDemux(t *testing.T) {
	eng, net, d := bootTest(t)
	var got []uint16
	d.HandleRawPort(7, func(f netsim.Frame) {
		rf := f.Payload.(RawFrame)
		got = append(got, rf.Port)
	})
	src, _ := net.Attach("sender")
	_ = src.Send(netsim.Frame{Dst: d.DataAddr(), Payload: RawFrame{Port: 7}, Bytes: 100})
	_ = src.Send(netsim.Frame{Dst: d.DataAddr(), Payload: RawFrame{Port: 99}, Bytes: 100}) // no handler
	eng.Run()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("handled = %v", got)
	}
	if d.Counters.Value("no_handler") != 1 {
		t.Fatalf("no_handler = %d", d.Counters.Value("no_handler"))
	}
}

func TestFig2ProbeStages(t *testing.T) {
	eng, _, d := bootTest(t)
	if err := d.LoadAccelerator(0, ProbeBitstream(d.Cfg.AuthTag), nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var tr Fig2Trace
	var data []byte
	err := d.Fig2Probe(0, 1, 100, 2, func(got Fig2Trace, d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		tr, data = got, d
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(data) != 8192 {
		t.Fatalf("data = %d bytes", len(data))
	}
	if tr.Arbiter <= 0 || tr.Pipeline <= 0 || tr.Storage <= 0 || tr.Egress <= 0 {
		t.Fatalf("stages not all positive: %+v", tr)
	}
	if tr.Total != tr.Arbiter+tr.Pipeline+tr.Storage+tr.Egress {
		t.Fatalf("total %v != sum of stages", tr.Total)
	}
	// Flash dominates the unloaded path.
	if tr.Storage < tr.Total/2 {
		t.Fatalf("storage %v not dominant in %v", tr.Storage, tr.Total)
	}
	// Pipeline is deterministic: depth × clock period.
	want := d.Fabric.Cycles(24)
	if tr.Pipeline != want {
		t.Fatalf("pipeline = %v, want %v", tr.Pipeline, want)
	}
}

func TestFig2ProbeErrors(t *testing.T) {
	eng, _, d := bootTest(t)
	_ = eng
	if err := d.Fig2Probe(0, 99, 0, 1, func(Fig2Trace, []byte, error) {}); err == nil {
		t.Fatal("bad ssd accepted")
	}
	// Empty slot: reply carries the error.
	var got error
	if err := d.Fig2Probe(0, 0, 0, 1, func(_ Fig2Trace, _ []byte, err error) { got = err }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("probe through empty slot succeeded")
	}
}

func BenchmarkFig2Probe(b *testing.B) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("bench")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	d, _, err := Boot(eng, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.LoadAccelerator(0, ProbeBitstream(cfg.AuthTag), nil); err != nil {
		b.Fatal(err)
	}
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Fig2Probe(0, i%4, int64(i%1000), 1, func(Fig2Trace, []byte, error) {})
		if i%64 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
