// Package nodeterm_harness is hyperlint golden-test input for the
// harness layer (the _harness suffix classifies it): concurrency is
// free here, but wall-clock reads must carry an allow annotation.
package nodeterm_harness

import (
	"sync"
	"time"
)

func measure(f func()) time.Duration {
	var wg sync.WaitGroup // sync, channels and goroutines are fine in the harness
	ch := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	start := time.Now() // want `harness wall-clock read time.Now needs an annotation`
	f()
	wg.Wait()
	<-ch
	elapsed := time.Since(start) //hyperlint:allow(nodeterm) measurement only; never feeds model time
	return elapsed
}
