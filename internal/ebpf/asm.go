package ebpf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assemble converts assembler text into a program. The syntax follows
// common eBPF disassembly conventions:
//
//	entry:                      ; labels end with ':'
//	    mov   r1, 42            ; 64-bit ALU, immediate
//	    add   r1, r2            ; 64-bit ALU, register
//	    mov32 r3, -1            ; 32-bit ALU
//	    lddw  r2, 0xdeadbeef00  ; 64-bit immediate (two slots)
//	    ldxdw r3, [r1+8]        ; r3 = *(u64*)(r1+8)
//	    stxw  [r10-4], r3       ; *(u32*)(r10-4) = r3
//	    stdw  [r10-16], 7       ; *(u64*)(r10-16) = 7
//	    jeq   r3, 0, done       ; conditional jump to label
//	    call  1                 ; helper call
//	done:
//	    exit
//
// Comments start with ';' or '//' and run to end of line.
func Assemble(src string) ([]Instruction, error) {
	type pending struct {
		insIndex int
		label    string
		line     int
	}
	var prog []Instruction
	labels := make(map[string]int) // label → instruction index
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("ebpf: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("ebpf: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		ins, labelRef, err := parseIns(line)
		if err != nil {
			return nil, fmt.Errorf("ebpf: line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{len(prog), labelRef, lineNo + 1})
		}
		prog = append(prog, ins)
	}
	// Resolve label fixups. Offsets count encoding slots, and LDDW takes
	// two, so compute slot positions first.
	slotOf := make([]int, len(prog)+1)
	for i, ins := range prog {
		slotOf[i+1] = slotOf[i] + 1
		if ins.IsLDDW() {
			slotOf[i+1]++
		}
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("ebpf: line %d: undefined label %q", fx.line, fx.label)
		}
		off := slotOf[target] - (slotOf[fx.insIndex] + 1)
		if off < -32768 || off > 32767 {
			return nil, fmt.Errorf("ebpf: line %d: jump to %q out of range", fx.line, fx.label)
		}
		prog[fx.insIndex].Off = int16(off)
	}
	return prog, nil
}

// MustAssemble panics on assembly errors; for tests and fixed programs.
func MustAssemble(src string) []Instruction {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

var alu64Ops = map[string]uint8{
	"add": ALUAdd, "sub": ALUSub, "mul": ALUMul, "div": ALUDiv,
	"or": ALUOr, "and": ALUAnd, "lsh": ALULsh, "rsh": ALURsh,
	"mod": ALUMod, "xor": ALUXor, "mov": ALUMov, "arsh": ALUArsh,
}

var jmpOps = map[string]uint8{
	"ja": JmpA, "jeq": JmpEq, "jgt": JmpGt, "jge": JmpGe, "jset": JmpSet,
	"jne": JmpNe, "jsgt": JmpSGt, "jsge": JmpSGe, "jlt": JmpLt,
	"jle": JmpLe, "jslt": JmpSLt, "jsle": JmpSLe,
}

var sizeSuffix = map[string]uint8{"b": SizeB, "h": SizeH, "w": SizeW, "dw": SizeDW}

func parseIns(line string) (Instruction, string, error) {
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	argN := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	switch {
	case mnem == "exit":
		return Exit(), "", argN(0)
	case mnem == "call":
		if err := argN(1); err != nil {
			return Instruction{}, "", err
		}
		id, err := parseImm(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		return Call(int32(id)), "", nil
	case mnem == "ja":
		if err := argN(1); err != nil {
			return Instruction{}, "", err
		}
		return Ja(0), args[0], nil
	case mnem == "neg" || mnem == "neg32":
		if err := argN(1); err != nil {
			return Instruction{}, "", err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		class := ClassALU64
		if mnem == "neg32" {
			class = ClassALU
		}
		return Instruction{Op: class | ALUNeg, Dst: dst}, "", nil
	case mnem == "lddw":
		if err := argN(2); err != nil {
			return Instruction{}, "", err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return LoadImm64(dst, imm), "", nil
	}

	// Endianness: be16/be32/be64 (to big-endian), le16/le32/le64.
	if len(mnem) >= 4 && (strings.HasPrefix(mnem, "be") || strings.HasPrefix(mnem, "le")) {
		if w, werr := strconv.Atoi(mnem[2:]); werr == nil && (w == 16 || w == 32 || w == 64) {
			if err := argN(1); err != nil {
				return Instruction{}, "", err
			}
			dst, err := parseReg(args[0])
			if err != nil {
				return Instruction{}, "", err
			}
			return Endian(dst, mnem[0] == 'b', int32(w)), "", nil
		}
	}

	// Atomics: {xadd,xfadd,aor,aand,axor,xchg,cmpxchg}{w,dw} [dst±off], src
	if op, size, ok := atomicMnemonic(mnem); ok {
		if err := argN(2); err != nil {
			return Instruction{}, "", err
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return Atomic(size, dst, src, off, op), "", nil
	}

	// Loads: ldx{b,h,w,dw} dst, [src±off]
	if strings.HasPrefix(mnem, "ldx") {
		size, ok := sizeSuffix[mnem[3:]]
		if !ok {
			return Instruction{}, "", fmt.Errorf("unknown load %q", mnem)
		}
		if err := argN(2); err != nil {
			return Instruction{}, "", err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		src, off, err := parseMem(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return LoadMem(size, dst, src, off), "", nil
	}
	// Register stores: stx{b,h,w,dw} [dst±off], src
	if strings.HasPrefix(mnem, "stx") {
		size, ok := sizeSuffix[mnem[3:]]
		if !ok {
			return Instruction{}, "", fmt.Errorf("unknown store %q", mnem)
		}
		if err := argN(2); err != nil {
			return Instruction{}, "", err
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return StoreMem(size, dst, src, off), "", nil
	}
	// Immediate stores: st{b,h,w,dw} [dst±off], imm
	if strings.HasPrefix(mnem, "st") {
		size, ok := sizeSuffix[mnem[2:]]
		if !ok {
			return Instruction{}, "", fmt.Errorf("unknown store %q", mnem)
		}
		if err := argN(2); err != nil {
			return Instruction{}, "", err
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return StoreImm(size, dst, off, int32(imm)), "", nil
	}

	// Conditional jumps: jxx dst, operand, label
	base := strings.TrimSuffix(mnem, "32")
	if op, ok := jmpOps[base]; ok && base != "ja" {
		if err := argN(3); err != nil {
			return Instruction{}, "", err
		}
		class := ClassJMP
		if strings.HasSuffix(mnem, "32") {
			class = ClassJMP32
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		if src, rerr := parseReg(args[1]); rerr == nil {
			return Instruction{Op: class | op | SrcReg, Dst: dst, Src: src}, args[2], nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return Instruction{Op: class | op, Dst: dst, Imm: int32(imm)}, args[2], nil
	}

	// ALU: op dst, operand (64-bit) or op32 (32-bit)
	if op, ok := alu64Ops[base]; ok {
		if err := argN(2); err != nil {
			return Instruction{}, "", err
		}
		class := ClassALU64
		if strings.HasSuffix(mnem, "32") {
			class = ClassALU
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		if src, rerr := parseReg(args[1]); rerr == nil {
			return Instruction{Op: class | op | SrcReg, Dst: dst, Src: src}, "", nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return Instruction{Op: class | op, Dst: dst, Imm: int32(imm)}, "", nil
	}

	return Instruction{}, "", fmt.Errorf("unknown mnemonic %q", mnem)
}

var atomicOps = map[string]int32{
	"xadd": AtomicAdd, "xfadd": AtomicAdd | AtomicFetch,
	"aor": AtomicOr, "aand": AtomicAnd, "axor": AtomicXor,
	"xchg": AtomicXchg, "cmpxchg": AtomicCmpXchg,
}

// atomicMnemonic parses an atomic mnemonic with its w/dw size suffix.
// Bases ending in 'd' make the suffixes ambiguous (xadd+w vs xad+dw),
// so both readings are tried.
func atomicMnemonic(m string) (op int32, size uint8, ok bool) {
	if strings.HasSuffix(m, "dw") {
		if o, found := atomicOps[m[:len(m)-2]]; found {
			return o, SizeDW, true
		}
	}
	if strings.HasSuffix(m, "w") {
		if o, found := atomicOps[m[:len(m)-1]]; found {
			return o, SizeW, true
		}
	}
	return 0, 0, false
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= int(NumRegs) {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xffffffffffffffff.
		u, uerr := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses "[rN+off]" / "[rN-off]" / "[rN]".
func parseMem(s string) (uint8, int16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(strings.TrimSpace(inner[sep:]), 0, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, int16(off), nil
}

// Disassemble renders a program back to assembler text, one instruction
// per line.
func Disassemble(prog []Instruction) string {
	var b strings.Builder
	for i, ins := range prog {
		s, err := disasmOne(ins)
		if err != nil {
			s = fmt.Sprintf("raw %#02x", ins.Op)
		}
		fmt.Fprintf(&b, "%4d: %s\n", i, s)
	}
	return b.String()
}

// Reverse mnemonic tables for the disassembler, inverted once at init.
// reverseOpTable visits mnemonics in sorted order so that if an opcode
// ever grows an alias, the winner is the lexically-smallest name rather
// than whichever the map iterator happened to yield last.
var (
	revALU    = reverseOpTable(alu64Ops)
	revJmp    = reverseOpTable(jmpOps)
	revAtomic = reverseOpTable(atomicOps)
)

func reverseOpTable[V comparable](ops map[string]V) map[V]string {
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	rev := make(map[V]string, len(names))
	for _, name := range names {
		if _, dup := rev[ops[name]]; !dup {
			rev[ops[name]] = name
		}
	}
	return rev
}

func disasmOne(ins Instruction) (string, error) {
	revSize := map[uint8]string{SizeB: "b", SizeH: "h", SizeW: "w", SizeDW: "dw"}

	switch ins.Class() {
	case ClassALU64, ClassALU:
		if ins.IsEndian() {
			dir := "le"
			if ins.Op&SrcReg != 0 {
				dir = "be"
			}
			return fmt.Sprintf("%s%d r%d", dir, ins.Imm, ins.Dst), nil
		}
		suffix := ""
		if ins.Class() == ClassALU {
			suffix = "32"
		}
		op := ins.Op & 0xf0
		if op == ALUNeg {
			return fmt.Sprintf("neg%s r%d", suffix, ins.Dst), nil
		}
		name, ok := revALU[op]
		if !ok {
			return "", fmt.Errorf("bad alu op")
		}
		if ins.Op&SrcReg != 0 {
			return fmt.Sprintf("%s%s r%d, r%d", name, suffix, ins.Dst, ins.Src), nil
		}
		return fmt.Sprintf("%s%s r%d, %d", name, suffix, ins.Dst, ins.Imm), nil
	case ClassJMP, ClassJMP32:
		op := ins.Op & 0xf0
		switch op {
		case JmpExit:
			return "exit", nil
		case JmpCall:
			return fmt.Sprintf("call %d", ins.Imm), nil
		case JmpA:
			return fmt.Sprintf("ja %+d", ins.Off), nil
		}
		name, ok := revJmp[op]
		if !ok {
			return "", fmt.Errorf("bad jmp op")
		}
		suffix := ""
		if ins.Class() == ClassJMP32 {
			suffix = "32"
		}
		if ins.Op&SrcReg != 0 {
			return fmt.Sprintf("%s%s r%d, r%d, %+d", name, suffix, ins.Dst, ins.Src, ins.Off), nil
		}
		return fmt.Sprintf("%s%s r%d, %d, %+d", name, suffix, ins.Dst, ins.Imm, ins.Off), nil
	case ClassLD:
		if ins.IsLDDW() {
			return fmt.Sprintf("lddw r%d, %#x", ins.Dst, uint64(ins.Imm64)), nil
		}
		return "", fmt.Errorf("bad ld")
	case ClassLDX:
		return fmt.Sprintf("ldx%s r%d, [r%d%+d]", revSize[ins.Op&0x18], ins.Dst, ins.Src, ins.Off), nil
	case ClassSTX:
		if ins.IsAtomic() {
			if name, ok := revAtomic[ins.Imm]; ok {
				return fmt.Sprintf("%s%s [r%d%+d], r%d", name, revSize[ins.Op&0x18], ins.Dst, ins.Off, ins.Src), nil
			}
			return "", fmt.Errorf("bad atomic op")
		}
		return fmt.Sprintf("stx%s [r%d%+d], r%d", revSize[ins.Op&0x18], ins.Dst, ins.Off, ins.Src), nil
	case ClassST:
		return fmt.Sprintf("st%s [r%d%+d], %d", revSize[ins.Op&0x18], ins.Dst, ins.Off, ins.Imm), nil
	}
	return "", fmt.Errorf("unknown class")
}
