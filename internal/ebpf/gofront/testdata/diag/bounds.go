// Variable array indices must be provably in range. The j access
// compiles: the guard's fallthrough refines j below the array length,
// which is the pattern the real offloads rely on.
package prog

type Ctx struct {
	Idx  uint64
	Len  uint16    `hyperion:"offset=8"`
	Vals [8]uint64 `hyperion:"offset=16"`
}

func Entry(ctx *Ctx) uint64 {
	i := ctx.Idx
	a := ctx.Vals[i] // want 16 "cannot prove the index stays below 8 for [8]uint64 (value is unbounded here)" array-bounds
	n := uint64(ctx.Len)
	b := ctx.Vals[n] // want 16 "cannot prove the index stays below 8 for [8]uint64 (possible range [0, 65535])" array-bounds
	j := ctx.Idx
	if j > 7 {
		return 0
	}
	c := ctx.Vals[j]
	return a + b + c
}
