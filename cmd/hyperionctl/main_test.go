package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// hyperionctlBin is the binary under test, built once in TestMain — the
// exit-code contract belongs to the executable, not the package, so
// these tests drive it through os/exec exactly as an operator would.
var hyperionctlBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hyperionctl-test")
	if err != nil {
		panic(err)
	}
	hyperionctlBin = filepath.Join(dir, "hyperionctl")
	out, err := exec.Command("go", "build", "-o", hyperionctlBin, ".").CombinedOutput()
	if err != nil {
		panic("building hyperionctl: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes hyperionctl with args and returns combined output and
// the exit code (0 on success, -1 if it did not exit normally).
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(hyperionctlBin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running hyperionctl %v: %v", args, err)
	return "", -1
}

func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full control sessions")
	}
	for _, tc := range []struct {
		name     string
		args     []string
		wantExit int
		wantOut  string
	}{
		{"usage", nil, 2, "usage: hyperionctl"},
		{"unknown command", []string{"frobnicate"}, 2, "unknown command"},
		{"status", []string{"status"}, 0, "dpu0"},
		{"load", []string{"load", "-slot", "1", "-mib", "8"}, 0, "partial reconfiguration"},
		{"forged load rejected", []string{"load", "-slot", "1", "-forge"}, 0, "load rejected"},
		{"session", []string{"session"}, 0, "forged bitstream is rejected"},
		{"trace needs positive probes", []string{"trace", "-probes", "0"}, 1, "must be positive"},
		{"trace bad dir", []string{"trace", "-dir", "no-such-dir"}, 1, "not a directory"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, exit := run(t, tc.args...)
			if exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d; output:\n%s", exit, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantOut) {
				t.Fatalf("output missing %q:\n%s", tc.wantOut, out)
			}
		})
	}
}

// TestTraceCommand drives an armed trace session end to end: the
// per-stage table and critical path print, the artifacts land in -dir,
// and the trace JSON is parseable with a populated event stream.
func TestTraceCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full control sessions")
	}
	dir := t.TempDir()
	out, exit := run(t, "trace", "-probes", "3", "-dir", dir)
	if exit != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", exit, out)
	}
	for _, want := range []string{
		"arbiter", "pipeline", "storage", "egress",
		"critical path", "trace artifacts:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "hyperionctl.trace.json"))
	if err != nil {
		t.Fatalf("trace artifact missing: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace JSON unparseable or empty (err=%v)", err)
	}
	for _, name := range []string{"hyperionctl.hist.txt", "hyperionctl.critpath.txt"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if len(b) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

// TestTraceDeterministic: two disjoint trace processes at the same
// parameters print byte-identical output — process isolation cannot
// hide wall-clock or map-order leaks.
func TestTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full control sessions")
	}
	a, exitA := run(t, "trace", "-probes", "4")
	b, exitB := run(t, "trace", "-probes", "4")
	if exitA != 0 || exitB != 0 {
		t.Fatalf("exits = %d, %d, want 0", exitA, exitB)
	}
	if a != b {
		t.Fatalf("trace output diverged across processes:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestTenantsCommand drives the multi-tenant scenario through the
// executable: flag validation, a parseable per-tenant SLO table, and
// cross-process byte-identity at a fixed seed.
func TestTenantsCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full tenant scenarios")
	}
	t.Run("bad flags exit 2", func(t *testing.T) {
		t.Parallel()
		for _, args := range [][]string{
			{"tenants", "-tenants", "0"},
			{"tenants", "-fault", "1.5"},
			{"tenants", "-lease-us", "-1"},
		} {
			out, exit := run(t, args...)
			if exit != 2 {
				t.Fatalf("%v: exit = %d, want 2; output:\n%s", args, exit, out)
			}
			if !strings.Contains(out, "tenants:") {
				t.Fatalf("%v: output missing diagnostic:\n%s", args, out)
			}
		}
	})
	t.Run("reports summary and per-tenant SLO table", func(t *testing.T) {
		t.Parallel()
		out, exit := run(t, "tenants", "-tenants", "8", "-fault", "0.01")
		if exit != 0 {
			t.Fatalf("exit = %d, want 0; output:\n%s", exit, out)
		}
		for _, want := range []string{"== E18", "aa-quiet", "ab-noisy", "zz-late", "goodput/s"} {
			if !strings.Contains(out, want) {
				t.Fatalf("output missing %q:\n%s", want, out)
			}
		}
		// The per-tenant table must parse: every tenant row has the
		// header's column count, and the quiet tenant's row carries a
		// numeric completion count.
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		var header []string
		rows := 0
		for _, line := range lines {
			f := strings.Fields(line)
			if len(f) > 0 && f[0] == "tenant" {
				header = f
				continue
			}
			if header == nil || len(f) == 0 || strings.HasPrefix(f[0], "-") {
				continue
			}
			rows++
			if len(f) != len(header) {
				t.Fatalf("row %q has %d fields, header has %d", line, len(f), len(header))
			}
			if f[0] == "aa-quiet" {
				if _, err := strconv.Atoi(f[7]); err != nil {
					t.Fatalf("quiet tenant ok column %q not numeric: %v", f[7], err)
				}
			}
		}
		if rows != 9 { // 8 arrivals + the late tenant
			t.Fatalf("per-tenant table has %d rows, want 9:\n%s", rows, out)
		}
	})
	t.Run("cross-process byte identity", func(t *testing.T) {
		t.Parallel()
		args := []string{"tenants", "-tenants", "10", "-lease-us", "2000", "-fault", "0.05", "-seed", "7"}
		a, exitA := run(t, args...)
		b, exitB := run(t, args...)
		if exitA != 0 || exitB != 0 {
			t.Fatalf("exits %d/%d, want 0", exitA, exitB)
		}
		if a != b {
			t.Fatalf("two identical invocations diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
		}
	})
}
