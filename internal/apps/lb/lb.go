// Package lb is the Tiara-style stateful layer-4 load balancer of §2.4:
// per-connection state lives in on-card DRAM while hot, and spills to
// the attached NVMe SSDs when the table outgrows memory — where Tiara
// had to punt overflow state to x86 servers, Hyperion keeps it local on
// flash. Lookup cost is charged through the segment store's cost model.
package lb

import (
	"encoding/binary"
	"fmt"

	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/trace"
)

// Backend identifies one real server behind the VIP.
type Backend struct {
	Addr   uint32
	Weight int
}

// Balancer is one deployed L4 load balancer.
type Balancer struct {
	v        *seg.SyncView
	backends []Backend
	// Hot connection table: DRAM-resident, bounded (models on-card
	// SRAM/DRAM capacity in connection entries).
	hot     flowTable
	hotCap  int
	hotCost sim.Duration // per hot-table access
	// victims orders candidate evictions by key so a full hot table
	// yields its smallest resident key in O(log n) instead of a full
	// map scan per insert. Entries go stale when flows close or spill;
	// insert discards those lazily.
	victims keyHeap
	// Spill store on NVMe.
	spill *kvssd.KV
	// Encode scratch for spill keys/values; the store copies on Put and
	// the balancer is single-threaded, so one buffer per balancer
	// suffices.
	kbuf [8]byte
	vbuf [4]byte
	// down marks backends withdrawn from selection (health-check
	// verdicts arrive via MarkBackendDown/Up). Flows steered to a down
	// backend fail over to the next healthy one.
	down map[uint32]bool

	Hits, SpillHits, Misses, Spills, NewConns, Closed int64
	Failovers                                         int64 // flows re-steered off a down backend
}

// New creates a balancer with the given hot-table capacity (entries).
func New(v *seg.SyncView, metaID seg.ObjectID, backends []Backend, hotCap int) (*Balancer, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("lb: need at least one backend")
	}
	spill, err := kvssd.Create(v, metaID, kvssd.BackendBTree, true)
	if err != nil {
		return nil, err
	}
	b := &Balancer{
		v:        v,
		backends: backends,
		hotCap:   hotCap,
		hotCost:  200 * sim.Nanosecond,
		spill:    spill,
	}
	b.hot.init(hotCap)
	return b, nil
}

// flowTable is the hot connection table as a struct-of-arrays
// open-addressing hash (keys, values, and slot states in parallel
// arrays with linear probing) — the layout an on-card CAM/SRAM lookup
// pipeline uses, and measurably cheaper per access than a boxed map
// for this fixed-shape u64→u32 workload.
type flowTable struct {
	keys  []uint64
	vals  []uint32
	state []uint8 // 0 empty, 1 full, 2 tombstone
	n     int     // live entries
	used  int     // full + tombstone slots
	mask  uint64
}

func (t *flowTable) init(hint int) {
	size := 16
	for size < hint*2 {
		size <<= 1
	}
	t.keys = make([]uint64, size)
	t.vals = make([]uint32, size)
	t.state = make([]uint8, size)
	t.mask = uint64(size - 1)
	t.n, t.used = 0, 0
}

// slot mixes the (already FNV-hashed) flow key into a probe start.
func (t *flowTable) slot(k uint64) uint64 { return (k ^ k>>33) & t.mask }

func (t *flowTable) get(k uint64) (uint32, bool) {
	for i := t.slot(k); ; i = (i + 1) & t.mask {
		switch t.state[i] {
		case 0:
			return 0, false
		case 1:
			if t.keys[i] == k {
				return t.vals[i], true
			}
		}
	}
}

func (t *flowTable) put(k uint64, v uint32) {
	if (t.used+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	firstTomb := -1
	for i := t.slot(k); ; i = (i + 1) & t.mask {
		switch t.state[i] {
		case 0:
			if firstTomb >= 0 {
				i = uint64(firstTomb)
			} else {
				t.used++
			}
			t.keys[i], t.vals[i], t.state[i] = k, v, 1
			t.n++
			return
		case 1:
			if t.keys[i] == k {
				t.vals[i] = v
				return
			}
		case 2:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		}
	}
}

func (t *flowTable) del(k uint64) {
	for i := t.slot(k); ; i = (i + 1) & t.mask {
		switch t.state[i] {
		case 0:
			return
		case 1:
			if t.keys[i] == k {
				t.state[i] = 2 // tombstone keeps probe chains intact
				t.n--
				return
			}
		}
	}
}

func (t *flowTable) grow() {
	ok, ov, os := t.keys, t.vals, t.state
	size := len(ok)
	if t.n*4 > size*2 { // genuinely full, not tombstone pressure
		size <<= 1
	}
	t.keys = make([]uint64, size)
	t.vals = make([]uint32, size)
	t.state = make([]uint8, size)
	t.mask = uint64(size - 1)
	t.n, t.used = 0, 0
	for i, s := range os {
		if s == 1 {
			t.put(ok[i], ov[i])
		}
	}
}

// flowKey hashes the 5-tuple.
func flowKey(p trace.Packet) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(p.SrcIP))
	mix(uint64(p.DstIP))
	mix(uint64(p.SrcPort))
	mix(uint64(p.DstPort))
	mix(uint64(p.Proto))
	return h
}

// keyBytes encodes a flow key into the balancer's scratch buffer; the
// result is valid until the next call.
func (b *Balancer) keyBytes(k uint64) []byte {
	binary.LittleEndian.PutUint64(b.kbuf[:], k)
	return b.kbuf[:]
}

// MarkBackendDown withdraws a backend: new flows avoid it and existing
// flows steered to it fail over on their next packet.
func (b *Balancer) MarkBackendDown(addr uint32) {
	if b.down == nil {
		b.down = make(map[uint32]bool)
	}
	b.down[addr] = true
}

// MarkBackendUp restores a backend to selection.
func (b *Balancer) MarkBackendUp(addr uint32) { delete(b.down, addr) }

// pickBackend selects a backend for a new flow (weighted by position;
// flow-hash affinity keeps selection deterministic). Down backends are
// skipped; with every backend down the affinity choice stands, since
// no alternative is better. With no backends down the result is
// identical to the pre-failover balancer.
func (b *Balancer) pickBackend(k uint64) uint32 {
	n := uint64(len(b.backends))
	first := b.backends[k%n].Addr
	if len(b.down) == 0 {
		return first
	}
	for i := uint64(0); i < n; i++ {
		if addr := b.backends[(k+i)%n].Addr; !b.down[addr] {
			return addr
		}
	}
	return first
}

// Steer processes one packet and returns the backend address it should
// go to (0 for packets on unknown flows that are not SYNs). The modeled
// cost of the decision accrues on the balancer's SyncView.
func (b *Balancer) Steer(p trace.Packet) (uint32, error) {
	k := flowKey(p)
	b.v.Charge(b.hotCost)
	if p.Flags == 0x02 { // SYN: new connection
		b.NewConns++
		dst := b.pickBackend(k)
		b.insert(k, dst)
		return dst, nil
	}
	if dst, ok := b.hot.get(k); ok {
		b.Hits++
		if p.Flags == 0x01 { // FIN
			b.hot.del(k)
			b.Closed++
			return dst, nil
		}
		if b.down[dst] {
			// Backend died under the flow: fail over to the next healthy
			// one and repin the connection.
			b.Failovers++
			dst = b.pickBackend(k)
			b.hot.put(k, dst)
		}
		return dst, nil
	}
	// Cold path: consult the spill store on NVMe.
	val, ok, err := b.spill.Get(b.keyBytes(k))
	if err != nil {
		return 0, err
	}
	if !ok {
		b.Misses++
		return 0, nil
	}
	b.SpillHits++
	dst := binary.LittleEndian.Uint32(val)
	if b.down[dst] && p.Flags != 0x01 {
		b.Failovers++
		dst = b.pickBackend(k)
	}
	if p.Flags == 0x01 { // FIN
		if _, err := b.spill.Delete(b.keyBytes(k)); err != nil {
			return 0, err
		}
		b.Closed++
		return dst, nil
	}
	// Promote the reactivated flow back into DRAM.
	b.insert(k, dst)
	if _, err := b.spill.Delete(b.keyBytes(k)); err != nil {
		return 0, err
	}
	return dst, nil
}

// insert places a flow in the hot table, spilling a victim to NVMe when
// at capacity.
func (b *Balancer) insert(k uint64, dst uint32) {
	if b.hot.n >= b.hotCap {
		// Evict the smallest resident key (hardware would use CLOCK;
		// smallest-key keeps the choice fully reproducible). The victim
		// heap holds every key ever inserted, so its minimum resident
		// entry is exactly min(hot): pop and discard stale entries for
		// keys that were closed or already evicted.
		var victim uint64
		var vdst uint32
		for {
			victim = b.victims.pop()
			if v, ok := b.hot.get(victim); ok {
				vdst = v
				break
			}
		}
		binary.LittleEndian.PutUint32(b.vbuf[:], vdst)
		if err := b.spill.Put(b.keyBytes(victim), b.vbuf[:]); err == nil {
			b.Spills++
			b.hot.del(victim)
		} else {
			b.victims.push(victim) // still resident; keep it evictable
		}
	}
	b.hot.put(k, dst)
	b.victims.push(k)
}

// keyHeap is a binary min-heap of flow keys. It may hold stale entries
// (closed or already-evicted flows); because every hot key has at least
// one entry, the smallest entry that is still resident equals the
// smallest key in the hot table.
type keyHeap []uint64

func (h *keyHeap) push(k uint64) {
	s := append(*h, k)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func (h *keyHeap) pop() uint64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1] < s[c] {
			c++
		}
		if s[i] <= s[c] {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}

// HotLen returns the hot-table occupancy.
func (b *Balancer) HotLen() int { return b.hot.n }

// SpilledApprox reports how many spills occurred (spill-store occupancy
// proxy).
func (b *Balancer) SpilledApprox() int64 { return b.Spills }
