package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, "c", func() { got = append(got, 3) })
	e.At(10, "a", func() { got = append(got, 1) })
	e.At(20, "b", func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, "tie", func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events ran out of order: pos %d got %d", i, got[i])
		}
	}
}

func TestEngineSchedulingPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, "past", func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, "x", func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel, cancel-after-run, and zero-ref cancel must not panic.
	e.Cancel(ev)
	e.Cancel(NoEvent)
	e.Cancel(EventRef{})
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(20, "victim", func() { fired = true })
	e.At(10, "canceller", func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.At(10, "x", func() {})
	e.At(1000, "y", func() {})
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want 500", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Now() != 1000 {
		t.Fatalf("Now = %v, want 1000", e.Now())
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.After(5, "outer", func() {
		trace = append(trace, e.Now())
		e.After(7, "inner", func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 5 || trace[1] != 12 {
		t.Fatalf("trace = %v, want [5 12]", trace)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnUniformish(t *testing.T) {
	r := NewRand(9)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		if c < trials/n*8/10 || c > trials/n*12/10 {
			t.Fatalf("bucket %d count %d far from uniform %d", i, c, trials/n)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[uint64]int)
	const trials = 200000
	for i := 0; i < trials; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: YCSB-style zipf 0.99 gives rank 0 several
	// percent of mass over 1000 items.
	if counts[0] < trials/50 {
		t.Fatalf("rank-0 mass too small: %d/%d", counts[0], trials)
	}
	if counts[0] <= counts[500] {
		t.Fatal("zipf not skewed: rank 0 not more common than rank 500")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(13)
	var sum Duration
	const n = 100000
	mean := 100 * Microsecond
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if got < mean*9/10 || got > mean*11/10 {
		t.Fatalf("Exp mean = %v, want ≈ %v", got, mean)
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Record(Duration(i))
	}
	if got := l.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := l.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := l.Min(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := l.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	if got := l.Mean(); got != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Fatalf("mean = %v, want 50", got)
	}
}

func TestLatencyRecorderRecordAfterSort(t *testing.T) {
	var l LatencyRecorder
	l.Record(10)
	_ = l.Percentile(50) // forces sort
	l.Record(1)
	if got := l.Min(); got != 1 {
		t.Fatalf("min after late record = %v, want 1", got)
	}
}

func TestCounterSet(t *testing.T) {
	var s CounterSet
	s.Get("a").Add(3)
	s.Get("b").Add(1)
	s.Get("a").Add(2)
	if v := s.Value("a"); v != 5 {
		t.Fatalf("a = %d, want 5", v)
	}
	if v := s.Value("missing"); v != 0 {
		t.Fatalf("missing = %d, want 0", v)
	}
	if got := s.String(); got != "a=5 b=1" {
		t.Fatalf("String = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "22")
	out := tb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	// Columns must align: every line has the same prefix width for col 1.
	if len(out) < 10 {
		t.Fatalf("implausible table: %q", out)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{5 * Second, "5.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(10, "tick", tick)
	}
	e.After(10, "tick", tick)
	e.RunWhile(func() bool { return count < 5 })
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%100), "bench", func() {})
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}
