package remotefs

import (
	"bytes"
	"errors"
	"testing"

	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/hfs"
	"hyperion/internal/transport"
)

func rig(t testing.TB) (*sim.Engine, *Server, *Mount) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := core.DefaultConfig("nas")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	cfg.Seg.CheckpointEvery = 0
	d, _, err := core.Boot(eng, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := hfs.Mkfs(d.View, seg.OID(0xF5, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d, d.CtrlSrv, fs)
	cn, _ := net.Attach("nfs-client")
	cli := rpc.NewClient(eng, transport.New(eng, cfg.Transport, cn))
	cli.Timeout = sim.Duration(sim.Second)
	return eng, srv, NewMount(cli, d.ControlAddr())
}

func TestRemoteFileLifecycle(t *testing.T) {
	eng, srv, m := rig(t)
	var step int
	check := func(err error) {
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		step++
	}
	m.Mkdir("/shared", func(err error) { check(err) })
	eng.Run()
	content := bytes.Repeat([]byte("remote!"), 5000)
	m.WriteFile("/shared/big.bin", content, func(err error) { check(err) })
	eng.Run()
	var got []byte
	m.ReadFile("/shared/big.bin", func(data []byte, err error) {
		check(err)
		got = data
	})
	eng.Run()
	if !bytes.Equal(got, content) {
		t.Fatal("remote read mismatch")
	}
	var st StatReply
	m.Stat("/shared/big.bin", func(rep StatReply, err error) {
		check(err)
		st = rep
	})
	eng.Run()
	if st.Size != int64(len(content)) || st.Type != hfs.TypeFile {
		t.Fatalf("stat = %+v", st)
	}
	var ents []hfs.DirEntry
	m.ReadDir("/shared", func(e []hfs.DirEntry, err error) {
		check(err)
		ents = e
	})
	eng.Run()
	if len(ents) != 1 || ents[0].Name != "big.bin" {
		t.Fatalf("readdir = %v", ents)
	}
	m.Unlink("/shared/big.bin", func(err error) { check(err) })
	eng.Run()
	var rerr error
	m.ReadFile("/shared/big.bin", func(_ []byte, err error) { rerr = err })
	eng.Run()
	if rerr == nil {
		t.Fatal("read after unlink succeeded")
	}
	if srv.Reads != 2 || srv.Writes != 1 {
		t.Fatalf("server counters r=%d w=%d", srv.Reads, srv.Writes)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	eng, _, m := rig(t)
	var got error
	m.ReadFile("/missing", func(_ []byte, err error) { got = err })
	eng.Run()
	if !errors.Is(got, rpc.ErrRemote) {
		t.Fatalf("err = %v, want wrapped remote error", got)
	}
	m.Mkdir("/a/b/c", func(err error) { got = err }) // parent missing
	eng.Run()
	if got == nil {
		t.Fatal("mkdir with missing parent succeeded")
	}
}

func TestRemoteReadChargesStorageTime(t *testing.T) {
	eng, _, m := rig(t)
	m.WriteFile("/f", bytes.Repeat([]byte{1}, 1<<16), func(error) {})
	eng.Run()
	start := eng.Now()
	var end sim.Time
	m.ReadFile("/f", func([]byte, error) { end = eng.Now() })
	eng.Run()
	// Path resolution + 64 KiB from flash: must cost at least one flash
	// read's worth of time on the durable filesystem.
	if end.Sub(start) < 70*sim.Microsecond {
		t.Fatalf("remote read took %v: storage time not charged", end.Sub(start))
	}
}
