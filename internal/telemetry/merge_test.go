package telemetry

import (
	"fmt"
	"testing"

	"hyperion/internal/sim"
)

// recordBox emits one box's deterministic telemetry stream: tagged
// spans across two layers, an untagged span, a bare observation and a
// counter. The stream depends only on idx, so any recorder that plays
// boxes in index order produces the same logical history.
func recordBox(r *Recorder, idx int) {
	base := sim.Time(int64(idx+1) * int64(10*sim.Microsecond))
	for op := 0; op < 3; op++ {
		req := r.NewRequest()
		t0 := base.Add(sim.Duration(op) * sim.Microsecond)
		mid := t0.Add(300 * sim.Nanosecond)
		end := t0.Add(sim.Duration(idx+op+1) * sim.Microsecond)
		r.Span("net", "frame", req, t0, mid)
		r.Span("nvme", "read", req, mid, end)
	}
	r.Span("net", "bg", 0, base, base.Add(50*sim.Nanosecond))
	r.Observe("kv", "put", sim.Duration(idx+1)*sim.Microsecond)
	r.Count("kv", "ops", int64(idx+1))
}

// TestMergeIntoShardCountInvariance pins the satellite contract for
// per-shard telemetry: four box streams recorded on one recorder must
// export byte-identically to the same streams recorded on two
// per-shard recorders merged in shard order — traces, histogram dumps,
// and critical-path summaries all included.
func TestMergeIntoShardCountInvariance(t *testing.T) {
	// 1-shard reference: one sink, boxes as children in box order.
	ref := NewRecorder("rack")
	for i := 0; i < 4; i++ {
		recordBox(ref.Child(fmt.Sprintf("box%d", i)), i)
	}

	// 2-shard layout: boxes {0,1} on shard 0, {2,3} on shard 1. Each
	// shard's root process is its first box, so after merging in shard
	// order the pid space matches the reference exactly.
	s0 := NewRecorder("box0")
	recordBox(s0, 0)
	recordBox(s0.Child("box1"), 1)
	s1 := NewRecorder("box2")
	recordBox(s1, 2)
	recordBox(s1.Child("box3"), 3)

	dst := NewRecorder("rack")
	s0.MergeInto(dst)
	s1.MergeInto(dst)

	if got, want := string(dst.ChromeTrace()), string(ref.ChromeTrace()); got != want {
		t.Errorf("merged trace differs from 1-shard trace:\n--- merged ---\n%s\n--- 1-shard ---\n%s", got, want)
	}
	if got, want := dst.HistogramDump(), ref.HistogramDump(); got != want {
		t.Errorf("merged histogram dump differs:\n--- merged ---\n%s\n--- 1-shard ---\n%s", got, want)
	}
	if got, want := dst.CriticalPath(), ref.CriticalPath(); got != want {
		t.Errorf("merged critical path differs:\n--- merged ---\n%s\n--- 1-shard ---\n%s", got, want)
	}
	if err := ValidateChromeTrace(dst.ChromeTrace()); err != nil {
		t.Errorf("merged trace fails validation: %v", err)
	}
	// Request ids must stay distinct across the merge: the next id in
	// the merged sink continues past both shards' allocations.
	if got, want := dst.NewRequest(), ref.NewRequest(); got != want {
		t.Errorf("merged next request id = %d, want %d", got, want)
	}
}

func TestMergeIntoNilSafety(t *testing.T) {
	var nilRec *Recorder
	dst := NewRecorder("d")
	nilRec.MergeInto(dst) // must not panic
	src := NewRecorder("s")
	recordBox(src, 0)
	src.MergeInto(nil) // must not panic
	if dst.Events() != 0 {
		t.Errorf("nil merges moved %d events", dst.Events())
	}
}

func TestMergeIntoSelfPanics(t *testing.T) {
	rec := NewRecorder("r")
	child := rec.Child("c")
	defer func() {
		if recover() == nil {
			t.Error("merging recorders sharing a sink did not panic")
		}
	}()
	child.MergeInto(rec)
}
