// Package spanpair is the flow-sensitive telemetry span pairing check:
// every span begun with Recorder.Begin must be ended exactly once on
// every path.
//
// A begun-but-never-ended ActiveSpan is silent data loss — the span
// simply never reaches the trace buffer, and the golden trace fixture
// or a latency histogram quietly loses a stage. The pass tracks each
// ActiveSpan value from its Begin through the flow package's CFG
// (including the defer chain, so `defer sp.End(...)` pairs) and
// reports spans that may reach function exit un-ended, spans ended
// twice on every path, and Begin results that are discarded outright.
// A span passed to another function, stored into a container, returned
// or captured by a closure escapes: pairing responsibility moved out
// of intra-procedural view.
//
// Like bufown, the check runs on every layer — span pairing is an API
// contract, not a determinism rule.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperion/internal/analysis"
	"hyperion/internal/analysis/flow"
)

// Analyzer is the spanpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "every telemetry span begun must be ended on all paths",
	Run:  run,
}

const telemetryPath = analysis.ModulePath + "/internal/telemetry"

type mask uint8

const (
	open mask = 1 << iota
	ended
	escaped
)

type cell struct {
	origin token.Pos
	m      mask
}

type state map[string]cell

func clone(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeFunc(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeFunc(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type prob struct {
	pass   *analysis.Pass
	report func(pos token.Pos, format string, args ...any)
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	p := &prob{pass: pass}
	g := flow.Build(body, pass.TypesInfo)
	res := flow.Solve(g, p, flow.Forward)

	seen := make(map[token.Pos]bool)
	p.report = func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, blk := range g.Blocks {
		in := res.In[blk]
		if in == nil {
			continue
		}
		st := in.(state)
		for _, n := range blk.Nodes {
			st = p.Transfer(n, st).(state)
		}
	}
	if exit := res.In[g.Exit]; exit != nil {
		st := exit.(state)
		var leaks []cell
		names := make(map[token.Pos]string)
		for k, c := range st {
			if c.m&open == 0 {
				continue
			}
			leaks = append(leaks, c)
			names[c.origin] = k
		}
		for i := 1; i < len(leaks); i++ {
			for j := i; j > 0 && leaks[j].origin < leaks[j-1].origin; j-- {
				leaks[j], leaks[j-1] = leaks[j-1], leaks[j]
			}
		}
		for _, c := range leaks {
			p.report(c.origin, "span %s begun here is not ended on every path", names[c.origin])
		}
	}
	p.report = nil
}

func (p *prob) Boundary() flow.State { return state{} }

func (p *prob) Merge(a, b flow.State) flow.State {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := clone(a.(state))
	for k, bc := range b.(state) {
		ac, ok := out[k]
		if !ok {
			out[k] = bc
			continue
		}
		ac.m |= bc.m
		if bc.origin != token.NoPos && (ac.origin == token.NoPos || bc.origin < ac.origin) {
			ac.origin = bc.origin
		}
		out[k] = ac
	}
	return out
}

func (p *prob) Equal(a, b flow.State) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	as, bs := a.(state), b.(state)
	if len(as) != len(bs) {
		return false
	}
	for k, av := range as {
		if bv, ok := bs[k]; !ok || av != bv {
			return false
		}
	}
	return true
}

func (p *prob) FlowEdge(e flow.Edge, s flow.State) flow.State { return s }

func (p *prob) Transfer(n ast.Node, s flow.State) flow.State {
	st := s.(state)
	switch n := n.(type) {
	case *ast.AssignStmt:
		return p.assign(n, st)
	case *ast.ExprStmt:
		return p.exprStmt(n, st)
	case *ast.ReturnStmt:
		st = p.escapeClosures(n, st)
		for _, r := range n.Results {
			if rp := flow.Path(p.pass.TypesInfo, p.pass.Pkg, r); rp != "" {
				st = p.escapePath(rp, st)
			}
		}
		return st
	case *ast.DeferStmt:
		return st // modeled by the CFG defer chain
	case *ast.GoStmt:
		return p.escapeArgs(n.Call, p.escapeClosures(n, st))
	default:
		return p.escapeClosures(n, st)
	}
}

func (p *prob) assign(n *ast.AssignStmt, st state) state {
	st = p.escapeClosures(n, st)
	if len(n.Rhs) == 1 {
		rhs := analysis.Unparen(n.Rhs[0])
		lhsPath := flow.Path(p.pass.TypesInfo, p.pass.Pkg, n.Lhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			if p.isBegin(call) {
				out := clone(st)
				if lhsPath == "" {
					p.reportf(call.Pos(), "span begun here is discarded and can never be ended")
					return out
				}
				out[lhsPath] = cell{origin: call.Pos(), m: open}
				return out
			}
			return p.escapeArgs(call, st)
		}
		// sp2 := sp moves the pairing obligation; storing through a
		// pointer (c.sp = sp with c a *T) publishes it — escape.
		if rhsPath := flow.Path(p.pass.TypesInfo, p.pass.Pkg, rhs); rhsPath != "" {
			if c, ok := st[rhsPath]; ok && lhsPath != "" && !storesThroughPointer(p.pass.TypesInfo, n.Lhs[0]) {
				out := clone(st)
				delete(out, rhsPath)
				out[lhsPath] = c
				return out
			}
			if _, ok := st[rhsPath]; ok {
				return p.escapePath(rhsPath, st)
			}
		}
	}
	for _, r := range n.Rhs {
		st = p.escapeNested(r, st)
	}
	return st
}

func (p *prob) exprStmt(n *ast.ExprStmt, st state) state {
	st = p.escapeClosures(n, st)
	call, ok := analysis.Unparen(n.X).(*ast.CallExpr)
	if !ok {
		return st
	}
	if p.isBegin(call) {
		p.reportf(call.Pos(), "span begun here is discarded and can never be ended")
		return st
	}
	if recv, ok := p.endReceiver(call); ok {
		recv = analysis.Unparen(recv)
		if inner, ok := recv.(*ast.CallExpr); ok && p.isBegin(inner) {
			return st // chained Begin(...).End(...): trivially paired
		}
		rp := flow.Path(p.pass.TypesInfo, p.pass.Pkg, recv)
		if rp == "" {
			return st
		}
		c, ok := st[rp]
		if !ok || c.m&escaped != 0 {
			return st
		}
		out := clone(st)
		if c.m&open == 0 && c.m&ended != 0 {
			p.reportf(call.Pos(), "span %s is already ended on every path reaching this End (double End records a duplicate event)", rp)
			return out
		}
		c.m = ended
		out[rp] = c
		return out
	}
	return p.escapeArgs(call, st)
}

// isBegin matches telemetry.(*Recorder).Begin.
func (p *prob) isBegin(call *ast.CallExpr) bool {
	fn := analysis.Callee(p.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Begin" || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// endReceiver matches sp.End(...) on a telemetry.ActiveSpan receiver.
func (p *prob) endReceiver(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil, false
	}
	if !isActiveSpan(p.pass.TypesInfo.TypeOf(sel.X)) {
		return nil, false
	}
	return sel.X, true
}

// storesThroughPointer reports whether lhs writes a field through a
// pointer — publishing the value into storage with its own lifetime.
func storesThroughPointer(info *types.Info, lhs ast.Expr) bool {
	sel, ok := analysis.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, ok = info.TypeOf(sel.X).(*types.Pointer)
	return ok
}

func isActiveSpan(t types.Type) bool {
	return t != nil && analysis.IsNamed(t, telemetryPath, "ActiveSpan")
}

// escapeArgs ends tracking for spans handed to another function.
func (p *prob) escapeArgs(call *ast.CallExpr, st state) state {
	out := st
	for _, a := range call.Args {
		a = analysis.Unparen(a)
		if pth := flow.Path(p.pass.TypesInfo, p.pass.Pkg, a); pth != "" {
			out = p.escapePath(pth, out)
		}
		out = p.escapeNested(a, out)
	}
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if !isActiveSpan(p.pass.TypesInfo.TypeOf(sel.X)) {
			if pth := flow.Path(p.pass.TypesInfo, p.pass.Pkg, sel.X); pth != "" {
				out = p.escapePath(pth, out)
			}
		}
	}
	return out
}

func (p *prob) escapeNested(n ast.Node, st state) state {
	out := st
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && !p.isBegin(call) {
			if _, isEnd := p.endReceiver(call); !isEnd {
				out = p.escapeArgs(call, out)
			}
		}
		return true
	})
	return out
}

func (p *prob) escapePath(path string, st state) state {
	var out state
	prefix := path + "."
	for k, c := range st {
		if k != path && !strings.HasPrefix(k, prefix) {
			continue
		}
		if out == nil {
			out = clone(st)
		}
		c.m = escaped
		out[k] = c
	}
	if out == nil {
		return st
	}
	return out
}

func (p *prob) escapeClosures(n ast.Node, st state) state {
	if len(st) == 0 {
		return st
	}
	out := st
	ast.Inspect(n, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(b ast.Node) bool {
			if id, ok := b.(*ast.Ident); ok {
				for k := range out {
					root, _, _ := strings.Cut(k, ".")
					if root == id.Name {
						out = p.escapePath(root, out)
					}
				}
			}
			return true
		})
		return false
	})
	return out
}

func (p *prob) reportf(pos token.Pos, format string, args ...any) {
	if p.report != nil {
		p.report(pos, format, args...)
	}
}
