package fail2ban

import (
	"bytes"
	"testing"

	"hyperion/internal/ebpf"
	"hyperion/internal/trace"
)

// The frontend-compiled filter must match the hand-assembled oracle
// shape-for-shape: same length, and at every index the same opcode,
// offset, and immediates (register choices are free — the ehdl
// pipeline metrics are renaming-invariant).
func TestFrontendShapeMatchesHandAssembly(t *testing.T) {
	for _, threshold := range []int{1, 3, 5, 100} {
		hand, err := ebpf.Assemble(Program(threshold))
		if err != nil {
			t.Fatalf("assembling oracle: %v", err)
		}
		front, err := CompileFilter(threshold)
		if err != nil {
			t.Fatalf("frontend compile: %v", err)
		}
		n := len(front)
		if len(hand) < n {
			n = len(hand)
		}
		bad := 0
		for i := 0; i < n; i++ {
			f, h := front[i], hand[i]
			if f.Op != h.Op || f.Off != h.Off || f.Imm != h.Imm || f.Imm64 != h.Imm64 {
				t.Errorf("threshold %d insn %d: frontend {op %#02x off %d imm %d} vs hand {op %#02x off %d imm %d}",
					threshold, i, f.Op, f.Off, f.Imm, h.Op, h.Off, h.Imm)
				if bad++; bad > 12 {
					break
				}
			}
		}
		if len(front) != len(hand) {
			t.Errorf("threshold %d: frontend %d insns, hand %d", threshold, len(front), len(hand))
		}
		if t.Failed() {
			t.Logf("frontend:\n%s", ebpf.Disassemble(front))
			t.Logf("hand:\n%s", ebpf.Disassemble(hand))
			t.FailNow()
		}
	}
}

// Behavioral half: both programs over a seeded attack trace must agree
// on every verdict and end with identical ban and failure-count maps.
func TestFrontendBehaviorMatchesHandAssembly(t *testing.T) {
	const threshold = 3
	hand, err := ebpf.Assemble(Program(threshold))
	if err != nil {
		t.Fatalf("assembling oracle: %v", err)
	}
	front, err := CompileFilter(threshold)
	if err != nil {
		t.Fatalf("frontend compile: %v", err)
	}

	type instance struct {
		vm    *ebpf.VM
		bans  *ebpf.HashMap
		fails *ebpf.HashMap
	}
	load := func(prog []ebpf.Instruction) instance {
		maps := &ebpf.MapSet{}
		bans := ebpf.NewHashMap(4, 8, 1<<16)
		fails := ebpf.NewHashMap(4, 8, 1<<16)
		maps.Add(bans)
		maps.Add(fails)
		vcfg := ebpf.DefaultVerifierConfig(maps)
		vcfg.CtxSize = ctxBytes
		if err := ebpf.Verify(prog, vcfg); err != nil {
			t.Fatalf("verify: %v", err)
		}
		vm := ebpf.NewVM(maps)
		if err := vm.Load(prog); err != nil {
			t.Fatalf("load: %v", err)
		}
		return instance{vm: vm, bans: bans, fails: fails}
	}
	fi, hi := load(front), load(hand)

	gen := trace.NewAttackGen(7, 5)
	for i := 0; i < 3000; i++ {
		ctx := gen.Next().Marshal()
		vf, errF := fi.vm.RunInterpreted(append([]byte(nil), ctx...))
		vh, errH := hi.vm.RunInterpreted(append([]byte(nil), ctx...))
		if errF != nil || errH != nil {
			t.Fatalf("packet %d: frontend err %v, hand err %v", i, errF, errH)
		}
		if vf != vh {
			t.Fatalf("packet %d: frontend verdict %d, hand verdict %d", i, vf, vh)
		}
	}
	diffMap := func(name string, a, b *ebpf.HashMap) {
		type kv struct{ k, v []byte }
		var av []kv
		a.Iterate(func(k, v []byte) bool {
			av = append(av, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
			return true
		})
		i := 0
		ok := true
		b.Iterate(func(k, v []byte) bool {
			if i >= len(av) || !bytes.Equal(av[i].k, k) || !bytes.Equal(av[i].v, v) {
				ok = false
				return false
			}
			i++
			return true
		})
		if !ok || i != len(av) {
			t.Errorf("%s map state diverges between frontend and hand program", name)
		}
	}
	diffMap("bans", fi.bans, hi.bans)
	diffMap("fails", fi.fails, hi.fails)
}
