package transport

import (
	"hyperion/internal/netsim"
	"hyperion/internal/sim"
)

// reliableParams differentiate the TCP-like software transport from the
// RDMA-like hardware transport: window size, retransmission timeout, and
// per-message/per-frame processing overheads.
type reliableParams struct {
	Window       int
	RTO          sim.Duration
	SendOverhead sim.Duration // per message, sender side
	RecvOverhead sim.Duration // per message, receiver side
	PerFrameCPU  sim.Duration // serialized per-frame software cost
}

// reliableEndpoint implements go-back-N reliable delivery with per-peer
// connections and cumulative acks.
type reliableEndpoint struct {
	eng   *sim.Engine
	nic   *netsim.NIC
	kind  Kind
	p     reliableParams
	stats Stats

	handler func(src netsim.Addr, msg Message)
	conns   map[netsim.Addr]*sendConn
	peers   map[netsim.Addr]*recvConn
	cpuBusy sim.Time
	nextID  uint64
}

type outFrag struct {
	frag dataFrag
	wire int
}

type sendConn struct {
	dst      netsim.Addr
	base     uint64 // lowest unacked seq
	nextSeq  uint64 // next seq to assign
	sent     uint64 // next seq to transmit (may trail nextSeq under window limit)
	buf      map[uint64]outFrag
	rtoTimer sim.EventRef
	backoff  int
}

type recvConn struct {
	expected uint64
	partial  map[uint64]*reasm
}

func newReliable(eng *sim.Engine, nic *netsim.NIC, kind Kind, p reliableParams) *reliableEndpoint {
	r := &reliableEndpoint{
		eng:   eng,
		nic:   nic,
		kind:  kind,
		p:     p,
		conns: make(map[netsim.Addr]*sendConn),
		peers: make(map[netsim.Addr]*recvConn),
	}
	nic.OnReceive(r.onFrame)
	return r
}

func (r *reliableEndpoint) Addr() netsim.Addr { return r.nic.Addr }
func (r *reliableEndpoint) Kind() Kind        { return r.kind }
func (r *reliableEndpoint) Stats() *Stats     { return &r.stats }

func (r *reliableEndpoint) OnMessage(fn func(src netsim.Addr, msg Message)) { r.handler = fn }

func (r *reliableEndpoint) conn(dst netsim.Addr) *sendConn {
	c, ok := r.conns[dst]
	if !ok {
		c = &sendConn{dst: dst, buf: make(map[uint64]outFrag)}
		r.conns[dst] = c
	}
	return c
}

func (r *reliableEndpoint) Send(dst netsim.Addr, msg Message) error {
	if msg.Bytes > MaxMessageBytes {
		return ErrTooLarge
	}
	r.nextID++
	id := r.nextID
	c := r.conn(dst)
	n := fragsFor(msg.Bytes)
	r.stats.Sent++
	r.eng.After(r.p.SendOverhead, "rel.send", func() {
		for i := 0; i < n; i++ {
			frag := dataFrag{MsgID: id, Index: i, Total: n, Bytes: msg.Bytes, Seq: c.nextSeq, Span: msg.Span}
			if i == n-1 {
				frag.Payload = msg.Payload
			}
			c.buf[c.nextSeq] = outFrag{frag: frag, wire: fragWire(msg.Bytes, i)}
			c.nextSeq++
		}
		r.pump(c)
	})
	return nil
}

// cpuDelay serializes per-frame software cost on the endpoint's one
// logical core; it returns the extra delay before the frame may be
// handed to the NIC.
func (r *reliableEndpoint) cpuDelay() sim.Duration {
	if r.p.PerFrameCPU == 0 {
		return 0
	}
	now := r.eng.Now()
	start := r.cpuBusy
	if start < now {
		start = now
	}
	r.cpuBusy = start.Add(r.p.PerFrameCPU)
	return r.cpuBusy.Sub(now)
}

// pump transmits frames permitted by the window.
func (r *reliableEndpoint) pump(c *sendConn) {
	for c.sent < c.nextSeq && c.sent < c.base+uint64(r.p.Window) {
		of, ok := c.buf[c.sent]
		if !ok {
			c.sent++
			continue
		}
		r.transmit(c, of)
		c.sent++
	}
	if !c.rtoTimer.Valid() && c.base < c.nextSeq {
		r.armRTO(c)
	}
}

func (r *reliableEndpoint) transmit(c *sendConn, of outFrag) {
	d := r.cpuDelay()
	send := func() {
		_ = r.nic.Send(netsim.Frame{Dst: c.dst, Payload: of.frag, Bytes: of.wire, Span: of.frag.Span})
		r.stats.DataFrames++
	}
	if d > 0 {
		r.eng.After(d, "rel.tx", send)
	} else {
		send()
	}
}

func (r *reliableEndpoint) armRTO(c *sendConn) {
	rto := r.p.RTO << uint(c.backoff)
	c.rtoTimer = r.eng.After(rto, "rel.rto", func() {
		c.rtoTimer = sim.NoEvent
		if c.base >= c.nextSeq {
			return
		}
		// Go-back-N: retransmit the whole window from base.
		if c.backoff < 6 {
			c.backoff++
		}
		end := c.base + uint64(r.p.Window)
		if end > c.nextSeq {
			end = c.nextSeq
		}
		for s := c.base; s < end; s++ {
			if of, ok := c.buf[s]; ok {
				r.transmit(c, of)
				r.stats.Retransmits++
			}
		}
		c.sent = end
		r.armRTO(c)
	})
}

func (r *reliableEndpoint) onFrame(f netsim.Frame) {
	switch pl := f.Payload.(type) {
	case ctrlMsg:
		if pl.Op == ackOp {
			r.onAck(f.Src, pl.Seq)
		}
	case dataFrag:
		r.onData(f.Src, pl)
	}
}

func (r *reliableEndpoint) onAck(src netsim.Addr, cum uint64) {
	c, ok := r.conns[src]
	if !ok {
		return
	}
	if cum <= c.base {
		return
	}
	for s := c.base; s < cum; s++ {
		delete(c.buf, s)
	}
	c.base = cum
	c.backoff = 0
	r.eng.Cancel(c.rtoTimer) // no-op on the zero ref or a fired timer
	c.rtoTimer = sim.NoEvent
	r.pump(c)
}

func (r *reliableEndpoint) peer(src netsim.Addr) *recvConn {
	p, ok := r.peers[src]
	if !ok {
		p = &recvConn{partial: make(map[uint64]*reasm)}
		r.peers[src] = p
	}
	return p
}

func (r *reliableEndpoint) onData(src netsim.Addr, frag dataFrag) {
	p := r.peer(src)
	if frag.Seq == p.expected {
		p.expected++
		r.accept(src, p, frag)
	}
	// Ack cumulatively whether in order or not (duplicate acks trigger
	// nothing special in go-back-N; the sender relies on RTO).
	r.sendCtrl(src, ctrlMsg{Op: ackOp, Seq: p.expected})
}

func (r *reliableEndpoint) accept(src netsim.Addr, p *recvConn, frag dataFrag) {
	rm, ok := p.partial[frag.MsgID]
	if !ok {
		rm = &reasm{total: frag.Total, bytes: frag.Bytes, span: frag.Span}
		p.partial[frag.MsgID] = rm
	}
	rm.have++
	if frag.Payload != nil {
		rm.payload = frag.Payload
	}
	if rm.have == rm.total {
		delete(p.partial, frag.MsgID)
		r.stats.Delivered++
		payload, bytes, span := rm.payload, rm.bytes, rm.span
		r.eng.After(r.p.RecvOverhead, "rel.deliver", func() {
			if r.handler != nil {
				r.handler(src, Message{Payload: payload, Bytes: bytes, Span: span})
			}
		})
	}
}

func (r *reliableEndpoint) sendCtrl(dst netsim.Addr, m ctrlMsg) {
	_ = r.nic.Send(netsim.Frame{Dst: dst, Payload: m, Bytes: headerBytes})
	r.stats.CtrlFrames++
}
