// Package colfmt implements the Parquet/Arrow-style columnar pipeline of
// §2.3: a columnar on-storage format (row groups, per-column chunks,
// min/max statistics) written into segment objects, an Arrow-like
// in-memory batch representation, and a scan path with predicate
// pushdown that an accelerator can run next to the data — so columnar
// analytics never bounce through a host CPU.
package colfmt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyperion/internal/seg"
)

// ColumnType enumerates supported column types.
type ColumnType uint8

const (
	TypeInt64 ColumnType = iota + 1
	TypeString
)

// Column declares one schema column.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is an ordered column list.
type Schema struct {
	Columns []Column
}

// ColumnIndex returns the position of the named column.
func (s Schema) ColumnIndex(name string) (int, error) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("colfmt: no column %q", name)
}

// Batch is the Arrow-like in-memory representation: one slice per
// column, all the same length.
type Batch struct {
	Schema  Schema
	Int64s  map[string][]int64
	Strings map[string][]string
}

// NewBatch creates an empty batch for the schema.
func NewBatch(s Schema) *Batch {
	return &Batch{Schema: s, Int64s: map[string][]int64{}, Strings: map[string][]string{}}
}

// Rows returns the number of rows.
func (b *Batch) Rows() int {
	for _, c := range b.Schema.Columns {
		if c.Type == TypeInt64 {
			return len(b.Int64s[c.Name])
		}
		return len(b.Strings[c.Name])
	}
	return 0
}

// AppendRow adds one row; vals must match the schema order and types.
func (b *Batch) AppendRow(vals ...any) error {
	if len(vals) != len(b.Schema.Columns) {
		return fmt.Errorf("colfmt: row has %d values, schema has %d columns", len(vals), len(b.Schema.Columns))
	}
	for i, c := range b.Schema.Columns {
		switch c.Type {
		case TypeInt64:
			v, ok := vals[i].(int64)
			if !ok {
				return fmt.Errorf("colfmt: column %s wants int64, got %T", c.Name, vals[i])
			}
			b.Int64s[c.Name] = append(b.Int64s[c.Name], v)
		case TypeString:
			v, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("colfmt: column %s wants string, got %T", c.Name, vals[i])
			}
			b.Strings[c.Name] = append(b.Strings[c.Name], v)
		}
	}
	return nil
}

// AppendInt64s adds one row of int64 values without boxing; the schema
// must be all-int64 (the common telemetry/analytics shape). The variadic
// slice never escapes, so a call with literal arguments is allocation-free.
func (b *Batch) AppendInt64s(vals ...int64) error {
	if len(vals) != len(b.Schema.Columns) {
		return fmt.Errorf("colfmt: row has %d values, schema has %d columns", len(vals), len(b.Schema.Columns))
	}
	for i, c := range b.Schema.Columns {
		if c.Type != TypeInt64 {
			return fmt.Errorf("colfmt: column %s is not int64", c.Name)
		}
		b.Int64s[c.Name] = append(b.Int64s[c.Name], vals[i])
	}
	return nil
}

// Errors.
var ErrCorrupt = errors.New("colfmt: corrupt table object")

const tableMagic = 0x434f4c31 // "COL1"

// Writer serializes batches into a table object.
type Writer struct {
	v            *seg.SyncView
	schema       Schema
	rowsPerGroup int
	groups       [][]byte // encoded row groups
	pending      *Batch
}

// NewWriter creates a writer.
func NewWriter(v *seg.SyncView, schema Schema, rowsPerGroup int) *Writer {
	if rowsPerGroup <= 0 {
		rowsPerGroup = 1024
	}
	return &Writer{v: v, schema: schema, rowsPerGroup: rowsPerGroup, pending: NewBatch(schema)}
}

// Append adds one row.
func (w *Writer) Append(vals ...any) error {
	if err := w.pending.AppendRow(vals...); err != nil {
		return err
	}
	if w.pending.Rows() >= w.rowsPerGroup {
		w.flushGroup()
	}
	return nil
}

// AppendInt64s adds one row to an all-int64 table without boxing.
func (w *Writer) AppendInt64s(vals ...int64) error {
	if err := w.pending.AppendInt64s(vals...); err != nil {
		return err
	}
	if w.pending.Rows() >= w.rowsPerGroup {
		w.flushGroup()
	}
	return nil
}

func (w *Writer) flushGroup() {
	if w.pending.Rows() == 0 {
		return
	}
	w.groups = append(w.groups, encodeGroup(w.pending))
	w.pending = NewBatch(w.schema)
}

// encodeGroup lays out one row group:
// rows(u32) then per column: for int64: min(8) max(8) values(8*rows);
// for string: totalLen(u32) then len(u16)+bytes per value.
func encodeGroup(b *Batch) []byte {
	rows := b.Rows()
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, uint32(rows))
	for _, c := range b.Schema.Columns {
		switch c.Type {
		case TypeInt64:
			vals := b.Int64s[c.Name]
			mn, mx := vals[0], vals[0]
			for _, v := range vals {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			chunk := make([]byte, 16+8*rows)
			binary.LittleEndian.PutUint64(chunk, uint64(mn))
			binary.LittleEndian.PutUint64(chunk[8:], uint64(mx))
			for i, v := range vals {
				binary.LittleEndian.PutUint64(chunk[16+i*8:], uint64(v))
			}
			buf = append(buf, chunk...)
		case TypeString:
			vals := b.Strings[c.Name]
			total := 0
			for _, s := range vals {
				total += 2 + len(s)
			}
			chunk := make([]byte, 4, 4+total)
			binary.LittleEndian.PutUint32(chunk, uint32(total))
			for _, s := range vals {
				var l [2]byte
				binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
				chunk = append(chunk, l[:]...)
				chunk = append(chunk, s...)
			}
			buf = append(buf, chunk...)
		}
	}
	return buf
}

// Close flushes and writes the table into object id. Layout:
// magic(4) ncols(2) rowsPerGroup pad — schema — ngroups(4) —
// group offsets/lengths — group payloads.
func (w *Writer) Close(id seg.ObjectID, durable bool) error {
	w.flushGroup()
	// Header: schema.
	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head, tableMagic)
	binary.LittleEndian.PutUint16(head[4:], uint16(len(w.schema.Columns)))
	for _, c := range w.schema.Columns {
		head = append(head, byte(c.Type), byte(len(c.Name)))
		head = append(head, c.Name...)
	}
	var idx []byte
	var payload []byte
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(w.groups)))
	idx = append(idx, cnt[:]...)
	// Offsets are relative to payload start.
	off := 0
	for _, g := range w.groups {
		var ent [8]byte
		binary.LittleEndian.PutUint32(ent[:], uint32(off))
		binary.LittleEndian.PutUint32(ent[4:], uint32(len(g)))
		idx = append(idx, ent[:]...)
		payload = append(payload, g...)
		off += len(g)
	}
	full := append(append(head, idx...), payload...)
	if _, err := w.v.Alloc(id, int64(len(full)), durable, seg.HintAuto); err != nil {
		return err
	}
	return w.v.WriteAt(id, 0, full)
}

// Reader scans a table object.
type Reader struct {
	v          *seg.SyncView
	id         seg.ObjectID
	Schema     Schema
	groups     []groupRef
	payloadOff int64

	// Scan statistics (predicate pushdown effectiveness).
	GroupsRead, GroupsSkipped int64
}

type groupRef struct {
	off, size int64
}

// OpenReader parses a table object's header and group index.
func OpenReader(v *seg.SyncView, id seg.ObjectID) (*Reader, error) {
	sg, err := v.Stat(id)
	if err != nil {
		return nil, err
	}
	// Read the whole header region lazily: first a prefix, then exact.
	probe := int64(4096)
	if probe > sg.Size {
		probe = sg.Size
	}
	buf, err := v.ReadAt(id, 0, probe)
	if err != nil {
		return nil, err
	}
	if len(buf) < 8 || binary.LittleEndian.Uint32(buf) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r := &Reader{v: v, id: id}
	ncols := int(binary.LittleEndian.Uint16(buf[4:]))
	off := 8
	for i := 0; i < ncols; i++ {
		if off+2 > len(buf) {
			return nil, fmt.Errorf("%w: truncated schema", ErrCorrupt)
		}
		typ := ColumnType(buf[off])
		nl := int(buf[off+1])
		if off+2+nl > len(buf) {
			return nil, fmt.Errorf("%w: truncated column name", ErrCorrupt)
		}
		r.Schema.Columns = append(r.Schema.Columns, Column{Name: string(buf[off+2 : off+2+nl]), Type: typ})
		off += 2 + nl
	}
	if off+4 > len(buf) {
		return nil, fmt.Errorf("%w: truncated index", ErrCorrupt)
	}
	ngroups := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	need := int64(off + ngroups*8)
	if need > int64(len(buf)) {
		buf, err = r.v.ReadAt(id, 0, need)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < ngroups; i++ {
		r.groups = append(r.groups, groupRef{
			off:  int64(binary.LittleEndian.Uint32(buf[off:])),
			size: int64(binary.LittleEndian.Uint32(buf[off+4:])),
		})
		off += 8
	}
	r.payloadOff = int64(off)
	return r, nil
}

// Groups returns the row-group count.
func (r *Reader) Groups() int { return len(r.groups) }

// decodeGroup parses one raw group into a batch.
func (r *Reader) decodeGroup(raw []byte) (*Batch, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: short group", ErrCorrupt)
	}
	rows := int(binary.LittleEndian.Uint32(raw))
	b := NewBatch(r.Schema)
	off := 4
	for _, c := range r.Schema.Columns {
		switch c.Type {
		case TypeInt64:
			if off+16+8*rows > len(raw) {
				return nil, fmt.Errorf("%w: short int64 chunk", ErrCorrupt)
			}
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = int64(binary.LittleEndian.Uint64(raw[off+16+i*8:]))
			}
			b.Int64s[c.Name] = vals
			off += 16 + 8*rows
		case TypeString:
			if off+4 > len(raw) {
				return nil, fmt.Errorf("%w: short string chunk", ErrCorrupt)
			}
			total := int(binary.LittleEndian.Uint32(raw[off:]))
			off += 4
			end := off + total
			vals := make([]string, 0, rows)
			for i := 0; i < rows; i++ {
				if off+2 > end {
					return nil, fmt.Errorf("%w: short string", ErrCorrupt)
				}
				l := int(binary.LittleEndian.Uint16(raw[off:]))
				vals = append(vals, string(raw[off+2:off+2+l]))
				off += 2 + l
			}
			b.Strings[c.Name] = vals
		}
	}
	return b, nil
}

// groupStats reads only a group's min/max for an int64 column without
// decoding the whole group. colOffset is computed from preceding
// columns, which requires string columns to be after the stats column or
// the caller to use ReadGroup; for simplicity stats pushdown works when
// the predicate column is the FIRST int64 column.
func (r *Reader) groupStats(g groupRef, colPos int) (mn, mx int64, ok bool, err error) {
	if colPos != 0 {
		return 0, 0, false, nil
	}
	buf, err := r.v.ReadAt(r.id, r.payloadOff+g.off, 20)
	if err != nil {
		return 0, 0, false, err
	}
	return int64(binary.LittleEndian.Uint64(buf[4:])), int64(binary.LittleEndian.Uint64(buf[12:])), true, nil
}

// ReadGroup fully decodes group i.
func (r *Reader) ReadGroup(i int) (*Batch, error) {
	if i < 0 || i >= len(r.groups) {
		return nil, fmt.Errorf("colfmt: group %d out of range", i)
	}
	g := r.groups[i]
	raw, err := r.v.ReadAt(r.id, r.payloadOff+g.off, g.size)
	if err != nil {
		return nil, err
	}
	r.GroupsRead++
	return r.decodeGroup(raw)
}

// ScanInt64 visits rows where lo <= col value <= hi, skipping row groups
// whose statistics exclude the range (predicate pushdown). fn receives
// the row's batch and index.
func (r *Reader) ScanInt64(col string, lo, hi int64, fn func(b *Batch, row int) bool) error {
	pos, err := r.Schema.ColumnIndex(col)
	if err != nil {
		return err
	}
	if r.Schema.Columns[pos].Type != TypeInt64 {
		return fmt.Errorf("colfmt: column %s is not int64", col)
	}
	for i, g := range r.groups {
		mn, mx, ok, err := r.groupStats(g, pos)
		if err != nil {
			return err
		}
		if ok && (mx < lo || mn > hi) {
			r.GroupsSkipped++
			continue
		}
		b, err := r.ReadGroup(i)
		if err != nil {
			return err
		}
		vals := b.Int64s[col]
		for row, v := range vals {
			if v >= lo && v <= hi {
				if !fn(b, row) {
					return nil
				}
			}
		}
	}
	return nil
}
