package nvme

import (
	"errors"
	"fmt"
)

// ZNS implements the NVMe Zoned Namespaces command set (§2 lists ZNS as
// one of Hyperion's application-selected storage APIs) over a device:
// the LBA space divides into fixed-size zones that must be written
// sequentially at the write pointer; Zone Append writes at the pointer
// and returns the assigned LBA; Reset rewinds a zone. This matches how
// flash actually erases, removing the block-interface tax the paper's
// citation [32] describes.
type ZNS struct {
	host       *Host
	zoneBlocks int64
	zones      []zone

	Appends, Resets, WriteErrors int64
}

// ZoneState is a zone's lifecycle state.
type ZoneState uint8

const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneFull
)

func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "empty"
	case ZoneOpen:
		return "open"
	case ZoneFull:
		return "full"
	}
	return "?"
}

type zone struct {
	state ZoneState
	wp    int64 // blocks written within the zone
}

// ZoneInfo is one row of a zone report.
type ZoneInfo struct {
	Index        int
	State        ZoneState
	StartLBA     int64
	WritePointer int64 // absolute LBA of the next write
	Capacity     int64 // blocks
}

// ZNS errors.
var (
	ErrNotAtWritePointer = errors.New("zns: write not at the zone write pointer")
	ErrZoneFull          = errors.New("zns: zone full")
	ErrBadZone           = errors.New("zns: no such zone")
	ErrUnwrittenRead     = errors.New("zns: read beyond write pointer")
	ErrCrossZone         = errors.New("zns: operation crosses a zone boundary")
)

// NewZNS carves the host's device into zones of zoneBlocks blocks.
func NewZNS(host *Host, zoneBlocks int64) (*ZNS, error) {
	total := host.DeviceBlocks()
	if zoneBlocks <= 0 || zoneBlocks > total {
		return nil, fmt.Errorf("zns: bad zone size %d", zoneBlocks)
	}
	n := total / zoneBlocks
	return &ZNS{host: host, zoneBlocks: zoneBlocks, zones: make([]zone, n)}, nil
}

// Zones returns the zone count.
func (z *ZNS) Zones() int { return len(z.zones) }

// ZoneBlocks returns blocks per zone.
func (z *ZNS) ZoneBlocks() int64 { return z.zoneBlocks }

// Report returns the state of every zone.
func (z *ZNS) Report() []ZoneInfo {
	out := make([]ZoneInfo, len(z.zones))
	for i := range z.zones {
		out[i] = ZoneInfo{
			Index:        i,
			State:        z.zones[i].state,
			StartLBA:     int64(i) * z.zoneBlocks,
			WritePointer: int64(i)*z.zoneBlocks + z.zones[i].wp,
			Capacity:     z.zoneBlocks,
		}
	}
	return out
}

// Append writes data (whole blocks) at zone zi's write pointer and
// calls cb with the LBA it landed at — the race-free append verb that
// makes ZNS friendly to concurrent log writers.
func (z *ZNS) Append(zi int, data []byte, cb func(lba int64, err error)) error {
	if zi < 0 || zi >= len(z.zones) {
		return ErrBadZone
	}
	bs := z.host.BlockSize()
	if len(data) == 0 || len(data)%bs != 0 {
		return fmt.Errorf("%w: %d bytes", ErrShortWrite, len(data))
	}
	blocks := int64(len(data) / bs)
	zn := &z.zones[zi]
	if zn.wp+blocks > z.zoneBlocks {
		z.WriteErrors++
		return ErrZoneFull
	}
	lba := int64(zi)*z.zoneBlocks + zn.wp
	zn.wp += blocks
	if zn.state == ZoneEmpty {
		zn.state = ZoneOpen
	}
	if zn.wp == z.zoneBlocks {
		zn.state = ZoneFull
	}
	z.Appends++
	return z.host.Write(0, lba, data, func(st uint16) {
		if cb == nil {
			return
		}
		if st != StatusOK {
			cb(0, fmt.Errorf("zns: device status %#x", st))
			return
		}
		cb(lba, nil)
	})
}

// WriteAt performs a positional write, which ZNS only permits exactly at
// the write pointer (sequential-write-required zones).
func (z *ZNS) WriteAt(lba int64, data []byte, cb func(err error)) error {
	zi := int(lba / z.zoneBlocks)
	if zi < 0 || zi >= len(z.zones) {
		return ErrBadZone
	}
	zn := &z.zones[zi]
	if lba != int64(zi)*z.zoneBlocks+zn.wp {
		z.WriteErrors++
		return fmt.Errorf("%w: lba %d, wp %d", ErrNotAtWritePointer, lba, int64(zi)*z.zoneBlocks+zn.wp)
	}
	return z.Append(zi, data, func(_ int64, err error) {
		if cb != nil {
			cb(err)
		}
	})
}

// Read returns blocks, rejecting reads beyond the write pointer or
// across a zone boundary.
func (z *ZNS) Read(lba int64, blocks int, cb func(data []byte, err error)) error {
	zi := int(lba / z.zoneBlocks)
	if zi < 0 || zi >= len(z.zones) {
		return ErrBadZone
	}
	zn := &z.zones[zi]
	end := lba + int64(blocks)
	if end > int64(zi+1)*z.zoneBlocks {
		return ErrCrossZone
	}
	if end > int64(zi)*z.zoneBlocks+zn.wp {
		return ErrUnwrittenRead
	}
	return z.host.Read(0, lba, blocks, func(data []byte, st uint16) {
		if st != StatusOK {
			cb(nil, fmt.Errorf("zns: device status %#x", st))
			return
		}
		cb(data, nil)
	})
}

// Reset rewinds a zone to empty (the flash erase). The erase itself
// costs a few milliseconds of the zone's channels.
func (z *ZNS) Reset(zi int, cb func(err error)) error {
	if zi < 0 || zi >= len(z.zones) {
		return ErrBadZone
	}
	z.zones[zi] = zone{}
	z.Resets++
	// Model the erase as a flush-scale delay on the device.
	return z.host.Flush(0, func(st uint16) {
		if cb == nil {
			return
		}
		if st != StatusOK {
			cb(fmt.Errorf("zns: reset status %#x", st))
			return
		}
		cb(nil)
	})
}
