package bufown_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, "../testdata", bufown.Analyzer,
		"bufown", "bufown_harness")
}
