package tenant

import (
	"math/bits"
	"testing"

	"hyperion/internal/fabric"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// latBucket maps a latency onto the telemetry plane's log2 histogram
// bucket (histogram.go bucketOf): "within one bucket" is the repo's
// standard isolation tolerance.
func latBucket(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// quietRun drives a quiet tenant (one 64-byte request every 10 µs for
// 5 ms) and, when withSaturator is set, a neighbor that keeps its FIFO
// permanently backlogged with 256-byte items. Returns the quiet
// tenant's latency book.
func quietRun(t *testing.T, withSaturator bool) *sim.LatencyRecorder {
	t.Helper()
	eng := sim.NewEngine(1)
	fab := fabric.New(eng, fabric.DefaultConfig(), "tag")
	cfg := DefaultConfig()
	cfg.DepthItems = 64
	c := New(eng, fab, cfg)
	quiet, err := c.Admit(Spec{Name: "quiet", Weight: 8, Image: testImage("quiet", 1)})
	if err != nil {
		t.Fatal(err)
	}
	var sat *Tenant
	if withSaturator {
		if sat, err = c.Admit(Spec{Name: "sat", Weight: 1, Image: testImage("sat", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run() // activate; the clock now sits at the reconfiguration end
	base := eng.Now()
	horizon := base.Add(5 * sim.Millisecond)
	for ti := base; ti < horizon; ti = ti.Add(10 * sim.Microsecond) {
		eng.At(ti.Add(sim.Microsecond), "quiet.submit", func() {
			if err := c.Submit(quiet.ID, nil, 64, nil); err != nil {
				t.Errorf("quiet submit: %v", err)
			}
		})
	}
	if withSaturator {
		// Refill the saturator's FIFO to the brim every microsecond;
		// Shed counts what the box turns away.
		for ti := base; ti < horizon; ti = ti.Add(sim.Microsecond) {
			eng.At(ti, "sat.submit", func() {
				for j := 0; j < 64; j++ {
					if err := c.Submit(sat.ID, nil, 256, nil); err != nil {
						return // FIFO full: exactly the point
					}
				}
			})
		}
	}
	eng.Run()
	if quiet.Completed == 0 {
		t.Fatal("quiet tenant completed nothing")
	}
	if withSaturator && sat.Shed == 0 {
		t.Fatal("saturator never hit backpressure — not saturating")
	}
	return &quiet.Lat
}

func TestQuietTenantP99Isolation(t *testing.T) {
	// The tenant-datapath extension of fabric's TestSpatialIsolation: a
	// saturating neighbor on the shared WFQ bus must not move a quiet
	// tenant's p99 by more than one log2 histogram bucket.
	alone := quietRun(t, false)
	shared := quietRun(t, true)
	pa, ps := alone.Percentile(99), shared.Percentile(99)
	ba, bs := latBucket(pa), latBucket(ps)
	if bs-ba > 1 || ba > bs {
		t.Fatalf("quiet p99 moved %d buckets under saturation: alone %v (bucket %d) vs shared %v (bucket %d)",
			bs-ba, pa, ba, ps, bs)
	}
}

// reconfigLoadRun drives tenant A with a steady stream while tenant B
// is admitted mid-run (partial reconfiguration under live traffic) and
// departs later. It returns A's completion timeline.
func reconfigLoadRun(t *testing.T, rec *telemetry.Recorder) (seqs []int, times []sim.Time) {
	t.Helper()
	eng := sim.NewEngine(1)
	fab := fabric.New(eng, fabric.DefaultConfig(), "tag")
	c := New(eng, fab, DefaultConfig())
	c.SetRecorder(rec)
	a, err := c.Admit(Spec{Name: "steady", Weight: 2, Image: testImage("steady", 1)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run() // activate; the clock now sits at the reconfiguration end
	base := eng.Now()
	horizon := base.Add(20 * sim.Millisecond)
	seq := 0
	for ti := base; ti < horizon; ti = ti.Add(5 * sim.Microsecond) {
		s := seq
		seq++
		eng.At(ti.Add(sim.Microsecond), "steady.submit", func() {
			if err := c.Submit(a.ID, s, 128, func(err error) {
				if err != nil {
					t.Errorf("steady request %d failed during reconfig-under-load: %v", s, err)
				}
				seqs = append(seqs, s)
				times = append(times, eng.Now())
			}); err != nil {
				t.Errorf("steady submit %d: %v", s, err)
			}
		})
	}
	// B arrives at 5 ms (8 MiB image: ~20 ms of ICAP traffic — the
	// reconfiguration brackets A's entire remaining stream), departs at
	// 15 ms while... still reconfiguring; then C arrives and activates.
	eng.At(base.Add(5*sim.Millisecond), "b.arrive", func() {
		if _, err := c.Admit(Spec{Name: "late-b", Weight: 4, Image: testImage("b", 8)}); err != nil {
			t.Errorf("admit b: %v", err)
		}
	})
	eng.At(base.Add(15*sim.Millisecond), "b.depart", func() {
		tb, _ := c.Tenant(1)
		if err := c.Depart(tb.ID); err != nil {
			t.Errorf("depart b: %v", err)
		}
		if _, err := c.Admit(Spec{Name: "late-c", Weight: 1, Image: testImage("c", 2)}); err != nil {
			t.Errorf("admit c: %v", err)
		}
	})
	eng.Run()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != seq {
		t.Fatalf("lost requests under reconfig load: %d of %d completed", len(seqs), seq)
	}
	return seqs, times
}

func TestReconfigUnderLoadLosesNothing(t *testing.T) {
	seqs, _ := reconfigLoadRun(t, nil)
	for i, s := range seqs {
		if s != i {
			t.Fatalf("completion %d out of order: got seq %d", i, s)
		}
	}
}

func TestReconfigUnderLoadArmedEqualsDisarmed(t *testing.T) {
	// PR-5 contract on the new plane: arming telemetry must not move a
	// single completion by a picosecond.
	s0, t0 := reconfigLoadRun(t, nil)
	rec := telemetry.NewRecorder("tenant-iso")
	s1, t1 := reconfigLoadRun(t, rec)
	if len(s0) != len(s1) {
		t.Fatalf("armed run completed %d vs %d", len(s1), len(s0))
	}
	for i := range s0 {
		if s0[i] != s1[i] || t0[i] != t1[i] {
			t.Fatalf("armed telemetry perturbed completion %d: (%d,%v) vs (%d,%v)",
				i, s0[i], t0[i], s1[i], t1[i])
		}
	}
	if rec.Events() == 0 {
		t.Fatal("armed recorder captured nothing")
	}
	// The per-tenant child histogram is the SLO book of record: it must
	// agree with the scheduler's own latency recorder on the p99 bucket.
	if h := rec.Hist("wfq", "tenant.in0"); h == nil || h.Count() == 0 {
		t.Fatal("per-port WFQ histogram missing")
	}
}
