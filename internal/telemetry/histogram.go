package telemetry

import (
	"fmt"
	"math"
	"math/bits"

	"hyperion/internal/sim"
)

// numBuckets covers every non-negative int64: bucket 0 holds values
// ≤ 0 (and 0 itself), bucket b holds [2^(b-1), 2^b) picoseconds.
const numBuckets = 65

// Histogram is a log2-bucketed latency histogram. The zero value is
// ready to use, and every method is nil-safe, so an unarmed layer can
// hold one by value at no cost. Quantile estimates are exact to
// within one power-of-two bucket, which is plenty to tell a 2 µs
// arbiter stall from a 200 µs storage stall.
type Histogram struct {
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [numBuckets]uint64
}

// bucketOf maps a value to its bucket: 0 for v ≤ 0, else
// bits.Len64(v) so that bucket b spans [2^(b-1), 2^b).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLower is the inclusive lower bound of bucket b in
// picoseconds — the value Quantile reports for ranks landing in b.
func BucketLower(b int) sim.Duration {
	if b <= 0 {
		return 0
	}
	v := int64(1) << uint(b-1)
	return sim.Duration(v)
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Merge folds every sample of o into h. Merging nil or empty is a
// no-op; merge(h1,h2) is indistinguishable from observing the
// concatenation of both sample streams.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return sim.Duration(h.min)
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return sim.Duration(h.max)
}

// Mean returns the arithmetic mean of observed samples (0 when
// empty).
func (h *Histogram) Mean() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / int64(h.count))
}

// Quantile returns the lower bound of the bucket containing the
// q-quantile sample (nearest-rank), clamped to [Min, Max] so the
// estimate never strays outside the observed range. The estimate e
// and the exact quantile x always share a bucket: they differ by less
// than one power of two. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	v := sim.Duration(h.max)
	for b := 0; b < numBuckets; b++ {
		cum += h.buckets[b]
		if cum >= rank {
			v = BucketLower(b)
			break
		}
	}
	if v < sim.Duration(h.min) {
		v = sim.Duration(h.min)
	}
	if v > sim.Duration(h.max) {
		v = sim.Duration(h.max)
	}
	return v
}

// String renders a one-line summary with raw picosecond integers —
// integer formatting keeps dumps byte-stable across platforms.
func (h *Histogram) String() string {
	if h == nil || h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%dps p50=%dps p90=%dps p99=%dps max=%dps mean=%dps",
		h.count, h.min,
		int64(h.Quantile(0.50)), int64(h.Quantile(0.90)), int64(h.Quantile(0.99)),
		h.max, int64(h.sum/int64(h.count)))
}
