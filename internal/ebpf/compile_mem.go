package ebpf

// Fallible compiled operations: memory accesses, atomics, and helper
// calls. Loads and stores carry inline fast paths for the two
// statically-known regions (context and stack); anything else falls back
// to the interpreter's resolve for exact error behaviour. Error paths
// refund only vm.Steps — runCompiled folds the run's step count into
// TotalSteps once, at its return sites.

import (
	"encoding/binary"
	"fmt"
)

// compileLoad specializes one LDX by access size, with inline ctx/stack
// fast paths. The double bounds check (o < len && o+size <= len) is
// wrap-safe: the first test bounds o, so the second cannot overflow.
func compileLoad(ins Instruction, overshoot int64) fallOp {
	d, s, off := ins.Dst, ins.Src, uint64(int64(ins.Off))
	size := uint64(ins.SizeBytes())
	switch size {
	case 1:
		return func(vm *VM, r *regFile) error {
			a := r[s&15] + off
			if o := a - ctxBase; o < uint64(len(vm.ctx)) {
				r[d&15] = uint64(vm.ctx[o])
				return nil
			}
			if o := a - stackBase; o < StackSize {
				r[d&15] = uint64(vm.stack[o])
				return nil
			}
			v, err := vm.memLoad(a, 1)
			if err != nil {
				vm.Steps -= overshoot
				return err
			}
			r[d&15] = v
			return nil
		}
	case 2:
		return func(vm *VM, r *regFile) error {
			a := r[s&15] + off
			if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+2 <= uint64(len(vm.ctx)) {
				r[d&15] = uint64(binary.LittleEndian.Uint16(vm.ctx[o:]))
				return nil
			}
			if o := a - stackBase; o < StackSize && o+2 <= StackSize {
				r[d&15] = uint64(binary.LittleEndian.Uint16(vm.stack[o:]))
				return nil
			}
			v, err := vm.memLoad(a, 2)
			if err != nil {
				vm.Steps -= overshoot
				return err
			}
			r[d&15] = v
			return nil
		}
	case 4:
		return func(vm *VM, r *regFile) error {
			a := r[s&15] + off
			if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+4 <= uint64(len(vm.ctx)) {
				r[d&15] = uint64(binary.LittleEndian.Uint32(vm.ctx[o:]))
				return nil
			}
			if o := a - stackBase; o < StackSize && o+4 <= StackSize {
				r[d&15] = uint64(binary.LittleEndian.Uint32(vm.stack[o:]))
				return nil
			}
			v, err := vm.memLoad(a, 4)
			if err != nil {
				vm.Steps -= overshoot
				return err
			}
			r[d&15] = v
			return nil
		}
	default:
		return func(vm *VM, r *regFile) error {
			a := r[s&15] + off
			if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+8 <= uint64(len(vm.ctx)) {
				r[d&15] = binary.LittleEndian.Uint64(vm.ctx[o:])
				return nil
			}
			if o := a - stackBase; o < StackSize && o+8 <= StackSize {
				r[d&15] = binary.LittleEndian.Uint64(vm.stack[o:])
				return nil
			}
			v, err := vm.memLoad(a, 8)
			if err != nil {
				vm.Steps -= overshoot
				return err
			}
			r[d&15] = v
			return nil
		}
	}
}

// compileStore specializes a store (register or immediate source) by
// size, with the same inline fast paths as loads. The stack fast path
// must clear stackClean — the interpreter's entry memclr becomes
// observable once anything writes to the stack.
func compileStore(d uint8, off uint64, size int, src func(r *regFile) uint64, overshoot int64) fallOp {
	sz := uint64(size)
	return func(vm *VM, r *regFile) error {
		a := r[d&15] + off
		v := src(r)
		if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+sz <= uint64(len(vm.ctx)) {
			storeLE(vm.ctx[o:], size, v)
			return nil
		}
		if o := a - stackBase; o < StackSize && o+sz <= StackSize {
			vm.stackClean = false
			storeLE(vm.stack[o:], size, v)
			return nil
		}
		if err := vm.memStore(a, size, v); err != nil {
			vm.Steps -= overshoot
			return err
		}
		return nil
	}
}

func storeLE(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

func compileStoreReg(ins Instruction, overshoot int64) fallOp {
	s := ins.Src
	return compileStore(ins.Dst, uint64(int64(ins.Off)), ins.SizeBytes(),
		func(r *regFile) uint64 { return r[s&15] }, overshoot)
}

func compileStoreImm(ins Instruction, overshoot int64) fallOp {
	v := uint64(int64(ins.Imm))
	return compileStore(ins.Dst, uint64(int64(ins.Off)), ins.SizeBytes(),
		func(r *regFile) uint64 { return v }, overshoot)
}

// loadElem is one member of a fused load group.
type loadElem struct {
	dst       uint8
	off       uint64 // sign-extended displacement (wrapping add)
	rel       int    // byte offset within the group's resolved span
	size      int
	overshoot int64
}

type loadGroup struct {
	op    fallOp
	count int
}

// compileLoadGroup fuses a run of consecutive LDX instructions off the
// same unmodified base register into one bounds resolve. The combined
// span gets the same ctx/stack fast paths as single loads; if it fails
// to resolve as a unit (e.g. loads landing in two different windows),
// the group falls back to per-load execution with exact interpreter
// semantics.
func compileLoadGroup(prog []Instruction, blockStart, i, bodyEnd int, blockInsns int64) loadGroup {
	first := prog[i]
	if first.Class() != ClassLDX || first.SizeBytes() == 0 {
		return loadGroup{}
	}
	src := first.Src
	count := 0
	for j := i; j < bodyEnd; j++ {
		ins := prog[j]
		if ins.Class() != ClassLDX || ins.SizeBytes() == 0 || ins.Src != src {
			break
		}
		count++
		if ins.Dst == src {
			break // base clobbered; later loads use the new value
		}
	}
	if count < 2 {
		return loadGroup{}
	}
	elems := make([]loadElem, count)
	minOff, maxEnd := int64(0), int64(0)
	for k := 0; k < count; k++ {
		ins := prog[i+k]
		o := int64(ins.Off)
		elems[k] = loadElem{
			dst:       ins.Dst,
			off:       uint64(o),
			size:      ins.SizeBytes(),
			overshoot: blockInsns - int64(i+k-blockStart+1),
		}
		if k == 0 || o < minOff {
			minOff = o
		}
		if e := o + int64(ins.SizeBytes()); k == 0 || e > maxEnd {
			maxEnd = e
		}
	}
	for k := range elems {
		elems[k].rel = int(int64(elems[k].off) - minOff)
	}
	base := uint64(minOff)
	span := uint64(maxEnd - minOff)
	op := func(vm *VM, r *regFile) error {
		a := r[src&15] + base
		var buf []byte
		if o := a - ctxBase; o < uint64(len(vm.ctx)) && o+span <= uint64(len(vm.ctx)) {
			buf = vm.ctx[o:]
		} else if o := a - stackBase; o < StackSize && o+span <= StackSize {
			buf = vm.stack[o:]
		} else {
			b, _, err := vm.resolve(a, int(span))
			if err != nil {
				return loadGroupSlow(vm, r, src, elems)
			}
			buf = b
		}
		for k := range elems {
			e := &elems[k]
			switch e.size {
			case 1:
				r[e.dst&15] = uint64(buf[e.rel])
			case 2:
				r[e.dst&15] = uint64(binary.LittleEndian.Uint16(buf[e.rel:]))
			case 4:
				r[e.dst&15] = uint64(binary.LittleEndian.Uint32(buf[e.rel:]))
			default:
				r[e.dst&15] = binary.LittleEndian.Uint64(buf[e.rel:])
			}
		}
		return nil
	}
	return loadGroup{op: op, count: count}
}

// loadGroupSlow replays a load group one access at a time — the
// reference semantics when the fused span does not resolve as a unit.
func loadGroupSlow(vm *VM, r *regFile, src uint8, elems []loadElem) error {
	for k := range elems {
		e := &elems[k]
		v, err := vm.memLoad(r[src&15]+e.off, e.size)
		if err != nil {
			vm.Steps -= e.overshoot
			return err
		}
		r[e.dst&15] = v
	}
	return nil
}

// compileAtomic lowers an atomic RMW, replicating the interpreter's
// exact check order (width, load, op selector, store).
func compileAtomic(ins Instruction, overshoot int64) fallOp {
	size := ins.SizeBytes()
	if size != 4 && size != 8 {
		return errOp(fmt.Errorf("%w: atomic width %d", ErrBadInstruction, size), overshoot)
	}
	d, s, off, sel := ins.Dst, ins.Src, uint64(int64(ins.Off)), ins.Imm
	return func(vm *VM, r *regFile) error {
		fail := func(err error) error {
			vm.Steps -= overshoot
			return err
		}
		addr := r[d&15] + off
		old, err := vm.memLoad(addr, size)
		if err != nil {
			return fail(err)
		}
		src := r[s&15]
		if size == 4 {
			src = uint64(uint32(src))
		}
		var newVal uint64
		writeBack := true
		switch sel {
		case AtomicAdd, AtomicAdd | AtomicFetch:
			newVal = old + src
		case AtomicOr, AtomicOr | AtomicFetch:
			newVal = old | src
		case AtomicAnd, AtomicAnd | AtomicFetch:
			newVal = old & src
		case AtomicXor, AtomicXor | AtomicFetch:
			newVal = old ^ src
		case AtomicXchg:
			newVal = src
		case AtomicCmpXchg:
			cmp := r[R0]
			if size == 4 {
				cmp = uint64(uint32(cmp))
			}
			if old == cmp {
				newVal = src
			} else {
				writeBack = false
			}
			r[R0] = old
		default:
			return fail(fmt.Errorf("%w: atomic op %#x", ErrBadInstruction, sel))
		}
		if writeBack {
			if err := vm.memStore(addr, size, newVal); err != nil {
				return fail(err)
			}
		}
		if sel&AtomicFetch != 0 && sel != AtomicCmpXchg {
			r[s&15] = old
		}
		return nil
	}
}

// compileCall lowers a helper call. The helper binding is devirtualized
// at compile time (Load and RegisterHelper invalidate the artifact);
// the still-builtin map/time/trace helpers get direct fast paths that
// skip the generic dispatch and the defensive key copies.
func compileCall(vm *VM, ins Instruction, overshoot int64) fallOp {
	id := ins.Imm
	h, ok := vm.helpers[id]
	if !ok {
		return errOp(fmt.Errorf("%w: id %d", ErrUnknownHelper, id), overshoot)
	}
	if vm.builtin[id] {
		switch id {
		case HelperMapLookup:
			return fastMapLookup(overshoot)
		case HelperMapUpdate:
			return fastMapUpdate(overshoot)
		case HelperMapDelete:
			return fastMapDelete(overshoot)
		case HelperKtime:
			return func(vm *VM, r *regFile) error {
				vm.HelperCalls++
				var now uint64
				if vm.Now != nil {
					now = vm.Now()
				} else {
					vm.fakeNow++
					now = vm.fakeNow
				}
				r[R0] = now
				r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
				return nil
			}
		case HelperTrace:
			return func(vm *VM, r *regFile) error {
				vm.HelperCalls++
				if vm.Trace != nil {
					vm.Trace(r[R1])
				}
				r[R0] = 0
				r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
				return nil
			}
		}
	}
	name, fn := h.Name, h.Fn
	return func(vm *VM, r *regFile) error {
		vm.HelperCalls++
		ret, err := fn(vm, [5]uint64{r[R1], r[R2], r[R3], r[R4], r[R5]})
		if err != nil {
			vm.Steps -= overshoot
			return fmt.Errorf("ebpf: helper %s: %w", name, err)
		}
		r[R0] = ret
		r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
		return nil
	}
}

// helperArgBytes resolves a helper's pointer argument. The built-in
// maps (HashMap, ArrayMap) never retain key/value slices, so they can
// read program memory in place; unknown Map implementations get the
// interpreter's defensive copy.
func helperArgBytes(vm *VM, m Map, addr uint64, size int) ([]byte, error) {
	switch m.(type) {
	case *HashMap, *ArrayMap:
		b, _, err := vm.resolve(addr, size)
		return b, err
	default:
		return vm.ReadBytes(addr, size)
	}
}

func fastMapLookup(overshoot int64) fallOp {
	return func(vm *VM, r *regFile) error {
		vm.HelperCalls++
		fail := func(err error) error {
			vm.Steps -= overshoot
			return fmt.Errorf("ebpf: helper map_lookup_elem: %w", err)
		}
		m, err := vm.Maps.Get(int(r[R1]))
		if err != nil {
			return fail(err)
		}
		key, err := helperArgBytes(vm, m, r[R2], m.KeySize())
		if err != nil {
			return fail(err)
		}
		var ret uint64
		if val, ok := m.Lookup(key); ok {
			ret = vm.AddWindow(val, true)
		}
		r[R0] = ret
		r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
		return nil
	}
}

func fastMapUpdate(overshoot int64) fallOp {
	return func(vm *VM, r *regFile) error {
		vm.HelperCalls++
		fail := func(err error) error {
			vm.Steps -= overshoot
			return fmt.Errorf("ebpf: helper map_update_elem: %w", err)
		}
		m, err := vm.Maps.Get(int(r[R1]))
		if err != nil {
			return fail(err)
		}
		key, err := helperArgBytes(vm, m, r[R2], m.KeySize())
		if err != nil {
			return fail(err)
		}
		val, err := helperArgBytes(vm, m, r[R3], m.ValueSize())
		if err != nil {
			return fail(err)
		}
		var ret uint64
		if m.Update(key, val) != nil {
			ret = ^uint64(0) // -1: full or invalid
		}
		r[R0] = ret
		r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
		return nil
	}
}

func fastMapDelete(overshoot int64) fallOp {
	return func(vm *VM, r *regFile) error {
		vm.HelperCalls++
		fail := func(err error) error {
			vm.Steps -= overshoot
			return fmt.Errorf("ebpf: helper map_delete_elem: %w", err)
		}
		m, err := vm.Maps.Get(int(r[R1]))
		if err != nil {
			return fail(err)
		}
		key, err := helperArgBytes(vm, m, r[R2], m.KeySize())
		if err != nil {
			return fail(err)
		}
		var ret uint64
		if !m.Delete(key) {
			ret = ^uint64(0)
		}
		r[R0] = ret
		r[R1], r[R2], r[R3], r[R4], r[R5] = 0, 0, 0, 0, 0
		return nil
	}
}
