package core

import (
	"fmt"

	"hyperion/internal/fabric"
)

// The OS-shell is the paper's network control path: it programs the FPGA
// over QSFP1 through the runtime config engine (standing in for partial
// dynamic reconfiguration via ICAP), with the authorization check the
// paper requires for multi-tenant bitstreams.

// Shell method names.
const (
	ShellPing   = "osh.ping"
	ShellStatus = "osh.status"
	ShellLoad   = "osh.load"
	ShellUnload = "osh.unload"
)

// Status is the osh.status response.
type Status struct {
	Name     string
	Slots    []string
	Free     fabric.Resources
	Segments int
	Enum     []string
}

// LoadArgs asks the config engine to program a slot.
type LoadArgs struct {
	Slot      int
	Bitstream *fabric.Bitstream
}

func (d *DPU) registerShell() {
	d.CtrlSrv.Handle(ShellPing, func(arg any, respond func(any, int, error)) {
		respond("pong:"+d.Cfg.Name, 64, nil)
	})
	d.CtrlSrv.Handle(ShellStatus, func(arg any, respond func(any, int, error)) {
		st := Status{Name: d.Cfg.Name, Free: d.Fabric.FreeResources(), Segments: d.Store.Len(), Enum: d.enumOut}
		for _, s := range d.Fabric.Slots() {
			desc := fmt.Sprintf("slot%d:%s", s.Index, s.State)
			if s.Image != nil {
				desc += ":" + s.Image.Name
			}
			st.Slots = append(st.Slots, desc)
		}
		respond(st, 512, nil)
	})
	d.CtrlSrv.Handle(ShellLoad, func(arg any, respond func(any, int, error)) {
		la, ok := arg.(LoadArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("core: bad load args %T", arg))
			return
		}
		// respond fires only after partial reconfiguration completes, so
		// the caller knows the slot is active.
		err := d.Fabric.LoadBitstream(la.Slot, la.Bitstream, func() {
			respond(la.Slot, 64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	d.CtrlSrv.Handle(ShellUnload, func(arg any, respond func(any, int, error)) {
		slot, ok := arg.(int)
		if !ok {
			respond(nil, 0, fmt.Errorf("core: bad unload args %T", arg))
			return
		}
		respond(true, 64, d.Fabric.Unload(slot))
	})
}
