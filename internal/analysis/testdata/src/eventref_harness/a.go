// Package eventref_harness is hyperlint golden-test input: eventref
// only polices model packages, so nothing here is diagnosed.
package eventref_harness

import "hyperion/internal/sim"

func compare(a sim.EventRef) bool {
	return a == sim.NoEvent
}
