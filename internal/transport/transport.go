// Package transport implements the application-selectable network
// transports of the Hyperion blueprint — UDP-, TCP-, RDMA-, and
// Homa-style — over the simulated Ethernet fabric. The paper's point is
// that the end-to-end hardware path can be specialized with an
// application-defined transport; this package provides four with
// distinct reliability, overhead, and congestion behaviour so the
// NVMe-oF and RPC experiments can sweep them.
package transport

import (
	"errors"
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Kind selects a transport protocol.
type Kind int

const (
	UDP  Kind = iota // unreliable datagrams, software stack overhead
	TCP              // reliable go-back-N, small window, software overhead
	RDMA             // reliable go-back-N, large window, hardware offload
	Homa             // receiver-driven grants, SRPT, message-oriented
)

func (k Kind) String() string {
	switch k {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case RDMA:
		return "rdma"
	case Homa:
		return "homa"
	}
	return "invalid"
}

// Kinds lists all transports, for sweeps.
func Kinds() []Kind { return []Kind{UDP, TCP, RDMA, Homa} }

// FragBytes is the data payload carried per frame (plus header overhead
// on the wire).
const FragBytes = 4096

// headerBytes approximates L2–L4 headers per frame.
const headerBytes = 64

// Message is an application-level unit. Span is the request-scoped
// trace context; transports copy it onto every fragment and frame of
// the message and restore it on delivery, so a request id set by the
// sender survives fragmentation, retransmission and reassembly.
type Message struct {
	Payload any
	Bytes   int
	Span    telemetry.RequestID
}

// Endpoint is a transport instance bound to one NIC.
type Endpoint interface {
	Addr() netsim.Addr
	Kind() Kind
	// Send transmits msg to dst. Reliable transports deliver it exactly
	// once (or count it lost after giving up); UDP may silently drop.
	Send(dst netsim.Addr, msg Message) error
	// OnMessage installs the delivery handler.
	OnMessage(func(src netsim.Addr, msg Message))
	// Stats returns transport counters.
	Stats() *Stats
}

// Stats counts transport activity.
type Stats struct {
	Sent, Delivered, LostMessages       int64
	Retransmits, DataFrames, CtrlFrames int64
}

// ErrTooLarge is returned for messages beyond the transport's limit.
var ErrTooLarge = errors.New("transport: message too large")

// MaxMessageBytes bounds a single message (64 Mi is ample for the
// experiments).
const MaxMessageBytes = 64 << 20

// New creates an endpoint of the given kind on nic.
func New(eng *sim.Engine, kind Kind, nic *netsim.NIC) Endpoint {
	switch kind {
	case UDP:
		return newUDP(eng, nic)
	case TCP:
		return newReliable(eng, nic, TCP, reliableParams{
			Window:       64,
			RTO:          200 * sim.Microsecond,
			SendOverhead: 3 * sim.Microsecond,
			RecvOverhead: 3 * sim.Microsecond,
			PerFrameCPU:  500 * sim.Nanosecond,
		})
	case RDMA:
		return newReliable(eng, nic, RDMA, reliableParams{
			Window:       256,
			RTO:          50 * sim.Microsecond,
			SendOverhead: 300 * sim.Nanosecond,
			RecvOverhead: 300 * sim.Nanosecond,
			PerFrameCPU:  0,
		})
	case Homa:
		return newHoma(eng, nic)
	default:
		panic(fmt.Sprintf("transport: unknown kind %d", kind))
	}
}

// fragsFor returns the number of fragments for a message of b bytes.
func fragsFor(b int) int {
	if b <= 0 {
		return 1
	}
	return (b + FragBytes - 1) / FragBytes
}

// fragWire returns the wire size of fragment i of a b-byte message.
func fragWire(b, i int) int {
	n := fragsFor(b)
	last := b - (n-1)*FragBytes
	if b <= 0 {
		last = 1
	}
	if i == n-1 {
		return last + headerBytes
	}
	return FragBytes + headerBytes
}

// reasm reassembles in-order fragments into messages.
type reasm struct {
	have    int
	total   int
	payload any
	bytes   int
	span    telemetry.RequestID
}

// dataFrag is the payload of a data frame.
type dataFrag struct {
	MsgID   uint64
	Index   int
	Total   int
	Bytes   int    // total message bytes
	Payload any    // carried on the last fragment only
	Seq     uint64 // connection sequence number (reliable transports)
	Span    telemetry.RequestID
}

// ctrlMsg is the payload of a control frame.
type ctrlMsg struct {
	Op      uint8 // ackOp, grantOp, doneOp, resendOp
	MsgID   uint64
	Seq     uint64 // cumulative ack (reliable) or granted frag count (homa)
	Missing []int  // explicit missing fragment indexes (homa resend)
}

const (
	ackOp uint8 = iota + 1
	grantOp
	doneOp
	resendOp
)
