// Package bad is a hyperlint standalone-mode fixture: a harness-layer
// package with an unannotated wall-clock read. main_test.go runs the
// built binary against it and expects a nodeterm finding with exit 1.
// The testdata path keeps it out of ./... builds and the vet gate.
package bad

import "time"

// Now reads the wall clock without a hyperlint:allow annotation.
func Now() time.Time {
	return time.Now()
}
