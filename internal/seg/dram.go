package seg

// dramBacking is the card DRAM's functional state, stored as sparse
// fixed-size chunks allocated on first write. A freshly built store
// used to allocate the full DRAMBytes slab up front (32 GiB at default
// config — by far the largest allocation in the simulator, and pure
// zeroed dead weight for experiments that touch a fraction of it).
// Unwritten bytes read as zero, exactly like the eagerly-zeroed slab,
// so the swap is behavior-identical.
const (
	dramChunkBits = 22 // 4 MiB chunks
	dramChunkSize = int64(1) << dramChunkBits
)

type dramBacking struct {
	size   int64
	chunks [][]byte // nil until first written
}

func newDRAMBacking(size int64) *dramBacking {
	n := (size + dramChunkSize - 1) >> dramChunkBits
	return &dramBacking{size: size, chunks: make([][]byte, n)}
}

// read copies len(dst) bytes starting at addr into dst, zero-filling
// spans backed by never-written chunks.
func (d *dramBacking) read(dst []byte, addr int64) {
	for len(dst) > 0 {
		ci := addr >> dramChunkBits
		off := addr & (dramChunkSize - 1)
		n := dramChunkSize - off
		if int64(len(dst)) < n {
			n = int64(len(dst))
		}
		if c := d.chunks[ci]; c != nil {
			copy(dst[:n], c[off:])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		addr += n
	}
}

// write copies src to addr, materializing chunks as needed.
func (d *dramBacking) write(addr int64, src []byte) {
	for len(src) > 0 {
		ci := addr >> dramChunkBits
		off := addr & (dramChunkSize - 1)
		n := dramChunkSize - off
		if int64(len(src)) < n {
			n = int64(len(src))
		}
		c := d.chunks[ci]
		if c == nil {
			c = make([]byte, dramChunkSize)
			d.chunks[ci] = c
		}
		copy(c[off:], src[:n])
		src = src[n:]
		addr += n
	}
}
