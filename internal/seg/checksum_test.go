package seg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"hyperion/internal/fault"
	"hyperion/internal/nvme"
	"hyperion/internal/sim"
)

// newChecksumStore builds a store with ChecksumReads armed over one
// NVMe device whose fault plan corrupts read payloads at the given
// rate, returning the device so tests can tune the plan further.
func newChecksumStore(t testing.TB, corruptRate float64) (*sim.Engine, *Store, *nvme.Device) {
	t.Helper()
	eng := sim.NewEngine(1)
	ncfg := nvme.DefaultConfig("nvme")
	ncfg.Blocks = 1 << 16
	dev := nvme.New(eng, ncfg)
	dev.SetFaultPlan(fault.NewPlan(1, "nvme").Set(fault.Corrupt, corruptRate))
	cfg := DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	cfg.ChecksumReads = true
	return eng, New(eng, cfg, []*nvme.Host{nvme.NewHost(dev, nil)}), dev
}

// TestChecksumRereadRecovers: with transient read-path corruption, a
// damaged payload must NEVER reach the caller as a success — reads
// either return the written bytes or fail with StatusChecksum after
// exhausting rereads. The counters then prove recovery actually
// happened: every exhausted read burns exactly crcMaxRereads rereads,
// so a reread total above crc_failures*crcMaxRereads means at least
// one reread sequence found a clean copy mid-way.
func TestChecksumRereadRecovers(t *testing.T) {
	eng, s, _ := newChecksumStore(t, 0.15)
	id := OID(1, 1)
	if _, err := s.Alloc(id, 4096, true, HintCold); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5a}, 4096)
	s.Write(id, 0, want, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	eng.Run()
	const reads = 40
	done, ok := 0, 0
	for i := 0; i < reads; i++ {
		s.Read(id, 0, 4096, func(data []byte, err error) {
			done++
			if err != nil {
				if !strings.Contains(err.Error(), "0xfffe") {
					t.Errorf("read %d: unexpected error %v", done, err)
				}
				return
			}
			ok++
			if !bytes.Equal(data, want) {
				t.Errorf("read %d: corrupted payload reached caller", done)
			}
		})
		eng.Run()
	}
	if done != reads {
		t.Fatalf("done = %d, want %d", done, reads)
	}
	rereads := s.Counters.Get("crc_rereads").Value
	failures := s.Counters.Get("crc_failures").Value
	if rereads == 0 {
		t.Fatal("no rereads happened — corruption plan never fired, test proves nothing")
	}
	if rereads <= failures*crcMaxRereads {
		t.Fatalf("rereads=%d failures=%d: no reread sequence ever recovered", rereads, failures)
	}
	if int64(ok) != int64(reads)-failures {
		t.Fatalf("ok=%d, want %d reads minus %d failures", ok, reads, failures)
	}
}

// TestChecksumExhaustedRereadsFail: when every read attempt comes back
// damaged, the store must stop after crcMaxRereads and surface
// StatusChecksum instead of looping or returning bad bytes.
func TestChecksumExhaustedRereadsFail(t *testing.T) {
	eng, s, _ := newChecksumStore(t, 1.0)
	id := OID(1, 1)
	if _, err := s.Alloc(id, 4096, true, HintCold); err != nil {
		t.Fatal(err)
	}
	// Write uses read-modify-write only when unaligned; aligned writes
	// skip the read path, so the populate itself cannot fail.
	s.Write(id, 0, bytes.Repeat([]byte{0x77}, 4096), func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	eng.Run()
	called := false
	s.Read(id, 0, 4096, func(data []byte, err error) {
		called = true
		if err == nil {
			t.Error("read succeeded with 100% corruption")
		} else if !strings.Contains(err.Error(), "0xfffe") {
			t.Errorf("err = %v, want StatusChecksum (0xfffe)", err)
		}
		if data != nil {
			t.Error("failed read still returned data")
		}
	})
	eng.Run()
	if !called {
		t.Fatal("read callback never ran")
	}
	if got := s.Counters.Get("crc_rereads").Value; got != crcMaxRereads {
		t.Fatalf("crc_rereads = %d, want %d", got, crcMaxRereads)
	}
	if got := s.Counters.Get("crc_failures").Value; got != 1 {
		t.Fatalf("crc_failures = %d, want 1", got)
	}
}

// TestChecksumUnwrittenBlocksPass: blocks the store never wrote have no
// recorded CRC and must not trigger rereads even when the device
// mangles them — there is nothing to verify against.
func TestChecksumUnwrittenBlocksPass(t *testing.T) {
	eng, s, _ := newChecksumStore(t, 1.0)
	id := OID(1, 1)
	if _, err := s.Alloc(id, 4096, true, HintCold); err != nil {
		t.Fatal(err)
	}
	ok := false
	s.Read(id, 0, 4096, func(_ []byte, err error) { ok = err == nil })
	eng.Run()
	if !ok {
		t.Fatal("read of never-written block failed")
	}
	if got := s.Counters.Get("crc_rereads").Value; got != 0 {
		t.Fatalf("crc_rereads = %d, want 0 for unrecorded blocks", got)
	}
}

// TestAllocatorCompactProperty extends TestAllocatorProperty with the
// compaction half of the contract: the free list must stay sorted,
// in-bounds, and fully coalesced after every operation (no two
// adjacent holes survive a release), and releasing everything must
// restore a single maximal hole — i.e. free space compacts back to
// contiguity rather than fragmenting permanently.
func TestAllocatorCompactProperty(t *testing.T) {
	holesInvariant := func(a *allocator) string {
		for i, h := range a.holes {
			if h.size <= 0 {
				return "empty hole on free list"
			}
			if h.addr < 0 || h.addr+h.size > a.total {
				return "hole out of bounds"
			}
			if i > 0 {
				prev := a.holes[i-1]
				if prev.addr+prev.size > h.addr {
					return "holes overlap or unsorted"
				}
				if prev.addr+prev.size == h.addr {
					return "adjacent holes not coalesced"
				}
			}
		}
		return ""
	}
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a := newAllocator(1 << 16)
		type piece struct{ addr, size int64 }
		var live []piece
		for i := 0; i < 300; i++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				size := int64(r.Intn(2048) + 1)
				addr, err := a.alloc(size)
				if err != nil {
					continue
				}
				live = append(live, piece{addr, size})
			} else {
				j := r.Intn(len(live))
				a.release(live[j].addr, live[j].size)
				live = append(live[:j], live[j+1:]...)
			}
			if msg := holesInvariant(a); msg != "" {
				t.Logf("seed %d step %d: %s", seed, i, msg)
				return false
			}
		}
		// Release the survivors in random order; the space must
		// compact back to one full-extent hole.
		for len(live) > 0 {
			j := r.Intn(len(live))
			a.release(live[j].addr, live[j].size)
			live = append(live[:j], live[j+1:]...)
		}
		if len(a.holes) != 1 || a.holes[0] != (hole{0, a.total}) {
			t.Logf("seed %d: free list did not compact: %+v", seed, a.holes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
