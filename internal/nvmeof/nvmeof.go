// Package nvmeof implements NVMe-over-Fabrics on Hyperion: a target that
// exports a local NVMe device over any of the application-selected
// transports (TCP, UDP, RDMA, Homa — §2's application-defined network
// transport), and an initiator offering the familiar block verbs. E14
// sweeps this path across transports.
package nvmeof

import (
	"errors"
	"fmt"
	"strings"

	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/rpc"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Method names on the wire.
const (
	MethodRead  = "nvmeof.read"
	MethodWrite = "nvmeof.write"
	MethodFlush = "nvmeof.flush"
)

// ReadArgs is the read capsule.
type ReadArgs struct {
	LBA    int64
	Blocks int
}

// WriteArgs is the write capsule (data travels in-message).
type WriteArgs struct {
	LBA  int64
	Data []byte
}

// ErrStatus reports a non-OK NVMe completion status.
var ErrStatus = errors.New("nvmeof: device status")

// Target exports one NVMe host over an RPC server.
type Target struct {
	host *nvme.Host
	srv  *rpc.Server

	Reads, Writes, Flushes int64
}

// NewTarget registers the NVMe-oF methods on srv, serving from host.
// Commands run on the device's queue pair qid.
func NewTarget(srv *rpc.Server, host *nvme.Host, qid int) *Target {
	t := &Target{host: host, srv: srv}
	srv.Handle(MethodRead, func(arg any, respond func(any, int, error)) {
		a, ok := arg.(ReadArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("nvmeof: bad read args %T", arg))
			return
		}
		t.Reads++
		// The server's active span joins the RPC leg to the NVMe leg of
		// the same request (0 when the caller did not tag one).
		err := host.ReadSpan(qid, a.LBA, a.Blocks, srv.ActiveSpan(), func(data []byte, st uint16) {
			if st != nvme.StatusOK {
				respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
				return
			}
			respond(data, len(data)+64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	srv.Handle(MethodWrite, func(arg any, respond func(any, int, error)) {
		a, ok := arg.(WriteArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("nvmeof: bad write args %T", arg))
			return
		}
		t.Writes++
		err := host.WriteSpan(qid, a.LBA, a.Data, srv.ActiveSpan(), func(st uint16) {
			if st != nvme.StatusOK {
				respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
				return
			}
			respond(true, 64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	srv.Handle(MethodFlush, func(arg any, respond func(any, int, error)) {
		t.Flushes++
		err := host.FlushSpan(qid, srv.ActiveSpan(), func(st uint16) {
			if st != nvme.StatusOK {
				respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
				return
			}
			respond(true, 64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	return t
}

// Initiator is the client side.
type Initiator struct {
	c      *rpc.Client
	target netsim.Addr
	bs     int

	// Retry policy. Zero values (the default) keep every verb a single
	// attempt, byte-identical to the unarmed initiator. With
	// MaxRetries > 0, transient failures — request timeouts and remote
	// device-status errors (media errors are transient in this model) —
	// are retried up to that many extra times with RetryBackoff<<attempt
	// between attempts.
	MaxRetries   int
	RetryBackoff sim.Duration

	// Span is the trace context stamped on subsequent verbs (0 =
	// untagged). Harnesses set it per operation when tracing is armed.
	Span telemetry.RequestID

	Retries int64 // retry attempts actually issued
}

// NewInitiator builds an initiator talking to target. blockSize must
// match the remote device.
func NewInitiator(c *rpc.Client, target netsim.Addr, blockSize int) *Initiator {
	return &Initiator{c: c, target: target, bs: blockSize}
}

// retryable reports whether an error is worth another attempt: a
// timed-out request or a remote NVMe status error. Remote errors cross
// the wire as strings, so ErrStatus is matched by its message.
func (i *Initiator) retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrTimeout) {
		return true
	}
	return errors.Is(err, rpc.ErrRemote) && strings.Contains(err.Error(), ErrStatus.Error())
}

// withRetry drives op until it succeeds, fails permanently, or exhausts
// the retry budget. op must invoke its callback exactly once.
func (i *Initiator) withRetry(op func(cb func(err error)), cb func(err error)) {
	var try func(n int)
	try = func(n int) {
		op(func(err error) {
			if i.retryable(err) && n < i.MaxRetries {
				i.Retries++
				backoff := i.RetryBackoff << uint(n)
				if backoff > 0 {
					i.c.Engine().After(backoff, "nvmeof.retry", func() { try(n + 1) })
				} else {
					try(n + 1)
				}
				return
			}
			cb(err)
		})
	}
	try(0)
}

// Read fetches blocks; cb receives the data.
func (i *Initiator) Read(lba int64, blocks int, cb func(data []byte, err error)) {
	var data []byte
	span := i.Span
	i.withRetry(func(done func(error)) {
		i.c.CallSpan(i.target, MethodRead, ReadArgs{LBA: lba, Blocks: blocks}, 64, span, func(val any, err error) {
			if err != nil {
				done(err)
				return
			}
			d, ok := val.([]byte)
			if !ok {
				done(fmt.Errorf("nvmeof: bad response %T", val))
				return
			}
			data = d
			done(nil)
		})
	}, func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(data, nil)
	})
}

// Write stores data (len must be a multiple of the block size).
func (i *Initiator) Write(lba int64, data []byte, cb func(err error)) {
	if len(data)%i.bs != 0 {
		cb(fmt.Errorf("nvmeof: unaligned write of %d bytes", len(data)))
		return
	}
	span := i.Span
	i.withRetry(func(done func(error)) {
		i.c.CallSpan(i.target, MethodWrite, WriteArgs{LBA: lba, Data: data}, len(data)+64, span, func(val any, err error) {
			done(err)
		})
	}, cb)
}

// Flush hardens all writes.
func (i *Initiator) Flush(cb func(err error)) {
	span := i.Span
	i.withRetry(func(done func(error)) {
		i.c.CallSpan(i.target, MethodFlush, nil, 64, span, func(val any, err error) { done(err) })
	}, cb)
}
