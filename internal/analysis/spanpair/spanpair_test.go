package spanpair_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, "../testdata", spanpair.Analyzer, "spanpair")
}
