// Interfaces mean dynamic dispatch; the subset has none.
package prog

type Ctx struct {
	A uint64
}

func Entry(ctx *Ctx) uint64 {
	var box interface{} // want 10 "interface types are outside the restricted subset (no dynamic dispatch)" no-interface
	switch box.(type) { // want 2 "type switches need interfaces, which are outside the restricted subset" no-interface
	case int:
		return 1
	}
	return 0
}
