package sim

import (
	"testing"
)

// TestPendingLargeChurn is the regression test for the O(1) live-event
// counter: Pending must stay exact through a 10k-event schedule/cancel
// storm, including tombstoned entries still sitting in the heap.
func TestPendingLargeChurn(t *testing.T) {
	e := NewEngine(1)
	const n = 10000
	refs := make([]EventRef, 0, n)
	for i := 0; i < n; i++ {
		ref := e.At(Time(i+1)*Time(Microsecond), "churn", func() {})
		refs = append(refs, ref)
	}
	if got := e.Pending(); got != n {
		t.Fatalf("Pending after %d schedules = %d", n, got)
	}
	// Cancel every other event; half become heap tombstones.
	for i := 0; i < n; i += 2 {
		e.Cancel(refs[i])
	}
	if got := e.Pending(); got != n/2 {
		t.Fatalf("Pending after cancelling half = %d, want %d", e.Pending(), n/2)
	}
	// Double-cancel is a no-op and must not disturb the counter.
	for i := 0; i < n; i += 2 {
		e.Cancel(refs[i])
	}
	if got := e.Pending(); got != n/2 {
		t.Fatalf("Pending after double cancel = %d, want %d", got, n/2)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != n/2 {
		t.Fatalf("fired %d events, want %d", fired, n/2)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d", got)
	}
}

// TestEventRefStaleAfterFire: once an event has fired, its slot can be
// recycled by a new event. Cancelling through the stale ref must be a
// no-op — in particular it must NOT cancel the slot's new occupant.
func TestEventRefStaleAfterFire(t *testing.T) {
	e := NewEngine(1)
	var aFired, bFired bool
	refA := e.At(Time(Microsecond), "a", func() { aFired = true })
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if !aFired {
		t.Fatal("a did not fire")
	}
	// refA's slot is free now; b should reuse it.
	refB := e.At(Time(2*Microsecond), "b", func() { bFired = true })
	e.Cancel(refA) // stale: generation mismatch, must not touch b
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d after stale cancel, want 1", got)
	}
	e.Run()
	if !bFired {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
	_ = refB
}

// TestEventRefStaleAfterCancel: the same protection holds when the slot
// was released by Cancel rather than by firing.
func TestEventRefStaleAfterCancel(t *testing.T) {
	e := NewEngine(1)
	ref1 := e.At(Time(Microsecond), "one", func() {})
	e.Cancel(ref1)
	ran := false
	_ = e.At(Time(Microsecond), "two", func() { ran = true })
	e.Cancel(ref1) // stale ref to a recycled slot
	e.Run()
	if !ran {
		t.Fatal("stale Cancel suppressed the recycled slot's event")
	}
}

// TestCancelLastScheduled exercises the O(1) tail-truncate fast path:
// cancelling the most recently scheduled event removes it without
// leaving a tombstone, and remaining events still fire in order.
func TestCancelLastScheduled(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(Time(Microsecond), "keep1", func() { order = append(order, "keep1") })
	e.At(Time(3*Microsecond), "keep2", func() { order = append(order, "keep2") })
	dead := e.At(Time(2*Microsecond), "dead", func() { order = append(order, "dead") })
	e.Cancel(dead)
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	e.Run()
	if len(order) != 2 || order[0] != "keep1" || order[1] != "keep2" {
		t.Fatalf("fired %v, want [keep1 keep2]", order)
	}
}

// TestNoEventCancel: the zero EventRef is always safely ignorable.
func TestNoEventCancel(t *testing.T) {
	e := NewEngine(1)
	e.Cancel(NoEvent)
	e.Cancel(EventRef{})
	if NoEvent.Valid() {
		t.Fatal("NoEvent must not be Valid")
	}
	ref := e.At(Time(Microsecond), "x", func() {})
	if !ref.Valid() {
		t.Fatal("live ref must be Valid")
	}
}

// TestSteadyStateZeroAlloc pins the free-list pool's guarantee: once
// the engine has warmed up, a schedule→fire cycle allocates nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	// Warm the pool and heap slab.
	for i := 0; i < 64; i++ {
		e.At(e.Now()+Time(Microsecond), "warm", func() {})
	}
	e.Run()
	do := func() {}
	avg := testing.AllocsPerRun(1000, func() {
		e.At(e.Now()+Time(Microsecond), "steady", do)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.2f/op, want 0", avg)
	}
}
