package telemetry

import "hyperion/internal/sim"

// ActiveSpan is an open interval: begun, not yet recorded. It pairs
// with exactly one End, which emits the same Event that a direct
// Span(layer, name, req, start, end) call would — Begin/End is a
// curried spelling of Span for call sites where the start and end of a
// stage live in different expressions. The zero value (and any span
// begun on a nil recorder) is disarmed: End on it is a free no-op.
//
// hyperlint's spanpair check enforces the pairing: every ActiveSpan
// produced by Begin must reach exactly one End on every path.
type ActiveSpan struct {
	rec   *Recorder
	layer string
	name  string
	req   RequestID
	start sim.Time
}

// Begin opens a span at start. Disarmed (nil) recorders return the
// zero ActiveSpan without retaining any of the arguments, keeping the
// disarmed path allocation- and state-free.
func (r *Recorder) Begin(layer, name string, req RequestID, start sim.Time) ActiveSpan {
	if r == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{rec: r, layer: layer, name: name, req: req, start: start}
}

// End closes the span at end, recording it exactly as
// Span(layer, name, req, start, end) would. End of a zero ActiveSpan
// is a no-op.
func (s ActiveSpan) End(end sim.Time) {
	s.rec.Span(s.layer, s.name, s.req, s.start, end)
}
