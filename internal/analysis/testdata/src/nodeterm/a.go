// Package nodeterm is hyperlint golden-test input: a model-layer
// package exercising every construct the nodeterm analyzer bans.
package nodeterm

import (
	"math/rand" // want `model package imports "math/rand": use the engine's seeded sim.Rand instead`
	"sync"      // want `model package imports "sync": models run single-threaded inside the event loop`
	"time"
)

type dev struct {
	mu   sync.Mutex
	done chan bool // want `model package declares a channel type`
}

func (d *dev) step() time.Time {
	d.mu.Lock()
	t := time.Now()                 // want `model package calls time.Now`
	time.Sleep(time.Millisecond)    // want `model package calls time.Sleep`
	elapsed := time.Since(t)        // want `model package calls time.Since`
	go d.step()                     // want `model package starts a goroutine`
	d.done <- elapsed > time.Second // want `model package sends on a channel`
	<-d.done                        // want `model package receives from a channel`
	select {                        // want `model package uses select`
	case <-d.done: // want `model package receives from a channel`
	default:
	}
	_ = rand.Intn(4)
	return t
}
