package hfs

import (
	"encoding/binary"
	"fmt"

	"hyperion/internal/seg"
)

// Annotation is the declarative layout description of an hfs instance —
// the Spiffy idea (§2.3): enough metadata about on-store formats that
// generated code (here: the plan executor; on real Hyperion: HDL) can
// resolve files to their storage locations without running any
// filesystem code.
type Annotation struct {
	// Object addressing rule: inode i lives at {InodePrefix, i}.
	InodePrefix uint64
	RootIno     uint64

	// Inode record layout.
	InodeBytes    int
	TypeOff       int // u8
	SizeOff       int // u64
	ExtCountOff   int // u16
	ExtTableOff   int
	ExtEntryBytes int // ObjectID Hi(8)+Lo(8)
	ExtentBytes   int

	// Directory stream layout: count u32, then records
	// [ino u64][type u8][nameLen u8][name].
	DirCountBytes    int
	DirentInoOff     int
	DirentTypeOff    int
	DirentNameLenOff int
	DirentNameOff    int

	TypeFile uint8
	TypeDir  uint8
}

// Annotate publishes the filesystem's layout.
func (fs *FS) Annotate() Annotation {
	return Annotation{
		InodePrefix:   fs.prefix,
		RootIno:       1,
		InodeBytes:    InodeBytes,
		TypeOff:       0,
		SizeOff:       8,
		ExtCountOff:   16,
		ExtTableOff:   24,
		ExtEntryBytes: 16,
		ExtentBytes:   ExtentBytes,

		DirCountBytes:    4,
		DirentInoOff:     0,
		DirentTypeOff:    8,
		DirentNameLenOff: 9,
		DirentNameOff:    10,

		TypeFile: TypeFile,
		TypeDir:  TypeDir,
	}
}

// PlanStep is one step of a compiled access plan.
type PlanStep struct {
	// Op is "lookup" (resolve Name in the current directory inode) or
	// "read" (return the current file's contents).
	Op   string
	Name string
}

// Plan is a compiled path access program.
type Plan struct {
	Steps []PlanStep
}

// CompilePlan turns a path into an access plan: one lookup per
// component, then a read.
func CompilePlan(path string) (Plan, error) {
	comps, err := splitPath(path)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	for _, c := range comps {
		p.Steps = append(p.Steps, PlanStep{Op: "lookup", Name: c})
	}
	p.Steps = append(p.Steps, PlanStep{Op: "read"})
	return p, nil
}

// ExecPlan runs a plan against the raw segment store using only the
// annotation — no *FS methods. This is the code path an accelerator
// executes; its read count is what E12 compares against the CPU-mediated
// stack.
func ExecPlan(v *seg.SyncView, ann Annotation, p Plan) ([]byte, error) {
	ino := ann.RootIno
	for _, step := range p.Steps {
		switch step.Op {
		case "lookup":
			next, err := annLookup(v, ann, ino, step.Name)
			if err != nil {
				return nil, err
			}
			ino = next
		case "read":
			typ, data, err := annReadAll(v, ann, ino)
			if err != nil {
				return nil, err
			}
			if typ != ann.TypeFile {
				return nil, ErrIsDir
			}
			return data, nil
		default:
			return nil, fmt.Errorf("hfs: unknown plan op %q", step.Op)
		}
	}
	return nil, fmt.Errorf("hfs: plan missing read step")
}

// annReadAll reads an inode and its full contents using annotation
// offsets only.
func annReadAll(v *seg.SyncView, ann Annotation, ino uint64) (uint8, []byte, error) {
	ibuf, err := v.ReadAt(seg.ObjectID{Hi: ann.InodePrefix, Lo: ino}, 0, int64(ann.InodeBytes))
	if err != nil {
		return 0, nil, err
	}
	typ := ibuf[ann.TypeOff]
	size := int64(binary.LittleEndian.Uint64(ibuf[ann.SizeOff:]))
	cnt := int(binary.LittleEndian.Uint16(ibuf[ann.ExtCountOff:]))
	out := make([]byte, 0, size)
	remaining := size
	for i := 0; i < cnt && remaining > 0; i++ {
		off := ann.ExtTableOff + i*ann.ExtEntryBytes
		ext := seg.ObjectID{
			Hi: binary.LittleEndian.Uint64(ibuf[off:]),
			Lo: binary.LittleEndian.Uint64(ibuf[off+8:]),
		}
		n := int64(ann.ExtentBytes)
		if n > remaining {
			n = remaining
		}
		data, err := v.ReadAt(ext, 0, n)
		if err != nil {
			return 0, nil, err
		}
		out = append(out, data...)
		remaining -= n
	}
	return typ, out, nil
}

// annLookup resolves name within directory ino via the annotated dirent
// format.
func annLookup(v *seg.SyncView, ann Annotation, ino uint64, name string) (uint64, error) {
	typ, data, err := annReadAll(v, ann, ino)
	if err != nil {
		return 0, err
	}
	if typ != ann.TypeDir {
		return 0, ErrNotDir
	}
	if len(data) < ann.DirCountBytes {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	n := int(binary.LittleEndian.Uint32(data))
	off := ann.DirCountBytes
	for i := 0; i < n; i++ {
		if off+ann.DirentNameOff > len(data) {
			return 0, fmt.Errorf("%w: truncated dirent", ErrCorrupt)
		}
		entIno := binary.LittleEndian.Uint64(data[off+ann.DirentInoOff:])
		nl := int(data[off+ann.DirentNameLenOff])
		if off+ann.DirentNameOff+nl > len(data) {
			return 0, fmt.Errorf("%w: truncated name", ErrCorrupt)
		}
		if string(data[off+ann.DirentNameOff:off+ann.DirentNameOff+nl]) == name {
			return entIno, nil
		}
		off += ann.DirentNameOff + nl
	}
	return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
}
