package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression comments.
//
// A finding is silenced by annotating its line (or the line directly
// above it) with
//
//	//hyperlint:allow(<check>[,<check>...]) <justification>
//
// The justification is mandatory: an allow comment without one is
// itself a diagnostic. The comment names the checks it silences, so an
// annotation written for nodeterm never accidentally hides a later
// maprange finding on the same line. `allow(all)` exists for generated
// code but should be vanishingly rare in a tree this size.

var allowRE = regexp.MustCompile(`^//hyperlint:allow\(([a-z,]+)\)\s*(.*)$`)

type allowComment struct {
	checks []string
	reason string
	posn   token.Position
}

type suppressions struct {
	byLine map[string]map[int][]*allowComment // filename -> line -> comments
	all    []*allowComment
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*allowComment)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				ac := &allowComment{
					checks: strings.Split(m[1], ","),
					reason: strings.TrimSpace(m[2]),
					posn:   posn,
				}
				s.all = append(s.all, ac)
				lines := s.byLine[posn.Filename]
				if lines == nil {
					lines = make(map[int][]*allowComment)
					s.byLine[posn.Filename] = lines
				}
				// The annotation covers its own line (trailing
				// comment) and the next line (standalone comment
				// above the offending statement).
				lines[posn.Line] = append(lines[posn.Line], ac)
				lines[posn.Line+1] = append(lines[posn.Line+1], ac)
			}
		}
	}
	return s
}

// allows reports whether a diagnostic from check at posn is silenced.
func (s *suppressions) allows(check string, posn token.Position) bool {
	for _, ac := range s.byLine[posn.Filename][posn.Line] {
		for _, c := range ac.checks {
			if c == check || c == "all" {
				return true
			}
		}
	}
	return false
}

// missingReasons returns a finding for every allow comment that skipped
// the justification. The annotation still suppresses — the point of the
// finding is to make the omission impossible to merge, not to re-reveal
// what it hid.
func (s *suppressions) missingReasons() []Finding {
	var out []Finding
	for _, ac := range s.all {
		if ac.reason == "" {
			out = append(out, Finding{
				Check:    "allow",
				Position: ac.posn,
				Message:  "hyperlint:allow comment needs a justification: //hyperlint:allow(" + strings.Join(ac.checks, ",") + ") <why this is safe>",
			})
		}
	}
	return out
}
