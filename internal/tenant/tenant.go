// Package tenant is the multi-tenant control plane over the fabric's
// partial-reconfiguration model: an admission controller plus a slot
// scheduler, so N tenants with distinct offloads, weights, and SLOs
// share one CPU-free box (the paper's Figure 2 config engine, driven
// at production multiplicity).
//
// A tenant arrives with a compiled offload (a gofront program or eHDL
// image packaged as a *fabric.Bitstream — the bitstream size fixes its
// reconfiguration latency through fabric.ReconfigTime), a weight, and
// an SLO. Admission checks the image against a per-slot resource
// budget and a port-capacity cap; admitted tenants wait in a FIFO for
// a free slot, time-share slots under an optional lease, and send
// their traffic through a deficit-round-robin weighted-fair arbiter
// onto the slot pipelines. The fault plane can evict slots mid-flight;
// victims are requeued and their in-FIFO requests resolve to a
// retryable error, never a hang.
//
// Scheduling invariants (pinned by the property tests):
//
//   - Conservation: every admitted, non-departed tenant either holds
//     exactly one slot (Reconfiguring/Active) or sits exactly once in
//     the wait queue — never both, never neither.
//   - Exclusivity: no two tenants ever map to one slot.
//   - Bounded wait: with a positive lease every queued tenant with a
//     positive weight is placed within a bounded amount of sim-time
//     (FIFO queue + bounded lease + bounded reconfiguration).
package tenant

import (
	"errors"

	"hyperion/internal/fabric"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// SLO is a tenant's service-level objective. Zero fields are
// unconstrained.
type SLO struct {
	P99     sim.Duration // per-request latency objective (submit to completion)
	Goodput float64      // completed ops/sec floor over the measurement window
}

// Spec is everything a tenant presents at admission.
type Spec struct {
	Name   string // pure label: must never influence scheduling
	Weight int    // DRR quantum in bus beats, [1, Config.MaxWeight]
	Image  *fabric.Bitstream
	SLO    SLO
}

// State is a tenant's scheduling lifecycle.
type State int

const (
	StateQueued State = iota
	StateReconfiguring
	StateActive
	StateDeparted
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateReconfiguring:
		return "reconfiguring"
	case StateActive:
		return "active"
	case StateDeparted:
		return "departed"
	}
	return "invalid"
}

// Errors returned by the control plane. Retryable classifies them the
// way a client would: retryable errors mean the request was shed by
// scheduling (eviction, preemption, backpressure) and may be resent;
// the rest are terminal.
var (
	ErrRejected  = errors.New("tenant: admission rejected")
	ErrBadSpec   = errors.New("tenant: invalid spec")
	ErrUnknown   = errors.New("tenant: unknown tenant id")
	ErrNotActive = errors.New("tenant: not active (queued or reconfiguring)")
	ErrEvicted   = errors.New("tenant: slot evicted mid-flight")
	ErrPreempted = errors.New("tenant: preempted at lease expiry")
	ErrDropped   = errors.New("tenant: request dropped by fault plane")
	ErrDeparted  = errors.New("tenant: departed with requests in flight")
)

// Retryable reports whether a request that failed with err may be
// retried against the same tenant.
func Retryable(err error) bool {
	return errors.Is(err, ErrNotActive) || errors.Is(err, ErrEvicted) ||
		errors.Is(err, ErrPreempted) || errors.Is(err, ErrDropped) ||
		errors.Is(err, fabric.ErrStreamFull)
}

// Tenant is the controller's book of record for one admitted tenant.
type Tenant struct {
	ID    int
	Spec  Spec
	State State
	Slot  int // occupied slot, or -1
	Port  int // WFQ input port

	QueuedAt    sim.Time     // last transition into StateQueued
	ActivatedAt sim.Time     // last transition into StateActive
	MaxWait     sim.Duration // longest queued-to-placed wait observed

	Placements  int64 // times placed into a slot (= lease generation)
	Preemptions int64 // lease-expiry displacements
	Evictions   int64 // fault-plane displacements

	Submitted int64 // requests accepted into the WFQ FIFO
	Completed int64 // requests that returned a result
	Retried   int64 // requests resolved with a retryable error
	Failed    int64 // requests resolved with a terminal error
	NotActive int64 // submit-time rejections (tenant had no slot)
	Shed      int64 // submit-time backpressure (FIFO full)

	Lat sim.LatencyRecorder // submit-to-completion latency

	leaseOver bool   // lease expired with an empty queue; evict on demand
	leaseName string // precomputed lease event name
	crec      *telemetry.Recorder
}

// Recorder returns the tenant's telemetry child (nil when the plane is
// disarmed).
func (t *Tenant) Recorder() *telemetry.Recorder { return t.crec }

// Row is one tenant's line in the SLO report.
type Row struct {
	Name        string
	Weight      int
	State       string
	Placements  int64
	Preemptions int64
	Evictions   int64
	Submitted   int64
	Completed   int64
	Retryable   int64 // Retried + NotActive + Shed
	Failed      int64
	P50, P99    sim.Duration
	GoodputOPS  float64
	ViolLat     bool // P99 objective missed
	ViolGood    bool // goodput floor missed
}

// Violations counts the SLO clauses this row misses.
func (r Row) Violations() int {
	n := 0
	if r.ViolLat {
		n++
	}
	if r.ViolGood {
		n++
	}
	return n
}
