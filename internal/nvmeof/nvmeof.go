// Package nvmeof implements NVMe-over-Fabrics on Hyperion: a target that
// exports a local NVMe device over any of the application-selected
// transports (TCP, UDP, RDMA, Homa — §2's application-defined network
// transport), and an initiator offering the familiar block verbs. E14
// sweeps this path across transports.
package nvmeof

import (
	"errors"
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/rpc"
)

// Method names on the wire.
const (
	MethodRead  = "nvmeof.read"
	MethodWrite = "nvmeof.write"
	MethodFlush = "nvmeof.flush"
)

// ReadArgs is the read capsule.
type ReadArgs struct {
	LBA    int64
	Blocks int
}

// WriteArgs is the write capsule (data travels in-message).
type WriteArgs struct {
	LBA  int64
	Data []byte
}

// ErrStatus reports a non-OK NVMe completion status.
var ErrStatus = errors.New("nvmeof: device status")

// Target exports one NVMe host over an RPC server.
type Target struct {
	host *nvme.Host
	srv  *rpc.Server

	Reads, Writes, Flushes int64
}

// NewTarget registers the NVMe-oF methods on srv, serving from host.
// Commands run on the device's queue pair qid.
func NewTarget(srv *rpc.Server, host *nvme.Host, qid int) *Target {
	t := &Target{host: host, srv: srv}
	srv.Handle(MethodRead, func(arg any, respond func(any, int, error)) {
		a, ok := arg.(ReadArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("nvmeof: bad read args %T", arg))
			return
		}
		t.Reads++
		err := host.Read(qid, a.LBA, a.Blocks, func(data []byte, st uint16) {
			if st != nvme.StatusOK {
				respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
				return
			}
			respond(data, len(data)+64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	srv.Handle(MethodWrite, func(arg any, respond func(any, int, error)) {
		a, ok := arg.(WriteArgs)
		if !ok {
			respond(nil, 0, fmt.Errorf("nvmeof: bad write args %T", arg))
			return
		}
		t.Writes++
		err := host.Write(qid, a.LBA, a.Data, func(st uint16) {
			if st != nvme.StatusOK {
				respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
				return
			}
			respond(true, 64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	srv.Handle(MethodFlush, func(arg any, respond func(any, int, error)) {
		t.Flushes++
		err := host.Flush(qid, func(st uint16) {
			if st != nvme.StatusOK {
				respond(nil, 0, fmt.Errorf("%w %#x", ErrStatus, st))
				return
			}
			respond(true, 64, nil)
		})
		if err != nil {
			respond(nil, 0, err)
		}
	})
	return t
}

// Initiator is the client side.
type Initiator struct {
	c      *rpc.Client
	target netsim.Addr
	bs     int
}

// NewInitiator builds an initiator talking to target. blockSize must
// match the remote device.
func NewInitiator(c *rpc.Client, target netsim.Addr, blockSize int) *Initiator {
	return &Initiator{c: c, target: target, bs: blockSize}
}

// Read fetches blocks; cb receives the data.
func (i *Initiator) Read(lba int64, blocks int, cb func(data []byte, err error)) {
	i.c.Call(i.target, MethodRead, ReadArgs{LBA: lba, Blocks: blocks}, 64, func(val any, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		data, ok := val.([]byte)
		if !ok {
			cb(nil, fmt.Errorf("nvmeof: bad response %T", val))
			return
		}
		cb(data, nil)
	})
}

// Write stores data (len must be a multiple of the block size).
func (i *Initiator) Write(lba int64, data []byte, cb func(err error)) {
	if len(data)%i.bs != 0 {
		cb(fmt.Errorf("nvmeof: unaligned write of %d bytes", len(data)))
		return
	}
	i.c.Call(i.target, MethodWrite, WriteArgs{LBA: lba, Data: data}, len(data)+64, func(val any, err error) {
		cb(err)
	})
}

// Flush hardens all writes.
func (i *Initiator) Flush(cb func(err error)) {
	i.c.Call(i.target, MethodFlush, nil, 64, func(val any, err error) { cb(err) })
}
