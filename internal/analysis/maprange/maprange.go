// Package maprange flags `for range` over maps in model packages when
// the loop body is order-sensitive — the classic map-iteration-order
// nondeterminism that silently changes simulation results between runs
// or Go releases.
//
// Not every map range is a bug. The analyzer permits bodies whose
// observable effect is order-independent:
//
//   - pure accumulation into variables with commutative compound
//     assignments (+=, -=, *=, /=, |=, &=, ^=, &^=) or ++/--;
//   - collecting keys or values via s = append(s, ...) — the dominant
//     "collect then sort.Slice" idiom (the analyzer cannot see the
//     sort; collecting and then *consuming unsorted* is on you);
//   - writes indexed by the range key itself (dst[k] = v): every
//     iteration touches a distinct key, so the merged result is
//     independent of visit order;
//   - deleting from a map, and := definitions of loop-local state.
//
// Everything else — method/function calls, writes through selectors or
// indices, sends, returns or breaks that pick an arbitrary element —
// is flagged. Iterate a sorted key slice instead, or annotate with
// //hyperlint:allow(maprange) and a justification if the effect is
// provably order-independent.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyperion/internal/analysis"
)

// Analyzer is the maprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flags order-sensitive map iteration in model packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Layer != analysis.LayerModel {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if bad, what := firstOrderSensitive(pass, rng); bad != nil {
				pass.Reportf(rng.Pos(),
					"map iteration order is nondeterministic and this body is order-sensitive (%s at line %d): iterate sorted keys instead",
					what, pass.Fset.Position(bad.Pos()).Line)
			}
			return true
		})
	}
	return nil
}

// commutativeAssign lists compound assignments whose final value does
// not depend on operand order (modulo float rounding, which Hyperion
// models avoid in state).
var commutativeAssign = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true,
	token.XOR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

// firstOrderSensitive scans a loop body and returns the first
// statement whose effect depends on iteration order, with a short
// description, or (nil, "").
func firstOrderSensitive(pass *analysis.Pass, rng *ast.RangeStmt) (ast.Node, string) {
	body := rng.Body
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	var bad ast.Node
	var what string
	flag := func(n ast.Node, w string) {
		if bad == nil {
			bad, what = n, w
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if allowedCall(pass, n) {
				return true
			}
			flag(n, "call")
			return false
		case *ast.AssignStmt:
			switch {
			case n.Tok == token.DEFINE:
				return true
			case allBlank(n):
				return true
			case commutativeAssign[n.Tok]:
				// Accumulation is order-free only into plain
				// variables; x[i] or s.f targets are shared
				// state, but += onto them is still commutative.
				return true
			case n.Tok == token.ASSIGN && isAppendReassign(n):
				return true
			case n.Tok == token.ASSIGN && allKeyIndexed(n, keyName):
				// dst[k] = v with k the range key: each iteration
				// writes a distinct key, so order cannot matter.
				return true
			default:
				flag(n, "assignment")
				return false
			}
		case *ast.IncDecStmt:
			return true // counters and histograms commute
		case *ast.SendStmt:
			flag(n, "channel send")
			return false
		case *ast.GoStmt:
			flag(n, "goroutine start")
			return false
		case *ast.ReturnStmt:
			flag(n, "return picks an arbitrary element")
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				flag(n, n.Tok.String()+" picks an arbitrary element")
				return false
			}
			return true
		case *ast.FuncLit:
			// The literal's body runs later; what matters here is
			// where the closure goes, and the enclosing
			// assignment/call rules already police that.
			return false
		}
		return true
	})
	return bad, what
}

// allowedCall reports whether a call inside a map-range body is
// order-free: builtins with no observable effect beyond their
// arguments, and type conversions.
func allowedCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "len", "cap", "append", "delete", "min", "max",
				"make", "new", "real", "imag", "complex":
				return true
			}
			return false
		case *types.TypeName:
			return true // conversion to a local named type
		}
		return false
	case *ast.SelectorExpr:
		// pkg.Type(x) conversions are fine; pkg.Func(x) is not.
		_, isType := pass.TypesInfo.Uses[fun.Sel].(*types.TypeName)
		return isType
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType:
		return true // conversion via type literal, e.g. []byte(s)
	}
	return false
}

// allBlank reports whether every LHS is the blank identifier:
// `_ = x` discards a value and has no ordering effect.
func allBlank(n *ast.AssignStmt) bool {
	for _, lhs := range n.Lhs {
		id, ok := analysis.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// allKeyIndexed reports whether every LHS of a plain assignment is an
// index expression whose index is exactly the range-key identifier.
func allKeyIndexed(n *ast.AssignStmt, keyName string) bool {
	if keyName == "" {
		return false
	}
	for _, lhs := range n.Lhs {
		ix, ok := analysis.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return false
		}
		id, ok := analysis.Unparen(ix.Index).(*ast.Ident)
		if !ok || id.Name != keyName {
			return false
		}
	}
	return true
}

// isAppendReassign matches `s = append(s, ...)` (any single LHS
// variable, including blank): the collect-then-sort idiom.
func isAppendReassign(n *ast.AssignStmt) bool {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return false
	}
	if _, ok := analysis.Unparen(n.Lhs[0]).(*ast.Ident); !ok {
		return false
	}
	call, ok := analysis.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}
