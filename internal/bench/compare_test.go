package bench

import (
	"strings"
	"testing"
)

func TestCompareDetectsMismatchAndMembership(t *testing.T) {
	old := Report{TotalWallMS: 100, Results: []Record{
		{ID: "E1", WallMS: 10, Allocs: 100, TableSHA256: "aaa"},
		{ID: "E2", WallMS: 20, Allocs: 200, TableSHA256: "bbb"},
		{ID: "E3", WallMS: 30, Allocs: 300, TableSHA256: "ccc"},
	}}
	cur := Report{TotalWallMS: 50, Results: []Record{
		{ID: "E1", WallMS: 5, Allocs: 50, TableSHA256: "aaa"},
		{ID: "E2", WallMS: 10, Allocs: 100, TableSHA256: "XXX"},
		{ID: "E4", WallMS: 1, Allocs: 10, TableSHA256: "ddd"},
	}}
	cmp := Compare(old, cur)
	if cmp.HashMismatches != 1 {
		t.Fatalf("HashMismatches = %d, want 1 (E2 only; new/gone rows don't count)", cmp.HashMismatches)
	}
	if len(cmp.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (E1 E2 E4 then gone E3)", len(cmp.Rows))
	}
	if !cmp.Rows[0].HashMatch || cmp.Rows[1].HashMatch {
		t.Fatalf("hash match flags wrong: E1=%v E2=%v", cmp.Rows[0].HashMatch, cmp.Rows[1].HashMatch)
	}
	if !cmp.Rows[2].OldMissing || cmp.Rows[2].ID != "E4" {
		t.Fatalf("row 2 should be new-only E4, got %+v", cmp.Rows[2])
	}
	if !cmp.Rows[3].NewMissing || cmp.Rows[3].ID != "E3" {
		t.Fatalf("row 3 should be gone E3, got %+v", cmp.Rows[3])
	}
	s := cmp.String()
	for _, want := range []string{"MISMATCH", "0.50x", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestCompareCleanRun(t *testing.T) {
	rep := Report{TotalWallMS: 10, Results: []Record{
		{ID: "E1", WallMS: 10, Allocs: -1, TableSHA256: "aaa"},
	}}
	cmp := Compare(rep, rep)
	if cmp.HashMismatches != 0 {
		t.Fatalf("self-compare reported %d mismatches", cmp.HashMismatches)
	}
	if s := cmp.String(); strings.Contains(s, "MISMATCH") {
		t.Fatalf("clean compare rendered a mismatch:\n%s", s)
	}
}
