// Package maprange is hyperlint golden-test input: map iterations
// whose bodies are order-sensitive (flagged) or order-free (allowed).
package maprange

import "fmt"

func flagged(m map[string]int) (string, bool) {
	for k, v := range m { // want `order-sensitive \(call at line`
		fmt.Println(k, v)
	}
	last := ""
	for k := range m { // want `order-sensitive \(assignment at line`
		last = k
	}
	_ = last
	for k, v := range m { // want `order-sensitive \(assignment at line`
		m[k+k] = v // index is not the range key: writes can collide
	}
	for k := range m { // want `break picks an arbitrary element`
		if len(k) > 3 {
			break
		}
	}
	for k := range m { // want `return picks an arbitrary element`
		return k, true
	}
	return "", false
}

func allowed(m map[string]int, dst map[string]int) int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom
	}
	total := 0
	for _, v := range m {
		total += v // commutative accumulation
	}
	for k, v := range m {
		dst[k] = v // distinct-key merge
	}
	hist := make(map[int]int)
	for _, v := range m {
		hist[v]++ // histogram counts commute
	}
	for k := range m {
		if k == "" {
			delete(m, k) // deleting from the ranged map is specified-safe
		}
	}
	sum := 0.0
	for _, v := range m {
		sum += float64(v) // conversions are effect-free
	}
	for k := range m {
		local := k + "!"
		_ = local // := definitions are loop-local
	}
	return total + len(keys) + len(hist) + int(sum)
}

func suppressed(m map[string]int) {
	//hyperlint:allow(maprange) golden test: output order deliberately unspecified here
	for k, v := range m {
		fmt.Println(k, v)
	}
}
