package fabric

import (
	"testing"

	"hyperion/internal/sim"
)

func TestEvictActiveSlot(t *testing.T) {
	eng, f := newTestFabric(t)
	b := testBitstream("victim", 4<<20)
	if err := f.LoadBitstream(0, b, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	free := f.FreeResources()
	if err := f.Evict(0); err != nil {
		t.Fatal(err)
	}
	s, _ := f.Slot(0)
	if s.State != SlotEmpty || s.Image != nil {
		t.Fatalf("slot not cleared: %v image=%v", s.State, s.Image)
	}
	got := f.FreeResources()
	want := free.Add(b.Uses)
	if got != want {
		t.Fatalf("resources not returned: %+v, want %+v", got, want)
	}
}

func TestEvictMidReconfig(t *testing.T) {
	// Eviction during partial reconfiguration cancels the activation:
	// the done callback must never fire, resources return, and a new
	// image can load immediately (Unload would refuse with ErrSlotBusy).
	eng, f := newTestFabric(t)
	fired := false
	b := testBitstream("victim", 8<<20)
	if err := f.LoadBitstream(0, b, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	// Halfway through the ~20 ms reconfiguration.
	eng.RunUntil(sim.Time(f.ReconfigTime(b.SizeBytes) / 2))
	if err := f.Unload(0); err != ErrSlotBusy {
		t.Fatalf("unload mid-reconfig: got %v, want ErrSlotBusy", err)
	}
	if err := f.Evict(0); err != nil {
		t.Fatal(err)
	}
	repl := testBitstream("replacement", 1<<20)
	if err := f.LoadBitstream(0, repl, nil); err != nil {
		t.Fatalf("reload after evict: %v", err)
	}
	eng.Run()
	if fired {
		t.Fatal("cancelled reconfiguration still activated")
	}
	s, _ := f.Slot(0)
	if s.State != SlotActive || s.Image != repl {
		t.Fatalf("replacement not active: %v", s.State)
	}
	want, _ := U280Resources().Sub(repl.Uses)
	if f.FreeResources() != want {
		t.Fatalf("resource accounting off after evict+reload")
	}
}

func TestEvictInFlightItemsComplete(t *testing.T) {
	// Items already issued into the pipeline pin their image: evicting
	// the slot under them must not lose or corrupt their completions.
	eng, f := newTestFabric(t)
	b := testBitstream("busy", 1<<20)
	b.Depth = 100
	if err := f.LoadBitstream(0, b, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var got []any
	for i := 0; i < 10; i++ {
		v := i
		if err := f.Submit(0, v, func(out any) { got = append(got, out) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Evict(0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("completed %d of 10 in-flight items after eviction", len(got))
	}
	for i, v := range got {
		if v.(int) != i {
			t.Fatalf("completion %d reordered: got %v", i, v)
		}
	}
}
