// Command benchctl runs the paper-reproduction experiments and prints
// the regenerated tables and figures.
//
// Usage:
//
//	benchctl list          # show available experiments
//	benchctl all           # run everything (EXPERIMENTS.md content)
//	benchctl table1        # run one, by name or id (E1..E14)
package main

import (
	"fmt"
	"os"

	"hyperion/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Name)
		}
	case "all":
		for _, e := range bench.All() {
			fmt.Println(e.Run().String())
		}
	default:
		for _, name := range os.Args[1:] {
			e, ok := bench.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchctl: unknown experiment %q (try 'benchctl list')\n", name)
				os.Exit(1)
			}
			fmt.Println(e.Run().String())
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchctl list | all | <experiment>...")
}
