package ebpf

import (
	"errors"
	"strings"
	"testing"
)

func verifySrc(t *testing.T, src string, cfg VerifierConfig) error {
	t.Helper()
	return Verify(MustAssemble(src), cfg)
}

func defCfg() VerifierConfig {
	maps := &MapSet{}
	maps.Add(NewHashMap(4, 8, 16))
	return DefaultVerifierConfig(maps)
}

func TestVerifyAcceptsGoodPrograms(t *testing.T) {
	good := map[string]string{
		"trivial": "mov r0, 0\nexit",
		"stack_rw": `
			stdw [r10-8], 42
			ldxdw r0, [r10-8]
			exit`,
		"ctx_read": `
			ldxw r0, [r1+0]
			exit`,
		"branches_merge": `
			ldxw r2, [r1+0]
			mov r0, 0
			jeq r2, 0, a
			mov r0, 1
		a:	exit`,
		"null_checked_map": `
			stw [r10-4], 1
			mov r1, 0
			mov r2, r10
			sub r2, 4
			call 1
			jeq r0, 0, miss
			ldxdw r0, [r0+0]
			exit
		miss:
			mov r0, 0
			exit`,
		"map_update": `
			stw [r10-4], 1
			stdw [r10-16], 9
			mov r1, 0
			mov r2, r10
			sub r2, 4
			mov r3, r10
			sub r3, 16
			call 2
			mov r0, 0
			exit`,
		"ktime": "call 5\nexit",
		"callee_saved": `
			mov r6, 3
			call 5
			mov r0, r6
			exit`,
		"ptr_plus_const": `
			mov r2, r10
			sub r2, 16
			stdw [r2+8], 1
			ldxdw r0, [r2+8]
			exit`,
	}
	cfg := defCfg()
	for name, src := range good {
		t.Run(name, func(t *testing.T) {
			if err := verifySrc(t, src, cfg); err != nil {
				t.Fatalf("rejected good program: %v", err)
			}
		})
	}
}

func TestVerifyRejectsBadPrograms(t *testing.T) {
	bad := map[string]struct {
		src  string
		frag string // expected error fragment
	}{
		"uninit_read":       {"mov r0, r3\nexit", "uninitialized r3"},
		"uninit_r0_exit":    {"mov r1, 1\nexit", "uninitialized r0"},
		"fall_off_end":      {"mov r0, 0", "fall off"},
		"backedge_loop":     {"start: mov r0, 0\nja start", "back-edge"},
		"cond_backedge":     {"mov r0, 10\nloop: sub r0, 1\njne r0, 0, loop\nexit", "back-edge"},
		"stack_overflow":    {"stdw [r10-520], 1\nmov r0, 0\nexit", "stack access"},
		"stack_above_top":   {"stdw [r10+8], 1\nmov r0, 0\nexit", "stack access"},
		"uninit_stack_read": {"ldxdw r0, [r10-8]\nexit", "uninitialized stack"},
		"ctx_oob":           {"ldxw r0, [r1+1024]\nexit", "ctx access"},
		"null_deref":        {"mov r1, 0\nstw [r10-4], 1\nmov r2, r10\nsub r2, 4\ncall 1\nldxdw r0, [r0+0]\nexit", "possibly-null"},
		"map_value_oob": {`
			stw [r10-4], 1
			mov r1, 0
			mov r2, r10
			sub r2, 4
			call 1
			jeq r0, 0, miss
			ldxdw r0, [r0+8]
			exit
		miss:
			mov r0, 0
			exit`, "map value access"},
		"scalar_deref":     {"mov r2, 1234\nldxdw r0, [r2+0]\nexit", "scalar"},
		"unknown_helper":   {"call 4095\nexit", "unknown or disallowed"},
		"ptr_leak_exit":    {"mov r0, r10\nexit", "pointer leak"},
		"write_r10":        {"mov r10, 0\nmov r0, 0\nexit", "read-only frame pointer"},
		"ptr_unknown_add":  {"ldxw r3, [r1+0]\nmov r2, r10\nadd r2, r3\nstdw [r2-8], 1\nmov r0, 0\nexit", "unbounded scalar"},
		"ptr32_arith":      {"mov r2, r10\nadd32 r2, 4\nmov r0, 0\nexit", "32-bit arithmetic on a pointer"},
		"map_id_not_const": {"ldxw r1, [r1+0]\nmov r2, r10\nstw [r10-4], 1\nsub r2, 4\ncall 1\nmov r0, 0\nexit", "constant map id"},
		"clobbered_r1":     {"call 5\nldxw r0, [r1+0]\nexit", "uninitialized r1"},
		"bad_map_id":       {"stw [r10-4], 1\nmov r1, 99\nmov r2, r10\nsub r2, 4\ncall 1\nmov r0, 0\nexit", "no map with id"},
		"key_not_pointer":  {"mov r1, 0\nmov r2, 5\ncall 1\nmov r0, 0\nexit", "map key"},
		"unreachable_code": {"mov r0, 0\nexit\nmov r0, 1\nexit", "unreachable"},
	}
	cfg := defCfg()
	for name, c := range bad {
		t.Run(name, func(t *testing.T) {
			err := verifySrc(t, c.src, cfg)
			if err == nil {
				t.Fatal("accepted bad program")
			}
			if !errors.Is(err, ErrVerify) {
				t.Fatalf("error not wrapped in ErrVerify: %v", err)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestVerifyEmptyAndHuge(t *testing.T) {
	if err := Verify(nil, defCfg()); err == nil {
		t.Fatal("accepted empty program")
	}
	huge := make([]Instruction, MaxInsns+1)
	for i := range huge {
		huge[i] = Mov64Imm(R0, 0)
	}
	huge[len(huge)-1] = Exit()
	if err := Verify(huge, defCfg()); err == nil {
		t.Fatal("accepted oversized program")
	}
}

func TestVerifyBranchRefinementBothOrders(t *testing.T) {
	// jne-based null check: pointer valid in the taken branch.
	src := `
		stw [r10-4], 1
		mov r1, 0
		mov r2, r10
		sub r2, 4
		call 1
		jne r0, 0, hit
		mov r0, 0
		exit
	hit:
		ldxdw r0, [r0+0]
		exit`
	if err := verifySrc(t, src, defCfg()); err != nil {
		t.Fatalf("jne refinement rejected: %v", err)
	}
}

func TestVerifyCustomHelperWindow(t *testing.T) {
	cfg := defCfg()
	cfg.Helpers = map[int32]HelperSig{
		HelperUserBase: {Name: "get_block", Ret: RetWindow, WindowSize: 64},
	}
	// Reading inside the window is fine; beyond it is rejected; writing
	// is rejected.
	if err := verifySrc(t, "call 64\nldxdw r0, [r0+56]\nexit", cfg); err != nil {
		t.Fatalf("in-bounds window read rejected: %v", err)
	}
	if err := verifySrc(t, "call 64\nldxdw r0, [r0+57]\nexit", cfg); err == nil {
		t.Fatal("out-of-bounds window read accepted")
	}
	if err := verifySrc(t, "call 64\nstdw [r0+0], 1\nmov r0, 0\nexit", cfg); err == nil {
		t.Fatal("window write accepted")
	}
}

func TestVerifyStateMergeWidensRanges(t *testing.T) {
	// r2 is 4 on one path and 8 on the other: the merged range [4,8]
	// may be used as a pointer offset only when the whole window stays
	// in bounds. Reading 8 bytes at r10-16+[4,8] can reach r10-0...
	// actually [-12,0): in bounds but conditionally initialized, so the
	// read of possibly-uninitialized stack must be rejected.
	src := `
		ldxw r3, [r1+0]
		mov r2, 4
		jeq r3, 0, skip
		mov r2, 8
	skip:
		mov r4, r10
		sub r4, 16
		add r4, r2
		ldxdw r0, [r4+0]
		exit`
	if err := verifySrc(t, src, defCfg()); err == nil {
		t.Fatal("accepted variable-offset read of uninitialized stack")
	}
	// After initializing the full window, the same access verifies.
	src2 := `
		ldxw r3, [r1+0]
		stdw [r10-16], 1
		stdw [r10-8], 2
		mov r2, 4
		jeq r3, 0, skip
		mov r2, 8
	skip:
		mov r4, r10
		sub r4, 16
		add r4, r2
		ldxdw r0, [r4+0]
		exit`
	if err := verifySrc(t, src2, defCfg()); err != nil {
		t.Fatalf("rejected safe variable-offset stack read: %v", err)
	}
	// A range that can escape the stack must be rejected.
	src3 := `
		ldxw r3, [r1+0]
		mov r2, 4
		jeq r3, 0, skip
		mov r2, 16
	skip:
		mov r4, r10
		sub r4, 16
		add r4, r2
		ldxdw r0, [r4+0]
		exit`
	if err := verifySrc(t, src3, defCfg()); err == nil {
		t.Fatal("accepted stack access escaping the frame")
	}
}

func TestVerifyRangeRefinementEnablesIndexing(t *testing.T) {
	// XRP-style computed indexing: load an index from ctx, bound it
	// with a branch, scale it, and read inside a helper window.
	cfg := defCfg()
	cfg.Helpers = map[int32]HelperSig{
		HelperUserBase: {Name: "get_node", Ret: RetWindow, WindowSize: 4096},
	}
	src := `
		ldxw r6, [r1+0]
		call 64
		mov r7, r0
		jlt r6, 500, ok
		mov r0, 0
		exit
	ok:
		mul r6, 8
		add r7, r6
		ldxdw r0, [r7+0]
		and r0, 0xffff
		exit`
	if err := verifySrc(t, src, cfg); err != nil {
		t.Fatalf("bounded computed indexing rejected: %v", err)
	}
	// Without the bounding branch the same program must be rejected.
	srcBad := `
		ldxw r6, [r1+0]
		call 64
		mov r7, r0
		mul r6, 8
		add r7, r6
		ldxdw r0, [r7+0]
		exit`
	if err := verifySrc(t, srcBad, cfg); err == nil {
		t.Fatal("unbounded computed indexing accepted")
	}
	// A bound that still allows escaping the window must be rejected.
	srcOver := `
		ldxw r6, [r1+0]
		call 64
		mov r7, r0
		jlt r6, 513, ok
		mov r0, 0
		exit
	ok:
		mul r6, 8
		add r7, r6
		ldxdw r0, [r7+0]
		exit`
	if err := verifySrc(t, srcOver, cfg); err == nil {
		t.Fatal("window overrun accepted (bound 513*8+8 > 4096)")
	}
}

func TestVerifyRangeArithmetic(t *testing.T) {
	cfg := defCfg()
	cfg.Helpers = map[int32]HelperSig{
		HelperUserBase: {Name: "get_node", Ret: RetWindow, WindowSize: 256},
	}
	// Byte loads are bounded [0,255]; AND narrows; RSH narrows; the
	// combination must verify against a 256-byte window.
	src := `
		call 64
		mov r7, r0
		ldxb r6, [r7+0]     ; [0,255]
		and r6, 0x7f        ; [0,127]
		rsh r6, 1           ; [0,63]
		add r6, r6          ; [0,126]
		add r7, r6
		ldxb r0, [r7+0]     ; worst case byte 126: in bounds
		exit`
	if err := verifySrc(t, src, cfg); err != nil {
		t.Fatalf("range arithmetic rejected: %v", err)
	}
	// Division by a constant narrows too.
	src2 := `
		call 64
		mov r7, r0
		ldxh r6, [r7+0]     ; [0,65535]
		div r6, 512         ; [0,127]
		add r7, r6
		ldxb r0, [r7+0]
		exit`
	if err := verifySrc(t, src2, cfg); err != nil {
		t.Fatalf("division range rejected: %v", err)
	}
}

func TestVerifyMergedStackInit(t *testing.T) {
	// A stack slot written on only one path must not be readable after
	// the merge.
	src := `
		ldxw r3, [r1+0]
		jeq r3, 0, skip
		stdw [r10-8], 1
	skip:
		ldxdw r0, [r10-8]
		exit`
	if err := verifySrc(t, src, defCfg()); err == nil {
		t.Fatal("accepted read of conditionally-initialized stack")
	}
	// Written on both paths: fine.
	src2 := `
		ldxw r3, [r1+0]
		jeq r3, 0, other
		stdw [r10-8], 1
		ja join
	other:
		stdw [r10-8], 2
	join:
		ldxdw r0, [r10-8]
		exit`
	if err := verifySrc(t, src2, defCfg()); err != nil {
		t.Fatalf("rejected both-paths-initialized stack read: %v", err)
	}
}

func TestVerifiedProgramsRunSafely(t *testing.T) {
	// Everything the verifier accepts in this suite must execute without
	// runtime memory errors.
	srcs := []string{
		"mov r0, 0\nexit",
		"stdw [r10-8], 42\nldxdw r0, [r10-8]\nexit",
		"ldxw r0, [r1+0]\nexit",
	}
	cfg := defCfg()
	cfg.CtxSize = 8
	for _, src := range srcs {
		prog := MustAssemble(src)
		if err := Verify(prog, cfg); err != nil {
			t.Fatalf("verify: %v", err)
		}
		vm := NewVM(cfg.Maps)
		_ = vm.Load(prog)
		if _, err := vm.Run(make([]byte, 8)); err != nil {
			t.Fatalf("verified program failed at runtime: %v", err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	cfg := defCfg()
	prog := MustAssemble(`
		stw [r10-4], 1
		mov r1, 0
		mov r2, r10
		sub r2, 4
		call 1
		jeq r0, 0, miss
		ldxdw r3, [r0+0]
		add r3, 1
		stxdw [r0+0], r3
		mov r0, 0
		exit
	miss:
		mov r0, 1
		exit`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
