package chase

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"hyperion/internal/ebpf"
	"hyperion/internal/storage/bptree"
)

// The frontend-compiled step program must match the hand-assembled
// oracle shape-for-shape: same length, and at every index the same
// opcode, offset, and immediates. Register choices are free — the
// ehdl optimizer and its pipeline metrics are renaming-invariant — but
// in practice the allocator's preference order reproduces the hand
// registers too, which this test does NOT pin.
func TestFrontendShapeMatchesHandAssembly(t *testing.T) {
	hand, err := ebpf.Assemble(StepProgram())
	if err != nil {
		t.Fatalf("assembling oracle: %v", err)
	}
	front, err := CompileStep()
	if err != nil {
		t.Fatalf("frontend compile: %v", err)
	}
	diffShape(t, front, hand)
}

// diffShape reports every structural divergence between a frontend
// program and its hand-assembled oracle.
func diffShape(t *testing.T, front, hand []ebpf.Instruction) {
	t.Helper()
	n := len(front)
	if len(hand) < n {
		n = len(hand)
	}
	bad := 0
	for i := 0; i < n; i++ {
		f, h := front[i], hand[i]
		if f.Op != h.Op || f.Off != h.Off || f.Imm != h.Imm || f.Imm64 != h.Imm64 {
			t.Errorf("insn %d: frontend {op %#02x off %d imm %d imm64 %d} vs hand {op %#02x off %d imm %d imm64 %d}",
				i, f.Op, f.Off, f.Imm, f.Imm64, h.Op, h.Off, h.Imm, h.Imm64)
			if bad++; bad > 12 {
				break
			}
		}
	}
	if len(front) != len(hand) {
		t.Errorf("length: frontend %d insns, hand %d", len(front), len(hand))
	}
	if t.Failed() {
		t.Logf("frontend:\n%s", ebpf.Disassemble(front))
		t.Logf("hand:\n%s", ebpf.Disassemble(hand))
	}
}

// Behavioral half of the differential suite: both programs, run over
// randomized node pages, must agree on the verdict and on every byte
// of the written-back context.
func TestFrontendBehaviorMatchesHandAssembly(t *testing.T) {
	hand, err := ebpf.Assemble(StepProgram())
	if err != nil {
		t.Fatalf("assembling oracle: %v", err)
	}
	front, err := CompileStep()
	if err != nil {
		t.Fatalf("frontend compile: %v", err)
	}
	vcfg := ebpf.DefaultVerifierConfig(nil)
	vcfg.CtxSize = CtxBytes
	if err := ebpf.Verify(front, vcfg); err != nil {
		t.Fatalf("verifying frontend program: %v", err)
	}
	if err := ebpf.Verify(hand, vcfg); err != nil {
		t.Fatalf("verifying oracle: %v", err)
	}
	vmF, vmH := ebpf.NewVM(nil), ebpf.NewVM(nil)
	if err := vmF.Load(front); err != nil {
		t.Fatalf("loading frontend program: %v", err)
	}
	if err := vmH.Load(hand); err != nil {
		t.Fatalf("loading oracle: %v", err)
	}

	rng := rand.New(rand.NewSource(41))
	ctxF := make([]byte, CtxBytes)
	ctxH := make([]byte, CtxBytes)
	for trial := 0; trial < 400; trial++ {
		page := randomNodePage(rng)
		key := randomProbeKey(rng, page)
		for _, ctx := range [][]byte{ctxF, ctxH} {
			clear(ctx)
			binary.LittleEndian.PutUint64(ctx[CtxKey:], key)
			copy(ctx[CtxNode:], page)
		}
		rf, errF := vmF.RunInterpreted(ctxF)
		rh, errH := vmH.RunInterpreted(ctxH)
		if (errF == nil) != (errH == nil) {
			t.Fatalf("trial %d: frontend err %v, hand err %v", trial, errF, errH)
		}
		if errF != nil {
			continue
		}
		if rf != rh {
			t.Fatalf("trial %d key %#x: frontend ret %d, hand ret %d", trial, key, rf, rh)
		}
		for i := range ctxF {
			if ctxF[i] != ctxH[i] {
				t.Fatalf("trial %d key %#x: ctx byte %d differs: frontend %#02x, hand %#02x (ret %d)",
					trial, key, i, ctxF[i], ctxH[i], rf)
			}
		}
	}
}

// randomNodePage builds a plausible node page: valid leaf, valid
// internal, or corrupt kind, with sorted keys and occasionally
// out-of-range counts.
func randomNodePage(rng *rand.Rand) []byte {
	page := make([]byte, bptree.NodeBytes)
	kind := byte(rng.Intn(4)) // 0..3: 1=leaf 2=internal, others corrupt
	page[0] = kind
	var count int
	switch {
	case rng.Intn(8) == 0:
		count = 200 + rng.Intn(600) // out of range → corrupt verdict
	case kind == 1:
		count = rng.Intn(201)
	default:
		count = rng.Intn(151)
	}
	binary.LittleEndian.PutUint16(page[2:], uint16(count))
	// Sorted keys from a small universe so probes hit often.
	keysOff := 24
	payloadOff := 1624
	if kind == 2 {
		keysOff, payloadOff = 8, 1208
	}
	k := uint64(rng.Intn(32))
	for i := 0; i < count && keysOff+8*(i+1) <= len(page); i++ {
		k += uint64(1 + rng.Intn(8))
		binary.LittleEndian.PutUint64(page[keysOff+8*i:], k)
	}
	for off := payloadOff; off+8 <= len(page); off += 8 {
		binary.LittleEndian.PutUint64(page[off:], rng.Uint64())
	}
	return page
}

// randomProbeKey picks keys that exercise hit, miss, below-min and
// above-max paths.
func randomProbeKey(rng *rand.Rand, page []byte) uint64 {
	count := int(binary.LittleEndian.Uint16(page[2:]))
	keysOff := 24
	if page[0] == 2 {
		keysOff = 8
	}
	if count > 0 && rng.Intn(2) == 0 {
		i := rng.Intn(count)
		if keysOff+8*(i+1) <= len(page) {
			return binary.LittleEndian.Uint64(page[keysOff+8*i:])
		}
	}
	return uint64(rng.Intn(2048))
}
