// Package bptree implements a durable B+ tree over the single-level
// segment store. Every node is one segment-store object, so a lookup is
// a chain of object reads — exactly the pointer-chasing workload the
// paper's §2.4 wants to offload next to storage instead of paying one
// network RTT per hop.
package bptree

import (
	"errors"
	"fmt"
	"hyperion/internal/wire"

	"hyperion/internal/seg"
)

// NodeBytes is the on-store size of one node.
const NodeBytes = 4096

// Fanout limits chosen to fit NodeBytes with headroom:
// leaf entry = key(8)+val(8); internal entry = key(8)+child(16).
const (
	LeafCap = 200
	IntCap  = 150
)

// Errors.
var (
	ErrNotInit = errors.New("bptree: tree not initialized")
	ErrCorrupt = errors.New("bptree: corrupt node")
)

const (
	kindLeaf     = 1
	kindInternal = 2
	metaMagic    = 0x42505431 // "BPT1"
)

// Tree is a B+ tree handle. It is not safe for concurrent use (the DPU
// runs handlers run-to-completion).
type Tree struct {
	v         *seg.SyncView
	meta      seg.ObjectID
	root      seg.ObjectID
	height    int
	nextLo    uint64
	prefix    uint64
	durable   bool
	metaDirty bool

	// Reused node-image scratch: wbuf is zeroed before each encode so
	// stored images stay byte-identical to fresh-buffer encodes; rbuf
	// backs readNode (decoded nodes copy out of it, so it is free to
	// reuse). The tree is single-threaded.
	wbuf    []byte
	rbuf    []byte
	metaBuf [64]byte

	// arena holds decode targets for readNode. Slots are recycled at the
	// start of every public operation (and as descents release their
	// parents), so one operation's live nodes never alias; decoded nodes
	// are never cached across reads — every readNode re-decodes from the
	// store. Slot arrays carry one-past-capacity headroom so the insert
	// path's pre-split appends stay in place.
	arena     []*node
	arenaUsed int

	// Stats.
	NodesRead, NodesWritten, Splits int64
}

// beginOp recycles the whole node arena; called on entry to every public
// tree operation.
func (t *Tree) beginOp() { t.arenaUsed = 0 }

// arenaNode returns the next free decode slot, growing the arena on
// first use.
func (t *Tree) arenaNode() *node {
	if t.arenaUsed == len(t.arena) {
		t.arena = append(t.arena, &node{})
	}
	n := t.arena[t.arenaUsed]
	t.arenaUsed++
	return n
}

// releaseNode returns the most recently decoded node to the arena; only
// valid when the caller owns that node and no later-decoded nodes are
// live (descent loops releasing a parent before reading its child).
func (t *Tree) releaseNode() { t.arenaUsed-- }

type node struct {
	kind     uint8
	keys     []uint64
	vals     []uint64       // leaf
	children []seg.ObjectID // internal: len(keys)+1
	next     seg.ObjectID   // leaf chain
}

// Create initializes a new tree whose metadata lives at metaID. The
// tree's nodes use object ids with Hi = metaID.Hi and Lo allocated from
// a counter starting at metaID.Lo+1.
func Create(v *seg.SyncView, metaID seg.ObjectID, durable bool) (*Tree, error) {
	t := &Tree{v: v, meta: metaID, prefix: metaID.Hi, nextLo: metaID.Lo + 1, durable: durable, height: 1}
	if _, err := v.Alloc(metaID, 64, durable, seg.HintAuto); err != nil {
		return nil, err
	}
	rootID, err := t.newNodeID()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	if err := t.writeNode(rootID, &node{kind: kindLeaf}); err != nil {
		return nil, err
	}
	return t, t.writeMeta()
}

// Open loads an existing tree from its metadata object.
func Open(v *seg.SyncView, metaID seg.ObjectID) (*Tree, error) {
	t := &Tree{v: v, meta: metaID, prefix: metaID.Hi}
	buf, err := v.ReadAt(metaID, 0, 64)
	if err != nil {
		return nil, err
	}
	if wire.LE32At(buf, 0) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	t.root = seg.ObjectID{Hi: wire.LE64At(buf, 8), Lo: wire.LE64At(buf, 16)}
	t.height = int(wire.LE32At(buf, 24))
	t.nextLo = wire.LE64At(buf, 32)
	t.durable = buf[40] == 1
	return t, nil
}

func (t *Tree) writeMeta() error {
	buf := t.metaBuf[:]
	wire.PutLE32At(buf, 0, metaMagic)
	wire.PutLE64At(buf, 8, t.root.Hi)
	wire.PutLE64At(buf, 16, t.root.Lo)
	wire.PutLE32At(buf, 24, uint32(t.height))
	wire.PutLE64At(buf, 32, t.nextLo)
	if t.durable {
		buf[40] = 1
	}
	return t.v.WriteAt(t.meta, 0, buf)
}

func (t *Tree) newNodeID() (seg.ObjectID, error) {
	id := seg.ObjectID{Hi: t.prefix, Lo: t.nextLo}
	t.nextLo++
	t.metaDirty = true
	if _, err := t.v.Alloc(id, NodeBytes, t.durable, seg.HintAuto); err != nil {
		return seg.ObjectID{}, err
	}
	return id, nil
}

// flushMeta persists the id allocator and root pointer if they changed,
// so a reopened tree never re-allocates a live node id.
func (t *Tree) flushMeta() error {
	if !t.metaDirty {
		return nil
	}
	t.metaDirty = false
	return t.writeMeta()
}

// Height returns the tree height (1 = just a leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the root object id (used by offloaded traversals).
func (t *Tree) Root() seg.ObjectID { return t.root }

// encode/decode nodes.

func (t *Tree) writeNode(id seg.ObjectID, n *node) error {
	if t.wbuf == nil {
		t.wbuf = make([]byte, NodeBytes)
	}
	buf := t.wbuf
	clear(buf)
	buf[0] = n.kind
	wire.PutLE16At(buf, 2, uint16(len(n.keys)))
	off := 8
	switch n.kind {
	case kindLeaf:
		wire.PutLE64At(buf, off, n.next.Hi)
		wire.PutLE64At(buf, off+8, n.next.Lo)
		off += 16
		for i, k := range n.keys {
			wire.PutLE64At(buf, off+i*8, k)
		}
		off += LeafCap * 8
		for i, v := range n.vals {
			wire.PutLE64At(buf, off+i*8, v)
		}
	case kindInternal:
		for i, k := range n.keys {
			wire.PutLE64At(buf, off+i*8, k)
		}
		off += IntCap * 8
		for i, c := range n.children {
			wire.PutLE64At(buf, off+i*16, c.Hi)
			wire.PutLE64At(buf, off+i*16+8, c.Lo)
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrCorrupt, n.kind)
	}
	t.NodesWritten++
	return t.v.WriteAt(id, 0, buf)
}

func (t *Tree) readNode(id seg.ObjectID) (*node, error) {
	buf, err := t.v.ReadAtBuf(id, 0, NodeBytes, t.rbuf)
	if err != nil {
		return nil, err
	}
	t.rbuf = buf
	n := t.arenaNode()
	if err := decodeNodeInto(n, buf); err != nil {
		t.releaseNode()
		return nil, err
	}
	return n, nil
}

// growU64 resizes s to n entries, reallocating with capHint headroom
// only when capacity is insufficient. Contents are unspecified.
func growU64(s []uint64, n, capHint int) []uint64 {
	if cap(s) < n {
		if capHint < n {
			capHint = n
		}
		return make([]uint64, n, capHint)
	}
	return s[:n]
}

func growIDs(s []seg.ObjectID, n, capHint int) []seg.ObjectID {
	if cap(s) < n {
		if capHint < n {
			capHint = n
		}
		return make([]seg.ObjectID, n, capHint)
	}
	return s[:n]
}

// decodeNodeInto parses a raw node image into n, reusing n's slice
// capacity. Equivalent to decodeNode except for allocation behavior.
func decodeNodeInto(n *node, buf []byte) error {
	if len(buf) < NodeBytes {
		return fmt.Errorf("%w: short node", ErrCorrupt)
	}
	n.kind = buf[0]
	cnt := int(wire.LE16At(buf, 2))
	off := 8
	switch n.kind {
	case kindLeaf:
		if cnt > LeafCap {
			return fmt.Errorf("%w: leaf count %d", ErrCorrupt, cnt)
		}
		n.next = seg.ObjectID{Hi: wire.LE64At(buf, off), Lo: wire.LE64At(buf, off+8)}
		off += 16
		n.children = n.children[:0]
		n.keys = growU64(n.keys, cnt, LeafCap+1)
		n.vals = growU64(n.vals, cnt, LeafCap+1)
		for i := 0; i < cnt; i++ {
			n.keys[i] = wire.LE64At(buf, off+i*8)
		}
		off += LeafCap * 8
		for i := 0; i < cnt; i++ {
			n.vals[i] = wire.LE64At(buf, off+i*8)
		}
	case kindInternal:
		if cnt > IntCap {
			return fmt.Errorf("%w: internal count %d", ErrCorrupt, cnt)
		}
		n.next = seg.ObjectID{}
		n.vals = n.vals[:0]
		n.keys = growU64(n.keys, cnt, IntCap+1)
		for i := 0; i < cnt; i++ {
			n.keys[i] = wire.LE64At(buf, off+i*8)
		}
		off += IntCap * 8
		n.children = growIDs(n.children, cnt+1, IntCap+2)
		for i := 0; i <= cnt; i++ {
			n.children[i] = seg.ObjectID{
				Hi: wire.LE64At(buf, off+i*16),
				Lo: wire.LE64At(buf, off+i*16+8),
			}
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrCorrupt, n.kind)
	}
	return nil
}

// DecodeNode parses a raw node image (exported for the offloaded eBPF
// traversal, which reads node bytes through a helper window).
func DecodeNode(buf []byte) (kind uint8, keys []uint64, valsOrChildren []uint64, next seg.ObjectID, err error) {
	n, e := decodeNode(buf)
	if e != nil {
		return 0, nil, nil, seg.ObjectID{}, e
	}
	if n.kind == kindLeaf {
		return n.kind, n.keys, n.vals, n.next, nil
	}
	flat := make([]uint64, 0, len(n.children)*2)
	for _, c := range n.children {
		flat = append(flat, c.Hi, c.Lo)
	}
	return n.kind, n.keys, flat, seg.ObjectID{}, nil
}

func decodeNode(buf []byte) (*node, error) {
	if len(buf) < NodeBytes {
		return nil, fmt.Errorf("%w: short node", ErrCorrupt)
	}
	n := &node{kind: buf[0]}
	cnt := int(wire.LE16At(buf, 2))
	off := 8
	switch n.kind {
	case kindLeaf:
		if cnt > LeafCap {
			return nil, fmt.Errorf("%w: leaf count %d", ErrCorrupt, cnt)
		}
		n.next = seg.ObjectID{Hi: wire.LE64At(buf, off), Lo: wire.LE64At(buf, off+8)}
		off += 16
		if cnt > 0 {
			// One exact-size backing array for both slices; the capacity
			// caps keep any later append from crossing into vals.
			kv := make([]uint64, 2*cnt)
			n.keys, n.vals = kv[:cnt:cnt], kv[cnt:]
			for i := 0; i < cnt; i++ {
				n.keys[i] = wire.LE64At(buf, off+i*8)
			}
			off += LeafCap * 8
			for i := 0; i < cnt; i++ {
				n.vals[i] = wire.LE64At(buf, off+i*8)
			}
		}
	case kindInternal:
		if cnt > IntCap {
			return nil, fmt.Errorf("%w: internal count %d", ErrCorrupt, cnt)
		}
		n.keys = make([]uint64, cnt)
		for i := 0; i < cnt; i++ {
			n.keys[i] = wire.LE64At(buf, off+i*8)
		}
		off += IntCap * 8
		n.children = make([]seg.ObjectID, cnt+1)
		for i := 0; i <= cnt; i++ {
			n.children[i] = seg.ObjectID{
				Hi: wire.LE64At(buf, off+i*16),
				Lo: wire.LE64At(buf, off+i*16+8),
			}
		}
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, n.kind)
	}
	return n, nil
}

// search returns the index of the first key >= k.
func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for key.
func (t *Tree) Get(key uint64) (uint64, bool, error) {
	t.beginOp()
	id := t.root
	for {
		n, err := t.readNodeCounted(id)
		if err != nil {
			return 0, false, err
		}
		if n.kind == kindLeaf {
			i := search(n.keys, key)
			if i < len(n.keys) && n.keys[i] == key {
				return n.vals[i], true, nil
			}
			return 0, false, nil
		}
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		id = n.children[i]
		t.releaseNode() // parent is dead; let the child reuse its slot
	}
}

func (t *Tree) readNodeCounted(id seg.ObjectID) (*node, error) {
	t.NodesRead++
	return t.readNode(id)
}

// Insert adds or replaces key → val.
func (t *Tree) Insert(key, val uint64) error {
	t.beginOp()
	promoted, newChild, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if newChild.IsZero() {
		return t.flushMeta()
	}
	// Root split: grow the tree.
	newRootID, err := t.newNodeID()
	if err != nil {
		return err
	}
	root := &node{kind: kindInternal, keys: []uint64{promoted}, children: []seg.ObjectID{t.root, newChild}}
	if err := t.writeNode(newRootID, root); err != nil {
		return err
	}
	t.root = newRootID
	t.height++
	return t.writeMeta()
}

// insert descends into id; if the child splits it returns the promoted
// key and the new right sibling id.
func (t *Tree) insert(id seg.ObjectID, key, val uint64) (uint64, seg.ObjectID, error) {
	n, err := t.readNodeCounted(id)
	if err != nil {
		return 0, seg.ObjectID{}, err
	}
	if n.kind == kindLeaf {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return 0, seg.ObjectID{}, t.writeNode(id, n)
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) <= LeafCap {
			return 0, seg.ObjectID{}, t.writeNode(id, n)
		}
		// Split leaf.
		mid := len(n.keys) / 2
		rightID, err := t.newNodeID()
		if err != nil {
			return 0, seg.ObjectID{}, err
		}
		right := &node{kind: kindLeaf, keys: append([]uint64(nil), n.keys[mid:]...), vals: append([]uint64(nil), n.vals[mid:]...), next: n.next}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rightID
		if err := t.writeNode(rightID, right); err != nil {
			return 0, seg.ObjectID{}, err
		}
		if err := t.writeNode(id, n); err != nil {
			return 0, seg.ObjectID{}, err
		}
		t.Splits++
		return right.keys[0], rightID, nil
	}
	// Internal node.
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	promoted, newChild, err := t.insert(n.children[i], key, val)
	if err != nil || newChild.IsZero() {
		return 0, seg.ObjectID{}, err
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promoted
	n.children = append(n.children, seg.ObjectID{})
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) <= IntCap {
		return 0, seg.ObjectID{}, t.writeNode(id, n)
	}
	// Split internal node: middle key moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	rightID, err := t.newNodeID()
	if err != nil {
		return 0, seg.ObjectID{}, err
	}
	right := &node{
		kind:     kindInternal,
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]seg.ObjectID(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(rightID, right); err != nil {
		return 0, seg.ObjectID{}, err
	}
	if err := t.writeNode(id, n); err != nil {
		return 0, seg.ObjectID{}, err
	}
	t.Splits++
	return upKey, rightID, nil
}

// Minimum occupancy thresholds for rebalancing.
const (
	leafMin = LeafCap / 2
	intMin  = IntCap / 2
)

// Delete removes key, reporting whether it was present. Underflowed
// nodes rebalance by borrowing from a sibling or merging into it, and
// the tree shrinks when the root empties.
func (t *Tree) Delete(key uint64) (bool, error) {
	t.beginOp()
	found, _, err := t.delete(t.root, key)
	if err != nil || !found {
		return found, err
	}
	// Collapse a childless root chain: an internal root with a single
	// child makes that child the new root.
	for {
		t.beginOp() // the removal recursion's nodes are dead here
		n, rerr := t.readNodeCounted(t.root)
		if rerr != nil {
			return true, rerr
		}
		if n.kind != kindInternal || len(n.keys) != 0 {
			break
		}
		old := t.root
		t.root = n.children[0]
		t.height--
		t.metaDirty = true
		if ferr := t.v.Free(old); ferr != nil {
			return true, ferr
		}
	}
	return true, t.flushMeta()
}

// delete removes key under id. underflow reports whether the node at id
// fell below its minimum (the parent then rebalances it).
func (t *Tree) delete(id seg.ObjectID, key uint64) (found, underflow bool, err error) {
	n, err := t.readNodeCounted(id)
	if err != nil {
		return false, false, err
	}
	if n.kind == kindLeaf {
		i := search(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false, false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		if err := t.writeNode(id, n); err != nil {
			return true, false, err
		}
		return true, len(n.keys) < leafMin, nil
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	found, childUnder, err := t.delete(n.children[i], key)
	if err != nil || !found || !childUnder {
		return found, false, err
	}
	if err := t.rebalanceChild(id, n, i); err != nil {
		return true, false, err
	}
	min := intMin
	if n.kind == kindLeaf {
		min = leafMin
	}
	return true, len(n.keys) < min, nil
}

// rebalanceChild fixes an underflowed child i of parent n (at parent
// id): borrow one entry from a richer sibling, or merge with a sibling
// when both are at minimum.
func (t *Tree) rebalanceChild(parentID seg.ObjectID, parent *node, i int) error {
	child, err := t.readNodeCounted(parent.children[i])
	if err != nil {
		return err
	}
	min := leafMin
	if child.kind == kindInternal {
		min = intMin
	}
	// Try the left sibling first, then the right.
	if i > 0 {
		left, err := t.readNodeCounted(parent.children[i-1])
		if err != nil {
			return err
		}
		if len(left.keys) > min {
			t.borrowFromLeft(parent, i, left, child)
			return t.writeNodes(parentID, parent, parent.children[i-1], left, parent.children[i], child)
		}
		// Merge child into left.
		t.mergeNodes(parent, i-1, left, child)
		if err := t.v.Free(parent.children[i]); err != nil {
			return err
		}
		parent.keys = append(parent.keys[:i-1], parent.keys[i:]...)
		parent.children = append(parent.children[:i], parent.children[i+1:]...)
		return t.writeNodes(parentID, parent, parent.children[i-1], left)
	}
	right, err := t.readNodeCounted(parent.children[i+1])
	if err != nil {
		return err
	}
	if len(right.keys) > min {
		t.borrowFromRight(parent, i, child, right)
		return t.writeNodes(parentID, parent, parent.children[i], child, parent.children[i+1], right)
	}
	// Merge right into child.
	t.mergeNodes(parent, i, child, right)
	if err := t.v.Free(parent.children[i+1]); err != nil {
		return err
	}
	parent.keys = append(parent.keys[:i], parent.keys[i+1:]...)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
	return t.writeNodes(parentID, parent, parent.children[i], child)
}

// borrowFromLeft moves the left sibling's last entry into child.
func (t *Tree) borrowFromLeft(parent *node, i int, left, child *node) {
	if child.kind == kindLeaf {
		k := left.keys[len(left.keys)-1]
		v := left.vals[len(left.vals)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.vals = left.vals[:len(left.vals)-1]
		child.keys = append([]uint64{k}, child.keys...)
		child.vals = append([]uint64{v}, child.vals...)
		parent.keys[i-1] = child.keys[0]
		return
	}
	// Internal: rotate through the parent separator.
	sep := parent.keys[i-1]
	k := left.keys[len(left.keys)-1]
	c := left.children[len(left.children)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.children = left.children[:len(left.children)-1]
	child.keys = append([]uint64{sep}, child.keys...)
	child.children = append([]seg.ObjectID{c}, child.children...)
	parent.keys[i-1] = k
}

// borrowFromRight moves the right sibling's first entry into child.
func (t *Tree) borrowFromRight(parent *node, i int, child, right *node) {
	if child.kind == kindLeaf {
		k := right.keys[0]
		v := right.vals[0]
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		child.keys = append(child.keys, k)
		child.vals = append(child.vals, v)
		parent.keys[i] = right.keys[0]
		return
	}
	sep := parent.keys[i]
	k := right.keys[0]
	c := right.children[0]
	right.keys = right.keys[1:]
	right.children = right.children[1:]
	child.keys = append(child.keys, sep)
	child.children = append(child.children, c)
	parent.keys[i] = k
}

// mergeNodes folds src (right neighbour) into dst (left neighbour);
// sepIdx is the parent key separating them.
func (t *Tree) mergeNodes(parent *node, sepIdx int, dst, src *node) {
	if dst.kind == kindLeaf {
		dst.keys = append(dst.keys, src.keys...)
		dst.vals = append(dst.vals, src.vals...)
		dst.next = src.next
		return
	}
	dst.keys = append(dst.keys, parent.keys[sepIdx])
	dst.keys = append(dst.keys, src.keys...)
	dst.children = append(dst.children, src.children...)
}

// writeNodes persists pairs of (id, node).
func (t *Tree) writeNodes(args ...any) error {
	for i := 0; i+1 < len(args); i += 2 {
		if err := t.writeNode(args[i].(seg.ObjectID), args[i+1].(*node)); err != nil {
			return err
		}
	}
	return nil
}

// Scan visits all pairs with from <= key < to in order; fn returning
// false stops the scan early.
func (t *Tree) Scan(from, to uint64, fn func(key, val uint64) bool) error {
	// Descend to the leaf containing from.
	t.beginOp()
	id := t.root
	for {
		n, err := t.readNodeCounted(id)
		if err != nil {
			return err
		}
		if n.kind == kindLeaf {
			for {
				for i, k := range n.keys {
					if k < from {
						continue
					}
					if k >= to {
						return nil
					}
					if !fn(k, n.vals[i]) {
						return nil
					}
				}
				if n.next.IsZero() {
					return nil
				}
				// n.next is evaluated before the call, so releasing the
				// current leaf's slot for the next one to reuse is safe.
				t.releaseNode()
				n, err = t.readNodeCounted(n.next)
				if err != nil {
					return err
				}
			}
		}
		i := search(n.keys, from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		id = n.children[i]
		t.releaseNode() // parent is dead; let the child reuse its slot
	}
}

// Path returns the node ids visited looking up key (root to leaf); it
// powers the client-side traversal experiment (one RTT per element).
func (t *Tree) Path(key uint64) ([]seg.ObjectID, error) {
	t.beginOp()
	var path []seg.ObjectID
	id := t.root
	for {
		path = append(path, id)
		n, err := t.readNodeCounted(id)
		if err != nil {
			return nil, err
		}
		if n.kind == kindLeaf {
			return path, nil
		}
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		id = n.children[i]
		t.releaseNode() // parent is dead; let the child reuse its slot
	}
}
