// Command hyperion-sim boots simulated Hyperion DPUs and runs serving
// scenarios against them, printing the same observability a hardware
// deployment would expose: PCIe enumeration, slot states, counters, and
// per-request latency.
//
// Usage:
//
//	hyperion-sim boot                      # boot a DPU, print enumeration+status
//	hyperion-sim kv -ops 5000 -mix b      # YCSB over the network-attached KV-SSD
//	hyperion-sim fail2ban -packets 20000  # line-rate middleware with persistent bans
//	hyperion-sim chase -keys 40000        # pointer chasing: client-side vs offloaded
//	hyperion-sim rack -shards 4 -boxes 8  # rack scenario on the sharded PDES kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperion/internal/apps/chase"
	"hyperion/internal/apps/fail2ban"
	"hyperion/internal/cluster"
	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/rack"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/bptree"
	"hyperion/internal/storage/kvssd"
	"hyperion/internal/trace"
	"hyperion/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "boot":
		cmdBoot()
	case "kv":
		cmdKV(args)
	case "fail2ban":
		cmdFail2ban(args)
	case "chase":
		cmdChase(args)
	case "cluster":
		cmdCluster(args)
	case "rack":
		cmdRack(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hyperion-sim boot | kv | fail2ban | chase | cluster | rack [flags]")
}

func boot() (*sim.Engine, *netsim.Network, *core.DPU) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := core.DefaultConfig("dpu0")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 256 << 20
	d, enum, err := core.Boot(eng, net, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot:", err)
		os.Exit(1)
	}
	fmt.Println("hyperion: stand-alone boot complete (no host CPU)")
	for _, line := range enum {
		fmt.Println("  pcie:", line)
	}
	return eng, net, d
}

func cmdBoot() {
	eng, _, d := boot()
	fmt.Printf("  fabric: %d slots @ %d MHz, %d LUTs free\n",
		d.Cfg.Fabric.Slots, d.Cfg.Fabric.ClockHz/1_000_000, d.Fabric.FreeResources().LUTs)
	fmt.Printf("  store: %d segments, data plane %s, control plane %s\n",
		d.Store.Len(), d.DataAddr(), d.ControlAddr())
	if err := d.LoadAccelerator(0, core.ProbeBitstream(d.Cfg.AuthTag), func() {
		fmt.Printf("  slot 0: probe bitstream active at t=%v\n", eng.Now())
	}); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	eng.Run()
	fmt.Println("ok")
}

func cmdKV(args []string) {
	fs := flag.NewFlagSet("kv", flag.ExitOnError)
	ops := fs.Int("ops", 5000, "operations to run")
	keys := fs.Int("keys", 2000, "key-space size")
	mixName := fs.String("mix", "b", "YCSB mix: a, b, or c")
	backend := fs.String("backend", "btree", "index backend: btree or lsm")
	_ = fs.Parse(args)

	var mix trace.YCSBMix
	switch *mixName {
	case "a":
		mix = trace.YCSBA
	case "b":
		mix = trace.YCSBB
	case "c":
		mix = trace.YCSBC
	default:
		fmt.Fprintln(os.Stderr, "kv: bad mix", *mixName)
		os.Exit(2)
	}
	be := kvssd.BackendBTree
	if *backend == "lsm" {
		be = kvssd.BackendLSM
	}

	eng, net, d := boot()
	kv, err := kvssd.Create(d.View, seg.OID(0x4B, 0), be, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kv:", err)
		os.Exit(1)
	}
	// Serve over the control-plane RPC (KV-SSD interface).
	d.CtrlSrv.Handle("kv.get", func(arg any, respond func(any, int, error)) {
		val, ok, err := kv.Get(arg.([]byte))
		d.View.Complete(eng, "kv.get", func() {
			if err != nil || !ok {
				respond(nil, 64, err)
				return
			}
			respond(val, len(val)+64, nil)
		})
	})
	d.CtrlSrv.Handle("kv.put", func(arg any, respond func(any, int, error)) {
		kvp := arg.([2][]byte)
		err := kv.Put(kvp[0], kvp[1])
		d.View.Complete(eng, "kv.put", func() { respond(true, 64, err) })
	})

	cn, _ := net.Attach("client")
	cli := rpc.NewClient(eng, transport.New(eng, d.Cfg.Transport, cn))
	cli.Timeout = sim.Duration(sim.Second)

	g := trace.NewKVGen(42, uint64(*keys), mix, 256)
	fmt.Printf("loading %d keys...\n", *keys)
	for _, k := range g.LoadKeys() {
		if err := kv.Put(trace.Key(k), g.Value(k)); err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	}
	d.View.TakeCost()

	var lat sim.LatencyRecorder
	errs := 0
	start := eng.Now()
	for i := 0; i < *ops; i++ {
		op := g.Next()
		t0 := eng.Now()
		done := func(val any, err error) {
			if err != nil {
				errs++
			}
			lat.Record(eng.Now().Sub(t0))
		}
		if op.Kind == 'r' {
			cli.Call(d.ControlAddr(), "kv.get", op.Key, 64, done)
		} else {
			cli.Call(d.ControlAddr(), "kv.put", [2][]byte{op.Key, op.Value}, len(op.Value)+64, done)
		}
		eng.Run()
	}
	elapsed := eng.Now().Sub(start)
	fmt.Printf("kv: mix=ycsb-%s backend=%s ops=%d errs=%d sim-time=%v\n", *mixName, *backend, *ops, errs, elapsed)
	fmt.Printf("kv: latency %s\n", lat.Summary())
	fmt.Printf("kv: throughput %.0f ops/s (closed loop, 1 client)\n", float64(*ops)/elapsed.Seconds())
}

func cmdFail2ban(args []string) {
	fs := flag.NewFlagSet("fail2ban", flag.ExitOnError)
	packets := fs.Int("packets", 20000, "packets to replay")
	attackers := fs.Int("attackers", 16, "attacking sources")
	threshold := fs.Int("threshold", 5, "failures before ban")
	_ = fs.Parse(args)

	eng, _, d := boot()
	f, err := fail2ban.Deploy(d, 0, *threshold, func() {
		fmt.Printf("fail2ban: slot 0 active at t=%v (%v reconfig)\n", eng.Now(), eng.Now())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	eng.Run()
	g := trace.NewAttackGen(7, *attackers)
	for i := 0; i < *packets; i++ {
		_ = f.Process(g.Next(), func(int) {})
		if i%1024 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	fmt.Printf("fail2ban: %d packets → passed=%d dropped=%d newly-banned=%d\n",
		*packets, f.Passed, f.Dropped, f.Banned)
	f.BannedSources(func(srcs []uint32, err error) {
		if err == nil {
			fmt.Printf("fail2ban: %d bans persisted to NVMe ban log\n", len(srcs))
		}
	})
	eng.Run()
	st := f.Pipeline().Stats
	fmt.Printf("fail2ban: pipeline %d insns, depth %d, II %d (≈%d Mpps line rate)\n",
		st.Instructions, st.Depth, st.II, 250/st.II)
}

func cmdChase(args []string) {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	keys := fs.Int("keys", 40000, "tree keys")
	lookups := fs.Int("lookups", 100, "lookups per mode")
	_ = fs.Parse(args)

	eng, net, d := boot()
	tree, err := bptree.Create(d.View, seg.OID(0xBEE, 0), false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tree:", err)
		os.Exit(1)
	}
	for i := 0; i < *keys; i++ {
		if err := tree.Insert(uint64(i*2), uint64(i)); err != nil {
			fmt.Fprintln(os.Stderr, "insert:", err)
			os.Exit(1)
		}
	}
	d.View.TakeCost()
	if _, err := chase.NewService(d, d.CtrlSrv, tree); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
	cn, _ := net.Attach("client")
	cli := rpc.NewClient(eng, transport.New(eng, d.Cfg.Transport, cn))
	cli.Timeout = sim.Duration(sim.Second)
	cc := chase.NewClient(cli, d.ControlAddr())

	rng := sim.NewRand(3)
	measure := func(name string, get func(uint64, func(chase.GetReply, error))) {
		var lat sim.LatencyRecorder
		cc.RTTs = 0
		for i := 0; i < *lookups; i++ {
			k := uint64(rng.Intn(*keys) * 2)
			t0 := eng.Now()
			get(k, func(chase.GetReply, error) { lat.Record(eng.Now().Sub(t0)) })
			eng.Run()
		}
		fmt.Printf("chase %-12s height=%d rtts/lookup=%d %s\n",
			name, tree.Height(), cc.RTTs/int64(*lookups), lat.Summary())
	}
	measure("client-side", cc.ClientSideGet)
	measure("offloaded", cc.OffloadGet)
}

// cmdRack runs the E17 rack scenario — every box an NVMe-oF target
// plus a replicated KV-SSD under an open-loop client population — on
// the sharded conservative-PDES kernel, then prints the per-shard
// breakdown an operator needs to tune lookahead: event and envelope
// counts (deterministic) alongside busy and barrier-stall wall time
// (host-dependent).
func cmdRack(args []string) {
	fs := flag.NewFlagSet("rack", flag.ExitOnError)
	shards := fs.Int("shards", 4, "conservative-PDES shards to partition the rack across")
	boxes := fs.Int("boxes", 8, "DPU boxes in the rack")
	clients := fs.Int("clients", 4000, "open-loop clients per box")
	rate := fs.Float64("rate", 150, "ops/sec issued by each client")
	seed := fs.Uint64("seed", 1, "scenario seed (same seed, same table, any -shards)")
	_ = fs.Parse(args)

	cfg := rack.DefaultConfig()
	cfg.Boxes = *boxes
	cfg.Shards = *shards
	cfg.ClientsPerBox = *clients
	cfg.RatePerClient = *rate
	ra := rack.New(cfg, *seed, nil)
	ra.Run()

	tot := ra.Totals()
	cl := ra.Cluster()
	fmt.Printf("rack: %d boxes × %d clients on %d shards, lookahead %v\n",
		cfg.Boxes, cfg.ClientsPerBox, cl.Shards(), cl.Lookahead())
	fmt.Printf("rack: ops=%d ok=%d err=%d (reads=%d gets=%d puts=%d), sim-time %v\n",
		tot.Issued, tot.OK, tot.Errs, tot.Reads, tot.Gets, tot.Puts, cl.Now().Sub(sim.Time(0)))
	fmt.Printf("rack: latency %s\n", tot.LatAll.Summary())
	fmt.Printf("rack: %d events in %d barrier windows (%.1f events/window)\n",
		cl.Steps(), cl.Windows(), float64(cl.Steps())/float64(cl.Windows()))
	printShardStats(cl)
}

// printShardStats renders sim.Cluster.Stats: per-shard event and
// envelope counts plus wall-clock busy/stall split (barrier-stall time
// is the figure to watch when tuning lookahead).
func printShardStats(cl *sim.Cluster) {
	var tbl sim.Table
	tbl.Header = []string{"shard", "events", "sends", "recvs", "busy ms", "stall ms"}
	for _, st := range cl.Stats() {
		tbl.AddRow(fmt.Sprintf("%d", st.Shard), fmt.Sprintf("%d", st.Events),
			fmt.Sprintf("%d", st.Sends), fmt.Sprintf("%d", st.Recvs),
			fmt.Sprintf("%.2f", float64(st.BusyNs)/1e6), fmt.Sprintf("%.2f", float64(st.StallNs)/1e6))
	}
	fmt.Print(tbl.String())
}

func cmdCluster(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "DPUs in the rack")
	replicas := fs.Int("replicas", 3, "copies per key")
	ops := fs.Int("ops", 500, "keys to write then read")
	kill := fs.Int("kill", 1, "nodes to fail before the read phase")
	_ = fs.Parse(args)

	eng := sim.NewEngine(11)
	net := netsim.New(eng, netsim.DefaultConfig())
	c, err := cluster.New(eng, net, *nodes, *replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
	fmt.Printf("booted %d CPU-free DPUs, %d-way replication\n", *nodes, *replicas)
	r, err := cluster.NewRouter(c, "client")
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	var putLat sim.LatencyRecorder
	for i := 0; i < *ops; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		t0 := eng.Now()
		r.Put(k, []byte("payload"), func(err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "put:", err)
				os.Exit(1)
			}
			putLat.Record(eng.Now().Sub(t0))
		})
		eng.Run()
	}
	fmt.Printf("writes: %s\n", putLat.Summary())
	for i := 0; i < *kill && i < *nodes; i++ {
		c.MarkDown(i)
		fmt.Printf("killed dpu%d\n", i)
	}
	var getLat sim.LatencyRecorder
	lost := 0
	for i := 0; i < *ops; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		t0 := eng.Now()
		r.Get(k, func(_ []byte, err error) {
			if err != nil {
				lost++
				return
			}
			getLat.Record(eng.Now().Sub(t0))
		})
		eng.Run()
	}
	fmt.Printf("reads after failure: %s\n", getLat.Summary())
	fmt.Printf("lost keys: %d/%d, failovers: %d\n", lost, *ops, r.Failovers)
}
