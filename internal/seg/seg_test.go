package seg

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hyperion/internal/nvme"
	"hyperion/internal/sim"
)

func newStore(t testing.TB, devN int) (*sim.Engine, *Store) {
	t.Helper()
	eng := sim.NewEngine(1)
	var hosts []*nvme.Host
	for i := 0; i < devN; i++ {
		cfg := nvme.DefaultConfig("nvme")
		cfg.Blocks = 1 << 20 // 4 GiB each keeps tests light
		hosts = append(hosts, nvme.NewHost(nvme.New(eng, cfg), nil))
	}
	cfg := DefaultConfig()
	cfg.DRAMBytes = 64 << 20
	return eng, New(eng, cfg, hosts)
}

func TestObjectIDParseFormat(t *testing.T) {
	id := OID(0xdeadbeef, 42)
	back, err := ParseObjectID(id.String())
	if err != nil || back != id {
		t.Fatalf("roundtrip = %v, %v", back, err)
	}
	if _, err := ParseObjectID("short"); err == nil {
		t.Fatal("accepted short id")
	}
	if !OID(0, 1).Less(OID(0, 2)) || !OID(1, 0).Less(OID(2, 0)) || OID(2, 0).Less(OID(1, 9)) {
		t.Fatal("Less ordering wrong")
	}
}

func TestAllocPlacement(t *testing.T) {
	_, s := newStore(t, 4)
	cases := []struct {
		durable bool
		hint    Hint
		want    Location
	}{
		{false, HintAuto, LocDRAM},
		{true, HintAuto, LocNVMe},
		{false, HintHot, LocDRAM},
		{false, HintCold, LocNVMe},
		{true, HintCold, LocNVMe},
	}
	for i, c := range cases {
		sg, err := s.Alloc(OID(1, uint64(i+1)), 4096, c.durable, c.hint)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if sg.Loc != c.want {
			t.Errorf("case %d: loc = %v, want %v", i, sg.Loc, c.want)
		}
	}
	// Durable + HintHot is contradictory.
	if _, err := s.Alloc(OID(9, 9), 4096, true, HintHot); !errors.Is(err, ErrEphemeral) {
		t.Fatalf("durable-hot err = %v", err)
	}
}

func TestAllocErrors(t *testing.T) {
	_, s := newStore(t, 1)
	if _, err := s.Alloc(ObjectID{}, 10, false, HintAuto); err == nil {
		t.Fatal("accepted zero id")
	}
	if _, err := s.Alloc(OID(1, 1), 0, false, HintAuto); err == nil {
		t.Fatal("accepted zero size")
	}
	if _, err := s.Alloc(OID(1, 1), 10, false, HintAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(OID(1, 1), 10, false, HintAuto); !errors.Is(err, ErrExists) {
		t.Fatalf("dup err = %v", err)
	}
}

func TestDRAMSpillToNVMe(t *testing.T) {
	_, s := newStore(t, 1)
	// Fill DRAM (64 MiB) then allocate one more: HintAuto spills.
	if _, err := s.Alloc(OID(1, 1), 64<<20, false, HintHot); err != nil {
		t.Fatal(err)
	}
	sg, err := s.Alloc(OID(1, 2), 4096, false, HintAuto)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Loc != LocNVMe {
		t.Fatalf("spilled segment loc = %v, want nvme", sg.Loc)
	}
	// HintHot with no DRAM must fail outright.
	if _, err := s.Alloc(OID(1, 3), 4096, false, HintHot); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("hot-no-space err = %v", err)
	}
}

func TestReadWriteDRAM(t *testing.T) {
	eng, s := newStore(t, 1)
	id := OID(2, 1)
	if _, err := s.Alloc(id, 1<<16, false, HintHot); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 1000)
	var werr error
	s.Write(id, 123, payload, func(err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	s.Read(id, 123, 1000, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = data
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("dram read mismatch")
	}
}

func TestReadWriteNVMeUnaligned(t *testing.T) {
	eng, s := newStore(t, 2)
	id := OID(2, 2)
	if _, err := s.Alloc(id, 1<<16, true, HintAuto); err != nil {
		t.Fatal(err)
	}
	// Unaligned write crossing block boundaries exercises RMW.
	payload := bytes.Repeat([]byte{0xA7}, 6000)
	var werr error
	s.Write(id, 3000, payload, func(err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	s.Read(id, 3000, 6000, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = append([]byte(nil), data...)
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("nvme rmw read mismatch")
	}
	// Neighbouring bytes must be untouched (zero).
	var edge []byte
	s.Read(id, 2990, 10, func(data []byte, err error) { edge = append([]byte(nil), data...) })
	eng.Run()
	for _, b := range edge {
		if b != 0 {
			t.Fatal("rmw clobbered neighbouring bytes")
		}
	}
}

func TestBoundsChecks(t *testing.T) {
	eng, s := newStore(t, 1)
	id := OID(3, 1)
	_, _ = s.Alloc(id, 100, false, HintHot)
	var rerr, werr error
	s.Read(id, 50, 51, func(_ []byte, err error) { rerr = err })
	s.Write(id, 99, []byte{1, 2}, func(err error) { werr = err })
	eng.Run()
	if !errors.Is(rerr, ErrBounds) || !errors.Is(werr, ErrBounds) {
		t.Fatalf("bounds errs = %v, %v", rerr, werr)
	}
	var nerr error
	s.Read(OID(99, 99), 0, 1, func(_ []byte, err error) { nerr = err })
	eng.Run()
	if !errors.Is(nerr, ErrNotFound) {
		t.Fatalf("missing err = %v", nerr)
	}
}

func TestFreeReusesSpace(t *testing.T) {
	_, s := newStore(t, 1)
	id := OID(4, 1)
	sg, err := s.Alloc(id, 1<<20, false, HintHot)
	if err != nil {
		t.Fatal(err)
	}
	addr := sg.Addr
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	sg2, err := s.Alloc(OID(4, 2), 1<<20, false, HintHot)
	if err != nil {
		t.Fatal(err)
	}
	if sg2.Addr != addr {
		t.Fatalf("freed space not reused: %d vs %d", sg2.Addr, addr)
	}
	if err := s.Free(OID(12, 34)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("free missing err = %v", err)
	}
}

func TestLookupCache(t *testing.T) {
	_, s := newStore(t, 1)
	id := OID(5, 1)
	_, _ = s.Alloc(id, 4096, false, HintHot)
	_, d1, err := s.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == 0 {
		t.Fatal("first lookup should miss the descriptor cache")
	}
	_, d2, err := s.Lookup(id)
	if err != nil || d2 != 0 {
		t.Fatalf("second lookup should hit: cost %v err %v", d2, err)
	}
	if s.CacheHits != 1 || s.Lookups != 2 {
		t.Fatalf("hits=%d lookups=%d", s.CacheHits, s.Lookups)
	}
}

func TestLookupCacheEviction(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 18
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := DefaultConfig()
	scfg.DRAMBytes = 16 << 20
	scfg.CacheEntries = 4
	s := New(eng, scfg, []*nvme.Host{host})
	for i := 0; i < 8; i++ {
		_, _ = s.Alloc(OID(6, uint64(i+1)), 512, false, HintHot)
	}
	for i := 0; i < 8; i++ {
		_, _, _ = s.Lookup(OID(6, uint64(i+1)))
	}
	// All 8 were misses (cache holds 4), so re-looking-up the first
	// must miss again.
	_, d, _ := s.Lookup(OID(6, 1))
	if d == 0 {
		t.Fatal("expected eviction miss")
	}
}

func TestPromoteDemote(t *testing.T) {
	eng, s := newStore(t, 1)
	id := OID(7, 1)
	_, _ = s.Alloc(id, 8192, false, HintCold)
	payload := bytes.Repeat([]byte{7}, 8192)
	s.Write(id, 0, payload, nil)
	eng.Run()
	var perr error
	s.Promote(id, func(err error) { perr = err })
	eng.Run()
	if perr != nil {
		t.Fatal(perr)
	}
	sg, _ := s.Stat(id)
	if sg.Loc != LocDRAM {
		t.Fatalf("loc after promote = %v", sg.Loc)
	}
	var got []byte
	s.Read(id, 0, 8192, func(data []byte, err error) { got = data })
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload lost in promote")
	}
	var derr error
	s.Demote(id, func(err error) { derr = err })
	eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	sg, _ = s.Stat(id)
	if sg.Loc != LocNVMe {
		t.Fatalf("loc after demote = %v", sg.Loc)
	}
	s.Read(id, 0, 8192, func(data []byte, err error) { got = append([]byte(nil), data...) })
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload lost in demote")
	}
	// Durable segments cannot be promoted.
	_, _ = s.Alloc(OID(7, 2), 4096, true, HintAuto)
	var derr2 error
	s.Promote(OID(7, 2), func(err error) { derr2 = err })
	eng.Run()
	if !errors.Is(derr2, ErrEphemeral) {
		t.Fatalf("promote durable err = %v", derr2)
	}
}

func TestCheckpointRecover(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 18
	dev := nvme.New(eng, cfg) // shared device survives the "reboot"
	host := nvme.NewHost(dev, nil)
	scfg := DefaultConfig()
	scfg.DRAMBytes = 16 << 20
	s := New(eng, scfg, []*nvme.Host{host})

	payload := bytes.Repeat([]byte{0xEE}, 4096)
	for i := 0; i < 10; i++ {
		id := OID(8, uint64(i+1))
		if _, err := s.Alloc(id, 4096, true, HintAuto); err != nil {
			t.Fatal(err)
		}
		s.Write(id, 0, payload, nil)
	}
	// One ephemeral DRAM segment that must NOT survive.
	_, _ = s.Alloc(OID(8, 100), 4096, false, HintHot)
	var cerr error
	s.Checkpoint(func(err error) { cerr = err })
	eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}

	// "Reboot": fresh store over the same device.
	s2 := New(eng, scfg, []*nvme.Host{nvme.NewHost(dev, nil)})
	var n int
	var rerr error
	s2.Recover(func(cnt int, err error) { n, rerr = cnt, err })
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if n != 10 {
		t.Fatalf("recovered %d segments, want 10", n)
	}
	if _, err := s2.Stat(OID(8, 100)); !errors.Is(err, ErrNotFound) {
		t.Fatal("ephemeral segment survived reboot")
	}
	var got []byte
	s2.Read(OID(8, 3), 0, 4096, func(data []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = data
	})
	eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("recovered segment payload mismatch")
	}
	// New allocations must not collide with recovered segments.
	sg, err := s2.Alloc(OID(8, 200), 4096, true, HintAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		old, _ := s2.Stat(OID(8, uint64(i+1)))
		if sg.Addr == old.Addr {
			t.Fatal("post-recovery allocation collided with recovered segment")
		}
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	eng, s := newStore(t, 1)
	// Nothing checkpointed: magic won't match (device reads zeroes).
	var rerr error
	s.Recover(func(_ int, err error) { rerr = err })
	eng.Run()
	if !errors.Is(rerr, ErrBadTable) {
		t.Fatalf("err = %v, want ErrBadTable", rerr)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 18
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := DefaultConfig()
	scfg.DRAMBytes = 16 << 20
	scfg.CheckpointEvery = 5
	s := New(eng, scfg, []*nvme.Host{host})
	for i := 0; i < 12; i++ {
		_, _ = s.Alloc(OID(9, uint64(i+1)), 512, true, HintAuto)
	}
	eng.Run()
	if got := s.Counters.Value("checkpoints"); got < 2 {
		t.Fatalf("auto checkpoints = %d, want ≥2", got)
	}
}

func TestMultiDeviceStriping(t *testing.T) {
	_, s := newStore(t, 4)
	devs := map[int]bool{}
	for i := 0; i < 8; i++ {
		sg, err := s.Alloc(OID(10, uint64(i+1)), 1<<20, true, HintAuto)
		if err != nil {
			t.Fatal(err)
		}
		dev, _ := s.split(sg.Addr)
		devs[dev] = true
	}
	if len(devs) != 4 {
		t.Fatalf("segments landed on %d devices, want 4", len(devs))
	}
}

func TestAllocatorProperty(t *testing.T) {
	// Property: after arbitrary alloc/release sequences, free space
	// accounting is exact and allocations never overlap.
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a := newAllocator(1 << 16)
		type piece struct{ addr, size int64 }
		var live []piece
		total := int64(1 << 16)
		used := int64(0)
		for i := 0; i < 200; i++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				size := int64(r.Intn(1024) + 1)
				addr, err := a.alloc(size)
				if err != nil {
					continue
				}
				for _, p := range live {
					if addr < p.addr+p.size && p.addr < addr+size {
						return false // overlap
					}
				}
				live = append(live, piece{addr, size})
				used += size
			} else {
				i := r.Intn(len(live))
				p := live[i]
				a.release(p.addr, p.size)
				live = append(live[:i], live[i+1:]...)
				used -= p.size
			}
			if a.free() != total-used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupCached(b *testing.B) {
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 18
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := DefaultConfig()
	scfg.DRAMBytes = 16 << 20
	s := New(eng, scfg, []*nvme.Host{host})
	id := OID(1, 1)
	_, _ = s.Alloc(id, 4096, false, HintHot)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Lookup(id); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAsyncStress(t *testing.T) {
	// Many outstanding async reads/writes/promotes/demotes interleaved
	// with checkpoints must complete with exact final contents.
	eng, s := newStore(t, 4)
	const objects = 32
	want := make(map[ObjectID]byte)
	for i := 0; i < objects; i++ {
		id := OID(77, uint64(i+1))
		durable := i%2 == 0
		hint := HintAuto
		if i%3 == 0 {
			hint = HintCold
		}
		if _, err := s.Alloc(id, 16<<10, durable, hint); err != nil {
			t.Fatal(err)
		}
		want[id] = 0
	}
	r := sim.NewRand(55)
	pending := 0
	var errs []error
	for round := 0; round < 200; round++ {
		i := r.Intn(objects)
		id := OID(77, uint64(i+1))
		switch r.Intn(6) {
		case 0, 1, 2: // write a new version tag across the object edges
			tag := byte(r.Intn(255) + 1)
			buf := bytes.Repeat([]byte{tag}, 100)
			off := int64(r.Intn(16<<10 - 100))
			pending++
			want[id] = tag
			s.Write(id, off, buf, func(err error) {
				pending--
				if err != nil {
					errs = append(errs, err)
				}
			})
		case 3: // read anywhere (just must not error)
			pending++
			s.Read(id, int64(r.Intn(8<<10)), 64, func(_ []byte, err error) {
				pending--
				if err != nil {
					errs = append(errs, err)
				}
			})
		case 4:
			sg, _ := s.Stat(id)
			if sg != nil && !sg.Durable {
				pending++
				s.Promote(id, func(err error) {
					pending--
					if err != nil && !errors.Is(err, ErrNoSpace) {
						errs = append(errs, err)
					}
				})
			}
		case 5:
			sg, _ := s.Stat(id)
			if sg != nil && !sg.Durable {
				pending++
				s.Demote(id, func(err error) {
					pending--
					if err != nil {
						errs = append(errs, err)
					}
				})
			}
		}
		if round%37 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if pending != 0 {
		t.Fatalf("%d operations never completed", pending)
	}
	for _, err := range errs {
		t.Fatalf("stress op failed: %v", err)
	}
	// Every object is still fully readable end to end.
	for i := 0; i < objects; i++ {
		id := OID(77, uint64(i+1))
		done := false
		s.Read(id, 0, 16<<10, func(data []byte, err error) {
			if err != nil || len(data) != 16<<10 {
				t.Errorf("final read %v: %v (%d bytes)", id, err, len(data))
			}
			done = true
		})
		eng.Run()
		if !done {
			t.Fatalf("final read of %v never completed", id)
		}
	}
}
