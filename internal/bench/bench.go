// Package bench implements the paper-reproduction harness: one function
// per experiment in DESIGN.md's index (E1–E14), each regenerating the
// corresponding table or figure of the HotOS'23 paper as printable rows.
// cmd/benchctl runs them from the command line; the repository-root
// bench_test.go wraps them as testing.B benchmarks; EXPERIMENTS.md
// records their output against the paper's claims.
package bench

import (
	"fmt"

	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Result is one experiment's rendered output. SimTime and Steps
// summarize the simulation work behind it: the furthest virtual clock
// and the total events executed across every Engine the experiment ran
// (zero for purely analytic experiments like E1).
type Result struct {
	ID      string
	Title   string
	Table   sim.Table
	Notes   []string
	SimTime sim.Time
	Steps   uint64
}

// observe folds an engine's clock and step count into the result; an
// experiment calls it once per Engine it drove, before returning.
func (r *Result) observe(engines ...*sim.Engine) {
	for _, e := range engines {
		r.Steps += e.Steps()
		if e.Now() > r.SimTime {
			r.SimTime = e.Now()
		}
	}
}

// String renders the result.
func (r Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		out += "   " + n + "\n"
	}
	return out
}

// DefaultSeed is the seed behind Run() and every golden table: all
// EXPERIMENTS.md output and the pinned table hashes are the
// DefaultSeed universe. Other seeds exist for the metamorphic
// determinism sweep (same seed → byte-identical tables, twice over).
const DefaultSeed uint64 = 1

// Experiment couples an id with its seeded runner. RunTraced, where
// present, is the same experiment with the telemetry plane armed on a
// caller-supplied recorder: spans, histograms, and counters accumulate
// on rec while the produced Result must stay byte-identical to
// RunSeeded at the same seed (tracing observes the simulation, it
// never perturbs it).
type Experiment struct {
	ID        string
	Name      string
	RunSeeded func(seed uint64) Result
	RunTraced func(seed uint64, rec *telemetry.Recorder) Result
	// RunSharded, where present, is the same experiment with an
	// explicit sim.Cluster shard count. Its Result must be
	// byte-identical to RunSeeded at the same seed for every shard
	// count — the knob changes the layout, never the physics.
	RunSharded func(seed uint64, shards int) Result
}

// Run executes the experiment at DefaultSeed — the golden universe.
func (e Experiment) Run() Result { return e.RunSeeded(DefaultSeed) }

// RunAt executes the experiment at DefaultSeed under an explicit
// cluster shard count. Experiments without a sharded form ignore the
// count — their single engine is already the 1-shard layout — so
// `benchctl -shards N all` is well-defined for the whole suite.
func (e Experiment) RunAt(shards int) Result {
	if shards > 0 && e.RunSharded != nil {
		return e.RunSharded(DefaultSeed, shards)
	}
	return e.RunSeeded(DefaultSeed)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "table1", RunSeeded: Table1},
		{ID: "E2", Name: "fig2", RunSeeded: Fig2, RunTraced: Fig2Traced},
		{ID: "E3", Name: "energy", RunSeeded: Energy},
		{ID: "E4", Name: "reconfig", RunSeeded: Reconfig},
		{ID: "E5", Name: "jitter", RunSeeded: Predictability},
		{ID: "E6", Name: "segtable", RunSeeded: SegmentVsPage},
		{ID: "E7", Name: "chase", RunSeeded: PointerChase, RunTraced: PointerChaseTraced},
		{ID: "E8", Name: "fail2ban", RunSeeded: Fail2ban},
		{ID: "E9", Name: "lb", RunSeeded: LoadBalancer},
		{ID: "E10", Name: "ebpf", RunSeeded: EBPFPipeline},
		{ID: "E11", Name: "corfu", RunSeeded: Corfu},
		{ID: "E12", Name: "scan", RunSeeded: ColumnarScan},
		{ID: "E13", Name: "kv", RunSeeded: KVStore},
		{ID: "E14", Name: "nvmeof", RunSeeded: NVMeoF},
		// Extensions beyond the paper's own artifacts.
		{ID: "X1", Name: "cluster", RunSeeded: ClusterScaleOut},
		{ID: "E16", Name: "chaos", RunSeeded: Chaos, RunTraced: ChaosTraced},
		{ID: "E17", Name: "rack", RunSeeded: Rack, RunTraced: RackTraced, RunSharded: RackSharded},
		{ID: "E18", Name: "tenants", RunSeeded: Tenants, RunTraced: TenantsTraced, RunSharded: TenantsSharded},
	}
}

// ByName finds an experiment by id or name.
func ByName(s string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == s || e.Name == s {
			return e, true
		}
	}
	return Experiment{}, false
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func itoa(n int64) string { return fmt.Sprintf("%d", n) }
