package bptree

import (
	"errors"
	"testing"
	"testing/quick"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newView(t testing.TB) *seg.SyncView {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0 // avoid async checkpoints in sync tests
	return seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
}

func newTree(t testing.TB, v *seg.SyncView) *Tree {
	t.Helper()
	tr, err := Create(v, seg.OID(100, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertGetSmall(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	for i := uint64(0); i < 50; i++ {
		if err := tr.Insert(i*3, i*100); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i++ {
		got, ok, err := tr.Get(i * 3)
		if err != nil || !ok || got != i*100 {
			t.Fatalf("Get(%d) = %d,%v,%v", i*3, got, ok, err)
		}
	}
	if _, ok, _ := tr.Get(1); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertOverwrite(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	_ = tr.Insert(5, 1)
	_ = tr.Insert(5, 2)
	got, ok, _ := tr.Get(5)
	if !ok || got != 2 {
		t.Fatalf("overwrite = %d", got)
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	if tr.Height() != 1 {
		t.Fatalf("initial height %d", tr.Height())
	}
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d after %d inserts", tr.Height(), n)
	}
	if tr.Splits == 0 {
		t.Fatal("no splits recorded")
	}
	for _, k := range []uint64{0, 1, n / 2, n - 1} {
		got, ok, err := tr.Get(k)
		if err != nil || !ok || got != k {
			t.Fatalf("Get(%d) = %d,%v,%v", k, got, ok, err)
		}
	}
}

func TestDescendingAndRandomInserts(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	r := sim.NewRand(7)
	keys := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := r.Uint64() % 100000
		keys[k] = k + 1
		if err := tr.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range keys {
		got, ok, err := tr.Get(k)
		if err != nil || !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v,%v want %d", k, got, ok, err, want)
		}
	}
}

func TestDelete(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	for i := uint64(0); i < 1000; i++ {
		_ = tr.Insert(i, i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		ok, err := tr.Delete(i)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v,%v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(0); ok {
		t.Fatal("double delete succeeded")
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok, _ := tr.Get(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) present=%v after deletions", i, ok)
		}
	}
}

func TestScan(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	for i := uint64(0); i < 3000; i++ {
		_ = tr.Insert(i*2, i)
	}
	var got []uint64
	if err := tr.Scan(100, 200, func(k, val uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("scan returned %d keys, want 50", len(got))
	}
	for i, k := range got {
		if k != 100+uint64(i)*2 {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}
	// Early stop.
	count := 0
	_ = tr.Scan(0, 6000, func(k, val uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestOpenPersistedTree(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	for i := uint64(0); i < 2000; i++ {
		_ = tr.Insert(i, i*7)
	}
	tr2, err := Open(v, seg.OID(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Height() != tr.Height() {
		t.Fatalf("height %d vs %d", tr2.Height(), tr.Height())
	}
	got, ok, err := tr2.Get(1234)
	if err != nil || !ok || got != 1234*7 {
		t.Fatalf("reopened Get = %d,%v,%v", got, ok, err)
	}
	// Inserting through the reopened handle must not collide ids.
	if err := tr2.Insert(999999, 1); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = tr2.Get(999999)
	if !ok || got != 1 {
		t.Fatal("insert after reopen failed")
	}
}

func TestPathLengthMatchesHeight(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	for i := uint64(0); i < 20000; i++ {
		_ = tr.Insert(i, i)
	}
	p, err := tr.Path(777)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != tr.Height() {
		t.Fatalf("path length %d != height %d", len(p), tr.Height())
	}
}

func TestCostAccumulates(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	for i := uint64(0); i < 5000; i++ {
		_ = tr.Insert(i, i)
	}
	v.TakeCost()
	if _, _, err := tr.Get(42); err != nil {
		t.Fatal(err)
	}
	cost := v.TakeCost()
	if cost <= 0 {
		t.Fatal("lookup accumulated no cost")
	}
	// A durable tree on NVMe: a height-2 lookup costs at least two flash
	// reads minus caching (none here) ≈ 140 µs.
	if cost < 100*sim.Microsecond {
		t.Fatalf("lookup cost %v implausibly low for NVMe-resident tree", cost)
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	// The tree must agree with a map model under random workloads.
	f := func(seed uint64) bool {
		v := newView(t)
		tr := newTree(t, v)
		r := sim.NewRand(seed)
		model := map[uint64]uint64{}
		for i := 0; i < 800; i++ {
			k := r.Uint64() % 500
			switch r.Intn(3) {
			case 0, 1:
				val := r.Uint64()
				model[k] = val
				if tr.Insert(k, val) != nil {
					return false
				}
			case 2:
				_, inModel := model[k]
				delete(model, k)
				ok, err := tr.Delete(k)
				if err != nil || ok != inModel {
					return false
				}
			}
		}
		for k, want := range model {
			got, ok, err := tr.Get(k)
			if err != nil || !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScanMatchesModel closes the oracle gaps in
// TestPropertyMatchesModel: after a random insert/delete workload,
// deleted keys must read back absent, and a full-range Scan must visit
// exactly the model's keys in sorted order — so structural damage that
// happens to preserve point lookups (lost leaves, broken sibling
// links, misordered splits) still gets caught.
func TestPropertyScanMatchesModel(t *testing.T) {
	f := func(seed uint64) bool {
		v := newView(t)
		tr := newTree(t, v)
		r := sim.NewRand(seed)
		model := map[uint64]uint64{}
		touched := map[uint64]bool{}
		for i := 0; i < 600; i++ {
			k := r.Uint64() % 400
			touched[k] = true
			if r.Intn(3) < 2 {
				val := r.Uint64()
				model[k] = val
				if tr.Insert(k, val) != nil {
					return false
				}
			} else {
				delete(model, k)
				if _, err := tr.Delete(k); err != nil {
					return false
				}
			}
		}
		// Every key ever touched but currently deleted must be absent.
		for k := range touched {
			if _, inModel := model[k]; inModel {
				continue
			}
			if _, ok, err := tr.Get(k); err != nil || ok {
				return false
			}
		}
		// A full scan yields the model, sorted, each exactly once.
		var prev uint64
		first := true
		seen := 0
		err := tr.Scan(0, ^uint64(0), func(k, val uint64) bool {
			if !first && k <= prev {
				return false
			}
			first, prev = false, k
			want, ok := model[k]
			if !ok || want != val {
				return false
			}
			seen++
			return true
		})
		return err == nil && seen == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNodeRejectsGarbage(t *testing.T) {
	if _, err := decodeNode(make([]byte, 10)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short err = %v", err)
	}
	buf := make([]byte, NodeBytes)
	buf[0] = 99
	if _, err := decodeNode(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("kind err = %v", err)
	}
}

func BenchmarkGet(b *testing.B) {
	v := newView(b)
	tr, err := Create(v, seg.OID(100, 0), true)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 100000; i++ {
		if err := tr.Insert(i, i); err != nil {
			b.Fatal(err)
		}
	}
	r := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get(r.Uint64() % 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	v := newView(b)
	tr, err := Create(v, seg.OID(100, 0), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMassDeleteShrinksTree(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	const n = 30000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	grown := tr.Height()
	if grown < 3 {
		t.Fatalf("height = %d, want ≥3", grown)
	}
	segsAtPeak := v.Store().Len()
	// Delete everything but a handful.
	for i := uint64(0); i < n-10; i++ {
		ok, err := tr.Delete(i)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v,%v", i, ok, err)
		}
	}
	if tr.Height() >= grown {
		t.Fatalf("height %d did not shrink from %d", tr.Height(), grown)
	}
	if v.Store().Len() >= segsAtPeak {
		t.Fatalf("segments not reclaimed: %d → %d", segsAtPeak, v.Store().Len())
	}
	// Survivors intact and ordered.
	var got []uint64
	if err := tr.Scan(0, n, func(k, val uint64) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("survivors = %d, want 10", len(got))
	}
	for i, k := range got {
		if k != n-10+uint64(i) {
			t.Fatalf("survivor %d = %d", i, k)
		}
	}
}

func TestDeleteInterleavedWithInserts(t *testing.T) {
	v := newView(t)
	tr := newTree(t, v)
	model := map[uint64]uint64{}
	r := sim.NewRand(31)
	for round := 0; round < 3; round++ {
		for i := 0; i < 8000; i++ {
			k := r.Uint64() % 20000
			if r.Intn(3) == 0 {
				delete(model, k)
				if _, err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
			} else {
				model[k] = k + uint64(round)
				if err := tr.Insert(k, k+uint64(round)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	count := 0
	if err := tr.Scan(0, 1<<62, func(k, val uint64) bool {
		want, ok := model[k]
		if !ok || want != val {
			t.Fatalf("scan saw (%d,%d), model has (%d,%v)", k, val, want, ok)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(model) {
		t.Fatalf("scan count %d != model %d", count, len(model))
	}
}
