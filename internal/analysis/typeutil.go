package analysis

import (
	"go/ast"
	"go/types"
)

// IsNamed reports whether t is the named type path.name (exactly — not
// its underlying type, not a pointer to it).
func IsNamed(t types.Type, path, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// Callee resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and dynamic calls through
// function-typed values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ExprString renders ident/selector chains ("c.pc.timer") for
// diagnostics and for comparing storage locations syntactically.
// Expressions outside that shape render as "".
func ExprString(e ast.Expr) string {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
