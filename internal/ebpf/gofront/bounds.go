package gofront

import (
	"math"
	"math/bits"

	"hyperion/internal/ebpf"
)

// Unsigned interval analysis over the IR, used to discharge array-
// bounds obligations at compile time — the frontend's half of the
// memory-safety story (the verifier independently re-checks the
// emitted loads against the context window, so this analysis being
// wrong costs a load rejection, not a wild access).
//
// The IR's jumps are all forward, so the CFG is a DAG in source
// order and one linear pass with merged pending states per label is a
// complete fixpoint. Comparisons refine both operands on both edges —
// including register-register compares, via the other side's interval
// endpoints — which is what proves `lo` stays inside the node arrays
// across an unrolled binary search (`jge lo, hi` bounds lo by hi's
// maximum on the fallthrough edge).

type ival struct{ lo, hi uint64 }

var topIval = ival{0, math.MaxUint64}

const maxU32 = math.MaxUint32

// state maps vregs to intervals; absent means top.
type state map[vreg]ival

func (s state) get(v vreg) ival {
	if iv, ok := s[v]; ok {
		return iv
	}
	return topIval
}

func (s state) set(v vreg, iv ival) {
	if iv == topIval {
		delete(s, v)
		return
	}
	s[v] = iv
}

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// join widens two states; regs must be bounded on both paths to stay
// bounded.
func join(a, b state) state {
	out := make(state)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = ival{min(va.lo, vb.lo), max(va.hi, vb.hi)}
		}
	}
	return out
}

func clamp32(iv ival) ival {
	if iv.hi > maxU32 {
		return ival{0, maxU32}
	}
	return iv
}

// aluIval evaluates one ALU op on intervals, conservatively going to
// top on any possible wraparound.
func aluIval(op uint8, a, b ival) ival {
	switch op {
	case ebpf.ALUAdd:
		lo, hi := a.lo+b.lo, a.hi+b.hi
		if hi < a.hi { // wrapped
			return topIval
		}
		return ival{lo, hi}
	case ebpf.ALUSub:
		if a.lo < b.hi {
			return topIval // may underflow
		}
		return ival{a.lo - b.hi, a.hi - b.lo}
	case ebpf.ALUMul:
		if a.hi != 0 && b.hi > math.MaxUint64/a.hi {
			return topIval
		}
		return ival{a.lo * b.lo, a.hi * b.hi}
	case ebpf.ALUDiv:
		if b.lo == 0 {
			// Division by zero yields 0 in this ISA, so the result
			// still cannot exceed the dividend.
			return ival{0, a.hi}
		}
		return ival{a.lo / b.hi, a.hi / b.lo}
	case ebpf.ALUMod:
		if b.lo == b.hi && b.lo > 0 {
			return ival{0, b.lo - 1}
		}
		return topIval
	case ebpf.ALUAnd:
		return ival{0, min(a.hi, b.hi)}
	case ebpf.ALUOr, ebpf.ALUXor:
		n := max(bits.Len64(a.hi), bits.Len64(b.hi))
		if n >= 64 {
			return topIval
		}
		return ival{0, 1<<n - 1}
	case ebpf.ALULsh:
		if b.lo != b.hi || b.lo >= 64 {
			return topIval
		}
		c := b.lo
		if a.hi<<c>>c != a.hi {
			return topIval
		}
		return ival{a.lo << c, a.hi << c}
	case ebpf.ALURsh:
		if b.lo == b.hi && b.lo < 64 {
			return ival{a.lo >> b.lo, a.hi >> b.lo}
		}
		return ival{0, a.hi}
	}
	return topIval // neg, arsh, endian: signed semantics, punt
}

// refine narrows a and b under the assumption `a jop b` holds
// (unsigned 64-bit comparisons only). Returns false when the
// assumption is infeasible, i.e. the edge is dead.
func refine(s state, av vreg, a ival, jop uint8, bv vreg, b ival) bool {
	switch jop {
	case ebpf.JmpEq:
		m := ival{max(a.lo, b.lo), min(a.hi, b.hi)}
		if m.lo > m.hi {
			return false
		}
		a, b = m, m
	case ebpf.JmpNe:
		if a.lo == a.hi && a.lo == b.lo && a.lo == b.hi {
			return false
		}
		if b.lo == b.hi {
			if a.lo == b.lo && a.hi > a.lo {
				a.lo++
			}
			if a.hi == b.lo && a.hi > a.lo {
				a.hi--
			}
		}
		if a.lo == a.hi {
			if b.lo == a.lo && b.hi > b.lo {
				b.lo++
			}
			if b.hi == a.lo && b.hi > b.lo {
				b.hi--
			}
		}
	case ebpf.JmpLt: // a < b
		if b.hi == 0 {
			return false
		}
		a.hi = min(a.hi, b.hi-1)
		b.lo = max(b.lo, a.lo+1)
	case ebpf.JmpLe:
		a.hi = min(a.hi, b.hi)
		b.lo = max(b.lo, a.lo)
	case ebpf.JmpGt: // a > b
		if a.hi == 0 {
			return false
		}
		a.lo = max(a.lo, b.lo+1)
		b.hi = min(b.hi, a.hi-1)
	case ebpf.JmpGe:
		a.lo = max(a.lo, b.lo)
		b.hi = min(b.hi, a.hi)
	default:
		return true // signed/set compares: no unsigned refinement
	}
	if a.lo > a.hi || b.lo > b.hi {
		return false
	}
	if av >= 0 {
		s.set(av, a)
	}
	if bv >= 0 {
		s.set(bv, b)
	}
	return true
}

// checkBounds runs the analysis and reports every obligation it
// cannot discharge.
func checkBounds(c *compiler, ir []irIns) {
	pending := map[int][]state{}
	cur := state{}
	alive := true

	flowTo := func(lbl int, s state) {
		pending[lbl] = append(pending[lbl], s)
	}

	for _, ins := range ir {
		if ins.op == opLabel {
			var merged state
			haveMerged := false
			if alive {
				merged = cur
				haveMerged = true
			}
			for _, s := range pending[ins.lbl] {
				if !haveMerged {
					merged = s
					haveMerged = true
				} else {
					merged = join(merged, s)
				}
			}
			delete(pending, ins.lbl)
			if !haveMerged {
				alive = false
				cur = state{}
				continue
			}
			cur, alive = merged, true
			continue
		}
		if !alive {
			continue
		}
		if ins.boundLen > 0 {
			iv := cur.get(ins.boundReg)
			if iv.hi >= uint64(ins.boundLen) {
				if iv == topIval {
					c.errs.add(ins.pos, RuleBounds,
						"cannot prove the index stays below %d for %s (value is unbounded here)",
						ins.boundLen, ins.boundType)
				} else {
					c.errs.add(ins.pos, RuleBounds,
						"cannot prove the index stays below %d for %s (possible range [%d, %d])",
						ins.boundLen, ins.boundType, iv.lo, iv.hi)
				}
			}
		}
		switch ins.op {
		case opMovImm:
			cur.set(ins.dst, ival{uint64(ins.imm), uint64(ins.imm)})
		case opMovReg:
			iv := cur.get(ins.src)
			if ins.is32 {
				iv = clamp32(iv)
			}
			cur.set(ins.dst, iv)
		case opALUImm:
			iv := aluIval(ins.alu, cur.get(ins.dst), ival{uint64(ins.imm), uint64(ins.imm)})
			if ins.is32 {
				iv = clamp32(iv)
			}
			cur.set(ins.dst, iv)
		case opALUReg:
			iv := aluIval(ins.alu, cur.get(ins.dst), cur.get(ins.src))
			if ins.is32 {
				iv = clamp32(iv)
			}
			cur.set(ins.dst, iv)
		case opLoad:
			switch ins.size {
			case ebpf.SizeB:
				cur.set(ins.dst, ival{0, 0xff})
			case ebpf.SizeH:
				cur.set(ins.dst, ival{0, 0xffff})
			case ebpf.SizeW:
				cur.set(ins.dst, ival{0, maxU32})
			default:
				cur.set(ins.dst, topIval)
			}
		case opFrameAddr:
			cur.set(ins.dst, topIval)
		case opCall:
			if ins.dst >= 0 {
				cur.set(ins.dst, topIval)
			}
		case opRet:
			alive = false
			cur = state{}
		case opJmp:
			if ins.jop == ebpf.JmpA {
				flowTo(ins.lbl, cur)
				alive = false
				cur = state{}
				continue
			}
			a := cur.get(ins.dst)
			bv := ins.src
			b := topIval
			if bv == vNone {
				b = ival{uint64(ins.imm), uint64(ins.imm)}
			} else {
				b = cur.get(bv)
			}
			jop := ins.jop
			if ins.is32 {
				jop = 0xff // 32-bit compares: refine neither edge
			}
			taken := cur.clone()
			if refine(taken, ins.dst, a, jop, bv, b) {
				flowTo(ins.lbl, taken)
			}
			if !refine(cur, ins.dst, a, negJmp(jop), bv, b) {
				alive = false
				cur = state{}
			}
		}
	}
}
