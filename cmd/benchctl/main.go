// Command benchctl runs the paper-reproduction experiments and prints
// the regenerated tables and figures.
//
// Usage:
//
//	benchctl list                    # show available experiments
//	benchctl all                     # run everything (EXPERIMENTS.md content)
//	benchctl -parallel 4 all         # fan experiments out over 4 goroutines
//	benchctl -json out.json all      # also write machine-readable results
//	benchctl -compare old.json all   # diff wall/allocs/hashes vs a prior report
//	benchctl table1                  # run one, by name or id (E1..E14)
//
// Parallel runs are deterministic: every experiment owns a private
// sim.Engine, so -parallel changes wall time only, never the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyperion/internal/bench"
)

func main() {
	parallel := flag.Int("parallel", 1, "run 'all' across N goroutines, capped at GOMAXPROCS (each experiment keeps its own engine)")
	jsonPath := flag.String("json", "", "with 'all': write machine-readable per-experiment results to this file")
	comparePath := flag.String("compare", "", "with 'all': diff results against this prior BENCH_*.json; exit 1 on any table-hash mismatch")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Name)
		}
	case "all":
		workers := *parallel
		if max := runtime.GOMAXPROCS(0); workers > max {
			// More workers than cores cannot overlap any compute and only
			// add GC contention; cap silently.
			workers = max
		}
		start := time.Now() //hyperlint:allow(nodeterm) total-wall measurement for the JSON report; never feeds model time
		outs := bench.RunAll(workers)
		wall := time.Since(start) //hyperlint:allow(nodeterm) total-wall measurement for the JSON report; never feeds model time
		for _, o := range outs {
			fmt.Println(o.Result.String())
		}
		if *jsonPath != "" {
			if err := bench.WriteJSON(*jsonPath, workers, wall, outs); err != nil {
				fmt.Fprintf(os.Stderr, "benchctl: writing %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
		}
		if *comparePath != "" {
			old, err := bench.ReadJSON(*comparePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchctl: reading %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
			cmp := bench.Compare(old, bench.MakeReport(workers, wall, outs))
			fmt.Print(cmp.String())
			if cmp.HashMismatches > 0 {
				os.Exit(1)
			}
		}
	default:
		for _, name := range args {
			e, ok := bench.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchctl: unknown experiment %q (try 'benchctl list')\n", name)
				os.Exit(1)
			}
			fmt.Println(e.Run().String())
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchctl [-parallel N] [-json path] [-compare old.json] list | all | <experiment>...")
}
