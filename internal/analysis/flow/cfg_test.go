package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildSrc parses one function body and builds its CFG.
func buildSrc(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f() error {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return Build(fd.Body, nil), fset
}

// TestCFGDump pins the block structure for the shapes the ownership
// checks lean on: early returns, short-circuit conditions, loops with
// error-path releases, defer chains, switches, and panic terminators.
func TestCFGDump(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			name: "early_return",
			body: `
	b := get()
	if bad {
		return errBad
	}
	b.Release()
	return nil`,
			want: `b0 entry:
	b := get()
	bad
	-> b2 [true bad]
	-> b3 [false bad]
b1 return:
	-> b8
b2 if.then:
	return errBad
	-> b1
b3 if.after:
	b.Release()
	return nil
	-> b1
b8 exit:
`,
		},
		{
			name: "short_circuit",
			body: `
	if a && (b || !c) {
		hit()
	} else {
		miss()
	}
	return nil`,
			want: `b0 entry:
	a
	-> b5 [true a]
	-> b4 [false a]
b1 return:
	-> b12
b2 if.then:
	hit()
	-> b3
b3 if.after:
	return nil
	-> b1
b4 if.else:
	miss()
	-> b3
b5 cond.and:
	b
	-> b2 [true b]
	-> b7 [false b]
b7 cond.or:
	c
	-> b4 [true c]
	-> b2 [false c]
b12 exit:
`,
		},
		{
			name: "loop_with_error_path",
			body: `
	for i := 0; i < n; i++ {
		hdr := enc(i)
		if err := send(hdr); err != nil {
			hdr.Release()
			continue
		}
	}
	return nil`,
			want: `b0 entry:
	i := 0
	-> b2
b1 return:
	-> b13
b2 for.head:
	i < n
	-> b3 [true i < n]
	-> b4 [false i < n]
b3 for.body:
	hdr := enc(i)
	err := send(hdr)
	err != nil
	-> b7 [true err != nil]
	-> b8 [false err != nil]
b4 for.after:
	return nil
	-> b1
b5 for.post:
	i++
	-> b2
b7 if.then:
	hdr.Release()
	continue
	-> b5
b8 if.after:
	-> b5
b13 exit:
`,
		},
		{
			name: "defer_chain",
			body: `
	b := get()
	defer b.Release()
	defer func() {
		sp.End(now())
	}()
	if bad {
		return errBad
	}
	return nil`,
			want: `b0 entry:
	b := get()
	defer b.Release()
	defer func() { sp.End(now()) }()
	bad
	-> b2 [true bad]
	-> b3 [false bad]
b1 return:
	-> b8
b2 if.then:
	return errBad
	-> b1
b3 if.after:
	return nil
	-> b1
b8 defer:
	sp.End(now())
	-> b9
b9 defer:
	b.Release()
	-> b10
b10 exit:
`,
		},
		{
			name: "switch_fallthrough_panic",
			body: `
	switch k {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		panic("unreachable kind")
	}
	return nil`,
			want: `b0 entry:
	k
	-> b3
	-> b4
	-> b5
b1 return:
	-> b10
b2 switch.after:
	return nil
	-> b1
b3 case:
	1
	one()
	fallthrough
	-> b4
b4 case:
	2
	two()
	-> b2
b5 default:
	panic("unreachable kind")
b10 exit:
`,
		},
		{
			name: "range_break_continue",
			body: `
	for _, x := range xs {
		if skip(x) {
			continue
		}
		if stop(x) {
			break
		}
		use(x)
	}
	return nil`,
			want: `b0 entry:
	-> b2
b1 return:
	-> b15
b2 range.head:
	for _, x := range xs { if skip(x) { continue } if stop(x)...
	-> b3
	-> b4
b3 range.body:
	skip(x)
	-> b5 [true skip(x)]
	-> b6 [false skip(x)]
b4 range.after:
	return nil
	-> b1
b5 if.then:
	continue
	-> b2
b6 if.after:
	stop(x)
	-> b9 [true stop(x)]
	-> b10 [false stop(x)]
b9 if.then:
	break
	-> b4
b10 if.after:
	use(x)
	-> b2
b15 exit:
`,
		},
		{
			name: "labeled_break",
			body: `
outer:
	for {
		for {
			if done() {
				break outer
			}
			step()
		}
	}
	return nil`,
			want: `b0 entry:
	-> b2
b1 return:
	-> b16
b2 for.head:
	-> b3
b3 for.body:
	-> b6
b4 for.after:
	return nil
	-> b1
b6 for.head:
	-> b7
b7 for.body:
	done()
	-> b10 [true done()]
	-> b11 [false done()]
b10 if.then:
	break outer
	-> b4
b11 if.after:
	step()
	-> b6
b16 exit:
`,
		},
		{
			name: "select",
			body: `
	select {
	case v := <-ch:
		use(v)
	default:
		idle()
	}
	return nil`,
			want: `b0 entry:
	-> b3
	-> b4
b1 return:
	-> b7
b2 select.after:
	return nil
	-> b1
b3 comm:
	v := <-ch
	use(v)
	-> b2
b4 comm:
	idle()
	-> b2
b7 exit:
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, fset := buildSrc(t, tt.body)
			got := g.Dump(fset)
			if got != tt.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tt.want)
			}
		})
	}
}

// TestCFGExitReachable asserts structural invariants on arbitrary
// shapes: exactly one Exit, every reachable non-terminator block leads
// somewhere, and Preds mirror Succs.
func TestCFGExitReachable(t *testing.T) {
	bodies := []string{
		"return nil",
		"for { spin() }",
		"if a { return nil }\nreturn errBad",
		"goto done\ndone:\n\treturn nil",
		"panic(\"boom\")",
	}
	for i, body := range bodies {
		g, _ := buildSrc(t, body)
		if g.Exit == nil {
			t.Fatalf("body %d: nil Exit", i)
		}
		for _, blk := range g.Blocks {
			for _, e := range blk.Succs {
				found := false
				for _, p := range e.To.Preds {
					if p == blk {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("body %d: edge b%d->b%d missing Pred backlink", i, blk.Index, e.To.Index)
				}
			}
		}
	}
}

// TestCFGDeterministic rebuilds the same body and compares dumps:
// block numbering and edge order must be stable.
func TestCFGDeterministic(t *testing.T) {
	body := `
	for i := 0; i < n; i++ {
		if a || b {
			defer cleanup()
			return nil
		}
	}
	return errBad`
	g1, fs1 := buildSrc(t, body)
	g2, fs2 := buildSrc(t, body)
	if d1, d2 := g1.Dump(fs1), g2.Dump(fs2); d1 != d2 {
		t.Errorf("nondeterministic dump:\n%s\nvs\n%s", d1, d2)
	}
}

func TestNodeStringTruncates(t *testing.T) {
	fset := token.NewFileSet()
	long := "x := " + strings.Repeat("f(", 30) + "1" + strings.Repeat(")", 30)
	file, err := parser.ParseFile(fset, "t.go", "package p\nfunc f() {\n"+long+"\n}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	stmt := file.Decls[0].(*ast.FuncDecl).Body.List[0]
	s := nodeString(fset, stmt)
	if len(s) > 60 {
		t.Errorf("nodeString too long: %d chars %q", len(s), s)
	}
	if !strings.HasSuffix(s, "...") {
		t.Errorf("expected truncation marker, got %q", s)
	}
}
