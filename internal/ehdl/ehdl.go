// Package ehdl is Hyperion's eBPF-to-hardware compilation pipeline
// (§2.2): it takes a program in the eBPF intermediate representation,
// verifies it, optimizes it ("program warping" in the spirit of hXDP),
// estimates the hardware pipeline it would synthesize to (depth,
// initiation interval, resources, bitstream size), and emits a
// fabric.Bitstream whose functional payload is the program itself.
//
// The estimation model is architectural: each VLIW-fused stage retires a
// few instructions per cycle, memory/helper operations map to BRAM
// ports, and bitstream size scales with instruction count — giving the
// 10–100 ms partial-reconfiguration window the paper reports.
package ehdl

import (
	"errors"
	"fmt"

	"hyperion/internal/ebpf"
	"hyperion/internal/fabric"
	"hyperion/internal/telemetry"
)

// Options tune compilation.
type Options struct {
	// Name labels the generated accelerator.
	Name string
	// AuthTag is stamped into the bitstream for the config engine.
	AuthTag string
	// Optimize enables the warping passes.
	Optimize bool
	// CtxBytes is the context each item carries (defaults 512).
	CtxBytes int
	// Verifier supplies map/helper signatures. Maps/helper impls come
	// from the runtime via NewVM.
	Verifier ebpf.VerifierConfig
	// Helpers are installed into the execution VM.
	Helpers map[int32]ebpf.Helper
	// ILP is the instructions retired per pipeline stage (VLIW fusion
	// factor); defaults to 3, hXDP-like.
	ILP int
}

// Stats describes the synthesized pipeline.
type Stats struct {
	Instructions int // after optimization
	OrigInsns    int // before optimization
	Depth        int // pipeline stages (cycles of latency)
	II           int // initiation interval (cycles per item)
	MemOps       int
	HelperCalls  int
	Resources    fabric.Resources
	SizeBytes    int64
}

// Pipeline is a compiled accelerator ready to load into a fabric slot.
type Pipeline struct {
	Name  string
	Prog  []ebpf.Instruction
	Stats Stats
	vm    *ebpf.VM
	opts  Options

	rec      *telemetry.Recorder
	execName string // armed only: precomputed counter name
}

// SetRecorder arms the telemetry plane: the pipeline counts every
// Exec under layer "ehdl". Names are precomputed here; disarmed the
// hook is a pure nil check on the Exec path.
func (p *Pipeline) SetRecorder(rec *telemetry.Recorder) {
	p.rec = rec
	if rec != nil {
		p.execName = "exec:" + p.Name
	}
}

// Result is what flows out of the pipeline for each input item.
type Result struct {
	Ctx []byte // the (possibly rewritten) context
	Ret uint64 // r0
	Err error  // runtime fault (verified programs should never fault)
}

// ErrCompile wraps compilation failures.
var ErrCompile = errors.New("ehdl: compilation failed")

// Compile verifies, optimizes, and packages prog.
func Compile(prog []ebpf.Instruction, opts Options) (*Pipeline, error) {
	if opts.Name == "" {
		opts.Name = "ehdl"
	}
	if opts.CtxBytes <= 0 {
		opts.CtxBytes = 512
	}
	if opts.ILP <= 0 {
		opts.ILP = 3
	}
	vcfg := opts.Verifier
	if vcfg.CtxSize == 0 {
		vcfg.CtxSize = opts.CtxBytes
	}
	if err := ebpf.Verify(prog, vcfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	orig := len(prog)
	if opts.Optimize {
		var err error
		prog, err = Optimize(prog)
		if err != nil {
			return nil, fmt.Errorf("%w: optimizer: %v", ErrCompile, err)
		}
		// The optimizer must preserve verifiability.
		if err := ebpf.Verify(prog, vcfg); err != nil {
			return nil, fmt.Errorf("%w: optimizer broke verification: %v", ErrCompile, err)
		}
	}
	st := estimate(prog, opts)
	st.OrigInsns = orig

	vm := ebpf.NewVM(vcfg.Maps)
	//hyperlint:allow(maprange) RegisterHelper stores vm.helpers[id] for distinct ids; visit order cannot matter
	for id, h := range opts.Helpers {
		vm.RegisterHelper(id, h)
	}
	if err := vm.Load(prog); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	// Lower to the closure-compiled backend now rather than on the first
	// Exec; the artifact is cached per loaded program and the VM
	// invalidates it on any later Load (warped reloads) or helper
	// rebinding. Verified programs are loop-free, so this always
	// succeeds, but fallback to the interpreter is harmless.
	vm.Precompile()
	return &Pipeline{Name: opts.Name, Prog: prog, Stats: st, vm: vm, opts: opts}, nil
}

// estimate derives the hardware shape from the instruction mix.
func estimate(prog []ebpf.Instruction, opts Options) Stats {
	st := Stats{Instructions: len(prog), II: 1}
	for _, ins := range prog {
		switch ins.Class() {
		case ebpf.ClassLDX, ebpf.ClassSTX, ebpf.ClassST:
			st.MemOps++
		case ebpf.ClassJMP, ebpf.ClassJMP32:
			if ins.Op&0xf0 == ebpf.JmpCall {
				st.HelperCalls++
			}
		}
	}
	longest := longestPath(prog)
	st.Depth = 4 + (longest+opts.ILP-1)/opts.ILP + 2*st.HelperCalls
	// Each helper needs a BRAM port visit per item; four ports are
	// banked, so heavy helper use stretches the initiation interval.
	if st.HelperCalls > 4 {
		st.II = 1 + (st.HelperCalls-1)/4
	}
	st.Resources = fabric.Resources{
		LUTs: 2000 + 450*st.Instructions + 1500*st.HelperCalls,
		FFs:  4000 + 700*st.Instructions,
		BRAM: 4 + 2*st.MemOps + 8*st.HelperCalls,
		DSP:  countMuls(prog) * 4,
	}
	st.SizeBytes = int64(4<<20) + int64(st.Instructions)*100<<10
	return st
}

func countMuls(prog []ebpf.Instruction) int {
	n := 0
	for _, ins := range prog {
		cls := ins.Class()
		if (cls == ebpf.ClassALU || cls == ebpf.ClassALU64) && ins.Op&0xf0 == ebpf.ALUMul {
			n++
		}
	}
	return n
}

// longestPath returns the longest instruction chain through the CFG.
// Verified programs are DAGs, so a reverse topological sweep works.
func longestPath(prog []ebpf.Instruction) int {
	n := len(prog)
	memo := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		ins := prog[i]
		cls := ins.Class()
		best := 0
		if cls == ebpf.ClassJMP || cls == ebpf.ClassJMP32 {
			op := ins.Op & 0xf0
			switch op {
			case ebpf.JmpExit:
				best = 0
			case ebpf.JmpCall:
				best = memo[i+1]
			case ebpf.JmpA:
				if t := targetOf(prog, i); t > i {
					best = memo[t]
				}
			default:
				if t := targetOf(prog, i); t > i {
					best = memo[t]
				}
				if i+1 <= n && memo[i+1] > best {
					best = memo[i+1]
				}
			}
		} else if i+1 <= n {
			best = memo[i+1]
		}
		memo[i] = best + 1
	}
	return memo[0]
}

// targetOf resolves a jump's destination instruction index, accounting
// for LDDW double slots. Returns -1 on malformed offsets (already
// rejected by the verifier).
func targetOf(prog []ebpf.Instruction, i int) int {
	slot := 0
	slotOf := make([]int, len(prog))
	for k := range prog {
		slotOf[k] = slot
		slot++
		if prog[k].IsLDDW() {
			slot++
		}
	}
	want := slotOf[i] + 1 + int(prog[i].Off)
	for k, s := range slotOf {
		if s == want {
			return k
		}
	}
	return -1
}

// Bitstream packages the pipeline for the fabric. Items flowing through
// the slot must carry []byte payloads (the context); the emitted item is
// a *Result.
func (p *Pipeline) Bitstream() *fabric.Bitstream {
	return &fabric.Bitstream{
		Name:      p.Name,
		SizeBytes: p.Stats.SizeBytes,
		Uses:      p.Stats.Resources,
		Depth:     p.Stats.Depth,
		II:        p.Stats.II,
		AuthTag:   p.opts.AuthTag,
		Process:   func(in any) any { return p.Exec(in) },
	}
}

// Exec runs the pipeline's program once. in must be []byte (the context)
// or nil.
func (p *Pipeline) Exec(in any) *Result {
	var ctx []byte
	switch v := in.(type) {
	case nil:
	case []byte:
		ctx = v
	default:
		return &Result{Err: fmt.Errorf("ehdl: pipeline %s: unsupported payload %T", p.Name, in)}
	}
	p.vm.ResetWindows()
	ret, err := p.vm.Run(ctx)
	if p.rec != nil {
		p.rec.Count("ehdl", p.execName, 1)
	}
	return &Result{Ctx: ctx, Ret: ret, Err: err}
}

// VM exposes the underlying VM (for installing clocks in tests).
func (p *Pipeline) VM() *ebpf.VM { return p.vm }
