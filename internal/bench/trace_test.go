package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hyperion/internal/telemetry"
)

// -update regenerates the golden E2 trace fixture. Run after an
// intentional datapath-timing change:
//
//	go test ./internal/bench/ -run TestE2TraceMatchesGolden -update
var update = flag.Bool("update", false, "rewrite testdata golden trace fixtures")

// e2Fixture is the golden Chrome trace for E2 at the default seed. It
// is a cross-revision artifact like goldenTableHashes: any diff means a
// timing or span-plumbing change leaked into the traced datapath.
const e2Fixture = "testdata/e2.trace.json"

func traceE2(t *testing.T) (Result, *telemetry.Recorder) {
	t.Helper()
	e, ok := ByName("E2")
	if !ok {
		t.Fatal("experiment E2 not registered")
	}
	res, rec, ok := RunTracedExperiment(e, DefaultSeed)
	if !ok {
		t.Fatal("E2 has no traced form")
	}
	return res, rec
}

// TestE2TraceMatchesGolden pins the exact trace bytes E2 produces at
// the default seed against the checked-in fixture.
func TestE2TraceMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	_, rec := traceE2(t)
	got := rec.ChromeTrace()
	if *update {
		if err := os.WriteFile(e2Fixture, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", e2Fixture, len(got))
		return
	}
	want, err := os.ReadFile(e2Fixture)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("E2 trace drifted from golden fixture %s: got %d bytes, want %d; rerun with -update if the timing change is intentional",
			e2Fixture, len(got), len(want))
	}
}

// TestE2TraceSchemaAndTableNeutrality checks (a) the exported JSON is a
// valid Chrome trace-event document and (b) arming the telemetry plane
// does not perturb the experiment's table — the disarmed-is-armed
// equivalence the golden hashes depend on.
func TestE2TraceSchemaAndTableNeutrality(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	e, _ := ByName("E2")
	res, rec := traceE2(t)
	if err := telemetry.ValidateChromeTrace(rec.ChromeTrace()); err != nil {
		t.Fatalf("E2 trace fails schema validation: %v", err)
	}
	if rec.Events() == 0 {
		t.Fatal("armed E2 run recorded no spans")
	}
	if rec.HistogramDump() == "" || rec.CriticalPath() == "" {
		t.Fatal("armed E2 run produced empty summaries")
	}
	disarmed := e.RunSeeded(DefaultSeed)
	if got, want := res.Table.String(), disarmed.Table.String(); got != want {
		t.Fatalf("arming telemetry changed the E2 table:\n--- armed ---\n%s\n--- disarmed ---\n%s", got, want)
	}
}

// TestWriteTraceArtifacts covers the artifact writer: three files with
// the exported contents, plus the error path on a bad directory.
func TestWriteTraceArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	_, rec := traceE2(t)
	dir := t.TempDir()
	a, err := WriteTraceArtifacts(dir, "E2", rec)
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := map[string][]byte{
		a.TraceJSON: rec.ChromeTrace(),
		a.HistTXT:   []byte(rec.HistogramDump()),
		a.CritTXT:   []byte(rec.CriticalPath()),
	}
	for path, want := range wantFiles {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s does not match exported contents", filepath.Base(path))
		}
	}
	if _, err := WriteTraceArtifacts(filepath.Join(dir, "missing"), "E2", rec); err == nil {
		t.Error("writing into a missing directory succeeded, want error")
	}
}

// TestRunTracedExperimentUntracedForm: experiments without a traced
// form report ok=false instead of panicking.
func TestRunTracedExperimentUntracedForm(t *testing.T) {
	e, ok := ByName("E1")
	if !ok {
		t.Fatal("experiment E1 not registered")
	}
	if e.RunTraced != nil {
		t.Skip("E1 gained a traced form; pick another untraced experiment")
	}
	if _, rec, ok := RunTracedExperiment(e, DefaultSeed); ok || rec != nil {
		t.Fatal("untraced experiment reported a traced run")
	}
}
