package kvssd

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newView(t testing.TB) *seg.SyncView {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	return seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
}

func backends() []Backend { return []Backend{BackendBTree, BackendLSM} }

func TestPutGetDeleteBothBackends(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			kv, err := Create(newView(t), seg.OID(300, 0), be, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				v := bytes.Repeat([]byte{byte(i)}, 100+i)
				if err := kv.Put(k, v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				v, ok, err := kv.Get(k)
				if err != nil || !ok {
					t.Fatalf("Get(%s) = %v,%v", k, ok, err)
				}
				if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 100+i)) {
					t.Fatalf("Get(%s) wrong value", k)
				}
			}
			if _, ok, _ := kv.Get([]byte("missing")); ok {
				t.Fatal("found absent key")
			}
			ok, err := kv.Delete([]byte("key-0000"))
			if err != nil || !ok {
				t.Fatalf("Delete = %v,%v", ok, err)
			}
			if _, ok, _ := kv.Get([]byte("key-0000")); ok {
				t.Fatal("deleted key still present")
			}
			if ok, _ := kv.Delete([]byte("key-0000")); ok {
				t.Fatal("double delete reported present")
			}
		})
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	kv, err := Create(newView(t), seg.OID(300, 0), BackendBTree, true)
	if err != nil {
		t.Fatal(err)
	}
	k := []byte("k")
	for i := 0; i < 10; i++ {
		if err := kv.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, _ := kv.Get(k)
	if !ok || v[0] != 9 {
		t.Fatalf("latest = %v", v)
	}
}

func TestSizeLimits(t *testing.T) {
	kv, err := Create(newView(t), seg.OID(300, 0), BackendBTree, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(nil, []byte("v")); err != ErrKeyTooLarge {
		t.Fatalf("empty key err = %v", err)
	}
	if err := kv.Put(make([]byte, 2000), []byte("v")); err != ErrKeyTooLarge {
		t.Fatalf("big key err = %v", err)
	}
	if err := kv.Put([]byte("k"), make([]byte, 1<<19)); err != ErrValTooLarge {
		t.Fatalf("big val err = %v", err)
	}
}

func TestLogChunkRollover(t *testing.T) {
	kv, err := Create(newView(t), seg.OID(300, 0), BackendBTree, true)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 100<<10)
	for i := 0; i < 25; i++ { // 2.5 MB > 2 chunks
		if err := kv.Put([]byte(fmt.Sprintf("big-%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if len(kv.chunks) < 3 {
		t.Fatalf("chunks = %d, want ≥3", len(kv.chunks))
	}
	v, ok, err := kv.Get([]byte("big-0"))
	if err != nil || !ok || len(v) != len(val) {
		t.Fatalf("cross-chunk get = %v,%v,len %d", ok, err, len(v))
	}
	if kv.LogBytes() < 25*int64(len(val)) {
		t.Fatalf("LogBytes = %d", kv.LogBytes())
	}
}

func TestReopen(t *testing.T) {
	for _, be := range backends() {
		t.Run(be.String(), func(t *testing.T) {
			v := newView(t)
			kv, err := Create(v, seg.OID(300, 0), be, true)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				_ = kv.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
			}
			if err := kv.FlushIndex(); err != nil {
				t.Fatal(err)
			}
			kv2, err := Open(v, seg.OID(300, 0))
			if err != nil {
				t.Fatal(err)
			}
			if kv2.Backend() != be {
				t.Fatalf("backend = %v", kv2.Backend())
			}
			got, ok, err := kv2.Get([]byte("k42"))
			if err != nil || !ok || string(got) != "v42" {
				t.Fatalf("reopened get = %q,%v,%v", got, ok, err)
			}
			if err := kv2.Put([]byte("new"), []byte("val")); err != nil {
				t.Fatal(err)
			}
			got, ok, _ = kv2.Get([]byte("new"))
			if !ok || string(got) != "val" {
				t.Fatal("post-reopen put lost")
			}
		})
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	for _, be := range backends() {
		be := be
		t.Run(be.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				kv, err := Create(newView(t), seg.OID(300, 0), be, true)
				if err != nil {
					return false
				}
				r := sim.NewRand(seed)
				model := map[string]string{}
				for i := 0; i < 300; i++ {
					k := fmt.Sprintf("key-%d", r.Intn(80))
					switch r.Intn(4) {
					case 0, 1, 2:
						val := fmt.Sprintf("val-%d", r.Uint64())
						model[k] = val
						if kv.Put([]byte(k), []byte(val)) != nil {
							return false
						}
					case 3:
						_, in := model[k]
						delete(model, k)
						ok, err := kv.Delete([]byte(k))
						if err != nil || ok != in {
							return false
						}
					}
				}
				for k, want := range model {
					got, ok, err := kv.Get([]byte(k))
					if err != nil || !ok || string(got) != want {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCostDiffersBetweenBackends(t *testing.T) {
	// Not a strict ordering test — just that both backends charge
	// plausible, non-zero device time.
	for _, be := range backends() {
		v := newView(t)
		kv, err := Create(v, seg.OID(300, 0), be, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			_ = kv.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("x"), 256))
		}
		v.TakeCost()
		if _, _, err := kv.Get([]byte("k250")); err != nil {
			t.Fatal(err)
		}
		if c := v.TakeCost(); c <= 0 {
			t.Fatalf("%v: zero get cost", be)
		}
	}
}

func BenchmarkPutGet(b *testing.B) {
	for _, be := range backends() {
		b.Run(be.String(), func(b *testing.B) {
			kv, err := Create(newView(b), seg.OID(300, 0), be, true)
			if err != nil {
				b.Fatal(err)
			}
			val := bytes.Repeat([]byte("v"), 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := []byte(fmt.Sprintf("key-%d", i%10000))
				if i%2 == 0 {
					if err := kv.Put(k, val); err != nil {
						b.Fatal(err)
					}
				} else if _, _, err := kv.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
