package fail2ban

import (
	_ "embed"
	"fmt"

	"hyperion/internal/ebpf"
	"hyperion/internal/ebpf/gofront"
)

// The packet filter ships as restricted Go and is compiled by the
// gofront frontend at deploy time, with the ban threshold injected as
// a constant override. The hand-assembled Program in fail2ban.go is
// retained as the differential-test oracle: the two must stay
// shape-identical instruction by instruction.

//go:embed filter_prog.go
var filterSource []byte

// ctxBytes is the trace.Packet.Marshal wire size.
const ctxBytes = 20

// CompileFilter builds filter_prog.go through the restricted-Go
// frontend for the given ban threshold.
func CompileFilter(threshold int) ([]ebpf.Instruction, error) {
	p, err := gofront.Compile("filter_prog.go", filterSource, gofront.Options{
		Consts: map[string]int64{"threshold": int64(threshold)},
	})
	if err != nil {
		return nil, fmt.Errorf("fail2ban: frontend: %w", err)
	}
	if p.CtxSize != ctxBytes {
		return nil, fmt.Errorf("fail2ban: frontend context is %d bytes, want %d", p.CtxSize, ctxBytes)
	}
	return p.Insns, nil
}
