// Command benchctl runs the paper-reproduction experiments and prints
// the regenerated tables and figures.
//
// Usage:
//
//	benchctl list                    # show available experiments
//	benchctl all                     # run everything (EXPERIMENTS.md content)
//	benchctl -parallel 4 all         # fan experiments out over 4 goroutines
//	benchctl -json out.json all      # also write machine-readable results
//	benchctl -compare old.json all   # diff wall/allocs/hashes vs a prior report
//	benchctl -trace out/ fig2        # run traced; write Perfetto JSON + summaries
//	benchctl table1                  # run one, by name or id (E1..E14)
//
// Parallel runs are deterministic: every experiment owns a private
// sim.Engine, so -parallel changes wall time only, never the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyperion/internal/bench"
)

func main() {
	parallel := flag.Int("parallel", 1, "run 'all' across N goroutines, capped at GOMAXPROCS (each experiment keeps its own engine)")
	jsonPath := flag.String("json", "", "with 'all': write machine-readable per-experiment results to this file")
	comparePath := flag.String("compare", "", "with 'all': diff results against this prior BENCH_*.json; exit 1 on any table-hash mismatch")
	tracePath := flag.String("trace", "", "run traced experiments with the telemetry plane armed and write <id>.trace.json/.hist.txt/.critpath.txt to this existing directory")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	if *tracePath != "" {
		st, err := os.Stat(*tracePath)
		if err != nil || !st.IsDir() {
			fmt.Fprintf(os.Stderr, "benchctl: -trace %s: not a directory\n", *tracePath)
			os.Exit(1)
		}
	}
	switch args[0] {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Name)
		}
	case "all":
		workers := *parallel
		if max := runtime.GOMAXPROCS(0); workers > max {
			// More workers than cores cannot overlap any compute and only
			// add GC contention; cap silently.
			workers = max
		}
		start := time.Now() //hyperlint:allow(nodeterm) total-wall measurement for the JSON report; never feeds model time
		outs := bench.RunAll(workers)
		wall := time.Since(start) //hyperlint:allow(nodeterm) total-wall measurement for the JSON report; never feeds model time
		for _, o := range outs {
			fmt.Println(o.Result.String())
		}
		if *jsonPath != "" {
			if err := bench.WriteJSON(*jsonPath, workers, wall, outs); err != nil {
				fmt.Fprintf(os.Stderr, "benchctl: writing %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
		}
		if *comparePath != "" {
			old, err := bench.ReadJSON(*comparePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchctl: reading %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
			cmp := bench.Compare(old, bench.MakeReport(workers, wall, outs))
			fmt.Print(cmp.String())
			if cmp.HashMismatches > 0 {
				os.Exit(1)
			}
		}
		if *tracePath != "" {
			for _, e := range bench.All() {
				if e.RunTraced != nil {
					traceOne(e, *tracePath)
				}
			}
		}
	default:
		for _, name := range args {
			e, ok := bench.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchctl: unknown experiment %q (try 'benchctl list')\n", name)
				os.Exit(1)
			}
			if *tracePath != "" && e.RunTraced != nil {
				traceOne(e, *tracePath)
				continue
			}
			if *tracePath != "" {
				fmt.Fprintf(os.Stderr, "benchctl: %s has no traced form; running untraced\n", e.ID)
			}
			fmt.Println(e.Run().String())
		}
	}
}

// traceOne runs one experiment with tracing armed at the default seed,
// prints its (golden-identical) table, and writes the trace artifacts.
func traceOne(e bench.Experiment, dir string) {
	res, rec, _ := bench.RunTracedExperiment(e, bench.DefaultSeed)
	fmt.Println(res.String())
	a, err := bench.WriteTraceArtifacts(dir, e.ID, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchctl: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace artifacts: %s %s %s\n", a.TraceJSON, a.HistTXT, a.CritTXT)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchctl [-parallel N] [-json path] [-compare old.json] [-trace dir] list | all | <experiment>...")
}
