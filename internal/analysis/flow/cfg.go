// Package flow is hyperlint's flow-sensitive layer: an intra-procedural
// control-flow-graph builder, a generic forward/backward dataflow solver,
// and the //wire: ownership-contract grammar that the bufown and spanpair
// checkers consume.
//
// The paper's blueprint has no CPU-side debugger to fall back on: a
// datapath protocol that is only enforced by runtime panics (wire.Buf
// Retain/Release, telemetry span pairing) is a protocol that fails in
// the field. This layer lets those contracts be proven at build time,
// the way the eBPF verifier proves memory discipline before a program
// is ever loaded.
//
// # Control-flow graphs
//
// Build decomposes one function body into basic blocks of AST nodes in
// evaluation order. Branches, loops (for/range), switch/type-switch/
// select, labeled break/continue, goto, short-circuit && / || / ! in
// branch conditions, and panic/return edges are modeled. Conditional
// edges carry their leaf condition expression so dataflow problems can
// refine state on branch outcomes (e.g. "err != nil").
//
// Defer is modeled as a chain of blocks between every function exit and
// the Exit block, in reverse statement order: a `defer x.Release()`
// contributes its call to the chain, and a `defer func() { ... }()`
// contributes the literal's statements. The chain is approximate in two
// deliberate ways: conditionally-registered defers are assumed to run
// (sound for leak checking — it can only hide a leak, never invent
// one), and control flow inside deferred closures is flattened.
// Panic terminates its block with no successors: obligations on a
// panicking path are not reported, matching the runtime contract that a
// panic is already a bug.
package flow

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

const (
	// EdgeNext is unconditional fallthrough.
	EdgeNext EdgeKind = iota
	// EdgeTrue is taken when the edge's Cond evaluated true.
	EdgeTrue
	// EdgeFalse is taken when the edge's Cond evaluated false.
	EdgeFalse
)

// Edge is one directed CFG edge. Cond is the leaf condition expression
// for EdgeTrue/EdgeFalse edges (after short-circuit decomposition), nil
// for EdgeNext.
type Edge struct {
	To   *Block
	Kind EdgeKind
	Cond ast.Expr
}

// Block is a basic block: AST nodes in evaluation order with outgoing
// edges. Nodes are statements and, for decomposed conditions, bare
// expressions.
type Block struct {
	Index int
	Kind  string // human label for dumps: "entry", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []Edge
	Preds []*Block
}

// Graph is one function's CFG.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the single normal exit, reached from every return and the
	// final fallthrough, after the defer chain. Checks that verify
	// "discharged on all paths" inspect state flowing into Exit.
	Exit *Block
}

// Build constructs the CFG of a function body. info may be nil; when
// present it sharpens panic detection (the panic builtin resolved
// through types rather than by name).
func Build(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{
		g:      &Graph{},
		info:   info,
		labels: make(map[string]*labelTarget),
	}
	b.g.Entry = b.newBlock("entry")
	b.cur = b.g.Entry
	ret := b.newBlock("return") // collector for returns + final fallthrough
	b.ret = ret
	b.stmtList(body.List)
	b.jump(ret)
	for _, pg := range b.pendingGotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edgeFrom(pg.from, Edge{To: t.block})
		} else {
			b.edgeFrom(pg.from, Edge{To: ret}) // unresolved: conservative exit
		}
	}

	// Defer chain: return -> defer_n -> ... -> defer_1 -> exit.
	prev := ret
	for i := len(b.defers) - 1; i >= 0; i-- {
		d := b.defers[i]
		blk := b.newBlock("defer")
		blk.Nodes = deferredNodes(d)
		b.edgeFrom(prev, Edge{To: blk})
		prev = blk
	}
	b.g.Exit = b.newBlock("exit")
	b.edgeFrom(prev, Edge{To: b.g.Exit})

	for _, blk := range b.g.Blocks {
		for _, e := range blk.Succs {
			e.To.Preds = append(e.To.Preds, blk)
		}
	}
	return b.g
}

// deferredNodes is what a defer statement executes at function exit:
// the call itself (wrapped as a synthetic ExprStmt so dataflow problems
// see one uniform statement shape), or a deferred func literal's
// statements (flattened — nested control flow inside deferred closures
// is not decomposed).
func deferredNodes(d *ast.DeferStmt) []ast.Node {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && len(d.Call.Args) == 0 {
		nodes := make([]ast.Node, len(lit.Body.List))
		for i, s := range lit.Body.List {
			nodes[i] = s
		}
		return nodes
	}
	return []ast.Node{&ast.ExprStmt{X: d.Call}}
}

type labelTarget struct {
	block   *Block // target for goto / labeled loop head
	breakTo *Block // for labeled break
	contTo  *Block // for labeled continue
}

type pendingGoto struct {
	from  *Block
	label string
}

type loopFrame struct {
	breakTo *Block
	contTo  *Block
	label   string
}

type builder struct {
	g    *Graph
	info *types.Info
	cur  *Block
	ret  *Block

	defers       []*ast.DeferStmt
	loops        []loopFrame
	breakStack   []breakable // innermost-last break targets (loops + switches)
	labels       map[string]*labelTarget
	pendingGotos []pendingGoto
	pendingLabel string // label naming the next loop/switch
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) edgeFrom(from *Block, e Edge) {
	if from != nil {
		from.Succs = append(from.Succs, e)
	}
}

// jump ends the current block with an unconditional edge and leaves the
// builder in a fresh unreachable block (dead code after return/branch
// still parses into nodes, but nothing flows into it).
func (b *builder) jump(to *Block) {
	b.edgeFrom(b.cur, Edge{To: to})
	b.cur = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if b.isNoReturn(s.X) {
			// panic()/os.Exit: terminate with no successor — obligations
			// on this path are the panic's problem, not the checker's.
			b.cur = b.newBlock("unreachable")
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt:
		b.add(s)
	case *ast.DeferStmt:
		b.add(s) // argument evaluation happens here
		b.defers = append(b.defers, s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.ret)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	default:
		b.add(s)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = name
		b.stmt(s.Stmt)
	default:
		// Plain goto target: start a fresh block so the label has a
		// stable entry point.
		blk := b.newBlock("label." + name)
		b.edgeFrom(b.cur, Edge{To: blk})
		b.cur = blk
		b.labels[name] = &labelTarget{block: blk}
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.breakTo != nil {
				b.jump(t.breakTo)
				return
			}
		} else {
			// Innermost breakable: loop or switch, whichever is nearer.
			// switches records its nesting position via the stack order;
			// we track both stacks and the statement builder pushes in
			// nesting order, so the nearest is whichever was pushed last.
			if blk := b.nearestBreak(); blk != nil {
				b.jump(blk)
				return
			}
		}
		b.jump(b.ret) // malformed; be conservative
	case token.CONTINUE:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.contTo != nil {
				b.jump(t.contTo)
				return
			}
		} else if n := len(b.loops); n > 0 {
			b.jump(b.loops[n-1].contTo)
			return
		}
		b.jump(b.ret)
	case token.GOTO:
		if s.Label != nil {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.cur = b.newBlock("unreachable")
	case token.FALLTHROUGH:
		// Handled by switchStmt wiring case bodies; nothing to do here —
		// the explicit edge is added by the case loop.
	}
}

// breakables interleaves loops and switches by push order. We keep a
// single conceptual stack via a counter slice.
type breakable struct {
	blk    *Block
	isLoop bool
}

func (b *builder) nearestBreak() *Block {
	if len(b.breakStack) == 0 {
		return nil
	}
	return b.breakStack[len(b.breakStack)-1].blk
}

func (b *builder) pushLoop(breakTo, contTo *Block, label string) {
	b.loops = append(b.loops, loopFrame{breakTo: breakTo, contTo: contTo, label: label})
	b.breakStack = append(b.breakStack, breakable{blk: breakTo, isLoop: true})
	if label != "" {
		b.labels[label] = &labelTarget{block: contTo, breakTo: breakTo, contTo: contTo}
	}
}

func (b *builder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
}

func (b *builder) pushSwitch(breakTo *Block, label string) {
	b.breakStack = append(b.breakStack, breakable{blk: breakTo})
	if label != "" {
		b.labels[label] = &labelTarget{block: breakTo, breakTo: breakTo}
	}
}

func (b *builder) popSwitch() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	els := after
	if s.Else != nil {
		els = b.newBlock("if.else")
	}
	b.cond(s.Cond, then, els)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edgeFrom(b.cur, Edge{To: after})
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		b.edgeFrom(b.cur, Edge{To: after})
	}
	b.cur = after
}

// cond wires the evaluation of a branch condition, decomposing
// short-circuit operators into edge-labeled leaf tests.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	leaf := unparen(e)
	b.add(leaf)
	b.edgeFrom(b.cur, Edge{To: t, Kind: EdgeTrue, Cond: leaf})
	b.edgeFrom(b.cur, Edge{To: f, Kind: EdgeFalse, Cond: leaf})
	b.cur = b.newBlock("unreachable")
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.edgeFrom(b.cur, Edge{To: head})
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		b.edgeFrom(b.cur, Edge{To: body})
		b.cur = b.newBlock("unreachable")
	}
	b.pushLoop(after, post, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeFrom(b.cur, Edge{To: post})
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edgeFrom(b.cur, Edge{To: head})
	}
	b.popLoop()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edgeFrom(b.cur, Edge{To: head})
	// The RangeStmt node stands for the per-iteration key/value binding
	// and the use of the ranged operand.
	head.Nodes = append(head.Nodes, s)
	b.edgeFrom(head, Edge{To: body})
	b.edgeFrom(head, Edge{To: after})
	b.pushLoop(after, head, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeFrom(b.cur, Edge{To: head})
	b.popLoop()
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	after := b.newBlock("switch.after")
	b.pushSwitch(after, label)
	b.caseClauses(s.Body.List, after, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
	b.popSwitch()
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	after := b.newBlock("switch.after")
	b.pushSwitch(after, label)
	b.caseClauses(s.Body.List, after, nil)
	b.popSwitch()
	b.cur = after
}

// caseClauses wires a switch body: the dispatching block fans out to
// every case, each case body flows to after, and fallthrough chains to
// the next body.
func (b *builder) caseClauses(list []ast.Stmt, after *Block, addExprs func(*ast.CaseClause, *Block)) {
	dispatch := b.cur
	bodies := make([]*Block, len(list))
	hasDefault := false
	for i, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		kind := "case"
		if cc.List == nil {
			kind = "default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		bodies[i] = blk
		if addExprs != nil {
			addExprs(cc, blk)
		}
		b.edgeFrom(dispatch, Edge{To: blk})
	}
	if !hasDefault {
		b.edgeFrom(dispatch, Edge{To: after})
	}
	for i, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok || bodies[i] == nil {
			continue
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if ft := fallsThrough(cc.Body); ft && i+1 < len(list) && bodies[i+1] != nil {
			b.edgeFrom(b.cur, Edge{To: bodies[i+1]})
		} else {
			b.edgeFrom(b.cur, Edge{To: after})
		}
	}
	b.cur = b.newBlock("unreachable")
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	after := b.newBlock("select.after")
	dispatch := b.cur
	b.pushSwitch(after, label)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.edgeFrom(dispatch, Edge{To: blk})
		b.cur = blk
		b.stmtList(cc.Body)
		b.edgeFrom(b.cur, Edge{To: after})
	}
	b.popSwitch()
	b.cur = after
}

// isNoReturn reports whether a statement expression never returns:
// panic(...) or os.Exit(...).
func (b *builder) isNoReturn(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info == nil {
			return true
		}
		_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Dump renders the graph for golden tests: one section per reachable
// block with its nodes and labeled edges. Unreachable scratch blocks
// (dead code collectors) are elided.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	reachable := g.reachable()
	for _, blk := range g.Blocks {
		if !reachable[blk] && blk != g.Entry {
			continue
		}
		fmt.Fprintf(&sb, "b%d %s:\n", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", nodeString(fset, n))
		}
		for _, e := range blk.Succs {
			if !reachable[e.To] {
				continue
			}
			switch e.Kind {
			case EdgeTrue:
				fmt.Fprintf(&sb, "\t-> b%d [true %s]\n", e.To.Index, nodeString(fset, e.Cond))
			case EdgeFalse:
				fmt.Fprintf(&sb, "\t-> b%d [false %s]\n", e.To.Index, nodeString(fset, e.Cond))
			default:
				fmt.Fprintf(&sb, "\t-> b%d\n", e.To.Index)
			}
		}
	}
	return sb.String()
}

// reachable marks blocks reachable from Entry. The builder's
// "unreachable" scratch blocks keep dumps and dataflow clean by never
// acquiring predecessors.
func (g *Graph) reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

func nodeString(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(sb.String()), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
