package gofront

import (
	"go/ast"
	"go/token"

	"hyperion/internal/ebpf"
)

// mirrorCmp flips a comparison for operand swap (C < x  ⇒  x > C).
func mirrorCmp(tok token.Token) token.Token {
	switch tok {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return tok // ==, != are symmetric
}

// cond lowers a comparison as a conditional jump to lbl (negated when
// negate is set, for jump-over-body lowering).
func (l *lowerer) cond(e ast.Expr, lbl int, negate bool) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		l.c.errs.add(e.Pos(), RuleExpr, "if conditions must be comparisons (x == y, x < y, ...)")
		return
	}
	op := be.Op
	if _, isCmp := jmpForToken(op, false); !isCmp {
		switch op {
		case token.LAND, token.LOR:
			l.c.errs.add(be.Pos(), RuleExpr, "boolean operators are outside the restricted subset; nest if statements")
		default:
			l.c.errs.add(be.Pos(), RuleExpr, "if conditions must be comparisons (x == y, x < y, ...)")
		}
		return
	}
	x, y := be.X, be.Y

	// Both sides constant: the branch folds away at compile time.
	if xv, xc := l.tryConst(x); xc {
		if yv, yc := l.tryConst(y); yc {
			if constCmp(op, xv, yv) != negate {
				l.put(irIns{op: opJmp, jop: ebpf.JmpA, dst: vNone, src: vNone, lbl: lbl, pos: e.Pos()})
				l.reachable = false
			}
			return
		}
		// Constant on the left only: swap so the register operand is dst.
		x, y = y, x
		op = mirrorCmp(op)
	}

	xt := l.typeOf(x)
	yt := l.typeOf(y)
	// Pointer comparisons: only ==/!= against nil (map-lookup results).
	if _, isPtr := xt.(PtrType); isPtr {
		if op != token.EQL && op != token.NEQ {
			l.c.errs.add(be.Pos(), RuleExpr, "pointers only compare with == and != against nil")
			return
		}
		if id, ok := ast.Unparen(y).(*ast.Ident); !ok || id.Name != "nil" {
			l.c.errs.add(y.Pos(), RuleExpr, "pointers only compare against nil")
			return
		}
		lv, _ := l.valueOf(x)
		if lv == vNone {
			return
		}
		jop, _ := jmpForToken(op, false)
		if negate {
			jop = negJmp(jop)
		}
		l.put(irIns{op: opJmp, jop: jop, dst: lv, src: vNone, imm: 0, lbl: lbl, pos: e.Pos()})
		return
	}

	signed, cmp32 := false, false
	if it, ok := xt.(IntType); ok {
		signed = it.Signed
		// Unsigned values are canonically zero-extended, so a 64-bit
		// compare is exact at every width (and is what the verifier's
		// range refinement understands). Signed 32-bit needs JMP32.
		cmp32 = it.Signed && it.Bits == 32
		if yi, ok2 := yt.(IntType); ok2 && yi != it {
			l.c.errs.add(y.Pos(), RuleTypes, "mismatched comparison types %s and %s", it, yi)
			return
		}
	} else if it, ok := yt.(IntType); ok {
		signed = it.Signed
		cmp32 = it.Signed && it.Bits == 32
	}
	jop, _ := jmpForToken(op, signed)
	if negate {
		jop = negJmp(jop)
	}
	lv, _ := l.valueOf(x)
	if lv == vNone {
		return
	}
	if cv, isConst := l.tryConst(y); isConst && cv >= -1<<31 && cv < 1<<31 {
		l.put(irIns{op: opJmp, jop: jop, is32: cmp32, dst: lv, src: vNone, imm: cv, lbl: lbl, pos: e.Pos()})
		return
	}
	rv, _ := l.valueOf(y)
	if rv == vNone {
		return
	}
	l.put(irIns{op: opJmp, jop: jop, is32: cmp32, dst: lv, src: rv, lbl: lbl, pos: e.Pos()})
}

func constCmp(op token.Token, a, b int64) bool {
	ua, ub := uint64(a), uint64(b)
	switch op {
	case token.EQL:
		return a == b
	case token.NEQ:
		return a != b
	case token.LSS:
		return ua < ub
	case token.LEQ:
		return ua <= ub
	case token.GTR:
		return ua > ub
	case token.GEQ:
		return ua >= ub
	}
	return false
}

// branchTarget resolves the label a bare goto/continue/break body
// statement jumps to, for the direct-conditional-jump lowering.
func (l *lowerer) branchTarget(st *ast.BranchStmt) (int, bool) {
	switch st.Tok {
	case token.GOTO:
		f, id, ok := l.findLabel(st.Label.Name)
		if !ok {
			l.c.errs.add(st.Label.Pos(), RuleGoto, "label %s is not declared in a reachable scope", st.Label.Name)
			return 0, false
		}
		if f.emitted[st.Label.Name] {
			l.c.errs.add(st.Pos(), RuleGoto, "goto %s jumps backward; programs must be loop-free (bounded for loops unroll)", st.Label.Name)
			return 0, false
		}
		return id, true
	case token.CONTINUE, token.BREAK:
		if st.Label != nil {
			l.c.errs.add(st.Pos(), RuleStmt, "labeled %s is outside the restricted subset", st.Tok)
			return 0, false
		}
		if len(l.loops) == 0 {
			l.c.errs.add(st.Pos(), RuleStmt, "%s outside a loop", st.Tok)
			return 0, false
		}
		lp := l.loops[len(l.loops)-1]
		if st.Tok == token.BREAK {
			return lp.brkLbl, true
		}
		return lp.contLbl, true
	}
	return 0, false
}

func (l *lowerer) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		l.c.errs.add(st.Pos(), RuleStmt, "if statements cannot have an init clause")
		return
	}
	// `if cond { goto L }` (or continue/break) lowers to ONE direct
	// conditional jump — the shape hand-written programs use.
	if st.Else == nil && len(st.Body.List) == 1 {
		if br, ok := st.Body.List[0].(*ast.BranchStmt); ok {
			if target, ok2 := l.branchTarget(br); ok2 {
				l.cond(st.Cond, target, false)
			}
			return
		}
	}
	if st.Else == nil {
		end := l.newLabel()
		l.cond(st.Cond, end, true)
		l.blockStmts(st.Body.List)
		l.label(end)
		return
	}
	elseLbl, end := l.newLabel(), l.newLabel()
	l.cond(st.Cond, elseLbl, true)
	l.blockStmts(st.Body.List)
	bodyTerminated := l.terminated
	if !bodyTerminated {
		l.put(irIns{op: opJmp, jop: ebpf.JmpA, dst: vNone, src: vNone, lbl: end, pos: st.Pos()})
	}
	l.label(elseLbl)
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		l.blockStmts(e.List)
	case *ast.IfStmt:
		l.ifStmt(e)
	}
	if !bodyTerminated {
		l.label(end)
	}
}

func (l *lowerer) blockStmts(stmts []ast.Stmt) {
	l.pushScope()
	for _, s := range stmts {
		l.stmt(s)
	}
	l.popScope()
}

// forStmt unrolls a bounded counting loop. The accepted shape is
// `for i := C0; i < C1; i++` (also <=, and i += C steps); the loop
// variable is a per-copy compile-time constant inside the body.
func (l *lowerer) forStmt(st *ast.ForStmt) {
	bad := func(pos token.Pos) {
		l.c.errs.add(pos, RuleLoop, "for loops must have the form `for i := C; i < C; i++` (constant bounds and step) so they unroll at compile time")
	}
	init, ok := st.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		bad(st.Pos())
		return
	}
	name, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		bad(st.Pos())
		return
	}
	start, ok := l.tryConst(init.Rhs[0])
	if !ok {
		bad(init.Rhs[0].Pos())
		return
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		bad(st.Cond.Pos())
		return
	}
	condID, ok := cond.X.(*ast.Ident)
	if !ok || condID.Name != name.Name {
		bad(cond.Pos())
		return
	}
	limit, ok := l.tryConst(cond.Y)
	if !ok {
		bad(cond.Y.Pos())
		return
	}
	step := int64(1)
	switch post := st.Post.(type) {
	case *ast.IncDecStmt:
		id, ok2 := post.X.(*ast.Ident)
		if !ok2 || id.Name != name.Name || post.Tok != token.INC {
			bad(post.Pos())
			return
		}
	case *ast.AssignStmt:
		id, ok2 := post.Lhs[0].(*ast.Ident)
		if post.Tok != token.ADD_ASSIGN || !ok2 || id.Name != name.Name {
			bad(post.Pos())
			return
		}
		step, ok2 = l.tryConst(post.Rhs[0])
		if !ok2 || step <= 0 {
			bad(post.Pos())
			return
		}
	default:
		bad(st.Pos())
		return
	}

	trips := int64(0)
	for v := start; constCmp(cond.Op, v, limit); v += step {
		trips++
		if trips > maxUnroll {
			l.c.errs.add(st.Pos(), RuleLoop, "loop unrolls to more than %d iterations", maxUnroll)
			return
		}
	}

	brk := l.newLabel()
	for v := start; constCmp(cond.Op, v, limit); v += step {
		cont := l.newLabel()
		l.pushScope()
		l.bind(name.Name, &local{name: name.Name, typ: IntType{Bits: 64}, reg: vNone, isConst: true, cval: v})
		l.loops = append(l.loops, loopCtx{contLbl: cont, brkLbl: brk})
		l.pushLabelFrame(st.Body.List)
		for _, s := range st.Body.List {
			l.stmt(s)
		}
		l.popLabelFrame()
		l.loops = l.loops[:len(l.loops)-1]
		l.popScope()
		l.label(cont)
		if len(l.ir) >= maxIR {
			return
		}
	}
	l.label(brk)
}

// callExpr lowers a call in statement position (result discarded).
func (l *lowerer) callExpr(x *ast.CallExpr, wantResult bool) {
	id, ok := ast.Unparen(x.Fun).(*ast.Ident)
	if !ok {
		l.c.errs.add(x.Pos(), RuleExpr, "only helper calls are allowed in statement position")
		return
	}
	if _, isConv := intTypes[id.Name]; isConv {
		l.c.errs.add(x.Pos(), RuleStmt, "conversion result is unused")
		return
	}
	switch id.Name {
	case "new", "make", "append", "copy":
		l.c.errs.add(x.Pos(), RuleHeap, "%s allocates; the restricted subset has no heap", id.Name)
		return
	case "delete":
		l.c.errs.add(x.Pos(), RuleHeap, "Go maps are heap-allocated; use the declared map intrinsics instead")
		return
	case "panic", "print", "println":
		l.c.errs.add(x.Pos(), RuleStmt, "%s is outside the restricted subset", id.Name)
		return
	}
	h, ok := l.c.helpers[id.Name]
	if !ok {
		l.c.errs.add(x.Pos(), RuleHelper, "unknown helper %s; declare it with a //hyperion:helper directive", id.Name)
		return
	}
	l.helperCall(h, x)
	_ = wantResult
}
