package lsm

import (
	"testing"
	"testing/quick"

	"hyperion/internal/nvme"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
)

func newView(t testing.TB) *seg.SyncView {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := nvme.DefaultConfig("nvme")
	cfg.Blocks = 1 << 20
	host := nvme.NewHost(nvme.New(eng, cfg), nil)
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 64 << 20
	scfg.CheckpointEvery = 0
	return seg.NewSyncView(seg.New(eng, scfg, []*nvme.Host{host}))
}

func newTree(t testing.TB, memCap int) *Tree {
	t.Helper()
	tr, err := Create(newView(t), seg.OID(200, 0), true, memCap)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPutGetMemtableOnly(t *testing.T) {
	tr := newTree(t, 1024)
	for i := uint64(0); i < 100; i++ {
		if err := tr.Put(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		got, ok, err := tr.Get(i)
		if err != nil || !ok || got != i*2 {
			t.Fatalf("Get(%d) = %d,%v,%v", i, got, ok, err)
		}
	}
	if tr.Flushes != 0 {
		t.Fatal("unexpected flush")
	}
}

func TestFlushAndGetFromRuns(t *testing.T) {
	tr := newTree(t, 64)
	for i := uint64(0); i < 500; i++ {
		if err := tr.Put(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Flushes == 0 {
		t.Fatal("no flushes at small memtable")
	}
	for i := uint64(0); i < 500; i++ {
		got, ok, err := tr.Get(i)
		if err != nil || !ok || got != i+1 {
			t.Fatalf("Get(%d) = %d,%v,%v", i, got, ok, err)
		}
	}
	if _, ok, _ := tr.Get(10_000); ok {
		t.Fatal("found absent key")
	}
}

func TestNewestVersionWins(t *testing.T) {
	tr := newTree(t, 16)
	for round := uint64(1); round <= 5; round++ {
		for i := uint64(0); i < 64; i++ {
			_ = tr.Put(i, i*1000+round)
		}
	}
	for i := uint64(0); i < 64; i++ {
		got, ok, _ := tr.Get(i)
		if !ok || got != i*1000+5 {
			t.Fatalf("Get(%d) = %d, want round-5 value", i, got)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	tr := newTree(t, 32)
	for i := uint64(0); i < 200; i++ {
		_ = tr.Put(i, i)
	}
	for i := uint64(0); i < 200; i += 2 {
		_ = tr.Delete(i)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		_, ok, err := tr.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) present=%v", i, ok)
		}
	}
}

func TestCompactionReducesRuns(t *testing.T) {
	tr := newTree(t, 16)
	for i := uint64(0); i < 2000; i++ {
		_ = tr.Put(i%300, i)
	}
	_ = tr.Flush()
	runs := tr.Runs()
	if runs[0] >= RunsPerLevel {
		t.Fatalf("L0 runs %d not compacted", runs[0])
	}
	if tr.Compactions == 0 {
		t.Fatal("no compactions happened")
	}
	// All data still visible.
	for k := uint64(0); k < 300; k++ {
		if _, ok, err := tr.Get(k); err != nil || !ok {
			t.Fatalf("lost key %d after compaction (%v)", k, err)
		}
	}
}

func TestWriteAmplificationGrowsWithCompaction(t *testing.T) {
	tr := newTree(t, 16)
	for i := uint64(0); i < 3000; i++ {
		_ = tr.Put(i, i)
	}
	_ = tr.Flush()
	if wa := tr.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("write amplification %v, want > 1 with compaction", wa)
	}
}

func TestScanMergesAllSources(t *testing.T) {
	tr := newTree(t, 32)
	for i := uint64(0); i < 300; i++ {
		_ = tr.Put(i*2, i)
	}
	_ = tr.Delete(10)
	var keys []uint64
	if err := tr.Scan(0, 100, func(k, v uint64) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := uint64(0); i < 100; i += 2 {
		if i == 10 {
			continue
		}
		want++
	}
	if len(keys) != want {
		t.Fatalf("scan found %d keys, want %d", len(keys), want)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("scan out of order")
		}
	}
}

func TestOpenRecoversRuns(t *testing.T) {
	v := newView(t)
	tr, err := Create(v, seg.OID(200, 0), true, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		_ = tr.Put(i, i+7)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(v, seg.OID(200, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 100, 499} {
		got, ok, err := tr2.Get(k)
		if err != nil || !ok || got != k+7 {
			t.Fatalf("reopened Get(%d) = %d,%v,%v", k, got, ok, err)
		}
	}
	// Writes after reopen must not collide with existing run objects.
	for i := uint64(1000); i < 1200; i++ {
		if err := tr2.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := tr2.Get(1100); !ok || got != 1100 {
		t.Fatal("post-reopen write lost")
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	f := func(seed uint64) bool {
		tr := newTree(t, 24) // small memtable exercises flush/compaction
		r := sim.NewRand(seed)
		model := map[uint64]uint64{}
		for i := 0; i < 600; i++ {
			k := r.Uint64() % 200
			switch r.Intn(4) {
			case 0, 1, 2:
				val := r.Uint64()
				model[k] = val
				if tr.Put(k, val) != nil {
					return false
				}
			case 3:
				delete(model, k)
				if tr.Delete(k) != nil {
					return false
				}
			}
		}
		for k := uint64(0); k < 200; k++ {
			want, inModel := model[k]
			got, ok, err := tr.Get(k)
			if err != nil || ok != inModel {
				return false
			}
			if ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr, err := Create(newView(b), seg.OID(200, 0), true, DefaultMemtableCap)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetAfterCompaction(b *testing.B) {
	tr, err := Create(newView(b), seg.OID(200, 0), true, 1024)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 50000; i++ {
		if err := tr.Put(i, i); err != nil {
			b.Fatal(err)
		}
	}
	_ = tr.Flush()
	r := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Get(r.Uint64() % 50000); err != nil {
			b.Fatal(err)
		}
	}
}
