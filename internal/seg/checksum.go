package seg

import (
	"hash/crc32"

	"hyperion/internal/nvme"
)

// End-to-end read integrity (Config.ChecksumReads). The store keeps a
// CRC-32C per device block it has written; every queued-path read is
// verified against it and retried on mismatch, since corruption in this
// model is transient — the device's stored bytes stay intact, only the
// returned copy is damaged. Reads of blocks the store never wrote
// (e.g. freshly allocated segments) have no recorded CRC and pass.

// StatusChecksum is the store-synthesized status for a read whose
// payload still mismatched its recorded CRCs after crcMaxRereads
// rereads. (0xFFFF is the enqueue-failure sentinel; nvme.StatusTimeout
// is 0xFFFD.)
const StatusChecksum uint16 = 0xFFFE

// crcMaxRereads bounds how many rereads a mismatching read may trigger.
const crcMaxRereads = 3

var crcCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcKey addresses one block across devices, reusing the devStride
// address-space split.
func crcKey(dev int, lba int64) int64 { return int64(dev)*devStride + lba }

// recordCRCs stores the CRC of every full block in data. Callers pad
// writes to whole blocks, so a trailing partial fragment never occurs
// on the queued path; one is ignored if it does.
func (s *Store) recordCRCs(dev int, lba int64, data []byte) {
	bs := s.cfg.BlockSize
	for i := 0; (i+1)*bs <= len(data); i++ {
		s.crcs[crcKey(dev, lba+int64(i))] = crc32.Checksum(data[i*bs:(i+1)*bs], crcCastagnoli)
	}
}

// verifyCRCs checks data against the recorded per-block CRCs; blocks
// without a record pass.
func (s *Store) verifyCRCs(dev int, lba int64, data []byte) bool {
	bs := s.cfg.BlockSize
	for i := 0; (i+1)*bs <= len(data); i++ {
		want, ok := s.crcs[crcKey(dev, lba+int64(i))]
		if !ok {
			continue
		}
		if crc32.Checksum(data[i*bs:(i+1)*bs], crcCastagnoli) != want {
			return false
		}
	}
	return true
}

// devReadVerified is devRead with verify-and-reread. attempt counts
// rereads already burned.
func (s *Store) devReadVerified(dev int, lba int64, blocks, attempt int, cb func([]byte, uint16)) {
	err := s.devs[dev].Read(0, lba, blocks, func(data []byte, st uint16) {
		if st != nvme.StatusOK || s.verifyCRCs(dev, lba, data) {
			cb(data, st)
			return
		}
		if attempt >= crcMaxRereads {
			s.Counters.Get("crc_failures").Add(1)
			cb(nil, StatusChecksum)
			return
		}
		s.Counters.Get("crc_rereads").Add(1)
		s.devReadVerified(dev, lba, blocks, attempt+1, cb)
	})
	if err != nil {
		cb(nil, 0xFFFF)
	}
}
