package fabric

import (
	"fmt"
	"reflect"
	"testing"

	"hyperion/internal/fault"
	"hyperion/internal/sim"
)

// load saturates every arbiter input with n equal-size items tagged
// (port, seq) and returns the observed arrival order at the sink.
func runContended(seed uint64, ports, n int, plan func(i int) *fault.Plan) []string {
	eng := sim.NewEngine(seed)
	var got []string
	arb := NewArbiter(eng, "arb", 250_000_000, 64, n, ports, func(it Item) {
		got = append(got, it.Payload.(string))
	})
	for p := 0; p < ports; p++ {
		if plan != nil {
			arb.In(p).SetFaultPlan(plan(p))
		}
		for s := 0; s < n; s++ {
			if err := arb.In(p).Push(Item{Payload: fmt.Sprintf("p%d.%d", p, s), Bytes: 64}); err != nil {
				panic(err)
			}
		}
	}
	eng.Run()
	return got
}

// TestArbiterContentionRoundRobin pins the arbitration order when
// every input is saturated at t=0 with equal-size items: each beat
// completes one item per port, and within a beat the ports drain in
// index order — a strict round-robin interleave. This is the fairness
// property Figure 2's "AXIS Arbiter" box promises: no port starves and
// no port gets two slots in one cycle while others wait.
func TestArbiterContentionRoundRobin(t *testing.T) {
	const ports, n = 3, 4
	got := runContended(1, ports, n, nil)
	if len(got) != ports*n {
		t.Fatalf("delivered %d items, want %d", len(got), ports*n)
	}
	var want []string
	for s := 0; s < n; s++ {
		for p := 0; p < ports; p++ {
			want = append(want, fmt.Sprintf("p%d.%d", p, s))
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arbitration order under contention:\n got %v\nwant %v", got, want)
	}
}

// TestArbiterContentionDeterministic reruns the contended workload and
// requires identical interleaving — same-timestamp events must resolve
// by a stable rule, not scheduler accident.
func TestArbiterContentionDeterministic(t *testing.T) {
	a := runContended(1, 4, 8, nil)
	b := runContended(1, 4, 8, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("contended arbitration order not reproducible:\n 1st %v\n 2nd %v", a, b)
	}
}

// TestArbiterPerPortFIFO: whatever the cross-port interleaving, each
// port's own items must arrive in push order even when other ports
// carry different item sizes (different beat counts break the neat
// round-robin pattern but never intra-port ordering).
func TestArbiterPerPortFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	var got []string
	arb := NewArbiter(eng, "arb", 250_000_000, 64, 16, 2, func(it Item) {
		got = append(got, it.Payload.(string))
	})
	sizes := []int{64, 192} // 1-beat vs 3-beat items
	for p := 0; p < 2; p++ {
		for s := 0; s < 6; s++ {
			if err := arb.In(p).Push(Item{Payload: fmt.Sprintf("p%d.%d", p, s), Bytes: sizes[p]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run()
	last := map[byte]int{}
	for _, tag := range got {
		var port byte
		var seq int
		if _, err := fmt.Sscanf(tag, "p%c.%d", &port, &seq); err != nil {
			t.Fatal(err)
		}
		if prev, ok := last[port]; ok && seq != prev+1 {
			t.Fatalf("port %c reordered: %d after %d in %v", port, seq, prev, got)
		}
		last[port] = seq
	}
	if len(got) != 12 {
		t.Fatalf("delivered %d, want 12", len(got))
	}
}

// TestStreamFaultDropSquashesDelivery: an armed Drop plan consumes the
// item's bus beats (timing unchanged) but squashes the sink call and
// counts the loss.
func TestStreamFaultDropSquashesDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewStream(eng, "s", 250_000_000, 64, 8)
	delivered := 0
	s.Connect(func(Item) { delivered++ })
	s.SetFaultPlan(fault.NewPlan(1, "fabric").Set(fault.Drop, 1))
	for i := 0; i < 5; i++ {
		if err := s.Push(Item{Bytes: 128}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0 at drop rate 1", delivered)
	}
	if s.FaultDrops != 5 {
		t.Fatalf("FaultDrops = %d, want 5", s.FaultDrops)
	}
	// Bus time was still consumed: 5 items x 2 beats x 4ns.
	if eng.Now() != sim.Time(40*sim.Nanosecond) {
		t.Fatalf("clock = %v, want 40ns (drops must still occupy beats)", eng.Now())
	}
}

// TestStreamZeroRatePlanIsNoOp: installing a zero-rate plan must leave
// delivery, timing, and the event count bit-identical to an unhooked
// stream — the strict no-op half of the fault-plane contract.
func TestStreamZeroRatePlanIsNoOp(t *testing.T) {
	run := func(armed bool) (order []int, clock sim.Time, steps uint64) {
		eng := sim.NewEngine(1)
		s := NewStream(eng, "s", 250_000_000, 64, 8)
		s.Connect(func(it Item) { order = append(order, it.Payload.(int)) })
		if armed {
			s.SetFaultPlan(fault.NewPlan(1, "fabric")) // all rates zero
		}
		for i := 0; i < 6; i++ {
			if err := s.Push(Item{Payload: i, Bytes: 64}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return order, eng.Now(), eng.Steps()
	}
	bo, bc, bs := run(false)
	ao, ac, as := run(true)
	if !reflect.DeepEqual(bo, ao) || bc != ac || bs != as {
		t.Fatalf("zero-rate plan changed behaviour: order %v vs %v, clock %v vs %v, steps %d vs %d",
			bo, ao, bc, ac, bs, as)
	}
}
