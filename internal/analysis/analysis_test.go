package analysis_test

import (
	"path/filepath"
	"testing"

	"hyperion/internal/analysis"
	"hyperion/internal/analysis/checkers"
	"hyperion/internal/analysis/nodeterm"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		path string
		want analysis.Layer
	}{
		{"hyperion/internal/sim", analysis.LayerModel},
		{"hyperion/internal/nic", analysis.LayerModel},
		{"hyperion/internal/bench", analysis.LayerHarness},
		{"hyperion/cmd/benchctl", analysis.LayerHarness},
		{"hyperion/cmd/hyperlint", analysis.LayerHarness},
		{"hyperion", analysis.LayerExempt},
		{"hyperion/examples/pingpong", analysis.LayerExempt},
		{"hyperion/internal/analysis", analysis.LayerExempt},
		{"hyperion/internal/analysis/nodeterm", analysis.LayerExempt},
		{"hyperion/internal/sim.test", analysis.LayerExempt},
		{"hyperion/internal/sim_test", analysis.LayerExempt},
		// Bare testdata package names classify by suffix.
		{"nodeterm", analysis.LayerModel},
		{"nodeterm_harness", analysis.LayerHarness},
		{"nodeterm_exempt", analysis.LayerExempt},
	}
	for _, c := range cases {
		if got := analysis.Classify(c.path); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSelect(t *testing.T) {
	all := checkers.All()
	if len(all) < 4 {
		t.Fatalf("expected at least 4 analyzers, got %d", len(all))
	}
	sel, err := checkers.Select([]string{"nodeterm", "simtime"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "nodeterm" || sel[1].Name != "simtime" {
		t.Errorf("Select returned wrong analyzers: %v", names(sel))
	}
	if _, err := checkers.Select([]string{"nosuch"}); err == nil {
		t.Error("Select(nosuch) should fail")
	}
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// TestBareAllowComment checks the framework's handling of a
// //hyperlint:allow comment with no justification: the underlying
// finding is suppressed, but the bare comment itself is reported
// under the "allow" pseudo-check.
func TestBareAllowComment(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root)
	dir := filepath.Join("testdata", "src", "framework_suppress")
	pkg, err := loader.LoadDir(dir, "framework_suppress")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{nodeterm.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("expected exactly one finding (the bare allow), got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != "allow" {
		t.Errorf("finding check = %q, want \"allow\"; message: %s", f.Check, f.Message)
	}
}
