package fault

import "testing"

// rolls materializes a plan's first n Drop decisions.
func rolls(p *Plan, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = p.Roll(Drop)
	}
	return out
}

// TestNewPlanIndexedStreams pins the audit finding behind
// NewPlanIndexed: several instances of one layer must draw independent
// fault streams, while each stream stays a pure function of
// (seed, layer, idx) — the property that keeps fault injection
// shard-count invariant when instances move between cluster shards.
func TestNewPlanIndexedStreams(t *testing.T) {
	const n = 256
	mk := func(seed uint64, idx int) []bool {
		return rolls(NewPlanIndexed(seed, "rack.box", idx).Set(Drop, 0.5), n)
	}
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	// Pure function of (seed, layer, idx).
	if !same(mk(7, 3), mk(7, 3)) {
		t.Error("identical (seed, layer, idx) produced different streams")
	}
	// Distinct instances decorrelate. (256 fair coin flips colliding
	// means the streams are identical, not unlucky.)
	if same(mk(7, 0), mk(7, 1)) {
		t.Error("idx 0 and idx 1 share a fault stream")
	}
	// Distinct layers decorrelate at the same index.
	other := rolls(NewPlanIndexed(7, "rack.spine", 0).Set(Drop, 0.5), n)
	if same(mk(7, 0), other) {
		t.Error("layers rack.box and rack.spine share a stream at idx 0")
	}
	// The indexed constructor must not collide with the plain one for
	// any small index — NewPlan(seed, layer) is its own stream.
	plain := rolls(NewPlan(7, "rack.box").Set(Drop, 0.5), n)
	for idx := 0; idx < 8; idx++ {
		if same(plain, mk(7, idx)) {
			t.Errorf("NewPlanIndexed idx %d collides with NewPlan", idx)
		}
	}
}
