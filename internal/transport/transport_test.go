package transport

import (
	"testing"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/wire"
)

// rig builds two endpoints of the same kind on a fresh network.
func rig(t testing.TB, kind Kind) (*sim.Engine, *netsim.Network, Endpoint, Endpoint) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	na, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	nb, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, New(eng, kind, na), New(eng, kind, nb)
}

func TestAllKindsDeliverSmallMessage(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			eng, _, a, b := rig(t, kind)
			var got []Message
			b.OnMessage(func(src netsim.Addr, m Message) {
				if src != "a" {
					t.Errorf("src = %s", src)
				}
				got = append(got, m)
			})
			if err := a.Send("b", Message{Payload: "ping", Bytes: 100}); err != nil {
				t.Fatal(err)
			}
			eng.Run()
			if len(got) != 1 || got[0].Payload != "ping" {
				t.Fatalf("got %v", got)
			}
		})
	}
}

func TestAllKindsDeliverLargeMessage(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			eng, _, a, b := rig(t, kind)
			const size = 1 << 20
			var got int
			b.OnMessage(func(_ netsim.Addr, m Message) {
				if m.Bytes != size || m.Payload != "bulk" {
					t.Errorf("bad message %v", m.Bytes)
				}
				got++
			})
			if err := a.Send("b", Message{Payload: "bulk", Bytes: size}); err != nil {
				t.Fatal(err)
			}
			eng.Run()
			if got != 1 {
				t.Fatalf("delivered %d", got)
			}
		})
	}
}

func TestTooLargeRejected(t *testing.T) {
	for _, kind := range Kinds() {
		_, _, a, _ := rig(t, kind)
		if err := a.Send("b", Message{Bytes: MaxMessageBytes + 1}); err != ErrTooLarge {
			t.Fatalf("%v: err = %v, want ErrTooLarge", kind, err)
		}
	}
}

func TestManyMessagesInOrderReliable(t *testing.T) {
	for _, kind := range []Kind{TCP, RDMA, Homa} {
		t.Run(kind.String(), func(t *testing.T) {
			eng, _, a, b := rig(t, kind)
			// Payloads ride as *wire.Buf so ordering is verified on the
			// zero-copy representation the rpc layer actually sends.
			pool := wire.NewPool(8)
			var got []int
			b.OnMessage(func(_ netsim.Addr, m Message) {
				buf := m.Payload.(*wire.Buf)
				got = append(got, int(wire.LE32At(buf.Bytes(), 0)))
				buf.Release()
			})
			const n = 200
			for i := 0; i < n; i++ {
				buf := pool.Get(4)
				wire.PutLE32At(buf.Bytes(), 0, uint32(i))
				if err := a.Send("b", Message{Payload: buf, Bytes: 4096}); err != nil {
					t.Fatal(err)
				}
			}
			eng.Run()
			if len(got) != n {
				t.Fatalf("delivered %d/%d (stats %+v)", len(got), n, *a.Stats())
			}
			if kind != Homa { // Homa does not guarantee cross-message ordering
				for i, v := range got {
					if v != i {
						t.Fatalf("out of order at %d: %d", i, v)
					}
				}
			}
		})
	}
}

func TestRelativeLatency(t *testing.T) {
	// RDMA must beat TCP on small-message latency (hardware vs software
	// overheads); that ordering is what E14 sweeps.
	lat := func(kind Kind) sim.Duration {
		eng, _, a, b := rig(t, kind)
		var done sim.Time
		b.OnMessage(func(netsim.Addr, Message) { done = eng.Now() })
		_ = a.Send("b", Message{Payload: 1, Bytes: 4096})
		eng.Run()
		return done.Sub(0)
	}
	tcp, rdma, homa := lat(TCP), lat(RDMA), lat(Homa)
	if rdma >= tcp {
		t.Fatalf("rdma %v not faster than tcp %v", rdma, tcp)
	}
	if homa >= tcp {
		t.Fatalf("homa %v not faster than tcp %v", homa, tcp)
	}
}

func TestReliableRecoversFromIncastLoss(t *testing.T) {
	// Many senders blast one receiver; the switch queue drops frames.
	// Reliable transports must still deliver every message.
	for _, kind := range []Kind{TCP, RDMA, Homa} {
		t.Run(kind.String(), func(t *testing.T) {
			eng := sim.NewEngine(1)
			cfg := netsim.DefaultConfig()
			cfg.QueueFrames = 16 // shallow buffer to force drops
			net := netsim.New(eng, cfg)
			const senders = 8
			const perSender = 4
			rxNIC, _ := net.Attach("rx")
			rx := New(eng, kind, rxNIC)
			delivered := 0
			rx.OnMessage(func(netsim.Addr, Message) { delivered++ })
			for i := 0; i < senders; i++ {
				nic, _ := net.Attach(netsim.Addr(rune('a' + i)))
				tx := New(eng, kind, nic)
				for j := 0; j < perSender; j++ {
					if err := tx.Send("rx", Message{Payload: j, Bytes: 256 << 10}); err != nil {
						t.Fatal(err)
					}
				}
			}
			eng.RunUntil(sim.Time(2 * sim.Second))
			if delivered != senders*perSender {
				t.Fatalf("delivered %d/%d (drops=%d)", delivered, senders*perSender, net.Drops)
			}
		})
	}
}

func TestHomaFewerDropsThanRDMAUnderIncast(t *testing.T) {
	// Receiver-driven pacing keeps switch queues shorter: Homa should
	// suffer fewer drops than a window-blasting transport.
	run := func(kind Kind) int64 {
		eng := sim.NewEngine(1)
		cfg := netsim.DefaultConfig()
		cfg.QueueFrames = 32
		net := netsim.New(eng, cfg)
		rxNIC, _ := net.Attach("rx")
		rx := New(eng, kind, rxNIC)
		rx.OnMessage(func(netsim.Addr, Message) {})
		for i := 0; i < 16; i++ {
			nic, _ := net.Attach(netsim.Addr(rune('a' + i)))
			tx := New(eng, kind, nic)
			_ = tx.Send("rx", Message{Payload: i, Bytes: 1 << 20})
		}
		eng.RunUntil(sim.Time(sim.Second))
		return net.Drops
	}
	homaDrops, rdmaDrops := run(Homa), run(RDMA)
	if homaDrops >= rdmaDrops {
		t.Fatalf("homa drops %d not below rdma drops %d", homaDrops, rdmaDrops)
	}
}

func TestUDPLosesUnderCongestionAndCountsIt(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := netsim.DefaultConfig()
	cfg.QueueFrames = 8
	net := netsim.New(eng, cfg)
	rxNIC, _ := net.Attach("rx")
	rx := New(eng, UDP, rxNIC)
	delivered := 0
	rx.OnMessage(func(netsim.Addr, Message) { delivered++ })
	var txs []Endpoint
	for i := 0; i < 8; i++ {
		nic, _ := net.Attach(netsim.Addr(rune('a' + i)))
		txs = append(txs, New(eng, UDP, nic))
	}
	const per = 20
	for _, tx := range txs {
		for j := 0; j < per; j++ {
			_ = tx.Send("rx", Message{Payload: j, Bytes: 64 << 10})
		}
	}
	eng.Run()
	if net.Drops == 0 {
		t.Skip("no congestion induced; adjust parameters")
	}
	if delivered == 8*per {
		t.Fatal("UDP delivered everything despite switch drops")
	}
	if rx.Stats().LostMessages == 0 {
		t.Fatal("lost messages not accounted")
	}
}

func TestTCPRetransmitsAreCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := netsim.DefaultConfig()
	cfg.QueueFrames = 4
	net := netsim.New(eng, cfg)
	rxNIC, _ := net.Attach("rx")
	rx := New(eng, TCP, rxNIC)
	got := 0
	rx.OnMessage(func(netsim.Addr, Message) { got++ })
	nic1, _ := net.Attach("s1")
	nic2, _ := net.Attach("s2")
	t1, t2 := New(eng, TCP, nic1), New(eng, TCP, nic2)
	_ = t1.Send("rx", Message{Bytes: 512 << 10})
	_ = t2.Send("rx", Message{Bytes: 512 << 10})
	eng.RunUntil(sim.Time(sim.Second))
	if got != 2 {
		t.Fatalf("delivered %d/2", got)
	}
	if net.Drops > 0 && t1.Stats().Retransmits+t2.Stats().Retransmits == 0 {
		t.Fatal("drops occurred but no retransmits counted")
	}
}

func TestHomaSRPTFavorsShortMessages(t *testing.T) {
	// A short message arriving while a long one is in flight should
	// finish well before the long one.
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	rxNIC, _ := net.Attach("rx")
	rx := New(eng, Homa, rxNIC)
	finish := map[int]sim.Time{}
	rx.OnMessage(func(_ netsim.Addr, m Message) { finish[m.Payload.(int)] = eng.Now() })
	nicL, _ := net.Attach("long")
	nicS, _ := net.Attach("short")
	long := New(eng, Homa, nicL)
	short := New(eng, Homa, nicS)
	_ = long.Send("rx", Message{Payload: 1, Bytes: 8 << 20})
	eng.RunFor(20 * sim.Microsecond)
	_ = short.Send("rx", Message{Payload: 2, Bytes: 8 << 10})
	eng.Run()
	if finish[2] == 0 || finish[1] == 0 {
		t.Fatalf("missing completions: %v", finish)
	}
	if finish[2] >= finish[1] {
		t.Fatalf("short message finished at %v, after long at %v", finish[2], finish[1])
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, _, a, b := rig(t, RDMA)
	b.OnMessage(func(netsim.Addr, Message) {})
	for i := 0; i < 10; i++ {
		_ = a.Send("b", Message{Payload: i, Bytes: 10 * 4096})
	}
	eng.Run()
	st := a.Stats()
	if st.Sent != 10 {
		t.Fatalf("Sent = %d", st.Sent)
	}
	if st.DataFrames != 100 {
		t.Fatalf("DataFrames = %d, want 100", st.DataFrames)
	}
	if b.Stats().Delivered != 10 {
		t.Fatalf("Delivered = %d", b.Stats().Delivered)
	}
}

func TestFragMath(t *testing.T) {
	cases := []struct {
		bytes, frags int
	}{
		{0, 1}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {1 << 20, 256},
	}
	for _, c := range cases {
		if got := fragsFor(c.bytes); got != c.frags {
			t.Errorf("fragsFor(%d) = %d, want %d", c.bytes, got, c.frags)
		}
	}
	if w := fragWire(8192, 0); w != 4096+headerBytes {
		t.Errorf("fragWire(8192,0) = %d", w)
	}
	if w := fragWire(4097, 1); w != 1+headerBytes {
		t.Errorf("fragWire(4097,1) = %d", w)
	}
}

func BenchmarkRDMA4K(b *testing.B) {
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	na, _ := net.Attach("a")
	nb, _ := net.Attach("b")
	a := New(eng, RDMA, na)
	bb := New(eng, RDMA, nb)
	bb.OnMessage(func(netsim.Addr, Message) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Send("b", Message{Payload: i, Bytes: 4096})
		if i%64 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
