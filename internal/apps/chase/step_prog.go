//go:build ignore

// Per-hop B+ tree step program in restricted Go, compiled by
// internal/ebpf/gofront at service start. It is the frontend twin of
// the hand-written StepProgram in program.go: the differential tests
// hold the two to the same instruction shape, so edits here must stay
// in lockstep with the assembly (and vice versa).
//
// Array lengths are sized to the verified envelope, not the logical
// node capacity: the count guard admits count == 200 (leaf) and 150
// (internal), so after the unrolled search `lo` can statically reach
// one past the last logical slot, and after the equal-key bump the
// child index reaches count+1. The extra trailing slots keep every
// access inside the node page — exactly the byte arithmetic the
// hand-written program relies on.
package prog

// LeafNode mirrors internal/storage/bptree's leaf page layout.
type LeafNode struct {
	Kind  uint8
	Count uint16      `hyperion:"offset=2"`
	Next  uint64      `hyperion:"offset=8"`
	Keys  [201]uint64 `hyperion:"offset=24"`
	Vals  [201]uint64 `hyperion:"offset=1624"`
}

// Child is one internal-node child object id (Hi, Lo words).
type Child struct {
	Hi uint64
	Lo uint64
}

// IntNode mirrors the internal page layout.
type IntNode struct {
	Kind  uint8
	Count uint16      `hyperion:"offset=2"`
	Keys  [151]uint64 `hyperion:"offset=8"`
	Kids  [152]Child  `hyperion:"offset=1208"`
}

// Ctx is the per-hop context: request header then the raw node page.
// Leaf and Int overlay the same page bytes (offset 64) — the Kind
// byte picks the variant, like a C union.
type Ctx struct {
	Key    uint64
	Action uint8    `hyperion:"offset=8"`
	Value  uint64   `hyperion:"offset=16"`
	NextHi uint64   `hyperion:"offset=24"`
	NextLo uint64   `hyperion:"offset=32"`
	Leaf   LeafNode `hyperion:"offset=64"`
	Int    IntNode  `hyperion:"offset=64"`
	_      uint8    `hyperion:"offset=4159"`
}

// Actions (must match chase.Act*).
const (
	ActDescend  = 0
	ActFound    = 1
	ActNotFound = 2
	ActCorrupt  = 3
)

// Step binary-searches the node for ctx.Key and writes back either
// the found value or the next node to fetch. Loop-free by
// construction: the searches unroll to 8 straight-line rounds.
func Step(ctx *Ctx) uint64 {
	var lo, k uint64
	key := ctx.Key
	kind := ctx.Leaf.Kind
	hi := uint64(ctx.Leaf.Count)
	if kind == 1 {
		goto leaf
	}
	if kind == 2 {
		goto internal
	}
	ctx.Action = ActCorrupt
	return ActCorrupt

leaf:
	if hi > 200 {
		goto corrupt
	}
	lo = 0
	for r := 0; r < 8; r++ {
		if lo >= hi {
			continue
		}
		mid := (lo + hi) / 2
		k = ctx.Leaf.Keys[mid]
		if k >= key {
			goto higher
		}
		lo = mid + 1
		continue
	higher:
		hi = mid
	}
	hi = uint64(ctx.Leaf.Count)
	if lo >= hi {
		goto miss
	}
	k = ctx.Leaf.Keys[lo]
	if k != key {
		goto miss
	}
	ctx.Value = ctx.Leaf.Vals[lo]
	ctx.Action = ActFound
	return ActFound
miss:
	ctx.Action = ActNotFound
	return ActNotFound

internal:
	if hi > 150 {
		goto corrupt
	}
	lo = 0
	for r := 0; r < 8; r++ {
		if lo >= hi {
			continue
		}
		mid := (lo + hi) / 2
		k = ctx.Int.Keys[mid]
		if k >= key {
			goto higher
		}
		lo = mid + 1
		continue
	higher:
		hi = mid
	}
	hi = uint64(ctx.Int.Count)
	if lo >= hi {
		goto kid
	}
	k = ctx.Int.Keys[lo]
	if k != key {
		goto kid
	}
	lo += 1
kid:
	ctx.NextHi = ctx.Int.Kids[lo].Hi
	ctx.NextLo = ctx.Int.Kids[lo].Lo
	ctx.Action = ActDescend
	return ActDescend

corrupt:
	ctx.Action = ActCorrupt
	return ActCorrupt
}
