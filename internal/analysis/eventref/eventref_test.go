package eventref_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/eventref"
)

func TestEventref(t *testing.T) {
	analysistest.Run(t, "../testdata", eventref.Analyzer,
		"eventref", "eventref_harness")
}
