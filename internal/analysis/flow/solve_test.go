package flow

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// ---- a toy forward problem: track variables holding an un-released
// resource (`x := get()` gens, `x.Release()` kills, merge = union) ----

type ownState map[string]bool

type toyOwn struct{}

func (toyOwn) Boundary() State { return ownState{} }

func (toyOwn) Transfer(n ast.Node, s State) State {
	st := s.(ownState)
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "get" {
					if lhs, ok := n.Lhs[0].(*ast.Ident); ok {
						out := cloneOwn(st)
						out[lhs.Name] = true
						return out
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if id, ok := sel.X.(*ast.Ident); ok && st[id.Name] {
					out := cloneOwn(st)
					delete(out, id.Name)
					return out
				}
			}
		}
	}
	return st
}

func (toyOwn) FlowEdge(e Edge, s State) State { return s }

func (toyOwn) Merge(a, b State) State {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := cloneOwn(a.(ownState))
	for k := range b.(ownState) {
		out[k] = true
	}
	return out
}

func (toyOwn) Equal(a, b State) bool { return ownEq(a, b) }

func cloneOwn(s ownState) ownState {
	out := make(ownState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func ownEq(a, b State) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	as, bs := a.(ownState), b.(ownState)
	if len(as) != len(bs) {
		return false
	}
	for k := range as {
		if !bs[k] {
			return false
		}
	}
	return true
}

func keys(s State) string {
	if s == nil {
		return "<unreached>"
	}
	var ks []string
	for k := range s.(ownState) {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

func TestSolveForwardLeak(t *testing.T) {
	tests := []struct {
		name   string
		body   string
		atExit string // owned set flowing into Exit
	}{
		{
			name: "balanced",
			body: `
	b := get()
	b.Release()
	return nil`,
			atExit: "",
		},
		{
			name: "leak_on_early_return",
			body: `
	b := get()
	if bad {
		return errBad
	}
	b.Release()
	return nil`,
			atExit: "b",
		},
		{
			name: "released_on_both_arms",
			body: `
	b := get()
	if bad {
		b.Release()
		return errBad
	}
	b.Release()
	return nil`,
			atExit: "",
		},
		{
			name: "defer_release",
			body: `
	b := get()
	defer b.Release()
	if bad {
		return errBad
	}
	return nil`,
			atExit: "",
		},
		{
			name: "loop_reacquire",
			body: `
	for i := 0; i < n; i++ {
		b := get()
		if flaky {
			continue
		}
		b.Release()
	}
	return nil`,
			atExit: "b",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, _ := buildSrc(t, tt.body)
			res := Solve(g, toyOwn{}, Forward)
			if got := keys(res.In[g.Exit]); got != tt.atExit {
				t.Errorf("owned at exit = %q, want %q", got, tt.atExit)
			}
		})
	}
}

// ---- a backward liveness problem, proving the solver iterates loops
// to fixpoint against the flow direction ----

type liveness struct{}

func (liveness) Boundary() State { return ownState{} }

func (liveness) Transfer(n ast.Node, s State) State {
	out := cloneOwn(s.(ownState))
	// kill defs, then gen uses (backward order within one node is
	// def-before-use for the simple shapes tested here)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				delete(out, id.Name)
			}
		}
		for _, r := range as.Rhs {
			genUses(r, out)
		}
		return out
	}
	genUses(n, out)
	return out
}

func genUses(n ast.Node, out ownState) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name != "_" {
			// parsed without types: approximate "variable" as lowercase
			// single-letter idents used by the test bodies
			if len(id.Name) == 1 && id.Name[0] >= 'a' && id.Name[0] <= 'z' {
				out[id.Name] = true
			}
		}
		return true
	})
}

func (liveness) FlowEdge(e Edge, s State) State { return s }

func (liveness) Merge(a, b State) State { return toyOwn{}.Merge(a, b) }

func (liveness) Equal(a, b State) bool { return ownEq(a, b) }

func TestSolveBackwardLiveness(t *testing.T) {
	// x stays live around the loop back-edge: computing that requires a
	// second visit to the loop head after the body's first pass.
	body := `
	x := seed()
	s := zero()
	for i := 0; i < n; i++ {
		s = add(s, x)
	}
	return use(s)`
	g, _ := buildSrc(t, body)
	res := Solve(g, liveness{}, Backward)

	// Find the for.body block; x and s must both be live entering it
	// (backward Out = state at block start).
	var bodyBlk *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "for.body" {
			bodyBlk = blk
		}
	}
	if bodyBlk == nil {
		t.Fatal("no for.body block")
	}
	live := res.Out[bodyBlk]
	if live == nil {
		t.Fatal("for.body unreached by backward analysis")
	}
	ls := live.(ownState)
	for _, want := range []string{"x", "s", "i", "n"} {
		if !ls[want] {
			t.Errorf("%s not live at loop body start; live = %s", want, keys(live))
		}
	}
	// After the loop, x is dead.
	var after *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "for.after" {
			after = blk
		}
	}
	if ls := res.Out[after].(ownState); ls["x"] {
		t.Errorf("x should be dead after the loop; live = %s", keys(res.Out[after]))
	}
}

// TestSolveEdgeRefinement proves FlowEdge sees branch conditions: a
// problem that drops the owned mark when crossing the false edge of an
// `err != nil` test (the conditional-send custody rule).
type condOwn struct{ toyOwn }

func (condOwn) FlowEdge(e Edge, s State) State {
	if e.Cond == nil || s == nil {
		return s
	}
	be, ok := e.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return s
	}
	if id, ok := be.X.(*ast.Ident); ok && id.Name == "err" && e.Kind == EdgeFalse {
		// err == nil: transfer succeeded, obligation moves to callee
		return ownState{}
	}
	return s
}

func TestSolveEdgeRefinement(t *testing.T) {
	body := `
	b := get()
	err := send(b)
	if err != nil {
		b.Release()
		return err
	}
	return nil`
	g, _ := buildSrc(t, body)
	res := Solve(g, condOwn{}, Forward)
	if got := keys(res.In[g.Exit]); got != "" {
		t.Errorf("owned at exit = %q, want empty (both paths discharge)", got)
	}
}

// TestSolveDeterministic runs the same analysis twice and compares the
// rendered fixpoint.
func TestSolveDeterministic(t *testing.T) {
	body := `
	b := get()
	c := get()
	if x {
		b.Release()
	} else {
		c.Release()
	}
	return nil`
	render := func() string {
		g, _ := buildSrc(t, body)
		res := Solve(g, toyOwn{}, Forward)
		var sb strings.Builder
		for _, blk := range g.Blocks {
			sb.WriteString(keys(res.In[blk]) + "|" + keys(res.Out[blk]) + "\n")
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("nondeterministic fixpoint:\n%s\nvs\n%s", a, b)
	}
}
