// Package framework_suppress is hyperlint golden-test input for the
// framework itself: an allow comment with no justification suppresses
// the finding but earns an "allow" finding of its own.
package framework_suppress

import "time"

func bare() time.Time {
	//hyperlint:allow(nodeterm)
	return time.Now()
}
