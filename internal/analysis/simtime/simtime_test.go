package simtime_test

import (
	"testing"

	"hyperion/internal/analysis/analysistest"
	"hyperion/internal/analysis/simtime"
)

func TestSimtime(t *testing.T) {
	analysistest.Run(t, "../testdata", simtime.Analyzer,
		"simtime", "simtime_harness", "simtime_exempt")
}
