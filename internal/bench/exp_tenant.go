package bench

import (
	"fmt"

	"hyperion/internal/apps/fail2ban"
	"hyperion/internal/fabric"
	"hyperion/internal/fault"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/tenant"
	"hyperion/internal/trace"
)

// DefaultTenantShards is the shard count behind Tenants() — like E17,
// the golden universe runs the sharded kernel. E18's sweep cells share
// no state and exchange no envelopes, so the table is byte-identical
// for every shard count; the golden hash pins the control-plane model,
// not the layout.
const DefaultTenantShards = 2

const (
	// tenantAuthTag authorizes every bitstream in the sweep (the
	// config-engine check of §2.2 applies to tenants like anyone else).
	tenantAuthTag = "hyperion-tenant-key"
	// tenantCap is the admission cap: below the 16-tenant sweep point,
	// so the largest cells exercise the rejection path.
	tenantCap = 14
	// tenantHorizon ends traffic and scheduling; engines then drain.
	// 50 ms is long enough for a compiled eHDL filter (≈ 19 ms of
	// partial reconfiguration at 400 MB/s) to earn useful service.
	tenantHorizon = sim.Time(50 * sim.Millisecond)
	// tenantLookahead is the conservative window width. Cells never
	// communicate, so it is purely a barrier-frequency knob.
	tenantLookahead = 500 * sim.Microsecond
	// tenantChurnAt departs every fourth tenant mid-run; tenantLateAt
	// admits a late arrival into the churned-out capacity.
	tenantChurnAt = sim.Time(30 * sim.Millisecond)
	tenantLateAt  = sim.Time(35 * sim.Millisecond)
)

// Offload classes in the tenant mix. Class is a pure function of the
// arrival index — names are display labels only, which the relabeling
// metamorphic relation depends on.
const (
	classQuiet  = iota // latency-sensitive, small requests, tight SLO
	classNoisy         // antagonist: big bursts, no SLO, weight 1
	classEcho          // mid-size echo offload
	classScan          // deep scan pipeline, large requests
	classFilter        // real compiled fail2ban eBPF→eHDL filter
)

// tenantCellCfg shapes one sweep cell.
type tenantCellCfg struct {
	idx   int // cell index: seeds the cell's generators and fault plan
	n     int // tenant arrivals (before the late one)
	lease sim.Duration
	rate  float64 // fault-plane slot-eviction rate
}

// tenantCellRun is one live cell: its controller plus the offered-load
// ledger the table reports.
type tenantCellRun struct {
	cfg      tenantCellCfg
	ctl      *tenant.Controller
	accepted int64  // requests accepted into tenant FIFOs
	quiet    string // the quiet tenant's (possibly relabeled) name
}

// tenantClass maps an arrival index to its offload class.
func tenantClass(i int) int {
	switch i {
	case 0:
		return classQuiet
	case 1:
		return classNoisy
	}
	switch i % 3 {
	case 0:
		return classEcho
	case 1:
		return classScan
	default:
		return classFilter
	}
}

// tenantSpec builds arrival i's spec: name, weight, SLO, and a fresh
// image (filters compile their own pipeline with private map state, so
// two filter tenants never share a ban table).
func tenantSpec(i int) tenant.Spec {
	echo := func(name string, mib int64, depth int) *fabric.Bitstream {
		return &fabric.Bitstream{
			Name: name, SizeBytes: mib << 20,
			Uses:  fabric.Resources{LUTs: 30_000, FFs: 60_000, BRAM: 48, DSP: 24},
			Depth: depth, II: 1, AuthTag: tenantAuthTag,
			Process: func(in any) any { return in },
		}
	}
	switch tenantClass(i) {
	case classQuiet:
		return tenant.Spec{Name: "aa-quiet", Weight: 4, Image: echo("quiet", 1, 12),
			SLO: tenant.SLO{P99: 25 * sim.Microsecond, Goodput: 6000}}
	case classNoisy:
		return tenant.Spec{Name: "ab-noisy", Weight: 1, Image: echo("noisy", 4, 24)}
	case classEcho:
		return tenant.Spec{Name: fmt.Sprintf("t%02d-echo", i), Weight: 1 + i%4, Image: echo("echo", 2, 16),
			SLO: tenant.SLO{P99: 200 * sim.Microsecond, Goodput: 2000}}
	case classScan:
		img := echo("scan", 4, 48)
		img.II = 2
		return tenant.Spec{Name: fmt.Sprintf("t%02d-scan", i), Weight: 1 + i%4, Image: img,
			SLO: tenant.SLO{P99: 500 * sim.Microsecond, Goodput: 1000}}
	default:
		pipe, _, _, err := fail2ban.NewPipeline(fmt.Sprintf("f2b%02d", i), tenantAuthTag, 3)
		if err != nil {
			panic("bench: fail2ban pipeline: " + err.Error())
		}
		return tenant.Spec{Name: fmt.Sprintf("t%02d-filter", i), Weight: 1 + i%4, Image: pipe.Bitstream(),
			SLO: tenant.SLO{P99: 500 * sim.Microsecond, Goodput: 1000}}
	}
}

// trafficShape returns a class's open-loop offered load: submit
// interval, requests per tick, and bus bytes per request.
func trafficShape(class int) (interval sim.Duration, burst, bytes int) {
	switch class {
	case classQuiet:
		return 100 * sim.Microsecond, 1, 64
	case classNoisy:
		return 50 * sim.Microsecond, 4, 64 << 10
	case classScan:
		return 100 * sim.Microsecond, 1, 4096
	default:
		return 100 * sim.Microsecond, 1, 128
	}
}

// tenantMix derives a cell-private generator seed (same finalizer
// constant the fault plane's indexed plans use).
func tenantMix(seed uint64, idx int) uint64 {
	return seed ^ (0x9e3779b97f4a7c15 * (uint64(idx) + 1))
}

// startTenantCell builds one sweep cell on eng and schedules its whole
// life: staggered arrivals, per-class open-loop traffic, mid-run
// departures, a late arrival, and (rate > 0) the fault plane's slot
// evictions. Cell randomness comes only from the cell's own generator
// — never the engine's — so results are shard-layout invariant.
// rename relabels tenant display names (nil = identity); every
// scheduling input is index-derived, so renaming can only permute
// report rows.
func startTenantCell(eng *sim.Engine, seed uint64, cc tenantCellCfg, rec *telemetry.Recorder, rename func(string) string) *tenantCellRun {
	if rename == nil {
		rename = func(s string) string { return s }
	}
	fab := fabric.New(eng, fabric.DefaultConfig(), tenantAuthTag)
	tcfg := tenant.DefaultConfig()
	tcfg.MaxTenants = tenantCap
	tcfg.Lease = cc.lease
	ctl := tenant.New(eng, fab, tcfg)
	if rec != nil {
		ctl.SetRecorder(rec)
	}
	ctl.SetHorizon(tenantHorizon)
	if cc.rate > 0 {
		plan := fault.NewPlanIndexed(seed, "tenant", cc.idx).Set(fault.Evict, cc.rate)
		// rate scales outage frequency: 1% ≈ one eviction per 10 ms of
		// box up-time, 5% ≈ one per 2 ms — bruising but survivable
		// against multi-millisecond partial-reconfiguration times.
		meanUp := sim.Duration(float64(100*sim.Microsecond) / cc.rate)
		ctl.ArmEvictions(plan, tenantHorizon, meanUp, 500*sim.Microsecond)
	}
	rnd := sim.NewRand(tenantMix(seed, cc.idx))
	cell := &tenantCellRun{cfg: cc, ctl: ctl, quiet: rename("aa-quiet")}
	for i := 0; i < cc.n; i++ {
		spec := tenantSpec(i)
		spec.Name = rename(spec.Name)
		departAt := sim.Time(0)
		if i%4 == 3 {
			departAt = tenantChurnAt
		}
		cell.admit(eng, rnd, sim.Time(0).Add(sim.Duration(i+1)*(300*sim.Microsecond)), spec, tenantClass(i), departAt)
	}
	late := tenant.Spec{
		Name: rename("zz-late"), Weight: 2,
		Image: tenantSpec(0).Image,
		SLO:   tenant.SLO{P99: 200 * sim.Microsecond, Goodput: 1000},
	}
	cell.admit(eng, rnd, tenantLateAt, late, classEcho, 0)
	return cell
}

// admit schedules one tenant's arrival and, on admission, its traffic
// loop and optional departure. Rejections are the admission
// controller's business — the cell just moves on.
func (cell *tenantCellRun) admit(eng *sim.Engine, rnd *sim.Rand, at sim.Time, spec tenant.Spec, class int, departAt sim.Time) {
	interval, burst, bytes := trafficShape(class)
	eng.At(at, "e18.arrive:"+spec.Name, func() {
		h, err := cell.ctl.Admit(spec)
		if err != nil {
			return // counted in ctl.Rejected
		}
		if departAt > 0 {
			eng.At(departAt, "e18.depart:"+spec.Name, func() {
				if derr := cell.ctl.Depart(h.ID); derr != nil {
					panic("bench: e18 depart: " + derr.Error())
				}
			})
		}
		var tick func()
		tick = func() {
			if eng.Now() >= tenantHorizon || h.State == tenant.StateDeparted {
				return
			}
			for b := 0; b < burst; b++ {
				var payload any
				if class == classFilter {
					payload = trace.Packet{
						SrcIP: uint32(1 + rnd.Intn(64)), DstPort: 22, Proto: 6,
						Bytes: 512, AuthFail: rnd.Intn(4) == 0,
					}.Marshal()
				}
				if cell.ctl.Submit(h.ID, payload, bytes, nil) == nil {
					cell.accepted++
				}
				// Refusals (not active, FIFO full) are the client's
				// retry signal; the report's retry column counts them.
			}
			eng.After(interval, "e18.tick:"+spec.Name, tick)
		}
		eng.After(interval, "e18.tick:"+spec.Name, tick)
	})
}

// row folds the finished cell into one table row.
func (cell *tenantCellRun) row(t *sim.Table) {
	window := tenantHorizon.Sub(sim.Time(0))
	rows := cell.ctl.Report(window)
	var ok, retry, failed int64
	viol := 0
	var quietP99, worst sim.Duration
	for _, row := range rows {
		ok += row.Completed
		retry += row.Retryable
		failed += row.Failed
		if row.ViolLat || row.ViolGood {
			viol++
		}
		if row.Name == cell.quiet {
			quietP99 = row.P99
		}
		if row.P99 > worst {
			worst = row.P99
		}
	}
	lease := "static"
	if cell.cfg.lease > 0 {
		lease = cell.cfg.lease.String()
	}
	ctl := cell.ctl
	t.AddRow(itoa(int64(cell.cfg.n)), lease, pct(cell.cfg.rate),
		itoa(ctl.Admitted), itoa(ctl.Rejected), itoa(ctl.Reconfigs),
		itoa(ctl.Preempts), itoa(ctl.Evictions),
		itoa(cell.accepted), itoa(ok), itoa(retry), itoa(failed),
		itoa(int64(viol)), quietP99.String(), worst.String())
}

// Tenants (E18) sweeps the multi-tenant control plane: tenant count ×
// slot-lease policy × fault-plane eviction rate, every cell a full
// admission/placement/reconfiguration/churn scenario over its own
// five-slot fabric with a weighted-fair bus in front. The mix holds a
// tight-SLO quiet tenant, a big-burst antagonist, and class-rotated
// offloads including compiled fail2ban eBPF filters, so the table
// doubles as the isolation story: the quiet p99 column should not
// follow the antagonist or the fault rate.
func Tenants(seed uint64) Result { return tenantRun(seed, DefaultTenantShards, nil) }

// TenantsSharded is Tenants with an explicit shard count — the layout
// knob behind `benchctl -shards` and the shard-count-invariance sweep.
// The Result must be byte-identical to Tenants at the same seed.
func TenantsSharded(seed uint64, shards int) Result { return tenantRun(seed, shards, nil) }

// TenantsTraced is Tenants with the telemetry plane armed: per-cell
// child recorders, per-tenant child processes under them, request
// spans through WFQ and slot. Traced runs use one shard (a recorder
// sink is single-threaded state); by shard-count invariance the Result
// still matches Tenants at the same seed.
func TenantsTraced(seed uint64, rec *telemetry.Recorder) Result { return tenantRun(seed, 1, rec) }

func tenantRun(seed uint64, shards int, rec *telemetry.Recorder) Result {
	if shards <= 0 {
		shards = 1
	}
	r := Result{ID: "E18", Title: "multi-tenant control plane — admission, slot leases, SLO isolation under churn"}
	r.Table.Header = []string{"tenants", "lease", "fault", "adm", "rej", "reconf", "preempt", "evict",
		"ops", "ok", "retry", "err", "viol", "quiet p99", "worst p99"}
	cl := sim.NewCluster(shards, seed, tenantLookahead)
	var cells []*tenantCellRun
	idx := 0
	for _, n := range []int{4, 10, 16} {
		for _, lease := range []sim.Duration{0, 2 * sim.Millisecond} {
			for _, rate := range []float64{0, 0.01, 0.05} {
				eng := cl.Shard(idx % shards).Engine()
				var crec *telemetry.Recorder
				if rec != nil {
					crec = rec.Child(fmt.Sprintf("e18.cell%02d", idx))
				}
				cells = append(cells, startTenantCell(eng, seed,
					tenantCellCfg{idx: idx, n: n, lease: lease, rate: rate}, crec, nil))
				idx++
			}
		}
	}
	cl.Run()
	for _, cell := range cells {
		if err := cell.ctl.CheckInvariants(); err != nil {
			panic("bench: e18 invariants: " + err.Error())
		}
		cell.row(&r.Table)
	}
	r.Steps += cl.Steps()
	if now := cl.Now(); now > r.SimTime {
		r.SimTime = now
	}
	r.Notes = append(r.Notes,
		"cells are independent LP-less islands round-robined over conservative-PDES shards; the table is byte-identical for every shard count",
		fmt.Sprintf("admission cap %d of 16 offered tenants; every fourth tenant departs at %v and a late tenant arrives at %v",
			tenantCap, tenantChurnAt, tenantLateAt))
	return r
}

// TenantScenario runs a single E18-style cell (cell index 0) on a
// plain engine — the `hyperionctl tenants` form — returning both the
// one-row summary and the per-tenant SLO report.
func TenantScenario(seed uint64, tenants int, lease sim.Duration, faultRate float64) (Result, []tenant.Row) {
	return tenantScenario(seed, tenants, lease, faultRate, nil)
}

// TenantScenarioRelabeled is TenantScenario with tenant display names
// mapped through rename — the hook behind the relabeling metamorphic
// relation: names are pure labels, so a renamed run must produce the
// same rows up to reordering by the new names.
func TenantScenarioRelabeled(seed uint64, tenants int, lease sim.Duration, faultRate float64, rename func(string) string) (Result, []tenant.Row) {
	return tenantScenario(seed, tenants, lease, faultRate, rename)
}

func tenantScenario(seed uint64, tenants int, lease sim.Duration, faultRate float64, rename func(string) string) (Result, []tenant.Row) {
	eng := sim.NewEngine(seed)
	cell := startTenantCell(eng, seed, tenantCellCfg{idx: 0, n: tenants, lease: lease, rate: faultRate}, nil, rename)
	eng.Run()
	if err := cell.ctl.CheckInvariants(); err != nil {
		panic("bench: tenant scenario invariants: " + err.Error())
	}
	r := Result{ID: "E18", Title: "tenant scenario — one cell of the E18 sweep"}
	r.Table.Header = []string{"tenants", "lease", "fault", "adm", "rej", "reconf", "preempt", "evict",
		"ops", "ok", "retry", "err", "viol", "quiet p99", "worst p99"}
	cell.row(&r.Table)
	r.observe(eng)
	return r, cell.ctl.Report(tenantHorizon.Sub(sim.Time(0)))
}
