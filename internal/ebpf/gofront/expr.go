package gofront

import (
	"go/ast"
	"go/token"
	"strconv"

	"hyperion/internal/ebpf"
)

// is32 reports whether arithmetic on t uses the 32-bit ALU class.
// Sub-32-bit types are storage-only; arithmetic on them is rejected
// before this is consulted.
func is32(t IntType) bool { return t.Bits == 32 }

// aluForToken maps a Go arithmetic operator to the eBPF ALU selector.
func aluForToken(tok token.Token) (uint8, bool) {
	switch tok {
	case token.ADD:
		return ebpf.ALUAdd, true
	case token.SUB:
		return ebpf.ALUSub, true
	case token.MUL:
		return ebpf.ALUMul, true
	case token.QUO:
		return ebpf.ALUDiv, true
	case token.REM:
		return ebpf.ALUMod, true
	case token.AND:
		return ebpf.ALUAnd, true
	case token.OR:
		return ebpf.ALUOr, true
	case token.XOR:
		return ebpf.ALUXor, true
	case token.SHL:
		return ebpf.ALULsh, true
	case token.SHR:
		return ebpf.ALURsh, true
	}
	return 0, false
}

// jmpForToken maps a Go comparison to the eBPF jump selector, picking
// the signed variant when signed is set.
func jmpForToken(tok token.Token, signed bool) (uint8, bool) {
	switch tok {
	case token.EQL:
		return ebpf.JmpEq, true
	case token.NEQ:
		return ebpf.JmpNe, true
	case token.LSS:
		if signed {
			return ebpf.JmpSLt, true
		}
		return ebpf.JmpLt, true
	case token.LEQ:
		if signed {
			return ebpf.JmpSLe, true
		}
		return ebpf.JmpLe, true
	case token.GTR:
		if signed {
			return ebpf.JmpSGt, true
		}
		return ebpf.JmpGt, true
	case token.GEQ:
		if signed {
			return ebpf.JmpSGe, true
		}
		return ebpf.JmpGe, true
	}
	return 0, false
}

// tryConst evaluates e as a compile-time constant, silently failing
// on anything runtime-valued. Unlike constExpr it is scope-aware:
// locals shadow package constants, and unrolled loop variables are
// per-copy constants.
func (l *lowerer) tryConst(e ast.Expr) (int64, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if lc := l.lookup(x.Name); lc != nil {
			return lc.cval, lc.isConst
		}
		v, ok := l.c.consts[x.Name]
		return v, ok
	case *ast.BasicLit:
		if x.Kind != token.INT {
			return 0, false
		}
		if v, err := strconv.ParseInt(x.Value, 0, 64); err == nil {
			return v, true
		}
		if u, err := strconv.ParseUint(x.Value, 0, 64); err == nil {
			return int64(u), true
		}
		return 0, false
	case *ast.UnaryExpr:
		v, ok := l.tryConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		case token.XOR:
			return ^v, true
		}
		return 0, false
	case *ast.BinaryExpr:
		a, ok := l.tryConst(x.X)
		if !ok {
			return 0, false
		}
		b, ok := l.tryConst(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false // runtime path reports division by zero
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.SHL:
			return a << uint64(b), true
		case token.SHR:
			return a >> uint64(b), true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
		return 0, false
	}
	return 0, false
}

// typeOf infers an expression's frontend type; nil means untyped
// constant (adapts to context). It never emits code.
func (l *lowerer) typeOf(e ast.Expr) Type {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if lc := l.lookup(x.Name); lc != nil {
			if lc.isConst {
				return nil
			}
			return lc.typ
		}
		return nil // package const, nil, or undeclared (diagnosed at lowering)
	case *ast.BasicLit:
		return nil
	case *ast.BinaryExpr:
		if t := l.typeOf(x.X); t != nil {
			return t
		}
		return l.typeOf(x.Y)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if id, ok := x.X.(*ast.Ident); ok {
				if lc := l.lookup(id.Name); lc != nil {
					return PtrType{Elem: lc.typ}
				}
			}
			return nil
		}
		return l.typeOf(x.X)
	case *ast.StarExpr:
		if pt, ok := l.typeOf(x.X).(PtrType); ok {
			return pt.Elem
		}
		return nil
	case *ast.SelectorExpr, *ast.IndexExpr:
		return l.refType(x)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if it, ok2 := intTypes[id.Name]; ok2 {
				return it
			}
			if h, ok2 := l.c.helpers[id.Name]; ok2 {
				return h.result
			}
		}
		return nil
	}
	return nil
}

// refType resolves the type of a ctx field/index path without
// emitting code or diagnostics.
func (l *lowerer) refType(e ast.Expr) Type {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		base := l.refType(x.X)
		if base == nil {
			return nil
		}
		if pt, ok := base.(PtrType); ok {
			base = pt.Elem
		}
		st, ok := base.(*StructType)
		if !ok {
			return nil
		}
		if f := st.field(x.Sel.Name); f != nil {
			return f.Type
		}
		return nil
	case *ast.IndexExpr:
		base := l.refType(x.X)
		if at, ok := base.(ArrayType); ok {
			return at.Elem
		}
		return nil
	case *ast.Ident:
		if lc := l.lookup(x.Name); lc != nil {
			return lc.typ
		}
		return nil
	}
	return nil
}

// memRef is a resolved ctx-relative access path: a constant
// displacement plus at most one scaled variable index.
type memRef struct {
	disp     int32
	typ      Type
	idx      vreg // vNone when fully constant
	idxLocal *local
	idxVer   int
	scale    int
	boundLen int64
	boundStr string
	pos      token.Pos
}

// resolveRef lowers a Selector/Index chain rooted at the ctx pointer
// into a memRef. Index bounds for constant indices are checked here;
// variable indices become obligations proven by the interval analysis.
func (l *lowerer) resolveRef(e ast.Expr) (memRef, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		lc := l.lookup(x.Name)
		if lc == nil {
			l.c.errs.add(x.Pos(), RuleExpr, "undeclared variable %s", x.Name)
			return memRef{}, false
		}
		if lc.reg != l.vCtx {
			l.c.errs.add(x.Pos(), RuleExpr, "field and array access must go through the context parameter %s", l.c.ctxName)
			return memRef{}, false
		}
		return memRef{typ: l.c.ctxType, idx: vNone, pos: x.Pos()}, true
	case *ast.SelectorExpr:
		ref, ok := l.resolveRef(x.X)
		if !ok {
			return memRef{}, false
		}
		st, ok := ref.typ.(*StructType)
		if !ok {
			l.c.errs.add(x.Pos(), RuleExpr, "%s is not a struct", ref.typ)
			return memRef{}, false
		}
		f := st.field(x.Sel.Name)
		if f == nil {
			l.c.errs.add(x.Sel.Pos(), RuleExpr, "%s has no field %s", st.Name, x.Sel.Name)
			return memRef{}, false
		}
		ref.disp += int32(f.Off)
		ref.typ = f.Type
		return ref, true
	case *ast.IndexExpr:
		ref, ok := l.resolveRef(x.X)
		if !ok {
			return memRef{}, false
		}
		at, ok := ref.typ.(ArrayType)
		if !ok {
			l.c.errs.add(x.Pos(), RuleExpr, "%s is not an array", ref.typ)
			return memRef{}, false
		}
		esz := at.Elem.Size()
		if cv, isConst := l.tryConst(x.Index); isConst {
			if cv < 0 || cv >= int64(at.N) {
				l.c.errs.add(x.Index.Pos(), RuleBounds, "index %d out of range for %s", cv, at)
				return memRef{}, false
			}
			ref.disp += int32(cv) * int32(esz)
			ref.typ = at.Elem
			return ref, true
		}
		if ref.idx != vNone {
			l.c.errs.add(x.Index.Pos(), RuleExpr, "at most one variable index per access path")
			return memRef{}, false
		}
		it, ok := l.typeOf(x.Index).(IntType)
		if !ok || it.Signed {
			l.c.errs.add(x.Index.Pos(), RuleBounds, "array index must be an unsigned integer")
			return memRef{}, false
		}
		iv, ilc := l.valueOf(x.Index)
		if iv == vNone {
			return memRef{}, false
		}
		ref.idx = iv
		ref.idxLocal = ilc
		if ilc != nil {
			ref.idxVer = ilc.version
		}
		ref.scale = esz
		ref.boundLen = int64(at.N)
		ref.boundStr = at.String()
		ref.typ = at.Elem
		ref.pos = x.Index.Pos()
		return ref, true
	}
	l.c.errs.add(e.Pos(), RuleExpr, "unsupported access path")
	return memRef{}, false
}

// addrOf materializes the address register for a variable-index ref:
// mov t, idx; mul t, scale; mov a, ctx; add a, t — with block-local
// CSE so repeated accesses off the same index (Keys[i] then Vals[i])
// reuse the address, matching hand-written assembly.
func (l *lowerer) addrOf(ref memRef) vreg {
	key := cseKey{local: ref.idxLocal, version: ref.idxVer, scale: ref.scale}
	if ref.idxLocal != nil {
		if a, ok := l.cse[key]; ok {
			return a
		}
	}
	t := l.fresh()
	// The bounds obligation rides on the first instruction of the
	// address computation; a CSE hit reuses an already-proven index.
	l.put(irIns{op: opMovReg, dst: t, src: ref.idx, pos: ref.pos,
		boundReg: ref.idx, boundLen: ref.boundLen, boundType: ref.boundStr})
	if ref.scale != 1 {
		l.put(irIns{op: opALUImm, alu: ebpf.ALUMul, dst: t, imm: int64(ref.scale), pos: ref.pos})
	}
	a := l.fresh()
	l.put(irIns{op: opMovReg, dst: a, src: l.vCtx, pos: ref.pos})
	l.put(irIns{op: opALUReg, alu: ebpf.ALUAdd, dst: a, src: t, pos: ref.pos})
	if ref.idxLocal != nil {
		l.cse[key] = a
	}
	return a
}

// loadRef loads the value a memRef names into dst.
func (l *lowerer) loadRef(dst vreg, ref memRef) Type {
	it, ok := ref.typ.(IntType)
	if !ok {
		l.c.errs.add(ref.pos, RuleExpr, "cannot load a whole %s into a register; access a field or element", ref.typ)
		return nil
	}
	base := l.vCtx
	if ref.idx != vNone {
		base = l.addrOf(ref)
	}
	l.put(irIns{op: opLoad, size: sizeFor(it.Size()), dst: dst, src: base, off: ref.disp, pos: ref.pos})
	return it
}

// storeRef stores rhs into the location a memRef names.
func (l *lowerer) storeRef(ref memRef, rhs ast.Expr, it IntType) {
	base := l.vCtx
	if ref.idx != vNone {
		base = l.addrOf(ref)
	}
	l.storeMem(base, ref.disp, rhs, it, ref.pos)
}

// storeMem lowers `*(size*)(base+off) = rhs`, preferring a store-
// immediate when rhs is a constant that fits the ST imm field.
func (l *lowerer) storeMem(base vreg, off int32, rhs ast.Expr, it IntType, pos token.Pos) {
	size := sizeFor(it.Size())
	if cv, ok := l.tryConst(rhs); ok {
		l.checkConstRange(pos, cv, it)
		if cv >= -1<<31 && cv < 1<<31 {
			l.put(irIns{op: opStoreImm, size: size, dst: base, off: off, imm: cv, pos: pos})
			return
		}
	}
	sv, _ := l.valueOf(rhs)
	if sv == vNone {
		return
	}
	l.put(irIns{op: opStore, size: size, dst: base, src: sv, off: off, pos: pos})
}

// derefTarget resolves *p's pointer operand: a pointer-typed register
// local (a helper's map-value return).
func (l *lowerer) derefTarget(x *ast.StarExpr) (vreg, PtrType) {
	id, ok := ast.Unparen(x.X).(*ast.Ident)
	if !ok {
		l.c.errs.add(x.Pos(), RuleExpr, "can only dereference a pointer-typed local")
		return vNone, PtrType{}
	}
	lc := l.lookup(id.Name)
	if lc == nil {
		l.c.errs.add(id.Pos(), RuleExpr, "undeclared variable %s", id.Name)
		return vNone, PtrType{}
	}
	pt, ok := lc.typ.(PtrType)
	if !ok {
		l.c.errs.add(x.Pos(), RuleExpr, "cannot dereference %s (type %s)", id.Name, lc.typ)
		return vNone, PtrType{}
	}
	if _, ok := pt.Elem.(IntType); !ok {
		l.c.errs.add(x.Pos(), RuleExpr, "cannot dereference pointer to %s", pt.Elem)
		return vNone, PtrType{}
	}
	if lc.stack || lc.reg == vNone {
		l.c.errs.add(x.Pos(), RuleExpr, "pointer %s is not in a register", id.Name)
		return vNone, PtrType{}
	}
	return lc.reg, pt
}

// valueOf yields a vreg holding e's value. Register locals are used
// in place (no copy); anything else lowers into a fresh temporary.
// The second result is the named local when the value is one, for
// address CSE keying.
func (l *lowerer) valueOf(e ast.Expr) (vreg, *local) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if lc := l.lookup(id.Name); lc != nil && !lc.stack && !lc.isConst && lc.reg != vNone {
			return lc.reg, lc
		}
	}
	t := l.fresh()
	if l.exprInto(t, e, nil) == nil {
		return vNone, nil
	}
	return t, nil
}

// checkConstRange warns when a constant cannot be represented in the
// destination type.
func (l *lowerer) checkConstRange(pos token.Pos, v int64, it IntType) {
	if it.Bits == 64 {
		return
	}
	var lo, hi int64
	if it.Signed {
		hi = 1<<(it.Bits-1) - 1
		lo = -1 << (it.Bits - 1)
	} else {
		hi = 1<<it.Bits - 1
	}
	if v < lo || v > hi {
		l.c.errs.add(pos, RuleTypes, "constant %d overflows %s", v, it)
	}
}

// checkArithType rejects arithmetic on storage-only widths: the ISA
// computes at 32 or 64 bits, so uint8/uint16 values must be widened
// explicitly before arithmetic.
func (l *lowerer) checkArithType(pos token.Pos, t Type, op token.Token) {
	it, ok := t.(IntType)
	if !ok {
		l.c.errs.add(pos, RuleExpr, "arithmetic on %s is not defined", t)
		return
	}
	if it.Bits < 32 {
		l.c.errs.add(pos, RuleTypes, "arithmetic on %s needs an explicit conversion to uint32 or uint64 first", it)
	}
	if it.Signed && (op == token.QUO || op == token.REM || op == token.SHR) {
		l.c.errs.add(pos, RuleExpr, "signed %s is outside the restricted subset (the ISA divides and shifts unsigned)", op)
	}
}

// exprInto lowers e so its value lands in dst, returning the value's
// type (want, when non-nil, is the context's expected type for
// untyped constants). Returns nil after reporting a diagnostic.
func (l *lowerer) exprInto(dst vreg, e ast.Expr, want Type) Type {
	if cv, ok := l.tryConst(e); ok {
		it := IntType{Bits: 64}
		if w, ok2 := want.(IntType); ok2 {
			it = w
			l.checkConstRange(e.Pos(), cv, it)
		}
		l.put(irIns{op: opMovImm, dst: dst, imm: cv, pos: e.Pos()})
		return it
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			l.put(irIns{op: opMovImm, dst: dst, imm: 0, pos: e.Pos()})
			return want
		}
		lc := l.lookup(x.Name)
		if lc == nil {
			l.c.errs.add(x.Pos(), RuleExpr, "undeclared identifier %s", x.Name)
			return nil
		}
		if lc.stack {
			it := lc.typ.(IntType)
			l.put(irIns{op: opLoad, size: sizeFor(it.Size()), dst: dst, src: vFP, off: -int32(lc.slot), pos: e.Pos()})
			return it
		}
		if lc.reg == vNone {
			return nil
		}
		if lc.reg != dst {
			l.put(irIns{op: opMovReg, dst: dst, src: lc.reg, pos: e.Pos()})
		}
		return lc.typ
	case *ast.SelectorExpr, *ast.IndexExpr:
		ref, ok := l.resolveRef(x)
		if !ok {
			return nil
		}
		return l.loadRef(dst, ref)
	case *ast.StarExpr:
		pv, pt := l.derefTarget(x)
		if pv == vNone {
			return nil
		}
		it := pt.Elem.(IntType)
		l.put(irIns{op: opLoad, size: sizeFor(it.Size()), dst: dst, src: pv, off: 0, pos: x.Pos()})
		return it
	case *ast.UnaryExpr:
		return l.unaryInto(dst, x, want)
	case *ast.BinaryExpr:
		return l.binaryInto(dst, x, want)
	case *ast.CallExpr:
		return l.callInto(dst, x, want)
	case *ast.BasicLit:
		if x.Kind == token.STRING {
			l.c.errs.add(x.Pos(), RuleString, "string values are outside the restricted subset (no dynamic memory)")
		} else {
			l.c.errs.add(x.Pos(), RuleExpr, "only integer literals are supported")
		}
		return nil
	case *ast.CompositeLit:
		l.c.errs.add(x.Pos(), RuleHeap, "composite literals build aggregates in memory; assign fields individually")
		return nil
	case *ast.FuncLit:
		l.c.errs.add(x.Pos(), RuleHeap, "function literals are outside the restricted subset")
		return nil
	case *ast.TypeAssertExpr:
		l.c.errs.add(x.Pos(), RuleIface, "type assertions need interfaces, which are outside the restricted subset")
		return nil
	}
	l.c.errs.add(e.Pos(), RuleExpr, "unsupported expression")
	return nil
}

func (l *lowerer) unaryInto(dst vreg, x *ast.UnaryExpr, want Type) Type {
	switch x.Op {
	case token.AND:
		id, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			l.c.errs.add(x.Pos(), RuleHeap, "can only take the address of a stack local")
			return nil
		}
		lc := l.lookup(id.Name)
		if lc == nil || !lc.stack {
			l.c.errs.add(x.Pos(), RuleHeap, "can only take the address of a stack local")
			return nil
		}
		l.put(irIns{op: opFrameAddr, dst: dst, off: int32(lc.slot), pos: x.Pos()})
		return PtrType{Elem: lc.typ}
	case token.XOR: // ^x
		t := l.exprInto(dst, x.X, want)
		if t == nil {
			return nil
		}
		it, ok := t.(IntType)
		if !ok {
			l.c.errs.add(x.Pos(), RuleExpr, "cannot complement %s", t)
			return nil
		}
		l.checkArithType(x.Pos(), it, token.XOR)
		l.put(irIns{op: opALUImm, alu: ebpf.ALUXor, is32: is32(it), dst: dst, imm: -1, pos: x.Pos()})
		return it
	case token.SUB: // -x with non-constant x
		t := l.exprInto(dst, x.X, want)
		if t == nil {
			return nil
		}
		it, ok := t.(IntType)
		if !ok || !it.Signed {
			l.c.errs.add(x.Pos(), RuleExpr, "unary minus needs a signed operand")
			return nil
		}
		l.put(irIns{op: opALUImm, alu: ebpf.ALUNeg, is32: is32(it), dst: dst, pos: x.Pos()})
		return it
	case token.NOT:
		l.c.errs.add(x.Pos(), RuleExpr, "boolean values are outside the restricted subset; compare explicitly")
		return nil
	}
	l.c.errs.add(x.Pos(), RuleExpr, "unsupported unary operator %s", x.Op)
	return nil
}

// binaryInto lowers `X op Y` into dst two-address style: evaluate X
// into dst, then apply op with Y as immediate or register.
func (l *lowerer) binaryInto(dst vreg, x *ast.BinaryExpr, want Type) Type {
	aluOp, ok := aluForToken(x.Op)
	if !ok {
		switch x.Op {
		case token.LAND, token.LOR:
			l.c.errs.add(x.Pos(), RuleExpr, "boolean operators are outside the restricted subset; nest if statements")
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			l.c.errs.add(x.Pos(), RuleExpr, "comparisons are only allowed as if conditions")
		default:
			l.c.errs.add(x.Pos(), RuleExpr, "unsupported operator %s", x.Op)
		}
		return nil
	}
	if want == nil {
		if t := l.typeOf(x); t != nil {
			want = t
		}
	}
	// If Y reads what dst is about to overwrite (x = a - x), evaluate
	// Y into a temporary first.
	var yReg vreg = vNone
	if l.exprWrites(x.Y, dst) {
		yReg, _ = l.valueOf(x.Y)
		if yReg == vNone {
			return nil
		}
	}
	t := l.exprInto(dst, x.X, want)
	if t == nil {
		return nil
	}
	it, ok := t.(IntType)
	if !ok {
		l.c.errs.add(x.Pos(), RuleExpr, "arithmetic on %s is not defined", t)
		return nil
	}
	l.checkArithType(x.Pos(), it, x.Op)
	if yt := l.typeOf(x.Y); yt != nil {
		if yi, ok2 := yt.(IntType); !ok2 || (yi != it && x.Op != token.SHL && x.Op != token.SHR) {
			l.c.errs.add(x.Y.Pos(), RuleTypes, "mismatched operand types %s and %s", it, yt)
			return nil
		}
	}
	if yReg != vNone {
		l.put(irIns{op: opALUReg, alu: aluOp, is32: is32(it), dst: dst, src: yReg, pos: x.Pos()})
		return it
	}
	if cv, isConst := l.tryConst(x.Y); isConst {
		if (x.Op == token.QUO || x.Op == token.REM) && cv == 0 {
			l.c.errs.add(x.Y.Pos(), RuleExpr, "division by zero")
			return nil
		}
		if cv >= -1<<31 && cv < 1<<31 {
			l.put(irIns{op: opALUImm, alu: aluOp, is32: is32(it), dst: dst, imm: cv, pos: x.Pos()})
			return it
		}
	}
	yv, _ := l.valueOf(x.Y)
	if yv == vNone {
		return nil
	}
	l.put(irIns{op: opALUReg, alu: aluOp, is32: is32(it), dst: dst, src: yv, pos: x.Pos()})
	return it
}

// exprWrites reports whether evaluating e reads the local currently
// allocated to reg (conservative: any ident bound to that vreg).
func (l *lowerer) exprWrites(e ast.Expr, reg vreg) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if lc := l.lookup(id.Name); lc != nil && lc.reg == reg {
				found = true
			}
		}
		return !found
	})
	return found
}

// alu applies `dst op= rhs` on a register local (compound assignment
// and the fused `x = x op e` form fall out of exprInto's self-move
// elision; this handles the explicit op-assign tokens).
func (l *lowerer) alu(op uint8, lc *local, rhs ast.Expr, it IntType, pos token.Pos) {
	if cv, ok := l.tryConst(rhs); ok {
		if (op == ebpf.ALUDiv || op == ebpf.ALUMod) && cv == 0 {
			l.c.errs.add(rhs.Pos(), RuleExpr, "division by zero")
			return
		}
		if cv >= -1<<31 && cv < 1<<31 {
			l.put(irIns{op: opALUImm, alu: op, is32: is32(it), dst: lc.reg, imm: cv, pos: pos})
			return
		}
	}
	rv, _ := l.valueOf(rhs)
	if rv == vNone {
		return
	}
	l.put(irIns{op: opALUReg, alu: op, is32: is32(it), dst: lc.reg, src: rv, pos: pos})
}

// callInto lowers a call expression: a type conversion or a helper
// call whose result lands in dst.
func (l *lowerer) callInto(dst vreg, x *ast.CallExpr, want Type) Type {
	id, ok := ast.Unparen(x.Fun).(*ast.Ident)
	if !ok {
		l.c.errs.add(x.Pos(), RuleExpr, "only helper calls and conversions are allowed")
		return nil
	}
	if target, isConv := intTypes[id.Name]; isConv {
		return l.convInto(dst, x, target)
	}
	switch id.Name {
	case "new", "make", "append", "copy":
		l.c.errs.add(x.Pos(), RuleHeap, "%s allocates; the restricted subset has no heap", id.Name)
		return nil
	case "len", "cap":
		if at, ok2 := l.refType(x.Args[0]).(ArrayType); ok2 && len(x.Args) == 1 {
			l.put(irIns{op: opMovImm, dst: dst, imm: int64(at.N), pos: x.Pos()})
			return IntType{Bits: 64}
		}
		l.c.errs.add(x.Pos(), RuleExpr, "%s is only defined on fixed arrays", id.Name)
		return nil
	case "delete":
		l.c.errs.add(x.Pos(), RuleHeap, "Go maps are heap-allocated; use the declared map intrinsics instead")
		return nil
	case "panic", "print", "println":
		l.c.errs.add(x.Pos(), RuleStmt, "%s is outside the restricted subset", id.Name)
		return nil
	}
	h, ok := l.c.helpers[id.Name]
	if !ok {
		l.c.errs.add(x.Pos(), RuleHelper, "unknown helper %s; declare it with a //hyperion:helper directive", id.Name)
		return nil
	}
	res := l.helperCall(h, x)
	if res == vNone {
		if h.result == nil {
			l.c.errs.add(x.Pos(), RuleExpr, "helper %s has no result", h.name)
		}
		return nil
	}
	if res != dst {
		l.put(irIns{op: opMovReg, coalesce: true, dst: dst, src: res, pos: x.Pos()})
	}
	return h.result
}

// convInto lowers T(e). Values live zero-extended in registers, so
// widening is free; narrowing masks (or truncates via a 32-bit move).
func (l *lowerer) convInto(dst vreg, x *ast.CallExpr, target IntType) Type {
	if len(x.Args) != 1 {
		l.c.errs.add(x.Pos(), RuleExpr, "conversion takes one argument")
		return nil
	}
	st := l.exprInto(dst, x.Args[0], nil)
	if st == nil {
		return nil
	}
	src, ok := st.(IntType)
	if !ok {
		l.c.errs.add(x.Pos(), RuleTypes, "cannot convert %s to %s", st, target)
		return nil
	}
	switch {
	case target.Bits >= src.Bits && !src.Signed:
		// Already zero-extended in the register.
	case target.Bits == src.Bits:
		// Same width, signedness reinterpretation only.
	case target.Bits == 32:
		// 32-bit mov of a register onto itself zero-truncates.
		l.put(irIns{op: opMovReg, is32: true, dst: dst, src: dst, pos: x.Pos()})
	case target.Bits < 32:
		l.put(irIns{op: opALUImm, alu: ebpf.ALUAnd, dst: dst, imm: int64(1)<<target.Bits - 1, pos: x.Pos()})
	default: // widening a signed narrow value
		l.c.errs.add(x.Pos(), RuleTypes, "cannot widen signed %s; sign extension is outside the subset", src)
		return nil
	}
	return target
}

// helperCall marshals arguments into the helper calling convention
// (r1..r5) and emits the call. Returns the result vreg (precolored
// r0) or vNone for void helpers.
func (l *lowerer) helperCall(h *helperDecl, x *ast.CallExpr) vreg {
	if len(x.Args) != len(h.params) {
		l.c.errs.add(x.Pos(), RuleHelperSig, "helper %s takes %d arguments, got %d", h.name, len(h.params), len(x.Args))
		return vNone
	}
	args := make([]vreg, len(x.Args))
	for i, arg := range x.Args {
		av := l.fresh()
		l.precolor[av] = uint8(1 + i) // helper ABI: args in r1..r5
		args[i] = av
		switch pt := h.params[i].(type) {
		case IntType:
			if t := l.exprInto(av, arg, pt); t == nil {
				return vNone
			}
		case PtrType:
			t := l.exprInto(av, arg, pt)
			if t == nil {
				return vNone
			}
			at, ok := t.(PtrType)
			if !ok || at.Elem.Size() != pt.Elem.Size() {
				l.c.errs.add(arg.Pos(), RuleHelperSig, "helper %s argument %d wants %s, got %s", h.name, i+1, pt, t)
				return vNone
			}
		}
	}
	callIns := irIns{op: opCall, dst: vNone, src: vNone, imm: h.id, args: args, pos: x.Pos()}
	var res vreg = vNone
	if h.result != nil {
		res = l.fresh() // precolored r0: the call's result register
		callIns.dst = res
		l.precolor[res] = 0
	}
	l.put(callIns)
	return res
}
