package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// benchctlBin is the binary under test, built once in TestMain — the
// exit-code contract belongs to the executable, not the package, so
// these tests drive it through os/exec exactly as CI does.
var benchctlBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "benchctl-test")
	if err != nil {
		panic(err)
	}
	benchctlBin = filepath.Join(dir, "benchctl")
	out, err := exec.Command("go", "build", "-o", benchctlBin, ".").CombinedOutput()
	if err != nil {
		panic("building benchctl: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// run executes benchctl with args and returns combined output and the
// exit code (0 on success, -1 if it did not exit normally).
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(benchctlBin, args...)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running benchctl %v: %v", args, err)
	return "", -1
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/benchctl -> repo root
}

func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full experiment runs")
	}
	for _, tc := range []struct {
		name     string
		args     []string
		wantExit int
		wantOut  string
	}{
		{"usage", nil, 2, "usage: benchctl"},
		{"unknown experiment", []string{"no-such-experiment"}, 1, "unknown experiment"},
		{"list includes chaos", []string{"list"}, 0, "E16"},
		{"single experiment", []string{"table1"}, 0, "== E1"},
		{"compare with unreadable report", []string{"-compare", "no-such-file.json", "all"}, 1, "no-such-file.json"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, exit := run(t, tc.args...)
			if exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d; output:\n%s", exit, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantOut) {
				t.Fatalf("output missing %q:\n%s", tc.wantOut, out)
			}
		})
	}
}

// TestCompareExitCodes exercises the CI hash gate end to end: a
// self-generated report compares clean (exit 0), and the same report
// with one doctored table hash must fail the gate (exit 1) naming the
// drifted experiment.
func TestCompareExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full experiment runs")
	}
	report := filepath.Join(t.TempDir(), "bench.json")
	if out, exit := run(t, "-parallel", "4", "-json", report, "all"); exit != 0 {
		t.Fatalf("generating report failed (exit %d):\n%s", exit, out)
	}

	out, exit := run(t, "-parallel", "4", "-compare", report, "all")
	if exit != 0 {
		t.Fatalf("self-compare exit = %d, want 0:\n%s", exit, out)
	}
	if strings.Contains(out, "HASH MISMATCH") {
		t.Fatalf("self-compare reported a mismatch:\n%s", out)
	}

	// Doctor one hash and the gate must trip.
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	results := doc["results"].([]any)
	first := results[0].(map[string]any)
	first["table_sha256"] = strings.Repeat("0", 64)
	doctored, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "doctored.json")
	if err := os.WriteFile(bad, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	out, exit = run(t, "-parallel", "4", "-compare", bad, "all")
	if exit != 1 {
		t.Fatalf("doctored compare exit = %d, want 1:\n%s", exit, out)
	}
	if !strings.Contains(out, first["id"].(string)) {
		t.Fatalf("mismatch report does not name experiment %s:\n%s", first["id"], out)
	}
}

// TestTraceFlag exercises the -trace surface: a bad directory fails
// fast, a traced run writes all three artifacts with a schema-valid
// Chrome trace, and untraced experiments degrade with a note.
func TestTraceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full experiment runs")
	}
	t.Run("bad directory", func(t *testing.T) {
		t.Parallel()
		out, exit := run(t, "-trace", "no-such-dir", "fig2")
		if exit != 1 {
			t.Fatalf("exit = %d, want 1; output:\n%s", exit, out)
		}
		if !strings.Contains(out, "not a directory") {
			t.Fatalf("output missing diagnostic:\n%s", out)
		}
	})
	t.Run("file as directory", func(t *testing.T) {
		t.Parallel()
		f := filepath.Join(t.TempDir(), "plain-file")
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if out, exit := run(t, "-trace", f, "fig2"); exit != 1 {
			t.Fatalf("exit = %d, want 1; output:\n%s", exit, out)
		}
	})
	t.Run("traced experiment writes artifacts", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		out, exit := run(t, "-trace", dir, "fig2")
		if exit != 0 {
			t.Fatalf("exit = %d, want 0; output:\n%s", exit, out)
		}
		if !strings.Contains(out, "== E2") || !strings.Contains(out, "trace artifacts:") {
			t.Fatalf("output missing table or artifact line:\n%s", out)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "E2.trace.json"))
		if err != nil {
			t.Fatalf("trace artifact missing: %v", err)
		}
		if !json.Valid(raw) {
			t.Fatal("E2.trace.json is not valid JSON")
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil || len(doc.TraceEvents) == 0 {
			t.Fatalf("E2.trace.json has no traceEvents (err=%v)", err)
		}
		for _, name := range []string{"E2.hist.txt", "E2.critpath.txt"} {
			b, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("artifact missing: %v", err)
			}
			if len(b) == 0 {
				t.Fatalf("%s is empty", name)
			}
		}
	})
	t.Run("untraced experiment degrades with note", func(t *testing.T) {
		t.Parallel()
		out, exit := run(t, "-trace", t.TempDir(), "table1")
		if exit != 0 {
			t.Fatalf("exit = %d, want 0; output:\n%s", exit, out)
		}
		if !strings.Contains(out, "no traced form") || !strings.Contains(out, "== E1") {
			t.Fatalf("output missing degradation note or table:\n%s", out)
		}
	})
}

// TestTenantsExperiment drives E18 through the executable: the sweep
// must run, its table must be shard-count invariant across processes,
// and the traced form must write artifacts while printing the same
// table bytes.
func TestTenantsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns full experiment runs")
	}
	t.Run("runs and reports the sweep", func(t *testing.T) {
		t.Parallel()
		out, exit := run(t, "tenants")
		if exit != 0 {
			t.Fatalf("exit = %d, want 0; output:\n%s", exit, out)
		}
		for _, want := range []string{"== E18", "tenants", "quiet p99", "admission cap"} {
			if !strings.Contains(out, want) {
				t.Fatalf("output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("shard count is a layout knob", func(t *testing.T) {
		t.Parallel()
		one, exit := run(t, "-shards", "1", "tenants")
		if exit != 0 {
			t.Fatalf("1-shard exit = %d; output:\n%s", exit, one)
		}
		two, exit := run(t, "-shards", "2", "tenants")
		if exit != 0 {
			t.Fatalf("2-shard exit = %d; output:\n%s", exit, two)
		}
		if one != two {
			t.Fatalf("E18 output differs across shard counts:\n--- 1 shard ---\n%s\n--- 2 shards ---\n%s", one, two)
		}
	})
	t.Run("traced run writes artifacts and matches untraced table", func(t *testing.T) {
		t.Parallel()
		plain, exit := run(t, "tenants")
		if exit != 0 {
			t.Fatalf("untraced exit = %d; output:\n%s", exit, plain)
		}
		dir := t.TempDir()
		traced, exit := run(t, "-trace", dir, "tenants")
		if exit != 0 {
			t.Fatalf("traced exit = %d; output:\n%s", exit, traced)
		}
		if i := strings.Index(traced, "trace artifacts:"); i < 0 || traced[:i] != plain {
			t.Fatalf("traced table diverged from untraced:\n--- traced ---\n%s\n--- untraced ---\n%s", traced, plain)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "E18.trace.json"))
		if err != nil {
			t.Fatalf("trace artifact missing: %v", err)
		}
		if !json.Valid(raw) {
			t.Fatal("E18.trace.json is not valid JSON")
		}
		for _, name := range []string{"E18.hist.txt", "E18.critpath.txt"} {
			b, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("artifact missing: %v", err)
			}
			if len(b) == 0 {
				t.Fatalf("%s is empty", name)
			}
		}
	})
}
