// Package telemetry is the deterministic, sim-time span tracer and
// metrics plane for the Hyperion datapath. Every hardware model keeps
// a permanently-installed hook (a *Recorder field set via
// SetRecorder), mirroring internal/fault's plan hooks: when the
// recorder is nil the hooks are strictly free — no allocation, no rng
// or virtual-time consumption, no scheduled events — so disarmed runs
// are byte-identical to a build without the hooks. When armed, the
// recorder only appends to in-memory buffers keyed by sim time; it
// never schedules engine events and never draws randomness, so armed
// runs produce the exact same experiment tables as disarmed ones.
//
// A Recorder is a view (process id + shared sink); Child carves out a
// new Perfetto "process" for a scenario while sharing the event
// buffer, so one exported trace holds every scenario of a run.
package telemetry

import "hyperion/internal/sim"

// RequestID tags every span belonging to one logical request as it
// crosses layers. It travels alongside existing payloads (frames,
// fragments, NVMe commands, RPC envelopes). Zero means "untagged":
// infrastructure activity not attributable to a single request.
type RequestID uint64

// Event is one completed span: layer + name locate the stage, Req
// ties it to a request, Start/End are virtual timestamps. Seq is the
// record order, used as a deterministic sort tiebreak by the
// exporter.
type Event struct {
	Pid   int
	Layer string
	Name  string
	Req   RequestID
	Start sim.Time
	End   sim.Time
	Seq   uint64
}

// metricKey addresses one histogram or counter.
type metricKey struct {
	pid   int
	layer string
	name  string
}

type histEntry struct {
	key metricKey
	h   Histogram
}

type countEntry struct {
	key metricKey
	n   int64
}

// sink is the shared backing store for a recorder and all its
// children. Metric entries keep a creation-order slice beside the
// index map so every dump renders in deterministic order.
type sink struct {
	procs    []string
	events   []Event
	nextReq  uint64
	hists    []*histEntry
	histIdx  map[metricKey]int
	counts   []*countEntry
	countIdx map[metricKey]int
}

// Recorder collects spans, counters and latency histograms for one
// logical process (pid). All methods are nil-safe no-ops so call
// sites can stay unconditional; hot paths still guard with
// `if rec != nil` to keep argument evaluation off the disarmed path.
type Recorder struct {
	s   *sink
	pid int
}

// NewRecorder returns an armed recorder whose root process carries
// the given name.
func NewRecorder(name string) *Recorder {
	return &Recorder{
		s: &sink{
			procs:    []string{name},
			histIdx:  make(map[metricKey]int),
			countIdx: make(map[metricKey]int),
		},
	}
}

// Child returns a recorder for a new named process sharing this
// recorder's sink — one Perfetto process row per scenario. Child of a
// nil recorder is nil, so disarmed harnesses thread children for
// free.
func (r *Recorder) Child(name string) *Recorder {
	if r == nil {
		return nil
	}
	r.s.procs = append(r.s.procs, name)
	return &Recorder{s: r.s, pid: len(r.s.procs) - 1}
}

// Armed reports whether the recorder actually records.
func (r *Recorder) Armed() bool { return r != nil }

// NewRequest allocates the next request id. Ids are global across
// children so a request keeps its identity when it crosses process
// boundaries. Returns 0 (untagged) when disarmed.
func (r *Recorder) NewRequest() RequestID {
	if r == nil {
		return 0
	}
	r.s.nextReq++
	return RequestID(r.s.nextReq)
}

// Span records a completed [start,end] interval for a stage and
// folds its duration into the (layer,name) latency histogram.
func (r *Recorder) Span(layer, name string, req RequestID, start, end sim.Time) {
	if r == nil {
		return
	}
	s := r.s
	s.events = append(s.events, Event{
		Pid:   r.pid,
		Layer: layer,
		Name:  name,
		Req:   req,
		Start: start,
		End:   end,
		Seq:   uint64(len(s.events)),
	})
	r.Observe(layer, name, end.Sub(start))
}

// Observe folds a duration into the (layer,name) histogram without
// emitting a span.
func (r *Recorder) Observe(layer, name string, d sim.Duration) {
	if r == nil {
		return
	}
	k := metricKey{r.pid, layer, name}
	s := r.s
	i, ok := s.histIdx[k]
	if !ok {
		i = len(s.hists)
		s.hists = append(s.hists, &histEntry{key: k})
		s.histIdx[k] = i
	}
	s.hists[i].h.Observe(d)
}

// Count adds n to the (layer,name) counter.
func (r *Recorder) Count(layer, name string, n int64) {
	if r == nil {
		return
	}
	k := metricKey{r.pid, layer, name}
	s := r.s
	i, ok := s.countIdx[k]
	if !ok {
		i = len(s.counts)
		s.counts = append(s.counts, &countEntry{key: k})
		s.countIdx[k] = i
	}
	s.counts[i].n += n
}

// Hist returns this process's (layer,name) latency histogram, or nil
// when disarmed or when nothing has been observed under that key. The
// tenant plane's SLO accounting and the isolation tests read p99s
// straight from the recorded distribution instead of keeping a second
// set of books.
func (r *Recorder) Hist(layer, name string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{r.pid, layer, name}
	i, ok := r.s.histIdx[k]
	if !ok {
		return nil
	}
	return &r.s.hists[i].h
}

// Events returns the number of spans recorded so far (0 when
// disarmed).
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	return len(r.s.events)
}

// MergeInto folds this recorder's entire sink — processes, spans,
// histograms, counters, request-id space — into dst, in a fully
// deterministic way: src processes are appended to dst in creation
// order (pids remapped), spans are re-sequenced after dst's existing
// events, and src request ids are offset past dst's so identities stay
// distinct. Merging per-shard recorders shard 0..N-1 therefore yields
// the same dump regardless of how work was split across shards, as
// long as each shard recorded its own work in deterministic order.
// MergeInto of or into a nil recorder is a no-op; merging a recorder
// into itself panics.
func (r *Recorder) MergeInto(dst *Recorder) {
	if r == nil || dst == nil {
		return
	}
	if r.s == dst.s {
		panic("telemetry: MergeInto on recorders sharing a sink")
	}
	s, d := r.s, dst.s
	pidBase := len(d.procs)
	d.procs = append(d.procs, s.procs...)
	reqBase := d.nextReq
	for _, ev := range s.events {
		ev.Pid += pidBase
		if ev.Req != 0 {
			ev.Req += RequestID(reqBase)
		}
		ev.Seq = uint64(len(d.events))
		d.events = append(d.events, ev)
	}
	d.nextReq += s.nextReq
	for _, he := range s.hists {
		k := metricKey{he.key.pid + pidBase, he.key.layer, he.key.name}
		i, ok := d.histIdx[k]
		if !ok {
			i = len(d.hists)
			d.hists = append(d.hists, &histEntry{key: k})
			d.histIdx[k] = i
		}
		d.hists[i].h.Merge(&he.h)
	}
	for _, ce := range s.counts {
		k := metricKey{ce.key.pid + pidBase, ce.key.layer, ce.key.name}
		i, ok := d.countIdx[k]
		if !ok {
			i = len(d.counts)
			d.counts = append(d.counts, &countEntry{key: k})
			d.countIdx[k] = i
		}
		d.counts[i].n += ce.n
	}
}
