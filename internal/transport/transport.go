// Package transport implements the application-selectable network
// transports of the Hyperion blueprint — UDP-, TCP-, RDMA-, and
// Homa-style — over the simulated Ethernet fabric. The paper's point is
// that the end-to-end hardware path can be specialized with an
// application-defined transport; this package provides four with
// distinct reliability, overhead, and congestion behaviour so the
// NVMe-oF and RPC experiments can sweep them.
package transport

import (
	"errors"
	"fmt"

	"hyperion/internal/netsim"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/wire"
)

// Kind selects a transport protocol.
type Kind int

const (
	UDP  Kind = iota // unreliable datagrams, software stack overhead
	TCP              // reliable go-back-N, small window, software overhead
	RDMA             // reliable go-back-N, large window, hardware offload
	Homa             // receiver-driven grants, SRPT, message-oriented
)

func (k Kind) String() string {
	switch k {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case RDMA:
		return "rdma"
	case Homa:
		return "homa"
	}
	return "invalid"
}

// Kinds lists all transports, for sweeps.
func Kinds() []Kind { return []Kind{UDP, TCP, RDMA, Homa} }

// FragBytes is the data payload carried per frame (plus header overhead
// on the wire).
const FragBytes = 4096

// headerBytes approximates L2–L4 headers per frame.
const headerBytes = 64

// Message is an application-level unit. Span is the request-scoped
// trace context; transports copy it onto every fragment and frame of
// the message and restore it on delivery, so a request id set by the
// sender survives fragmentation, retransmission and reassembly.
type Message struct {
	Payload any
	Bytes   int
	Span    telemetry.RequestID
}

// Endpoint is a transport instance bound to one NIC.
type Endpoint interface {
	Addr() netsim.Addr
	Kind() Kind
	// Send transmits msg to dst. Reliable transports deliver it exactly
	// once (or count it lost after giving up); UDP may silently drop.
	Send(dst netsim.Addr, msg Message) error
	// OnMessage installs the delivery handler.
	OnMessage(func(src netsim.Addr, msg Message))
	// Stats returns transport counters.
	Stats() *Stats
}

// Stats counts transport activity.
type Stats struct {
	Sent, Delivered, LostMessages       int64
	Retransmits, DataFrames, CtrlFrames int64
}

// ErrTooLarge is returned for messages beyond the transport's limit.
var ErrTooLarge = errors.New("transport: message too large")

// MaxMessageBytes bounds a single message (64 Mi is ample for the
// experiments).
const MaxMessageBytes = 64 << 20

// New creates an endpoint of the given kind on nic.
func New(eng *sim.Engine, kind Kind, nic *netsim.NIC) Endpoint {
	switch kind {
	case UDP:
		return newUDP(eng, nic)
	case TCP:
		return newReliable(eng, nic, TCP, reliableParams{
			Window:       64,
			RTO:          200 * sim.Microsecond,
			SendOverhead: 3 * sim.Microsecond,
			RecvOverhead: 3 * sim.Microsecond,
			PerFrameCPU:  500 * sim.Nanosecond,
		})
	case RDMA:
		return newReliable(eng, nic, RDMA, reliableParams{
			Window:       256,
			RTO:          50 * sim.Microsecond,
			SendOverhead: 300 * sim.Nanosecond,
			RecvOverhead: 300 * sim.Nanosecond,
			PerFrameCPU:  0,
		})
	case Homa:
		return newHoma(eng, nic)
	default:
		panic(fmt.Sprintf("transport: unknown kind %d", kind))
	}
}

// fragsFor returns the number of fragments for a message of b bytes.
func fragsFor(b int) int {
	if b <= 0 {
		return 1
	}
	return (b + FragBytes - 1) / FragBytes
}

// fragWire returns the wire size of fragment i of a b-byte message.
func fragWire(b, i int) int {
	n := fragsFor(b)
	last := b - (n-1)*FragBytes
	if b <= 0 {
		last = 1
	}
	if i == n-1 {
		return last + headerBytes
	}
	return FragBytes + headerBytes
}

// reasm reassembles in-order fragments into messages. Instances cycle
// through a per-endpoint free list.
type reasm struct {
	have    int
	total   int
	payload any
	bytes   int
	span    telemetry.RequestID
}

// dataFrag is the decoded header of a data frame. It exists only as a
// stack value around encode/decode — on the wire the fields live in
// the frame's pooled wire.Buf (big-endian, see the offsets below), and
// the application payload of the last fragment rides the frame's
// Payload field by reference.
type dataFrag struct {
	MsgID   uint64
	Index   int
	Total   int
	Bytes   int    // total message bytes
	Payload any    // carried on the last fragment only
	Seq     uint64 // connection sequence number (reliable transports)
	Span    telemetry.RequestID
}

// ctrlMsg is the decoded header of a control frame.
type ctrlMsg struct {
	Op      uint8 // ackOp, grantOp, doneOp, resendOp
	MsgID   uint64
	Seq     uint64 // cumulative ack (reliable) or granted frag count (homa)
	Missing []int  // explicit missing fragment indexes (homa resend)
}

const (
	ackOp uint8 = iota + 1
	grantOp
	doneOp
	resendOp
)

// Wire layout. One byte of frame kind, then big-endian fields at fixed
// offsets; a ctrl frame's missing-fragment list is a BE32 count at
// ctrlCountOff followed by that many BE32 indexes.
const (
	frameData uint8 = 1
	frameCtrl uint8 = 2

	kindOff      = 0
	ctrlOpOff    = 1
	msgIDOff     = 8
	seqOff       = 16
	bytesOff     = 24 // data frames
	indexOff     = 28
	totalOff     = 32
	dataHdrLen   = 36
	ctrlCountOff = 24 // ctrl frames
	ctrlHdrLen   = 28
)

// encodeData fills a pooled buffer with frag's wire header. The caller
// owns the returned reference.
//
//wire:owns
func encodeData(p *wire.Pool, frag dataFrag) *wire.Buf {
	b := p.Get(dataHdrLen)
	bs := b.Bytes()
	bs[kindOff] = frameData
	wire.PutBE64At(bs, msgIDOff, frag.MsgID)
	wire.PutBE64At(bs, seqOff, frag.Seq)
	wire.PutBE32At(bs, bytesOff, uint32(frag.Bytes))
	wire.PutBE32At(bs, indexOff, uint32(frag.Index))
	wire.PutBE32At(bs, totalOff, uint32(frag.Total))
	return b
}

// decodeData rebuilds the header view from a received frame; Payload
// and Span ride the frame itself.
func decodeData(f netsim.Frame) dataFrag {
	bs := f.Buf.Bytes()
	return dataFrag{
		MsgID:   wire.BE64At(bs, msgIDOff),
		Seq:     wire.BE64At(bs, seqOff),
		Bytes:   int(wire.BE32At(bs, bytesOff)),
		Index:   int(wire.BE32At(bs, indexOff)),
		Total:   int(wire.BE32At(bs, totalOff)),
		Payload: f.Payload,
		Span:    f.Span,
	}
}

// encodeCtrl fills a pooled buffer with m's wire header.
func encodeCtrl(p *wire.Pool, m ctrlMsg) *wire.Buf {
	b := p.Get(ctrlHdrLen + 4*len(m.Missing))
	bs := b.Bytes()
	bs[kindOff] = frameCtrl
	bs[ctrlOpOff] = m.Op
	wire.PutBE64At(bs, msgIDOff, m.MsgID)
	wire.PutBE64At(bs, seqOff, m.Seq)
	wire.PutBE32At(bs, ctrlCountOff, uint32(len(m.Missing)))
	for i, idx := range m.Missing {
		wire.PutBE32At(bs, ctrlHdrLen+4*i, uint32(idx))
	}
	return b
}

// decodeCtrl rebuilds the header view, appending any missing-fragment
// indexes to scratch (callers reuse a per-endpoint slice; the result's
// Missing aliases it until the next decode).
func decodeCtrl(bs []byte, scratch []int) ctrlMsg {
	m := ctrlMsg{
		Op:    bs[ctrlOpOff],
		MsgID: wire.BE64At(bs, msgIDOff),
		Seq:   wire.BE64At(bs, seqOff),
	}
	if n := int(wire.BE32At(bs, ctrlCountOff)); n > 0 {
		scratch = scratch[:0]
		for i := 0; i < n; i++ {
			scratch = append(scratch, int(wire.BE32At(bs, ctrlHdrLen+4*i)))
		}
		m.Missing = scratch
	}
	return m
}

// frameKind classifies a received frame, ignoring anything without a
// wire buffer (raw test frames, foreign traffic).
func frameKind(f netsim.Frame) uint8 {
	if f.Buf == nil || f.Buf.Len() < 1 {
		return 0
	}
	return f.Buf.Bytes()[kindOff]
}

// fifo is a reusable FIFO of scheduled-event arguments: pushes append,
// pops advance a head index, and the backing array is recycled once
// drained, so steady-state traffic enqueues without allocating.
// Transports pair it with a single prebound event function — correct
// because each queue's events share one fixed delay, so firing order
// matches push order.
type fifo[T any] struct {
	buf  []T
	head int
}

func (q *fifo[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *fifo[T]) pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}
