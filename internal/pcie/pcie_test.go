package pcie

import (
	"errors"
	"strings"
	"testing"

	"hyperion/internal/sim"
)

// fakeDev is a minimal endpoint with a register file.
type fakeDev struct {
	name string
	bar  int64
	regs map[int64]uint64
}

func newFakeDev(name string, bar int64) *fakeDev {
	return &fakeDev{name: name, bar: bar, regs: make(map[int64]uint64)}
}

func (d *fakeDev) PCIeName() string              { return d.name }
func (d *fakeDev) BARSize() int64                { return d.bar }
func (d *fakeDev) MMIORead(off int64) uint64     { return d.regs[off] }
func (d *fakeDev) MMIOWrite(off int64, v uint64) { d.regs[off] = v }

func newBus(t *testing.T) (*sim.Engine, *RootComplex, []*fakeDev) {
	t.Helper()
	eng := sim.NewEngine(1)
	rc := NewRootComplex(eng, []int{4, 4, 4, 4})
	devs := make([]*fakeDev, 4)
	for i := range devs {
		devs[i] = newFakeDev("nvme", 1<<20)
		if err := rc.Attach(i, devs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rc.Enumerate(); err != nil {
		t.Fatal(err)
	}
	return eng, rc, devs
}

func TestEnumerateAssignsDisjointAlignedBARs(t *testing.T) {
	_, rc, _ := newBus(t)
	type win struct{ base, size int64 }
	var wins []win
	for _, p := range rc.Ports() {
		base, size := p.BAR()
		if base%size != 0 {
			t.Errorf("port %d BAR %#x not aligned to %#x", p.Index, base, size)
		}
		wins = append(wins, win{base, size})
	}
	for i := range wins {
		for j := i + 1; j < len(wins); j++ {
			a, b := wins[i], wins[j]
			if a.base < b.base+b.size && b.base < a.base+a.size {
				t.Errorf("BARs %d and %d overlap", i, j)
			}
		}
	}
}

func TestEnumerateTwiceFails(t *testing.T) {
	_, rc, _ := newBus(t)
	if _, err := rc.Enumerate(); !errors.Is(err, ErrEnumerated) {
		t.Fatalf("err = %v, want ErrEnumerated", err)
	}
}

func TestAttachAfterEnumerateFails(t *testing.T) {
	_, rc, _ := newBus(t)
	if err := rc.Attach(0, newFakeDev("x", 1<<20)); !errors.Is(err, ErrEnumerated) {
		t.Fatalf("err = %v, want ErrEnumerated", err)
	}
}

func TestAttachOccupiedPortFails(t *testing.T) {
	eng := sim.NewEngine(1)
	_ = eng
	rc := NewRootComplex(eng, []int{4})
	if err := rc.Attach(0, newFakeDev("a", 1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := rc.Attach(0, newFakeDev("b", 1<<20)); !errors.Is(err, ErrPortTaken) {
		t.Fatalf("err = %v, want ErrPortTaken", err)
	}
}

func TestEmptyPortEnumeration(t *testing.T) {
	eng := sim.NewEngine(1)
	rc := NewRootComplex(eng, []int{4, 4})
	if err := rc.Attach(0, newFakeDev("only", 1<<20)); err != nil {
		t.Fatal(err)
	}
	out, err := rc.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !strings.Contains(out[1], "empty") {
		t.Fatalf("enumeration = %v", out)
	}
}

func TestMMIOReadWrite(t *testing.T) {
	_, rc, devs := newBus(t)
	base, _ := rc.Ports()[2].BAR()
	if _, err := rc.MMIOWrite(base+0x10, 42); err != nil {
		t.Fatal(err)
	}
	if devs[2].regs[0x10] != 42 {
		t.Fatalf("register = %d, want 42", devs[2].regs[0x10])
	}
	v, d, err := rc.MMIORead(base + 0x10)
	if err != nil || v != 42 {
		t.Fatalf("read = %d,%v", v, err)
	}
	if d <= 0 {
		t.Fatal("read latency must be positive")
	}
}

func TestMMIOBadAddress(t *testing.T) {
	_, rc, _ := newBus(t)
	if _, _, err := rc.MMIORead(0x1); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func TestMMIOBeforeEnumerate(t *testing.T) {
	eng := sim.NewEngine(1)
	rc := NewRootComplex(eng, []int{4})
	_ = rc.Attach(0, newFakeDev("x", 1<<20))
	if _, _, err := rc.MMIORead(0x1000_0000); !errors.Is(err, ErrNotEnumerated) {
		t.Fatalf("err = %v, want ErrNotEnumerated", err)
	}
}

func TestDMABandwidth(t *testing.T) {
	eng, rc, _ := newBus(t)
	base, _ := rc.Ports()[0].BAR()
	var doneAt sim.Time
	size := int64(1 << 20) // 1 MiB over x4 ≈ 3.94 GB/s → ≈ 266 µs
	if err := rc.DMA(base, size, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := sim.Duration(float64(size) / float64(4*Gen3LaneBytesPerSec) * float64(sim.Second))
	got := doneAt.Sub(0)
	if got < want || got > want+2*hopLatency {
		t.Fatalf("DMA time = %v, want ≈ %v", got, want)
	}
}

func TestDMASerializesOnOnePort(t *testing.T) {
	eng, rc, _ := newBus(t)
	base, _ := rc.Ports()[0].BAR()
	var first, second sim.Time
	size := int64(1 << 20)
	_ = rc.DMA(base, size, func() { first = eng.Now() })
	_ = rc.DMA(base, size, func() { second = eng.Now() })
	eng.Run()
	xfer := sim.Duration(float64(size) / float64(4*Gen3LaneBytesPerSec) * float64(sim.Second))
	if gap := second.Sub(first); gap < xfer*9/10 {
		t.Fatalf("second DMA finished only %v after first, want ≈%v (serialized)", gap, xfer)
	}
}

func TestDMAParallelAcrossPorts(t *testing.T) {
	// Bifurcation means the four SSD links transfer independently.
	eng, rc, _ := newBus(t)
	var done []sim.Time
	size := int64(1 << 20)
	for i := 0; i < 4; i++ {
		base, _ := rc.Ports()[i].BAR()
		_ = rc.DMA(base, size, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i := 1; i < 4; i++ {
		if done[i] != done[0] {
			t.Fatalf("port %d finished at %v, port 0 at %v: ports must not contend", i, done[i], done[0])
		}
	}
}

func TestDMAErrors(t *testing.T) {
	_, rc, _ := newBus(t)
	base, _ := rc.Ports()[0].BAR()
	if err := rc.DMA(base, 0, nil); err == nil {
		t.Fatal("zero-size DMA accepted")
	}
	if err := rc.DMA(0x1, 4096, nil); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func TestPortOf(t *testing.T) {
	_, rc, _ := newBus(t)
	base, _ := rc.Ports()[3].BAR()
	p, err := rc.PortOf(base + 100)
	if err != nil || p.Index != 3 {
		t.Fatalf("PortOf = %v,%v", p, err)
	}
}

func BenchmarkDMA4K(b *testing.B) {
	eng := sim.NewEngine(1)
	rc := NewRootComplex(eng, []int{4})
	_ = rc.Attach(0, newFakeDev("nvme", 1<<20))
	if _, err := rc.Enumerate(); err != nil {
		b.Fatal(err)
	}
	base, _ := rc.Ports()[0].BAR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rc.DMA(base, 4096, nil)
		if i%1024 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
