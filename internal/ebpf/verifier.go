package ebpf

import (
	"errors"
	"fmt"
	"math"
)

// The verifier statically proves a program safe before it may run on the
// DPU or be compiled to hardware: every register read is preceded by a
// write, all memory accesses stay within the stack / context / map-value
// windows they were derived from, map pointers are null-checked before
// use, helpers are restricted to an allow-list, and control flow is a
// forward-only DAG (no back-edges), which both bounds execution and is
// what makes eHDL pipelining possible.
//
// Like the Linux verifier it is an abstract interpreter over register
// states with unsigned value-range tracking: scalars carry [vmin, vmax]
// bounds, conditional branches refine them per edge, and pointer
// arithmetic with a bounded scalar is allowed as long as every byte of
// the resulting access window stays in bounds. That is what lets
// XRP-style programs index into a node page with a computed offset.
// Unlike Linux it insists on loop-free programs, so one forward pass
// with per-edge state merging suffices.

// MaxInsns bounds program size (matches the classic kernel limit).
const MaxInsns = 4096

// ErrVerify wraps all verification failures.
var ErrVerify = errors.New("ebpf: verification failed")

// RetKind describes what a helper returns, for tracking pointer types.
type RetKind int

const (
	RetScalar RetKind = iota
	RetMapValueOrNull
	// RetWindow is a pointer to a fixed-size readable window (used by
	// embedder helpers that expose storage blocks to programs).
	RetWindow
)

// HelperSig declares a helper to the verifier.
type HelperSig struct {
	Name       string
	Ret        RetKind
	WindowSize int // for RetWindow
}

// VerifierConfig parameterizes verification.
type VerifierConfig struct {
	// CtxSize is the guaranteed-accessible context size in bytes.
	CtxSize int
	// Maps resolves map ids used with the map helpers.
	Maps *MapSet
	// Helpers lists callable helper ids. The builtin map/time/trace
	// helpers are implied.
	Helpers map[int32]HelperSig
}

// DefaultVerifierConfig allows the builtins with a 512-byte context.
func DefaultVerifierConfig(maps *MapSet) VerifierConfig {
	return VerifierConfig{CtxSize: 512, Maps: maps, Helpers: map[int32]HelperSig{}}
}

type regType uint8

const (
	tUninit regType = iota
	tScalar
	tPtrStack
	tPtrCtx
	tMapValue
	tMapValueOrNull
	tWindow
)

func (t regType) String() string {
	switch t {
	case tUninit:
		return "uninit"
	case tScalar:
		return "scalar"
	case tPtrStack:
		return "stack_ptr"
	case tPtrCtx:
		return "ctx_ptr"
	case tMapValue:
		return "map_value"
	case tMapValueOrNull:
		return "map_value_or_null"
	case tWindow:
		return "window_ptr"
	}
	return "?"
}

const unboundedMax = math.MaxUint64

// regState is the abstract value of one register.
//
// Scalars track an unsigned range [vmin, vmax]; vmin == vmax means a
// known constant. Pointers track a constant offset from their region
// base (off) plus a bounded variable offset range [vmin, vmax]
// accumulated from ptr+scalar arithmetic.
type regState struct {
	typ        regType
	off        int64
	vmin, vmax uint64
	mapID      int // for map value pointers
	size       int // for window pointers
}

func scalarConst(v int64) regState {
	return regState{typ: tScalar, vmin: uint64(v), vmax: uint64(v)}
}

func scalarUnknown() regState { return regState{typ: tScalar, vmin: 0, vmax: unboundedMax} }

func (r regState) exact() bool { return r.typ == tScalar && r.vmin == r.vmax }

// constVal returns the exact value as signed.
func (r regState) constVal() int64 { return int64(r.vmin) }

type absState struct {
	regs  [NumRegs]regState
	stack [StackSize]bool // initialized bytes (offset from stack base)
	live  bool
}

func entryState() absState {
	var s absState
	s.live = true
	s.regs[R1] = regState{typ: tPtrCtx}
	s.regs[R2] = scalarUnknown()
	s.regs[R10] = regState{typ: tPtrStack, off: StackSize}
	return s
}

// merge combines two predecessor states conservatively.
func merge(a, b absState) absState {
	if !a.live {
		return b
	}
	if !b.live {
		return a
	}
	var out absState
	out.live = true
	for i := range a.regs {
		ra, rb := a.regs[i], b.regs[i]
		if ra.typ != rb.typ || ra.off != rb.off || ra.mapID != rb.mapID || ra.size != rb.size {
			out.regs[i] = regState{typ: tUninit}
			continue
		}
		m := ra
		if rb.vmin < m.vmin {
			m.vmin = rb.vmin
		}
		if rb.vmax > m.vmax {
			m.vmax = rb.vmax
		}
		out.regs[i] = m
	}
	for i := range a.stack {
		out.stack[i] = a.stack[i] && b.stack[i]
	}
	return out
}

type verifier struct {
	prog    []Instruction
	targets []int
	cfg     VerifierConfig
	sigs    map[int32]HelperSig
}

// Verify checks prog against cfg. A nil error means the program is safe
// to execute and to compile.
func Verify(prog []Instruction, cfg VerifierConfig) error {
	if len(prog) == 0 {
		return fmt.Errorf("%w: empty program", ErrVerify)
	}
	if len(prog) > MaxInsns {
		return fmt.Errorf("%w: %d instructions exceeds limit %d", ErrVerify, len(prog), MaxInsns)
	}
	targets, err := jumpTargets(prog)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrVerify, err)
	}
	v := &verifier{prog: prog, targets: targets, cfg: cfg, sigs: builtinSigs()}
	for id, sig := range cfg.Helpers {
		v.sigs[id] = sig
	}

	// Structural pass: forward-only control flow, reachability, and that
	// every path ends in exit.
	reach := make([]bool, len(prog))
	reach[0] = true
	for i, ins := range prog {
		cls := ins.Class()
		isJmp := cls == ClassJMP || cls == ClassJMP32
		op := ins.Op & 0xf0
		if isJmp && op != JmpExit && op != JmpCall {
			if targets[i] <= i {
				return fmt.Errorf("%w: insn %d: back-edge to insn %d (loops are rejected)", ErrVerify, i, targets[i])
			}
			if reach[i] {
				reach[targets[i]] = true
			}
		}
		fallsThrough := !(isJmp && (op == JmpExit || op == JmpA))
		if fallsThrough && reach[i] {
			if i+1 >= len(prog) {
				return fmt.Errorf("%w: insn %d: execution can fall off program end", ErrVerify, i)
			}
			reach[i+1] = true
		}
	}
	for i := range prog {
		if !reach[i] {
			return fmt.Errorf("%w: insn %d is unreachable", ErrVerify, i)
		}
	}

	// Dataflow pass: forward abstract interpretation. Because all edges
	// go forward, in-order processing sees every predecessor first.
	in := make([]absState, len(prog))
	in[0] = entryState()
	for i := range prog {
		if !in[i].live {
			return fmt.Errorf("%w: insn %d: internal: no inbound state", ErrVerify, i)
		}
		outs, err := v.step(i, in[i])
		if err != nil {
			return fmt.Errorf("%w: insn %d (%s): %v", ErrVerify, i, v.prog[i], err)
		}
		for _, o := range outs {
			if o.next >= len(prog) {
				continue
			}
			if in[o.next].live {
				in[o.next] = merge(in[o.next], o.st)
			} else {
				in[o.next] = o.st
			}
		}
	}
	return nil
}

func builtinSigs() map[int32]HelperSig {
	return map[int32]HelperSig{
		HelperMapLookup: {Name: "map_lookup_elem", Ret: RetMapValueOrNull},
		HelperMapUpdate: {Name: "map_update_elem", Ret: RetScalar},
		HelperMapDelete: {Name: "map_delete_elem", Ret: RetScalar},
		HelperKtime:     {Name: "ktime_get_ns", Ret: RetScalar},
		HelperTrace:     {Name: "trace", Ret: RetScalar},
	}
}

type edge struct {
	next int
	st   absState
}

func (v *verifier) step(pc int, st absState) ([]edge, error) {
	ins := v.prog[pc]
	readReg := func(r uint8) (regState, error) {
		if st.regs[r].typ == tUninit {
			return regState{}, fmt.Errorf("read of uninitialized r%d", r)
		}
		return st.regs[r], nil
	}
	writeReg := func(r uint8, s regState) error {
		if r == R10 {
			return errors.New("write to read-only frame pointer r10")
		}
		st.regs[r] = s
		return nil
	}

	switch ins.Class() {
	case ClassALU64, ClassALU:
		if ins.IsEndian() {
			dst, err := readReg(ins.Dst)
			if err != nil {
				return nil, err
			}
			if dst.typ != tScalar {
				return nil, fmt.Errorf("byte-order conversion of %s", dst.typ)
			}
			out := scalarUnknown()
			switch ins.Imm {
			case 16:
				out.vmax = 0xffff
			case 32:
				out.vmax = 0xffffffff
			case 64:
			default:
				return nil, fmt.Errorf("endian width %d", ins.Imm)
			}
			if err := writeReg(ins.Dst, out); err != nil {
				return nil, err
			}
			return []edge{{pc + 1, st}}, nil
		}
		out, err := v.alu(&st, ins)
		if err != nil {
			return nil, err
		}
		if err := writeReg(ins.Dst, out); err != nil {
			return nil, err
		}
		return []edge{{pc + 1, st}}, nil

	case ClassLD:
		if !ins.IsLDDW() {
			return nil, fmt.Errorf("unsupported LD mode %#x", ins.Op)
		}
		if err := writeReg(ins.Dst, scalarConst(ins.Imm64)); err != nil {
			return nil, err
		}
		return []edge{{pc + 1, st}}, nil

	case ClassLDX:
		base, err := readReg(ins.Src)
		if err != nil {
			return nil, err
		}
		if err := v.checkMem(&st, base, int64(ins.Off), ins.SizeBytes(), false); err != nil {
			return nil, err
		}
		// Loads of fewer than 8 bytes zero-extend, bounding the result.
		out := scalarUnknown()
		switch ins.SizeBytes() {
		case 1:
			out.vmax = 0xff
		case 2:
			out.vmax = 0xffff
		case 4:
			out.vmax = 0xffffffff
		}
		if err := writeReg(ins.Dst, out); err != nil {
			return nil, err
		}
		return []edge{{pc + 1, st}}, nil

	case ClassSTX, ClassST:
		base, err := readReg(ins.Dst)
		if err != nil {
			return nil, err
		}
		if ins.Class() == ClassSTX {
			if _, err := readReg(ins.Src); err != nil {
				return nil, err
			}
		}
		if ins.IsAtomic() {
			size := ins.SizeBytes()
			if size != 4 && size != 8 {
				return nil, fmt.Errorf("atomic width %d", size)
			}
			switch ins.Imm {
			case AtomicAdd, AtomicOr, AtomicAnd, AtomicXor,
				AtomicAdd | AtomicFetch, AtomicOr | AtomicFetch,
				AtomicAnd | AtomicFetch, AtomicXor | AtomicFetch,
				AtomicXchg, AtomicCmpXchg:
			default:
				return nil, fmt.Errorf("unknown atomic op %#x", ins.Imm)
			}
			// Atomics read and write the location.
			if err := v.checkMem(&st, base, int64(ins.Off), size, false); err != nil {
				return nil, err
			}
			if err := v.checkMem(&st, base, int64(ins.Off), size, true); err != nil {
				return nil, err
			}
			if ins.Imm == AtomicCmpXchg {
				if st.regs[R0].typ == tUninit {
					return nil, errors.New("cmpxchg with uninitialized r0")
				}
				st.regs[R0] = scalarUnknown()
			} else if ins.Imm&AtomicFetch != 0 {
				if err := writeReg(ins.Src, scalarUnknown()); err != nil {
					return nil, err
				}
			}
			return []edge{{pc + 1, st}}, nil
		}
		if err := v.checkMem(&st, base, int64(ins.Off), ins.SizeBytes(), true); err != nil {
			return nil, err
		}
		return []edge{{pc + 1, st}}, nil

	case ClassJMP, ClassJMP32:
		op := ins.Op & 0xf0
		switch op {
		case JmpExit:
			r0 := st.regs[R0]
			if r0.typ == tUninit {
				return nil, errors.New("exit with uninitialized r0")
			}
			if r0.typ != tScalar {
				return nil, fmt.Errorf("exit with %s in r0 (pointer leak)", r0.typ)
			}
			return nil, nil
		case JmpCall:
			return v.call(pc, st, ins)
		case JmpA:
			return []edge{{v.targets[pc], st}}, nil
		}
		dst, err := readReg(ins.Dst)
		if err != nil {
			return nil, err
		}
		var src regState
		if ins.Op&SrcReg != 0 {
			src, err = readReg(ins.Src)
			if err != nil {
				return nil, err
			}
		} else {
			src = scalarConst(int64(ins.Imm))
		}
		srcKnownZero := src.exact() && src.vmin == 0

		takenSt, fallSt := st, st
		switch {
		case dst.typ == tMapValueOrNull && srcKnownZero && (op == JmpEq || op == JmpNe):
			refined := dst
			refined.typ = tMapValue
			null := scalarConst(0)
			if op == JmpEq { // taken: null, fall-through: valid pointer
				takenSt.regs[ins.Dst] = null
				fallSt.regs[ins.Dst] = refined
			} else { // taken: valid pointer, fall-through: null
				takenSt.regs[ins.Dst] = refined
				fallSt.regs[ins.Dst] = null
			}
		case dst.typ == tScalar:
			// Range refinement against an exact bound (64-bit compares
			// only; JMP32 would need 32-bit slicing, skipped for safety).
			if src.exact() && ins.Class() == ClassJMP {
				c := src.vmin
				tr, fr := refineRange(op, dst, c)
				takenSt.regs[ins.Dst] = tr
				fallSt.regs[ins.Dst] = fr
			}
		default:
			if !(op == JmpEq || op == JmpNe) || !srcKnownZero {
				return nil, fmt.Errorf("conditional jump on %s", dst.typ)
			}
		}
		return []edge{{v.targets[pc], takenSt}, {pc + 1, fallSt}}, nil
	}
	return nil, fmt.Errorf("unsupported class %#x", ins.Op)
}

// refineRange narrows a scalar's [vmin, vmax] on both edges of an
// unsigned comparison against constant c. Contradictory refinements
// (empty ranges) fall back to the unrefined state — over-approximate
// but safe.
func refineRange(op uint8, r regState, c uint64) (taken, fall regState) {
	taken, fall = r, r
	clamp := func(s regState) regState {
		if s.vmin > s.vmax {
			return r
		}
		return s
	}
	switch op {
	case JmpEq:
		taken.vmin, taken.vmax = c, c
	case JmpNe:
		fall.vmin, fall.vmax = c, c
	case JmpLt: // dst < c
		if c > 0 {
			if taken.vmax > c-1 {
				taken.vmax = c - 1
			}
		}
		if fall.vmin < c {
			fall.vmin = c
		}
	case JmpLe: // dst <= c
		if taken.vmax > c {
			taken.vmax = c
		}
		if c < unboundedMax && fall.vmin < c+1 {
			fall.vmin = c + 1
		}
	case JmpGt: // dst > c
		if c < unboundedMax && taken.vmin < c+1 {
			taken.vmin = c + 1
		}
		if fall.vmax > c {
			fall.vmax = c
		}
	case JmpGe: // dst >= c
		if taken.vmin < c {
			taken.vmin = c
		}
		if c > 0 && fall.vmax > c-1 {
			fall.vmax = c - 1
		}
	}
	return clamp(taken), clamp(fall)
}

// alu computes the abstract result of an ALU instruction.
func (v *verifier) alu(st *absState, ins Instruction) (regState, error) {
	is32 := ins.Class() == ClassALU
	op := ins.Op & 0xf0

	var src regState
	if ins.Op&SrcReg != 0 {
		src = st.regs[ins.Src]
		if src.typ == tUninit {
			return regState{}, fmt.Errorf("read of uninitialized r%d", ins.Src)
		}
	} else {
		src = scalarConst(int64(ins.Imm))
	}
	if op == ALUMov {
		if is32 && src.typ != tScalar {
			return regState{}, errors.New("32-bit mov of a pointer truncates it")
		}
		if is32 {
			return clamp32(src), nil
		}
		return src, nil
	}
	dst := st.regs[ins.Dst]
	if dst.typ == tUninit {
		return regState{}, fmt.Errorf("read of uninitialized r%d", ins.Dst)
	}

	isPtr := func(t regType) bool {
		return t == tPtrStack || t == tPtrCtx || t == tMapValue || t == tWindow
	}

	// Pointer arithmetic: 64-bit add/sub with exact or bounded scalars.
	if isPtr(dst.typ) {
		if is32 {
			return regState{}, errors.New("32-bit arithmetic on a pointer")
		}
		if src.typ != tScalar {
			return regState{}, fmt.Errorf("pointer arithmetic with %s", src.typ)
		}
		switch op {
		case ALUAdd:
			out := dst
			if src.exact() {
				out.off += src.constVal()
				return out, nil
			}
			// Bounded variable offset: fold into the range; the bound
			// check happens at dereference time.
			if src.vmax >= 1<<31 {
				return regState{}, fmt.Errorf("pointer arithmetic with unbounded scalar on %s", dst.typ)
			}
			out.vmin += src.vmin
			out.vmax += src.vmax
			return out, nil
		case ALUSub:
			if !src.exact() {
				return regState{}, fmt.Errorf("pointer subtraction with variable scalar on %s", dst.typ)
			}
			out := dst
			out.off -= src.constVal()
			return out, nil
		default:
			return regState{}, fmt.Errorf("ALU op on %s", dst.typ)
		}
	}
	if isPtr(src.typ) {
		return regState{}, fmt.Errorf("ALU with pointer operand %s", src.typ)
	}
	if dst.typ == tMapValueOrNull || src.typ == tMapValueOrNull {
		return regState{}, errors.New("arithmetic on possibly-null map pointer")
	}

	out := rangeALU(op, dst, src)
	if is32 {
		out = clamp32(out)
	}
	return out, nil
}

// clamp32 truncates a scalar's range to 32 bits.
func clamp32(r regState) regState {
	if r.exact() {
		v := uint64(uint32(r.vmin))
		return regState{typ: tScalar, vmin: v, vmax: v}
	}
	if r.vmax > 0xffffffff {
		return regState{typ: tScalar, vmin: 0, vmax: 0xffffffff}
	}
	return r
}

// rangeALU transfers unsigned ranges through an ALU op. Exact × exact
// uses precise 64-bit semantics; bounded ranges propagate where the
// operation is monotone; everything else widens to unbounded.
func rangeALU(op uint8, a, b regState) regState {
	// Exact fast path matching the interpreter's semantics.
	if a.exact() && b.exact() {
		x, y := a.vmin, b.vmin
		var r uint64
		switch op {
		case ALUAdd:
			r = x + y
		case ALUSub:
			r = x - y
		case ALUMul:
			r = x * y
		case ALUDiv:
			if y == 0 {
				r = 0
			} else {
				r = x / y
			}
		case ALUMod:
			if y == 0 {
				r = x
			} else {
				r = x % y
			}
		case ALUAnd:
			r = x & y
		case ALUOr:
			r = x | y
		case ALUXor:
			r = x ^ y
		case ALULsh:
			r = x << (y & 63)
		case ALURsh:
			r = x >> (y & 63)
		case ALUArsh:
			r = uint64(int64(x) >> (y & 63))
		case ALUNeg:
			r = -x
		default:
			return scalarUnknown()
		}
		return regState{typ: tScalar, vmin: r, vmax: r}
	}

	bounded := func(r regState) bool { return r.vmax < 1<<62 }
	switch op {
	case ALUAdd:
		if bounded(a) && bounded(b) {
			return regState{typ: tScalar, vmin: a.vmin + b.vmin, vmax: a.vmax + b.vmax}
		}
	case ALUSub:
		if bounded(a) && bounded(b) && a.vmin >= b.vmax {
			return regState{typ: tScalar, vmin: a.vmin - b.vmax, vmax: a.vmax - b.vmin}
		}
	case ALUMul:
		if bounded(a) && bounded(b) && (a.vmax == 0 || b.vmax <= (1<<62)/maxU(a.vmax, 1)) {
			return regState{typ: tScalar, vmin: a.vmin * b.vmin, vmax: a.vmax * b.vmax}
		}
	case ALUDiv:
		if b.exact() && b.vmin > 0 {
			return regState{typ: tScalar, vmin: a.vmin / b.vmin, vmax: a.vmax / b.vmin}
		}
	case ALUMod:
		if b.exact() && b.vmin > 0 {
			return regState{typ: tScalar, vmin: 0, vmax: b.vmin - 1}
		}
	case ALUAnd:
		// a & b cannot exceed either operand.
		return regState{typ: tScalar, vmin: 0, vmax: minU(a.vmax, b.vmax)}
	case ALUOr, ALUXor:
		if bounded(a) && bounded(b) {
			// a|b and a^b are both ≤ a+b.
			return regState{typ: tScalar, vmin: 0, vmax: a.vmax + b.vmax}
		}
	case ALULsh:
		if b.exact() {
			k := b.vmin & 63
			if a.vmax <= (unboundedMax>>k) && bounded(a) {
				return regState{typ: tScalar, vmin: a.vmin << k, vmax: a.vmax << k}
			}
		}
	case ALURsh:
		if b.exact() {
			k := b.vmin & 63
			return regState{typ: tScalar, vmin: a.vmin >> k, vmax: a.vmax >> k}
		}
	}
	return scalarUnknown()
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// checkMem validates a load or store of size bytes at base + insnOff,
// where base may carry a bounded variable offset: every byte of
// [off+vmin, off+vmax+size) must be inside the region.
func (v *verifier) checkMem(st *absState, base regState, off int64, size int, write bool) error {
	if base.typ == tScalar {
		return errors.New("dereference of scalar (not a pointer)")
	}
	if base.typ == tMapValueOrNull {
		return errors.New("dereference of possibly-null map pointer (missing null check)")
	}
	if base.vmax >= 1<<31 {
		return errors.New("dereference with unbounded variable offset")
	}
	lo := base.off + off + int64(base.vmin)
	hi := base.off + off + int64(base.vmax) + int64(size)
	switch base.typ {
	case tPtrStack:
		if lo < 0 || hi > StackSize {
			return fmt.Errorf("stack access [%d,%d) outside [-%d,0) of r10", lo-StackSize, hi-StackSize, StackSize)
		}
		if write {
			if base.vmin == base.vmax {
				for i := lo; i < hi; i++ {
					st.stack[i] = true
				}
			}
			// Variable-offset writes initialize an unknown byte; mark
			// nothing (sound for later reads).
			return nil
		}
		for i := lo; i < hi; i++ {
			if !st.stack[i] {
				return fmt.Errorf("read of uninitialized stack byte at r10%+d", i-StackSize)
			}
		}
		return nil
	case tPtrCtx:
		if lo < 0 || hi > int64(v.cfg.CtxSize) {
			return fmt.Errorf("ctx access [%d,%d) outside [0,%d)", lo, hi, v.cfg.CtxSize)
		}
		return nil
	case tMapValue:
		m, err := v.cfg.Maps.Get(base.mapID)
		if err != nil {
			return err
		}
		if lo < 0 || hi > int64(m.ValueSize()) {
			return fmt.Errorf("map value access [%d,%d) outside [0,%d)", lo, hi, m.ValueSize())
		}
		return nil
	case tWindow:
		if write {
			return errors.New("write to read-only window")
		}
		if lo < 0 || hi > int64(base.size) {
			return fmt.Errorf("window access [%d,%d) outside [0,%d)", lo, hi, base.size)
		}
		return nil
	}
	return fmt.Errorf("dereference of %s", base.typ)
}

// call validates a helper call and applies its effects.
func (v *verifier) call(pc int, st absState, ins Instruction) ([]edge, error) {
	sig, ok := v.sigs[ins.Imm]
	if !ok {
		return nil, fmt.Errorf("call to unknown or disallowed helper %d", ins.Imm)
	}
	switch ins.Imm {
	case HelperMapLookup, HelperMapUpdate, HelperMapDelete:
		r1 := st.regs[R1]
		if !r1.exact() {
			return nil, errors.New("map helper requires a constant map id in r1")
		}
		if v.cfg.Maps == nil {
			return nil, errors.New("program uses maps but none are configured")
		}
		m, err := v.cfg.Maps.Get(int(r1.vmin))
		if err != nil {
			return nil, err
		}
		if err := v.checkMem(&st, st.regs[R2], 0, m.KeySize(), false); err != nil {
			return nil, fmt.Errorf("map key (r2): %v", err)
		}
		if ins.Imm == HelperMapUpdate {
			if err := v.checkMem(&st, st.regs[R3], 0, m.ValueSize(), false); err != nil {
				return nil, fmt.Errorf("map value (r3): %v", err)
			}
		}
		if ins.Imm == HelperMapLookup {
			st.regs[R0] = regState{typ: tMapValueOrNull, mapID: int(r1.vmin)}
		} else {
			st.regs[R0] = scalarUnknown()
		}
	default:
		switch sig.Ret {
		case RetScalar:
			st.regs[R0] = scalarUnknown()
		case RetMapValueOrNull:
			st.regs[R0] = regState{typ: tMapValueOrNull}
		case RetWindow:
			st.regs[R0] = regState{typ: tWindow, size: sig.WindowSize}
		}
	}
	for _, r := range []uint8{R1, R2, R3, R4, R5} {
		st.regs[r] = regState{typ: tUninit}
	}
	return []edge{{pc + 1, st}}, nil
}
