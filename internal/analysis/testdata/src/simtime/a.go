// Package simtime is hyperlint golden-test input: raw integer
// literals in sim.Time/sim.Duration positions.
package simtime

import "hyperion/internal/sim"

// Named constants carry the unit in their name and definition site.
const slotTime sim.Duration = 4000

func flagged(eng *sim.Engine) {
	var deadline sim.Time = 5000 // want `raw literal 5000 has type sim\.Time`
	eng.RunUntil(deadline)
	eng.RunUntil(9000)    // want `raw literal 9000 has type sim\.Time`
	d := sim.Duration(80) // want `raw literal 80 has type sim\.Duration`
	t := eng.Now()
	t = t + 100  // want `raw literal 100 has type sim\.Time`
	if t > 250 { // want `raw literal 250 has type sim\.Time`
		return
	}
	_ = d
}

func allowed(eng *sim.Engine) {
	d := 4 * sim.Nanosecond // scaling a unit
	half := d / 2           // dividing by a count
	var zero sim.Time
	zero = 0 // zero is unit-free
	eng.RunUntil(sim.Time(0))
	eng.RunFor(slotTime)
	eng.RunFor(sim.Duration(len("xx")) * sim.Nanosecond)
	_ = half
	_ = zero
}

func suppressed(eng *sim.Engine) {
	//hyperlint:allow(simtime) golden test: a literal picosecond count is the point
	eng.RunUntil(12345)
}
