package sim

// The event queue is a 4-ary min-heap of small value entries, replacing
// the seed kernel's container/heap over boxed *Event. The entry carries
// the full sort key (At, seq) so comparisons never chase the slot
// pointer, and the wider fan-out roughly halves tree depth versus a
// binary heap: sift-downs touch fewer cache lines per level, which is
// where a simulator that pops every event it pushes spends its time.
//
// Cancellation is lazy: Cancel tombstones the slot and the entry drains
// when it reaches the top (heap4 never removes from the middle). The
// engine's live counter, not the heap length, reports pending work.

// heapEntry is one queued event, ordered by (at, seq). seq breaks ties
// so equal-time events fire in FIFO schedule order — the determinism
// contract every experiment depends on.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32 // index into the engine's event pool
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heap4 is a 4-ary min-heap over heapEntry values. Children of node i
// live at 4i+1..4i+4; parent of i is (i-1)/4.
type heap4 struct {
	entries []heapEntry
}

func (h *heap4) len() int { return len(h.entries) }

func (h *heap4) push(e heapEntry) {
	h.entries = append(h.entries, e)
	h.siftUp(len(h.entries) - 1)
}

// pop removes and returns the minimum entry. The caller must ensure the
// heap is non-empty.
//
// It uses a bottom-up (hole-percolation) sift: the vacated root is
// filled by promoting the chain of minimum children down to a leaf, and
// the heap's last element is then sifted up from that hole. A classic
// sift-down spends a fourth comparison per level re-testing the last
// element, which in a simulator is almost always a far-future event
// that belongs near the bottom anyway — so the extra sift-up here
// typically terminates after one comparison.
func (h *heap4) pop() heapEntry {
	top := h.entries[0]
	n := len(h.entries) - 1
	last := h.entries[n]
	h.entries = h.entries[:n]
	if n > 0 {
		hole := 0
		for {
			first := hole<<2 + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if entryLess(h.entries[c], h.entries[min]) {
					min = c
				}
			}
			h.entries[hole] = h.entries[min]
			hole = min
		}
		h.entries[hole] = last
		h.siftUp(hole)
	}
	return top
}

func (h *heap4) siftUp(i int) {
	e := h.entries[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(e, h.entries[p]) {
			break
		}
		h.entries[i] = h.entries[p]
		i = p
	}
	h.entries[i] = e
}
