// Package ebpf implements the accelerator-independent intermediate
// representation the paper proposes for programming Hyperion: the eBPF
// instruction set, a binary encoder/decoder, a two-pass assembler, an
// interpreter VM with maps and helper calls, and a static verifier in the
// spirit of the Linux verifier (simplified symbolic checks).
//
// The Linux kernel implementation is one of many possible eBPF execution
// environments; this package is another, and internal/ehdl is a third
// (compiling verified programs into simulated fabric pipelines).
package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Register names r0..r10.
const (
	R0 uint8 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10 // frame pointer, read-only
	NumRegs
)

// Instruction classes (low 3 bits of the opcode).
const (
	ClassLD    uint8 = 0x00
	ClassLDX   uint8 = 0x01
	ClassST    uint8 = 0x02
	ClassSTX   uint8 = 0x03
	ClassALU   uint8 = 0x04
	ClassJMP   uint8 = 0x05
	ClassJMP32 uint8 = 0x06
	ClassALU64 uint8 = 0x07
)

// Source bit: operand comes from a register rather than the immediate.
const SrcReg uint8 = 0x08

// ALU/JMP operation codes (high 4 bits).
const (
	ALUAdd  uint8 = 0x00
	ALUSub  uint8 = 0x10
	ALUMul  uint8 = 0x20
	ALUDiv  uint8 = 0x30
	ALUOr   uint8 = 0x40
	ALUAnd  uint8 = 0x50
	ALULsh  uint8 = 0x60
	ALURsh  uint8 = 0x70
	ALUNeg  uint8 = 0x80
	ALUMod  uint8 = 0x90
	ALUXor  uint8 = 0xa0
	ALUMov  uint8 = 0xb0
	ALUArsh uint8 = 0xc0

	JmpA    uint8 = 0x00
	JmpEq   uint8 = 0x10
	JmpGt   uint8 = 0x20
	JmpGe   uint8 = 0x30
	JmpSet  uint8 = 0x40
	JmpNe   uint8 = 0x50
	JmpSGt  uint8 = 0x60
	JmpSGe  uint8 = 0x70
	JmpCall uint8 = 0x80
	JmpExit uint8 = 0x90
	JmpLt   uint8 = 0xa0
	JmpLe   uint8 = 0xb0
	JmpSLt  uint8 = 0xc0
	JmpSLe  uint8 = 0xd0
)

// Memory access sizes (bits 3-4 for LD/ST classes).
const (
	SizeW  uint8 = 0x00 // 4 bytes
	SizeH  uint8 = 0x08 // 2 bytes
	SizeB  uint8 = 0x10 // 1 byte
	SizeDW uint8 = 0x18 // 8 bytes
)

// Memory access modes (bits 5-7 for LD/ST classes).
const (
	ModeIMM    uint8 = 0x00
	ModeMEM    uint8 = 0x60
	ModeATOMIC uint8 = 0xc0
)

// Endianness conversion (ALU class, op 0xd0; the source bit selects the
// target byte order and Imm selects the width).
const ALUEnd uint8 = 0xd0

// Atomic operation selectors (carried in Imm for ModeATOMIC).
const (
	AtomicAdd     int32 = 0x00
	AtomicOr      int32 = 0x40
	AtomicAnd     int32 = 0x50
	AtomicXor     int32 = 0xa0
	AtomicFetch   int32 = 0x01
	AtomicXchg    int32 = 0xe1
	AtomicCmpXchg int32 = 0xf1
)

// Instruction is one decoded eBPF instruction. LDDW (64-bit immediate)
// occupies two encoding slots but one Instruction with Imm64 set.
type Instruction struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
	// Imm64 is the full immediate for LDDW.
	Imm64 int64
}

// Class returns the instruction class bits.
func (ins Instruction) Class() uint8 { return ins.Op & 0x07 }

// IsLDDW reports whether ins is the two-slot 64-bit load-immediate.
func (ins Instruction) IsLDDW() bool { return ins.Op == ClassLD|SizeDW|ModeIMM }

// SizeBytes returns the memory access width for LD/ST instructions.
func (ins Instruction) SizeBytes() int {
	switch ins.Op & 0x18 {
	case SizeW:
		return 4
	case SizeH:
		return 2
	case SizeB:
		return 1
	case SizeDW:
		return 8
	}
	return 0
}

// Errors from encoding and decoding.
var (
	ErrTruncated = errors.New("ebpf: truncated instruction stream")
	ErrBadLDDW   = errors.New("ebpf: malformed lddw pair")
)

// Encode serializes a program to the 8-byte-per-slot eBPF wire format.
func Encode(prog []Instruction) []byte {
	var out []byte
	var buf [8]byte
	put := func(op, regs uint8, off int16, imm int32) {
		buf[0] = op
		buf[1] = regs
		binary.LittleEndian.PutUint16(buf[2:], uint16(off))
		binary.LittleEndian.PutUint32(buf[4:], uint32(imm))
		out = append(out, buf[:]...)
	}
	for _, ins := range prog {
		regs := ins.Dst&0x0f | (ins.Src&0x0f)<<4
		if ins.IsLDDW() {
			put(ins.Op, regs, ins.Off, int32(uint32(uint64(ins.Imm64))))
			put(0, 0, 0, int32(uint32(uint64(ins.Imm64)>>32)))
			continue
		}
		put(ins.Op, regs, ins.Off, ins.Imm)
	}
	return out
}

// Decode parses the wire format back into instructions.
func Decode(raw []byte) ([]Instruction, error) {
	if len(raw)%8 != 0 {
		return nil, ErrTruncated
	}
	var prog []Instruction
	for i := 0; i < len(raw); i += 8 {
		op := raw[i]
		ins := Instruction{
			Op:  op,
			Dst: raw[i+1] & 0x0f,
			Src: raw[i+1] >> 4,
			Off: int16(binary.LittleEndian.Uint16(raw[i+2:])),
			Imm: int32(binary.LittleEndian.Uint32(raw[i+4:])),
		}
		if ins.IsLDDW() {
			if i+16 > len(raw) {
				return nil, ErrBadLDDW
			}
			hi := binary.LittleEndian.Uint32(raw[i+12:])
			ins.Imm64 = int64(uint64(uint32(ins.Imm)) | uint64(hi)<<32)
			ins.Imm = 0 // the full immediate lives in Imm64
			i += 8
		}
		prog = append(prog, ins)
	}
	return prog, nil
}

// Convenience constructors used by the assembler, tests, and program
// builders. They read like the kernel's asm macros.

// Mov64Imm is dst = imm.
func Mov64Imm(dst uint8, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | ALUMov, Dst: dst, Imm: imm}
}

// Mov64Reg is dst = src.
func Mov64Reg(dst, src uint8) Instruction {
	return Instruction{Op: ClassALU64 | ALUMov | SrcReg, Dst: dst, Src: src}
}

// ALU64Imm applies op (ALUAdd...) with an immediate operand.
func ALU64Imm(op, dst uint8, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | op, Dst: dst, Imm: imm}
}

// ALU64Reg applies op with a register operand.
func ALU64Reg(op, dst, src uint8) Instruction {
	return Instruction{Op: ClassALU64 | op | SrcReg, Dst: dst, Src: src}
}

// LoadImm64 is the two-slot dst = imm64.
func LoadImm64(dst uint8, imm int64) Instruction {
	return Instruction{Op: ClassLD | SizeDW | ModeIMM, Dst: dst, Imm64: imm}
}

// LoadMem is dst = *(size*)(src + off).
func LoadMem(size, dst, src uint8, off int16) Instruction {
	return Instruction{Op: ClassLDX | size | ModeMEM, Dst: dst, Src: src, Off: off}
}

// StoreMem is *(size*)(dst + off) = src.
func StoreMem(size, dst, src uint8, off int16) Instruction {
	return Instruction{Op: ClassSTX | size | ModeMEM, Dst: dst, Src: src, Off: off}
}

// StoreImm is *(size*)(dst + off) = imm.
func StoreImm(size, dst uint8, off int16, imm int32) Instruction {
	return Instruction{Op: ClassST | size | ModeMEM, Dst: dst, Off: off, Imm: imm}
}

// JumpImm is a conditional jump comparing dst with an immediate.
func JumpImm(op, dst uint8, imm int32, off int16) Instruction {
	return Instruction{Op: ClassJMP | op, Dst: dst, Imm: imm, Off: off}
}

// JumpReg is a conditional jump comparing dst with src.
func JumpReg(op, dst, src uint8, off int16) Instruction {
	return Instruction{Op: ClassJMP | op | SrcReg, Dst: dst, Src: src, Off: off}
}

// Atomic builds an atomic read-modify-write on *(size*)(dst+off) with
// operand src. Only SizeW and SizeDW are legal.
func Atomic(size, dst, src uint8, off int16, op int32) Instruction {
	return Instruction{Op: ClassSTX | size | ModeATOMIC, Dst: dst, Src: src, Off: off, Imm: op}
}

// Endian converts dst to big- or little-endian at the given width
// (16/32/64), zero-filling above the width.
func Endian(dst uint8, big bool, width int32) Instruction {
	op := ClassALU | ALUEnd
	if big {
		op |= SrcReg
	}
	return Instruction{Op: op, Dst: dst, Imm: width}
}

// IsAtomic reports whether ins is an atomic memory operation.
func (ins Instruction) IsAtomic() bool {
	return ins.Class() == ClassSTX && ins.Op&0xe0 == ModeATOMIC
}

// IsEndian reports whether ins is a byte-order conversion.
func (ins Instruction) IsEndian() bool {
	return ins.Class() == ClassALU && ins.Op&0xf0 == ALUEnd
}

// Ja is an unconditional jump.
func Ja(off int16) Instruction { return Instruction{Op: ClassJMP | JmpA, Off: off} }

// Call invokes helper id.
func Call(id int32) Instruction { return Instruction{Op: ClassJMP | JmpCall, Imm: id} }

// Exit returns r0.
func Exit() Instruction { return Instruction{Op: ClassJMP | JmpExit} }

// String renders an instruction in assembler syntax.
func (ins Instruction) String() string {
	if s, err := disasmOne(ins); err == nil {
		return s
	}
	return fmt.Sprintf("raw{op=%#02x dst=r%d src=r%d off=%d imm=%d}", ins.Op, ins.Dst, ins.Src, ins.Off, ins.Imm)
}
