package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"hyperion/internal/sim"
)

// psPerMicro converts picosecond sim time to the microsecond ts/dur
// fields of the Chrome trace-event format.
const psPerMicro = 1_000_000

// fmtMicros renders ps as fixed-point microseconds with integer math
// only — float formatting would invite platform-dependent digits.
func fmtMicros(ps int64) string {
	return fmt.Sprintf("%d.%06d", ps/psPerMicro, ps%psPerMicro)
}

// jstr marshals s as a JSON string literal.
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// tidKey maps one (process, layer) pair to a Perfetto thread row.
type tidKey struct {
	pid   int
	layer string
}

// ChromeTrace renders the whole sink (all children) as Chrome
// trace-event JSON: "M" metadata naming processes and threads, then
// one complete "X" event per span, sorted by (start, record order) so
// timestamps are monotone and the byte stream is a pure function of
// the recorded spans. Loadable by Perfetto / chrome://tracing.
// Returns nil when disarmed.
func (r *Recorder) ChromeTrace() []byte {
	if r == nil {
		return nil
	}
	s := r.s

	// One thread per (pid, layer), numbered per process from 1 in
	// first-span order.
	tids := make(map[tidKey]int)
	var tidOrder []tidKey
	nextTid := make(map[int]int)
	for _, e := range s.events {
		k := tidKey{e.Pid, e.Layer}
		if _, ok := tids[k]; !ok {
			nextTid[e.Pid]++
			tids[k] = nextTid[e.Pid]
			tidOrder = append(tidOrder, k)
		}
	}

	order := make([]int, len(s.events))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := &s.events[order[a]], &s.events[order[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return ea.Seq < eb.Seq
	})

	var b bytes.Buffer
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}
	for pid, name := range s.procs {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jstr(name))
	}
	for _, k := range tidOrder {
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			k.pid, tids[k], jstr(k.layer))
	}
	for _, i := range order {
		e := &s.events[i]
		emit(`{"name":%s,"cat":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"req":%d}}`,
			jstr(e.Name), jstr(e.Layer), e.Pid, tids[tidKey{e.Pid, e.Layer}],
			fmtMicros(int64(e.Start)), fmtMicros(int64(e.End.Sub(e.Start))), e.Req)
	}
	b.WriteString("\n]}\n")
	return b.Bytes()
}

// HistogramDump renders every latency histogram and counter in
// creation order as aligned text tables. Creation order follows the
// simulation's event order, so armed runs at the same seed dump
// byte-identical text.
func (r *Recorder) HistogramDump() string {
	if r == nil {
		return ""
	}
	s := r.s
	var b bytes.Buffer
	ht := sim.Table{Header: []string{
		"proc", "layer", "name", "n", "min_ps", "p50_ps", "p90_ps", "p99_ps", "max_ps", "mean_ps"}}
	for _, he := range s.hists {
		h := &he.h
		ht.AddRow(s.procs[he.key.pid], he.key.layer, he.key.name,
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%d", int64(h.Min())),
			fmt.Sprintf("%d", int64(h.Quantile(0.50))),
			fmt.Sprintf("%d", int64(h.Quantile(0.90))),
			fmt.Sprintf("%d", int64(h.Quantile(0.99))),
			fmt.Sprintf("%d", int64(h.Max())),
			fmt.Sprintf("%d", int64(h.Mean())))
	}
	b.WriteString("== latency histograms (log2 buckets)\n")
	b.WriteString(ht.String())
	if len(s.counts) > 0 {
		ct := sim.Table{Header: []string{"proc", "layer", "name", "value"}}
		for _, ce := range s.counts {
			ct.AddRow(s.procs[ce.key.pid], ce.key.layer, ce.key.name,
				fmt.Sprintf("%d", ce.n))
		}
		b.WriteString("== counters\n")
		b.WriteString(ct.String())
	}
	return b.String()
}

// reqAgg accumulates one request's spans while scanning the event
// buffer in record order.
type reqAgg struct {
	pid        int
	req        RequestID
	spans      int
	start      sim.Time
	end        sim.Time
	stageOrder []string
	stageDur   map[string]sim.Duration
}

// CriticalPath renders the per-request critical-path summary: for
// every tagged request (req != 0) the end-to-end interval and the
// stage (layer:name) that accounted for the most recorded time, plus
// a dominant-stage frequency table across requests. All aggregation
// walks creation-order slices, never map order.
func (r *Recorder) CriticalPath() string {
	if r == nil {
		return ""
	}
	s := r.s
	type groupKey struct {
		pid int
		req RequestID
	}
	idx := make(map[groupKey]int)
	var groups []*reqAgg
	for i := range s.events {
		e := &s.events[i]
		if e.Req == 0 {
			continue
		}
		k := groupKey{e.Pid, e.Req}
		gi, ok := idx[k]
		if !ok {
			gi = len(groups)
			groups = append(groups, &reqAgg{
				pid: e.Pid, req: e.Req,
				start: e.Start, end: e.End,
				stageDur: make(map[string]sim.Duration),
			})
			idx[k] = gi
		}
		g := groups[gi]
		g.spans++
		if e.Start < g.start {
			g.start = e.Start
		}
		if e.End > g.end {
			g.end = e.End
		}
		stage := e.Layer + ":" + e.Name
		if _, seen := g.stageDur[stage]; !seen {
			g.stageOrder = append(g.stageOrder, stage)
		}
		g.stageDur[stage] += e.End.Sub(e.Start)
	}

	t := sim.Table{Header: []string{
		"proc", "req", "spans", "e2e_ps", "critical_stage", "stage_ps", "share_pct"}}
	domOrder := []string{}
	domCount := map[string]int{}
	for _, g := range groups {
		var dom string
		var domDur sim.Duration
		for _, stage := range g.stageOrder {
			if d := g.stageDur[stage]; dom == "" || d > domDur {
				dom, domDur = stage, d
			}
		}
		e2e := g.end.Sub(g.start)
		share := int64(0)
		if e2e > 0 {
			share = int64(domDur) * 100 / int64(e2e)
		}
		t.AddRow(s.procs[g.pid], fmt.Sprintf("%d", g.req), fmt.Sprintf("%d", g.spans),
			fmt.Sprintf("%d", int64(e2e)), dom,
			fmt.Sprintf("%d", int64(domDur)), fmt.Sprintf("%d", share))
		if _, seen := domCount[dom]; !seen {
			domOrder = append(domOrder, dom)
		}
		domCount[dom]++
	}

	var b bytes.Buffer
	b.WriteString("== per-request critical path\n")
	b.WriteString(t.String())
	if len(domOrder) > 0 {
		ft := sim.Table{Header: []string{"critical_stage", "requests"}}
		for _, stage := range domOrder {
			ft.AddRow(stage, fmt.Sprintf("%d", domCount[stage]))
		}
		b.WriteString("== dominant-stage frequency\n")
		b.WriteString(ft.String())
	}
	return b.String()
}

// vEvent mirrors the trace-event fields the validator checks.
// Pointers distinguish "absent" from zero.
type vEvent struct {
	Name *string  `json:"name"`
	Cat  string   `json:"cat"`
	Ph   string   `json:"ph"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

type vTrace struct {
	TraceEvents []vEvent `json:"traceEvents"`
}

// ValidateChromeTrace checks that data is a loadable Chrome
// trace-event JSON document: every event carries name/ph/pid/tid,
// phases are M, X, B or E, X events carry a non-negative dur, B/E
// events pair up per thread, and non-metadata timestamps are
// monotonically non-decreasing in stream order (the exporter sorts by
// start time, so any regression means broken sim-time bookkeeping).
func ValidateChromeTrace(data []byte) error {
	var tr vTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("trace has no traceEvents")
	}
	type threadKey struct{ pid, tid int }
	open := make(map[threadKey][]string)
	var openOrder []threadKey
	lastTs := -1.0
	for i, e := range tr.TraceEvents {
		if e.Name == nil || *e.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		if e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("event %d (%s): missing pid/tid", i, *e.Name)
		}
		switch e.Ph {
		case "M":
			continue
		case "X", "B", "E":
		default:
			return fmt.Errorf("event %d (%s): unsupported phase %q", i, *e.Name, e.Ph)
		}
		if e.Ts == nil {
			return fmt.Errorf("event %d (%s): missing ts", i, *e.Name)
		}
		if *e.Ts < lastTs {
			return fmt.Errorf("event %d (%s): ts %v regresses below %v", i, *e.Name, *e.Ts, lastTs)
		}
		lastTs = *e.Ts
		k := threadKey{*e.Pid, *e.Tid}
		switch e.Ph {
		case "X":
			if e.Dur == nil {
				return fmt.Errorf("event %d (%s): X event missing dur", i, *e.Name)
			}
			if *e.Dur < 0 {
				return fmt.Errorf("event %d (%s): negative dur %v", i, *e.Name, *e.Dur)
			}
		case "B":
			if _, seen := open[k]; !seen {
				openOrder = append(openOrder, k)
			}
			open[k] = append(open[k], *e.Name)
		case "E":
			stack := open[k]
			if len(stack) == 0 {
				return fmt.Errorf("event %d (%s): E without matching B on pid %d tid %d", i, *e.Name, *e.Pid, *e.Tid)
			}
			if top := stack[len(stack)-1]; top != *e.Name {
				return fmt.Errorf("event %d: E %q does not close B %q", i, *e.Name, top)
			}
			open[k] = stack[:len(stack)-1]
		}
	}
	for _, k := range openOrder {
		if stack := open[k]; len(stack) > 0 {
			return fmt.Errorf("pid %d tid %d: %d unclosed B events (first %q)", k.pid, k.tid, len(stack), stack[0])
		}
	}
	return nil
}
