// Loops must unroll at compile time: constant bounds, constant step.
package prog

type Ctx struct {
	N uint64
}

func Entry(ctx *Ctx) uint64 {
	n := ctx.N
	sum := n
	for i := 0; i < n; i++ { // want 18 "for loops must have the form `for i := C; i < C; i++` (constant bounds and step) so they unroll at compile time" bounded-loop
		sum += i
	}
	for { // want 2 "for loops must have the form `for i := C; i < C; i++` (constant bounds and step) so they unroll at compile time" bounded-loop
		sum += 1
	}
	return sum
}
