// Conservative parallel discrete-event scheduling: a Cluster runs N
// Shards (each wrapping one Engine) on N goroutines, synchronized by
// lookahead-based conservative windows — the null-message-free barrier
// variant of Chandy–Misra–Bryant. Each round the coordinator computes
// LBTS, the global lower bound on pending event timestamps, and every
// shard then executes freely up to (but excluding) LBTS + lookahead:
// no message sent during the window can be due inside it, because
// cross-LP sends must be delayed by at least the lookahead.
//
// # Determinism
//
// A Cluster's results are a pure function of (seed, LP topology) and
// independent of the shard count. The argument, spelled out in
// DESIGN.md §12, rests on four properties enforced here:
//
//   - all cross-LP communication goes through Send envelopes, even
//     between LPs that happen to share a shard, so the window sequence
//     (the LBTS chain) depends only on virtual timestamps, never on
//     the LP→shard layout;
//   - envelopes are injected at barriers sorted by (deliverAt, src,
//     per-shard send sequence), a total order that is layout-
//     independent because each LP's own send order is preserved;
//   - each shard owns its engine, event pool and receive-event free
//     list outright; the coordinator touches them only while every
//     worker is parked at the barrier (channel happens-before);
//   - shard engines never share a Rand: model code that must stay
//     shard-count invariant draws from per-LP generators seeded from
//     the scenario seed, not from Engine.Rand.
//
// The one deliberate use of host concurrency in the model layer lives
// in this file; every site carries a nodeterm annotation arguing why
// it cannot leak host scheduling into simulation results.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// LP identifies a logical process registered with a Cluster. LPs are
// numbered densely in registration order, which is part of the
// deterministic envelope ordering — register them in a fixed order.
type LP int32

// Envelope is one cross-shard (more precisely: cross-LP) message as
// delivered to a Handler. Kind, A and B are free for the application
// protocol; Data is valid only during the handler call — a receiver
// that keeps the bytes must copy them.
type Envelope struct {
	At   Time // delivery time; equals the shard engine's Now
	Src  LP
	Dst  LP
	Kind uint16
	A, B uint64
	Data []byte
}

// Handler consumes envelopes addressed to one LP. It runs on the
// destination shard's goroutine inside the event loop and may schedule
// engine events or Send further envelopes.
type Handler func(sh *Shard, env Envelope)

// outEnv is a pending send parked in its source shard's outbox until
// the next barrier. Payload bytes live in the shard arena as [off,
// off+n) so the hot path never allocates per send.
type outEnv struct {
	at       Time
	src, dst LP
	kind     uint16
	a, b     uint64
	off, n   int
	seq      uint64
}

// recvEvent carries one delivered envelope into the destination
// engine. Instances (and their payload buffers) cycle through a
// per-shard free list; the coordinator fills them at barriers, the
// shard recycles them after the handler returns, and the two never
// run concurrently.
type recvEvent struct {
	sh   *Shard
	at   Time
	src  LP
	dst  LP
	kind uint16
	a, b uint64
	seq  uint64
	data []byte
	fn   func() // prebound re.fire
}

func (re *recvEvent) fire() {
	sh := re.sh
	sh.recvs++
	sh.cl.handlers[re.dst](sh, Envelope{
		At: re.at, Src: re.src, Dst: re.dst,
		Kind: re.kind, A: re.a, B: re.b,
		Data: re.data,
	})
	re.data = re.data[:0]
	sh.reFree = append(sh.reFree, re)
}

// Shard is one partition of a clustered simulation: a private Engine
// plus the envelope outbox/inbox connecting it to its peers. Handlers
// reach their shard's engine through Engine() for LP-internal
// scheduling; only Send may cross LP boundaries.
type Shard struct {
	id  int
	cl  *Cluster
	eng *Engine

	// Outbox: filled by Send during a window, drained by the
	// coordinator at the following barrier.
	out     []outEnv
	arena   []byte
	sendSeq uint64

	// Inbox: recvEvents routed here at a barrier, sorted, injected.
	pending []*recvEvent
	reFree  []*recvEvent

	sends, recvs uint64
	events       uint64
	busyNs       int64

	//hyperlint:allow(nodeterm) barrier plumbing: carries only window deadlines from the parked coordinator to this worker; no model state crosses it
	windowCh chan Time
	//hyperlint:allow(nodeterm) barrier plumbing: one completion token per window back to the coordinator, establishing the happens-before the exchange phase relies on
	doneCh chan struct{}
}

// ID returns the shard's index in [0, Cluster.Shards()).
func (sh *Shard) ID() int { return sh.id }

// Engine returns the shard's private engine for LP-internal
// scheduling. Cross-LP interaction must go through Send — and code
// that wants shard-count-invariant results must not draw from this
// engine's Rand (seed per-LP generators from the scenario seed
// instead).
func (sh *Shard) Engine() *Engine { return sh.eng }

// Send queues an envelope from src to dst, to be delivered delay after
// the shard's current time. delay must be at least the cluster
// lookahead — that bound is what lets every shard run a full window
// without seeing its peers' in-flight messages. data is copied
// immediately; the caller keeps the slice.
func (sh *Shard) Send(src, dst LP, delay Duration, kind uint16, a, b uint64, data []byte) {
	cl := sh.cl
	if int(src) >= len(cl.handlers) || int(dst) >= len(cl.handlers) || src < 0 || dst < 0 {
		panic(fmt.Sprintf("sim: Send with unknown LP (src=%d dst=%d, %d registered)", src, dst, len(cl.handlers)))
	}
	if cl.lpShard[src] != int32(sh.id) {
		panic(fmt.Sprintf("sim: LP %d sending from shard %d but lives on shard %d", src, sh.id, cl.lpShard[src]))
	}
	if delay < cl.lookahead {
		panic(fmt.Sprintf("sim: Send delay %v below cluster lookahead %v: conservative windows would miss it", delay, cl.lookahead))
	}
	off := len(sh.arena)
	sh.arena = append(sh.arena, data...)
	sh.out = append(sh.out, outEnv{
		at: sh.eng.Now().Add(delay), src: src, dst: dst,
		kind: kind, a: a, b: b,
		off: off, n: len(data), seq: sh.sendSeq,
	})
	sh.sendSeq++
	sh.sends++
}

func (sh *Shard) getRecvEvent() *recvEvent {
	if n := len(sh.reFree); n > 0 {
		re := sh.reFree[n-1]
		sh.reFree = sh.reFree[:n-1]
		return re
	}
	re := &recvEvent{sh: sh}
	re.fn = re.fire
	return re
}

// worker executes windows as the coordinator releases them. The only
// shared state it touches outside its own shard is the two barrier
// channels.
func (sh *Shard) worker() {
	for deadline := range sh.windowCh {
		//hyperlint:allow(nodeterm) wall time measures barrier stall for Stats only; it never feeds model time
		t0 := time.Now()
		sh.eng.RunUntil(deadline)
		//hyperlint:allow(nodeterm) wall time measures barrier stall for Stats only; it never feeds model time
		sh.busyNs += time.Since(t0).Nanoseconds()
		//hyperlint:allow(nodeterm) barrier completion token: the coordinator resumes only after every shard parks, so exchange never races a window
		sh.doneCh <- struct{}{}
	}
}

// Cluster runs a set of LPs partitioned across shards under
// conservative windows. Construction and registration are
// single-threaded; Run is a one-shot.
type Cluster struct {
	shards    []*Shard
	lookahead Duration
	handlers  []Handler
	lpShard   []int32
	started   bool

	windows uint64
	wallNs  int64
}

// NewCluster creates a cluster of nshards shards. Shard 0's engine is
// seeded with exactly seed — a 1-shard cluster's engine is
// indistinguishable from NewEngine(seed) — and shard i>0 derives its
// seed by mixing in i. lookahead must be positive: it is the minimum
// cross-LP delay, normally the fabric's propagation + minimum-frame
// serialization time (netsim.Config.Lookahead).
func NewCluster(nshards int, seed uint64, lookahead Duration) *Cluster {
	if nshards <= 0 {
		panic("sim: cluster needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	cl := &Cluster{lookahead: lookahead}
	for i := 0; i < nshards; i++ {
		s := seed
		if i > 0 {
			s = mix64(seed + uint64(i)*0x9e3779b97f4a7c15)
		}
		sh := &Shard{id: i, cl: cl, eng: NewEngine(s)}
		cl.shards = append(cl.shards, sh)
	}
	return cl
}

// mix64 is splitmix64's finalizer, used to derive per-shard engine
// seeds that do not collide with the scenario seed itself.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddLP registers a logical process on the given shard and returns its
// LP id. Registration order defines LP numbering and with it the
// deterministic envelope ordering, so register LPs in a fixed order
// before Run.
func (cl *Cluster) AddLP(shard int, h Handler) LP {
	if cl.started {
		panic("sim: AddLP after Cluster.Run")
	}
	if shard < 0 || shard >= len(cl.shards) {
		panic(fmt.Sprintf("sim: AddLP on shard %d of %d", shard, len(cl.shards)))
	}
	if h == nil {
		panic("sim: AddLP with nil handler")
	}
	lp := LP(len(cl.handlers))
	cl.handlers = append(cl.handlers, h)
	cl.lpShard = append(cl.lpShard, int32(shard))
	return lp
}

// Shards returns the shard count.
func (cl *Cluster) Shards() int { return len(cl.shards) }

// Shard returns shard i.
func (cl *Cluster) Shard(i int) *Shard { return cl.shards[i] }

// ShardOf returns the shard index an LP was registered on.
func (cl *Cluster) ShardOf(lp LP) int { return int(cl.lpShard[lp]) }

// Lookahead returns the cluster's lookahead.
func (cl *Cluster) Lookahead() Duration { return cl.lookahead }

// Windows returns the number of conservative windows executed.
func (cl *Cluster) Windows() uint64 { return cl.windows }

// Steps returns the total events executed across all shards.
func (cl *Cluster) Steps() uint64 {
	var n uint64
	for _, sh := range cl.shards {
		n += sh.eng.Steps()
	}
	return n
}

// Now returns the cluster's virtual time (all shards agree between
// windows; during Run it is only meaningful from handlers, via their
// own shard's engine).
func (cl *Cluster) Now() Time { return cl.shards[0].eng.Now() }

// lbts computes the lower bound on pending timestamps: the minimum
// next-event time across all shards. Envelopes do not contribute —
// they have all been injected by the preceding exchange.
func (cl *Cluster) lbts() (Time, bool) {
	min, any := Forever, false
	for _, sh := range cl.shards {
		if t, ok := sh.eng.NextAt(); ok && (!any || t < min) {
			min, any = t, true
		}
	}
	return min, any
}

// exchange routes every parked envelope to its destination shard and
// injects it as an engine event. It runs strictly between windows —
// single-threaded — so it may touch every shard's state. Per
// destination, envelopes sort by (deliverAt, src, send-seq): a total
// order independent of the LP→shard layout (see the package comment).
func (cl *Cluster) exchange() {
	for _, src := range cl.shards {
		for i := range src.out {
			oe := &src.out[i]
			dst := cl.shards[cl.lpShard[oe.dst]]
			re := dst.getRecvEvent()
			re.at, re.src, re.dst = oe.at, oe.src, oe.dst
			re.kind, re.a, re.b, re.seq = oe.kind, oe.a, oe.b, oe.seq
			re.data = append(re.data[:0], src.arena[oe.off:oe.off+oe.n]...)
			dst.pending = append(dst.pending, re)
		}
		src.out = src.out[:0]
		src.arena = src.arena[:0]
	}
	for _, dst := range cl.shards {
		if len(dst.pending) == 0 {
			continue
		}
		sort.Slice(dst.pending, func(i, j int) bool {
			a, b := dst.pending[i], dst.pending[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for _, re := range dst.pending {
			dst.eng.At(re.at, "cluster.recv", re.fn)
		}
		dst.pending = dst.pending[:0]
	}
}

// Run executes the clustered simulation to completion: barrier rounds
// of exchange → LBTS → window, until no shard has pending work. With
// one shard the loop runs inline — same windows, no goroutines — so a
// 1-shard cluster is bit-identical to N shards and nearly free.
func (cl *Cluster) Run() {
	if cl.started {
		panic("sim: Cluster.Run called twice")
	}
	cl.started = true
	single := len(cl.shards) == 1
	if !single {
		for _, sh := range cl.shards {
			//hyperlint:allow(nodeterm) barrier plumbing: deadline and completion channels between coordinator and this shard's worker
			sh.windowCh = make(chan Time)
			//hyperlint:allow(nodeterm) barrier plumbing: deadline and completion channels between coordinator and this shard's worker
			sh.doneCh = make(chan struct{})
			//hyperlint:allow(nodeterm) one long-lived worker per shard; shards share nothing and run only between barriers, so host scheduling cannot reorder model events
			go sh.worker()
		}
	}
	//hyperlint:allow(nodeterm) wall time measures Run duration for Stats only; it never feeds model time
	t0 := time.Now()
	for {
		cl.exchange()
		lbts, ok := cl.lbts()
		if !ok {
			break
		}
		deadline := lbts.Add(cl.lookahead) - 1
		if single {
			sh := cl.shards[0]
			//hyperlint:allow(nodeterm) wall time measures window cost for Stats only; it never feeds model time
			b0 := time.Now()
			sh.eng.RunUntil(deadline)
			//hyperlint:allow(nodeterm) wall time measures window cost for Stats only; it never feeds model time
			sh.busyNs += time.Since(b0).Nanoseconds()
		} else {
			for _, sh := range cl.shards {
				//hyperlint:allow(nodeterm) releases one window; every shard gets the same deadline, so execution content is layout-independent
				sh.windowCh <- deadline
			}
			for _, sh := range cl.shards {
				//hyperlint:allow(nodeterm) parks the coordinator until the shard finishes its window; establishes exchange's exclusive access
				<-sh.doneCh
			}
		}
		cl.windows++
	}
	if !single {
		for _, sh := range cl.shards {
			close(sh.windowCh)
		}
	}
	//hyperlint:allow(nodeterm) wall time measures Run duration for Stats only; it never feeds model time
	cl.wallNs = time.Since(t0).Nanoseconds()
	for _, sh := range cl.shards {
		sh.events = sh.eng.Steps()
	}
}

// ShardStats is one shard's execution summary after Run.
type ShardStats struct {
	Shard   int
	Events  uint64 // engine events executed
	Sends   uint64 // envelopes sent from this shard
	Recvs   uint64 // envelopes delivered to this shard
	BusyNs  int64  // wall nanoseconds executing windows
	StallNs int64  // wall nanoseconds parked at barriers
}

// Stats returns per-shard execution statistics. Event and envelope
// counts are deterministic; Busy/Stall are wall-clock measurements for
// lookahead tuning and never feed back into the simulation.
func (cl *Cluster) Stats() []ShardStats {
	out := make([]ShardStats, len(cl.shards))
	for i, sh := range cl.shards {
		stall := cl.wallNs - sh.busyNs
		if stall < 0 {
			stall = 0
		}
		out[i] = ShardStats{
			Shard: i, Events: sh.events,
			Sends: sh.sends, Recvs: sh.recvs,
			BusyNs: sh.busyNs, StallNs: stall,
		}
	}
	return out
}

// WallNs returns the wall-clock duration of Run in nanoseconds
// (measurement only — the simulated tables never include it).
func (cl *Cluster) WallNs() int64 { return cl.wallNs }
