package bench

import (
	"fmt"

	"hyperion/internal/apps/chase"
	"hyperion/internal/apps/fail2ban"
	"hyperion/internal/apps/lb"
	"hyperion/internal/core"
	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/bptree"
	"hyperion/internal/storage/corfu"
	"hyperion/internal/telemetry"
	"hyperion/internal/trace"
	"hyperion/internal/transport"
)

// newView builds a standalone segment-store view for storage-layer
// experiments.
func newView(devs int, seed uint64) (*sim.Engine, *seg.SyncView) {
	eng := sim.NewEngine(seed)
	var hosts []*nvme.Host
	for i := 0; i < devs; i++ {
		cfg := nvme.DefaultConfig(fmt.Sprintf("ssd%d", i))
		cfg.Blocks = 1 << 20
		hosts = append(hosts, nvme.NewHost(nvme.New(eng, cfg), nil))
	}
	scfg := seg.DefaultConfig()
	scfg.DRAMBytes = 128 << 20
	scfg.CheckpointEvery = 0
	return eng, seg.NewSyncView(seg.New(eng, scfg, hosts))
}

// PointerChase reproduces §2.4's pointer-chasing figure: lookup latency
// and round trips vs tree height, client-side vs offloaded.
func PointerChase(seed uint64) Result { return pointerChase(seed, nil) }

// PointerChaseTraced is PointerChase with the telemetry plane armed:
// each tree size becomes its own Perfetto process (rec.Child) and
// every lookup a request-scoped trace joining the app-level span to
// the rpc/transport/netsim spans beneath it. The Result is
// byte-identical to PointerChase at the same seed.
func PointerChaseTraced(seed uint64, rec *telemetry.Recorder) Result {
	return pointerChase(seed, rec)
}

func pointerChase(seed uint64, rec *telemetry.Recorder) Result {
	r := Result{ID: "E7", Title: "§2.4 — pointer chasing: client-side RTTs vs offloaded"}
	r.Table.Header = []string{"keys", "height", "client RTTs", "client latency", "offload RTTs", "offload latency", "speedup"}
	for _, keys := range []int{150, 8000, 40000} {
		eng := sim.NewEngine(seed)
		net := netsim.New(eng, netsim.DefaultConfig())
		cfg := core.DefaultConfig("chase")
		cfg.NVMe.Blocks = 1 << 20
		cfg.Seg.DRAMBytes = 128 << 20
		cfg.Seg.CheckpointEvery = 0
		d, _, err := core.Boot(eng, net, cfg)
		if err != nil {
			panic(err)
		}
		// The latency-sensitive case of §2.4: the index is DRAM-resident
		// on the DPU (ephemeral segments), so network round trips — not
		// flash — dominate the client-side traversal.
		tree, err := bptree.Create(d.View, seg.OID(0xBEE, 0), false)
		if err != nil {
			panic(err)
		}
		for i := 0; i < keys; i++ {
			if err := tree.Insert(uint64(i*2), uint64(i)); err != nil {
				panic(err)
			}
		}
		d.View.TakeCost()
		svc, err := chase.NewService(d, d.CtrlSrv, tree)
		if err != nil {
			panic(err)
		}
		_ = svc
		var crec *telemetry.Recorder
		if rec != nil {
			crec = rec.Child(fmt.Sprintf("e7.keys%d", keys))
			d.SetRecorder(crec)
			net.SetRecorder(crec)
		}
		cn, _ := net.Attach("client")
		cli := rpc.NewClient(eng, transport.New(eng, cfg.Transport, cn))
		cli.Timeout = sim.Duration(sim.Second)
		cli.SetRecorder(crec)
		cc := chase.NewClient(cli, d.ControlAddr())

		const lookups = 50
		rng := sim.NewRand(seed + 6)
		measure := func(mode string, get func(uint64, func(chase.GetReply, error))) (sim.Duration, int64) {
			cc.RTTs = 0
			var total sim.Duration
			for i := 0; i < lookups; i++ {
				k := uint64(rng.Intn(keys) * 2)
				cc.Span = crec.NewRequest()
				start := eng.Now()
				get(k, func(rep chase.GetReply, err error) {
					if err != nil {
						panic(err)
					}
					if crec != nil {
						crec.Span("chase", mode, cc.Span, start, eng.Now())
					}
					total += eng.Now().Sub(start)
				})
				eng.Run()
			}
			return total / lookups, cc.RTTs / lookups
		}
		clsLat, clsRTT := measure("client-side", cc.ClientSideGet)
		offLat, offRTT := measure("offload", cc.OffloadGet)
		r.Table.AddRow(itoa(int64(keys)), itoa(int64(tree.Height())),
			itoa(clsRTT), clsLat.String(), itoa(offRTT), offLat.String(),
			f2(float64(clsLat)/float64(offLat)))
		r.observe(eng)
	}
	r.Notes = append(r.Notes, "client-side pays height+1 round trips; the offloaded verified program pays one")
	return r
}

// Fail2ban reproduces the §2.4 middleware result: line-rate filtering
// with persistent ban state on the DPU vs the same filter on a host CPU
// stack.
func Fail2ban(seed uint64) Result {
	r := Result{ID: "E8", Title: "§2.4 — fail2ban middleware on the DPU"}
	r.Table.Header = []string{"platform", "pkts", "banned", "dropped", "Mpps capacity", "per-pkt latency"}
	eng, d := bootDPU("f2b", seed)
	f, err := fail2ban.Deploy(d, 0, 5, nil)
	if err != nil {
		panic(err)
	}
	eng.Run()
	g := trace.NewAttackGen(seed+10, 16)
	const pkts = 20000
	start := eng.Now()
	for i := 0; i < pkts; i++ {
		_ = f.Process(g.Next(), func(int) {})
		if i%512 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	elapsed := eng.Now().Sub(start)
	// Capacity: the pipeline admits one packet per II cycles.
	ii := f.Pipeline().Stats.II
	mpps := 250.0 / float64(ii) // 250 MHz clock
	perPkt := d.Fabric.Cycles(int64(f.Pipeline().Stats.Depth))
	r.Table.AddRow("hyperion slot", itoa(pkts), itoa(f.Banned), itoa(f.Dropped), f1(mpps), perPkt.String())

	// Host baseline: per-packet kernel path + filter on a time-shared
	// CPU (XDP-less iptables/fail2ban-style userspace consult).
	hostPerPkt := 4*sim.Microsecond + 2*sim.Microsecond              // stack + match
	hostMpps := float64(sim.Second) / float64(hostPerPkt) / 1e6 * 16 // 16 cores
	r.Table.AddRow("1u host (16 cores)", itoa(pkts), "-", "-", f2(hostMpps), hostPerPkt.String())
	r.Notes = append(r.Notes,
		fmt.Sprintf("simulated trace time %v; ban log persisted to NVMe through the segment store", elapsed))
	r.observe(eng)
	return r
}

// LoadBalancer reproduces the §2.4 Tiara-style result: connection-table
// scaling past DRAM by spilling to the attached SSDs.
func LoadBalancer(seed uint64) Result {
	r := Result{ID: "E9", Title: "§2.4 — L4 load balancer with SSD state spill"}
	r.Table.Header = []string{"conns", "hot cap", "spills", "spill hits", "mean steer", "state kept"}
	for _, conns := range []int{2000, 8000, 32000} {
		eng, v := newView(4, seed)
		bal, err := lb.New(v, seg.OID(0x1b, 0), []lb.Backend{{Addr: 1}, {Addr: 2}, {Addr: 3}, {Addr: 4}}, 4000)
		if err != nil {
			panic(err)
		}
		// Open conns connections, then touch them all again.
		for i := 0; i < conns; i++ {
			p := trace.Packet{SrcIP: uint32(i), DstIP: 9, SrcPort: uint16(i), DstPort: 443, Proto: 6, Flags: 0x02, Bytes: 60}
			if _, err := bal.Steer(p); err != nil {
				panic(err)
			}
		}
		v.TakeCost()
		var total sim.Duration
		kept := 0
		for i := 0; i < conns; i++ {
			p := trace.Packet{SrcIP: uint32(i), DstIP: 9, SrcPort: uint16(i), DstPort: 443, Proto: 6, Flags: 0x10, Bytes: 500}
			dst, err := bal.Steer(p)
			if err != nil {
				panic(err)
			}
			if dst != 0 {
				kept++
			}
			total += v.TakeCost()
		}
		r.Table.AddRow(itoa(int64(conns)), "4000", itoa(bal.Spills), itoa(bal.SpillHits),
			(total / sim.Duration(conns)).String(),
			fmt.Sprintf("%d/%d", kept, conns))
		r.observe(eng)
	}
	r.Notes = append(r.Notes, "Tiara punts overflow state to x86 servers; Hyperion keeps it on its own SSDs (zero lost flows)")
	return r
}

// Corfu reproduces the §2.4 shared-log result: aggregate append
// throughput vs stripe width and the sequencer-batching ablation.
// Concurrent appenders overlap flash programs on different units, so
// aggregate throughput is min(sequencer rate × batch, units / unit
// write time); the sweep shows both regimes and the crossover.
func Corfu(seed uint64) Result {
	r := Result{ID: "E11", Title: "§2.4 — Corfu-SSD shared log: stripes × sequencer batching"}
	r.Table.Header = []string{"units", "batch", "unit write", "seq-bound Kops/s", "flash-bound Kops/s", "aggregate Kops/s", "bottleneck"}
	seqRTT := 3 * sim.Microsecond // sequencer token round trip
	for _, units := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 8} {
			eng, v := newView(4, seed)
			log := buildLog(v, units)
			// Entries are block-aligned (cell = 4 KiB) so unit writes
			// go straight to the flash write cache without RMW, as a
			// log-structured unit would lay them out.
			const n = 400
			data := make([]byte, 512)
			v.TakeCost()
			for i := 0; i < n; i++ {
				if _, err := log.Append(data); err != nil {
					panic(err)
				}
			}
			unitWrite := v.TakeCost() / n
			seqRate := float64(batch) / seqRTT.Seconds()
			flashRate := float64(units) / unitWrite.Seconds()
			agg := seqRate
			bottleneck := "sequencer"
			if flashRate < agg {
				agg = flashRate
				bottleneck = "flash"
			}
			r.Table.AddRow(itoa(int64(units)), itoa(int64(batch)), unitWrite.String(),
				f1(seqRate/1000), f1(flashRate/1000), f1(agg/1000), bottleneck)
			r.observe(eng)
		}
	}
	r.Notes = append(r.Notes,
		"unbatched, the sequencer token RTT caps the log regardless of stripes; batched, throughput scales with stripe width until flash binds")
	return r
}

// buildLog assembles a striped Corfu log over fresh units. The entry
// size is chosen so each cell (entry + 5-byte header) fills exactly one
// 4 KiB block: appends then hit the device as aligned single-block
// writes, the layout a log-structured unit uses.
func buildLog(v *seg.SyncView, units int) *corfu.Log {
	var us []*corfu.Unit
	for i := 0; i < units; i++ {
		u, err := corfu.NewUnit(v, seg.OID(uint64(0xC0F+i), 0), 4091, true)
		if err != nil {
			panic(err)
		}
		us = append(us, u)
	}
	l, err := corfu.NewLog(&corfu.Sequencer{}, us)
	if err != nil {
		panic(err)
	}
	return l
}
