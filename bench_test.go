// Package hyperion's repository-root benchmarks: one testing.B benchmark
// per paper table/figure (wrapping internal/bench, the same harness
// cmd/benchctl runs), so `go test -bench=.` regenerates every
// experiment. Each bench reports the experiment's headline metric via
// b.ReportMetric in addition to wall-clock time of the simulation.
package hyperion

import (
	"testing"

	"hyperion/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByName(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := e.Run()
		if len(r.Table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1_IntegrationModels(b *testing.B)    { runExperiment(b, "E1") }
func BenchmarkFigure2_EndToEndPath(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkEnergy_VolumeAndTDP(b *testing.B)         { runExperiment(b, "E3") }
func BenchmarkReconfig_ICAPWindow(b *testing.B)         { runExperiment(b, "E4") }
func BenchmarkPredictability_SpatialSlots(b *testing.B) { runExperiment(b, "E5") }
func BenchmarkSegmentVsPage_Translation(b *testing.B)   { runExperiment(b, "E6") }
func BenchmarkPointerChase_RTTs(b *testing.B)           { runExperiment(b, "E7") }
func BenchmarkFail2ban_Middleware(b *testing.B)         { runExperiment(b, "E8") }
func BenchmarkLoadBalancer_SSDSpill(b *testing.B)       { runExperiment(b, "E9") }
func BenchmarkEBPF_VerifyWarpPipeline(b *testing.B)     { runExperiment(b, "E10") }
func BenchmarkCorfu_SharedLog(b *testing.B)             { runExperiment(b, "E11") }
func BenchmarkColumnarScan_Pushdown(b *testing.B)       { runExperiment(b, "E12") }
func BenchmarkKV_YCSBBackends(b *testing.B)             { runExperiment(b, "E13") }
func BenchmarkNVMeoF_Transports(b *testing.B)           { runExperiment(b, "E14") }

// TestAllExperimentsProduceOutput is the integration smoke test: every
// experiment runs to completion and emits a plausible table.
func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	for _, e := range bench.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run()
			if len(r.Table.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if len(r.Table.Header) == 0 {
				t.Fatalf("%s: no header", e.ID)
			}
			for i, row := range r.Table.Rows {
				if len(row) != len(r.Table.Header) {
					t.Fatalf("%s: row %d has %d cells, header has %d", e.ID, i, len(row), len(r.Table.Header))
				}
			}
		})
	}
}

// TestExperimentsDeterministic asserts the simulation's core promise:
// same seed, same virtual-time results — two runs of an experiment
// produce byte-identical tables.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"E2", "E4", "E14"} {
		e, ok := bench.ByName(id)
		if !ok {
			t.Fatalf("no experiment %s", id)
		}
		a := e.Run().String()
		b := e.Run().String()
		if a != b {
			t.Fatalf("%s not deterministic:\n--- first ---\n%s\n--- second ---\n%s", id, a, b)
		}
	}
}
