// Package energy models power, energy, and packaging volume for the E3
// comparison: the paper reports Hyperion at ≈230 W max TDP in a PCIe-card
// form factor versus ≈1600 W in a 1U SuperMicro X12-class server, i.e.
// 4–8× better energy efficiency and 5–10× better volume density.
package energy

import (
	"fmt"

	"hyperion/internal/sim"
)

// Platform describes one deployment target's power/volume envelope.
type Platform struct {
	Name    string
	MaxTDPW float64 // watts at full load
	IdleW   float64 // watts at idle
	VolumeL float64 // packaging volume, liters
}

// Hyperion is the DPU card: U280 (225 W board power) + 4 NVMe (~5 W
// each) + crossover board ≈ 230 W fully loaded (the paper's number), in
// roughly a double-width PCIe card enclosure.
func Hyperion() Platform {
	return Platform{Name: "hyperion", MaxTDPW: 230, IdleW: 55, VolumeL: 2.6}
}

// Server1U is the SuperMicro X12-class 1U comparison point: dual-socket
// ~1600 W max TDP (the paper's number) in a 1U chassis (~17.5 L with
// rails and airflow clearance).
func Server1U() Platform {
	return Platform{Name: "1u-server", MaxTDPW: 1600, IdleW: 350, VolumeL: 17.5}
}

// VolumeRatio returns how many times more compact a is than b.
func VolumeRatio(a, b Platform) float64 { return b.VolumeL / a.VolumeL }

// TDPRatio returns b's max TDP over a's.
func TDPRatio(a, b Platform) float64 { return b.MaxTDPW / a.MaxTDPW }

// Meter integrates energy over simulated time with a piecewise-constant
// utilization signal.
type Meter struct {
	p        Platform
	lastT    sim.Time
	lastUtil float64
	joules   float64
	ops      int64
}

// NewMeter starts metering platform p at time now with utilization 0.
func NewMeter(p Platform, now sim.Time) *Meter {
	return &Meter{p: p, lastT: now}
}

// SetUtilization records a utilization change at time now (0..1).
func (m *Meter) SetUtilization(now sim.Time, util float64) {
	m.accumulate(now)
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	m.lastUtil = util
}

func (m *Meter) accumulate(now sim.Time) {
	dt := now.Sub(m.lastT).Seconds()
	if dt > 0 {
		watts := m.p.IdleW + (m.p.MaxTDPW-m.p.IdleW)*m.lastUtil
		m.joules += watts * dt
		m.lastT = now
	}
}

// AddOps counts completed operations (for joules-per-op).
func (m *Meter) AddOps(n int64) { m.ops += n }

// Joules returns the total energy consumed up to time now.
func (m *Meter) Joules(now sim.Time) float64 {
	m.accumulate(now)
	return m.joules
}

// JoulesPerOp returns energy per completed operation.
func (m *Meter) JoulesPerOp(now sim.Time) float64 {
	j := m.Joules(now)
	if m.ops == 0 {
		return 0
	}
	return j / float64(m.ops)
}

// Ops returns the completed operation count.
func (m *Meter) Ops() int64 { return m.ops }

// Summary formats the meter state.
func (m *Meter) Summary(now sim.Time) string {
	return fmt.Sprintf("%s: %.2f J over %v, %d ops, %.2f µJ/op",
		m.p.Name, m.Joules(now), now, m.ops, m.JoulesPerOp(now)*1e6)
}
