// Package corfu implements a CORFU-style shared log (§2.4: "distributed/
// shared ordered logs ... pioneered by Boxwood", Balakrishnan et al.,
// NSDI'12): a sequencer hands out positions, and fixed-size entries
// stripe write-once across a set of flash storage units. On Hyperion the
// units are network-attached SSD DPUs; here each unit runs over the
// segment store and the RPC layer adds the network hops.
package corfu

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyperion/internal/seg"
)

// Entry states, persisted in a header byte per slot.
const (
	slotEmpty byte = iota
	slotWritten
	slotFilled // junk-filled hole
	slotTrimmed
)

// Errors.
var (
	ErrWritten   = errors.New("corfu: slot already written (write-once)")
	ErrTrimmed   = errors.New("corfu: position trimmed")
	ErrUnwritten = errors.New("corfu: position not yet written")
	ErrFilled    = errors.New("corfu: position filled (hole)")
	ErrTooLarge  = errors.New("corfu: entry exceeds fixed size")
	ErrCorrupt   = errors.New("corfu: corrupt unit")
)

// Unit is one write-once storage unit. Slots live in fixed-size cells
// inside chunk objects on the unit's segment store.
type Unit struct {
	v         *seg.SyncView
	meta      seg.ObjectID
	entrySize int
	cellBytes int
	perChunk  int
	chunks    []seg.ObjectID
	nextLo    uint64
	durable   bool
	// stateCache mirrors the persistent per-slot state byte so the
	// write-once check doesn't cost a flash read on the hot path (a
	// real unit keeps this in its FTL/controller SRAM). Slots of chunks
	// allocated by this instance (virgin) are known-empty; after a
	// reopen the cache warms on demand.
	stateCache   map[uint64]byte
	virginChunks map[int]bool

	Writes, Reads, Fills int64
}

const unitMagic = 0x434f5246 // "CORF"
const chunkBytes = 1 << 20

// NewUnit creates a storage unit with the given fixed entry size.
func NewUnit(v *seg.SyncView, metaID seg.ObjectID, entrySize int, durable bool) (*Unit, error) {
	if entrySize <= 0 || entrySize > chunkBytes/4 {
		return nil, fmt.Errorf("corfu: bad entry size %d", entrySize)
	}
	u := &Unit{
		v: v, meta: metaID, entrySize: entrySize,
		cellBytes:    entrySize + 5, // state byte + length u32
		durable:      durable,
		nextLo:       metaID.Lo + 1,
		stateCache:   make(map[uint64]byte),
		virginChunks: make(map[int]bool),
	}
	u.perChunk = chunkBytes / u.cellBytes
	if _, err := v.Alloc(metaID, 4096, durable, seg.HintAuto); err != nil {
		return nil, err
	}
	return u, u.writeMeta()
}

// OpenUnit reloads a unit from its metadata.
func OpenUnit(v *seg.SyncView, metaID seg.ObjectID) (*Unit, error) {
	u := &Unit{v: v, meta: metaID, stateCache: make(map[uint64]byte), virginChunks: make(map[int]bool)}
	buf, err := v.ReadAt(metaID, 0, 4096)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf) != unitMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	u.entrySize = int(binary.LittleEndian.Uint32(buf[4:]))
	u.durable = buf[8] == 1
	u.nextLo = binary.LittleEndian.Uint64(buf[16:])
	n := int(binary.LittleEndian.Uint32(buf[24:]))
	u.cellBytes = u.entrySize + 5
	u.perChunk = chunkBytes / u.cellBytes
	off := 32
	for i := 0; i < n; i++ {
		u.chunks = append(u.chunks, seg.ObjectID{
			Hi: binary.LittleEndian.Uint64(buf[off:]),
			Lo: binary.LittleEndian.Uint64(buf[off+8:]),
		})
		off += 16
	}
	return u, nil
}

func (u *Unit) writeMeta() error {
	buf := make([]byte, 4096)
	binary.LittleEndian.PutUint32(buf, unitMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(u.entrySize))
	if u.durable {
		buf[8] = 1
	}
	binary.LittleEndian.PutUint64(buf[16:], u.nextLo)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(u.chunks)))
	off := 32
	for _, c := range u.chunks {
		binary.LittleEndian.PutUint64(buf[off:], c.Hi)
		binary.LittleEndian.PutUint64(buf[off+8:], c.Lo)
		off += 16
		if off > len(buf)-16 {
			return fmt.Errorf("corfu: unit meta overflow")
		}
	}
	return u.v.WriteAt(u.meta, 0, buf)
}

// locate returns the chunk object and byte offset of a slot, growing
// the chunk list as needed.
func (u *Unit) locate(slot uint64, grow bool) (seg.ObjectID, int64, error) {
	ci := int(slot / uint64(u.perChunk))
	for grow && ci >= len(u.chunks) {
		id := seg.ObjectID{Hi: u.meta.Hi, Lo: u.nextLo}
		u.nextLo++
		if _, err := u.v.Alloc(id, chunkBytes, u.durable, seg.HintAuto); err != nil {
			return seg.ObjectID{}, 0, err
		}
		u.chunks = append(u.chunks, id)
		u.virginChunks[len(u.chunks)-1] = true
		if err := u.writeMeta(); err != nil {
			return seg.ObjectID{}, 0, err
		}
	}
	if ci >= len(u.chunks) {
		return seg.ObjectID{}, 0, ErrUnwritten
	}
	off := int64(slot%uint64(u.perChunk)) * int64(u.cellBytes)
	return u.chunks[ci], off, nil
}

func (u *Unit) state(slot uint64) (byte, error) {
	if st, ok := u.stateCache[slot]; ok {
		return st, nil
	}
	if ci := int(slot / uint64(u.perChunk)); ci < len(u.chunks) && u.virginChunks[ci] {
		// Chunk allocated by this instance and slot never touched: empty.
		return slotEmpty, nil
	}
	id, off, err := u.locate(slot, false)
	if err == ErrUnwritten {
		return slotEmpty, nil
	}
	if err != nil {
		return 0, err
	}
	b, err := u.v.ReadAt(id, off, 1)
	if err != nil {
		return 0, err
	}
	u.stateCache[slot] = b[0]
	return b[0], nil
}

// Write stores data at slot, enforcing write-once semantics.
func (u *Unit) Write(slot uint64, data []byte) error {
	if len(data) > u.entrySize {
		return ErrTooLarge
	}
	st, err := u.state(slot)
	if err != nil {
		return err
	}
	switch st {
	case slotWritten, slotFilled:
		return ErrWritten
	case slotTrimmed:
		return ErrTrimmed
	}
	id, off, err := u.locate(slot, true)
	if err != nil {
		return err
	}
	// Write the full cell so block-aligned cells land as aligned device
	// writes (no read-modify-write).
	cell := make([]byte, u.cellBytes)
	cell[0] = slotWritten
	binary.LittleEndian.PutUint32(cell[1:], uint32(len(data)))
	copy(cell[5:], data)
	u.Writes++
	u.stateCache[slot] = slotWritten
	return u.v.WriteAt(id, off, cell)
}

// Read returns the entry at slot.
func (u *Unit) Read(slot uint64) ([]byte, error) {
	id, off, err := u.locate(slot, false)
	if err != nil {
		return nil, err
	}
	hdr, err := u.v.ReadAt(id, off, 5)
	if err != nil {
		return nil, err
	}
	switch hdr[0] {
	case slotEmpty:
		return nil, ErrUnwritten
	case slotFilled:
		return nil, ErrFilled
	case slotTrimmed:
		return nil, ErrTrimmed
	}
	n := int64(binary.LittleEndian.Uint32(hdr[1:]))
	u.Reads++
	data, err := u.v.ReadAt(id, off+5, n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), data...), nil
}

// Fill marks slot as a junk hole (clients use it to skip a crashed
// appender's reserved position).
func (u *Unit) Fill(slot uint64) error {
	st, err := u.state(slot)
	if err != nil {
		return err
	}
	switch st {
	case slotWritten, slotFilled:
		return ErrWritten
	case slotTrimmed:
		return ErrTrimmed
	}
	id, off, err := u.locate(slot, true)
	if err != nil {
		return err
	}
	u.Fills++
	u.stateCache[slot] = slotFilled
	return u.v.WriteAt(id, off, []byte{slotFilled, 0, 0, 0, 0})
}

// Trim marks slot reclaimable.
func (u *Unit) Trim(slot uint64) error {
	id, off, err := u.locate(slot, true)
	if err != nil {
		return err
	}
	u.stateCache[slot] = slotTrimmed
	return u.v.WriteAt(id, off, []byte{slotTrimmed, 0, 0, 0, 0})
}

// Sequencer is the log's position server. In CORFU it is a soft-state
// network service; its counter recovers by probing the units.
type Sequencer struct {
	next uint64
	// Tokens handed out (for the bottleneck experiment).
	Issued int64
	// Batch lets one round-trip reserve several positions.
	Batch int
}

// Next reserves n consecutive positions, returning the first.
func (s *Sequencer) Next(n int) uint64 {
	if n < 1 {
		n = 1
	}
	p := s.next
	s.next += uint64(n)
	s.Issued += int64(n)
	return p
}

// Tail returns the next unwritten position.
func (s *Sequencer) Tail() uint64 { return s.next }

// Recover resets the counter from the units' state (max written slot).
func (s *Sequencer) Recover(l *Log) error {
	var tail uint64
	for p := uint64(0); ; p++ {
		st, err := l.units[p%uint64(len(l.units))].state(p / uint64(len(l.units)))
		if err != nil {
			return err
		}
		if st == slotEmpty {
			// Check a full stripe width ahead for holes written out of
			// order by concurrent appenders.
			empty := true
			for q := p + 1; q < p+uint64(len(l.units)); q++ {
				qs, err := l.units[q%uint64(len(l.units))].state(q / uint64(len(l.units)))
				if err != nil {
					return err
				}
				if qs != slotEmpty {
					empty = false
					break
				}
			}
			if empty {
				tail = p
				break
			}
		}
	}
	s.next = tail
	return nil
}

// Log is the client-side view over a sequencer and striped units.
type Log struct {
	Seq   *Sequencer
	units []*Unit
	// EntrySize is the fixed entry payload limit.
	EntrySize int
	trimmedTo uint64
}

// NewLog assembles a log. All units must share the entry size.
func NewLog(seq *Sequencer, units []*Unit) (*Log, error) {
	if len(units) == 0 {
		return nil, errors.New("corfu: need at least one unit")
	}
	es := units[0].entrySize
	for _, u := range units {
		if u.entrySize != es {
			return nil, errors.New("corfu: unit entry sizes differ")
		}
	}
	return &Log{Seq: seq, units: units, EntrySize: es}, nil
}

// unitFor maps a position to (unit, slot) by striping.
func (l *Log) unitFor(pos uint64) (*Unit, uint64) {
	n := uint64(len(l.units))
	return l.units[pos%n], pos / n
}

// Append reserves the next position and writes data there.
func (l *Log) Append(data []byte) (uint64, error) {
	if len(data) > l.EntrySize {
		return 0, ErrTooLarge
	}
	pos := l.Seq.Next(1)
	u, slot := l.unitFor(pos)
	if err := u.Write(slot, data); err != nil {
		return 0, err
	}
	return pos, nil
}

// Read returns the entry at pos.
func (l *Log) Read(pos uint64) ([]byte, error) {
	u, slot := l.unitFor(pos)
	return u.Read(slot)
}

// Fill plugs a hole at pos.
func (l *Log) Fill(pos uint64) error {
	u, slot := l.unitFor(pos)
	return u.Fill(slot)
}

// Trim marks everything below pos reclaimable.
func (l *Log) Trim(pos uint64) error {
	for p := l.trimmedTo; p < pos; p++ {
		u, slot := l.unitFor(p)
		if err := u.Trim(slot); err != nil {
			return err
		}
	}
	l.trimmedTo = pos
	return nil
}

// Units returns the stripe width.
func (l *Log) Units() int { return len(l.units) }
