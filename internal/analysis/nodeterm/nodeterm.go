// Package nodeterm bans nondeterminism sources in Hyperion model
// packages: wall-clock reads, the global math/rand generators,
// goroutines, channels, and sync primitives.
//
// Device models are state machines driven single-threaded by a
// sim.Engine; virtual time comes from Engine.Now and randomness from
// the engine's seeded sim.Rand. Any of the constructs banned here
// would let host scheduling or process entropy leak into simulation
// results and silently break replay determinism — the property the
// golden experiment-table hashes in bench_test.go pin down.
//
// Harness-layer packages (internal/bench, cmd/*) may use goroutines,
// channels, and sync freely: the parallel experiment runner depends on
// them, and each experiment drives a private engine. Wall-clock reads
// are permitted there too, but only under an explicit
// //hyperlint:allow(nodeterm) annotation stating that the value is
// measurement-only and never feeds model time.
package nodeterm

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyperion/internal/analysis"
)

// Analyzer is the nodeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "bans wall-clock, global rand, goroutines, channels and sync in model packages",
	Run:  run,
}

// wallClockFuncs are the package time functions that read the host
// clock or schedule on it. time.Duration arithmetic and constants
// remain fine everywhere — only observing real time is banned.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedImports are packages a model may not even import: their whole
// point is shared mutable state or concurrency.
var bannedImports = map[string]string{
	"math/rand":    "use the engine's seeded sim.Rand instead",
	"math/rand/v2": "use the engine's seeded sim.Rand instead",
	"sync":         "models run single-threaded inside the event loop; no locking is needed or allowed",
	"sync/atomic":  "models run single-threaded inside the event loop; no atomics are needed or allowed",
}

func run(pass *analysis.Pass) error {
	if pass.Layer == analysis.LayerExempt {
		return nil
	}
	model := pass.Layer == analysis.LayerModel
	for _, f := range pass.NonTestFiles() {
		if model {
			for _, imp := range f.Imports {
				path := imp.Path.Value
				path = path[1 : len(path)-1] // unquote
				if why, ok := bannedImports[path]; ok {
					pass.Reportf(imp.Pos(), "model package imports %q: %s", path, why)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkWallClock(pass, n)
			case *ast.GoStmt:
				if model {
					pass.Reportf(n.Pos(), "model package starts a goroutine: models must run single-threaded inside the event loop (schedule with Engine.At/After instead)")
				}
			case *ast.SelectStmt:
				if model {
					pass.Reportf(n.Pos(), "model package uses select: channel scheduling is host-nondeterministic; drive state machines from engine events")
				}
			case *ast.SendStmt:
				if model {
					pass.Reportf(n.Pos(), "model package sends on a channel: pass data through scheduled callbacks, not channels")
				}
			case *ast.UnaryExpr:
				if model && n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "model package receives from a channel: pass data through scheduled callbacks, not channels")
				}
			case *ast.ChanType:
				if model {
					pass.Reportf(n.Pos(), "model package declares a channel type: channels are banned in model code")
				}
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags uses of the time package's clock-reading
// functions. In model packages they are flat-out banned; in harness
// packages the diagnostic exists to be suppressed — an unannotated
// wall-clock read fails the build, so every one in the tree carries a
// machine-checked statement of intent.
func checkWallClock(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
		return
	}
	if pass.Layer == analysis.LayerModel {
		pass.Reportf(sel.Pos(), "model package calls time.%s: model time must come from sim.Engine.Now, never the host clock", fn.Name())
	} else {
		pass.Reportf(sel.Pos(), "harness wall-clock read time.%s needs an annotation: //hyperlint:allow(nodeterm) <why this never feeds model time>", fn.Name())
	}
}
