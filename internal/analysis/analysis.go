// Package analysis is Hyperion's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface that the hyperlint checkers are written against.
//
// Hyperion's reproducibility story rests on a contract the Go compiler
// cannot see: every device-model package must be replay-deterministic.
// Model code may consume time only through sim.Engine's virtual clock and
// randomness only through the engine's seeded sim.Rand; it must not spawn
// goroutines, use channels or sync primitives, or let map iteration order
// leak into simulation state. The analyzers in the subpackages
// (nodeterm, maprange, eventref, simtime) machine-check that contract,
// and cmd/hyperlint drives them either standalone or as a
// `go vet -vettool` plugin.
//
// The framework is intentionally API-compatible in spirit with
// x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the checkers could
// be ported to the upstream driver verbatim if the dependency ever
// becomes available; it exists because this repository builds offline
// against the standard library only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Name doubles as the suppression key:
// a `//hyperlint:allow(<name>) reason` comment silences this analyzer's
// diagnostics on the annotated line.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package's import path with the module prefix intact
	// (e.g. "hyperion/internal/rpc"); Layer is its classification.
	Path  string
	Layer Layer

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NonTestFiles returns the package files excluding _test.go files.
// Hyperlint's determinism checks apply to model code proper: test files
// routinely (and legitimately) exercise engines from multiple
// goroutines, compare wall time, or iterate maps while asserting.
func (p *Pass) NonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// A Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a rendered diagnostic: what a driver prints or a test
// harness matches against.
type Finding struct {
	Check    string // analyzer name
	Position token.Position
	Message  string
}

// Layer classifies a package under the determinism contract.
type Layer int

const (
	// LayerModel packages hold simulation state machines. The full
	// discipline applies: no wall clock, no global rand, no
	// concurrency, no order-dependent map iteration, EventRef and
	// sim.Time hygiene.
	LayerModel Layer = iota
	// LayerHarness packages drive simulations from outside (the bench
	// runner, cmd binaries). They may use goroutines, channels and
	// sync freely — each experiment owns a private engine — but every
	// wall-clock read must carry a //hyperlint:allow(nodeterm)
	// annotation stating that the value never feeds model time.
	LayerHarness
	// LayerExempt packages are outside the contract entirely:
	// examples, the analysis framework itself, and test-only packages.
	LayerExempt
)

func (l Layer) String() string {
	switch l {
	case LayerModel:
		return "model"
	case LayerHarness:
		return "harness"
	default:
		return "exempt"
	}
}

// ModulePath is the import-path prefix of this repository's module.
const ModulePath = "hyperion"

// Classify maps an import path to its layer. Paths both with and
// without the module prefix are accepted; testdata packages opt into
// the harness or exempt layers via a `_harness` / `_exempt` suffix on
// their final path element.
func Classify(path string) Layer {
	rel := strings.TrimPrefix(path, ModulePath+"/")
	if rel == ModulePath || rel == "" {
		return LayerExempt // the root package holds only bench_test.go
	}
	last := rel[strings.LastIndexByte(rel, '/')+1:]
	switch {
	case strings.Contains(path, " ["): // test variant IDs, e.g. "p [p.test]"
		return LayerExempt
	case strings.HasSuffix(last, "_test") || strings.HasSuffix(last, ".test"):
		return LayerExempt
	case strings.HasPrefix(rel, "examples/"):
		return LayerExempt
	case rel == "internal/analysis" || strings.HasPrefix(rel, "internal/analysis/"):
		return LayerExempt
	case strings.HasSuffix(last, "_exempt"):
		return LayerExempt
	case rel == "internal/bench" || strings.HasPrefix(rel, "cmd/"):
		return LayerHarness
	case strings.HasSuffix(last, "_harness"):
		return LayerHarness
	default:
		return LayerModel
	}
}

// RunAnalyzers applies analyzers to a loaded package and returns the
// surviving findings: suppressed diagnostics are dropped, and allow
// comments missing a justification are themselves reported (check name
// "allow"). Findings come back sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Path:      pkg.Path,
			Layer:     Classify(pkg.Path),
		}
		pass.report = func(d Diagnostic) {
			posn := pkg.Fset.Position(d.Pos)
			if sup.allows(a.Name, posn) {
				return
			}
			out = append(out, Finding{Check: a.Name, Position: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	out = append(out, sup.missingReasons()...)
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	// Insertion sort: finding counts are tiny and this keeps the
	// framework free of even sort-package closures in the hot path.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && findingLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func findingLess(a, b Finding) bool {
	if a.Position.Filename != b.Position.Filename {
		return a.Position.Filename < b.Position.Filename
	}
	if a.Position.Line != b.Position.Line {
		return a.Position.Line < b.Position.Line
	}
	if a.Position.Column != b.Position.Column {
		return a.Position.Column < b.Position.Column
	}
	return a.Check < b.Check
}
