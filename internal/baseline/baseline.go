// Package baseline models the CPU-centric systems Hyperion is compared
// against: the pairwise accelerator-integration request paths of
// Table 1 (how many times the CPU touches a request, how many PCIe
// crossings and data copies it takes), a time-shared CPU service model
// for the predictability experiment, and a 4-level page-walk model for
// the translation-overhead experiment.
package baseline

import (
	"hyperion/internal/sim"
)

// Stage is one hop in a request path.
type Stage struct {
	Name    string
	Latency sim.Duration
	CPU     bool // consumes host CPU
	PCIe    bool // crosses PCIe
	Copy    bool // copies the payload
}

// Path is a named end-to-end request path.
type Path struct {
	Model  string
	Lacks  string // what Table 1 says this integration is missing
	Stages []Stage
}

// Totals summarises a path.
type Totals struct {
	Latency    sim.Duration
	CPUTouches int
	PCIeHops   int
	Copies     int
}

// Totals computes the path summary.
func (p Path) Totals() Totals {
	var t Totals
	for _, s := range p.Stages {
		t.Latency += s.Latency
		if s.CPU {
			t.CPUTouches++
		}
		if s.PCIe {
			t.PCIeHops++
		}
		if s.Copy {
			t.Copies++
		}
	}
	return t
}

// Characteristic stage latencies (host software path costs are
// kernel-stack-scale; device hops are PCIe-scale).
const (
	nicToKernel   = 4 * sim.Microsecond  // interrupt + driver + stack
	kernelToUser  = 2 * sim.Microsecond  // syscall boundary + copy
	cpuDispatch   = 2 * sim.Microsecond  // request parsing/scheduling
	pcieHop       = 900 * sim.Nanosecond // DMA doorbell + transfer setup
	flashRead     = 70 * sim.Microsecond
	accelCompute  = 5 * sim.Microsecond
	fsTranslation = 6 * sim.Microsecond // file→block mapping on the CPU
)

// Table1Paths returns one request path per prior-art row of Table 1,
// each serving the same logical request: "network request → compute on
// accelerator → data on storage → response".
func Table1Paths() []Path {
	return []Path{
		{
			Model: "gpu+network",
			Lacks: "no storage integration",
			Stages: []Stage{
				{"nic→kernel", nicToKernel, true, false, true},
				{"kernel→gpu (GPUDirect)", pcieHop, false, true, false},
				{"gpu compute", accelCompute, false, false, false},
				// Storage is not integrated: bounce through the CPU.
				{"gpu→cpu", pcieHop, true, true, true},
				{"cpu fs translation", fsTranslation, true, false, false},
				{"cpu→ssd", pcieHop, false, true, false},
				{"flash read", flashRead, false, false, false},
				{"ssd→cpu", pcieHop, true, true, true},
				{"cpu→nic", kernelToUser, true, false, true},
			},
		},
		{
			Model: "gpu+storage",
			Lacks: "CPU-assisted storage translation, no networking",
			Stages: []Stage{
				{"nic→kernel", nicToKernel, true, false, true},
				{"kernel→user dispatch", kernelToUser, true, false, true},
				{"cpu fs translation", fsTranslation, true, false, false},
				{"cpu→ssd doorbell", pcieHop, false, true, false},
				{"flash read", flashRead, false, false, false},
				{"ssd→gpu (p2p dma)", pcieHop, false, true, false},
				{"gpu compute", accelCompute, false, false, false},
				{"gpu→cpu", pcieHop, true, true, true},
				{"cpu→nic", kernelToUser, true, false, true},
			},
		},
		{
			Model: "fpga+network",
			Lacks: "no storage integration",
			Stages: []Stage{
				{"nic→fpga inline", pcieHop, false, true, false},
				{"fpga compute", accelCompute, false, false, false},
				{"fpga→cpu", pcieHop, true, true, true},
				{"cpu fs translation", fsTranslation, true, false, false},
				{"cpu→ssd", pcieHop, false, true, false},
				{"flash read", flashRead, false, false, false},
				{"ssd→cpu", pcieHop, true, true, true},
				{"cpu→nic", kernelToUser, true, false, true},
			},
		},
		{
			Model: "storage+network",
			Lacks: "block-level protocols only, no file systems",
			Stages: []Stage{
				{"nic→kernel target", nicToKernel, true, false, true},
				{"cpu block translation", cpuDispatch, true, false, false},
				{"cpu→ssd", pcieHop, false, true, false},
				{"flash read", flashRead, false, false, false},
				{"ssd→cpu", pcieHop, true, true, true},
				// No compute integration: app-level processing on CPU.
				{"cpu compute", 4 * accelCompute, true, false, false},
				{"cpu→nic", kernelToUser, true, false, true},
			},
		},
		{
			Model: "storage+accelerator",
			Lacks: "CPU does FS/translation, no/limited network",
			Stages: []Stage{
				{"nic→kernel", nicToKernel, true, false, true},
				{"kernel→user dispatch", kernelToUser, true, false, true},
				{"cpu fs translation", fsTranslation, true, false, false},
				{"cpu→csd", pcieHop, false, true, false},
				{"flash read", flashRead, false, false, false},
				{"csd near-data compute", accelCompute, false, false, false},
				{"csd→cpu", pcieHop, true, true, true},
				{"cpu→nic", kernelToUser, true, false, true},
			},
		},
		{
			Model: "commercial dpu",
			Lacks: "designed around specialized CPU cores",
			Stages: []Stage{
				{"nic→dpu-cpu (ARM)", 2 * sim.Microsecond, true, false, true},
				{"dpu-cpu dispatch", cpuDispatch, true, false, false},
				{"dpu-cpu fs translation", fsTranslation, true, false, false},
				{"dpu→ssd", pcieHop, false, true, false},
				{"flash read", flashRead, false, false, false},
				{"ssd→dpu-cpu", pcieHop, true, true, true},
				{"dpu-cpu compute", 2 * accelCompute, true, false, false},
				{"dpu-cpu→nic", 2 * sim.Microsecond, true, false, true},
			},
		},
	}
}

// HyperionPath is the CPU-free unified path: network → fabric pipeline →
// NVMe → fabric → network, no host software, no bounce copies.
func HyperionPath() Path {
	return Path{
		Model: "hyperion",
		Lacks: "—",
		Stages: []Stage{
			{"qsfp→fabric demux", 500 * sim.Nanosecond, false, false, false},
			{"fabric pipeline", accelCompute, false, false, false},
			{"fabric→ssd (on-card pcie)", pcieHop, false, true, false},
			{"flash read", flashRead, false, false, false},
			{"ssd→fabric", pcieHop, false, true, false},
			{"fabric→qsfp", 500 * sim.Nanosecond, false, false, false},
		},
	}
}

// TimeSharedCPU models request service on a time-shared host: requests
// arrive and are served by W workers with context-switch overhead,
// scheduling delay jitter, and interference from a background load.
// It produces the latency distribution E5 compares against the fabric's
// deterministic pipelines.
type TimeSharedCPU struct {
	eng     *sim.Engine
	workers []sim.Time
	rr      int
	// CtxSwitch is charged per dispatch; Quantum jitter models timer
	// interrupts and other tenants stealing the core.
	CtxSwitch   sim.Duration
	JitterMax   sim.Duration
	Background  float64 // probability a request gets preempted once
	PreemptCost sim.Duration
}

// NewTimeSharedCPU builds a host model with w worker cores.
func NewTimeSharedCPU(eng *sim.Engine, w int) *TimeSharedCPU {
	return &TimeSharedCPU{
		eng:         eng,
		workers:     make([]sim.Time, w),
		CtxSwitch:   3 * sim.Microsecond,
		JitterMax:   20 * sim.Microsecond,
		Background:  0.15,
		PreemptCost: 100 * sim.Microsecond,
	}
}

// Serve schedules a request needing the given service time; done fires
// at completion.
func (c *TimeSharedCPU) Serve(service sim.Duration, done func()) {
	// Pick the next worker round-robin (kernel runqueue-ish).
	w := c.rr % len(c.workers)
	c.rr++
	now := c.eng.Now()
	start := c.workers[w]
	if start < now {
		start = now
	}
	total := c.CtxSwitch + service + c.eng.Rand().Duration(0, c.JitterMax)
	if c.eng.Rand().Float64() < c.Background {
		total += c.PreemptCost
	}
	c.workers[w] = start.Add(total)
	c.eng.At(c.workers[w], "cpu.serve", done)
}

// PageWalker models x86-style 4-level page translation with a TLB:
// a hit is free, a miss walks 4 levels; each level is a DRAM access
// unless it hits the small page-walk cache.
type PageWalker struct {
	tlb      *lru
	pwc      *lru
	DRAMTime sim.Duration

	Walks, TLBHits, PWCHits int64
}

// NewPageWalker builds a walker with the given TLB entries.
func NewPageWalker(tlbEntries int) *PageWalker {
	return &PageWalker{
		tlb:      newLRU(tlbEntries),
		pwc:      newLRU(64),
		DRAMTime: 100 * sim.Nanosecond,
	}
}

// Translate returns the modeled cost of translating the virtual page.
func (w *PageWalker) Translate(page uint64) sim.Duration {
	w.Walks++
	if w.tlb.get(page) {
		w.TLBHits++
		return 0
	}
	var cost sim.Duration
	// Levels are keyed by progressively coarser prefixes (PML4, PDPT,
	// PD); the leaf PTE always costs a DRAM access.
	for _, shift := range walkShifts {
		key := page >> shift
		if w.pwc.get(key) {
			w.PWCHits++
			continue
		}
		cost += w.DRAMTime
		w.pwc.put(key)
	}
	cost += w.DRAMTime
	w.tlb.put(page)
	return cost
}

// walkShifts keys the three upper walk levels by progressively coarser
// page-number prefixes (PML4, PDPT, PD).
var walkShifts = [3]uint{27, 18, 9}

// lru is a small presence-only LRU (same scheme as seg's descriptor
// cache, duplicated to keep packages decoupled). The recency order is an
// index-linked list over a node arena, so get and put are O(1) with no
// steady-state allocation; eviction order is identical to the textbook
// list form (front = LRU, back = MRU).
type lru struct {
	cap        int
	idx        map[uint64]int32
	nodes      []lruNode
	head, tail int32 // head = LRU, tail = MRU; -1 when empty
	freeList   int32 // recycled node indexes, chained via next
}

type lruNode struct {
	key        uint64
	prev, next int32
}

func newLRU(cap int) *lru {
	return &lru{
		cap:      cap,
		idx:      make(map[uint64]int32, cap),
		head:     -1,
		tail:     -1,
		freeList: -1,
	}
}

func (c *lru) get(k uint64) bool {
	i, ok := c.idx[k]
	if !ok {
		return false
	}
	c.moveBack(i)
	return true
}

func (c *lru) put(k uint64) {
	if i, ok := c.idx[k]; ok {
		c.moveBack(i)
		return
	}
	if len(c.idx) >= c.cap {
		v := c.head
		c.unlink(v)
		delete(c.idx, c.nodes[v].key)
		c.nodes[v].next = c.freeList
		c.freeList = v
	}
	var i int32
	if c.freeList >= 0 {
		i = c.freeList
		c.freeList = c.nodes[i].next
		c.nodes[i] = lruNode{key: k}
	} else {
		c.nodes = append(c.nodes, lruNode{key: k})
		i = int32(len(c.nodes) - 1)
	}
	c.pushBack(i)
	c.idx[k] = i
}

func (c *lru) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *lru) pushBack(i int32) {
	n := &c.nodes[i]
	n.prev, n.next = c.tail, -1
	if c.tail >= 0 {
		c.nodes[c.tail].next = i
	} else {
		c.head = i
	}
	c.tail = i
}

func (c *lru) moveBack(i int32) {
	if c.tail == i {
		return
	}
	c.unlink(i)
	c.pushBack(i)
}
