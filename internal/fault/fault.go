// Package fault is the deterministic fault-injection plane for the
// simulator. Each layer that can fail (netsim, fabric, nvme, pcie,
// cluster) accepts a *Plan and consults it at well-defined injection
// points. A Plan is seeded from the experiment seed plus the layer
// name, so the same seed always injects the same faults at the same
// virtual times — chaos runs replay byte-identically.
//
// Determinism contract (see DESIGN.md §8):
//
//   - All randomness comes from sim.Rand; no wall clock, no math/rand.
//   - A nil Plan, and a Plan whose probability for a Kind is zero, is a
//     strict no-op: Roll returns false without consuming generator
//     state, so a zero-rate chaos run is bit-identical to a run with no
//     plan installed at all.
//   - Injection decisions are made at event-execution time in each
//     layer's own deterministic order, never from map iteration.
package fault

import "hyperion/internal/sim"

// Kind enumerates the fault classes the plane can inject. Each hooked
// layer consults the kinds that make sense for it and ignores the rest.
type Kind uint8

const (
	// Drop discards a frame/message at the switch or stream stage.
	Drop Kind = iota
	// Corrupt delivers a frame whose payload failed its integrity
	// check (the NIC counts and discards it) or flips a byte in an
	// NVMe read, depending on the layer.
	Corrupt
	// Reorder delays one frame past its successors.
	Reorder
	// MediaErr fails an NVMe command with a media/internal error.
	MediaErr
	// Timeout swallows an NVMe command: it is consumed but never
	// completes, exercising host-side deadlines.
	Timeout
	// LinkDown takes a PCIe link down for a retrain window.
	LinkDown
	// Crash takes a cluster node down for a restart window.
	Crash
	// Evict force-clears a fabric slot mid-flight: the tenant plane's
	// config engine loses the region (SEU scrub, PR region fault) and
	// must reschedule the occupant.
	Evict

	numKinds
)

var kindNames = [numKinds]string{
	"drop", "corrupt", "reorder", "media_err", "timeout", "link_down", "crash", "evict",
}

// String names the kind for counters and tables.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Plan is one layer's fault schedule: a seeded generator plus a
// probability per Kind. The zero probability for every kind (or a nil
// *Plan) disables injection entirely.
type Plan struct {
	layer string
	rng   *sim.Rand
	prob  [numKinds]float64
	count [numKinds]uint64
}

// fnv1a hashes the layer name so plans for different layers derived
// from the same experiment seed draw independent streams.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// NewPlan derives a layer's plan from the experiment seed. All
// probabilities start at zero; chain Set calls to arm kinds.
func NewPlan(seed uint64, layer string) *Plan {
	return &Plan{layer: layer, rng: sim.NewRand(seed ^ fnv1a(layer))}
}

// NewPlanIndexed derives a plan for the idx-th instance of a layer
// (box 3's NVMe device, shard 2's fabric...). NewPlan keys the rng
// stream on the layer *name* alone, so giving several instances the
// same name would hand them correlated — in fact identical — fault
// streams; mixing the index in keeps instance streams independent
// while remaining a pure function of (seed, layer, idx), independent
// of how instances are laid out across cluster shards.
func NewPlanIndexed(seed uint64, layer string, idx int) *Plan {
	return &Plan{
		layer: layer,
		rng:   sim.NewRand(seed ^ fnv1a(layer) ^ (0x9e3779b97f4a7c15 * (uint64(idx) + 1))),
	}
}

// Layer reports the layer name the plan was derived for.
func (p *Plan) Layer() string {
	if p == nil {
		return ""
	}
	return p.layer
}

// Set arms a kind with probability prob (clamped to [0, 1]) and
// returns the plan for chaining.
func (p *Plan) Set(k Kind, prob float64) *Plan {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	p.prob[k] = prob
	return p
}

// Enabled reports whether any kind is armed. Layers may use it to skip
// per-operation checks wholesale.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	for _, pr := range p.prob {
		if pr > 0 {
			return true
		}
	}
	return false
}

// Roll decides whether to inject one fault of the given kind. It is
// nil-safe, and when the kind's probability is zero it returns false
// WITHOUT consuming generator state — the strict-no-op guarantee that
// keeps zero-rate plans bit-identical to no plan at all.
func (p *Plan) Roll(k Kind) bool {
	if p == nil || p.prob[k] == 0 {
		return false
	}
	if p.rng.Float64() >= p.prob[k] {
		return false
	}
	p.count[k]++
	return true
}

// Delay draws a uniform duration in [lo, hi] from the plan's stream,
// for layers that need a fault-specific delay (e.g. reorder slip).
// Call it only after a successful Roll so disabled plans stay no-ops.
func (p *Plan) Delay(lo, hi sim.Duration) sim.Duration {
	return p.rng.Duration(lo, hi)
}

// Pick draws a uniform index in [0, n) from the plan's stream, for
// layers that need a fault position (e.g. which byte to corrupt).
// Call it only after a successful Roll so disabled plans stay no-ops.
func (p *Plan) Pick(n int) int {
	if n <= 1 {
		return 0
	}
	return p.rng.Intn(n)
}

// Count reports how many faults of a kind the plan has injected.
func (p *Plan) Count(k Kind) uint64 {
	if p == nil {
		return 0
	}
	return p.count[k]
}

// Total reports all faults injected across kinds.
func (p *Plan) Total() uint64 {
	if p == nil {
		return 0
	}
	var t uint64
	for _, c := range p.count {
		t += c
	}
	return t
}

// Window is one scheduled outage: the entity is down in [Start, End).
type Window struct {
	Start, End sim.Time
}

// Windows precomputes a bounded outage schedule for kinds that model
// down/up cycles (LinkDown, Crash). Up periods are exponentially
// distributed with mean meanUp; each outage lasts downFor. Generation
// stops at horizon, so schedulers installing the windows as engine
// events never keep an engine alive forever. A nil plan or a zero
// probability for the kind yields no windows and consumes no state.
func (p *Plan) Windows(k Kind, horizon sim.Time, meanUp, downFor sim.Duration) []Window {
	if p == nil || p.prob[k] == 0 || meanUp <= 0 || downFor <= 0 {
		return nil
	}
	var ws []Window
	t := sim.Time(0)
	for {
		t += sim.Time(p.rng.Exp(meanUp))
		if t >= horizon {
			return ws
		}
		ws = append(ws, Window{Start: t, End: t + sim.Time(downFor)})
		p.count[k]++
		t += sim.Time(downFor)
	}
}
