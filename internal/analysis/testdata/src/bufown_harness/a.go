// Package bufown_harness proves bufown runs on every layer: a leaked
// wire.Buf in harness code is just as much a memory bug as in model
// code, so the _harness suffix does not exempt it.
package bufown_harness

import "hyperion/internal/wire"

var pool = wire.NewPool(64)

func leakInHarness(bad bool) int {
	b := pool.Get(8) // want `b is not released on every path`
	if bad {
		return 0
	}
	n := b.Len()
	b.Release()
	return n
}

func balancedInHarness() {
	b := pool.Get(8)
	b.Release()
}
