// Package lsm implements a log-structured merge tree over the segment
// store: an in-memory memtable flushed into sorted-run objects, with
// size-tiered compaction across levels and tombstone-based deletion.
// Together with the B+ tree it forms the reusable core storage
// abstraction set the paper's §4 lists (B+, LSM) — and the backend pair
// the KV experiments ablate.
package lsm

import (
	"errors"
	"fmt"
	"hyperion/internal/wire"
	"sort"

	"hyperion/internal/seg"
)

// Tuning. Runs per level before compaction into the next level; memtable
// capacity in entries.
const (
	DefaultMemtableCap = 4096
	RunsPerLevel       = 4
	MaxLevels          = 8
)

// entryBytes: key(8) + val(8) + flags(1), padded to 20 for alignment.
const entryBytes = 20

const manifestMagic = 0x4c534d31 // "LSM1"

// Errors.
var ErrCorrupt = errors.New("lsm: corrupt structure")

// Tree is an LSM tree handle (single-writer, run-to-completion).
type Tree struct {
	v       *seg.SyncView
	meta    seg.ObjectID
	durable bool
	memCap  int

	mem    map[uint64]memVal
	levels [][]run // levels[0] newest-first runs
	nextLo uint64

	// Stats for the ablation benches.
	Flushes, Compactions int64
	EntriesWrittenToRuns int64 // total entries written into run objects
	LogicalWrites        int64 // Put/Delete count
}

type memVal struct {
	val       uint64
	tombstone bool
}

type run struct {
	id     seg.ObjectID
	count  int
	minKey uint64
	maxKey uint64
}

// Create initializes a new tree with metadata at metaID.
func Create(v *seg.SyncView, metaID seg.ObjectID, durable bool, memCap int) (*Tree, error) {
	if memCap <= 0 {
		memCap = DefaultMemtableCap
	}
	t := &Tree{
		v: v, meta: metaID, durable: durable, memCap: memCap,
		mem: make(map[uint64]memVal), levels: make([][]run, MaxLevels),
		nextLo: metaID.Lo + 1,
	}
	if _, err := v.Alloc(metaID, 8192, durable, seg.HintAuto); err != nil {
		return nil, err
	}
	return t, t.writeManifest()
}

// Open loads an existing tree (memtable contents are lost on restart by
// design; durability comes from flushed runs).
func Open(v *seg.SyncView, metaID seg.ObjectID) (*Tree, error) {
	t := &Tree{v: v, meta: metaID, mem: make(map[uint64]memVal), levels: make([][]run, MaxLevels)}
	buf, err := v.ReadAt(metaID, 0, 8192)
	if err != nil {
		return nil, err
	}
	if wire.LE32At(buf, 0) != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	t.durable = buf[4] == 1
	t.memCap = int(wire.LE32At(buf, 8))
	t.nextLo = wire.LE64At(buf, 16)
	off := 24
	for l := 0; l < MaxLevels; l++ {
		n := int(wire.LE16At(buf, off))
		off += 2
		for i := 0; i < n; i++ {
			r := run{
				id:     seg.ObjectID{Hi: wire.LE64At(buf, off), Lo: wire.LE64At(buf, off+8)},
				count:  int(wire.LE32At(buf, off+16)),
				minKey: wire.LE64At(buf, off+20),
				maxKey: wire.LE64At(buf, off+28),
			}
			t.levels[l] = append(t.levels[l], r)
			off += 36
		}
	}
	return t, nil
}

func (t *Tree) writeManifest() error {
	buf := make([]byte, 8192)
	wire.PutLE32At(buf, 0, manifestMagic)
	if t.durable {
		buf[4] = 1
	}
	wire.PutLE32At(buf, 8, uint32(t.memCap))
	wire.PutLE64At(buf, 16, t.nextLo)
	off := 24
	for l := 0; l < MaxLevels; l++ {
		wire.PutLE16At(buf, off, uint16(len(t.levels[l])))
		off += 2
		for _, r := range t.levels[l] {
			wire.PutLE64At(buf, off, r.id.Hi)
			wire.PutLE64At(buf, off+8, r.id.Lo)
			wire.PutLE32At(buf, off+16, uint32(r.count))
			wire.PutLE64At(buf, off+20, r.minKey)
			wire.PutLE64At(buf, off+28, r.maxKey)
			off += 36
			if off > len(buf)-40 {
				return fmt.Errorf("%w: manifest overflow", ErrCorrupt)
			}
		}
	}
	return t.v.WriteAt(t.meta, 0, buf)
}

// Put inserts or replaces key → val.
func (t *Tree) Put(key, val uint64) error {
	t.LogicalWrites++
	t.mem[key] = memVal{val: val}
	if len(t.mem) >= t.memCap {
		return t.Flush()
	}
	return nil
}

// Delete writes a tombstone.
func (t *Tree) Delete(key uint64) error {
	t.LogicalWrites++
	t.mem[key] = memVal{tombstone: true}
	if len(t.mem) >= t.memCap {
		return t.Flush()
	}
	return nil
}

// Get looks key up: memtable first, then runs newest-to-oldest.
func (t *Tree) Get(key uint64) (uint64, bool, error) {
	if mv, ok := t.mem[key]; ok {
		if mv.tombstone {
			return 0, false, nil
		}
		return mv.val, true, nil
	}
	for l := 0; l < MaxLevels; l++ {
		for _, r := range t.levels[l] {
			if key < r.minKey || key > r.maxKey {
				continue
			}
			val, tomb, found, err := t.searchRun(r, key)
			if err != nil {
				return 0, false, err
			}
			if found {
				if tomb {
					return 0, false, nil
				}
				return val, true, nil
			}
		}
	}
	return 0, false, nil
}

type entry struct {
	key, val  uint64
	tombstone bool
}

// Flush writes the memtable as a new L0 run.
func (t *Tree) Flush() error {
	if len(t.mem) == 0 {
		return nil
	}
	entries := make([]entry, 0, len(t.mem))
	for k, mv := range t.mem {
		entries = append(entries, entry{key: k, val: mv.val, tombstone: mv.tombstone})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	r, err := t.writeRun(entries)
	if err != nil {
		return err
	}
	// Newest first.
	t.levels[0] = append([]run{r}, t.levels[0]...)
	t.mem = make(map[uint64]memVal)
	t.Flushes++
	if err := t.maybeCompact(); err != nil {
		return err
	}
	return t.writeManifest()
}

func (t *Tree) writeRun(entries []entry) (run, error) {
	id := seg.ObjectID{Hi: t.meta.Hi, Lo: t.nextLo}
	t.nextLo++
	size := int64(16 + len(entries)*entryBytes)
	if _, err := t.v.Alloc(id, size, t.durable, seg.HintAuto); err != nil {
		return run{}, err
	}
	buf := make([]byte, size)
	wire.PutLE64At(buf, 0, uint64(len(entries)))
	off := 16
	for _, e := range entries {
		wire.PutLE64At(buf, off, e.key)
		wire.PutLE64At(buf, off+8, e.val)
		if e.tombstone {
			buf[off+16] = 1
		}
		off += entryBytes
	}
	if err := t.v.WriteAt(id, 0, buf); err != nil {
		return run{}, err
	}
	t.EntriesWrittenToRuns += int64(len(entries))
	return run{id: id, count: len(entries), minKey: entries[0].key, maxKey: entries[len(entries)-1].key}, nil
}

func (t *Tree) readRun(r run) ([]entry, error) {
	size := int64(16 + r.count*entryBytes)
	buf, err := t.v.ReadAt(r.id, 0, size)
	if err != nil {
		return nil, err
	}
	n := int(wire.LE64At(buf, 0))
	if n != r.count {
		return nil, fmt.Errorf("%w: run count %d != manifest %d", ErrCorrupt, n, r.count)
	}
	out := make([]entry, n)
	off := 16
	for i := range out {
		out[i] = entry{
			key:       wire.LE64At(buf, off),
			val:       wire.LE64At(buf, off+8),
			tombstone: buf[off+16] == 1,
		}
		off += entryBytes
	}
	return out, nil
}

// searchRun binary-searches one run for key, reading only the pages it
// touches (charged through the view at page granularity).
func (t *Tree) searchRun(r run, key uint64) (val uint64, tombstone, found bool, err error) {
	lo, hi := 0, r.count-1
	for lo <= hi {
		mid := (lo + hi) / 2
		e, rerr := t.readEntry(r, mid)
		if rerr != nil {
			return 0, false, false, rerr
		}
		switch {
		case e.key == key:
			return e.val, e.tombstone, true, nil
		case e.key < key:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return 0, false, false, nil
}

func (t *Tree) readEntry(r run, i int) (entry, error) {
	buf, err := t.v.ReadAt(r.id, int64(16+i*entryBytes), entryBytes)
	if err != nil {
		return entry{}, err
	}
	return entry{
		key:       wire.LE64At(buf, 0),
		val:       wire.LE64At(buf, 8),
		tombstone: buf[16] == 1,
	}, nil
}

// maybeCompact merges levels that exceed RunsPerLevel into the next
// level (size-tiered policy). The bottom level drops tombstones.
func (t *Tree) maybeCompact() error {
	for l := 0; l < MaxLevels-1; l++ {
		if len(t.levels[l]) < RunsPerLevel {
			continue
		}
		// Merge all runs of level l plus all of level l+1 into one run.
		var sources []run
		sources = append(sources, t.levels[l]...)   // newest first
		sources = append(sources, t.levels[l+1]...) // older
		// Tombstones may be dropped only when nothing older exists below
		// the destination level.
		drop := true
		for j := l + 2; j < MaxLevels; j++ {
			if len(t.levels[j]) > 0 {
				drop = false
				break
			}
		}
		merged, err := t.mergeRuns(sources, drop)
		if err != nil {
			return err
		}
		for _, r := range sources {
			if err := t.v.Free(r.id); err != nil {
				return err
			}
		}
		t.levels[l] = nil
		if len(merged.idOrEmpty()) == 0 {
			t.levels[l+1] = nil
		} else {
			t.levels[l+1] = []run{merged.run}
		}
		t.Compactions++
	}
	return nil
}

type mergedRun struct {
	run   run
	empty bool
}

func (m mergedRun) idOrEmpty() []run {
	if m.empty {
		return nil
	}
	return []run{m.run}
}

// mergeRuns performs an n-way merge; for equal keys the earliest source
// (newest) wins. dropTombstones removes deletions when merging into the
// bottom.
func (t *Tree) mergeRuns(sources []run, dropTombstones bool) (mergedRun, error) {
	lists := make([][]entry, len(sources))
	for i, r := range sources {
		es, err := t.readRun(r)
		if err != nil {
			return mergedRun{}, err
		}
		lists[i] = es
	}
	idx := make([]int, len(lists))
	var out []entry
	for {
		best := -1
		var bestKey uint64
		for i := range lists {
			if idx[i] >= len(lists[i]) {
				continue
			}
			k := lists[i][idx[i]].key
			if best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			break
		}
		e := lists[best][idx[best]]
		// Consume this key from every list; the newest (lowest index)
		// occurrence wins.
		winner := e
		winnerSrc := best
		for i := range lists {
			for idx[i] < len(lists[i]) && lists[i][idx[i]].key == bestKey {
				if i < winnerSrc {
					winner = lists[i][idx[i]]
					winnerSrc = i
				}
				idx[i]++
			}
		}
		if dropTombstones && winner.tombstone {
			continue
		}
		out = append(out, winner)
	}
	if len(out) == 0 {
		return mergedRun{empty: true}, nil
	}
	r, err := t.writeRun(out)
	if err != nil {
		return mergedRun{}, err
	}
	return mergedRun{run: r}, nil
}

// Scan visits keys in [from, to) in order through a merge of the
// memtable and all runs.
func (t *Tree) Scan(from, to uint64, fn func(key, val uint64) bool) error {
	// Materialize the visible view (fine at experiment scales).
	visible := make(map[uint64]memVal)
	for l := MaxLevels - 1; l >= 0; l-- {
		for i := len(t.levels[l]) - 1; i >= 0; i-- {
			es, err := t.readRun(t.levels[l][i])
			if err != nil {
				return err
			}
			for _, e := range es {
				visible[e.key] = memVal{val: e.val, tombstone: e.tombstone}
			}
		}
	}
	for k, mv := range t.mem {
		visible[k] = mv
	}
	keys := make([]uint64, 0, len(visible))
	for k := range visible {
		if k >= from && k < to && !visible[k].tombstone {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !fn(k, visible[k].val) {
			return nil
		}
	}
	return nil
}

// Runs reports the current run count per level (for tests/benches).
func (t *Tree) Runs() []int {
	out := make([]int, MaxLevels)
	for l := range t.levels {
		out[l] = len(t.levels[l])
	}
	return out
}

// WriteAmplification is run-entries-written per logical write.
func (t *Tree) WriteAmplification() float64 {
	if t.LogicalWrites == 0 {
		return 0
	}
	return float64(t.EntriesWrittenToRuns) / float64(t.LogicalWrites)
}
