package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func parseDecl(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "c.go", "package p\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd
		}
	}
	t.Fatal("no func decl")
	return nil
}

func TestParseDoc(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		want    Contract
		wantErr int
	}{
		{
			name: "owns",
			src:  "// F allocates.\n//wire:owns\nfunc F() {}",
			want: Contract{Owns: true},
		},
		{
			name: "takes_and_borrows",
			src:  "//wire:takes b\n//wire:borrows hdr\nfunc F(b, hdr int) {}",
			want: Contract{Takes: []string{"b"}, Borrows: []string{"hdr"}},
		},
		{
			name: "sends_field",
			src:  "//wire:sends f.Buf\nfunc F(f int) error { return nil }",
			want: Contract{Sends: []SendRef{{Param: "f", Field: "Buf"}}},
		},
		{
			name: "sends_bare_param",
			src:  "//wire:sends b\nfunc F(b int) error { return nil }",
			want: Contract{Sends: []SendRef{{Param: "b"}}},
		},
		{
			name:    "owns_with_arg_is_error",
			src:     "//wire:owns b\nfunc F() {}",
			wantErr: 1,
		},
		{
			name:    "takes_without_param_is_error",
			src:     "//wire:takes\nfunc F() {}",
			wantErr: 1,
		},
		{
			name:    "unknown_verb_is_error",
			src:     "//wire:yields b\nfunc F() {}",
			wantErr: 1,
		},
		{
			name:    "deep_field_path_is_error",
			src:     "//wire:sends f.A.B\nfunc F(f int) {}",
			wantErr: 1,
		},
		{
			name: "plain_comment_ignored",
			src:  "// F is ordinary; wire:owns in prose does not bind.\nfunc F() {}",
			want: Contract{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fd := parseDecl(t, tt.src)
			got, errs := parseDoc(fd.Doc)
			if len(errs) != tt.wantErr {
				t.Fatalf("errs = %v, want %d", errs, tt.wantErr)
			}
			if tt.wantErr == 0 && !reflect.DeepEqual(got, tt.want) {
				t.Errorf("contract = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestBuiltinsCopied(t *testing.T) {
	m := Builtins()
	m["hyperion/internal/wire.Pool.Get"] = Contract{}
	if !builtins["hyperion/internal/wire.Pool.Get"].Owns {
		t.Error("Builtins() must return a copy, not the live table")
	}
}
