package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hyperion/internal/ebpf"
	"hyperion/internal/ebpf/gofront"
	"hyperion/internal/ehdl"
)

// cmdBuild is the offload author's inner loop: compile one
// restricted-Go source through the gofront frontend, run it through
// the verifier and the hardware pipeline compiler, and print the
// program an operator would deploy — or every contract diagnostic
// when the source steps outside the subset. Exit status 1 means the
// program was rejected; the diagnostics on stderr say which contract
// rule each offending line violated.
func cmdBuild(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: hyperionctl build <file.go>")
		return 2
	}
	path := args[0]
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "build:", err)
		return 1
	}
	prog, err := gofront.Compile(filepath.Base(path), src, gofront.Options{})
	if err != nil {
		var diags gofront.DiagList
		if errors.As(err, &diags) {
			for _, d := range diags {
				fmt.Fprintln(stderr, d.Error())
			}
			fmt.Fprintf(stderr, "build: %s rejected (%d diagnostics)\n", path, len(diags))
		} else {
			fmt.Fprintln(stderr, "build:", err)
		}
		return 1
	}

	maps := &ebpf.MapSet{}
	for _, m := range prog.Maps {
		maps.Add(ebpf.NewHashMap(m.KeySize, m.ValueSize, m.Entries))
	}
	vcfg := ebpf.DefaultVerifierConfig(maps)
	vcfg.CtxSize = prog.CtxSize
	pipe, err := ehdl.Compile(prog.Insns, ehdl.Options{
		Name:     prog.Entry,
		AuthTag:  "hyperionctl-build",
		Optimize: true,
		CtxBytes: prog.CtxSize,
		Verifier: vcfg,
	})
	if err != nil {
		fmt.Fprintln(stderr, "build: pipeline:", err)
		return 1
	}

	fmt.Fprintf(stdout, "entry %s: ctx %d bytes, %d instructions\n",
		prog.Entry, prog.CtxSize, len(prog.Insns))
	for _, m := range prog.Maps {
		fmt.Fprintf(stdout, "map %d %s: key %dB value %dB, %d entries\n",
			m.ID, m.Name, m.KeySize, m.ValueSize, m.Entries)
	}
	st := pipe.Stats
	fmt.Fprintf(stdout, "pipeline: %d uops (%d before optimization), depth %d, II %d, %d mem ops, %d helper calls\n",
		st.Instructions, st.OrigInsns, st.Depth, st.II, st.MemOps, st.HelperCalls)
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, ebpf.Disassemble(prog.Insns))
	return 0
}
