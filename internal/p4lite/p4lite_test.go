package p4lite

import (
	"errors"
	"testing"

	"hyperion/internal/ebpf"
	"hyperion/internal/ehdl"
	"hyperion/internal/sim"
)

// aclTable is a representative firewall/steering table over the
// trace.Packet header layout (src ip @0, dst port @10, proto @12).
func aclTable() *Table {
	return &Table{
		Name: "acl",
		Keys: []Field{
			{Name: "src_ip", Offset: 0, Width: 4},
			{Name: "dst_port", Offset: 10, Width: 2},
		},
		Entries: []Entry{
			{Match: []uint64{0x0a000001, 22}, Action: Action{Kind: ActionDrop}},
			{Match: []uint64{0x0a000002, 443}, Action: Action{Kind: ActionForward, Port: 7}},
			{Match: []uint64{0xc0a80001, 80}, Action: Action{Kind: ActionPass}},
		},
		Default: Action{Kind: ActionDrop},
	}
}

func mkPkt(src uint32, port uint16) []byte {
	p := make([]byte, 20)
	p[0] = byte(src)
	p[1] = byte(src >> 8)
	p[2] = byte(src >> 16)
	p[3] = byte(src >> 24)
	p[10] = byte(port)
	p[11] = byte(port >> 8)
	return p
}

func TestCompiledMatchesModel(t *testing.T) {
	tbl := aclTable()
	prog, err := tbl.Compile(20)
	if err != nil {
		t.Fatal(err)
	}
	vm := ebpf.NewVM(nil)
	if err := vm.Load(prog); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  uint32
		port uint16
	}{
		{0x0a000001, 22},   // entry 0: drop
		{0x0a000002, 443},  // entry 1: forward 7
		{0xc0a80001, 80},   // entry 2: pass
		{0x0a000001, 80},   // partial match: default drop
		{0x12345678, 9999}, // no match: default
	}
	for _, c := range cases {
		pkt := mkPkt(c.src, c.port)
		want := tbl.Eval(pkt)
		got, err := vm.Run(pkt)
		if err != nil {
			t.Fatalf("src %#x port %d: %v", c.src, c.port, err)
		}
		if got != want {
			t.Fatalf("src %#x port %d: compiled %#x, model %#x", c.src, c.port, got, want)
		}
	}
}

func TestPropertyRandomTables(t *testing.T) {
	r := sim.NewRand(19)
	for trial := 0; trial < 30; trial++ {
		nkeys := 1 + r.Intn(3)
		var keys []Field
		widths := []int{1, 2, 4}
		for k := 0; k < nkeys; k++ {
			w := widths[r.Intn(len(widths))]
			keys = append(keys, Field{Name: "f", Offset: k * 4, Width: w})
		}
		tbl := &Table{Name: "rand", Keys: keys, Default: Action{Kind: ActionKind(r.Intn(2))}}
		nents := 1 + r.Intn(8)
		for e := 0; e < nents; e++ {
			var match []uint64
			for _, f := range keys {
				match = append(match, r.Uint64()%(1<<(8*uint(f.Width))))
			}
			tbl.Entries = append(tbl.Entries, Entry{
				Match:  match,
				Action: Action{Kind: ActionKind(r.Intn(3)), Port: uint8(r.Intn(16))},
			})
		}
		prog, err := tbl.Compile(20)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		vm := ebpf.NewVM(nil)
		_ = vm.Load(prog)
		for p := 0; p < 50; p++ {
			pkt := make([]byte, 20)
			for i := range pkt {
				pkt[i] = byte(r.Intn(4)) // small alphabet provokes matches
			}
			// Sometimes plant an exact entry match.
			if r.Intn(2) == 0 && len(tbl.Entries) > 0 {
				e := tbl.Entries[r.Intn(len(tbl.Entries))]
				for ki, f := range keys {
					v := e.Match[ki]
					for b := 0; b < f.Width; b++ {
						pkt[f.Offset+b] = byte(v >> (8 * uint(b)))
					}
				}
			}
			want := tbl.Eval(pkt)
			got, err := vm.Run(pkt)
			if err != nil {
				t.Fatalf("trial %d pkt %d: %v", trial, p, err)
			}
			if got != want {
				t.Fatalf("trial %d pkt %d: compiled %#x model %#x", trial, p, got, want)
			}
		}
	}
}

func TestWideKeyUsesRegisterCompare(t *testing.T) {
	tbl := &Table{
		Name:    "wide",
		Keys:    []Field{{Name: "cookie", Offset: 0, Width: 8}},
		Entries: []Entry{{Match: []uint64{0xdeadbeefcafef00d}, Action: Action{Kind: ActionDrop}}},
		Default: Action{Kind: ActionPass},
	}
	prog, err := tbl.Compile(20)
	if err != nil {
		t.Fatal(err)
	}
	vm := ebpf.NewVM(nil)
	_ = vm.Load(prog)
	pkt := make([]byte, 20)
	for i, b := range []byte{0x0d, 0xf0, 0xfe, 0xca, 0xef, 0xbe, 0xad, 0xde} {
		pkt[i] = b
	}
	got, err := vm.Run(pkt)
	if err != nil || got != 1 {
		t.Fatalf("wide match = %#x, %v", got, err)
	}
	pkt[0] = 0
	got, _ = vm.Run(pkt)
	if got != 0 {
		t.Fatalf("wide mismatch = %#x, want pass", got)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Table{
		{Name: "nokeys", Default: Action{}},
		{Name: "badwidth", Keys: []Field{{Offset: 0, Width: 3}}},
		{Name: "oob", Keys: []Field{{Offset: 18, Width: 4}}},
		{Name: "arity", Keys: []Field{{Offset: 0, Width: 1}},
			Entries: []Entry{{Match: []uint64{1, 2}}}},
		{Name: "overflow", Keys: []Field{{Offset: 0, Width: 1}},
			Entries: []Entry{{Match: []uint64{300}}}},
	}
	for _, tbl := range bad {
		if _, err := tbl.Compile(20); err == nil {
			t.Errorf("table %s compiled, want error", tbl.Name)
		}
	}
	huge := &Table{Name: "huge", Keys: []Field{{Offset: 0, Width: 1}}}
	for i := 0; i < maxEntries+1; i++ {
		huge.Entries = append(huge.Entries, Entry{Match: []uint64{uint64(i % 256)}})
	}
	if _, err := huge.Compile(20); !errors.Is(err, ErrTooBig) {
		t.Fatalf("huge err = %v", err)
	}
}

func TestCompilesToPipeline(t *testing.T) {
	// The table program is a valid eHDL input — eBPF as the unifying IR.
	tbl := aclTable()
	prog, err := tbl.Compile(20)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := ebpf.DefaultVerifierConfig(nil)
	vcfg.CtxSize = 20
	pipe, err := ehdl.Compile(prog, ehdl.Options{Name: "acl", Optimize: true, CtxBytes: 20, Verifier: vcfg})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Stats.II != 1 {
		t.Fatalf("match-action pipeline II = %d, want 1 (line rate)", pipe.Stats.II)
	}
	res := pipe.Exec(mkPkt(0x0a000002, 443))
	if res.Err != nil || res.Ret != 0x107 {
		t.Fatalf("pipeline verdict = %#x, %v", res.Ret, res.Err)
	}
}
