package chase

import (
	"testing"

	"hyperion/internal/core"
	"hyperion/internal/ebpf"
	"hyperion/internal/netsim"
	"hyperion/internal/rpc"
	"hyperion/internal/seg"
	"hyperion/internal/sim"
	"hyperion/internal/storage/bptree"
	"hyperion/internal/transport"
)

// rig boots a DPU with a populated tree and a remote client.
func rig(t testing.TB, keys int) (*sim.Engine, *Service, *Client, *bptree.Tree) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netsim.New(eng, netsim.DefaultConfig())
	cfg := core.DefaultConfig("chase")
	cfg.NVMe.Blocks = 1 << 20
	cfg.Seg.DRAMBytes = 64 << 20
	cfg.Seg.CheckpointEvery = 0
	d, _, err := core.Boot(eng, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bptree.Create(d.View, seg.OID(0xBEE, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if err := tree.Insert(uint64(i*2), uint64(i*1000)); err != nil {
			t.Fatal(err)
		}
	}
	d.View.TakeCost() // discard load-phase cost
	svc, err := NewService(d, d.CtrlSrv, tree)
	if err != nil {
		t.Fatal(err)
	}
	cn, _ := net.Attach("client")
	cli := rpc.NewClient(eng, transport.New(eng, cfg.Transport, cn))
	cli.Timeout = sim.Duration(sim.Second)
	return eng, svc, NewClient(cli, d.ControlAddr()), tree
}

func TestStepProgramVerifies(t *testing.T) {
	prog, err := ebpf.Assemble(StepProgram())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ebpf.DefaultVerifierConfig(nil)
	cfg.CtxSize = CtxBytes
	if err := ebpf.Verify(prog, cfg); err != nil {
		t.Fatalf("per-hop program rejected: %v", err)
	}
	if len(prog) > 400 {
		t.Fatalf("program unexpectedly large: %d insns", len(prog))
	}
}

func TestOffloadGetFindsKeys(t *testing.T) {
	eng, _, cli, tree := rig(t, 20000)
	if tree.Height() < 3 {
		t.Fatalf("height = %d, want ≥3 for a meaningful chase", tree.Height())
	}
	for _, k := range []uint64{0, 2, 19998, 10000} {
		var got GetReply
		var gerr error
		cli.OffloadGet(k, func(r GetReply, err error) { got, gerr = r, err })
		eng.Run()
		if gerr != nil || !got.Found || got.Value != k/2*1000 {
			t.Fatalf("OffloadGet(%d) = %+v, %v", k, got, gerr)
		}
		if got.Hops != tree.Height() {
			t.Fatalf("hops = %d, want height %d", got.Hops, tree.Height())
		}
	}
	var miss GetReply
	cli.OffloadGet(1, func(r GetReply, err error) { miss = r })
	eng.Run()
	if miss.Found {
		t.Fatal("found absent key")
	}
}

func TestClientSideGetMatchesOffload(t *testing.T) {
	eng, _, cli, _ := rig(t, 20000)
	r := sim.NewRand(5)
	for i := 0; i < 30; i++ {
		k := uint64(r.Intn(40000))
		var off, cls GetReply
		var offErr, clsErr error
		cli.OffloadGet(k, func(rep GetReply, err error) { off, offErr = rep, err })
		eng.Run()
		cli.ClientSideGet(k, func(rep GetReply, err error) { cls, clsErr = rep, err })
		eng.Run()
		if offErr != nil || clsErr != nil {
			t.Fatalf("key %d: errs %v %v", k, offErr, clsErr)
		}
		if off.Found != cls.Found || off.Value != cls.Value {
			t.Fatalf("key %d: offload %+v vs client %+v", k, off, cls)
		}
	}
}

func TestOffloadLatencyBeatsClientSide(t *testing.T) {
	eng, _, cli, tree := rig(t, 20000)
	h := tree.Height()
	measure := func(get func(uint64, func(GetReply, error))) sim.Duration {
		start := eng.Now()
		var end sim.Time
		get(4242, func(GetReply, error) { end = eng.Now() })
		eng.Run()
		return end.Sub(start)
	}
	off := measure(cli.OffloadGet)
	cls := measure(cli.ClientSideGet)
	if off >= cls {
		t.Fatalf("offload %v not faster than client-side %v (height %d)", off, cls, h)
	}
	// Client-side pays ≥ height RTT-ish hops; offloaded pays ~1.
	if cls < off+sim.Duration(h-1)*2*sim.Microsecond {
		t.Logf("warning: separation small: off=%v cls=%v", off, cls)
	}
}

func TestRTTAccounting(t *testing.T) {
	eng, svc, cli, tree := rig(t, 20000)
	cli.OffloadGet(100, func(GetReply, error) {})
	eng.Run()
	if cli.RTTs != 1 {
		t.Fatalf("offload RTTs = %d, want 1", cli.RTTs)
	}
	cli.RTTs = 0
	cli.ClientSideGet(100, func(GetReply, error) {})
	eng.Run()
	want := int64(1 + tree.Height()) // meta + one per level
	if cli.RTTs != want {
		t.Fatalf("client-side RTTs = %d, want %d", cli.RTTs, want)
	}
	if svc.NodeFetches != int64(tree.Height()) {
		t.Fatalf("node fetches = %d", svc.NodeFetches)
	}
}

func TestStepProgramAgainstTreeModel(t *testing.T) {
	// The verified program must agree with the Go traversal for many
	// random keys (tests the unrolled binary search edge cases).
	eng, _, cli, tree := rig(t, 5000)
	r := sim.NewRand(11)
	for i := 0; i < 100; i++ {
		k := uint64(r.Intn(12000))
		wantVal, wantOK, err := tree.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		var got GetReply
		var gerr error
		cli.OffloadGet(k, func(rep GetReply, err error) { got, gerr = rep, err })
		eng.Run()
		if gerr != nil {
			t.Fatalf("key %d: %v", k, gerr)
		}
		if got.Found != wantOK || (wantOK && got.Value != wantVal) {
			t.Fatalf("key %d: program %+v, model (%d,%v)", k, got, wantVal, wantOK)
		}
	}
}

func BenchmarkOffloadGet(b *testing.B) {
	eng, _, cli, _ := rig(b, 50000)
	r := sim.NewRand(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.OffloadGet(uint64(r.Intn(100000)), func(GetReply, error) {})
		eng.Run()
	}
}
