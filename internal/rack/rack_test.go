package rack

import (
	"fmt"
	"testing"

	"hyperion/internal/sim"
)

// smallConfig is a fast rack for unit tests: 4 boxes, enough traffic
// to exercise every op kind and the replication fan-out.
func smallConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Boxes = 4
	cfg.Shards = shards
	cfg.ClientsPerBox = 200
	cfg.RatePerClient = 500
	cfg.Horizon = 500 * sim.Microsecond
	cfg.KeysPerBox = 64
	return cfg
}

// summarize renders everything the bench table would: if two layouts
// agree on this string, they agree on the experiment output.
func summarize(t *Totals, cl *sim.Cluster) string {
	return fmt.Sprintf("issued=%d ok=%d errs=%d r=%d g=%d p=%d bytes=%d lat[%v %v %v] steps=%d windows=%d now=%v",
		t.Issued, t.OK, t.Errs, t.Reads, t.Gets, t.Puts, t.BytesMoved,
		t.LatAll.Percentile(50), t.LatAll.Percentile(99), t.LatAll.Max(),
		cl.Steps(), cl.Windows(), cl.Now())
}

func runRack(seed uint64, shards int) string {
	r := New(smallConfig(shards), seed, nil)
	r.Run()
	return summarize(r.Totals(), r.Cluster())
}

func TestRackShardCountInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		want := runRack(seed, 1)
		for _, shards := range []int{2, 4} {
			if got := runRack(seed, shards); got != want {
				t.Errorf("seed %d: %d-shard run differs\n1 shard: %s\n%d shards: %s",
					seed, shards, want, shards, got)
			}
		}
	}
}

func TestRackCompletes(t *testing.T) {
	r := New(smallConfig(2), 1, nil)
	r.Run()
	tot := r.Totals()
	if tot.Issued == 0 {
		t.Fatal("no ops issued")
	}
	if tot.OK+tot.Errs != tot.Issued {
		t.Errorf("issued %d but completed %d ok + %d errs: requests leaked",
			tot.Issued, tot.OK, tot.Errs)
	}
	if tot.Errs != 0 {
		t.Errorf("fault-free run produced %d errors", tot.Errs)
	}
	if tot.Reads == 0 || tot.Gets == 0 || tot.Puts == 0 {
		t.Errorf("op mix not exercised: reads=%d gets=%d puts=%d", tot.Reads, tot.Gets, tot.Puts)
	}
	if tot.LatAll.Count() != int(tot.OK) {
		t.Errorf("latency samples %d != ok ops %d", tot.LatAll.Count(), tot.OK)
	}
	// Every shard should have done work, and envelope flow must balance.
	var sends, recvs uint64
	for _, st := range r.Cluster().Stats() {
		if st.Events == 0 {
			t.Errorf("shard %d executed no events", st.Shard)
		}
		sends += st.Sends
		recvs += st.Recvs
	}
	if sends != recvs {
		t.Errorf("envelopes sent %d != delivered %d", sends, recvs)
	}
}

func TestRackFaultPlane(t *testing.T) {
	cfg := smallConfig(2)
	cfg.FaultRate = 0.2
	r := New(cfg, 1, nil)
	r.Run()
	tot := r.Totals()
	if tot.Errs == 0 {
		t.Fatal("20% drop rate produced no client errors")
	}
	if tot.OK+tot.Errs != tot.Issued {
		t.Errorf("issued %d, completed %d+%d: faults must still answer the client",
			tot.Issued, tot.OK, tot.Errs)
	}
	// Faulty runs stay shard-count invariant too: per-box plans are
	// keyed on (seed, layer, box index), not on layout.
	a := New(cfg, 1, nil)
	a.Run()
	cfg4 := cfg
	cfg4.Shards = 4
	b := New(cfg4, 1, nil)
	b.Run()
	if sa, sb := summarize(a.Totals(), a.Cluster()), summarize(b.Totals(), b.Cluster()); sa != sb {
		t.Errorf("faulty run not invariant:\n1 shard: %s\n4 shards: %s", sa, sb)
	}
}

func TestRackIndexedPlansDiffer(t *testing.T) {
	// Regression for the NewPlanIndexed audit: two boxes must not see
	// identical fault streams (NewPlan keyed on the layer name alone
	// would correlate them).
	cfg := smallConfig(1)
	cfg.Boxes = 2
	cfg.Replicas = 2
	cfg.FaultRate = 0.5
	r := New(cfg, 3, nil)
	r.Run()
	if r.boxes[0].dropped == r.boxes[1].dropped {
		// Counts colliding once is possible; identical streams would
		// also collide on every op count. Check the stronger signal.
		if r.boxes[0].reads == r.boxes[1].reads && r.boxes[0].gets == r.boxes[1].gets {
			t.Error("boxes look identically seeded; expected independent fault streams")
		}
	}
}
