package flow

import (
	"reflect"
	"testing"

	"hyperion/internal/analysis"
)

// TestBuiltinContractsInSync proves the cross-package builtin table
// cannot drift from the source: every entry must match a //wire:
// directive parsed from the real declaration it summarizes. (The table
// exists because a vet unit sees only export data — no doc comments —
// for its dependencies.)
func TestBuiltinContractsInSync(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root)
	pkgs, err := loader.LoadPatterns(
		"./internal/wire", "./internal/netsim", "./internal/nvmeof")
	if err != nil {
		t.Fatal(err)
	}
	declared := make(map[string]Contract)
	for _, pkg := range pkgs {
		cons := Collect(pkg.Files, pkg.TypesInfo)
		for _, pe := range cons.Errs {
			t.Errorf("%s: malformed directive: %s", pkg.Fset.Position(pe.Pos), pe.Msg)
		}
		for fn, c := range cons.local {
			declared[FuncKey(fn)] = c
		}
	}
	for key, want := range Builtins() {
		got, ok := declared[key]
		if !ok {
			t.Errorf("builtin contract %s has no //wire: directive on its declaration", key)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("builtin contract %s = %+v, declaration says %+v", key, want, got)
		}
	}
}
