// Package hfs is Hyperion's extent filesystem plus the annotation
// machinery of §2.3: alongside the normal POSIX-ish API, the filesystem
// publishes a declarative layout annotation (after Spiffy, Sun et al.,
// FAST'18) from which path lookups compile into flat access plans — a
// list of typed object reads that an accelerator can execute directly,
// with no filesystem code in the loop.
package hfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"hyperion/internal/seg"
)

// Inode types.
const (
	TypeFile = 1
	TypeDir  = 2
)

// Geometry.
const (
	InodeBytes  = 256
	ExtentBytes = 64 << 10 // data extent object size
	MaxName     = 64
	maxExtents  = 12 // direct extents per inode (no indirection needed at sim scale)
)

// Errors.
var (
	ErrNotFound    = errors.New("hfs: no such file or directory")
	ErrExist       = errors.New("hfs: file exists")
	ErrNotDir      = errors.New("hfs: not a directory")
	ErrIsDir       = errors.New("hfs: is a directory")
	ErrNameTooLong = errors.New("hfs: name too long")
	ErrFileTooBig  = errors.New("hfs: file exceeds extent table")
	ErrCorrupt     = errors.New("hfs: corrupt filesystem")
	ErrNotEmpty    = errors.New("hfs: directory not empty")
)

const superMagic = 0x48465331 // "HFS1"

// FS is a mounted filesystem.
type FS struct {
	v       *seg.SyncView
	super   seg.ObjectID
	prefix  uint64
	nextIno uint64
	nextExt uint64
	durable bool
}

// Inode is the on-store index node.
type Inode struct {
	Ino     uint64
	Type    uint8
	Size    int64
	Extents []seg.ObjectID
}

// DirEntry is one directory record.
type DirEntry struct {
	Name string
	Ino  uint64
	Type uint8
}

// Mkfs formats a filesystem whose superblock lives at superID.
func Mkfs(v *seg.SyncView, superID seg.ObjectID, durable bool) (*FS, error) {
	fs := &FS{v: v, super: superID, prefix: superID.Hi, durable: durable,
		nextIno: 2, nextExt: 1 << 32}
	if _, err := v.Alloc(superID, 128, durable, seg.HintAuto); err != nil {
		return nil, err
	}
	// Root directory: ino 1.
	root := &Inode{Ino: 1, Type: TypeDir}
	if _, err := v.Alloc(fs.inodeOID(1), InodeBytes, durable, seg.HintAuto); err != nil {
		return nil, err
	}
	if err := fs.writeInode(root); err != nil {
		return nil, err
	}
	return fs, fs.writeSuper()
}

// Mount opens an existing filesystem.
func Mount(v *seg.SyncView, superID seg.ObjectID) (*FS, error) {
	fs := &FS{v: v, super: superID, prefix: superID.Hi}
	buf, err := v.ReadAt(superID, 0, 128)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf) != superMagic {
		return nil, fmt.Errorf("%w: bad superblock magic", ErrCorrupt)
	}
	fs.nextIno = binary.LittleEndian.Uint64(buf[8:])
	fs.nextExt = binary.LittleEndian.Uint64(buf[16:])
	fs.durable = buf[24] == 1
	return fs, nil
}

func (fs *FS) writeSuper() error {
	buf := make([]byte, 128)
	binary.LittleEndian.PutUint32(buf, superMagic)
	binary.LittleEndian.PutUint64(buf[8:], fs.nextIno)
	binary.LittleEndian.PutUint64(buf[16:], fs.nextExt)
	if fs.durable {
		buf[24] = 1
	}
	return fs.v.WriteAt(fs.super, 0, buf)
}

// inodeOID maps ino → object id (the annotation exposes this rule).
func (fs *FS) inodeOID(ino uint64) seg.ObjectID {
	return seg.ObjectID{Hi: fs.prefix, Lo: ino}
}

func (fs *FS) extentOID() seg.ObjectID {
	id := seg.ObjectID{Hi: fs.prefix, Lo: fs.nextExt}
	fs.nextExt++
	return id
}

// Inode (de)serialization: type(1) pad(7) size(8) next(2 pad6) then
// extent count(2) + extents (16 each).
func (fs *FS) writeInode(ino *Inode) error {
	buf := make([]byte, InodeBytes)
	buf[0] = ino.Type
	binary.LittleEndian.PutUint64(buf[8:], uint64(ino.Size))
	binary.LittleEndian.PutUint16(buf[16:], uint16(len(ino.Extents)))
	off := 24
	for _, e := range ino.Extents {
		binary.LittleEndian.PutUint64(buf[off:], e.Hi)
		binary.LittleEndian.PutUint64(buf[off+8:], e.Lo)
		off += 16
	}
	return fs.v.WriteAt(fs.inodeOID(ino.Ino), 0, buf)
}

func (fs *FS) readInode(ino uint64) (*Inode, error) {
	buf, err := fs.v.ReadAt(fs.inodeOID(ino), 0, InodeBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	n := &Inode{Ino: ino, Type: buf[0], Size: int64(binary.LittleEndian.Uint64(buf[8:]))}
	cnt := int(binary.LittleEndian.Uint16(buf[16:]))
	if cnt > maxExtents {
		return nil, fmt.Errorf("%w: inode %d extent count %d", ErrCorrupt, ino, cnt)
	}
	off := 24
	for i := 0; i < cnt; i++ {
		n.Extents = append(n.Extents, seg.ObjectID{
			Hi: binary.LittleEndian.Uint64(buf[off:]),
			Lo: binary.LittleEndian.Uint64(buf[off+8:]),
		})
		off += 16
	}
	return n, nil
}

// readAll returns a file/dir's full contents.
func (fs *FS) readAll(ino *Inode) ([]byte, error) {
	out := make([]byte, 0, ino.Size)
	remaining := ino.Size
	for _, e := range ino.Extents {
		n := int64(ExtentBytes)
		if n > remaining {
			n = remaining
		}
		if n <= 0 {
			break
		}
		data, err := fs.v.ReadAt(e, 0, n)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		remaining -= n
	}
	return out, nil
}

// writeAll replaces a file/dir's contents.
func (fs *FS) writeAll(ino *Inode, data []byte) error {
	need := (len(data) + ExtentBytes - 1) / ExtentBytes
	if need > maxExtents {
		return ErrFileTooBig
	}
	for len(ino.Extents) < need {
		id := fs.extentOID()
		if _, err := fs.v.Alloc(id, ExtentBytes, fs.durable, seg.HintAuto); err != nil {
			return err
		}
		ino.Extents = append(ino.Extents, id)
	}
	for len(ino.Extents) > need {
		last := ino.Extents[len(ino.Extents)-1]
		if err := fs.v.Free(last); err != nil {
			return err
		}
		ino.Extents = ino.Extents[:len(ino.Extents)-1]
	}
	for i := 0; i < need; i++ {
		lo := i * ExtentBytes
		hi := lo + ExtentBytes
		if hi > len(data) {
			hi = len(data)
		}
		if err := fs.v.WriteAt(ino.Extents[i], 0, data[lo:hi]); err != nil {
			return err
		}
	}
	ino.Size = int64(len(data))
	if err := fs.writeInode(ino); err != nil {
		return err
	}
	return fs.writeSuper()
}

// Directory serialization: count(4) then records of
// [ino u64][type u8][nameLen u8][name].
func encodeDir(entries []DirEntry) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		rec := make([]byte, 10+len(e.Name))
		binary.LittleEndian.PutUint64(rec, e.Ino)
		rec[8] = e.Type
		rec[9] = byte(len(e.Name))
		copy(rec[10:], e.Name)
		buf = append(buf, rec...)
	}
	return buf
}

func decodeDir(buf []byte) ([]DirEntry, error) {
	if len(buf) < 4 {
		return nil, nil
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	var out []DirEntry
	for i := 0; i < n; i++ {
		if off+10 > len(buf) {
			return nil, fmt.Errorf("%w: truncated dirent", ErrCorrupt)
		}
		ino := binary.LittleEndian.Uint64(buf[off:])
		typ := buf[off+8]
		nl := int(buf[off+9])
		if off+10+nl > len(buf) {
			return nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
		}
		out = append(out, DirEntry{Name: string(buf[off+10 : off+10+nl]), Ino: ino, Type: typ})
		off += 10 + nl
	}
	return out, nil
}

func (fs *FS) readDir(ino *Inode) ([]DirEntry, error) {
	if ino.Type != TypeDir {
		return nil, ErrNotDir
	}
	data, err := fs.readAll(ino)
	if err != nil {
		return nil, err
	}
	return decodeDir(data)
}

// splitPath normalizes "/a/b/c" into components.
func splitPath(path string) ([]string, error) {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c == "" || c == "." {
			continue
		}
		if c == ".." {
			return nil, errors.New("hfs: '..' not supported")
		}
		if len(c) > MaxName {
			return nil, ErrNameTooLong
		}
		out = append(out, c)
	}
	return out, nil
}

// lookup resolves a path to its inode.
func (fs *FS) lookup(path string) (*Inode, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur, err := fs.readInode(1)
	if err != nil {
		return nil, err
	}
	for _, c := range comps {
		entries, err := fs.readDir(cur)
		if err != nil {
			return nil, err
		}
		found := false
		for _, e := range entries {
			if e.Name == c {
				cur, err = fs.readInode(e.Ino)
				if err != nil {
					return nil, err
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
	}
	return cur, nil
}

// parentOf resolves the parent directory and leaf name of a path.
func (fs *FS) parentOf(path string) (*Inode, string, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", fmt.Errorf("%w: root has no parent", ErrExist)
	}
	parentPath := strings.Join(comps[:len(comps)-1], "/")
	parent, err := fs.lookup(parentPath)
	if err != nil {
		return nil, "", err
	}
	if parent.Type != TypeDir {
		return nil, "", ErrNotDir
	}
	return parent, comps[len(comps)-1], nil
}

func (fs *FS) addEntry(parent *Inode, ent DirEntry) error {
	entries, err := fs.readDir(parent)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name == ent.Name {
			return fmt.Errorf("%w: %s", ErrExist, ent.Name)
		}
	}
	entries = append(entries, ent)
	return fs.writeAll(parent, encodeDir(entries))
}

func (fs *FS) newInode(typ uint8) (*Inode, error) {
	ino := &Inode{Ino: fs.nextIno, Type: typ}
	fs.nextIno++
	if _, err := fs.v.Alloc(fs.inodeOID(ino.Ino), InodeBytes, fs.durable, seg.HintAuto); err != nil {
		return nil, err
	}
	if err := fs.writeInode(ino); err != nil {
		return nil, err
	}
	return ino, fs.writeSuper()
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) error {
	parent, name, err := fs.parentOf(path)
	if err != nil {
		return err
	}
	dir, err := fs.newInode(TypeDir)
	if err != nil {
		return err
	}
	return fs.addEntry(parent, DirEntry{Name: name, Ino: dir.Ino, Type: TypeDir})
}

// Create makes an empty file.
func (fs *FS) Create(path string) error {
	parent, name, err := fs.parentOf(path)
	if err != nil {
		return err
	}
	f, err := fs.newInode(TypeFile)
	if err != nil {
		return err
	}
	return fs.addEntry(parent, DirEntry{Name: name, Ino: f.Ino, Type: TypeFile})
}

// WriteFile replaces a file's contents (creating it if absent).
func (fs *FS) WriteFile(path string, data []byte) error {
	ino, err := fs.lookup(path)
	if errors.Is(err, ErrNotFound) {
		if cerr := fs.Create(path); cerr != nil {
			return cerr
		}
		ino, err = fs.lookup(path)
	}
	if err != nil {
		return err
	}
	if ino.Type != TypeFile {
		return ErrIsDir
	}
	return fs.writeAll(ino, data)
}

// ReadFile returns a file's contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if ino.Type != TypeFile {
		return nil, ErrIsDir
	}
	return fs.readAll(ino)
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	return fs.readDir(ino)
}

// Stat returns a path's inode.
func (fs *FS) Stat(path string) (*Inode, error) { return fs.lookup(path) }

// Unlink removes a file or empty directory.
func (fs *FS) Unlink(path string) error {
	parent, name, err := fs.parentOf(path)
	if err != nil {
		return err
	}
	entries, err := fs.readDir(parent)
	if err != nil {
		return err
	}
	idx := -1
	for i, e := range entries {
		if e.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	victim, err := fs.readInode(entries[idx].Ino)
	if err != nil {
		return err
	}
	if victim.Type == TypeDir {
		kids, err := fs.readDir(victim)
		if err != nil {
			return err
		}
		if len(kids) > 0 {
			return ErrNotEmpty
		}
	}
	for _, e := range victim.Extents {
		if err := fs.v.Free(e); err != nil {
			return err
		}
	}
	if err := fs.v.Free(fs.inodeOID(victim.Ino)); err != nil {
		return err
	}
	entries = append(entries[:idx], entries[idx+1:]...)
	return fs.writeAll(parent, encodeDir(entries))
}
