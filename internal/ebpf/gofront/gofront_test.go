package gofront

import (
	"strings"
	"testing"

	"hyperion/internal/ebpf"
)

const miniFilter = `package prog

//hyperion:map bans id=0 key=4 value=8 entries=1024

type Pkt struct {
	Src  uint32
	Mark uint8 ` + "`" + `hyperion:"offset=4"` + "`" + `
	_    uint8 ` + "`" + `hyperion:"offset=7"` + "`" + `
}

const limit = 3

//hyperion:helper 1
func mapLookup(m uint32, k *uint32) *uint64

func Filter(ctx *Pkt) uint64 {
	var key uint32
	key = ctx.Src
	p := mapLookup(0, &key)
	if p == nil {
		return 0
	}
	n := *p
	if n >= limit {
		return 2
	}
	return 1
}
`

func compileMini(t *testing.T, opts Options) *Program {
	t.Helper()
	p, err := Compile("mini.go", []byte(miniFilter), opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestCompileSurface(t *testing.T) {
	p := compileMini(t, Options{})
	if p.Entry != "Filter" {
		t.Errorf("entry %q, want Filter", p.Entry)
	}
	if p.CtxSize != 8 {
		t.Errorf("ctx size %d, want 8", p.CtxSize)
	}
	if len(p.Maps) != 1 || p.Maps[0].Name != "bans" || p.Maps[0].ID != 0 ||
		p.Maps[0].KeySize != 4 || p.Maps[0].ValueSize != 8 || p.Maps[0].Entries != 1024 {
		t.Errorf("maps = %+v", p.Maps)
	}
	maps := &ebpf.MapSet{}
	maps.Add(ebpf.NewHashMap(4, 8, 1024))
	vcfg := ebpf.DefaultVerifierConfig(maps)
	vcfg.CtxSize = p.CtxSize
	if err := ebpf.Verify(p.Insns, vcfg); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// Options.Consts is the deploy-time -D: overriding limit must change
// the emitted comparison immediate and nothing else.
func TestConstOverride(t *testing.T) {
	base := compileMini(t, Options{})
	over := compileMini(t, Options{Consts: map[string]int64{"limit": 77}})
	if len(base.Insns) != len(over.Insns) {
		t.Fatalf("override changed program length: %d vs %d", len(base.Insns), len(over.Insns))
	}
	changed := 0
	for i := range base.Insns {
		b, o := base.Insns[i], over.Insns[i]
		if b == o {
			continue
		}
		changed++
		if b.Imm != 3 || o.Imm != 77 {
			t.Errorf("insn %d changed unexpectedly: %+v vs %+v", i, b, o)
		}
	}
	if changed != 1 {
		t.Errorf("override changed %d instructions, want exactly the threshold compare", changed)
	}
}

func TestUnknownConstOverride(t *testing.T) {
	_, err := Compile("mini.go", []byte(miniFilter), Options{Consts: map[string]int64{"nosuch": 1}})
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("want unknown-const error, got %v", err)
	}
}

// 64-bit constants must round-trip through LDDW emission.
func TestWideConstant(t *testing.T) {
	src := `package prog

type Ctx struct {
	A uint64
}

func Run(ctx *Ctx) uint64 {
	v := ctx.A
	if v == 0x1122334455667788 {
		return 1
	}
	return 0
}
`
	p, err := Compile("wide.go", []byte(src), Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vcfg := ebpf.DefaultVerifierConfig(nil)
	vcfg.CtxSize = 8
	if err := ebpf.Verify(p.Insns, vcfg); err != nil {
		t.Fatalf("verify: %v", err)
	}
	run := func(val uint64) uint64 {
		vm := ebpf.NewVM(nil)
		if err := vm.Load(p.Insns); err != nil {
			t.Fatal(err)
		}
		ctx := make([]byte, 8)
		for i := 0; i < 8; i++ {
			ctx[i] = byte(val >> (8 * i))
		}
		ret, err := vm.RunInterpreted(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ret
	}
	if got := run(0x1122334455667788); got != 1 {
		t.Errorf("matching wide constant: ret %d, want 1", got)
	}
	if got := run(42); got != 0 {
		t.Errorf("non-matching wide constant: ret %d, want 0", got)
	}
}
