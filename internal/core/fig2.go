package core

import (
	"fmt"

	"hyperion/internal/fabric"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
)

// Fig2Trace times each stage of the Figure 2 datapath for one request:
// QSFP ingress → DEMUX/AXIS arbiter → eHDL accelerator slot → NVMe host
// IP core → PCIe x4 bridge → SSD flash → and back out.
type Fig2Trace struct {
	Arbiter  sim.Duration // DEMUX + AXIS serialization
	Pipeline sim.Duration // accelerator slot latency
	Storage  sim.Duration // NVMe command incl. on-card PCIe DMA
	Egress   sim.Duration // response serialization to QSFP
	Total    sim.Duration
}

// ProbeBitstream returns a small identity accelerator used by the
// Figure 2 probe (depth ≈ a realistic parse/steer pipeline).
func ProbeBitstream(authTag string) *fabric.Bitstream {
	return &fabric.Bitstream{
		Name:      "fig2-probe",
		SizeBytes: 4 << 20,
		Uses:      fabric.Resources{LUTs: 20000, FFs: 30000, BRAM: 16},
		Depth:     24,
		II:        1,
		AuthTag:   authTag,
		Process:   func(in any) any { return in },
	}
}

// probePayload is the static frame content every probe carries,
// pre-boxed so pushing it never allocates.
var probePayload any = []byte("probe")

// fig2Ctx carries one probe through the four-stage pipeline with
// prebound stage callbacks and its own reusable ingress stream (an
// idle AXIS stream is indistinguishable from a fresh one); instances
// cycle through the DPU's free list.
type fig2Ctx struct {
	d      *DPU
	stream *fabric.Stream
	rec    *telemetry.Recorder // recorder the stream was last armed with

	slot, ssd int
	lba       int64
	blocks    int
	reply     func(tr Fig2Trace, data []byte, err error)

	span           telemetry.RequestID
	t0, t1, t2, t3 sim.Time
	tr             Fig2Trace
	data           []byte

	sinkFn   func(fabric.Item)
	pipeFn   func(out any)
	readFn   func(data []byte, st uint16)
	egressFn func()
}

func (d *DPU) getFig2() *fig2Ctx {
	if n := len(d.fig2Free); n > 0 {
		c := d.fig2Free[n-1]
		d.fig2Free = d.fig2Free[:n-1]
		return c
	}
	c := &fig2Ctx{d: d}
	// Stage 1 plumbing: DEMUX + AXIS arbiter, modeled by an AXIS stream
	// with the fabric's clock and bus width carrying the frame into the
	// slot.
	c.stream = fabric.NewStream(d.Eng, "fig2.probe", d.Cfg.Fabric.ClockHz, 64, 8)
	c.sinkFn = c.onArrive
	c.pipeFn = c.onPipeline
	c.readFn = c.onRead
	c.egressFn = c.onEgress
	c.stream.Connect(c.sinkFn)
	return c
}

func (c *fig2Ctx) fail(err error) {
	d, reply, tr := c.d, c.reply, c.tr
	c.reply = nil
	c.data = nil
	d.fig2Free = append(d.fig2Free, c)
	reply(tr, nil, err)
}

// onArrive is stage 1 complete: the frame crossed the arbiter.
func (c *fig2Ctx) onArrive(it fabric.Item) {
	d := c.d
	c.t1 = d.Eng.Now()
	c.tr.Arbiter = c.t1.Sub(c.t0)
	if d.rec != nil {
		d.rec.Span("fig2", "arbiter", c.span, c.t0, c.t1)
	}
	// Stage 2: accelerator pipeline.
	if serr := d.Fabric.SubmitSpan(c.slot, it.Payload, c.span, c.pipeFn); serr != nil {
		c.fail(serr)
	}
}

func (c *fig2Ctx) onPipeline(out any) {
	d := c.d
	c.t2 = d.Eng.Now()
	c.tr.Pipeline = c.t2.Sub(c.t1)
	if d.rec != nil {
		d.rec.Span("fig2", "pipeline", c.span, c.t1, c.t2)
	}
	// Stage 3: NVMe host IP core → PCIe bridge → flash.
	if rerr := d.Hosts[c.ssd].ReadSpan(0, c.lba, c.blocks, c.span, c.readFn); rerr != nil {
		c.fail(rerr)
	}
}

func (c *fig2Ctx) onRead(data []byte, st uint16) {
	d := c.d
	c.t3 = d.Eng.Now()
	c.tr.Storage = c.t3.Sub(c.t2)
	if d.rec != nil {
		d.rec.Span("fig2", "storage", c.span, c.t2, c.t3)
	}
	c.data = data
	// Stage 4: response egress serialization on QSFP.
	respBytes := len(data) + 64
	egress := sim.Duration(float64(respBytes) / 12.5e9 * float64(sim.Second))
	//hyperlint:allow(eventref) one-shot stage event: its own firing is the only thing that recycles c, so there is no cancel window
	d.Eng.After(egress, "fig2.egress", c.egressFn)
}

func (c *fig2Ctx) onEgress() {
	d := c.d
	t4 := d.Eng.Now()
	c.tr.Egress = t4.Sub(c.t3)
	c.tr.Total = t4.Sub(c.t0)
	if d.rec != nil {
		// No "total" span: the per-request critical path derives
		// end-to-end time from the stage spans, and a covering span
		// would trivially dominate it.
		d.rec.Span("fig2", "egress", c.span, c.t3, t4)
	}
	reply, tr, data := c.reply, c.tr, c.data
	c.reply = nil
	c.data = nil
	d.fig2Free = append(d.fig2Free, c)
	reply(tr, data, nil)
}

// Fig2Probe drives one end-to-end request through the full hardware
// path: a frame-sized item crosses the arbiter into the slot, the
// pipeline processes it, the NVMe host IP core reads blocks from the
// SSD that owns the LBA, and the response serializes back out. reply
// receives the stage trace and the data.
func (d *DPU) Fig2Probe(slot int, ssd int, lba int64, blocks int, reply func(tr Fig2Trace, data []byte, err error)) error {
	if !d.booted {
		return ErrNotBooted
	}
	if ssd < 0 || ssd >= len(d.Hosts) {
		return fmt.Errorf("core: no ssd %d", ssd)
	}
	c := d.getFig2()
	c.slot, c.ssd, c.lba, c.blocks = slot, ssd, lba, blocks
	c.reply = reply
	c.t0 = d.Eng.Now()
	c.tr = Fig2Trace{}
	// One trace context joins every stage of this probe (0 disarmed).
	c.span = d.rec.NewRequest()
	if c.rec != d.rec {
		c.stream.SetRecorder(d.rec)
		c.rec = d.rec
	}
	const frameBytes = 256
	err := c.stream.Push(fabric.Item{Bytes: frameBytes, Payload: probePayload, Span: c.span})
	if err != nil {
		c.reply = nil
		d.fig2Free = append(d.fig2Free, c)
	}
	return err
}
