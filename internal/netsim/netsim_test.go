package netsim

import (
	"errors"
	"testing"

	"hyperion/internal/sim"
	"hyperion/internal/wire"
)

func pair(t testing.TB) (*sim.Engine, *Network, *NIC, *NIC) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := New(eng, DefaultConfig())
	a, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, a, b
}

func TestDelivery(t *testing.T) {
	eng, _, a, b := pair(t)
	var got []Frame
	b.OnReceive(func(f Frame) { got = append(got, f) })
	if err := a.Send(Frame{Dst: "b", Payload: "hello", Bytes: 100}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 1 || got[0].Payload != "hello" || got[0].Src != "a" {
		t.Fatalf("got %v", got)
	}
}

func TestUnknownDestination(t *testing.T) {
	_, _, a, _ := pair(t)
	if err := a.Send(Frame{Dst: "zzz", Bytes: 100}); !errors.Is(err, ErrUnknownDst) {
		t.Fatalf("err = %v, want ErrUnknownDst", err)
	}
}

func TestDuplicateAddr(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, DefaultConfig())
	if _, err := net.Attach("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach("x"); !errors.Is(err, ErrDupAddr) {
		t.Fatalf("err = %v, want ErrDupAddr", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	_, _, a, _ := pair(t)
	if err := a.Send(Frame{Dst: "b", Bytes: MaxFrameBytes + 1}); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestLatencyShape(t *testing.T) {
	eng, net, a, b := pair(t)
	var at sim.Time
	b.OnReceive(func(f Frame) { at = eng.Now() })
	_ = a.Send(Frame{Dst: "b", Bytes: MinFrameBytes})
	eng.Run()
	cfg := net.Config()
	want := 2*cfg.PropDelay + cfg.SwitchLatency + 2*net.serTime(MinFrameBytes)
	if at.Sub(0) != want {
		t.Fatalf("one-way = %v, want %v", at.Sub(0), want)
	}
	// Sanity: one-way under 2 µs for a small frame on this fabric.
	if at.Sub(0) > 2*sim.Microsecond {
		t.Fatalf("one-way %v implausibly high", at.Sub(0))
	}
}

func TestSerializationOrdering(t *testing.T) {
	// Payloads ride as *wire.Buf — the representation the real datapath
	// uses — so ordering is checked on the zero-copy path, and the
	// per-frame Release exercises pool recycling under load.
	eng, _, a, b := pair(t)
	pool := wire.NewPool(8)
	var got []int
	b.OnReceive(func(f Frame) {
		buf := f.Payload.(*wire.Buf)
		got = append(got, int(wire.LE32At(buf.Bytes(), 0)))
		buf.Release()
	})
	for i := 0; i < 50; i++ {
		buf := pool.Get(4)
		wire.PutLE32At(buf.Bytes(), 0, uint32(i))
		_ = a.Send(Frame{Dst: "b", Payload: buf, Bytes: 1500})
	}
	eng.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d/50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestBandwidth(t *testing.T) {
	// 1000 jumbo frames of 9000 B = 9 MB at 12.5 GB/s ≈ 720 µs.
	eng, net, a, b := pair(t)
	var last sim.Time
	b.OnReceive(func(f Frame) { last = eng.Now() })
	for i := 0; i < 1000; i++ {
		_ = a.Send(Frame{Dst: "b", Bytes: 9000})
	}
	eng.Run()
	got := last.Sub(0)
	want := net.serTime(9000 * 1000)
	if got < want || got > want+want/10+5*sim.Microsecond {
		t.Fatalf("1000 jumbo frames took %v, want ≈ %v", got, want)
	}
}

func TestCongestionDrops(t *testing.T) {
	// Two senders at full rate into one receiver must overflow the
	// switch output queue.
	eng := sim.NewEngine(1)
	net := New(eng, DefaultConfig())
	a, _ := net.Attach("a")
	b, _ := net.Attach("b")
	c, _ := net.Attach("c")
	var delivered int
	c.OnReceive(func(Frame) { delivered++ })
	_ = a
	_ = b
	for i := 0; i < 2000; i++ {
		na, _ := net.nics["a"], 0
		_ = na
		_ = net.nics["a"].Send(Frame{Dst: "c", Bytes: 9000})
		_ = net.nics["b"].Send(Frame{Dst: "c", Bytes: 9000})
	}
	eng.Run()
	if net.Drops == 0 {
		t.Fatal("incast congestion produced no drops")
	}
	if delivered+int(net.Drops) != 4000 {
		t.Fatalf("delivered %d + drops %d != 4000", delivered, net.Drops)
	}
}

func TestBaseRTTSymmetricPing(t *testing.T) {
	eng, net, a, b := pair(t)
	var rtt sim.Duration
	start := eng.Now()
	b.OnReceive(func(f Frame) { _ = b.Send(Frame{Dst: "a", Bytes: MinFrameBytes}) })
	a.OnReceive(func(f Frame) { rtt = eng.Now().Sub(start) })
	_ = a.Send(Frame{Dst: "b", Bytes: MinFrameBytes})
	eng.Run()
	if rtt != net.BaseRTT() {
		t.Fatalf("ping RTT = %v, BaseRTT() = %v", rtt, net.BaseRTT())
	}
}

func TestTinyFramePaddedToMin(t *testing.T) {
	eng, _, a, b := pair(t)
	var got Frame
	b.OnReceive(func(f Frame) { got = f })
	_ = a.Send(Frame{Dst: "b", Bytes: 1})
	eng.Run()
	if got.Bytes != MinFrameBytes {
		t.Fatalf("frame padded to %d, want %d", got.Bytes, MinFrameBytes)
	}
}

func TestCounters(t *testing.T) {
	eng, _, a, b := pair(t)
	b.OnReceive(func(Frame) {})
	for i := 0; i < 10; i++ {
		_ = a.Send(Frame{Dst: "b", Bytes: 1000})
	}
	eng.Run()
	if a.TxFrames != 10 || b.RxFrames != 10 || a.TxBytes != 10000 || b.RxBytes != 10000 {
		t.Fatalf("counters tx=%d/%d rx=%d/%d", a.TxFrames, a.TxBytes, b.RxFrames, b.RxBytes)
	}
}

func BenchmarkSend(b *testing.B) {
	eng := sim.NewEngine(1)
	net := New(eng, DefaultConfig())
	src, _ := net.Attach("s")
	dst, _ := net.Attach("d")
	dst.OnReceive(func(Frame) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Send(Frame{Dst: "d", Bytes: 1500})
		if i%128 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}
