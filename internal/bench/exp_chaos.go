package bench

import (
	"fmt"

	"hyperion/internal/cluster"
	"hyperion/internal/fault"
	"hyperion/internal/netsim"
	"hyperion/internal/nvme"
	"hyperion/internal/nvmeof"
	"hyperion/internal/rpc"
	"hyperion/internal/sim"
	"hyperion/internal/telemetry"
	"hyperion/internal/transport"
)

// chaosRates is the injected per-event fault probability sweep. The
// zero row doubles as the control: with every plan at rate 0 the
// datapath must behave exactly as if no fault plane existed.
var chaosRates = []float64{0, 0.001, 0.01, 0.05}

// Chaos (E16) measures how gracefully the stack degrades under
// injected faults: remote 4K reads over NVMe-oF/RDMA with packet
// drop/corrupt/reorder plus device media errors and swallowed
// commands, and a replicated cluster KV under node crash/restart
// windows. Retries, deadlines, and failover are armed, so the
// interesting output is the latency tail and goodput versus fault
// rate, not the failure count.
func Chaos(seed uint64) Result { return chaos(seed, nil) }

// ChaosTraced is Chaos with the telemetry plane armed: each
// (scenario, fault rate) cell becomes its own Perfetto process
// (rec.Child) with every operation traced end to end, so the
// critical-path summary shows where the injected faults' retries and
// failovers spend their time. The Result is byte-identical to Chaos
// at the same seed.
func ChaosTraced(seed uint64, rec *telemetry.Recorder) Result { return chaos(seed, rec) }

func chaos(seed uint64, rec *telemetry.Recorder) Result {
	r := Result{ID: "E16", Title: "chaos — tail latency and goodput vs injected fault rate"}
	r.Table.Header = []string{"scenario", "fault rate", "ops", "ok", "retries", "p50", "p99", "p99.9", "goodput MB/s"}
	for _, rate := range chaosRates {
		chaosNVMeoF(&r, seed, rate, rec)
	}
	for _, rate := range chaosRates {
		chaosCluster(&r, seed, rate, rec)
	}
	r.Notes = append(r.Notes,
		"retry+backoff, host deadlines, and read failover hold goodput while the tail absorbs the faults; the 0% rows match the fault-free datapath exactly")
	return r
}

// chaosNVMeoF drives sequential remote 4K reads over RDMA while the
// fabric drops/corrupts/reorders frames and the device injects media
// errors and swallowed commands. The rpc client retries timed-out
// calls under a deadline budget; the initiator retries device-status
// errors; the host turns swallowed commands into StatusTimeout.
func chaosNVMeoF(r *Result, seed uint64, rate float64, rec *telemetry.Recorder) {
	eng := sim.NewEngine(seed)
	net := netsim.New(eng, netsim.DefaultConfig())
	net.SetFaultPlan(fault.NewPlan(seed, "netsim").
		Set(fault.Drop, rate).Set(fault.Corrupt, rate).Set(fault.Reorder, rate))

	tn, _ := net.Attach("tgt")
	in, _ := net.Attach("ini")
	ncfg := nvme.DefaultConfig("remote")
	ncfg.Blocks = 1 << 20
	dev := nvme.New(eng, ncfg)
	dev.SetFaultPlan(fault.NewPlan(seed, "nvme").
		Set(fault.MediaErr, rate).Set(fault.Timeout, rate))
	host := nvme.NewHost(dev, nil)
	host.SetDeadline(2 * sim.Millisecond)

	srv := rpc.NewServer(eng, transport.New(eng, transport.RDMA, tn), rpc.RunToCompletion)
	nvmeof.NewTarget(srv, host, 0)
	cli := rpc.NewClient(eng, transport.New(eng, transport.RDMA, in))
	cli.Timeout = 5 * sim.Millisecond
	cli.MaxRetries = 3
	cli.RetryBackoff = 200 * sim.Microsecond
	cli.DeadlineBudget = 40 * sim.Millisecond
	ini := nvmeof.NewInitiator(cli, "tgt", ncfg.BlockSize)
	ini.MaxRetries = 3
	ini.RetryBackoff = 100 * sim.Microsecond

	var crec *telemetry.Recorder
	if rec != nil {
		crec = rec.Child(fmt.Sprintf("e16.nvmeof-%s", pct(rate)))
		net.SetRecorder(crec)
		dev.SetRecorder(crec)
		host.SetRecorder(crec)
		srv.SetRecorder(crec)
		cli.SetRecorder(crec)
	}

	// Populate, then measure reads.
	block := make([]byte, ncfg.BlockSize)
	for i := range block {
		block[i] = byte(i)
	}
	const warm = 64
	for i := 0; i < warm; i++ {
		ini.Write(int64(i), block, func(err error) {
			if err != nil {
				panic(fmt.Sprintf("chaos: populate write %d: %v", i, err))
			}
		})
		eng.Run()
	}

	const ops = 300
	var lat sim.LatencyRecorder
	ok := 0
	start := eng.Now()
	for i := 0; i < ops; i++ {
		lba := int64(i % warm)
		ini.Span = crec.NewRequest()
		t0 := eng.Now()
		ini.Read(lba, 1, func(data []byte, err error) {
			if crec != nil {
				crec.Span("app", "read", ini.Span, t0, eng.Now())
			}
			if err == nil {
				ok++
				lat.Record(eng.Now().Sub(t0))
			}
		})
		eng.Run()
	}
	elapsed := eng.Now().Sub(start)
	goodput := float64(ok*ncfg.BlockSize) / elapsed.Seconds() / 1e6
	r.Table.AddRow("nvmeof/rdma", pct(rate), itoa(ops), itoa(int64(ok)),
		itoa(cli.Retries+ini.Retries),
		lat.Percentile(50).String(), lat.Percentile(99).String(), lat.Percentile(99.9).String(),
		f2(goodput))
	r.observe(eng)
}

// chaosCluster runs a closed-loop put+get workload against a 4-node,
// 3-replica KV while seeded crash/restart windows take nodes down.
// The router fails reads over to the next replica; puts to a down
// replica surface as errors after the rpc timeout.
func chaosCluster(r *Result, seed uint64, rate float64, rec *telemetry.Recorder) {
	eng := sim.NewEngine(seed)
	net := netsim.New(eng, netsim.DefaultConfig())
	c, err := cluster.New(eng, net, 4, 3)
	if err != nil {
		panic(err)
	}
	rt, err := cluster.NewRouter(c, "client")
	if err != nil {
		panic(err)
	}
	if rec != nil {
		crec := rec.Child(fmt.Sprintf("e16.cluster-%s", pct(rate)))
		net.SetRecorder(crec)
		c.SetRecorder(crec)
		rt.SetRecorder(crec)
	}
	plan := fault.NewPlan(seed, "cluster")
	if rate > 0 {
		// Rate scales outage frequency: mean up-time 500 µs of virtual
		// time at 0.1% down to every 10 µs at 5%, each outage 400 µs.
		// The horizon covers the whole workload (puts then gets), so
		// crashes keep landing during the read phase and the failover
		// path stays exercised at every rate.
		meanUp := sim.Duration(float64(500*sim.Microsecond) * 0.001 / rate)
		plan.Set(fault.Crash, 1)
		c.ScheduleCrashes(plan, sim.Time(1*sim.Second), meanUp, 400*sim.Microsecond)
	}

	const ops = 200
	var lat sim.LatencyRecorder
	ok := 0
	done := 0
	start := eng.Now()
	// 4 KiB values make the goodput column commensurable with the
	// nvmeof scenario's block reads.
	value := make([]byte, 4096)
	for i := range value {
		value[i] = byte(i)
	}
	var put func(i int)
	var get func(i int)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
	put = func(i int) {
		if i >= ops {
			get(0)
			return
		}
		t0 := eng.Now()
		rt.Put(key(i), value, func(err error) {
			if err == nil {
				ok++
				lat.Record(eng.Now().Sub(t0))
			}
			done++
			put(i + 1)
		})
	}
	get = func(i int) {
		if i >= ops {
			return
		}
		t0 := eng.Now()
		rt.Get(key(i), func(_ []byte, err error) {
			if err == nil {
				ok++
				lat.Record(eng.Now().Sub(t0))
			}
			done++
			get(i + 1)
		})
	}
	put(0)
	eng.Run()
	elapsed := eng.Now().Sub(start)
	// Cluster goodput counts completed KV ops as value-sized payloads.
	goodput := float64(ok*len(value)) / elapsed.Seconds() / 1e6
	r.Table.AddRow("cluster/3rep", pct(rate), itoa(int64(done)), itoa(int64(ok)),
		itoa(rt.Failovers),
		lat.Percentile(50).String(), lat.Percentile(99).String(), lat.Percentile(99.9).String(),
		f2(goodput))
	r.observe(eng)
}

// pct renders a fault probability as a percentage.
func pct(rate float64) string { return fmt.Sprintf("%.1f%%", rate*100) }
